package vmcheck

import (
	"selspec/internal/vm"
)

// block is one basic block of a proc's CFG: the half-open instruction
// range [start, end), its successor block IDs, and its predecessors.
type block struct {
	id         int
	start, end int
	succs      []int
	preds      []int
}

// cfg is the basic-block control-flow graph of one proc. Block 0 is the
// entry block (instruction 0). Blocks are ordered by start pc, so
// iterating blocks visits instructions in code order.
type cfg struct {
	p      *vm.Proc
	info   []instrInfo // decoded per-pc, shared by all analyses
	blocks []*block
	// blockOf maps each pc to the id of its containing block.
	blockOf []int
}

// buildCFG decodes p's instruction stream and partitions it into basic
// blocks. It assumes every branch target is in bounds — the verifier
// checks operand validity on the flat stream first and only then builds
// the CFG, so the dataflow passes never see a malformed graph.
func buildCFG(p *vm.Proc) *cfg {
	n := len(p.Code)
	g := &cfg{p: p, info: make([]instrInfo, n), blockOf: make([]int, n)}
	for pc := range p.Code {
		g.info[pc] = decode(p, pc)
	}

	// Leaders: instruction 0, every branch target, and every instruction
	// following a branch or terminator.
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for pc, in := range g.info {
		if in.hasBranch && int(in.branch) < n {
			leader[in.branch] = true
		}
		if (in.hasBranch || !in.fallsThrough) && pc+1 < n {
			leader[pc+1] = true
		}
	}

	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			g.blocks = append(g.blocks, &block{id: len(g.blocks), start: pc})
		}
		g.blockOf[pc] = len(g.blocks) - 1
	}
	for i, b := range g.blocks {
		if i+1 < len(g.blocks) {
			b.end = g.blocks[i+1].start
		} else {
			b.end = n
		}
		last := g.info[b.end-1]
		if last.hasBranch && int(last.branch) < n {
			b.succs = append(b.succs, g.blockOf[last.branch])
		}
		if last.fallsThrough && b.end < n {
			b.succs = append(b.succs, g.blockOf[b.end])
		}
	}
	for _, b := range g.blocks {
		for _, s := range b.succs {
			g.blocks[s].preds = append(g.blocks[s].preds, b.id)
		}
	}
	return g
}

// reachable returns, per block, whether it is reachable from the entry
// block.
func (g *cfg) reachable() []bool {
	seen := make([]bool, len(g.blocks))
	if len(g.blocks) == 0 {
		return seen
	}
	work := []int{0}
	seen[0] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.blocks[b].succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
