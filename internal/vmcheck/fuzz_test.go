package vmcheck_test

// FuzzVerify hammers the bytecode verifier with corrupted modules: a
// known-good program is compiled fresh, then one proc is damaged as the
// fuzz input directs — an instruction field rewritten, a side table or
// the code stream truncated, the register file shrunk. The verifier's
// contract under corruption is (a) never panic, and (b) when it does
// reject, return a positioned *vmcheck.Error naming the damaged proc.
// Many mutations are semantically harmless (e.g. swapping one constant
// index for another in-bounds one), so acceptance is not itself a
// failure — the differential target FuzzVMDiff covers behavioral
// correctness of accepted code.

import (
	"errors"
	"testing"

	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
	"selspec/internal/vm"
	"selspec/internal/vmcheck"
)

// fuzzVerifySrc exercises every side table: dynamic sends, static
// calls, field ops, object construction, closures, arrays, primitives.
const fuzzVerifySrc = `
class P { field n : Int := 0; }
class Q isa P { }
method bump(p@P, k) { p.n := p.n + k; p.n; }
method bump(q@Q, k) { q.n := q.n + k + 1; q.n; }
method pick(i) { if i < 1 { new P(); } else { new Q(); } }
method main() {
  var i := 0;
  var acc := 0;
  var fs := newarray(1);
  aput(fs, 0, fn(x) { acc := acc + x; x + i; });
  while i < 3 {
    var f := aget(fs, 0);
    acc := acc + bump(pick(i), i) + f(i);
    i := i + 1;
  }
  acc;
}
`

func buildFuzzMachine(tb testing.TB) *vm.Machine {
	tb.Helper()
	parsed, err := lang.Parse(fuzzVerifySrc)
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := ir.Lower(parsed)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: opt.Base})
	if err != nil {
		tb.Fatal(err)
	}
	m, err := vm.New(interp.New(c))
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func FuzzVerify(f *testing.F) {
	// One seed per mutation class; the fuzzer explores the rest.
	f.Add(uint8(0), uint16(0), uint8(0), int32(255))   // opcode rewrite
	f.Add(uint8(1), uint16(2), uint8(1), int32(-1))    // negative A operand
	f.Add(uint8(2), uint16(1), uint8(2), int32(1<<20)) // huge B index
	f.Add(uint8(0), uint16(3), uint8(3), int32(-7))    // negative C (branch target)
	f.Add(uint8(3), uint16(0), uint8(4), int32(9999))  // huge D index
	f.Add(uint8(0), uint16(0), uint8(5), int32(0))     // truncate constants
	f.Add(uint8(1), uint16(0), uint8(6), int32(1))     // truncate names
	f.Add(uint8(2), uint16(0), uint8(7), int32(2))     // truncate code
	f.Add(uint8(0), uint16(0), uint8(8), int32(1))     // shrink register file

	f.Fuzz(func(t *testing.T, procSel uint8, pcSel uint16, field uint8, val int32) {
		// A fresh machine per execution: mutations are in place and must
		// not accumulate across runs.
		m := buildFuzzMachine(t)
		procs := m.Module().Procs()
		if len(procs) == 0 {
			t.Fatal("no compiled procs")
		}
		p := procs[int(procSel)%len(procs)].Proc
		if len(p.Code) == 0 {
			return
		}
		pc := int(pcSel) % len(p.Code)

		switch field % 9 {
		case 0:
			p.Code[pc].Op = vm.Op(uint8(val))
		case 1:
			p.Code[pc].A = val
		case 2:
			p.Code[pc].B = val
		case 3:
			p.Code[pc].C = val
		case 4:
			p.Code[pc].D = val
		case 5:
			p.Consts = p.Consts[:int(uint32(val))%(len(p.Consts)+1)]
		case 6:
			p.Names = p.Names[:int(uint32(val))%(len(p.Names)+1)]
		case 7:
			p.Code = p.Code[:int(uint32(val))%len(p.Code)+1]
		case 8:
			// Shrink only: growing NumRegs is always sound for the
			// catalogue, and huge values would just stress allocation.
			p.NumRegs = int(uint32(val)) % (p.NumRegs + 1)
		}

		err := vmcheck.Verify(m)
		if err == nil {
			return // mutation happened to preserve every invariant
		}
		var ve *vmcheck.Error
		if !errors.As(err, &ve) {
			t.Fatalf("rejection is not a *vmcheck.Error: %T %v", err, err)
		}
		if ve.Proc == "" {
			t.Errorf("rejection names no proc: %v", ve)
		}
		if ve.Error() == "" {
			t.Error("rejection has empty message")
		}
	})
}
