package vmcheck

import (
	"testing"

	"selspec/internal/bits"
	"selspec/internal/interp"
	"selspec/internal/vm"
)

// tproc hand-builds a proc for dataflow unit tests. Only the fields the
// analyses consume are populated.
func tproc(numSlots, numRegs int, code ...vm.Instr) *vm.Proc {
	return &vm.Proc{Name: "t", Kind: vm.KindMethod, NumSlots: numSlots, NumRegs: numRegs, Code: code}
}

func ins(op vm.Op, abcd ...int32) vm.Instr {
	i := vm.Instr{Op: op}
	if len(abcd) > 0 {
		i.A = abcd[0]
	}
	if len(abcd) > 1 {
		i.B = abcd[1]
	}
	if len(abcd) > 2 {
		i.C = abcd[2]
	}
	if len(abcd) > 3 {
		i.D = abcd[3]
	}
	return i
}

// TestCFGDiamond checks block boundaries and edges on an if/else shape.
func TestCFGDiamond(t *testing.T) {
	//  0: cmpbr r0,r1 else->3
	//  1: const r2
	//  2: jump ->4
	//  3: const r2
	//  4: ret r2
	g := buildCFG(tproc(2, 3,
		ins(vm.OpCmpBr, 0, 1, 3, 0),
		ins(vm.OpConst, 2, 0),
		ins(vm.OpJump, 4),
		ins(vm.OpConst, 2, 0),
		ins(vm.OpRet, 2),
	))
	if len(g.blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.blocks))
	}
	wantStarts := []int{0, 1, 3, 4}
	for i, b := range g.blocks {
		if b.start != wantStarts[i] {
			t.Errorf("block %d starts at %d, want %d", i, b.start, wantStarts[i])
		}
	}
	// Entry branches to both arms; both arms join at the return.
	if got := g.blocks[0].succs; len(got) != 2 {
		t.Errorf("entry succs = %v, want 2 edges", got)
	}
	join := g.blocks[3]
	if len(join.preds) != 2 {
		t.Errorf("join preds = %v, want 2 edges", join.preds)
	}
	for _, b := range g.blocks {
		for _, s := range b.succs {
			found := false
			for _, p := range g.blocks[s].preds {
				found = found || p == b.id
			}
			if !found {
				t.Errorf("edge %d->%d has no matching pred entry", b.id, s)
			}
		}
	}
}

// TestMustDefinedDiamond: a temp written on only one arm of a diamond
// is not must-defined at the join; params/locals are defined at entry.
func TestMustDefinedDiamond(t *testing.T) {
	//  0: cmpbr r0,r0 else->2
	//  1: const r1        (temp written on then-arm only)
	//  2: ret r0
	g := buildCFG(tproc(1, 2,
		ins(vm.OpCmpBr, 0, 0, 2, 0),
		ins(vm.OpConst, 1, 0),
		ins(vm.OpRet, 0),
	))
	s := g.mustDefined()
	// Entry block: slot r0 defined, temp r1 not.
	if !s.in[0].Has(0) {
		t.Error("slot r0 not defined at entry")
	}
	if s.in[0].Has(1) {
		t.Error("temp r1 defined at entry")
	}
	// Join block (starting at pc 2) must not see r1 as defined.
	join := g.blockOf[2]
	if s.in[join].Has(1) {
		t.Error("temp r1 must-defined at join despite one-armed write")
	}
	// But the fall-through block after the write does.
	if !s.out[g.blockOf[1]].Has(1) {
		t.Error("temp r1 not defined after its write")
	}
}

// TestLivenessDeadStore: a register written and never read is dead at
// the store; one that flows to the return stays live.
func TestLivenessDeadStore(t *testing.T) {
	//  0: const r1       (never read again -> dead)
	//  1: const r0
	//  2: ret r0
	g := buildCFG(tproc(2, 2,
		ins(vm.OpConst, 1, 0),
		ins(vm.OpConst, 0, 0),
		ins(vm.OpRet, 0),
	))
	l := g.liveness()
	dead := map[int]bool{}
	l.liveOutAt(0, func(pc int, live *bits.Set) {
		g.info[pc].writes.each(func(r int32) {
			if !live.Has(int(r)) {
				dead[pc] = true
			}
		})
	})
	if !dead[0] {
		t.Error("store at pc 0 not detected dead")
	}
	if dead[1] {
		t.Error("store at pc 1 (read by ret) wrongly dead")
	}
}

// TestLoopLiveness: a loop-carried register stays live around the back
// edge.
func TestLoopLiveness(t *testing.T) {
	//  0: const r0
	//  1: cmpbrk r0 else->4
	//  2: bink r0 <- r0 + 1
	//  3: jump ->1
	//  4: ret r0
	g := buildCFG(tproc(1, 1,
		ins(vm.OpConst, 0, 0),
		ins(vm.OpCmpBrK, 0, 0, 4, 0),
		ins(vm.OpBinK, 0, 0, 0, 0),
		ins(vm.OpJump, 1),
		ins(vm.OpRet, 0),
	))
	l := g.liveness()
	// r0 is live into the loop-header block (pc 1) from both edges.
	hdr := g.blockOf[1]
	if !l.in[hdr].Has(0) {
		t.Error("loop-carried r0 not live into header")
	}
}

// TestReachableSkipsDeadTail: code after an unconditional return is
// unreachable.
func TestReachableSkipsDeadTail(t *testing.T) {
	g := buildCFG(tproc(1, 1,
		ins(vm.OpRet, 0),
		ins(vm.OpConst, 0, 0),
		ins(vm.OpRet, 0),
	))
	reach := g.reachable()
	if !reach[g.blockOf[0]] {
		t.Error("entry block unreachable")
	}
	if reach[g.blockOf[1]] {
		t.Error("post-return tail reported reachable")
	}
}

// TestFusedCostCatalogue pins the superinstruction accounting table
// against decode(): for every fused opcode, the cycle and prim-op
// charge decode reports must equal the catalogue's unfused cost, which
// the parity tests in internal/vm tie to the tree interpreter. A new
// fused opcode whose decode entry disagrees with the catalogue fails
// here, before any differential test runs.
func TestFusedCostCatalogue(t *testing.T) {
	for op, want := range fusedUnfusedCost {
		var i vm.Instr
		i.Op = op
		p := tproc(1, 4, i, ins(vm.OpRet, 0))
		got := decode(p, 0)
		if got.cycles != want.Cycles {
			t.Errorf("%s: decode cycles = %d, catalogue %d", op, got.cycles, want.Cycles)
		}
		if got.primOps != want.PrimOps {
			t.Errorf("%s: decode primOps = %d, catalogue %d", op, got.primOps, want.PrimOps)
		}
		if want.PrimOps != 1 {
			t.Errorf("%s: every superinstruction folds exactly one primitive, catalogue says %d", op, want.PrimOps)
		}
	}
	// OpCharge's cost is its A operand: the compiler pre-charges what the
	// tree tier charges for allocation (verified per-proc by the News
	// pairing rule).
	p := tproc(0, 1, ins(vm.OpCharge, interp.CostNewBase+2, 0), ins(vm.OpConst, 0, 0), ins(vm.OpRet, 0))
	if got := decode(p, 0); got.cycles != interp.CostNewBase+2 {
		t.Errorf("OpCharge cycles = %d, want A operand %d", got.cycles, interp.CostNewBase+2)
	}
}
