// Package vmcheck is a dataflow framework over compiled vm.Proc
// bytecode: basic-block CFG construction from the flat instruction
// stream, forward/backward solvers over register bit-sets, and concrete
// analyses — register liveness, def-before-use (must-defined reaching
// definitions), and an instruction-level effect/purity catalogue. Three
// consumers sit on top: the load-time verifier (Verify), the
// post-compile diagnostics feeding `selspec check` (Diagnose), and the
// accounting catalogue cross-checked against the interpreter's cost
// model in tests.
package vmcheck

import (
	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/vm"
)

// regs is a small fixed-size carrier for an instruction's register
// operands (at most 3 scalar reads or writes per opcode).
type regs struct {
	n int
	r [3]int32
}

func regList(rs ...int32) regs {
	var out regs
	for _, r := range rs {
		out.r[out.n] = r
		out.n++
	}
	return out
}

func (r regs) each(fn func(int32)) {
	for i := 0; i < r.n; i++ {
		fn(r.r[i])
	}
}

// instrInfo is the static shape of one decoded instruction: which
// registers it reads and writes, its control flow, its observable
// effects, and its fixed accounting charge. It is derived purely from
// the opcode table below plus the instruction's operands — the single
// place the analyses, the verifier, and the accounting tests agree on
// instruction semantics.
type instrInfo struct {
	reads  regs // scalar register operands read at execution time
	writes regs // scalar register operands written

	// winBase/winLen: a contiguous register window read at execution
	// time. winLen == 0 means none; winLen == winUnknown means the width
	// is only known at run time (OpCallClosure: the callee's parameter
	// count lives in the closure value).
	winBase, winLen int32

	// branch is the conditional/unconditional branch target, valid only
	// when hasBranch is set (the target operand itself may be corrupt,
	// so no in-band sentinel can stand for "none").
	// fallsThrough: execution can continue at pc+1. terminates: the
	// instruction ends the proc's execution (OpRet, OpRetNL).
	branch       int32
	hasBranch    bool
	fallsThrough bool
	terminates   bool

	// Effect classification.
	calls     bool // may invoke guest code (sends, calls, new's initializers)
	heapWrite bool // writes globals, fields, arrays, or captured frames
	mayFault  bool // may raise a runtime error
	pure      bool // no effect beyond its register write (scaffold ops)

	// Fixed accounting the instruction charges on its fast path: cycle
	// cost and primitive-operation count. Data-dependent charges (calls,
	// dynamic lookups) are not modeled; OpCharge's A-operand cost is.
	cycles  uint64
	primOps uint64
}

const winUnknown int32 = -1

// decode returns the instrInfo for the instruction at pc of p.
// Operands are trusted here (decode is also used while verifying); the
// verifier bounds-checks every operand before its dataflow passes run.
func decode(p *vm.Proc, pc int) instrInfo {
	i := p.Code[pc]
	info := instrInfo{fallsThrough: true}
	switch i.Op {
	case vm.OpConst:
		info.writes = regList(i.A)
		info.pure = true

	case vm.OpMove:
		info.reads = regList(i.B)
		info.writes = regList(i.A)
		info.pure = true

	case vm.OpJump:
		info.branch, info.hasBranch = i.A, true
		info.fallsThrough = false
		info.pure = true

	case vm.OpBranchFalse:
		info.reads = regList(i.A)
		info.branch, info.hasBranch = i.B, true
		info.mayFault = true
		info.cycles = interp.CostBin

	case vm.OpCheckBool:
		info.reads = regList(i.A)
		info.mayFault = true

	case vm.OpCmpBr:
		info.reads = regList(i.A, i.B)
		info.branch, info.hasBranch = i.C, true
		info.mayFault = true
		info.cycles = 2 * interp.CostBin
		info.primOps = 1

	case vm.OpCmpBrK:
		info.reads = regList(i.A)
		info.branch, info.hasBranch = i.C, true
		info.mayFault = true
		info.cycles = 2 * interp.CostBin
		info.primOps = 1

	case vm.OpCmpBrField:
		info.reads = regList(i.A, i.B)
		info.branch, info.hasBranch = i.C, true
		info.mayFault = true
		info.cycles = interp.CostFieldCached + 2*interp.CostBin
		info.primOps = 1

	case vm.OpStep:
		info.mayFault = true // step-limit guard

	case vm.OpCharge:
		info.cycles = uint64(i.A)

	case vm.OpGetUp:
		info.writes = regList(i.A)
		info.pure = true

	case vm.OpSetUp:
		info.reads = regList(i.A)
		info.heapWrite = true

	case vm.OpGetGlobal:
		info.writes = regList(i.A)
		info.mayFault = true // read-before-init

	case vm.OpSetGlobal:
		info.reads = regList(i.A)
		info.heapWrite = true

	case vm.OpGetField:
		info.reads = regList(i.B)
		info.writes = regList(i.A)
		info.mayFault = true
		info.cycles = interp.CostFieldCached

	case vm.OpGetFieldDyn:
		info.reads = regList(i.B)
		info.writes = regList(i.A)
		info.mayFault = true
		info.cycles = interp.CostFieldLookup

	case vm.OpSetField:
		info.reads = regList(i.A, i.B)
		info.heapWrite = true
		info.mayFault = true
		info.cycles = interp.CostFieldCached

	case vm.OpSetFieldDyn:
		info.reads = regList(i.A, i.B)
		info.heapWrite = true
		info.mayFault = true
		info.cycles = interp.CostFieldLookup

	case vm.OpNew:
		info.writes = regList(i.A)
		info.winBase, info.winLen = i.C, i.D
		info.calls = true // field-initializer thunks
		info.mayFault = true

	case vm.OpMakeClosure:
		info.writes = regList(i.A)
		info.cycles = interp.CostClosureMake

	case vm.OpCheckClosure:
		info.reads = regList(i.A)
		info.mayFault = true

	case vm.OpCallClosure:
		info.reads = regList(i.B)
		info.writes = regList(i.A)
		info.winBase, info.winLen = i.C, winUnknown
		info.calls = true
		info.mayFault = true

	case vm.OpSend:
		info.writes = regList(i.A)
		info.winBase, info.winLen = i.C, i.D
		info.calls = true
		info.mayFault = true

	case vm.OpStaticCall:
		info.writes = regList(i.A)
		info.winBase, info.winLen = i.C, i.D
		info.calls = true
		info.mayFault = true

	case vm.OpVSelect:
		info.writes = regList(i.A)
		info.winBase, info.winLen = i.C, i.D
		info.calls = true
		info.mayFault = true

	case vm.OpPrim:
		info.writes = regList(i.A)
		info.winBase, info.winLen = i.C, i.D
		info.heapWrite = true // aput and friends
		info.mayFault = true
		info.cycles = interp.CostPrim
		info.primOps = 1

	case vm.OpBin:
		info.reads = regList(i.B, i.C)
		info.writes = regList(i.A)
		info.mayFault = true
		info.cycles = interp.CostBin
		info.primOps = 1

	case vm.OpBinK:
		info.reads = regList(i.B)
		info.writes = regList(i.A)
		info.mayFault = true
		info.cycles = interp.CostBin
		info.primOps = 1

	case vm.OpAGet:
		info.reads = regList(i.B, i.C)
		info.writes = regList(i.A)
		info.mayFault = true
		info.cycles = interp.CostPrim
		info.primOps = 1

	case vm.OpAPut:
		info.reads = regList(i.B, i.C, i.D)
		info.writes = regList(i.A)
		info.heapWrite = true
		info.mayFault = true
		info.cycles = interp.CostPrim
		info.primOps = 1

	case vm.OpFieldBin, vm.OpFieldBinK:
		info.reads = regList(i.B)
		if i.Op == vm.OpFieldBin {
			info.reads = regList(i.B, i.C)
		}
		info.writes = regList(i.A)
		info.mayFault = true
		info.cycles = interp.CostFieldCached + interp.CostBin
		info.primOps = 1

	case vm.OpBinField:
		info.reads = regList(i.B, i.C)
		info.writes = regList(i.A)
		info.mayFault = true
		info.cycles = interp.CostFieldCached + interp.CostBin
		info.primOps = 1

	case vm.OpNot, vm.OpNeg:
		info.reads = regList(i.B)
		info.writes = regList(i.A)
		info.mayFault = true
		info.cycles = interp.CostBin
		info.primOps = 1

	case vm.OpRet:
		info.reads = regList(i.A)
		info.fallsThrough = false
		info.terminates = true
		info.pure = true

	case vm.OpRetNL:
		info.reads = regList(i.A)
		info.fallsThrough = false
		info.terminates = true
		info.mayFault = true

	default:
		// Unknown opcode: no modeled semantics. The verifier rejects it
		// before any analysis consumes this info.
		info.fallsThrough = false
		info.terminates = true
	}
	return info
}

// fusedUnfusedCost maps each superinstruction to the cycle/prim-op
// charge its unfused instruction sequence would make on the fast path —
// the accounting-equality catalogue. A vmcheck test pins decode()
// against this table, and the table against the interpreter constants,
// so a fused op can never silently drift from the sequence it replaces.
var fusedUnfusedCost = map[vm.Op]struct {
	Cycles  uint64
	PrimOps uint64
}{
	// Bin(compare) + BranchFalse: one prim-counted comparison at
	// CostBin, then the branch's CostBin truthiness charge.
	vm.OpCmpBr:  {2 * interp.CostBin, 1},
	vm.OpCmpBrK: {2 * interp.CostBin, 1},
	// GetField + Bin(compare) + BranchFalse.
	vm.OpCmpBrField: {interp.CostFieldCached + 2*interp.CostBin, 1},
	// Const + Bin (the constant load is free, as in the tree tier).
	vm.OpBinK: {interp.CostBin, 1},
	// GetField + Bin, either operand order.
	vm.OpFieldBin:  {interp.CostFieldCached + interp.CostBin, 1},
	vm.OpFieldBinK: {interp.CostFieldCached + interp.CostBin, 1},
	vm.OpBinField:  {interp.CostFieldCached + interp.CostBin, 1},
	// Window-free array access: CallPrim's fast path.
	vm.OpAGet: {interp.CostPrim, 1},
	vm.OpAPut: {interp.CostPrim, 1},
}

// validBinOp reports whether d is a defined ir.BinOp operand.
func validBinOp(d int32) bool { return d >= 0 && d <= int32(ir.OpNE) }

// compareBinOp reports whether d is one of the comparison operators the
// compare-branch superinstructions are defined over.
func compareBinOp(d int32) bool {
	switch ir.BinOp(d) {
	case ir.OpLT, ir.OpLE, ir.OpGT, ir.OpGE, ir.OpEQ, ir.OpNE:
		return true
	}
	return false
}

// validPrim reports whether b is a defined ir.Prim operand.
func validPrim(b int32) bool { return b >= 0 && b <= int32(ir.PrimSame) }
