package vmcheck

import (
	"selspec/internal/bits"
	"selspec/internal/vm"
)

// This file holds the framework's two solver directions, instantiated
// as the concrete register analyses the consumers need:
//
//   - mustDefined: forward, meet = intersection over predecessors. A
//     register is "defined at pc" when every path from entry writes it
//     first. Feeds the verifier's def-before-use check.
//   - liveness: backward, meet = union over successors. A register is
//     "live out of pc" when some path from pc+1 (or the branch target)
//     reads it before writing it. Feeds the dead-store diagnostic.
//
// Both run to fixpoint with a round-robin worklist over basic blocks;
// the lattices are finite (subsets of the proc's registers) and the
// transfer functions monotone, so termination is immediate.

// solver iterates block-level transfer functions to fixpoint. dirn
// picks the direction; meetInto folds one neighbor's boundary set into
// the accumulating meet.
type solver struct {
	g *cfg
	// in/out per block, in the direction's sense: in[b] is the dataflow
	// value at the block's entry edge (forward) and out[b] at its exit.
	in, out []*bits.Set
}

// fullSet returns {0..n-1} — top for the must-defined lattice.
func fullSet(n int) *bits.Set {
	s := bits.New(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

// mustDefined computes, for each block, the set of registers written on
// every path from entry to the block's start. Boundary: the entry block
// starts with the frame slots (the machine's clearSlots initializes
// [args, NumSlots) to nil and arguments fill [0, args)); unreachable
// blocks start at top so they never weaken a join they cannot reach.
func (g *cfg) mustDefined() *solver {
	n := len(g.blocks)
	nr := g.p.NumRegs
	s := &solver{g: g, in: make([]*bits.Set, n), out: make([]*bits.Set, n)}
	entry := bits.New(nr)
	for i := 0; i < g.p.NumSlots; i++ {
		entry.Add(i)
	}
	for b := 0; b < n; b++ {
		if b == 0 {
			s.in[b] = entry.Clone()
		} else {
			s.in[b] = fullSet(nr)
		}
		s.out[b] = s.transferDefs(b, s.in[b])
	}
	changed := true
	for changed {
		changed = false
		for b := 1; b < n; b++ {
			meet := fullSet(nr)
			for _, p := range g.blocks[b].preds {
				meet.RetainAll(s.out[p])
			}
			if meet.Equal(s.in[b]) {
				continue
			}
			s.in[b] = meet
			s.out[b] = s.transferDefs(b, meet)
			changed = true
		}
	}
	return s
}

// transferDefs applies a block's definitions to an incoming defined
// set: defined' = defined ∪ writes(block).
func (s *solver) transferDefs(b int, in *bits.Set) *bits.Set {
	out := in.Clone()
	blk := s.g.blocks[b]
	for pc := blk.start; pc < blk.end; pc++ {
		s.g.info[pc].writes.each(func(r int32) { out.Add(int(r)) })
	}
	return out
}

// definedAt walks block b with the solved block-entry set and calls
// check at each pc with the registers defined on every path to that
// instruction (before it executes).
func (s *solver) definedAt(b int, check func(pc int, defined *bits.Set)) {
	blk := s.g.blocks[b]
	defined := s.in[b].Clone()
	for pc := blk.start; pc < blk.end; pc++ {
		check(pc, defined)
		s.g.info[pc].writes.each(func(r int32) { defined.Add(int(r)) })
	}
}

// liveness computes, per block, the registers live at its entry and
// exit. Reads are modeled conservatively for the consumers' sake: an
// OpCallClosure window (statically unknown width) reads every register
// from its base up, and when the proc needs a heap frame every
// call/closure-creating instruction and every return reads all slots —
// a captured frame outlives any static view of it. Conservative reads
// only ever shrink the dead-store report, never grow it.
func (g *cfg) liveness() *solver {
	n := len(g.blocks)
	s := &solver{g: g, in: make([]*bits.Set, n), out: make([]*bits.Set, n)}
	for b := 0; b < n; b++ {
		s.out[b] = bits.New(g.p.NumRegs)
		s.in[b] = s.transferLive(b, s.out[b])
	}
	changed := true
	for changed {
		changed = false
		for b := n - 1; b >= 0; b-- {
			join := bits.New(g.p.NumRegs)
			for _, succ := range g.blocks[b].succs {
				join.AddAll(s.in[succ])
			}
			if join.Equal(s.out[b]) {
				continue
			}
			s.out[b] = join
			s.in[b] = s.transferLive(b, join)
			changed = true
		}
	}
	return s
}

// instrReads calls fn with every register the instruction at pc may
// read, under the conservative model described at liveness.
func (g *cfg) instrReads(pc int, fn func(int)) {
	in := g.info[pc]
	in.reads.each(func(r int32) { fn(int(r)) })
	switch {
	case in.winLen == winUnknown:
		for r := int(in.winBase); r < g.p.NumRegs; r++ {
			fn(r)
		}
	case in.winLen > 0:
		for r := in.winBase; r < in.winBase+in.winLen; r++ {
			fn(int(r))
		}
	}
	if g.p.NeedsFrame && (in.calls || in.terminates || g.p.Code[pc].Op == vm.OpMakeClosure) {
		for r := 0; r < g.p.NumSlots; r++ {
			fn(r)
		}
	}
}

// transferLive applies one block backward: live' = reads ∪ (live −
// writes), instruction by instruction from the block's end.
func (s *solver) transferLive(b int, out *bits.Set) *bits.Set {
	live := out.Clone()
	blk := s.g.blocks[b]
	for pc := blk.end - 1; pc >= blk.start; pc-- {
		s.g.info[pc].writes.each(func(r int32) { live.Remove(int(r)) })
		s.g.instrReads(pc, func(r int) { live.Add(r) })
	}
	return live
}

// liveOutAt walks block b backward and calls check at each pc with the
// registers live immediately after that instruction.
func (s *solver) liveOutAt(b int, check func(pc int, liveOut *bits.Set)) {
	blk := s.g.blocks[b]
	live := s.out[b].Clone()
	for pc := blk.end - 1; pc >= blk.start; pc-- {
		check(pc, live)
		s.g.info[pc].writes.each(func(r int32) { live.Remove(int(r)) })
		s.g.instrReads(pc, func(r int) { live.Add(r) })
	}
}
