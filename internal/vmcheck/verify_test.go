package vmcheck_test

import (
	"errors"
	"strings"
	"testing"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
	"selspec/internal/programs"
	"selspec/internal/vm"
	"selspec/internal/vmcheck"
)

// TestVerifySweep is the acceptance sweep: every embedded program ×
// every optimizer configuration runs under the VM with verification on,
// which checks all procs before the run and — after it — every lazily
// compiled specialized version too.
func TestVerifySweep(t *testing.T) {
	for _, b := range programs.Registry() {
		for _, cfg := range opt.Configs() {
			p, err := driver.LoadNamed(b.Name, b.Source)
			if err != nil {
				t.Fatalf("%s: load: %v", b.Name, err)
			}
			res, err := p.RunConfig(driver.ConfigOptions{
				Config: cfg,
				Train:  b.Train,
				Test:   b.Train, // small input: the sweep is about coverage, not timing
				RunExtra: func(ro *driver.RunOptions) {
					ro.Verify = true
					ro.CaptureOutput = true
				},
			})
			if err != nil {
				t.Errorf("%s/%s: verified run failed: %v", b.Name, cfg, err)
				continue
			}
			if res.Engine != driver.EngineVM {
				t.Errorf("%s/%s: fell back to the tree tier; nothing was verified", b.Name, cfg)
			}
		}
	}
}

// buildMachine compiles src into a fresh bytecode machine. Each
// mutation test gets its own machine, so corruptions never leak.
func buildMachine(t *testing.T, src string, cfg opt.Config) *vm.Machine {
	t.Helper()
	p, err := driver.LoadNamed("mut.mc", src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	c, err := pipeline.Compile("mut.mc", p.Prog, opt.Options{Config: cfg})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := vm.New(interp.New(c))
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return m
}

// mutSrc exercises every side table the verifier guards: call sites,
// static calls, field ops, constants, classes, closures, globals. The
// methods are kept polymorphic and the closure loop-bearing so the
// inliner cannot erase the sends and closure ops the mutation cases
// need to corrupt.
const mutSrc = `
var lim := 3;
class P { field n : Int := 0; }
class Q isa P { }
method bump(p@P, k) { p.n := p.n + k; if p.n > 100 { p.n := 0; } p.n; }
method bump(q@Q, k) { q.n := q.n + k + 1; if q.n > 100 { q.n := 0; } q.n; }
method pick(i) { if i < 1 { new P(); } else { new Q(); } }
method main() {
  var i := 0;
  var acc := 0;
  var fs := newarray(1);
  aput(fs, 0, fn(x) { acc := acc + x; x + i; });
  var xs := newarray(4);
  while i < lim {
    var o := pick(i);
    acc := acc + bump(o, i);
    var f := aget(fs, 0);
    aput(xs, i, f(acc));
    i := i + 1;
  }
  var done := acc < 10;
  if done { acc := acc + 1; }
  while acc < 100 { acc := acc + 7; }
  acc + aget(xs, 0);
}
`

// findOp locates the first method or closure proc containing the given
// opcode (init thunks carry no source position, so corruption there
// would not exercise the positioned-error contract).
func findOp(t *testing.T, m *vm.Machine, op vm.Op) (*vm.Proc, int) {
	t.Helper()
	for _, pi := range m.Module().Procs() {
		if pi.Proc.Kind == vm.KindInit {
			continue
		}
		for pc, i := range pi.Proc.Code {
			if i.Op == op {
				return pi.Proc, pc
			}
		}
	}
	t.Fatalf("no compiled proc contains %s", op)
	return nil, -1
}

// TestVerifyRejectsCorruption seeds one corruption per bytecode table
// class and asserts the verifier rejects each with a positioned,
// stage-attributed error — never a panic, never silence.
func TestVerifyRejectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, m *vm.Machine)
		want    string // substring of the verifier message
	}{
		{"jump target oob", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpJump)
			p.Code[pc].A = int32(len(p.Code)) + 7
		}, "branch target"},
		{"branch target negative", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpCmpBrK)
			p.Code[pc].C = -2
		}, "branch target"},
		{"register index oob", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpMove)
			p.Code[pc].B = int32(p.NumRegs) + 3
		}, "register"},
		{"window oob", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpSend)
			p.Code[pc].C = int32(p.NumRegs)
		}, "window"},
		{"constant pool oob", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpConst)
			p.Code[pc].B = int32(len(p.Consts))
		}, "constant index"},
		{"field-op table oob", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpFieldBin)
			p.Code[pc].D = int32(len(p.FieldOps)) + 1
		}, "field op index"},
		{"class table oob", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpNew)
			p.Code[pc].B = int32(len(p.News))
		}, "class (News) index"},
		{"closure table oob", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpMakeClosure)
			p.Code[pc].B = -1
		}, "closure index"},
		{"ic slot oob", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpSend)
			p.Sites[p.Code[pc].B] = &ir.CallSite{ID: 1 << 20}
		}, "inline-cache table"},
		{"fused accounting charge", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpCharge)
			p.Code[pc].A += 1
		}, "does not match the tree tier"},
		{"fused accounting pairing", func(t *testing.T, m *vm.Machine) {
			// Point a charge at a sibling class index: that index is
			// charged twice and the original never.
			for _, pi := range m.Module().Procs() {
				p := pi.Proc
				if len(p.News) < 2 {
					continue
				}
				for pc, i := range p.Code {
					if i.Op == vm.OpCharge {
						p.Code[pc].B = (i.B + 1) % int32(len(p.News))
						return
					}
				}
			}
			t.Fatal("no proc with two classes and a charge")
		}, "want exactly 1 and 1"},
		{"def before use", func(t *testing.T, m *vm.Machine) {
			// Read the first temporary before anything writes it.
			p, _ := findOp(t, m, vm.OpSend)
			p.Code[0] = vm.Instr{Op: vm.OpMove, A: 0, B: int32(p.NumSlots)}
		}, "not written on every path"},
		{"truthy message kind oob", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpBranchFalse)
			p.Code[pc].C = int32(vm.NumCheckMsgs())
		}, "message kind"},
		{"compare operator invalid", func(t *testing.T, m *vm.Machine) {
			p, pc := findOp(t, m, vm.OpCmpBrK)
			p.Code[pc].D = int32(ir.OpAdd)
		}, "not a comparison"},
		{"fall off end", func(t *testing.T, m *vm.Machine) {
			p, _ := findOp(t, m, vm.OpRet)
			p.Code[len(p.Code)-1] = vm.Instr{Op: vm.OpMove, A: 0, B: 0}
		}, "falls through past the end"},
		{"retnl in method", func(t *testing.T, m *vm.Machine) {
			for _, pi := range m.Module().Procs() {
				if pi.Proc.Kind != vm.KindMethod {
					continue
				}
				for pc, i := range pi.Proc.Code {
					if i.Op == vm.OpRet {
						pi.Proc.Code[pc].Op = vm.OpRetNL
						return
					}
				}
			}
			t.Fatal("no method proc with a return")
		}, "non-local return in a method"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := buildMachine(t, mutSrc, opt.CHA)
			if err := vmcheck.Verify(m); err != nil {
				t.Fatalf("pristine machine failed verification: %v", err)
			}
			tc.corrupt(t, m)
			err := pipeline.VerifyMachine("mut.mc", opt.CHA.String(), m)
			if err == nil {
				t.Fatal("corruption was not rejected")
			}
			var se *pipeline.StageError
			if !errors.As(err, &se) {
				t.Fatalf("error is not stage-attributed: %T %v", err, err)
			}
			if se.Stage != pipeline.StageVerify {
				t.Errorf("stage = %s, want %s", se.Stage, pipeline.StageVerify)
			}
			var ve *vmcheck.Error
			if !errors.As(err, &ve) {
				t.Fatalf("error chain has no *vmcheck.Error: %v", err)
			}
			if ve.Pos.Line <= 0 {
				t.Errorf("verifier error is unpositioned: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestVerifyCoversAllProcKinds makes sure the verifier walks closure
// and initializer procs, not just method versions.
func TestVerifyCoversAllProcKinds(t *testing.T) {
	m := buildMachine(t, mutSrc, opt.Base)
	kinds := map[vm.ProcKind]bool{}
	for _, pi := range m.Module().Procs() {
		kinds[pi.Proc.Kind] = true
	}
	for _, k := range []vm.ProcKind{vm.KindMethod, vm.KindClosure, vm.KindInit} {
		if !kinds[k] {
			t.Errorf("mutation program compiled no proc of kind %d", k)
		}
	}
	// Corrupt a closure proc: the error must name it.
	var closureName string
	for _, pi := range m.Module().Procs() {
		if pi.Proc.Kind == vm.KindClosure {
			closureName = pi.Proc.Name
			p := pi.Proc
			p.Code[len(p.Code)-1] = vm.Instr{Op: vm.OpRet, A: int32(p.NumRegs) + 9}
			break
		}
	}
	err := vmcheck.Verify(m)
	if err == nil {
		t.Fatal("corrupted closure proc passed verification")
	}
	var ve *vmcheck.Error
	if !errors.As(err, &ve) || ve.Proc != closureName {
		t.Errorf("error does not name the closure proc %q: %v", closureName, err)
	}
}
