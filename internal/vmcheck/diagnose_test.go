package vmcheck_test

import (
	"strings"
	"testing"

	"selspec/internal/check"
	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
	"selspec/internal/programs"
	"selspec/internal/specialize"
	"selspec/internal/vm"
	"selspec/internal/vmcheck"
)

// TestDiagnoseUnreachable: statements after an early return compile to
// bytecode no path reaches.
func TestDiagnoseUnreachable(t *testing.T) {
	src := `
method main() {
  var i := 7;
  return i;
  i + 1;
}
`
	m := buildMachine(t, src, opt.Base)
	ds := vmcheck.Diagnose(m, "u.mc")
	var hits []check.Diagnostic
	for _, d := range ds {
		if d.Check == check.CheckVMUnreachable {
			hits = append(hits, d)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("unreachable findings = %v, want exactly 1", ds)
	}
	d := hits[0]
	if d.File != "u.mc" || d.Line != 2 {
		t.Errorf("finding not positioned at the method: %+v", d)
	}
	if d.Severity != check.SevWarning {
		t.Errorf("severity = %s, want warning", d.Severity)
	}
	if !strings.Contains(d.Message, "unreachable bytecode") {
		t.Errorf("message %q", d.Message)
	}
}

// TestDiagnoseDeadStore: a slot overwritten before any read is a dead
// store.
func TestDiagnoseDeadStore(t *testing.T) {
	src := `
method main() {
  var x := 1;
  x := 2;
  x;
}
`
	m := buildMachine(t, src, opt.Base)
	ds := vmcheck.Diagnose(m, "d.mc")
	found := false
	for _, d := range ds {
		if d.Check == check.CheckVMDeadStore {
			found = true
			if !strings.Contains(d.Message, "never read") {
				t.Errorf("message %q", d.Message)
			}
		}
	}
	if !found {
		t.Fatalf("no dead-store finding in %v", ds)
	}
}

// TestDiagnoseCleanProgram: straight-line code with every value used
// produces no findings.
func TestDiagnoseCleanProgram(t *testing.T) {
	src := `
method main() {
  var i := 0;
  var acc := 0;
  while i < 10 { acc := acc + i; i := i + 1; }
  acc;
}
`
	m := buildMachine(t, src, opt.Base)
	if ds := vmcheck.Diagnose(m, "c.mc"); len(ds) != 0 {
		t.Fatalf("clean program produced findings: %v", ds)
	}
}

// TestDiagnoseBenchmarksClean: every embedded program must be free of
// bytecode findings under every configuration — CI runs `selspec check`
// over the benchmark suite and requires it clean, so a false positive
// here is a gate breaker.
func TestDiagnoseBenchmarksClean(t *testing.T) {
	for _, b := range programs.Registry() {
		for _, cfg := range opt.Configs() {
			p, err := driver.LoadNamed(b.Name, b.Source)
			if err != nil {
				t.Fatalf("%s: load: %v", b.Name, err)
			}
			oo := opt.Options{Config: cfg}
			if cfg == opt.CustMM {
				oo.Lazy = true
			}
			if cfg == opt.Selective {
				cg, err := p.CollectProfile(driver.RunOptions{Overrides: b.Train, CaptureOutput: true})
				if err != nil {
					t.Fatalf("%s: profile: %v", b.Name, err)
				}
				res, err := pipeline.Specialize(b.Name, p.Prog, cg, specialize.Params{})
				if err != nil {
					t.Fatalf("%s: specialize: %v", b.Name, err)
				}
				oo.Specializations = res.Specializations
			}
			c, err := pipeline.Compile(b.Name, p.Prog, oo)
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", b.Name, cfg, err)
			}
			m, err := vm.New(interp.New(c))
			if err != nil {
				t.Fatalf("%s/%s: vm: %v", b.Name, cfg, err)
			}
			ds, err := pipeline.CheckBytecode(b.Name, m)
			if err != nil {
				t.Errorf("%s/%s: %v", b.Name, cfg, err)
				continue
			}
			for _, d := range ds {
				t.Errorf("%s/%s: unexpected finding: %s", b.Name, cfg, d)
			}
		}
	}
}

// TestDiagnoseDeterministic: two runs over the same machine produce the
// same ordered findings.
func TestDiagnoseDeterministic(t *testing.T) {
	src := `
method main() {
  var x := 1;
  var y := 2;
  x := 3;
  y := 4;
  return x + y;
  x;
}
`
	m := buildMachine(t, src, opt.Base)
	a := vmcheck.Diagnose(m, "s.mc")
	if len(a) == 0 {
		t.Fatal("expected findings")
	}
	for i := 0; i < 5; i++ {
		b := vmcheck.Diagnose(m, "s.mc")
		if len(a) != len(b) {
			t.Fatalf("run %d: %d findings vs %d", i, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("run %d: finding %d differs: %v vs %v", i, j, b[j], a[j])
			}
		}
	}
}
