package vmcheck

import (
	"fmt"

	"selspec/internal/bits"
	"selspec/internal/check"
	"selspec/internal/interp"
	"selspec/internal/vm"
)

// scaffold marks opcodes the compiler emits as pure control/data glue.
// An unreachable region made only of these is compiler scaffolding
// (e.g. the join jump after an if whose branches both return), not user
// code, and is not worth a diagnostic.
var scaffold = map[vm.Op]bool{
	vm.OpJump:  true,
	vm.OpRet:   true,
	vm.OpRetNL: true,
	vm.OpConst: true,
	vm.OpMove:  true,
}

// Diagnose runs the post-compile bytecode diagnostics over every proc
// the machine has compiled and returns positioned findings for the
// `selspec check` surface:
//
//   - vm-unreachable-code: a basic block no path from entry reaches,
//     containing at least one non-scaffold instruction (user code after
//     an unconditional return).
//   - vm-dead-store: a frame-slot write no path ever reads back (the
//     variable's value is overwritten or the proc exits first). Reads
//     are modeled conservatively — captured frames and dynamic call
//     windows keep slots alive — so a report means the store is dead on
//     every path.
//
// Findings are positioned at the declaration the proc was compiled
// from; the message carries the proc name to disambiguate specialized
// versions of the same method.
// Specialized versions are skipped: they are the general body re-run
// through the optimizer under narrowed class assumptions, so any
// user-level finding already shows on the general version, while the
// extra static binding and inlining routinely orphan parameter-passing
// moves that no user edit can address.
func Diagnose(m *vm.Machine, file string) []check.Diagnostic {
	var out []check.Diagnostic
	for _, pi := range m.Module().Procs() {
		if pi.Version != nil && !pi.Version.General {
			continue
		}
		out = append(out, diagnoseProc(pi, file)...)
	}
	return out
}

func diagnoseProc(pi vm.ProcInfo, file string) []check.Diagnostic {
	p := pi.Proc
	pos := procPos(pi)
	var out []check.Diagnostic
	report := func(id, format string, args ...any) {
		out = append(out, check.Diagnostic{
			Check:    id,
			Severity: check.SevWarning,
			File:     file,
			Line:     pos.Line,
			Col:      pos.Col,
			Message:  fmt.Sprintf(format, args...),
		})
	}

	g := buildCFG(p)
	reach := g.reachable()

	// Unreachable bytecode. One finding per contiguous unreachable run
	// that holds real user code.
	reported := false
	for _, b := range g.blocks {
		if reach[b.id] {
			reported = false
			continue
		}
		if reported {
			continue // same unreachable run
		}
		for pc := b.start; pc < b.end; pc++ {
			if !scaffold[p.Code[pc].Op] {
				report(check.CheckVMUnreachable,
					"unreachable bytecode in %s: no path from entry reaches pc %d (%s)",
					p.Name, pc, p.Code[pc].Op)
				reported = true
				break
			}
		}
	}

	// Dead stores. Only frame slots (named variables) are candidates:
	// temporaries are compiler-managed and always consumed. Dedupe per
	// slot — `x := ...` inside an if compiles a write per arm. Two
	// exemptions keep the check about lost computations:
	//
	//   - stores of the nil constant: the language requires an
	//     initializer on every declaration, so `var s := nil;` followed
	//     by unconditional reassignment is the sentinel-declaration
	//     idiom, not a lost value;
	//   - register-to-register moves: parameter-passing glue from the
	//     inliner lands in frame slots and routinely goes dead when the
	//     grafted body is further optimized — and a dead copy loses no
	//     computed value in any case.
	if p.NumSlots > 0 {
		exempt := func(pc int) bool {
			i := p.Code[pc]
			return i.Op == vm.OpMove ||
				(i.Op == vm.OpConst && p.Consts[i.B].K == interp.KNil)
		}
		live := g.liveness()
		deadSlots := make([]int, p.NumSlots) // first dead-store pc + 1 per slot; 0 = none
		for _, b := range g.blocks {
			if !reach[b.id] {
				continue
			}
			live.liveOutAt(b.id, func(pc int, liveOut *bits.Set) {
				g.info[pc].writes.each(func(r int32) {
					if r >= int32(p.NumSlots) || liveOut.Has(int(r)) || exempt(pc) {
						return
					}
					if deadSlots[r] == 0 || pc+1 < deadSlots[r] {
						deadSlots[r] = pc + 1
					}
				})
			})
		}
		for r, pc1 := range deadSlots {
			if pc1 == 0 {
				continue
			}
			pc := pc1 - 1
			report(check.CheckVMDeadStore,
				"dead store in %s: the value written to slot r%d at pc %d (%s) is never read",
				p.Name, r, pc, p.Code[pc].Op)
		}
	}
	return out
}
