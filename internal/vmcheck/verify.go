package vmcheck

import (
	"fmt"

	"selspec/internal/bits"
	"selspec/internal/interp"
	"selspec/internal/lang"
	"selspec/internal/vm"
)

// Error is one verifier finding: the proc, the offending pc, and the
// source position of the declaration the proc was compiled from (so the
// pipeline's stage-error machinery can render it positioned).
type Error struct {
	Proc string
	PC   int
	Pos  lang.Pos
	Msg  string
}

func (e *Error) Error() string {
	if e.PC >= 0 {
		return fmt.Sprintf("bytecode verification failed: proc %s pc %d: %s", e.Proc, e.PC, e.Msg)
	}
	return fmt.Sprintf("bytecode verification failed: proc %s: %s", e.Proc, e.Msg)
}

// Position implements the pipeline's positioned-error interface.
func (e *Error) Position() lang.Pos { return e.Pos }

// procPos resolves the source position a proc was compiled from: the
// method declaration for versions, the owning method's declaration for
// closures, and the zero position for initializer thunks.
func procPos(pi vm.ProcInfo) lang.Pos {
	switch {
	case pi.Version != nil && pi.Version.Method.Decl != nil:
		return pi.Version.Method.Decl.Pos
	case pi.Owner != nil && pi.Owner.Decl != nil:
		return pi.Owner.Decl.Pos
	}
	return lang.Pos{}
}

// Verify checks every proc the machine has compiled so far against the
// full invariant catalogue:
//
//   - control flow: jump/branch targets in [0, len(code)); code does
//     not fall off the end; no empty procs
//   - registers: every scalar operand and argument window within
//     [0, NumRegs); NumSlots ≤ NumRegs
//   - pools and side tables: constant, name, site, static, version-
//     selector, field-op, class, closure, and position indices in
//     bounds; field-op entries with a resolved slot and pooled name;
//     IC slots (call-site IDs) within the machine's inline-cache table
//   - kind discipline: static-chain ops only in closure procs; no
//     direct OpRet-adjacent OpRetNL in method procs; OpMakeClosure
//     implies NeedsFrame
//   - operand encodings: binop/compare/prim operands in their enums;
//     truthy-check message kinds in range
//   - accounting: each News entry is referenced by exactly one OpNew
//     and one OpCharge carrying exactly the tree tier's construction
//     cost for that class
//   - dataflow: every register read is preceded by a write on every
//     path from entry (frame slots count as written at entry)
//
// The first violation is returned as an *Error; nil means every proc
// verified. Run it after compilation (eager configs) and again after a
// run (lazy configs compile procs mid-run).
func Verify(m *vm.Machine) error {
	mod := m.Module()
	numSites := len(mod.Compiled().Prog.Sites)
	numGlobals := len(mod.Compiled().Prog.Globals)
	for _, pi := range mod.Procs() {
		if err := verifyProc(pi, numSites, numGlobals); err != nil {
			return err
		}
	}
	return nil
}

// verifyProc runs the catalogue on one proc.
func verifyProc(pi vm.ProcInfo, numSites, numGlobals int) error {
	p := pi.Proc
	pos := procPos(pi)
	fail := func(pc int, format string, args ...any) error {
		return &Error{Proc: p.Name, PC: pc, Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}

	if len(p.Code) == 0 {
		return fail(-1, "empty code stream")
	}
	if p.NumSlots < 0 || p.NumRegs < p.NumSlots {
		return fail(-1, "register layout invalid: slots=%d regs=%d", p.NumSlots, p.NumRegs)
	}

	n := int32(len(p.Code))
	reg := func(pc int, role string, r int32) error {
		if r < 0 || r >= int32(p.NumRegs) {
			return fail(pc, "%s register r%d out of range [0, %d)", role, r, p.NumRegs)
		}
		return nil
	}
	pool := func(pc int, what string, idx int32, size int) error {
		if idx < 0 || int(idx) >= size {
			return fail(pc, "%s index %d out of range [0, %d)", what, idx, size)
		}
		return nil
	}
	window := func(pc int, base, count int32) error {
		if count < 0 || base < 0 || base+count > int32(p.NumRegs) {
			return fail(pc, "argument window r%d..r%d out of range [0, %d)", base, base+count-1, p.NumRegs)
		}
		return nil
	}
	branch := func(pc int, t int32) error {
		if t < 0 || t >= n {
			return fail(pc, "branch target %d out of range [0, %d)", t, n)
		}
		return nil
	}

	// newCharges/newUses count, per News index, the OpCharge and OpNew
	// instructions referencing it — the accounting-equality check.
	newCharges := make([]int, len(p.News))
	newUses := make([]int, len(p.News))
	sawMakeClosure := false

	for pc, i := range p.Code {
		// Generic operand validation from the decoded shape.
		info := decode(p, pc)
		var regErr error
		check := func(role string) func(int32) {
			return func(r int32) {
				if regErr == nil {
					regErr = reg(pc, role, r)
				}
			}
		}
		info.reads.each(check("source"))
		info.writes.each(check("destination"))
		if regErr != nil {
			return regErr
		}
		if info.hasBranch {
			if err := branch(pc, info.branch); err != nil {
				return err
			}
		}
		if info.winLen > 0 {
			if err := window(pc, info.winBase, info.winLen); err != nil {
				return err
			}
		}
		if info.winLen == winUnknown {
			// Width is dynamic (OpCallClosure's arity comes from the
			// callee, after OpCheckClosure pinned it to the compiled
			// argument count). A zero-argument call legally places its
			// empty window one past the last register, so the bound is
			// [0, NumRegs] inclusive rather than the strict register
			// range.
			if info.winBase < 0 || info.winBase > int32(p.NumRegs) {
				return fail(pc, "dynamic window base r%d out of range [0, %d]",
					info.winBase, p.NumRegs)
			}
		}

		// Opcode-specific operand encodings and side tables.
		switch i.Op {
		case vm.OpConst:
			if err := pool(pc, "constant", i.B, len(p.Consts)); err != nil {
				return err
			}

		case vm.OpBranchFalse, vm.OpCheckBool:
			if i.C < 0 || int(i.C) >= vm.NumCheckMsgs() {
				return fail(pc, "truthy-check message kind %d out of range [0, %d)", i.C, vm.NumCheckMsgs())
			}

		case vm.OpCmpBr:
			if !compareBinOp(i.D) {
				return fail(pc, "compare-branch operator %d is not a comparison", i.D)
			}

		case vm.OpCmpBrK:
			if err := pool(pc, "constant", i.B, len(p.Consts)); err != nil {
				return err
			}
			if !compareBinOp(i.D) {
				return fail(pc, "compare-branch operator %d is not a comparison", i.D)
			}

		case vm.OpCmpBrField:
			if err := verifyFieldOp(p, pc, i.D, fail, pool); err != nil {
				return err
			}
			if f := p.FieldOps[i.D]; !compareBinOp(int32(f.Op)) {
				return fail(pc, "compare-branch field operator %d is not a comparison", f.Op)
			}

		case vm.OpCharge:
			if i.A < 0 {
				return fail(pc, "negative cycle charge %d", i.A)
			}
			if err := pool(pc, "class (News)", i.B, len(p.News)); err != nil {
				return err
			}
			newCharges[i.B]++
			cls := p.News[i.B].Class
			want := int32(interp.CostNewBase + len(cls.Fields))
			if i.A != want {
				return fail(pc, "construction charge %d for class %s does not match the tree tier's %d",
					i.A, cls.Name, want)
			}

		case vm.OpGetUp, vm.OpSetUp:
			if p.Kind != vm.KindClosure {
				return fail(pc, "%s outside a closure proc (no static chain at run time)", i.Op)
			}
			if i.B < 1 {
				return fail(pc, "static-chain hop count %d < 1", i.B)
			}
			if i.C < 0 {
				return fail(pc, "negative captured-frame slot %d", i.C)
			}

		case vm.OpGetGlobal:
			if err := pool(pc, "global", i.B, numGlobals); err != nil {
				return err
			}
			if err := pool(pc, "name", i.C, len(p.Names)); err != nil {
				return err
			}

		case vm.OpSetGlobal:
			if err := pool(pc, "global", i.B, numGlobals); err != nil {
				return err
			}

		case vm.OpGetField, vm.OpSetField:
			if i.C < 0 {
				return fail(pc, "negative field slot %d", i.C)
			}
			if err := pool(pc, "name", i.D, len(p.Names)); err != nil {
				return err
			}

		case vm.OpGetFieldDyn, vm.OpSetFieldDyn:
			if err := pool(pc, "name", i.D, len(p.Names)); err != nil {
				return err
			}

		case vm.OpNew:
			if err := pool(pc, "class (News)", i.B, len(p.News)); err != nil {
				return err
			}
			newUses[i.B]++
			if cls := p.News[i.B].Class; int(i.D) > len(cls.Fields) {
				return fail(pc, "construction passes %d leading fields but class %s has %d", i.D, cls.Name, len(cls.Fields))
			}

		case vm.OpMakeClosure:
			sawMakeClosure = true
			if err := pool(pc, "closure", i.B, len(p.Closures)); err != nil {
				return err
			}
			if !p.NeedsFrame {
				return fail(pc, "proc creates a closure but NeedsFrame is unset")
			}

		case vm.OpCheckClosure:
			if i.B < 0 {
				return fail(pc, "negative closure arity %d", i.B)
			}
			if err := pool(pc, "position", i.C, len(p.Poss)); err != nil {
				return err
			}

		case vm.OpCallClosure:
			if err := pool(pc, "position", i.D, len(p.Poss)); err != nil {
				return err
			}

		case vm.OpSend:
			if err := pool(pc, "call site", i.B, len(p.Sites)); err != nil {
				return err
			}
			if id := p.Sites[i.B].ID; id < 0 || id >= numSites {
				return fail(pc, "call site ID %d outside the inline-cache table [0, %d)", id, numSites)
			}

		case vm.OpStaticCall:
			if err := pool(pc, "static target", i.B, len(p.Statics)); err != nil {
				return err
			}

		case vm.OpVSelect:
			if err := pool(pc, "version selector", i.B, len(p.VSels)); err != nil {
				return err
			}
			if id := p.VSels[i.B].Site.ID; id < 0 || id >= numSites {
				return fail(pc, "version-select site ID %d outside the inline-cache table [0, %d)", id, numSites)
			}

		case vm.OpPrim:
			if !validPrim(i.B) {
				return fail(pc, "primitive %d is not defined", i.B)
			}

		case vm.OpBin:
			if !validBinOp(i.D) {
				return fail(pc, "binary operator %d is not defined", i.D)
			}

		case vm.OpBinK:
			if err := pool(pc, "constant", i.C, len(p.Consts)); err != nil {
				return err
			}
			if !validBinOp(i.D) {
				return fail(pc, "binary operator %d is not defined", i.D)
			}

		case vm.OpFieldBin, vm.OpBinField:
			if err := verifyFieldOp(p, pc, i.D, fail, pool); err != nil {
				return err
			}

		case vm.OpFieldBinK:
			if err := verifyFieldOp(p, pc, i.D, fail, pool); err != nil {
				return err
			}
			if err := pool(pc, "constant", i.C, len(p.Consts)); err != nil {
				return err
			}

		case vm.OpRetNL:
			if p.Kind == vm.KindMethod {
				return fail(pc, "non-local return in a method proc (returns there are direct)")
			}

		case vm.OpMove, vm.OpJump, vm.OpStep, vm.OpAGet, vm.OpAPut,
			vm.OpNot, vm.OpNeg, vm.OpRet:
			// Fully covered by the generic operand validation above.

		default:
			return fail(pc, "unknown opcode %d", int(i.Op))
		}

		// Execution must never fall off the end of the stream.
		if pc == len(p.Code)-1 && info.fallsThrough {
			return fail(pc, "%s falls through past the end of the code stream", i.Op)
		}
	}

	if p.NeedsFrame && !sawMakeClosure {
		return fail(-1, "NeedsFrame set but no closure is created")
	}
	// Superinstruction/construction accounting equality: every class
	// entry is constructed exactly once and charged exactly once.
	for idx := range p.News {
		if newUses[idx] != 1 || newCharges[idx] != 1 {
			return fail(-1, "News entry %d (%s): %d constructions, %d charges; want exactly 1 and 1",
				idx, p.News[idx].Class.Name, newUses[idx], newCharges[idx])
		}
	}

	// Dataflow: def-before-use on every path. Operand validity is
	// established above, so the CFG is well-formed here.
	g := buildCFG(p)
	defs := g.mustDefined()
	reach := g.reachable()
	for _, b := range g.blocks {
		if !reach[b.id] {
			// Unreachable code cannot read anything at run time; the
			// diagnostics layer reports it separately.
			continue
		}
		var derr error
		defs.definedAt(b.id, func(pc int, defined *bits.Set) {
			if derr != nil {
				return
			}
			in := g.info[pc]
			in.reads.each(func(r int32) {
				if derr == nil && !defined.Has(int(r)) {
					derr = fail(pc, "%s reads r%d, which is not written on every path from entry", p.Code[pc].Op, r)
				}
			})
			if in.winLen > 0 {
				for r := in.winBase; derr == nil && r < in.winBase+in.winLen; r++ {
					if !defined.Has(int(r)) {
						derr = fail(pc, "%s reads window register r%d, which is not written on every path from entry", p.Code[pc].Op, r)
					}
				}
			}
			// winUnknown (OpCallClosure): the window width is dynamic, so
			// no per-register requirement can be imposed statically.
		})
		if derr != nil {
			return derr
		}
	}
	return nil
}

// verifyFieldOp bounds-checks one FieldOps side-table reference and the
// entry it names.
func verifyFieldOp(p *vm.Proc, pc int, idx int32,
	fail func(int, string, ...any) error,
	pool func(int, string, int32, int) error) error {
	if err := pool(pc, "field op", idx, len(p.FieldOps)); err != nil {
		return err
	}
	f := p.FieldOps[idx]
	if f.Slot < 0 {
		return fail(pc, "field op %d has unresolved slot %d", idx, f.Slot)
	}
	if err := pool(pc, "field-op name", f.Name, len(p.Names)); err != nil {
		return err
	}
	if !validBinOp(int32(f.Op)) {
		return fail(pc, "field op %d operator %d is not defined", idx, f.Op)
	}
	return nil
}
