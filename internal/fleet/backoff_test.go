package fleet

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffForGrowthAndCap(t *testing.T) {
	base, max := 250*time.Millisecond, 15*time.Second
	want := []time.Duration{
		250 * time.Millisecond, 500 * time.Millisecond, time.Second,
		2 * time.Second, 4 * time.Second, 8 * time.Second,
		15 * time.Second, 15 * time.Second, // capped from n=6 on
	}
	for n, w := range want {
		if got := backoffFor(base, max, n); got != w {
			t.Errorf("backoffFor(n=%d) = %v, want %v", n, got, w)
		}
	}
	// Large n must not overflow past the cap.
	if got := backoffFor(base, max, 500); got != max {
		t.Errorf("backoffFor(n=500) = %v, want %v", got, max)
	}
	if got := backoffFor(0, max, 3); got != 0 {
		t.Errorf("backoffFor(base=0) = %v, want 0", got)
	}
}

func TestJitteredStaysInEqualJitterWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := 800 * time.Millisecond
	lo, hi := d, d/2
	for i := 0; i < 2000; i++ {
		j := jittered(d, rng)
		if j < d/2 || j > d {
			t.Fatalf("jittered(%v) = %v, outside [%v, %v]", d, j, d/2, d)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	// The window should actually be exercised, not collapsed to a point.
	if hi-lo < d/4 {
		t.Errorf("jitter spread only [%v, %v] over 2000 draws", lo, hi)
	}
	if got := jittered(0, rng); got != 0 {
		t.Errorf("jittered(0) = %v, want 0", got)
	}
	// nil rng falls back to the global source and stays in-window too.
	if j := jittered(d, nil); j < d/2 || j > d {
		t.Errorf("jittered(nil rng) = %v outside window", j)
	}
}
