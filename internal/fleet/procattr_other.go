//go:build !linux

package fleet

import "os/exec"

// setPdeathsig is a no-op outside Linux: parent-death signals are a
// Linux prctl feature. Orphaned workers still exit on their own when
// their health probes stop mattering — and the CI fleet jobs run on
// Linux, where the real guard applies.
func setPdeathsig(cmd *exec.Cmd) {}
