package fleet

import (
	"math/rand"
	"time"
)

// backoffFor returns the exponential delay for the n-th consecutive
// failure (n counted from 0): base·2ⁿ, capped at max. It is shared by
// the two retry loops in this package — worker restarts after a crash
// and proxy retries against the next ring worker — which want the same
// shape: immediate-ish first retry, rapidly growing pressure relief,
// hard ceiling so a long outage does not push waits to absurdity.
func backoffFor(base, max time.Duration, n int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// jittered spreads d over [d/2, d] ("equal jitter"). A fleet restarts
// workers and retries requests in bursts — a SIGKILLed worker drops
// every in-flight request at the same instant — and without jitter all
// the resulting waits expire in the same instant too, re-stampeding
// whatever they were backing off from. rng may be nil, in which case
// the process-global source is used.
func jittered(d time.Duration, rng *rand.Rand) time.Duration {
	if d <= time.Nanosecond {
		return d
	}
	half := d / 2
	var off int64
	if rng != nil {
		off = rng.Int63n(int64(half) + 1)
	} else {
		off = rand.Int63n(int64(half) + 1)
	}
	return half + time.Duration(off)
}
