package fleet

// Supervision integration tests with real subprocesses. The worker
// processes are this very test binary re-executed: TestMain checks
// FLEET_TEST_WORKER before running any tests and, when set, becomes a
// worker instead — "serve" runs a real internal/server instance (so
// routed responses are byte-identical to single-server ones), "exit1"
// dies immediately (the crash-loop case). Faults are injected with
// real signals (SIGKILL, SIGSTOP/SIGCONT), not mocks: that is the
// point of the package.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"selspec/internal/obs"
	"selspec/internal/server"
)

func TestMain(m *testing.M) {
	switch os.Getenv("FLEET_TEST_WORKER") {
	case "serve":
		workerServe()
		return
	case "exit1":
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// workerServe runs a real specialization server the way `selspec
// serve` would: ephemeral port, "listening on" line on stderr, metrics
// registry, SIGTERM drain.
func workerServe() {
	reg := obs.NewRegistry()
	srv := server.New(server.Config{
		DefaultTimeout: 20 * time.Second,
		Metrics:        reg,
	})
	srv.OnListen = func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "listening on %s\n", a)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	if err := srv.ListenAndServe(ctx, "127.0.0.1:0"); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerCmd builds a re-exec of this test binary in the given worker
// mode.
func workerCmd(mode string) func(int) *exec.Cmd {
	return func(int) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(), "FLEET_TEST_WORKER="+mode)
		return cmd
	}
}

// newSubprocFleet starts a fleet of real worker subprocesses and tears
// it down at test end.
func newSubprocFleet(t *testing.T, workers int, mutate func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{
		Workers:        workers,
		WorkerCommand:  workerCmd("serve"),
		WorkerOutput:   io.Discard,
		ProbeInterval:  50 * time.Millisecond,
		RestartBackoff: 25 * time.Millisecond, RestartBackoffMax: 200 * time.Millisecond,
		RetryBackoff: 5 * time.Millisecond,
		DrainTimeout: 20 * time.Second,
		Seed:         1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := f.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return f
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// drillProg is small enough to finish fast but still exercises
// dispatch and printing, so responses have a non-trivial body to
// compare byte-for-byte.
const drillProg = `
class A
class B isa A
method m(x@A) { 3; }
method m(x@B) { 4; }
method main() {
  var total := 0;
  var i := 0;
  while i < 20 {
    total := total + m(new A()) + m(new B());
    i := i + 1;
  }
  println("drill " + str(total));
  total;
}
`

func postFleet(t *testing.T, f *Fleet, req server.RunRequest) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(string(body))))
	data, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, data
}

// TestFleetChaosDrill is the PR's acceptance drill: a storm of
// requests through the router while workers are SIGKILLed at random.
// Every request must either return the byte-correct answer or a
// classified retryable error; afterwards every killed worker must have
// rejoined and the restart counter must equal the kill count exactly.
func TestFleetChaosDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos drill")
	}
	const (
		workers  = 3
		storm    = 80
		parallel = 8
	)
	f := newSubprocFleet(t, workers, func(c *Config) {
		c.Metrics = obs.NewRegistry()
		c.DefaultTimeout = 20 * time.Second
		c.MaxRetries = 3
	})
	waitFor(t, 15*time.Second, "all workers healthy", func() bool { return f.ring.size() == workers })

	// The reference answer, served before any chaos.
	code, want := postFleet(t, f, server.RunRequest{Source: drillProg})
	if code != http.StatusOK {
		t.Fatalf("reference request failed: %d %s", code, want)
	}

	var (
		mu      sync.Mutex
		badBody []string
		codes   = map[int]int{}
	)
	record := func(code int, body []byte) {
		mu.Lock()
		defer mu.Unlock()
		codes[code]++
		switch code {
		case http.StatusOK:
			if string(body) != string(want) {
				badBody = append(badBody, fmt.Sprintf("%q", body))
			}
		case http.StatusTooManyRequests, 499,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// classified, retryable-by-client outcomes
		default:
			badBody = append(badBody, fmt.Sprintf("status %d: %q", code, body))
		}
	}
	// wave fires n concurrent requests and returns after all complete.
	wave := func(n int) *sync.WaitGroup {
		var wg sync.WaitGroup
		sem := make(chan struct{}, parallel)
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				code, body := postFleet(t, f, server.RunRequest{Source: drillProg})
				record(code, body)
			}()
		}
		return &wg
	}
	// killOne SIGKILLs a random healthy worker, retrying the pick until
	// a signal is actually delivered — guaranteeing every drill run
	// exercises real worker death, however fast the request waves go.
	rng := rand.New(rand.NewSource(7))
	killOne := func() {
		waitFor(t, 15*time.Second, "a healthy worker to kill", func() bool {
			return f.KillWorker(rng.Intn(workers))
		})
	}

	// The storm: four waves, with a SIGKILL landing while each of the
	// middle waves is in flight, so requests race real worker deaths.
	// Each kill waits for the previous victim to rejoin first — a kill
	// must always hit a live incarnation, keeping kills == restarts an
	// exact invariant rather than a lower bound.
	const kills = 3
	wave(storm / 4).Wait()
	for k := 0; k < kills; k++ {
		waitFor(t, 20*time.Second, "full ring before next kill", func() bool {
			return f.ring.size() == workers
		})
		wg := wave(storm / 4)
		time.Sleep(10 * time.Millisecond) // let the wave get airborne
		killOne()
		wg.Wait()
	}

	t.Logf("storm outcome: codes=%v kills=%d", codes, kills)
	if len(badBody) > 0 {
		t.Fatalf("%d wrong responses during chaos, e.g.:\n%s", len(badBody), strings.Join(badBody[:min(3, len(badBody))], "\n"))
	}
	if codes[http.StatusOK] == 0 {
		t.Fatal("no request succeeded during the storm")
	}

	// Killed workers rejoin, and restarts account for every kill: the
	// supervisor observed each SIGKILL (restarts ≥ kills because a
	// respawned worker may be killed again before counting settles —
	// but with KillWorker gating on healthy, each kill is one restart).
	waitFor(t, 20*time.Second, "killed workers to rejoin", func() bool { return f.ring.size() == workers })
	waitFor(t, 10*time.Second, "restart counter to match kills", func() bool { return f.Restarts() == uint64(kills) })

	// And the fleet still serves the byte-correct answer.
	code, after := postFleet(t, f, server.RunRequest{Source: drillProg})
	if code != http.StatusOK || string(after) != string(want) {
		t.Fatalf("post-chaos request: %d %q, want 200 %q", code, after, want)
	}
}

func TestCrashLoopBudgetGivesUp(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cfg := Config{
		Workers:        1,
		WorkerCommand:  workerCmd("exit1"),
		WorkerOutput:   io.Discard,
		RestartBackoff: 5 * time.Millisecond, RestartBackoffMax: 20 * time.Millisecond,
		CrashLoopBudget: 3,
		StartupTimeout:  5 * time.Second,
		Seed:            1,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Fatal("Start succeeded although every incarnation exits 1")
	}
	st := f.Status()
	if st.Workers[0].State != string(stateCrashLoop) {
		t.Errorf("worker state %q, want crashloop", st.Workers[0].State)
	}
	// Budget incarnations ran; the first is a start, not a restart.
	if got := f.Restarts(); got != uint64(cfg.CrashLoopBudget-1) {
		t.Errorf("restarts = %d, want %d", got, cfg.CrashLoopBudget-1)
	}
	// A fleet with no workers degrades to 503, not a hang.
	code, body := postFleet(t, f, server.RunRequest{Bench: "Richards"})
	if code != http.StatusServiceUnavailable {
		t.Errorf("run against dead fleet: %d %s, want 503", code, body)
	}
	if err := f.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestWorkerReinstatedAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	f := newSubprocFleet(t, 2, nil)
	waitFor(t, 15*time.Second, "both workers healthy", func() bool { return f.ring.size() == 2 })

	if !f.KillWorker(0) {
		t.Fatal("KillWorker(0) delivered nothing")
	}
	// Death is observed (off the ring) and then healed: same ring
	// identity, new PID.
	oldPID := f.Status().Workers[0].PID
	waitFor(t, 10*time.Second, "worker 0 to leave the ring", func() bool { return f.ring.size() == 1 })
	waitFor(t, 15*time.Second, "worker 0 to rejoin", func() bool { return f.ring.size() == 2 })
	st := f.Status()
	if st.Workers[0].PID == oldPID {
		t.Errorf("worker 0 rejoined with the same PID %d; expected a fresh process", oldPID)
	}
	if f.Restarts() != 1 {
		t.Errorf("restarts = %d, want 1", f.Restarts())
	}
	// Service works throughout.
	if code, body := postFleet(t, f, server.RunRequest{Source: drillProg}); code != http.StatusOK {
		t.Errorf("post-restart request: %d %s", code, body)
	}
}

func TestProbeEjectsWedgedWorkerAndReinstates(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	f := newSubprocFleet(t, 2, func(c *Config) {
		c.ProbeInterval = 40 * time.Millisecond
		c.ProbeTimeout = 150 * time.Millisecond
		c.EjectAfter = 2
	})
	waitFor(t, 15*time.Second, "both workers healthy", func() bool { return f.ring.size() == 2 })

	// SIGSTOP wedges the process without killing it: the supervisor
	// must NOT restart it (the process is alive), the prober must eject
	// it from the ring.
	pid := f.Status().Workers[0].PID
	if err := syscall.Kill(pid, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "wedged worker ejection", func() bool {
		st := f.Status()
		return st.Workers[0].State == string(stateEjected) && st.Healthy == 1
	})
	if f.Ejections() == 0 {
		t.Error("ejection not counted")
	}
	if f.Restarts() != 0 {
		t.Errorf("supervisor restarted a live (stopped) worker: restarts=%d", f.Restarts())
	}
	// While one worker is out, the other serves its keys.
	if code, body := postFleet(t, f, server.RunRequest{Source: drillProg}); code != http.StatusOK {
		t.Errorf("request during ejection: %d %s", code, body)
	}

	if err := syscall.Kill(pid, syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "wedged worker reinstatement", func() bool {
		st := f.Status()
		return st.Workers[0].State == string(stateHealthy) && st.Healthy == 2
	})
	if got := f.Status().Workers[0].PID; got != pid {
		t.Errorf("reinstated worker has PID %d, want the original %d (no restart)", got, pid)
	}
}

func TestDrainWithDeadWorkerExitsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cfg := Config{
		Workers:       2,
		WorkerCommand: workerCmd("serve"),
		WorkerOutput:  io.Discard,
		ProbeInterval: 50 * time.Millisecond,
		// Long restart backoff: the killed worker is still in backoff
		// when the drain starts, the worst case for reaping.
		RestartBackoff: 30 * time.Second, RestartBackoffMax: 30 * time.Second,
		DrainTimeout: 15 * time.Second,
		Seed:         1,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "both workers healthy", func() bool { return f.ring.size() == 2 })
	if !f.KillWorker(1) {
		t.Fatal("KillWorker(1) delivered nothing")
	}
	waitFor(t, 10*time.Second, "worker 1 off the ring", func() bool { return f.ring.size() == 1 })

	start := time.Now()
	if err := f.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown with a dead worker: %v", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("drain took %v; a dead worker must not hold up the drain", el)
	}
	for _, ws := range f.Status().Workers {
		if ws.State != string(stateStopped) {
			t.Errorf("worker %d state %q after drain, want stopped", ws.ID, ws.State)
		}
	}
}

func TestMergedMetricsMatchFleetTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	reg := obs.NewRegistry()
	f := newSubprocFleet(t, 2, func(c *Config) { c.Metrics = reg })
	waitFor(t, 15*time.Second, "both workers healthy", func() bool { return f.ring.size() == 2 })

	const n = 6
	for i := 0; i < n; i++ {
		// Distinct sources spread the keys across both workers.
		src := fmt.Sprintf("method main() { %d; }", i)
		if code, body := postFleet(t, f, server.RunRequest{Source: src}); code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, code, body)
		}
	}

	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	out := rec.Body.String()
	// The merged view must account for every request exactly once:
	// worker-side served counters sum to n, router-side counter says n,
	// and per-worker attempt counters sum to n (no kills → no retries).
	for _, want := range []string{
		fmt.Sprintf("selspec_server_served_total %d\n", n),
		fmt.Sprintf("selspec_fleet_requests_total %d\n", n),
		"selspec_fleet_worker_restarts_total 0\n",
		"selspec_fleet_retries_total 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged /metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("merged metrics:\n%s", out)
	}
	var attempts uint64
	for i := range f.workers {
		attempts += f.wReq[i].Value()
	}
	if attempts != n {
		t.Errorf("per-worker attempts sum to %d, want %d", attempts, n)
	}
}
