//go:build linux

package fleet

import (
	"os/exec"
	"syscall"
)

// setPdeathsig asks the kernel to SIGKILL a worker if the supervisor
// itself dies without draining (panic, OOM kill, `kill -9`). Without
// it a dead supervisor would orphan N serve processes holding N ports.
// Linux-only; elsewhere workers rely on the normal drain path.
func setPdeathsig(cmd *exec.Cmd) {
	if cmd.SysProcAttr == nil {
		cmd.SysProcAttr = &syscall.SysProcAttr{}
	}
	cmd.SysProcAttr.Pdeathsig = syscall.SIGKILL
}
