// Package fleet is the horizontal-scale, crash-tolerant face of the
// reproduction: a supervisor that runs N `selspec serve` workers as
// subprocesses and an HTTP router that consistent-hashes programs
// across them by the same sha256 key the circuit breaker uses.
//
// The single-process server (internal/server) contains every fault a
// pipeline.Guard boundary can see — but a worker can still die in ways
// no in-process boundary contains: OOM kills, stack exhaustion,
// runaway cgo, `kill -9`. Subprocess isolation is the layer below
// Guard: a worker death costs exactly the requests in flight on that
// worker, and those are retried against the next worker on the hash
// ring, so the fleet as a whole keeps its availability through faults
// the language runtime cannot survive. The pieces:
//
//   - supervision (this file): spawn workers, learn each one's bound
//     address from its "listening on" stderr line, probe /readyz until
//     ready, publish it on the ring, and when the process dies restart
//     it with exponential backoff + jitter under a crash-loop budget
//     (a worker that can't stay up stops being restarted instead of
//     burning CPU forever);
//   - health (this file): a periodic /readyz probe per worker with
//     ejection after consecutive failures and reinstatement on
//     recovery; a worker that reports "draining" leaves the ring
//     quietly without being counted as a failure;
//   - routing (router.go): consistent-hash admission with bounded
//     retries, deadline propagation, and a merged /metrics;
//   - drain: BeginDrain stops admissions, Shutdown lets in-flight
//     proxied requests finish, SIGTERMs every worker (each drains its
//     own admitted work), and reaps the children.
package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"selspec/internal/obs"
	"selspec/internal/server"
)

// Config tunes the fleet. The zero value of every field (except
// WorkerCommand, which is required) is replaced by a production
// default in New.
type Config struct {
	// Workers is the number of serve subprocesses to supervise
	// (default 3).
	Workers int
	// WorkerCommand builds the (unstarted) command for worker i. The
	// CLI wires `os.Executable() serve -addr 127.0.0.1:0 ...` here;
	// tests substitute their own binary. The command must print the
	// server's "listening on <addr>" line to stderr — that is how the
	// supervisor learns the kernel-assigned port.
	WorkerCommand func(i int) *exec.Cmd
	// WorkerOutput receives every worker stderr line, prefixed with
	// the worker index (default os.Stderr; tests use io.Discard).
	WorkerOutput io.Writer

	// DefaultTimeout is the per-request budget when the client does
	// not set timeout_ms (default 30s); MaxTimeout caps client-asked
	// budgets (default DefaultTimeout). The router starts the clock at
	// admission and propagates the *remaining* budget to workers via
	// server.DeadlineHeader on every attempt, so retries never extend
	// a request past what the client was promised.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSourceBytes bounds the request body (default 1 MiB).
	MaxSourceBytes int64
	// MaxRetries is how many additional attempts (against the next
	// distinct ring worker each time) a request gets after a transport
	// failure or a retryable worker 5xx (default 2). Requests are pure
	// — the pipeline has no side effects outside the response — so
	// replaying one that may have partially executed is always safe.
	MaxRetries int
	// RetryBackoff is the base delay between proxy attempts, doubled
	// per attempt and jittered (default 25ms).
	RetryBackoff time.Duration
	// DeadlineGrace is how long past the remaining budget the router
	// waits for a worker's own (better-classified) deadline response
	// before cutting the attempt itself (default 250ms).
	DeadlineGrace time.Duration

	// ProbeInterval is the /readyz probe cadence (default 250ms);
	// ProbeTimeout bounds one probe (default 2s); EjectAfter is the
	// consecutive probe failures that eject a worker from the ring
	// (default 2).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	EjectAfter    int
	// StartupTimeout bounds one incarnation's path to ready: both the
	// wait for the "listening on" line and the wait for the first
	// passing probe (default 15s).
	StartupTimeout time.Duration
	// RestartBackoff/RestartBackoffMax shape the exponential restart
	// delay after a worker death (defaults 250ms, 15s). The exponent
	// is the count of consecutive incarnations that died without ever
	// becoming healthy, so a worker killed mid-service restarts at the
	// base delay while a crash-looping one backs off to the cap.
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// CrashLoopBudget is how many consecutive incarnations may die
	// without becoming healthy before the supervisor gives up on that
	// worker (default 5). The ring rehashes its keys to the survivors.
	CrashLoopBudget int
	// DrainTimeout bounds each phase of Shutdown: in-flight router
	// requests, then worker drains (default 30s).
	DrainTimeout time.Duration
	// Replicas is the virtual-node count per worker on the hash ring
	// (default 64).
	Replicas int
	// Seed seeds the backoff jitter (0 = time-seeded). Drills set it
	// for reproducible schedules.
	Seed int64
	// Metrics, when non-nil, registers the router counters
	// (selspec_fleet_*) and enables GET /metrics, which merges every
	// worker's registry with the router's own. Nil disables the
	// endpoint; Status() still reports the counts.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.WorkerOutput == nil {
		c.WorkerOutput = os.Stderr
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = c.DefaultTimeout
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.DeadlineGrace <= 0 {
		c.DeadlineGrace = 250 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 2
	}
	if c.StartupTimeout <= 0 {
		c.StartupTimeout = 15 * time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 250 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 15 * time.Second
	}
	if c.CrashLoopBudget <= 0 {
		c.CrashLoopBudget = 5
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	return c
}

// workerState is one worker's position in its lifecycle, reported
// verbatim in Status (and therefore in /readyz bodies).
type workerState string

const (
	stateStarting  workerState = "starting"  // spawned, not yet ready
	stateHealthy   workerState = "healthy"   // on the ring, passing probes
	stateEjected   workerState = "ejected"   // alive but failing probes; off the ring
	stateDraining  workerState = "draining"  // reports draining; off the ring, not a failure
	stateBackoff   workerState = "backoff"   // dead; restart scheduled
	stateCrashLoop workerState = "crashloop" // budget exhausted; not restarted
	stateStopped   workerState = "stopped"   // fleet drain reaped it
)

// worker is one supervised subprocess slot. The slot (and its ring
// identity) outlives any individual process incarnation.
type worker struct {
	id     int
	ringID string

	mu         sync.Mutex
	state      workerState
	addr       string // bound address of the current incarnation ("" while down)
	pid        int
	proc       *os.Process
	restarts   uint64 // respawns after the initial spawn
	probeFails int    // consecutive failed probes
	startFails int    // consecutive incarnations that never became healthy
	profdb     string // worker's profile-database state from its last probe
}

// listenRe extracts the bound address from a worker's startup line
// ("selspec serve: listening on 127.0.0.1:43175").
var listenRe = regexp.MustCompile(`listening on (\S+)`)

// Fleet is the supervisor + router. Create with New, spawn with Start
// (or let ListenAndServe do both), route via Handler.
type Fleet struct {
	cfg     Config
	ring    *ring
	workers []*worker
	byRing  map[string]*worker

	client      *http.Client // proxy client (per-attempt deadlines via request contexts)
	probeClient *http.Client

	draining  chan struct{}
	drainOnce sync.Once
	inflight  sync.WaitGroup // router requests being proxied
	wg        sync.WaitGroup // supervision + probe loops

	rngMu sync.Mutex
	rng   *rand.Rand

	served    atomic.Uint64
	profiles  atomic.Uint64 // /profiles requests forwarded (kept apart from served: existing drills assert exact /run counts)
	retries   atomic.Uint64
	restarts  atomic.Uint64
	ejections atomic.Uint64
	// Registry mirrors of the atomics (nil and free when Metrics is
	// unset; obs instruments are nil-safe).
	mServed, mRetries, mRestarts, mEjections *obs.Counter
	mProfiles                                *obs.Counter
	wReq, wErr                               []*obs.Counter

	mux *http.ServeMux

	// OnListen, when set before ListenAndServe, receives the router's
	// bound address (tests listen on :0 and need the real port).
	OnListen func(net.Addr)
}

// New builds a Fleet with cfg's gaps filled by production defaults.
// Nothing is spawned until Start.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.WorkerCommand == nil {
		return nil, errors.New("fleet: Config.WorkerCommand is required")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	f := &Fleet{
		cfg:         cfg,
		ring:        newRing(cfg.Replicas),
		byRing:      make(map[string]*worker, cfg.Workers),
		client:      &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16, IdleConnTimeout: 30 * time.Second}},
		probeClient: &http.Client{Timeout: cfg.ProbeTimeout},
		draining:    make(chan struct{}),
		rng:         rand.New(rand.NewSource(seed)),
	}
	f.mServed = cfg.Metrics.Counter("selspec_fleet_requests_total")
	f.mProfiles = cfg.Metrics.Counter("selspec_fleet_profile_requests_total")
	f.mRetries = cfg.Metrics.Counter("selspec_fleet_retries_total")
	f.mRestarts = cfg.Metrics.Counter("selspec_fleet_worker_restarts_total")
	f.mEjections = cfg.Metrics.Counter("selspec_fleet_ejections_total")
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{id: i, ringID: fmt.Sprintf("w%d", i), state: stateStarting}
		f.workers = append(f.workers, w)
		f.byRing[w.ringID] = w
		f.wReq = append(f.wReq, cfg.Metrics.Counter("selspec_fleet_worker_requests_total", obs.Label{Key: "worker", Value: strconv.Itoa(i)}))
		f.wErr = append(f.wErr, cfg.Metrics.Counter("selspec_fleet_worker_errors_total", obs.Label{Key: "worker", Value: strconv.Itoa(i)}))
	}
	f.mux = http.NewServeMux()
	f.mux.HandleFunc("POST /run", f.handleRun)
	f.mux.HandleFunc("POST /profiles/{program}", f.handleProfiles)
	f.mux.HandleFunc("GET /profiles/{program}", f.handleProfiles)
	f.mux.HandleFunc("GET /healthz", f.handleHealthz)
	f.mux.HandleFunc("GET /readyz", f.handleReadyz)
	f.mux.HandleFunc("GET /metrics", f.handleMetrics)
	return f, nil
}

// Handler exposes the router's routes.
func (f *Fleet) Handler() http.Handler { return f.mux }

// Start spawns every worker and blocks until the ring has at least one
// routable member, or every worker has exhausted its crash-loop budget
// (error). Idempotent callers must not call it twice.
func (f *Fleet) Start() error {
	for _, w := range f.workers {
		f.wg.Add(1)
		go f.supervise(w)
	}
	f.wg.Add(1)
	go f.probeLoop()
	for {
		if f.ring.size() > 0 {
			return nil
		}
		if f.isDraining() {
			return errors.New("fleet: draining before any worker became ready")
		}
		allDead := true
		for _, w := range f.workers {
			w.mu.Lock()
			st := w.state
			w.mu.Unlock()
			if st != stateCrashLoop {
				allDead = false
				break
			}
		}
		if allDead {
			return fmt.Errorf("fleet: all %d workers exhausted their crash-loop budget", len(f.workers))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// supervise runs one worker slot's restart loop: spawn an incarnation,
// wait for it to die, back off, repeat — until the fleet drains or the
// crash-loop budget is gone.
func (f *Fleet) supervise(w *worker) {
	defer f.wg.Done()
	for first := true; ; first = false {
		if f.isDraining() {
			f.setState(w, stateStopped)
			return
		}
		w.mu.Lock()
		fails := w.startFails
		w.mu.Unlock()
		if fails >= f.cfg.CrashLoopBudget {
			f.setState(w, stateCrashLoop)
			return
		}
		if !first {
			f.restarts.Add(1)
			f.mRestarts.Inc()
			w.mu.Lock()
			w.restarts++
			w.mu.Unlock()
		}
		becameHealthy := f.runOnce(w)
		f.ring.remove(w.ringID)
		w.mu.Lock()
		w.proc = nil
		w.addr = ""
		if becameHealthy {
			w.startFails = 0
		} else {
			w.startFails++
		}
		fails = w.startFails
		w.state = stateBackoff
		w.mu.Unlock()
		if f.isDraining() {
			f.setState(w, stateStopped)
			return
		}
		if fails >= f.cfg.CrashLoopBudget {
			continue // loop top marks crashloop and exits
		}
		delay := f.jitter(backoffFor(f.cfg.RestartBackoff, f.cfg.RestartBackoffMax, fails))
		select {
		case <-time.After(delay):
		case <-f.draining:
			f.setState(w, stateStopped)
			return
		}
	}
}

// runOnce runs one incarnation of w: spawn, learn the bound address
// from the "listening on" stderr line, probe /readyz until ready,
// publish on the ring, then block until the process exits (stderr EOF
// is the death signal — it fires for SIGKILL as reliably as for a
// clean exit). Reports whether this incarnation ever became healthy.
func (f *Fleet) runOnce(w *worker) bool {
	cmd := f.cfg.WorkerCommand(w.id)
	if cmd == nil {
		return false
	}
	setPdeathsig(cmd)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return false
	}
	if err := cmd.Start(); err != nil {
		return false
	}
	f.setState(w, stateStarting)
	w.mu.Lock()
	w.proc = cmd.Process
	w.pid = cmd.Process.Pid
	w.probeFails = 0
	w.mu.Unlock()

	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 0, 4096), 256*1024)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			fmt.Fprintf(f.cfg.WorkerOutput, "[worker %d] %s\n", w.id, line)
		}
	}()
	reap := func() {
		<-scanDone
		_ = cmd.Wait()
	}

	var addr string
	select {
	case addr = <-addrCh:
	case <-scanDone: // died before binding
		_ = cmd.Wait()
		return false
	case <-time.After(f.cfg.StartupTimeout):
		_ = cmd.Process.Kill()
		reap()
		return false
	case <-f.draining:
		_ = cmd.Process.Signal(syscall.SIGTERM)
		reap()
		return false
	}
	w.mu.Lock()
	w.addr = addr
	w.mu.Unlock()

	healthy := f.awaitReady(addr, scanDone)
	if healthy {
		w.mu.Lock()
		w.state = stateHealthy
		w.probeFails = 0
		w.mu.Unlock()
		f.ring.add(w.ringID)
	} else if !f.isDraining() {
		// Bound but never became ready within the startup budget:
		// treat as a failed start and recycle the process.
		_ = cmd.Process.Kill()
	}
	reap()
	return healthy
}

// awaitReady polls /readyz until it passes, the worker dies, the fleet
// drains, or the startup budget runs out.
func (f *Fleet) awaitReady(addr string, dead <-chan struct{}) bool {
	deadline := time.Now().Add(f.cfg.StartupTimeout)
	for time.Now().Before(deadline) {
		if res, _ := f.probeOnce(addr); res == probeHealthy {
			return true
		}
		select {
		case <-time.After(25 * time.Millisecond):
		case <-dead:
			return false
		case <-f.draining:
			return false
		}
	}
	return false
}

type probeResult int

const (
	probeHealthy probeResult = iota
	probeDraining
	probeFailed
)

// probeOnce GETs a worker's /readyz and classifies the answer using
// the JSON body: 200 is healthy, 503 with status "draining" is a
// deliberate wind-down (not a failure), anything else — including a
// refused connection — is a failure.
func (f *Fleet) probeOnce(addr string) (probeResult, server.Health) {
	resp, err := f.probeClient.Get("http://" + addr + "/readyz")
	if err != nil {
		return probeFailed, server.Health{}
	}
	defer resp.Body.Close()
	var h server.Health
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h)
	switch {
	case resp.StatusCode == http.StatusOK:
		return probeHealthy, h
	case resp.StatusCode == http.StatusServiceUnavailable && h.Status == "draining":
		return probeDraining, h
	default:
		return probeFailed, h
	}
}

// probeLoop is the fleet's health prober: every ProbeInterval it
// checks each worker that has a bound address, ejecting those that
// fail EjectAfter consecutive probes and reinstating them the moment
// a probe passes again. Ejection and death are different paths on
// purpose: an ejected worker's process is alive (maybe wedged, maybe
// just slow under load) so the supervisor leaves it alone, while a
// dead worker's supervise loop restarts it.
func (f *Fleet) probeLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.draining:
			return
		case <-t.C:
		}
		for _, w := range f.workers {
			w.mu.Lock()
			st, addr := w.state, w.addr
			w.mu.Unlock()
			if addr == "" || (st != stateHealthy && st != stateEjected && st != stateDraining) {
				continue
			}
			res, h := f.probeOnce(addr)
			w.mu.Lock()
			if w.addr != addr { // incarnation changed under us; stale result
				w.mu.Unlock()
				continue
			}
			w.profdb = h.ProfDB
			switch res {
			case probeHealthy:
				w.probeFails = 0
				if w.state == stateEjected || w.state == stateDraining {
					w.state = stateHealthy
					f.ring.add(w.ringID)
				}
			case probeDraining:
				if w.state != stateDraining {
					w.state = stateDraining
					f.ring.remove(w.ringID)
				}
			case probeFailed:
				w.probeFails++
				if w.probeFails >= f.cfg.EjectAfter && w.state == stateHealthy {
					w.state = stateEjected
					f.ring.remove(w.ringID)
					f.ejections.Add(1)
					f.mEjections.Inc()
				}
			}
			w.mu.Unlock()
		}
	}
}

func (f *Fleet) setState(w *worker, st workerState) {
	w.mu.Lock()
	w.state = st
	w.mu.Unlock()
}

func (f *Fleet) isDraining() bool {
	select {
	case <-f.draining:
		return true
	default:
		return false
	}
}

// jitter applies the fleet's seeded jitter source to a delay.
func (f *Fleet) jitter(d time.Duration) time.Duration {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return jittered(d, f.rng)
}

// KillWorker delivers SIGKILL to worker i if it is currently healthy —
// the chaos drill's hook for uncontainable worker death. Reports
// whether a signal was delivered (false when the worker is already
// down, restarting, or the index is out of range), so a drill can
// count exactly the kills that must produce restarts.
func (f *Fleet) KillWorker(i int) bool {
	if i < 0 || i >= len(f.workers) {
		return false
	}
	w := f.workers[i]
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state != stateHealthy || w.proc == nil {
		return false
	}
	return w.proc.Kill() == nil
}

// Restarts reports the total worker respawns so far.
func (f *Fleet) Restarts() uint64 { return f.restarts.Load() }

// Ejections reports the total probe-driven ring ejections so far.
func (f *Fleet) Ejections() uint64 { return f.ejections.Load() }

// BeginDrain stops admissions: new /run requests get 503, /readyz
// flips to 503, and the supervisor stops restarting workers.
// Idempotent.
func (f *Fleet) BeginDrain() {
	f.drainOnce.Do(func() { close(f.draining) })
}

// Shutdown drains the fleet: stop admissions, let every request the
// router already admitted finish (they keep retrying against live
// workers), then SIGTERM every worker — each drains its own admitted
// work under the server's drain contract — and reap the children.
// Stragglers past DrainTimeout are SIGKILLed, which is reported as an
// error because it means admitted work may have been cut.
func (f *Fleet) Shutdown(ctx context.Context) error {
	f.BeginDrain()

	// Phase 1: in-flight router requests.
	inflightDone := make(chan struct{})
	go func() {
		f.inflight.Wait()
		close(inflightDone)
	}()
	select {
	case <-inflightDone:
	case <-time.After(f.cfg.DrainTimeout):
	case <-ctx.Done():
	}

	// Phase 2: worker drains. SIGTERM triggers each worker's own
	// graceful drain; its process exit unblocks its supervise loop.
	for _, w := range f.workers {
		w.mu.Lock()
		if w.proc != nil {
			_ = w.proc.Signal(syscall.SIGTERM)
		}
		w.mu.Unlock()
	}
	loopsDone := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(loopsDone)
	}()
	select {
	case <-loopsDone:
		return nil
	case <-time.After(f.cfg.DrainTimeout):
	case <-ctx.Done():
	}
	for _, w := range f.workers {
		w.mu.Lock()
		if w.proc != nil {
			_ = w.proc.Kill()
		}
		w.mu.Unlock()
	}
	<-loopsDone
	return errors.New("fleet: drain timeout; straggling workers were killed")
}

// ListenAndServe starts the workers, binds addr and routes until ctx
// is cancelled (the CLI wires SIGTERM/SIGINT here), then drains the
// router and the workers. Returns nil after a clean drain.
func (f *Fleet) ListenAndServe(ctx context.Context, addr string) error {
	if err := f.Start(); err != nil {
		_ = f.Shutdown(context.Background())
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		_ = f.Shutdown(context.Background())
		return err
	}
	if f.OnListen != nil {
		f.OnListen(ln.Addr())
	}
	hs := &http.Server{Handler: f.mux}
	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		f.BeginDrain()
		dctx, cancel := context.WithTimeout(context.Background(), f.cfg.DrainTimeout)
		defer cancel()
		shutdownDone <- hs.Shutdown(dctx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		_ = f.Shutdown(context.Background())
		return err
	}
	herr := <-shutdownDone
	serr := f.Shutdown(context.Background())
	if herr != nil {
		return fmt.Errorf("drain: %w", herr)
	}
	return serr
}

// Status snapshots the fleet for /healthz, /readyz and tests.
type Status struct {
	// Status is "ok" (≥1 routable worker), "no_workers" (empty ring)
	// or "draining".
	Status string `json:"status"`
	// Healthy is the number of workers currently on the ring.
	Healthy   int            `json:"healthy"`
	Served    uint64         `json:"served"`
	Profiles  uint64         `json:"profiles"` // /profiles requests forwarded
	Retries   uint64         `json:"retries"`
	Restarts  uint64         `json:"restarts"`
	Ejections uint64         `json:"ejections"`
	Workers   []WorkerStatus `json:"workers"`
}

// WorkerStatus is one worker slot's lifecycle snapshot.
type WorkerStatus struct {
	ID         int    `json:"id"`
	State      string `json:"state"`
	Addr       string `json:"addr,omitempty"`
	PID        int    `json:"pid,omitempty"`
	Restarts   uint64 `json:"restarts"`
	ProbeFails int    `json:"probe_fails,omitempty"`
	StartFails int    `json:"start_fails,omitempty"`
	// ProfDB is the worker's profile-database state from its last
	// health probe ("recovering", "ready", "failed"); empty when the
	// fleet runs without -profile-db. A "recovering" worker still takes
	// /run traffic — only its /profiles endpoints are waiting.
	ProfDB string `json:"profdb,omitempty"`
}

// Status reports the fleet's current shape.
func (f *Fleet) Status() Status {
	st := Status{
		Healthy:   f.ring.size(),
		Served:    f.served.Load(),
		Profiles:  f.profiles.Load(),
		Retries:   f.retries.Load(),
		Restarts:  f.restarts.Load(),
		Ejections: f.ejections.Load(),
	}
	switch {
	case f.isDraining():
		st.Status = "draining"
	case st.Healthy == 0:
		st.Status = "no_workers"
	default:
		st.Status = "ok"
	}
	for _, w := range f.workers {
		w.mu.Lock()
		st.Workers = append(st.Workers, WorkerStatus{
			ID:         w.id,
			State:      string(w.state),
			Addr:       w.addr,
			PID:        w.pid,
			Restarts:   w.restarts,
			ProbeFails: w.probeFails,
			StartFails: w.startFails,
			ProfDB:     w.profdb,
		})
		w.mu.Unlock()
	}
	return st
}
