package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// ring is the consistent-hash ring that assigns program keys to
// workers. Every member contributes `replicas` virtual points so load
// spreads evenly, and a key is owned by the first point clockwise from
// its hash. The properties the router relies on:
//
//   - stability: adding or removing one member only remaps the keys
//     that member owned (or now owns) — the rest keep their worker,
//     which is the whole reason to consistent-hash: a program keeps
//     hitting the worker whose caches are warm for it even as other
//     workers die and rejoin;
//   - graceful degradation: removing a dead member implicitly rehashes
//     its keys across the survivors, no bookkeeping needed;
//   - retry order: pick with a skip set walks clockwise past the
//     failed owner to the next distinct member, giving every retry a
//     deterministic, distinct target.
//
// Membership is keyed by a stable worker ID (not its address), so a
// restarted worker reclaims exactly its old ring segment.
type ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	id   string
}

func newRing(replicas int) *ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &ring{replicas: replicas, members: map[string]struct{}{}}
}

// hash64 maps a string onto the ring's 64-bit circle. sha256 matches
// the program-key derivation in internal/server, so key distribution
// inherits its uniformity.
func hash64(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// add inserts a member (idempotent).
func (r *ring) add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; ok {
		return
	}
	r.members[id] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", id, i)), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// remove deletes a member (idempotent); its keys implicitly rehash to
// the survivors.
func (r *ring) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// size reports the number of members currently on the ring.
func (r *ring) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// pick returns the member owning key, skipping members in skip — the
// retry path walks clockwise from the owner to the next distinct
// member. Returns "" when the ring is empty or every member is
// skipped.
func (r *ring) pick(key string, skip map[string]bool) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.points)
	if n == 0 {
		return ""
	}
	h := hash64(key)
	idx := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < n; i++ {
		p := r.points[(idx+i)%n]
		if skip[p.id] {
			continue
		}
		return p.id
	}
	return ""
}
