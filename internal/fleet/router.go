package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"selspec/internal/server"
)

// Router-specific error kinds, extending the server's set. Responses
// produced *by a worker* pass through verbatim (their kinds included);
// these cover the failures only the router can see.
const (
	// KindNoWorkers: the hash ring is empty — every worker is dead,
	// crash-looped or draining. Retryable; Retry-After hints at the
	// restart backoff horizon.
	KindNoWorkers = "no_workers"
	// KindUpstream: every attempt within the retry budget failed at
	// the transport layer (connection refused, connection reset
	// mid-body). The request may be retried.
	KindUpstream = "upstream_unavailable"
)

// Sentinel classifications for one proxy attempt. proxyOnce either
// relays a final response (done=true), or reports why it could not so
// handleRun can decide between retrying, 499, and 504.
var (
	errRetryable       = errors.New("fleet: retryable attempt failure")
	errClientGone      = errors.New("fleet: client disconnected")
	errBudgetExhausted = errors.New("fleet: request budget exhausted")
)

// handleRun is the fleet's admission path. It owns three request-level
// concerns the workers cannot:
//
//   - placement: the program key (same sha256 derivation the breaker
//     uses) picks a consistent worker, so a given program keeps
//     hitting warm caches;
//   - the retry loop: a transport failure or retryable worker 5xx
//     sends the request to the next distinct ring worker, after a
//     jittered backoff, while budget remains — safe because runs are
//     pure (a partially-executed replay has no observable residue);
//   - the deadline: the budget is computed once here and its remainder
//     propagated to every attempt via server.DeadlineHeader, so
//     retries subdivide the promised budget instead of stacking fresh
//     worker timeouts on top of it.
func (f *Fleet) handleRun(w http.ResponseWriter, r *http.Request) {
	if f.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, server.ErrorBody{
			Kind: server.KindDraining, Error: "fleet is draining", RetryAfterMS: 1000,
		})
		return
	}
	f.inflight.Add(1)
	defer f.inflight.Done()

	body, err := io.ReadAll(io.LimitReader(r.Body, f.cfg.MaxSourceBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, server.ErrorBody{Kind: server.KindBadRequest, Error: "reading request body: " + err.Error()})
		return
	}
	if int64(len(body)) > f.cfg.MaxSourceBytes {
		writeErr(w, http.StatusBadRequest, server.ErrorBody{
			Kind: server.KindBadRequest, Error: fmt.Sprintf("request body exceeds %d bytes", f.cfg.MaxSourceBytes),
		})
		return
	}
	var req server.RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, server.ErrorBody{Kind: server.KindBadRequest, Error: "invalid JSON: " + err.Error()})
		return
	}
	if (req.Source == "") == (req.Bench == "") {
		writeErr(w, http.StatusBadRequest, server.ErrorBody{Kind: server.KindBadRequest, Error: "exactly one of source and bench must be set"})
		return
	}
	key := server.ProgramKey(req.Source, req.Bench)

	// The whole-request budget, fixed at admission. Every attempt gets
	// the *remainder*; once it is gone the answer is 504 regardless of
	// how many retries were nominally left.
	budget := f.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		budget = time.Duration(req.TimeoutMS) * time.Millisecond
		if budget > f.cfg.MaxTimeout {
			budget = f.cfg.MaxTimeout
		}
	}
	deadline := time.Now().Add(budget)

	f.served.Add(1)
	f.mServed.Inc()

	tried := make(map[string]bool, f.cfg.MaxRetries+1)
	var lastErr error
	for attempt := 0; attempt <= f.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			f.retries.Add(1)
			f.mRetries.Inc()
			delay := f.jitter(backoffFor(f.cfg.RetryBackoff, 2*time.Second, attempt-1))
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				writeErr(w, 499, server.ErrorBody{Kind: server.KindCanceled, Error: "client disconnected"})
				return
			}
		}
		id := f.ring.pick(key, tried)
		if id == "" && len(tried) > 0 {
			// Every distinct live worker has been tried; if any remain
			// on the ring, start over on the owner rather than giving
			// up while capacity exists.
			clear(tried)
			id = f.ring.pick(key, nil)
		}
		if id == "" {
			writeErr(w, http.StatusServiceUnavailable, server.ErrorBody{
				Kind: KindNoWorkers, Error: "no healthy workers", RetryAfterMS: f.cfg.RestartBackoff.Milliseconds(),
			})
			return
		}
		tried[id] = true
		wk := f.byRing[id]

		done, err := f.proxyOnce(w, r, wk, body, deadline)
		if done {
			return
		}
		switch {
		case errors.Is(err, errClientGone):
			writeErr(w, 499, server.ErrorBody{Kind: server.KindCanceled, Error: "client disconnected"})
			return
		case errors.Is(err, errBudgetExhausted):
			writeErr(w, http.StatusGatewayTimeout, server.ErrorBody{
				Kind: server.KindDeadline, Error: fmt.Sprintf("request budget of %v exhausted", budget),
			})
			return
		}
		lastErr = err
	}
	writeErr(w, http.StatusServiceUnavailable, server.ErrorBody{
		Kind:         KindUpstream,
		Error:        fmt.Sprintf("all %d attempts failed; last: %v", f.cfg.MaxRetries+1, lastErr),
		RetryAfterMS: f.cfg.RetryBackoff.Milliseconds(),
	})
}

// proxyOnce sends one attempt to one worker. Outcomes:
//
//   - done=true: a final response was relayed to the client verbatim
//     (success, or any worker answer that retrying cannot improve —
//     4xx, 504 deadline, 499 cancel);
//   - errRetryable: transport failure or a retryable worker status
//     (500 contained-panic escalation, 502, 503 overload/drain) — the
//     caller moves to the next ring worker;
//   - errClientGone / errBudgetExhausted: terminal, caller answers
//     499 / 504.
//
// A worker SIGKILLed mid-response surfaces as a read error *after* a
// 200 header; because the response is buffered before any byte reaches
// the client, that still classifies as retryable and the client sees
// only the clean retried answer.
func (f *Fleet) proxyOnce(w http.ResponseWriter, r *http.Request, wk *worker, body []byte, deadline time.Time) (bool, error) {
	wk.mu.Lock()
	addr := wk.addr
	wk.mu.Unlock()
	if addr == "" {
		return false, fmt.Errorf("%w: worker %d has no address", errRetryable, wk.id)
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return false, errBudgetExhausted
	}
	f.wReq[wk.id].Inc()

	// The worker gets the exact remaining budget via the header and a
	// slightly laxer transport deadline, so its own 504 — which knows
	// the pipeline stage that overran — wins the race against ours.
	ctx, cancel := context.WithTimeout(r.Context(), remaining+f.cfg.DeadlineGrace)
	defer cancel()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/run", bytes.NewReader(body))
	if err != nil {
		return false, fmt.Errorf("%w: %v", errRetryable, err)
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(server.DeadlineHeader, strconv.FormatInt(remaining.Milliseconds(), 10))

	resp, err := f.client.Do(preq)
	if err != nil {
		f.wErr[wk.id].Inc()
		return false, f.classifyTransport(r, deadline, wk.id, err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, f.cfg.MaxSourceBytes+(1<<20)))
	if err != nil {
		f.wErr[wk.id].Inc()
		return false, f.classifyTransport(r, deadline, wk.id, err)
	}
	switch resp.StatusCode {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable:
		// Retryable worker answers: contained panic (another worker may
		// hold a healthier cache or the panic may be load-dependent),
		// and overload/drain shedding (the very reason to have peers).
		f.wErr[wk.id].Inc()
		return false, fmt.Errorf("%w: worker %d answered %d", errRetryable, wk.id, resp.StatusCode)
	}
	relay(w, resp, respBody)
	return true, nil
}

// handleProfiles forwards a profile upload or export to the one worker
// that owns the program on the hash ring. Unlike /run, an attempt is
// never retried against a different worker: each worker aggregates
// into its own local database, so replaying an ingest to a non-owner
// would fork the aggregate across stores. A failed attempt surfaces to
// the client (503), which retries against the same eventual owner.
func (f *Fleet) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && f.isDraining() {
		writeErr(w, http.StatusServiceUnavailable, server.ErrorBody{
			Kind: server.KindDraining, Error: "fleet is draining", RetryAfterMS: 1000,
		})
		return
	}
	f.inflight.Add(1)
	defer f.inflight.Done()

	program := r.PathValue("program")
	body, err := io.ReadAll(io.LimitReader(r.Body, f.cfg.MaxSourceBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, server.ErrorBody{Kind: server.KindBadRequest, Error: "reading request body: " + err.Error()})
		return
	}
	if int64(len(body)) > f.cfg.MaxSourceBytes {
		writeErr(w, http.StatusBadRequest, server.ErrorBody{
			Kind: server.KindBadRequest, Error: fmt.Sprintf("request body exceeds %d bytes", f.cfg.MaxSourceBytes),
		})
		return
	}

	// The same key derivation /run routes by, so a program's uploads,
	// exports and runs all land on the same worker — the worker whose
	// caches the profile is meant to inform.
	id := f.ring.pick(server.ProgramKey("", program), nil)
	if id == "" {
		writeErr(w, http.StatusServiceUnavailable, server.ErrorBody{
			Kind: KindNoWorkers, Error: "no healthy workers", RetryAfterMS: f.cfg.RestartBackoff.Milliseconds(),
		})
		return
	}
	wk := f.byRing[id]
	wk.mu.Lock()
	addr := wk.addr
	wk.mu.Unlock()
	if addr == "" {
		writeErr(w, http.StatusServiceUnavailable, server.ErrorBody{
			Kind: KindUpstream, Error: fmt.Sprintf("owner worker %d has no address", wk.id), RetryAfterMS: f.cfg.RetryBackoff.Milliseconds(),
		})
		return
	}
	f.profiles.Add(1)
	f.mProfiles.Inc()
	f.wReq[wk.id].Inc()

	ctx, cancel := context.WithTimeout(r.Context(), f.cfg.DefaultTimeout)
	defer cancel()
	preq, err := http.NewRequestWithContext(ctx, r.Method, "http://"+addr+"/profiles/"+program, bytes.NewReader(body))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, server.ErrorBody{Kind: KindUpstream, Error: err.Error()})
		return
	}
	preq.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(preq)
	if err != nil {
		f.wErr[wk.id].Inc()
		if r.Context().Err() != nil {
			writeErr(w, 499, server.ErrorBody{Kind: server.KindCanceled, Error: "client disconnected"})
			return
		}
		writeErr(w, http.StatusServiceUnavailable, server.ErrorBody{
			Kind: KindUpstream, Error: fmt.Sprintf("owner worker %d: %v", wk.id, err), RetryAfterMS: f.cfg.RetryBackoff.Milliseconds(),
		})
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, f.cfg.MaxSourceBytes+(1<<20)))
	if err != nil {
		f.wErr[wk.id].Inc()
		writeErr(w, http.StatusServiceUnavailable, server.ErrorBody{
			Kind: KindUpstream, Error: fmt.Sprintf("owner worker %d: %v", wk.id, err), RetryAfterMS: f.cfg.RetryBackoff.Milliseconds(),
		})
		return
	}
	// Relay verbatim — including the worker's 503 profdb_recovering
	// with its Retry-After: the client backs off and retries here, and
	// the forward lands on the same owner once its WAL replay finishes.
	relay(w, resp, respBody)
}

// classifyTransport decides what a failed attempt's error means: the
// client hung up (terminal 499), our own deadline fired (terminal
// 504), or the worker is unreachable (retryable).
func (f *Fleet) classifyTransport(r *http.Request, deadline time.Time, workerID int, err error) error {
	if r.Context().Err() != nil {
		return errClientGone
	}
	if errors.Is(err, context.DeadlineExceeded) || time.Until(deadline) <= 0 {
		return errBudgetExhausted
	}
	return fmt.Errorf("%w: worker %d: %v", errRetryable, workerID, err)
}

// relay copies a worker's buffered response to the client verbatim —
// the fleet's byte-correctness contract: a routed response is
// indistinguishable from one served by a single `selspec serve`.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// handleHealthz is router liveness: 200 as long as the router process
// answers, whatever the workers are doing. The body is the full fleet
// Status so one curl shows the whole topology.
func (f *Fleet) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Status())
}

// handleReadyz is routing quorum: 200 only while at least one worker
// is on the ring and the fleet is not draining — exactly the condition
// under which a POST /run can be placed. A load balancer in front of
// several fleets uses this to shift traffic during a drain.
func (f *Fleet) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := f.Status()
	code := http.StatusOK
	if st.Status != "ok" {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, st)
}

// handleMetrics merges every reachable worker's /metrics with the
// router's own registry, presenting the fleet as one logical server: a
// dashboard built against single-server metric names keeps working,
// and the selspec_fleet_* series appear alongside. Workers that fail
// to answer are skipped — a scrape during a restart shows a dip, not
// an error.
func (f *Fleet) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if f.cfg.Metrics == nil {
		http.NotFound(w, r)
		return
	}
	var bodies [][]byte
	for _, wk := range f.workers {
		wk.mu.Lock()
		addr := wk.addr
		wk.mu.Unlock()
		if addr == "" {
			continue
		}
		resp, err := f.probeClient.Get("http://" + addr + "/metrics")
		if err != nil {
			continue
		}
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		bodies = append(bodies, b)
	}
	var own bytes.Buffer
	_ = f.cfg.Metrics.WritePrometheus(&own)
	bodies = append(bodies, own.Bytes())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(mergeProm(bodies))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, body server.ErrorBody) {
	if body.RetryAfterMS > 0 {
		secs := (body.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, code, body)
}
