package fleet

import (
	"bytes"
	"strings"
	"testing"

	"selspec/internal/obs"
)

func TestMergePromSumsCountersAcrossBodies(t *testing.T) {
	a := []byte(`# TYPE selspec_server_served_total counter
selspec_server_served_total 10
# TYPE selspec_dispatch_total counter
selspec_dispatch_total{mech="pic"} 7
`)
	b := []byte(`# TYPE selspec_server_served_total counter
selspec_server_served_total 32
# TYPE selspec_dispatch_total counter
selspec_dispatch_total{mech="pic"} 5
selspec_dispatch_total{mech="vtbl"} 2
`)
	out := string(mergeProm([][]byte{a, b}))
	for _, want := range []string{
		"selspec_server_served_total 42\n",
		`selspec_dispatch_total{mech="pic"} 12` + "\n",
		`selspec_dispatch_total{mech="vtbl"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged output missing %q:\n%s", want, out)
		}
	}
	// The family must be emitted exactly once, and before its series.
	if n := strings.Count(out, "# TYPE selspec_server_served_total counter"); n != 1 {
		t.Errorf("TYPE line emitted %d times, want 1", n)
	}
}

func TestMergePromSumsHistogramBuckets(t *testing.T) {
	body := []byte(`# TYPE selspec_stage_seconds histogram
selspec_stage_seconds_bucket{stage="parse",le="0.001"} 3
selspec_stage_seconds_bucket{stage="parse",le="+Inf"} 5
selspec_stage_seconds_sum{stage="parse"} 0.25
selspec_stage_seconds_count{stage="parse"} 5
`)
	out := string(mergeProm([][]byte{body, body}))
	for _, want := range []string{
		`selspec_stage_seconds_bucket{stage="parse",le="0.001"} 6`,
		`selspec_stage_seconds_bucket{stage="parse",le="+Inf"} 10`,
		`selspec_stage_seconds_sum{stage="parse"} 0.5`,
		`selspec_stage_seconds_count{stage="parse"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged histogram missing %q:\n%s", want, out)
		}
	}
	// The bucket/sum/count series must sit under the histogram TYPE
	// line, not get their own counter families.
	if strings.Contains(out, "# TYPE selspec_stage_seconds_bucket") {
		t.Errorf("bucket series promoted to its own family:\n%s", out)
	}
}

func TestMergePromTolerantOfJunk(t *testing.T) {
	out := string(mergeProm([][]byte{[]byte(
		"# HELP something or other\n\ngarbage line without value x\n# TYPE ok counter\nok 1\nok not_a_number\n")}))
	if !strings.Contains(out, "ok 1\n") {
		t.Errorf("valid series lost among junk:\n%s", out)
	}
}

func TestMergePromRoundTripsRegistryOutput(t *testing.T) {
	// A single registry body merged with itself must double every
	// value while remaining valid exposition text in the same order.
	reg := obs.NewRegistry()
	reg.Counter("a_total").Add(3)
	reg.Counter("b_total", obs.Label{Key: "k", Value: "v"}).Add(4)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := string(mergeProm([][]byte{buf.Bytes(), buf.Bytes()}))
	for _, want := range []string{"a_total 6\n", `b_total{k="v"} 8` + "\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("round-trip merge missing %q:\n%s", want, out)
		}
	}
}
