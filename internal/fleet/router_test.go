package fleet

// Router behavior against in-process httptest backends: no subprocess
// is spawned, the ring is populated by hand, so each property — retry
// target selection, deadline budgeting, verbatim relay, degradation
// answers — is tested in isolation from supervision timing. The
// subprocess integration lives in fleet_test.go.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"selspec/internal/obs"
	"selspec/internal/server"
)

// staticFleet builds a Fleet whose supervisor never runs; tests attach
// backend addresses directly.
func staticFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	if cfg.WorkerCommand == nil {
		// Satisfies Config validation; never invoked since these tests
		// skip Start.
		cfg.WorkerCommand = func(int) *exec.Cmd { return nil }
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// attach marks worker i healthy at addr and puts it on the ring.
func attach(f *Fleet, i int, addr string) {
	w := f.workers[i]
	w.mu.Lock()
	w.state = stateHealthy
	w.addr = strings.TrimPrefix(addr, "http://")
	w.mu.Unlock()
	f.ring.add(w.ringID)
}

// sourceOwnedBy finds a program source whose key the ring assigns to
// worker id, so a test controls which worker is tried first.
func sourceOwnedBy(f *Fleet, id string) string {
	for i := 0; ; i++ {
		src := fmt.Sprintf("method main() { %d; }", i)
		if f.ring.pick(server.ProgramKey(src, ""), nil) == id {
			return src
		}
	}
}

// deadAddr returns an address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func postRouter(t *testing.T, f *Fleet, req server.RunRequest) (int, http.Header, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	return postRouterRaw(t, f, string(body))
}

func postRouterRaw(t *testing.T, f *Fleet, body string) (int, http.Header, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/run", strings.NewReader(body)))
	data, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, rec.Result().Header, data
}

func TestRouterRelaysBackendResponseVerbatim(t *testing.T) {
	const payload = `{"value":"7","output":"total 7\n","config":"Base","engine":"vm"}` + "\n"
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, payload)
	}))
	defer backend.Close()
	f := staticFleet(t, Config{Workers: 1})
	attach(f, 0, backend.URL)

	code, hdr, body := postRouter(t, f, server.RunRequest{Source: "method main() { 7; }"})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	if string(body) != payload {
		t.Errorf("relayed body not verbatim:\n got %q\nwant %q", body, payload)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q not relayed", ct)
	}
	if got := f.Status().Served; got != 1 {
		t.Errorf("served = %d, want 1", got)
	}
}

func TestRouterRetriesNextWorkerOnConnectionFailure(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"value":"1"}`)
	}))
	defer backend.Close()
	f := staticFleet(t, Config{Workers: 2, RetryBackoff: time.Millisecond, Metrics: obs.NewRegistry()})
	attach(f, 0, deadAddr(t)) // owner will refuse the connection
	attach(f, 1, backend.URL)
	src := sourceOwnedBy(f, "w0")

	code, _, body := postRouter(t, f, server.RunRequest{Source: src})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	if got := f.Status().Retries; got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if f.wErr[0].Value() != 1 || f.wReq[1].Value() != 1 {
		t.Errorf("per-worker counters: w0 err=%d w1 req=%d, want 1/1",
			f.wErr[0].Value(), f.wReq[1].Value())
	}
}

func TestRouterRetriesOnRetryable5xx(t *testing.T) {
	// Worker 0 sheds with 503 (as an overloaded or draining serve
	// would); the retry must land on worker 1 and succeed.
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.ErrorBody{Kind: server.KindOverloaded, Error: "queue full"})
	}))
	defer shed.Close()
	ok := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"value":"2"}`)
	}))
	defer ok.Close()
	f := staticFleet(t, Config{Workers: 2, RetryBackoff: time.Millisecond})
	attach(f, 0, shed.URL)
	attach(f, 1, ok.URL)

	code, _, body := postRouter(t, f, server.RunRequest{Source: sourceOwnedBy(f, "w0")})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	if got := f.Status().Retries; got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

func TestRouterDoesNotRetryFinalAnswers(t *testing.T) {
	var attempts atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.ErrorBody{Kind: server.KindBadRequest, Error: "unknown benchmark"})
	}))
	defer backend.Close()
	f := staticFleet(t, Config{Workers: 2, RetryBackoff: time.Millisecond})
	attach(f, 0, backend.URL)
	attach(f, 1, backend.URL)

	code, _, body := postRouter(t, f, server.RunRequest{Bench: "Nope"})
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, body %s", code, body)
	}
	if eb := mustErr(t, body); eb.Kind != server.KindBadRequest {
		t.Errorf("kind %q relayed, want bad_request", eb.Kind)
	}
	if attempts.Load() != 1 {
		t.Errorf("worker 4xx retried: %d attempts, want 1", attempts.Load())
	}
}

func TestRouterNoWorkersAnswers503WithRetryAfter(t *testing.T) {
	f := staticFleet(t, Config{Workers: 2})
	code, hdr, body := postRouter(t, f, server.RunRequest{Bench: "Richards"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s", code, body)
	}
	if eb := mustErr(t, body); eb.Kind != KindNoWorkers {
		t.Errorf("kind %q, want %q", eb.Kind, KindNoWorkers)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("missing Retry-After header on empty-ring 503")
	}
}

func TestRouterExhaustedRetriesAnswers503Upstream(t *testing.T) {
	f := staticFleet(t, Config{Workers: 2, MaxRetries: 2, RetryBackoff: time.Millisecond})
	attach(f, 0, deadAddr(t))
	attach(f, 1, deadAddr(t))
	code, _, body := postRouter(t, f, server.RunRequest{Bench: "Richards"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s", code, body)
	}
	if eb := mustErr(t, body); eb.Kind != KindUpstream {
		t.Errorf("kind %q, want %q", eb.Kind, KindUpstream)
	}
	if got := f.Status().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

func TestRouterDrainingRejectsRuns(t *testing.T) {
	f := staticFleet(t, Config{Workers: 1})
	attach(f, 0, deadAddr(t))
	f.BeginDrain()
	code, _, body := postRouter(t, f, server.RunRequest{Bench: "Richards"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s", code, body)
	}
	if eb := mustErr(t, body); eb.Kind != server.KindDraining {
		t.Errorf("kind %q, want draining", eb.Kind)
	}
}

func TestRouterBadRequests(t *testing.T) {
	f := staticFleet(t, Config{Workers: 1})
	attach(f, 0, deadAddr(t)) // must not be contacted
	cases := []string{
		`{not json`,
		`{}`,                                // neither source nor bench
		`{"source":"x","bench":"Richards"}`, // both
	}
	for _, body := range cases {
		code, _, data := postRouterRaw(t, f, body)
		if code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400 (%s)", body, code, data)
		}
	}
	if f.wReq[0].Value() != 0 {
		t.Errorf("bad requests reached a worker (%d attempts)", f.wReq[0].Value())
	}
}

func TestRouterPropagatesRemainingDeadline(t *testing.T) {
	var gotHeader atomic.Value
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(server.DeadlineHeader))
		io.WriteString(w, `{"value":"1"}`)
	}))
	defer backend.Close()
	f := staticFleet(t, Config{Workers: 1, DefaultTimeout: 30 * time.Second, MaxTimeout: 30 * time.Second})
	attach(f, 0, backend.URL)

	code, _, body := postRouter(t, f, server.RunRequest{Bench: "Richards", TimeoutMS: 5000})
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	h, _ := gotHeader.Load().(string)
	var ms int64
	fmt.Sscanf(h, "%d", &ms)
	if ms <= 0 || ms > 5000 {
		t.Errorf("%s = %q, want remaining budget in (0, 5000]", server.DeadlineHeader, h)
	}
}

func TestRouterCutsOwnDeadlineWith504(t *testing.T) {
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // a worker that never answers within any budget
		case <-release:
		case <-r.Context().Done():
		}
	}))
	// LIFO: release the handler before Close waits on it.
	defer backend.Close()
	defer close(release)
	f := staticFleet(t, Config{Workers: 1, DeadlineGrace: 50 * time.Millisecond, MaxTimeout: time.Minute})
	attach(f, 0, backend.URL)

	start := time.Now()
	code, _, body := postRouter(t, f, server.RunRequest{Bench: "Richards", TimeoutMS: 100})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s", code, body)
	}
	if eb := mustErr(t, body); eb.Kind != server.KindDeadline {
		t.Errorf("kind %q, want deadline", eb.Kind)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("504 took %v; budget was 100ms+50ms grace", el)
	}
}

func TestClassifyTransportTerminalCases(t *testing.T) {
	f := staticFleet(t, Config{Workers: 1})
	future := time.Now().Add(time.Hour)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodPost, "/run", nil).WithContext(ctx)
	if err := f.classifyTransport(r, future, 0, errors.New("dial refused")); !errors.Is(err, errClientGone) {
		t.Errorf("canceled client classified %v, want errClientGone", err)
	}

	r2 := httptest.NewRequest(http.MethodPost, "/run", nil)
	if err := f.classifyTransport(r2, time.Now().Add(-time.Second), 0, errors.New("dial refused")); !errors.Is(err, errBudgetExhausted) {
		t.Errorf("expired budget classified %v, want errBudgetExhausted", err)
	}
	if err := f.classifyTransport(r2, future, 0, context.DeadlineExceeded); !errors.Is(err, errBudgetExhausted) {
		t.Errorf("deadline error classified %v, want errBudgetExhausted", err)
	}
	if err := f.classifyTransport(r2, future, 0, errors.New("connection refused")); !errors.Is(err, errRetryable) {
		t.Errorf("plain dial failure classified %v, want errRetryable", err)
	}
}

func TestRouterReadyzReflectsQuorum(t *testing.T) {
	f := staticFleet(t, Config{Workers: 2})
	get := func(path string) (int, Status) {
		rec := httptest.NewRecorder()
		f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		var st Status
		json.NewDecoder(rec.Result().Body).Decode(&st)
		return rec.Code, st
	}
	if code, st := get("/readyz"); code != http.StatusServiceUnavailable || st.Status != "no_workers" {
		t.Errorf("empty ring: readyz = %d/%s, want 503/no_workers", code, st.Status)
	}
	attach(f, 0, deadAddr(t))
	if code, st := get("/readyz"); code != http.StatusOK || st.Status != "ok" {
		t.Errorf("one worker: readyz = %d/%s, want 200/ok", code, st.Status)
	}
	// Liveness stays 200 regardless.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", code)
	}
	f.BeginDrain()
	if code, st := get("/readyz"); code != http.StatusServiceUnavailable || st.Status != "draining" {
		t.Errorf("draining: readyz = %d/%s, want 503/draining", code, st.Status)
	}
}

func TestRouterMergedMetricsSumsWorkers(t *testing.T) {
	mkWorker := func(served int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/metrics" {
				fmt.Fprintf(w, "# TYPE selspec_server_served_total counter\nselspec_server_served_total %d\n", served)
				return
			}
			io.WriteString(w, `{"value":"1"}`)
		}))
	}
	w0, w1 := mkWorker(5), mkWorker(7)
	defer w0.Close()
	defer w1.Close()
	reg := obs.NewRegistry()
	f := staticFleet(t, Config{Workers: 2, Metrics: reg})
	attach(f, 0, w0.URL)
	attach(f, 1, w1.URL)
	if code, _, _ := postRouter(t, f, server.RunRequest{Bench: "Richards"}); code != http.StatusOK {
		t.Fatalf("seed request failed: %d", code)
	}

	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	out := rec.Body.String()
	for _, want := range []string{
		"selspec_server_served_total 12\n", // 5 + 7 across workers
		"selspec_fleet_requests_total 1\n", // router's own series appended
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged /metrics missing %q:\n%s", want, out)
		}
	}
}

func mustErr(t *testing.T, data []byte) server.ErrorBody {
	t.Helper()
	var eb server.ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("bad ErrorBody %q: %v", data, err)
	}
	return eb
}
