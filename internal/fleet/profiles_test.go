package fleet

// Router behavior for /profiles/{program}: owner-only forwarding with
// no cross-worker retry (each worker owns a private database, so a
// replayed ingest against a non-owner would fork the aggregate), and
// topology reflection of each worker's profile-database state.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"selspec/internal/server"
)

func profileReq(t *testing.T, f *Fleet, method, program, body string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(method, "/profiles/"+program, strings.NewReader(body)))
	data, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, data
}

// programOwnedBy finds a program name the ring assigns to worker id.
func programOwnedBy(f *Fleet, id string) string {
	for i := 0; ; i++ {
		name := "Bench" + strings.Repeat("x", i%3) + string(rune('A'+i%26))
		if f.ring.pick(server.ProgramKey("", name), nil) == id {
			return name
		}
		if i > 10000 {
			panic("no owned program found")
		}
	}
}

func TestRouterProfilesForwardOwnerOnly(t *testing.T) {
	var hits [2]atomic.Int64
	mk := func(i int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"program":"X","seq":1}`)
		}))
	}
	b0, b1 := mk(0), mk(1)
	defer b0.Close()
	defer b1.Close()

	f := staticFleet(t, Config{Workers: 2})
	attach(f, 0, b0.URL)
	attach(f, 1, b1.URL)
	prog := programOwnedBy(f, "w0")

	for i := 0; i < 5; i++ {
		code, body := profileReq(t, f, http.MethodPost, prog, `{"version":1,"arcs":[]}`)
		if code != http.StatusOK {
			t.Fatalf("upload %d = %d: %s", i, code, body)
		}
	}
	// Exports route to the same owner as uploads.
	if code, _ := profileReq(t, f, http.MethodGet, prog, ""); code != http.StatusOK {
		t.Fatal("export failed")
	}
	if got0, got1 := hits[0].Load(), hits[1].Load(); got0 != 6 || got1 != 0 {
		t.Fatalf("hits = [%d %d], want all 6 on the owner", got0, got1)
	}
	if got := f.Status().Profiles; got != 6 {
		t.Fatalf("Status().Profiles = %d, want 6", got)
	}
	// /run accounting is untouched by profile traffic.
	if got := f.Status().Served; got != 0 {
		t.Fatalf("Status().Served = %d, want 0", got)
	}
}

// A dead owner is a client-visible 503, never a silent retry against a
// worker whose database does not own the program.
func TestRouterProfilesNeverRetriesNonOwner(t *testing.T) {
	var other atomic.Int64
	b1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		other.Add(1)
	}))
	defer b1.Close()

	f := staticFleet(t, Config{Workers: 2})
	attach(f, 0, "http://"+deadAddr(t))
	attach(f, 1, b1.URL)
	prog := programOwnedBy(f, "w0")

	code, body := profileReq(t, f, http.MethodPost, prog, `{"version":1,"arcs":[]}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), KindUpstream) {
		t.Fatalf("dead owner = %d: %s", code, body)
	}
	if other.Load() != 0 {
		t.Fatalf("non-owner received %d requests, want 0", other.Load())
	}
}

// A worker answering 503 profdb_recovering is relayed verbatim — the
// client backs off and retries the same eventual owner.
func TestRouterProfilesRelaysRecoveringVerbatim(t *testing.T) {
	const recov = `{"error":"profile database is recovering","kind":"profdb_recovering","retry_after_ms":1000}` + "\n"
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, recov)
	}))
	defer b.Close()

	f := staticFleet(t, Config{Workers: 1})
	attach(f, 0, b.URL)

	code, body := profileReq(t, f, http.MethodPost, "Richards", `{"version":1,"arcs":[]}`)
	if code != http.StatusServiceUnavailable || string(body) != recov {
		t.Fatalf("recovering relay = %d: %q", code, body)
	}
}

func TestRouterProfilesDraining(t *testing.T) {
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"version":1,"arcs":[]}`)
	}))
	defer b.Close()
	f := staticFleet(t, Config{Workers: 1})
	attach(f, 0, b.URL)
	close(f.draining)

	// New uploads are refused during drain; exports still work so a
	// consumer can pull the aggregate on the way down.
	code, body := profileReq(t, f, http.MethodPost, "Richards", `{}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), server.KindDraining) {
		t.Fatalf("draining upload = %d: %s", code, body)
	}
	if code, _ := profileReq(t, f, http.MethodGet, "Richards", ""); code != http.StatusOK {
		t.Fatalf("draining export = %d, want 200", code)
	}
}

func TestRouterProfilesNoWorkers(t *testing.T) {
	f := staticFleet(t, Config{Workers: 1})
	code, body := profileReq(t, f, http.MethodPost, "Richards", `{}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), KindNoWorkers) {
		t.Fatalf("no workers = %d: %s", code, body)
	}
}

// The probe loop copies the worker's profdb state from its /readyz
// body into the topology, so operators can watch a replaying worker
// progress to ready via the router's own /readyz.
func TestWorkerStatusReflectsProfDBState(t *testing.T) {
	f := staticFleet(t, Config{Workers: 1})
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"status":"ready","profdb":"recovering"}`)
	}))
	defer b.Close()
	attach(f, 0, b.URL)

	addr := strings.TrimPrefix(b.URL, "http://")
	res, h := f.probeOnce(addr)
	if res != probeHealthy {
		t.Fatalf("probe = %v", res)
	}
	w := f.workers[0]
	w.mu.Lock()
	w.profdb = h.ProfDB
	w.mu.Unlock()

	st := f.Status()
	if st.Workers[0].ProfDB != "recovering" {
		t.Fatalf("worker profdb = %q, want recovering", st.Workers[0].ProfDB)
	}
}
