package fleet

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// mergeProm merges Prometheus text-exposition (v0.0.4) bodies by
// summing every series across bodies. The fleet's GET /metrics scrapes
// each worker's registry and presents the fleet as one logical server:
// `selspec_server_served_total` in the merged output is the number of
// requests the whole fleet executed, and the per-stage histograms sum
// bucket-by-bucket (cumulative bucket counts and sums are both
// additive, so a merged histogram is exactly the histogram of the
// union of observations, up to the usual scrape skew).
//
// The parser accepts exactly what obs.WritePrometheus emits — `# TYPE`
// lines followed by `series value` lines — and is tolerant of anything
// else (HELP lines, blanks, junk) by skipping it, so a worker running
// a newer build cannot break the whole fleet's scrape. Family and
// series order follow first appearance, which is registration order on
// the workers and therefore stable across scrapes.
func mergeProm(bodies [][]byte) []byte {
	type fam struct {
		name, kind string
		order      []string // series keys in first-seen order
	}
	var fams []*fam
	famByName := map[string]*fam{}
	vals := map[string]float64{}

	for _, b := range bodies {
		sc := bufio.NewScanner(bytes.NewReader(b))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "# TYPE ") {
				parts := strings.Fields(line)
				if len(parts) == 4 && famByName[parts[2]] == nil {
					f := &fam{name: parts[2], kind: parts[3]}
					famByName[parts[2]] = f
					fams = append(fams, f)
				}
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp <= 0 {
				continue
			}
			series, valStr := line[:sp], line[sp+1:]
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				continue
			}
			name := series
			if i := strings.IndexByte(series, '{'); i >= 0 {
				name = series[:i]
			}
			// A histogram family x owns the x_bucket/x_sum/x_count
			// series; group them under its TYPE line.
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, suf) {
					if f := famByName[strings.TrimSuffix(name, suf)]; f != nil && f.kind == "histogram" {
						base = strings.TrimSuffix(name, suf)
						break
					}
				}
			}
			f := famByName[base]
			if f == nil {
				f = &fam{name: base, kind: "counter"}
				famByName[base] = f
				fams = append(fams, f)
			}
			if _, seen := vals[series]; !seen {
				f.order = append(f.order, series)
			}
			vals[series] += v
		}
	}

	var buf bytes.Buffer
	for _, f := range fams {
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.order {
			v := vals[s]
			// Counters and bucket counts are integral; render them the
			// way a single registry would so scrapers and the CI smoke
			// can grep for exact lines.
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				fmt.Fprintf(&buf, "%s %d\n", s, int64(v))
			} else {
				fmt.Fprintf(&buf, "%s %s\n", s, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
	}
	return buf.Bytes()
}
