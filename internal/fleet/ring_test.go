package fleet

import (
	"fmt"
	"testing"
)

func keysFor(r *ring, n int) map[string]string {
	owners := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		owners[k] = r.pick(k, nil)
	}
	return owners
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := newRing(64)
	if got := r.pick("anything", nil); got != "" {
		t.Fatalf("empty ring picked %q", got)
	}
	r.add("w0")
	if got := r.pick("anything", nil); got != "w0" {
		t.Fatalf("single-member ring picked %q, want w0", got)
	}
	if got := r.pick("anything", map[string]bool{"w0": true}); got != "" {
		t.Fatalf("all-skipped ring picked %q", got)
	}
}

func TestRingBalancedDistribution(t *testing.T) {
	r := newRing(64)
	for i := 0; i < 4; i++ {
		r.add(fmt.Sprintf("w%d", i))
	}
	counts := map[string]int{}
	for _, owner := range keysFor(r, 4000) {
		counts[owner]++
	}
	// With 64 virtual nodes each, no member should own a wildly
	// disproportionate share: expect 1000 ± a wide margin.
	for id, c := range counts {
		if c < 400 || c > 1800 {
			t.Errorf("member %s owns %d of 4000 keys; distribution badly skewed", id, c)
		}
	}
}

func TestRingRemoveOnlyRemapsVictimKeys(t *testing.T) {
	r := newRing(64)
	for i := 0; i < 4; i++ {
		r.add(fmt.Sprintf("w%d", i))
	}
	before := keysFor(r, 2000)
	r.remove("w2")
	after := keysFor(r, 2000)
	for k, was := range before {
		now := after[k]
		if now == "w2" {
			t.Fatalf("key %s still owned by removed member", k)
		}
		if was != "w2" && now != was {
			t.Errorf("key %s moved %s → %s although its owner survived", k, was, now)
		}
	}
	// The stability property in the other direction: re-adding the
	// member restores exactly the original assignment.
	r.add("w2")
	restored := keysFor(r, 2000)
	for k, was := range before {
		if restored[k] != was {
			t.Errorf("key %s not restored to %s after re-add (got %s)", k, was, restored[k])
		}
	}
}

func TestRingSkipWalksToDistinctMember(t *testing.T) {
	r := newRing(64)
	r.add("w0")
	r.add("w1")
	r.add("w2")
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		first := r.pick(k, nil)
		second := r.pick(k, map[string]bool{first: true})
		if second == "" || second == first {
			t.Fatalf("key %s: retry pick gave %q after first %q", k, second, first)
		}
		third := r.pick(k, map[string]bool{first: true, second: true})
		if third == "" || third == first || third == second {
			t.Fatalf("key %s: third pick gave %q after %q,%q", k, third, first, second)
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := newRing(8)
	r.add("w0")
	r.add("w0")
	if len(r.points) != 8 {
		t.Fatalf("double add created %d points, want 8", len(r.points))
	}
	r.remove("w0")
	r.remove("w0")
	if r.size() != 0 || len(r.points) != 0 {
		t.Fatalf("remove left size=%d points=%d", r.size(), len(r.points))
	}
}
