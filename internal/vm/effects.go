package vm

// IR-level effect analysis for the bytecode compiler. The compiler's
// register discipline reads depth-0 locals in place (the slot register
// IS the operand register), which is only sound when no code that runs
// between operand selection and instruction execution can write that
// slot. The old predicate (`effectFree`: constants and depth-0 locals
// only) was purely syntactic and — worse — was not applied at every
// site that needed it: a call operand evaluated after an in-place slot
// read could mutate the slot through a closure before the reading
// instruction executed, diverging from the tree tier's left-to-right
// value capture.
//
// This analysis answers the precise question instead: "can evaluating
// node n write frame slot s of the proc being compiled?" A slot is
// written either directly (a depth-0 ir.SetLocal inside n) or
// transitively, by a call into guest code that reaches a closure
// capturing this frame. The transitive channel exists at all only when
// the body creates closures: a proc without ir.MakeClosure never
// materializes a heap frame (Proc.NeedsFrame stays false), methods
// enter with a nil static chain, and OpSetUp can only reach frames that
// some closure captured — so for closure-free procs, calls cannot touch
// the frame and in-place slot reads are unconditionally safe. That is
// both sharper than `effectFree` (code-emitting-but-slot-pure operands
// no longer force snapshot moves) and sound where `effectFree`'s use
// was not (call operands in closure-creating procs now do).

import (
	"selspec/internal/bits"
	"selspec/internal/ir"
)

// effects holds the per-body analysis state, created once per compiled
// proc. Facts are computed on demand and memoized per node.
type effects struct {
	// hasClosures: the body contains an ir.MakeClosure, so its frame is
	// heap-materialized and calls may transitively write any slot.
	hasClosures bool
	memo        map[ir.Node]*nodeFacts
}

// nodeFacts summarizes one subtree's frame effects.
type nodeFacts struct {
	// writes is the set of depth-0 slots the subtree assigns directly
	// (nil = none).
	writes *bits.Set
	// calls: the subtree invokes guest code (send, static call, version
	// select, closure call, or a `new` whose field initializers may call).
	calls bool
}

func analyzeEffects(body ir.Node) *effects {
	return &effects{
		hasClosures: containsClosure(body),
		memo:        map[ir.Node]*nodeFacts{},
	}
}

// mayWriteSlot reports whether evaluating n can write frame slot s of
// the current proc.
func (e *effects) mayWriteSlot(n ir.Node, s int) bool {
	f := e.facts(n)
	if f.calls && e.hasClosures {
		return true
	}
	return f.writes.Has(s)
}

func (e *effects) facts(n ir.Node) *nodeFacts {
	if f, ok := e.memo[n]; ok {
		return f
	}
	f := &nodeFacts{}
	e.memo[n] = f
	switch n := n.(type) {
	case *ir.SetLocal:
		*f = *e.facts(n.X)
		if n.Depth == 0 {
			w := f.writes.Clone()
			w.Add(n.Slot)
			f.writes = w
		}
	case *ir.Send:
		f.calls = true
		e.mergeAll(f, n.Args)
	case *ir.StaticCall:
		f.calls = true
		e.mergeAll(f, n.Args)
	case *ir.VersionSelect:
		f.calls = true
		e.mergeAll(f, n.Args)
	case *ir.CallClosure:
		f.calls = true
		e.merge(f, n.Fn)
		e.mergeAll(f, n.Args)
	case *ir.New:
		// Field-initializer thunks run inside the construction and may
		// invoke arbitrary guest code.
		f.calls = true
		e.mergeAll(f, n.Args)
	case *ir.MakeClosure:
		// Creating the closure runs nothing; its body's effects happen
		// at call time, covered by the calls+hasClosures channel.
	default:
		walkChildren(n, func(c ir.Node) { e.merge(f, c) })
	}
	return f
}

func (e *effects) merge(f *nodeFacts, n ir.Node) {
	cf := e.facts(n)
	f.calls = f.calls || cf.calls
	if !cf.writes.Empty() {
		if f.writes == nil {
			f.writes = cf.writes.Clone()
		} else {
			f.writes = bits.Union(f.writes, cf.writes)
		}
	}
}

func (e *effects) mergeAll(f *nodeFacts, ns []ir.Node) {
	for _, n := range ns {
		e.merge(f, n)
	}
}

// containsClosure reports whether the body tree holds an
// ir.MakeClosure. Nested closure bodies (MakeClosure.Fn.Body) are
// separate compilation units and are not descended into: any chain of
// captures that could reach this frame starts at a MakeClosure in this
// body.
func containsClosure(n ir.Node) bool {
	if _, ok := n.(*ir.MakeClosure); ok {
		return true
	}
	found := false
	walkChildren(n, func(c ir.Node) {
		found = found || containsClosure(c)
	})
	return found
}

// walkChildren calls fn on every direct child expression of n. It
// covers every node type the bytecode compiler accepts; unknown nodes
// have no visible children here and fail later in compile's default
// case (*CompileError).
func walkChildren(n ir.Node, fn func(ir.Node)) {
	switch n := n.(type) {
	case *ir.Const, *ir.Local, *ir.Global:
	case *ir.SetLocal:
		fn(n.X)
	case *ir.SetGlobal:
		fn(n.X)
	case *ir.GetField:
		fn(n.Obj)
	case *ir.SetField:
		fn(n.Obj)
		fn(n.X)
	case *ir.Seq:
		for _, c := range n.Nodes {
			fn(c)
		}
	case *ir.If:
		fn(n.Cond)
		fn(n.Then)
		if n.Else != nil {
			fn(n.Else)
		}
	case *ir.While:
		fn(n.Cond)
		fn(n.Body)
	case *ir.Return:
		if n.X != nil {
			fn(n.X)
		}
	case *ir.New:
		for _, a := range n.Args {
			fn(a)
		}
	case *ir.MakeClosure:
	case *ir.CallClosure:
		fn(n.Fn)
		for _, a := range n.Args {
			fn(a)
		}
	case *ir.Send:
		for _, a := range n.Args {
			fn(a)
		}
	case *ir.StaticCall:
		for _, a := range n.Args {
			fn(a)
		}
	case *ir.VersionSelect:
		for _, a := range n.Args {
			fn(a)
		}
	case *ir.Bin:
		fn(n.L)
		fn(n.R)
	case *ir.Un:
		fn(n.X)
	case *ir.PrimCall:
		for _, a := range n.Args {
			fn(a)
		}
	case *ir.And:
		fn(n.L)
		fn(n.R)
	case *ir.Or:
		fn(n.L)
		fn(n.R)
	}
}
