package vm_test

// FuzzVMDiff is the differential fuzz target of the bytecode tier: any
// program the front end accepts must behave identically under the tree
// interpreter and the VM — same value, same print output, same error
// text, same counter totals and steps. The raw stack is used (no
// pipeline fault boundary) so a genuine crash reaches the fuzzer
// instead of being contained. Inputs the bytecode compiler rejects
// (unsupported constructs) are skipped: in production they fall back to
// the tree tier before any guest code runs.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
	"selspec/internal/vm"
	"selspec/internal/vmcheck"
)

type diffOutcome struct {
	val       string
	errMsg    string
	output    string
	counters  interp.Counters
	steps     uint64
	verifyErr error
}

// runDiffEngine compiles src fresh (its own hierarchy and lookup
// caches, so nothing leaks between the two runs being compared) and
// executes it under one engine. ok is false when the input does not
// reach execution — front-end rejection, or a construct the bytecode
// compiler does not support.
func runDiffEngine(src string, cfg opt.Config, useVM bool, ctx context.Context) (diffOutcome, bool) {
	parsed, err := lang.Parse(src)
	if err != nil {
		return diffOutcome{}, false
	}
	prog, err := ir.Lower(parsed)
	if err != nil {
		return diffOutcome{}, false
	}
	c, err := opt.Compile(prog, opt.Options{Config: cfg})
	if err != nil {
		return diffOutcome{}, false
	}
	in := interp.New(c)
	var buf bytes.Buffer
	in.Out = &buf
	in.StepLimit = 100_000
	in.DepthLimit = 128
	in.Ctx = ctx

	var val interp.Value
	var rerr error
	var verr error
	if useVM {
		m, merr := vm.New(in)
		if merr != nil {
			return diffOutcome{}, false
		}
		// Every compiled module the fuzzer reaches must pass the
		// bytecode verifier — before the run, and again after it so
		// lazily-compiled procs are covered too.
		verr = vmcheck.Verify(m)
		val, rerr = m.Run()
		if verr == nil {
			verr = vmcheck.Verify(m)
		}
	} else {
		val, rerr = in.Run()
	}
	out := diffOutcome{
		val:       val.String(),
		output:    buf.String(),
		counters:  in.Counters,
		steps:     in.Steps(),
		verifyErr: verr,
	}
	if rerr != nil {
		out.errMsg = rerr.Error()
	}
	return out, true
}

func FuzzVMDiff(f *testing.F) {
	for _, s := range []string{
		"method main() { 1; }",
		"method main() { while true { 1; } }",
		"method f(n@Int) { f(n + 1); }\nmethod main() { f(0); }",
		"method main() { 1 / 0; }",
		"class P { field n : Int := 0; }\nmethod pos(p@P) { p.n >= 0; }\nmethod main() { pos(new P(7)); }",
		"class A\nclass B isa A\nmethod m(x@A) { 1; }\nmethod m(x@B) { 2; }\nmethod main() { m(new A()) + m(new B()); }",
		"method main() { var xs := newarray(3); var i := 0; while i < 3 { aput(xs, i, i * i); i := i + 1; } aget(xs, 2); }",
		"method main() { var f := fn(x) { x + 1; }; f(f(1)); }",
		"method outer() { var f := fn(x) { return x; }; f(41); 0; }\nmethod main() { outer(); }",
		"var g := 2;\nmethod main() { g := g + 3; println(g); g; }",
		"class P { field q : P; field n : Int := 0; }\nmethod probe(p@P) { p.q.n >= 0; }\nmethod main() { probe(new P()); }",
		"method main() { var xs := newarray(2); aget(xs, 9); }",
		"method main() { var i := 1; var f := fn() { i := 8; 0; }; println(i + f()); i; }",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		// Base keeps sends dynamic (PIC/dispatch coverage); CHA adds
		// static binding, version selection and resolved field slots —
		// the configs whose compiled code differs most.
		for _, cfg := range []opt.Config{opt.Base, opt.CHA} {
			tree, ok := runDiffEngine(src, cfg, false, ctx)
			if !ok {
				return
			}
			vmres, ok := runDiffEngine(src, cfg, true, ctx)
			if !ok {
				return
			}
			// A context-deadline trip is wall-clock dependent, so the
			// two runs may legitimately stop at different points.
			if ctx.Err() != nil {
				return
			}
			if vmres.verifyErr != nil {
				t.Errorf("%v: compiled module failed verification: %v", cfg, vmres.verifyErr)
			}
			if vmres.val != tree.val {
				t.Errorf("%v: value diverged: vm %q, tree %q", cfg, vmres.val, tree.val)
			}
			if vmres.errMsg != tree.errMsg {
				t.Errorf("%v: error diverged:\n  vm:   %q\n  tree: %q", cfg, vmres.errMsg, tree.errMsg)
			}
			if vmres.output != tree.output {
				t.Errorf("%v: output diverged: vm %q, tree %q", cfg, vmres.output, tree.output)
			}
			if vmres.counters != tree.counters {
				t.Errorf("%v: counters diverged:\n  vm:   %+v\n  tree: %+v", cfg, vmres.counters, tree.counters)
			}
			if vmres.steps != tree.steps {
				t.Errorf("%v: steps diverged: vm %d, tree %d", cfg, vmres.steps, tree.steps)
			}
		}
	})
}
