package vm_test

// Black-box parity tests for behavior the big differential grid cannot
// reach: resource-guard trips, runtime errors raised inside fused
// superinstructions, and non-local returns — the two engines must agree
// on the exact error text (or value) in every case.

import (
	"testing"

	"selspec/internal/driver"
	"selspec/internal/opt"
)

// runBoth executes src under both engines with the given guards and
// returns (treeValue, treeErr, vmValue, vmErr). A vm-tier fallback to
// tree (unsupported construct) fails the test: everything here must
// actually execute as bytecode.
func runBoth(t *testing.T, src string, step uint64, depth int) (string, error, string, error) {
	t.Helper()
	run := func(eng driver.Engine) (string, error) {
		p, err := driver.Load(src)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		res, rerr := p.RunConfig(driver.ConfigOptions{
			Config: opt.CHA,
			RunExtra: func(ro *driver.RunOptions) {
				ro.CaptureOutput = true
				ro.StepLimit = step
				ro.DepthLimit = depth
				ro.Engine = eng
			},
		})
		if rerr != nil {
			return "", rerr
		}
		if res.Engine != eng {
			t.Fatalf("requested engine %v but %v ran (unexpected fallback)", eng, res.Engine)
		}
		return res.Value, nil
	}
	tv, te := run(driver.EngineTree)
	vv, ve := run(driver.EngineVM)
	return tv, te, vv, ve
}

func wantSameError(t *testing.T, name string, te, ve error) {
	t.Helper()
	if (te == nil) != (ve == nil) {
		t.Fatalf("%s: error presence diverged: tree %v, vm %v", name, te, ve)
	}
	if te != nil && te.Error() != ve.Error() {
		t.Errorf("%s: error text diverged:\n  tree: %s\n  vm:   %s", name, te, ve)
	}
}

func TestGuardStepLimitParity(t *testing.T) {
	_, te, _, ve := runBoth(t, `method main() { while true { 1; } }`, 10_000, 0)
	if te == nil {
		t.Fatal("step limit did not trip")
	}
	wantSameError(t, "step limit", te, ve)
}

func TestGuardDepthLimitParity(t *testing.T) {
	_, te, _, ve := runBoth(t, `
method f(n@Int) { f(n + 1); }
method main() { f(0); }
`, 0, 64)
	if te == nil {
		t.Fatal("depth limit did not trip")
	}
	wantSameError(t, "depth limit", te, ve)
}

// TestFusedFieldErrorParity drives the non-object failure through the
// fused field-compare superinstructions: the error text must match the
// tree tier's plain GetField failure exactly.
func TestFusedFieldErrorParity(t *testing.T) {
	_, te, _, ve := runBoth(t, `
class P { field q : P; field n : Int := 0; }
method probe(p@P) { p.q.n >= 0; }
method main() { probe(new P()); }
`, 0, 0)
	if te == nil {
		t.Fatal("expected a non-object field error")
	}
	wantSameError(t, "fused field read", te, ve)
}

// TestFusedArrayErrorParity drives out-of-bounds reads and writes
// through OpAGet/OpAPut's cold path (the shared CallPrim seam).
func TestFusedArrayErrorParity(t *testing.T) {
	for name, src := range map[string]string{
		"aget oob": `method main() { var xs := newarray(2); aget(xs, 5); }`,
		"aput oob": `method main() { var xs := newarray(2); aput(xs, 7, 1); }`,
		"aget nonarray": `method main() { aget(3, 0); }`,
	} {
		_, te, _, ve := runBoth(t, src, 0, 0)
		if te == nil {
			t.Fatalf("%s: expected a runtime error", name)
		}
		wantSameError(t, name, te, ve)
	}
}

func TestNonLocalReturnParity(t *testing.T) {
	tv, te, vv, ve := runBoth(t, `
method outer(n@Int) {
  var f := fn(x) { return x; };
  f(n);
  0;
}
method main() { outer(41); }
`, 0, 0)
	wantSameError(t, "non-local return", te, ve)
	if tv != vv {
		t.Errorf("non-local return value diverged: tree %s, vm %s", tv, vv)
	}
}

func TestEscapedReturnErrorParity(t *testing.T) {
	_, te, _, ve := runBoth(t, `
var esc := 0;
method trap() { esc := fn(x) { return x; }; 0; }
method main() { trap(); esc(1); }
`, 0, 0)
	if te == nil {
		t.Fatal("expected an escaped-return error")
	}
	wantSameError(t, "escaped return", te, ve)
}
