package vm_test

// Black-box parity tests for behavior the big differential grid cannot
// reach: resource-guard trips, runtime errors raised inside fused
// superinstructions, and non-local returns — the two engines must agree
// on the exact error text (or value) in every case.

import (
	"testing"

	"selspec/internal/driver"
	"selspec/internal/opt"
)

// runBoth executes src under both engines with the given guards and
// returns (treeValue, treeErr, vmValue, vmErr). A vm-tier fallback to
// tree (unsupported construct) fails the test: everything here must
// actually execute as bytecode.
func runBoth(t *testing.T, src string, step uint64, depth int) (string, error, string, error) {
	t.Helper()
	run := func(eng driver.Engine) (string, error) {
		p, err := driver.Load(src)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		res, rerr := p.RunConfig(driver.ConfigOptions{
			Config: opt.CHA,
			RunExtra: func(ro *driver.RunOptions) {
				ro.CaptureOutput = true
				ro.StepLimit = step
				ro.DepthLimit = depth
				ro.Engine = eng
			},
		})
		if rerr != nil {
			return "", rerr
		}
		if res.Engine != eng {
			t.Fatalf("requested engine %v but %v ran (unexpected fallback)", eng, res.Engine)
		}
		// Value and captured print output together: divergence in either
		// is a parity failure.
		return res.Value + "\n--\n" + res.Output, nil
	}
	tv, te := run(driver.EngineTree)
	vv, ve := run(driver.EngineVM)
	return tv, te, vv, ve
}

func wantSameError(t *testing.T, name string, te, ve error) {
	t.Helper()
	if (te == nil) != (ve == nil) {
		t.Fatalf("%s: error presence diverged: tree %v, vm %v", name, te, ve)
	}
	if te != nil && te.Error() != ve.Error() {
		t.Errorf("%s: error text diverged:\n  tree: %s\n  vm:   %s", name, te, ve)
	}
}

func TestGuardStepLimitParity(t *testing.T) {
	_, te, _, ve := runBoth(t, `method main() { while true { 1; } }`, 10_000, 0)
	if te == nil {
		t.Fatal("step limit did not trip")
	}
	wantSameError(t, "step limit", te, ve)
}

func TestGuardDepthLimitParity(t *testing.T) {
	_, te, _, ve := runBoth(t, `
method f(n@Int) { f(n + 1); }
method main() { f(0); }
`, 0, 64)
	if te == nil {
		t.Fatal("depth limit did not trip")
	}
	wantSameError(t, "depth limit", te, ve)
}

// TestFusedFieldErrorParity drives the non-object failure through the
// fused field-compare superinstructions: the error text must match the
// tree tier's plain GetField failure exactly.
func TestFusedFieldErrorParity(t *testing.T) {
	_, te, _, ve := runBoth(t, `
class P { field q : P; field n : Int := 0; }
method probe(p@P) { p.q.n >= 0; }
method main() { probe(new P()); }
`, 0, 0)
	if te == nil {
		t.Fatal("expected a non-object field error")
	}
	wantSameError(t, "fused field read", te, ve)
}

// TestFusedArrayErrorParity drives out-of-bounds reads and writes
// through OpAGet/OpAPut's cold path (the shared CallPrim seam).
func TestFusedArrayErrorParity(t *testing.T) {
	for name, src := range map[string]string{
		"aget oob": `method main() { var xs := newarray(2); aget(xs, 5); }`,
		"aput oob": `method main() { var xs := newarray(2); aput(xs, 7, 1); }`,
		"aget nonarray": `method main() { aget(3, 0); }`,
	} {
		_, te, _, ve := runBoth(t, src, 0, 0)
		if te == nil {
			t.Fatalf("%s: expected a runtime error", name)
		}
		wantSameError(t, name, te, ve)
	}
}

func TestNonLocalReturnParity(t *testing.T) {
	tv, te, vv, ve := runBoth(t, `
method outer(n@Int) {
  var f := fn(x) { return x; };
  f(n);
  0;
}
method main() { outer(41); }
`, 0, 0)
	wantSameError(t, "non-local return", te, ve)
	if tv != vv {
		t.Errorf("non-local return value diverged: tree %s, vm %s", tv, vv)
	}
}

// TestSlotCaptureAcrossClosureCallParity pins the left-to-right value
// capture the effect analysis enforces: when an operand already read
// from a frame slot is clobbered by a closure call in a later operand,
// the instruction must see the slot's OLD value, as the tree tier does.
// Before the effect-analysis rewire these diverged (the VM read the
// slot register in place at execution time): the `bin` shape printed 9
// under the VM and 1 under the tree.
func TestSlotCaptureAcrossClosureCallParity(t *testing.T) {
	for name, src := range map[string]string{
		// i + f(): Bin's left operand captured before the call writes i.
		"bin": `
method main() {
  var i := 1;
  var f := fn() { i := 8; 0; };
  println(i + f());
  i;
}`,
		// obj.field := expr: the object slot captured before the value
		// expression's closure call rebinds it.
		"setfield": `
class B { field v : Int := 0; }
method main() {
  var a := new B(1);
  var old := a;
  var f := fn() { a := new B(2); 7; };
  a.v := f();
  old.v;
}`,
		// g(...): the callee slot captured before an argument's closure
		// call rebinds it to a different closure.
		"callclosure fn": `
method main() {
  var g := fn(x) { x + 100; };
  var swap := fn() { g := fn(x) { x + 200; }; 5; };
  println(g(swap()));
  0;
}`,
		// if i < f(): the fused compare's left operand captured before
		// the right operand's call writes i.
		"cond cmpbr": `
method main() {
  var i := 1;
  var f := fn() { i := 0; 5; };
  if i < f() { println("lt"); } else { println("ge"); }
  i;
}`,
		// aput(xs, i, f()): the index slot captured before the value
		// operand's call writes i.
		"aput index": `
method main() {
  var xs := newarray(3);
  var i := 0;
  var f := fn() { i := 2; 9; };
  aput(xs, i, f());
  println(aget(xs, 0));
  println(aget(xs, 2));
  i;
}`,
	} {
		tv, te, vv, ve := runBoth(t, src, 0, 0)
		wantSameError(t, name, te, ve)
		if tv != vv {
			t.Errorf("%s: value diverged: tree %s, vm %s", name, tv, vv)
		}
	}
}

func TestEscapedReturnErrorParity(t *testing.T) {
	_, te, _, ve := runBoth(t, `
var esc := 0;
method trap() { esc := fn(x) { return x; }; 0; }
method main() { trap(); esc(1); }
`, 0, 0)
	if te == nil {
		t.Fatal("expected an escaped-return error")
	}
	wantSameError(t, "escaped return", te, ve)
}
