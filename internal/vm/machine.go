package vm

import (
	"fmt"

	"selspec/internal/dispatch"
	"selspec/internal/hier"
	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/lang"
)

// Machine executes one compiled module against the *interp.Interp it
// wraps. The Interp supplies every observable service — dispatch,
// version selection, inline caches, counters, cycle charges, profiling,
// the resource guard, print output — through the engine seams of
// internal/interp, so a Machine run and a tree run of the same program
// are distinguishable only by wall-clock speed. A Machine, like an
// Interp, is single-goroutine state.
type Machine struct {
	in  *interp.Interp
	g   *interp.Guard
	mod *Module

	// stack is the contiguous register arena for frames that no closure
	// captures; sp is the allocation cursor. Frames that outgrow the
	// arena fall back to individual heap windows, and frames captured
	// by closures always live on the heap (see Proc.NeedsFrame).
	stack []interp.Value
	sp    int

	globals []interp.Value
	ready   []bool

	clsBuf    []*hier.Class // scratch for dispatch class tuples
	returning bool          // a vmReturn unwind is in flight

	// ic is the per-call-site inline-cache slot array, indexed directly
	// by the site ID baked into each OpSend/OpVSelect instruction: a
	// dispatch whose version matches the slot jumps straight to the
	// precompiled proc, skipping the version→proc map. The slot is
	// filled at cache-fill time (the first dispatch to that version),
	// which is also when version-table selection ran — per the issue's
	// "version-table selection happens at cache-fill time, not per
	// send": a PIC hit re-uses both the selected version and its proc.
	//
	// Send and version-select caches are separate arrays even though
	// both are keyed by site ID: a VersionSelect reuses the CallSite of
	// the send it was devirtualized from, so under configs that
	// specialize (CHA/Selective) the same ID can be a dynamic send in
	// one compiled version and a static version-select in another. Send
	// ways must mirror the site's PIC exactly (NotePICHitAt replays the
	// PIC promotion by index); version-select ways are a free-standing
	// MRU cache. Sharing one array lets vselect plant ways the PIC
	// never had, driving PromoteAt out of bounds — or worse, resolving
	// a dynamic send to the statically-selected version.
	ic    []icEntry
	icSel []icEntry

	// One-entry closure-proc cache: loops overwhelmingly re-invoke the
	// closure they just called, so this removes the map lookup from the
	// closure-call hot path.
	lastCode *ir.ClosureCode
	lastProc *Proc

	// frames is the explicit continuation stack for flattened calls:
	// when both caller and callee run in arena register windows, a call
	// pushes the caller's resume state here and the dispatch loop
	// switches to the callee in place — no Go-level recursion, no
	// per-call native stack traffic. Heap-framed procs (closure
	// creators) and arena-overflow windows still recurse natively.
	frames []vmFrame
	fp     int
}

// vmFrame is one suspended caller in the flattened call stack.
type vmFrame struct {
	p    *Proc
	regs []interp.Value
	up   *interp.Frame
	act  *interp.Activation
	pc   int // resume pc (instruction after the call)
	dest int // caller register receiving the callee's result
	base int // caller's arena base
	sp   int // caller's arena cursor to restore
}

// vmReturn implements (non-local) return via panic/recover, the VM
// analogue of the tree tier's returnSignal.
type vmReturn struct {
	act *interp.Activation
	val interp.Value
}

// New compiles in's program to bytecode and wraps in in a Machine. An
// error means the program uses a construct the bytecode compiler does
// not support; the caller (driver) falls back to the tree tier. No
// guest code runs here, so fallback has no observable side effects.
func New(in *interp.Interp) (*Machine, error) {
	mod, err := newModule(in.C)
	if err != nil {
		return nil, err
	}
	return &Machine{
		in:    in,
		g:     in.Guard(),
		mod:   mod,
		stack: make([]interp.Value, 4096),
		ic:    make([]icEntry, len(in.C.Prog.Sites)),
		icSel: make([]icEntry, len(in.C.Prog.Sites)),
	}, nil
}

// icWay is one way of an inline-cache slot: a class tuple (up to two
// positions, covering the dominant send arities) with the version it
// dispatches to and that version's compiled proc (resolved lazily for
// mirrored entries that have not been invoked through this way yet).
type icWay struct {
	v   *ir.Version
	p   *Proc
	mth *hier.Method
	c0  *hier.Class
	c1  *hier.Class
	n   int32
}

// icWays is the number of ways per inline-cache slot: enough to keep a
// site cycling among a few receiver classes (the InstSched pattern)
// inside the cache, small enough that a full miss scan stays cheap.
const icWays = 4

// icEntry is one multi-way inline-cache slot, indexed by site ID. A hit
// is a compare-and-jump: pointer-compare the argument classes against a
// way, charge the hit accounting through the shared seams, and enter
// the precompiled body — no class-tuple buffer, no PIC probe, no
// version-table lookup.
//
// For send sites the ways mirror the underlying PIC's first icWays
// entries exactly (refreshed after every generic dispatch), and a
// behind-the-front hit replays the PIC's order-preserving move-to-front
// promotion through NotePICHitAt plus the identical shift on the mirror
// — so the PIC's hit/miss/promotion counters and internal order stay
// byte-identical to a tree run. Version-select sites have no PIC state;
// their ways are a plain MRU set.
type icEntry struct {
	w [icWays]icWay
}

// wayMatch reports whether the way caches exactly the classes of args
// (arity n). Empty ways have n == 0 and never match (sends and selects
// through the cache always have at least the receiver argument).
func (w *icWay) wayMatch(args []interp.Value, n int32, h *hier.Hierarchy) bool {
	return w.n == n && w.v != nil && args[0].Class(h) == w.c0 &&
		(n == 1 || args[1].Class(h) == w.c1)
}

// match scans ways 1..icWays-1 for the argument classes (way 0 is the
// caller's unrolled front fast path) and returns the matching way index,
// or 0 when none matches behind the front.
func (ic *icEntry) match(args []interp.Value, n int32, h *hier.Hierarchy) int {
	for i := 1; i < icWays; i++ {
		if ic.w[i].wayMatch(args, n, h) {
			return i
		}
	}
	return 0
}

// mirrorWay fills w from a PIC entry, or clears it when the entry is
// absent or its tuple is too wide for the inline compare.
func mirrorWay(w *icWay, classes []*hier.Class, t dispatch.Target, ok bool, v *ir.Version, cp *Proc) {
	if !ok || len(classes) < 1 || len(classes) > 2 {
		*w = icWay{}
		return
	}
	w.n = int32(len(classes))
	w.c0 = classes[0]
	if w.n == 2 {
		w.c1 = classes[1]
	} else {
		w.c1 = nil
	}
	w.v, w.mth = t.Version, t.Method
	if t.Version == v {
		w.p = cp
	} else {
		w.p = nil // resolved on first hit through this way
	}
}

// refreshSendIC re-mirrors a send site's inline cache from its PIC
// after a generic dispatch (v, cp = the dispatch result, for proc
// reuse). Under the global or table mechanisms there is no PIC and the
// cache stays empty — every dispatch keeps its full lookup accounting.
func (m *Machine) refreshSendIC(ic *icEntry, site *ir.CallSite, v *ir.Version, cp *Proc) {
	pic := m.in.SitePIC(site.ID)
	if pic == nil {
		return
	}
	for i := range ic.w {
		c, t, ok := pic.Entry(i)
		mirrorWay(&ic.w[i], c, t, ok, v, cp)
	}
}

// Interp returns the wrapped interpreter (counters, profile, metrics).
func (m *Machine) Interp() *interp.Interp { return m.in }

func vmFail(format string, args ...any) {
	panic(&interp.RuntimeError{Msg: fmt.Sprintf(format, args...)})
}

func vmFailAt(pos lang.Pos, format string, args ...any) {
	panic(&interp.RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Run initializes globals and invokes main(); it returns main's value.
// The boundary mirrors interp.Run exactly: Mini-Cecil runtime errors
// (including guard trips) come back as *interp.RuntimeError, a stray
// non-local return becomes the same "already exited" error, and the
// observability totals flush on every exit path.
func (m *Machine) Run() (v interp.Value, err error) {
	in := m.in
	defer in.FlushObs()
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*interp.RuntimeError); ok {
				err = re
				return
			}
			if _, ok := r.(vmReturn); ok {
				m.returning = false
				err = &interp.RuntimeError{Msg: "return from a method activation that already exited"}
				return
			}
			panic(r)
		}
	}()

	m.g.Arm(in.StepLimit, in.DepthLimit, in.Ctx)
	m.returning = false
	m.sp = 0
	m.fp = 0

	m.globals = make([]interp.Value, len(in.C.GlobalInits))
	m.ready = make([]bool, len(in.C.GlobalInits))
	in.Globals = m.globals
	for i, p := range m.mod.globalInits {
		m.globals[i] = m.runThunk(p)
		m.ready[i] = true
	}

	if in.C.Prog.Main == nil {
		return interp.NilV, fmt.Errorf("interp: program has no main() method")
	}
	mn, derr := in.H.Lookup(in.C.Prog.Main)
	if derr != nil {
		return interp.NilV, derr
	}
	return m.invoke(in.C.SelectVersion(mn, nil), nil, lang.Pos{}), nil
}

// clearSlots zeroes the frame-slot registers past the copied-in
// parameters, giving unassigned locals the tree tier's zero Value.
// Temporaries above NumSlots are never cleared: the compiler's
// write-into-dest discipline guarantees every temp is written on a
// path before it is read on that path, so stale arena contents are
// unobservable.
func clearSlots(regs []interp.Value, from, to int) {
	clear(regs[from:to])
}

// runThunk executes an initializer proc (global or field init) the way
// the tree tier evaluates init nodes: no frame, no activation, no call
// depth charged.
func (m *Machine) runThunk(p *Proc) interp.Value {
	base := m.sp
	if base+p.NumRegs <= len(m.stack) {
		regs := m.stack[base : base+p.NumRegs]
		clearSlots(regs, 0, p.NumSlots)
		m.sp = base + p.NumRegs
		v := m.exec(p, regs, nil, nil, nil, base)
		m.sp = base
		return v
	}
	return m.exec(p, make([]interp.Value, p.NumRegs), nil, nil, nil, -1)
}

// proc resolves the compiled proc for a method version, compiling
// lazily for versions whose bodies the lazy configurations produce
// mid-run. Raises the tree tier's "compile: ..." RuntimeError when lazy
// body compilation fails.
func (m *Machine) proc(v *ir.Version) *Proc {
	if p, ok := m.mod.procs[v]; ok {
		return p
	}
	if _, err := m.in.C.Body(v); err != nil {
		vmFail("compile: %v", err)
	}
	p, err := m.mod.version(v)
	if err != nil {
		// Unreachable for today's IR (the compiler covers every node
		// type); surface as the tree tier's internal-error shape.
		var ce *CompileError
		if ok := asCompileError(err, &ce); ok {
			vmFailAt(m.g.CallPos(), "internal error: unknown IR node %T", ce.Node)
		}
		vmFail("compile: %v", err)
	}
	return p
}

func asCompileError(err error, out **CompileError) bool {
	ce, ok := err.(*CompileError)
	if ok {
		*out = ce
	}
	return ok
}

// invoke runs one method version from the Run boundary: the VM
// counterpart of interp.invoke, with identical guard, profile and
// counter sequencing (enter the depth guard, resolve the body, note
// the entry, run).
func (m *Machine) invoke(v *ir.Version, args []interp.Value, pos lang.Pos) interp.Value {
	m.g.Enter(pos)
	p := m.proc(v)
	if !p.noted {
		p.noted = true
		m.in.MarkInvoked(v)
	}
	m.in.NoteInvokeKnown(v, args)
	ret := m.runNoted(p, args)
	m.g.Leave()
	return ret
}

// runNoted executes a method proc whose entry has already been charged
// (NoteInvokeKnown) and whose depth guard is entered: the slow call
// path, for callees the dispatch loop cannot run in a flattened
// in-place window — closure creators (heap frame + activation), calls
// from heap-framed callers, and arena overflow.
func (m *Machine) runNoted(p *Proc, args []interp.Value) interp.Value {
	if p.NeedsFrame {
		regs := make([]interp.Value, p.NumRegs)
		copy(regs, args)
		fr := &interp.Frame{Slots: regs[:p.NumSlots]}
		return m.runMethodAct(p, regs, fr)
	}
	if base := m.sp; base+p.NumRegs <= len(m.stack) {
		regs := m.stack[base : base+p.NumRegs]
		copy(regs, args)
		clearSlots(regs, len(args), p.NumSlots)
		m.sp = base + p.NumRegs
		ret := m.exec(p, regs, nil, nil, nil, base)
		m.sp = base
		return ret
	}
	regs := make([]interp.Value, p.NumRegs)
	copy(regs, args)
	return m.exec(p, regs, nil, nil, nil, -1)
}

// runEntered executes a closure proc after NoteClosureCall and the
// depth-guard Enter: the slow closure path (closure bodies that create
// closures, heap-framed callers, arena overflow).
func (m *Machine) runEntered(p *Proc, args []interp.Value, up *interp.Frame, act *interp.Activation) interp.Value {
	if p.NeedsFrame {
		regs := make([]interp.Value, p.NumRegs)
		copy(regs, args)
		fr := &interp.Frame{Slots: regs[:p.NumSlots], Parent: up}
		return m.exec(p, regs, up, act, fr, -1)
	}
	if base := m.sp; base+p.NumRegs <= len(m.stack) {
		regs := m.stack[base : base+p.NumRegs]
		copy(regs, args)
		clearSlots(regs, len(args), p.NumSlots)
		m.sp = base + p.NumRegs
		ret := m.exec(p, regs, up, act, nil, base)
		m.sp = base
		return ret
	}
	regs := make([]interp.Value, p.NumRegs)
	copy(regs, args)
	return m.exec(p, regs, up, act, nil, -1)
}

// closureProc resolves a closure body's compiled proc, raising the
// tree tier's error shapes on (unreachable today) compile failure.
func (m *Machine) closureProc(code *ir.ClosureCode) *Proc {
	p, err := m.mod.closure(code)
	if err != nil {
		var ce *CompileError
		if asCompileError(err, &ce) {
			vmFailAt(m.g.CallPos(), "internal error: unknown IR node %T", ce.Node)
		}
		vmFail("compile: %v", err)
	}
	return p
}

// runMethodAct executes a method body that creates closures, under a
// live activation that non-local returns can target. Like the tree
// tier's runBody, the recover is gated on m.returning so fatal faults
// unwind linearly; unlike the tree tier, catching a return restores the
// absolute call depth and arena cursor in one step instead of relying
// on per-frame deferred leaves.
func (m *Machine) runMethodAct(p *Proc, regs []interp.Value, fr *interp.Frame) (result interp.Value) {
	act := interp.NewActivation()
	savedDepth := m.g.Depth()
	savedSP := m.sp
	savedFP := m.fp
	defer func() {
		act.Exit()
		if !m.returning {
			return
		}
		if r := recover(); r != nil {
			if rs, ok := r.(vmReturn); ok && rs.act == act {
				m.returning = false
				m.g.SetDepth(savedDepth)
				m.sp = savedSP
				m.fp = savedFP
				result = rs.val
				return
			}
			panic(r) // a return aimed at an outer activation: keep unwinding
		}
	}()
	return m.exec(p, regs, nil, act, fr, -1)
}

// exec is the dispatch loop. regs is this proc's register window; up is
// the static parent frame (closure procs only), act the activation
// non-local returns target (nil in initializers), fr this proc's heap
// frame when NeedsFrame, and base the window's absolute arena index
// (-1 for heap windows) — call instructions use it to hand the callee
// an in-place register window starting at the argument registers.
func (m *Machine) exec(p *Proc, regs []interp.Value, up *interp.Frame, act *interp.Activation, fr *interp.Frame, base int) interp.Value {
	in := m.in
	code := p.Code
	pc := 0
	// entryFP marks this invocation's floor in the flattened call
	// stack: OpRet pops only frames this invocation pushed, then
	// returns natively to the caller (runMethodAct, runThunk, Run).
	entryFP := m.fp
	// cyc and prims batch this invocation's cycle and primitive-op
	// charges in registers; the deferred flush runs on every exit path
	// (normal return, guard trip, runtime error, non-local return), so
	// the interpreter's counters are exact whenever they are observable
	// — at run end and at error capture. Nothing reads them mid-run.
	var cyc, prims uint64
	defer func() {
		in.Counters.Cycles += cyc
		in.Counters.PrimOps += prims
	}()
	for {
		i := &code[pc]
		switch i.Op {
		case OpConst:
			regs[i.A] = p.Consts[i.B]

		case OpMove:
			regs[i.A] = regs[i.B]

		case OpJump:
			pc = int(i.A)
			continue

		case OpBranchFalse:
			v := regs[i.A]
			if v.K != interp.KBool {
				vmFail(checkMsgs[i.C], v)
			}
			cyc += interp.CostBin
			if v.I == 0 {
				pc = int(i.B)
				continue
			}

		case OpCheckBool:
			if regs[i.A].K != interp.KBool {
				vmFail(checkMsgs[i.C], regs[i.A])
			}

		case OpCmpBr:
			// Fused Bin(compare) + branch: one PrimOp and CostBin for
			// the comparison, then CostBin for the branch — exactly the
			// unfused accounting, failure point included (a mixed-type
			// comparison faults after the first charge, like EvalBin).
			l, r := regs[i.A], regs[i.B]
			prims++
			cyc += interp.CostBin
			var b bool
			if l.K == interp.KInt && r.K == interp.KInt {
				switch ir.BinOp(i.D) {
				case ir.OpLT:
					b = l.I < r.I
				case ir.OpLE:
					b = l.I <= r.I
				case ir.OpGT:
					b = l.I > r.I
				case ir.OpGE:
					b = l.I >= r.I
				case ir.OpEQ:
					b = l.I == r.I
				default:
					b = l.I != r.I
				}
			} else {
				b = interp.EvalBin(ir.BinOp(i.D), l, r).I != 0
			}
			cyc += interp.CostBin
			if !b {
				pc = int(i.C)
				continue
			}

		case OpCmpBrK:
			l, r := regs[i.A], p.Consts[i.B]
			prims++
			cyc += interp.CostBin
			var b bool
			if l.K == interp.KInt && r.K == interp.KInt {
				switch ir.BinOp(i.D) {
				case ir.OpLT:
					b = l.I < r.I
				case ir.OpLE:
					b = l.I <= r.I
				case ir.OpGT:
					b = l.I > r.I
				case ir.OpGE:
					b = l.I >= r.I
				case ir.OpEQ:
					b = l.I == r.I
				default:
					b = l.I != r.I
				}
			} else {
				b = interp.EvalBin(ir.BinOp(i.D), l, r).I != 0
			}
			cyc += interp.CostBin
			if !b {
				pc = int(i.C)
				continue
			}

		case OpCmpBrField:
			f := &p.FieldOps[i.D]
			ov := regs[i.B]
			if ov.K != interp.KObj {
				vmFail("field %q read on non-object %s", p.Names[f.Name], ov)
			}
			cyc += interp.CostFieldCached
			l, r := regs[i.A], ov.O.Fields[f.Slot]
			prims++
			cyc += interp.CostBin
			var b bool
			if l.K == interp.KInt && r.K == interp.KInt {
				switch f.Op {
				case ir.OpLT:
					b = l.I < r.I
				case ir.OpLE:
					b = l.I <= r.I
				case ir.OpGT:
					b = l.I > r.I
				case ir.OpGE:
					b = l.I >= r.I
				case ir.OpEQ:
					b = l.I == r.I
				default:
					b = l.I != r.I
				}
			} else {
				b = interp.EvalBin(f.Op, l, r).I != 0
			}
			cyc += interp.CostBin
			if !b {
				pc = int(i.C)
				continue
			}

		case OpStep:
			m.g.Step()

		case OpCharge:
			cyc += uint64(i.A)

		case OpGetUp:
			f := up
			for d := i.B; d > 1; d-- {
				f = f.Parent
			}
			regs[i.A] = f.Slots[i.C]

		case OpSetUp:
			f := up
			for d := i.B; d > 1; d-- {
				f = f.Parent
			}
			f.Slots[i.C] = regs[i.A]

		case OpGetGlobal:
			if !m.ready[i.B] {
				vmFail("global %s read before its initializer has run", p.Names[i.C])
			}
			regs[i.A] = m.globals[i.B]

		case OpSetGlobal:
			m.globals[i.B] = regs[i.A]
			m.ready[i.B] = true

		case OpGetField:
			obj := regs[i.B]
			if obj.K != interp.KObj {
				vmFail("field %q read on non-object %s", p.Names[i.D], obj)
			}
			cyc += interp.CostFieldCached
			regs[i.A] = obj.O.Fields[i.C]

		case OpGetFieldDyn:
			obj := regs[i.B]
			name := p.Names[i.D]
			if obj.K != interp.KObj {
				vmFail("field %q read on non-object %s", name, obj)
			}
			cyc += interp.CostFieldLookup
			idx := obj.O.Class.FieldIndex(name)
			if idx < 0 {
				vmFail("class %s has no field %q", obj.O.Class.Name, name)
			}
			regs[i.A] = obj.O.Fields[idx]

		case OpSetField:
			obj := regs[i.A]
			v := regs[i.B]
			if obj.K != interp.KObj {
				vmFail("field %q written on non-object %s", p.Names[i.D], obj)
			}
			cyc += interp.CostFieldCached
			in.CheckFieldType(obj.O.Class, int(i.C), v)
			obj.O.Fields[i.C] = v

		case OpSetFieldDyn:
			obj := regs[i.A]
			v := regs[i.B]
			name := p.Names[i.D]
			if obj.K != interp.KObj {
				vmFail("field %q written on non-object %s", name, obj)
			}
			cyc += interp.CostFieldLookup
			idx := obj.O.Class.FieldIndex(name)
			if idx < 0 {
				vmFail("class %s has no field %q", obj.O.Class.Name, name)
			}
			in.CheckFieldType(obj.O.Class, idx, v)
			obj.O.Fields[idx] = v

		case OpNew:
			ref := &p.News[i.B]
			cls := ref.Class
			obj := &interp.Object{Class: cls, Fields: make([]interp.Value, len(cls.Fields))}
			for f := range obj.Fields {
				obj.Fields[f] = interp.NilV
			}
			args := regs[i.C : i.C+i.D]
			copy(obj.Fields, args)
			inits := ref.inits
			for f := int(i.D); f < len(cls.Fields); f++ {
				if f < len(inits) && inits[f] != nil {
					obj.Fields[f] = m.runThunk(inits[f])
				}
			}
			for f := range cls.Fields {
				in.CheckFieldType(cls, f, obj.Fields[f])
			}
			regs[i.A] = interp.Value{K: interp.KObj, O: obj}

		case OpMakeClosure:
			cyc += interp.CostClosureMake
			regs[i.A] = interp.Value{K: interp.KClosure, C: &interp.Closure{Code: p.Closures[i.B], Frame: fr, Act: act}}

		case OpCheckClosure:
			fn := regs[i.A]
			if fn.K != interp.KClosure {
				vmFailAt(p.Poss[i.C], "calling a non-closure value %s", fn)
			}
			if int(i.B) != fn.C.Code.NumParams {
				vmFailAt(p.Poss[i.C], "closure expects %d arguments, got %d", fn.C.Code.NumParams, i.B)
			}

		case OpCallClosure:
			clo := regs[i.B].C
			args := regs[i.C : i.C+int32(clo.Code.NumParams)]
			in.NoteClosureCall()
			var cp *Proc
			if clo.Code == m.lastCode {
				cp = m.lastProc
			} else {
				cp = m.closureProc(clo.Code)
				m.lastCode, m.lastProc = clo.Code, cp
			}
			m.g.Enter(p.Poss[i.D])
			if !cp.NeedsFrame && base >= 0 {
				if ab := base + int(i.C); ab+cp.NumRegs <= len(m.stack) {
					if m.fp == len(m.frames) {
						m.frames = append(m.frames, vmFrame{})
					}
					f := &m.frames[m.fp]
					m.fp++
					f.p, f.regs, f.up, f.act = p, regs, up, act
					f.pc, f.dest, f.base, f.sp = pc+1, int(i.A), base, m.sp
					p, code = cp, cp.Code
					nr := m.stack[ab : ab+cp.NumRegs]
					clearSlots(nr, len(args), cp.NumSlots)
					regs, base = nr, ab
					m.sp = ab + cp.NumRegs
					up, act = clo.Frame, clo.Act
					pc = 0
					continue
				}
			}
			ret := m.runEntered(cp, args, clo.Frame, clo.Act)
			m.g.Leave()
			regs[i.A] = ret

		case OpSend:
			args := regs[i.C : i.C+i.D]
			site := p.Sites[i.B]
			ic := &m.ic[site.ID]
			var v *ir.Version
			var cp *Proc
			if w := &ic.w[0]; w.wayMatch(args, i.D, in.H) {
				v, cp = w.v, w.p
				in.NotePICHit(site, w.mth, v)
				m.g.Enter(site.Pos)
				if cp == nil {
					cp = m.proc(v)
					w.p = cp
				}
				// The way mirrors the PIC front entry: a front hit leaves
				// PIC state untouched, so the mirror stays exact.
			} else if wi := ic.match(args, i.D, in.H); wi > 0 {
				w := &ic.w[wi]
				v = w.v
				in.NotePICHitAt(site, w.mth, v, wi)
				m.g.Enter(site.Pos)
				cp = w.p
				if cp == nil {
					cp = m.proc(v)
					w.p = cp
				}
				// NotePICHitAt promoted the PIC's entry wi to the front
				// with an order-preserving shift; mirror the same shift.
				hw := *w
				copy(ic.w[1:wi+1], ic.w[:wi])
				ic.w[0] = hw
			} else {
				m.clsBuf = in.ClassesOf(args, m.clsBuf)
				v = in.DispatchSendClasses(site, m.clsBuf)
				// Enter before body resolution, as the tree tier does: a
				// depth trip must win over a lazy-compile failure.
				m.g.Enter(site.Pos)
				cp = m.proc(v)
				m.refreshSendIC(ic, site, v, cp)
			}
			if !cp.noted {
				cp.noted = true
				in.MarkInvoked(v)
			}
			in.NoteInvokeKnown(v, args)
			if !cp.NeedsFrame && base >= 0 {
				if ab := base + int(i.C); ab+cp.NumRegs <= len(m.stack) {
					if m.fp == len(m.frames) {
						m.frames = append(m.frames, vmFrame{})
					}
					f := &m.frames[m.fp]
					m.fp++
					f.p, f.regs, f.up, f.act = p, regs, up, act
					f.pc, f.dest, f.base, f.sp = pc+1, int(i.A), base, m.sp
					p, code = cp, cp.Code
					nr := m.stack[ab : ab+cp.NumRegs]
					clearSlots(nr, len(args), cp.NumSlots)
					regs, base = nr, ab
					m.sp = ab + cp.NumRegs
					up, act = nil, nil
					pc = 0
					continue
				}
			}
			ret := m.runNoted(cp, args)
			m.g.Leave()
			regs[i.A] = ret

		case OpStaticCall:
			ref := &p.Statics[i.B]
			args := regs[i.C : i.C+i.D]
			in.NoteStaticCall(ref.Site, ref.Target)
			m.g.Enter(ref.Site.Pos)
			cp := ref.proc
			if cp == nil {
				cp = m.proc(ref.Target)
				ref.proc = cp
			}
			if !cp.noted {
				cp.noted = true
				in.MarkInvoked(ref.Target)
			}
			in.NoteInvokeKnown(ref.Target, args)
			if !cp.NeedsFrame && base >= 0 {
				if ab := base + int(i.C); ab+cp.NumRegs <= len(m.stack) {
					if m.fp == len(m.frames) {
						m.frames = append(m.frames, vmFrame{})
					}
					f := &m.frames[m.fp]
					m.fp++
					f.p, f.regs, f.up, f.act = p, regs, up, act
					f.pc, f.dest, f.base, f.sp = pc+1, int(i.A), base, m.sp
					p, code = cp, cp.Code
					nr := m.stack[ab : ab+cp.NumRegs]
					clearSlots(nr, len(args), cp.NumSlots)
					regs, base = nr, ab
					m.sp = ab + cp.NumRegs
					up, act = nil, nil
					pc = 0
					continue
				}
			}
			ret := m.runNoted(cp, args)
			m.g.Leave()
			regs[i.A] = ret

		case OpVSelect:
			ref := &p.VSels[i.B]
			args := regs[i.C : i.C+i.D]
			ic := &m.icSel[ref.Site.ID]
			var v *ir.Version
			var cp *Proc
			if w := &ic.w[0]; w.wayMatch(args, i.D, in.H) {
				v, cp = w.v, w.p
				in.NoteVersionSelect(ref.Site, ref.Method, v)
				m.g.Enter(ref.Site.Pos)
			} else if wi := ic.match(args, i.D, in.H); wi > 0 {
				w := ic.w[wi]
				v, cp = w.v, w.p
				in.NoteVersionSelect(ref.Site, ref.Method, v)
				m.g.Enter(ref.Site.Pos)
				// Selection is a deterministic table lookup with no
				// engine-visible cache state, so the ways are plain MRU:
				// move the hit to the front.
				copy(ic.w[1:wi+1], ic.w[:wi])
				ic.w[0] = w
			} else {
				m.clsBuf = in.ClassesOf(args, m.clsBuf)
				v = in.SelectVersionClasses(ref.Site, ref.Method, m.clsBuf)
				m.g.Enter(ref.Site.Pos)
				cp = m.proc(v)
				if i.D >= 1 && i.D <= 2 {
					copy(ic.w[1:], ic.w[:icWays-1])
					w := &ic.w[0]
					w.n, w.c0 = i.D, m.clsBuf[0]
					if i.D == 2 {
						w.c1 = m.clsBuf[1]
					} else {
						w.c1 = nil
					}
					w.v, w.mth, w.p = v, v.Method, cp
				}
			}
			if !cp.noted {
				cp.noted = true
				in.MarkInvoked(v)
			}
			in.NoteInvokeKnown(v, args)
			if !cp.NeedsFrame && base >= 0 {
				if ab := base + int(i.C); ab+cp.NumRegs <= len(m.stack) {
					if m.fp == len(m.frames) {
						m.frames = append(m.frames, vmFrame{})
					}
					f := &m.frames[m.fp]
					m.fp++
					f.p, f.regs, f.up, f.act = p, regs, up, act
					f.pc, f.dest, f.base, f.sp = pc+1, int(i.A), base, m.sp
					p, code = cp, cp.Code
					nr := m.stack[ab : ab+cp.NumRegs]
					clearSlots(nr, len(args), cp.NumSlots)
					regs, base = nr, ab
					m.sp = ab + cp.NumRegs
					up, act = nil, nil
					pc = 0
					continue
				}
			}
			ret := m.runNoted(cp, args)
			m.g.Leave()
			regs[i.A] = ret

		case OpPrim:
			// The allocation-free primitives run inline with the same
			// PrimOps/CostPrim accounting as CallPrim; every fallthrough
			// (other prims, and all failure shapes) takes the shared seam,
			// which charges first and then raises the tree tier's exact
			// error — so the fast path charges nothing before deferring.
			args := regs[i.C : i.C+i.D]
			switch ir.Prim(i.B) {
			case ir.PrimAGet:
				if a, ix := args[0], args[1]; a.K == interp.KArray && ix.K == interp.KInt &&
					ix.I >= 0 && ix.I < int64(len(a.A.Elems)) {
					prims++
					cyc += interp.CostPrim
					regs[i.A] = a.A.Elems[ix.I]
					break
				}
				regs[i.A] = in.CallPrim(ir.Prim(i.B), args)
			case ir.PrimAPut:
				if a, ix := args[0], args[1]; a.K == interp.KArray && ix.K == interp.KInt &&
					ix.I >= 0 && ix.I < int64(len(a.A.Elems)) {
					prims++
					cyc += interp.CostPrim
					a.A.Elems[ix.I] = args[2]
					regs[i.A] = args[2]
					break
				}
				regs[i.A] = in.CallPrim(ir.Prim(i.B), args)
			case ir.PrimALen:
				if args[0].K == interp.KArray {
					prims++
					cyc += interp.CostPrim
					regs[i.A] = interp.IntV(int64(len(args[0].A.Elems)))
					break
				}
				regs[i.A] = in.CallPrim(ir.Prim(i.B), args)
			case ir.PrimStrLen:
				if args[0].K == interp.KStr {
					prims++
					cyc += interp.CostPrim
					regs[i.A] = interp.IntV(int64(len(args[0].S)))
					break
				}
				regs[i.A] = in.CallPrim(ir.Prim(i.B), args)
			case ir.PrimOrd:
				if args[0].K == interp.KStr && len(args[0].S) > 0 {
					prims++
					cyc += interp.CostPrim
					regs[i.A] = interp.IntV(int64(args[0].S[0]))
					break
				}
				regs[i.A] = in.CallPrim(ir.Prim(i.B), args)
			default:
				regs[i.A] = in.CallPrim(ir.Prim(i.B), args)
			}

		case OpBin:
			l, r := regs[i.B], regs[i.C]
			prims++
			cyc += interp.CostBin
			if l.K == interp.KInt && r.K == interp.KInt {
				switch ir.BinOp(i.D) {
				case ir.OpAdd:
					regs[i.A] = interp.IntV(l.I + r.I)
				case ir.OpSub:
					regs[i.A] = interp.IntV(l.I - r.I)
				case ir.OpMul:
					regs[i.A] = interp.IntV(l.I * r.I)
				case ir.OpLT:
					regs[i.A] = interp.BoolV(l.I < r.I)
				case ir.OpLE:
					regs[i.A] = interp.BoolV(l.I <= r.I)
				case ir.OpGT:
					regs[i.A] = interp.BoolV(l.I > r.I)
				case ir.OpGE:
					regs[i.A] = interp.BoolV(l.I >= r.I)
				case ir.OpEQ:
					regs[i.A] = interp.BoolV(l.I == r.I)
				case ir.OpNE:
					regs[i.A] = interp.BoolV(l.I != r.I)
				default:
					regs[i.A] = interp.EvalBin(ir.BinOp(i.D), l, r)
				}
			} else {
				regs[i.A] = interp.EvalBin(ir.BinOp(i.D), l, r)
			}

		case OpBinK:
			l, r := regs[i.B], p.Consts[i.C]
			prims++
			cyc += interp.CostBin
			if l.K == interp.KInt && r.K == interp.KInt {
				switch ir.BinOp(i.D) {
				case ir.OpAdd:
					regs[i.A] = interp.IntV(l.I + r.I)
				case ir.OpSub:
					regs[i.A] = interp.IntV(l.I - r.I)
				case ir.OpMul:
					regs[i.A] = interp.IntV(l.I * r.I)
				case ir.OpLT:
					regs[i.A] = interp.BoolV(l.I < r.I)
				case ir.OpLE:
					regs[i.A] = interp.BoolV(l.I <= r.I)
				case ir.OpGT:
					regs[i.A] = interp.BoolV(l.I > r.I)
				case ir.OpGE:
					regs[i.A] = interp.BoolV(l.I >= r.I)
				case ir.OpEQ:
					regs[i.A] = interp.BoolV(l.I == r.I)
				case ir.OpNE:
					regs[i.A] = interp.BoolV(l.I != r.I)
				default:
					// Div/Mod: the shared fallback owns the zero checks.
					regs[i.A] = interp.EvalBin(ir.BinOp(i.D), l, r)
				}
			} else {
				regs[i.A] = interp.EvalBin(ir.BinOp(i.D), l, r)
			}

		case OpAGet:
			a, ix := regs[i.B], regs[i.C]
			if a.K == interp.KArray && ix.K == interp.KInt &&
				ix.I >= 0 && ix.I < int64(len(a.A.Elems)) {
				prims++
				cyc += interp.CostPrim
				regs[i.A] = a.A.Elems[ix.I]
			} else {
				// Shared seam: charges first, then raises the tree tier's
				// exact error for every failure shape.
				regs[i.A] = in.CallPrim(ir.PrimAGet, []interp.Value{a, ix})
			}

		case OpAPut:
			a, ix := regs[i.B], regs[i.C]
			if a.K == interp.KArray && ix.K == interp.KInt &&
				ix.I >= 0 && ix.I < int64(len(a.A.Elems)) {
				prims++
				cyc += interp.CostPrim
				v := regs[i.D]
				a.A.Elems[ix.I] = v
				regs[i.A] = v
			} else {
				regs[i.A] = in.CallPrim(ir.PrimAPut, []interp.Value{a, ix, regs[i.D]})
			}

		case OpFieldBin, OpFieldBinK, OpBinField:
			f := &p.FieldOps[i.D]
			ov := regs[i.B]
			if ov.K != interp.KObj {
				vmFail("field %q read on non-object %s", p.Names[f.Name], ov)
			}
			cyc += interp.CostFieldCached
			var l, r interp.Value
			switch i.Op {
			case OpFieldBin:
				l, r = ov.O.Fields[f.Slot], regs[i.C]
			case OpFieldBinK:
				l, r = ov.O.Fields[f.Slot], p.Consts[i.C]
			default: // OpBinField: field is the right operand
				l, r = regs[i.C], ov.O.Fields[f.Slot]
			}
			prims++
			cyc += interp.CostBin
			if l.K == interp.KInt && r.K == interp.KInt {
				switch f.Op {
				case ir.OpAdd:
					regs[i.A] = interp.IntV(l.I + r.I)
				case ir.OpSub:
					regs[i.A] = interp.IntV(l.I - r.I)
				case ir.OpMul:
					regs[i.A] = interp.IntV(l.I * r.I)
				case ir.OpLT:
					regs[i.A] = interp.BoolV(l.I < r.I)
				case ir.OpLE:
					regs[i.A] = interp.BoolV(l.I <= r.I)
				case ir.OpGT:
					regs[i.A] = interp.BoolV(l.I > r.I)
				case ir.OpGE:
					regs[i.A] = interp.BoolV(l.I >= r.I)
				case ir.OpEQ:
					regs[i.A] = interp.BoolV(l.I == r.I)
				case ir.OpNE:
					regs[i.A] = interp.BoolV(l.I != r.I)
				default:
					regs[i.A] = interp.EvalBin(f.Op, l, r)
				}
			} else {
				regs[i.A] = interp.EvalBin(f.Op, l, r)
			}

		case OpNot:
			x := regs[i.B]
			prims++
			cyc += interp.CostBin
			if x.K != interp.KBool {
				vmFail("'!' on non-boolean %s", x)
			}
			regs[i.A] = interp.BoolV(x.I == 0)

		case OpNeg:
			x := regs[i.B]
			prims++
			cyc += interp.CostBin
			if x.K != interp.KInt {
				vmFail("unary '-' on non-integer %s", x)
			}
			regs[i.A] = interp.IntV(-x.I)

		case OpRet:
			if m.fp > entryFP {
				// Pop a flattened caller: restore its loop state in place
				// and keep dispatching — the Go stack never moved.
				ret := regs[i.A]
				m.g.Leave()
				m.fp--
				f := &m.frames[m.fp]
				p, regs, up, act = f.p, f.regs, f.up, f.act
				code = p.Code
				pc = f.pc
				base = f.base
				m.sp = f.sp
				regs[f.dest] = ret
				f.p, f.regs, f.up, f.act = nil, nil, nil, nil
				continue
			}
			return regs[i.A]

		case OpRetNL:
			if act == nil || !act.Alive() {
				vmFail("return from a method activation that already exited")
			}
			m.returning = true
			panic(vmReturn{act: act, val: regs[i.A]})

		default:
			vmFailAt(m.g.CallPos(), "internal error: unknown opcode %s", i.Op)
		}
		pc++
	}
}
