package vm

// White-box compiler tests: superinstruction selection, disassembly,
// and the unsupported-construct error path that drives the driver's
// tree-tier fallback.

import (
	"errors"
	"strings"
	"testing"

	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
)

func compileModule(t *testing.T, src string, cfg opt.Config) *Module {
	t.Helper()
	parsed, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := ir.Lower(parsed)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: cfg})
	if err != nil {
		t.Fatalf("opt: %v", err)
	}
	mod, err := newModule(c)
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	return mod
}

func allDisasm(mod *Module) string {
	var b strings.Builder
	for _, p := range mod.procs {
		b.WriteString(p.Disasm())
	}
	for _, p := range mod.globalInits {
		b.WriteString(p.Disasm())
	}
	return b.String()
}

const superSrc = `
class P { field n : Int := 0; field k : Int := 0; }
method bump(p@P, r@Int) {
  var hits := 0;
  var xs := newarray(4);
  var i := 0;
  while i < p.n {
    aput(xs, i, i * 2);
    if p.k >= r { hits := hits + aget(xs, i); }
    i := i + 1;
  }
  hits := hits + p.n;
  var neg := p.k >= 0;
  var eq := p.k == r;
  if neg { hits := hits + 1; }
  if eq { hits := hits - 1; }
  hits;
}
method main() { bump(new P(3, 5), 4); }
`

// TestSuperinstructionEmission pins the compiler's instruction
// selection: each fused shape in the source must compile to its
// superinstruction, not the generic sequence.
func TestSuperinstructionEmission(t *testing.T) {
	dis := allDisasm(compileModule(t, superSrc, opt.CHA))
	for _, op := range []string{
		"cmpbrfield", // while i < p.n
		"aput",       // aput(xs, i, i*2), window-free
		"aget",       // aget(xs, i), window-free
		"bink",       // i := i + 1
		"binfield",   // hits + p.n
		"fieldbink",  // p.k >= 0
		"fieldbin",   // p.k == r
	} {
		if !strings.Contains(dis, " "+op+" ") && !strings.Contains(dis, " "+op+"\n") &&
			!strings.Contains(dis, op+" ") {
			t.Errorf("disassembly is missing superinstruction %q:\n%s", op, dis)
		}
	}
	// The fused shapes must not also appear unfused: no argument-window
	// prim call remains for aget/aput in bump's body.
	for _, p := range compileModule(t, superSrc, opt.CHA).procs {
		if !strings.Contains(p.Name, "bump") {
			continue
		}
		for _, i := range p.Code {
			if i.Op == OpPrim && (ir.Prim(i.B) == ir.PrimAGet || ir.Prim(i.B) == ir.PrimAPut) {
				t.Errorf("bump still holds a windowed aget/aput prim:\n%s", p.Disasm())
			}
		}
	}
}

// TestDisasmRendersFusedOperands checks the disassembler's rendering of
// the fused field ops (field name, operator, operand registers), which
// DESIGN.md quotes.
func TestDisasmRendersFusedOperands(t *testing.T) {
	src := `
class P { field n : Int := 0; }
method pos(p@P) { p.n >= 0; }
method main() { pos(new P(1)); }
`
	mod := compileModule(t, src, opt.CHA)
	for _, p := range mod.procs {
		if !strings.Contains(p.Name, "pos") {
			continue
		}
		dis := p.Disasm()
		if !strings.Contains(dis, "fieldbink") || !strings.Contains(dis, ".n >= 0") {
			t.Errorf("fieldbink rendering missing from:\n%s", dis)
		}
		return
	}
	t.Fatal("proc for pos not found")
}

// TestCompileErrorUnsupported pins the fallback contract: an IR shape
// the compiler does not know produces a *CompileError (which the driver
// turns into a silent tree-tier fallback), never a panic.
func TestCompileErrorUnsupported(t *testing.T) {
	mod := compileModule(t, "method main() { 1; }", opt.Base)
	_, err := mod.compile("bad", KindMethod, nil, 0)
	var ce *CompileError
	if !errors.As(err, &ce) {
		t.Fatalf("compiling an unknown node: got %v, want *CompileError", err)
	}
}

// findProc returns the first eagerly compiled version proc whose name
// contains sub.
func findProc(t *testing.T, mod *Module, sub string) *Proc {
	t.Helper()
	for _, p := range mod.procs {
		if strings.Contains(p.Name, sub) {
			return p
		}
	}
	t.Fatalf("proc for %q not found", sub)
	return nil
}

// TestFusedArgSlotCapture pins the effect-analysis capture rule for
// instructions that read their operand registers at execution time:
// a depth-0 local operand is snapshotted to a temporary exactly when a
// later operand may write its slot — which requires both a call in the
// later operand and a closure in the proc (a closure-free frame is
// unreachable from callees). The old syntactic rule copied whenever any
// later operand emitted code; the in-place cases below would have
// copied under it.
func TestFusedArgSlotCapture(t *testing.T) {
	aputIndexReg := func(p *Proc) int32 {
		t.Helper()
		for _, i := range p.Code {
			if i.Op == OpAPut {
				return i.C
			}
		}
		t.Fatalf("no OpAPut compiled:\n%s", p.Disasm())
		return -1
	}

	// Closure-free proc: the send cannot reach main's frame, so the
	// index slot is read in place — no snapshot move.
	inPlace := `
class C { }
method clobber(c@C) { 1; }
method main() {
  var xs := newarray(3);
  var i := 0;
  aput(xs, i, clobber(new C()));
  aget(xs, i);
}
`
	mod := compileModule(t, inPlace, opt.CHA)
	p := findProc(t, mod, "main")
	if r := aputIndexReg(p); r >= int32(p.NumSlots) {
		t.Errorf("closure-free proc: aput index register r%d is a temp; want the raw frame slot:\n%s", r, p.Disasm())
	}

	// Proc that creates a closure: a closure call in a later operand can
	// write the index slot, so its value must be snapshotted to a temp
	// before the call runs.
	capture := `
method main() {
  var xs := newarray(3);
  var i := 0;
  var f := fn() { i := 2; 0; };
  aput(xs, i, f());
  aget(xs, i);
}
`
	mod = compileModule(t, capture, opt.CHA)
	p = findProc(t, mod, "main")
	if r := aputIndexReg(p); r < int32(p.NumSlots) {
		t.Errorf("closure-capturing proc: aput index register r%d is a raw frame slot; want a temp snapshot:\n%s", r, p.Disasm())
	}
}
