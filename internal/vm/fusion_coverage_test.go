package vm_test

import (
	"testing"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
	"selspec/internal/programs"
	"selspec/internal/vm"
)

// fusedOps is the superinstruction set: every opcode that replaces a
// multi-instruction generic sequence.
var fusedOps = map[vm.Op]bool{
	vm.OpCmpBr: true, vm.OpCmpBrK: true, vm.OpCmpBrField: true,
	vm.OpBinK: true, vm.OpFieldBin: true, vm.OpFieldBinK: true,
	vm.OpBinField: true, vm.OpAGet: true, vm.OpAPut: true,
}

// fusionFloor holds the superinstruction and snapshot-move counts the
// syntactic effectFree-era compiler produced on the paper benchmarks
// (measured immediately before the effect-analysis rewire). The rewire
// must never fuse less, and — since the analysis is strictly sharper
// than the syntactic rule — must not need more snapshot copies either.
var fusionFloor = map[string]map[opt.Config]struct{ fused, moves int }{
	"Richards":    {opt.Base: {91, 183}, opt.CHA: {167, 242}},
	"InstSched":   {opt.Base: {88, 75}, opt.CHA: {112, 80}},
	"Typechecker": {opt.Base: {49, 80}, opt.CHA: {82, 92}},
	"Compiler":    {opt.Base: {48, 121}, opt.CHA: {93, 126}},
}

// TestFusionCoverageNonDecreasing compiles the four paper benchmarks
// and checks the effect-analysis-driven compiler fuses at least as many
// superinstructions as the old syntactic predicate did, without
// emitting more slot-snapshot moves.
func TestFusionCoverageNonDecreasing(t *testing.T) {
	for _, b := range programs.All() {
		floors, ok := fusionFloor[b.Name]
		if !ok {
			t.Fatalf("no fusion floor recorded for benchmark %s", b.Name)
		}
		for cfg, floor := range floors {
			p, err := driver.LoadNamed(b.Name, b.Source)
			if err != nil {
				t.Fatal(err)
			}
			c, err := pipeline.Compile(b.Name, p.Prog, opt.Options{Config: cfg})
			if err != nil {
				t.Fatal(err)
			}
			m, err := vm.New(interp.New(c))
			if err != nil {
				t.Fatal(err)
			}
			fused, moves := 0, 0
			for _, pi := range m.Module().Procs() {
				for _, ins := range pi.Proc.Code {
					if fusedOps[ins.Op] {
						fused++
					}
					if ins.Op == vm.OpMove {
						moves++
					}
				}
			}
			if fused < floor.fused {
				t.Errorf("%s/%s: fused superinstructions regressed: %d < floor %d",
					b.Name, cfg, fused, floor.fused)
			}
			if moves > floor.moves {
				t.Errorf("%s/%s: snapshot/result moves regressed: %d > ceiling %d",
					b.Name, cfg, moves, floor.moves)
			}
		}
	}
}
