package vm

// Read-only module accessors for the bytecode analysis layer
// (internal/vmcheck): the verifier and the post-compile diagnostics
// walk every compiled proc with its provenance (method version, closure
// owner, initializer) without reaching into the module's private maps.

import (
	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/opt"
)

// Module returns the machine's compiled module.
func (m *Machine) Module() *Module { return m.mod }

// NumCheckMsgs is the number of truthy-check message kinds (the C
// operand space of OpBranchFalse/OpCheckBool).
func NumCheckMsgs() int { return len(checkMsgs) }

// Compiled returns the opt.Compiled the module was built from — the
// verifier derives its global/call-site index bounds from it.
func (mod *Module) Compiled() *opt.Compiled { return mod.c }

// ProcInfo pairs one compiled proc with its provenance. Exactly one of
// the provenance shapes holds: a method version (Version non-nil), a
// closure body (Closure non-nil, Owner its lexically enclosing method —
// possibly nil for closures created in global initializers), or an
// initializer thunk (both nil).
type ProcInfo struct {
	Proc    *Proc
	Version *ir.Version     // method-version procs
	Closure *ir.ClosureCode // closure-body procs
	Owner   *hier.Method    // closure procs: lexically enclosing method
}

// Procs returns every proc compiled so far, in a deterministic order
// independent of map iteration: global initializers, field initializers
// (class declaration order), method versions (method then version
// order), and each proc's closures in creation order (recursively).
// Lazy configurations compile versions mid-run, so the snapshot grows
// between calls; callers verifying a finished run see every proc that
// ever executed.
func (mod *Module) Procs() []ProcInfo {
	var out []ProcInfo
	seen := map[*Proc]bool{}
	var closuresOf func(p *Proc, owner *hier.Method)
	closuresOf = func(p *Proc, owner *hier.Method) {
		for _, code := range p.Closures {
			cp, ok := mod.closures[code]
			if !ok || seen[cp] {
				continue
			}
			seen[cp] = true
			o := owner
			if code.Owner != nil {
				o = code.Owner
			}
			out = append(out, ProcInfo{Proc: cp, Closure: code, Owner: o})
			closuresOf(cp, o)
		}
	}
	add := func(pi ProcInfo) {
		if pi.Proc == nil || seen[pi.Proc] {
			return
		}
		seen[pi.Proc] = true
		out = append(out, pi)
		closuresOf(pi.Proc, pi.Owner)
	}
	for _, p := range mod.globalInits {
		add(ProcInfo{Proc: p})
	}
	for _, cls := range mod.c.Prog.H.Classes() {
		for _, p := range mod.fieldInits[cls] {
			add(ProcInfo{Proc: p})
		}
	}
	for _, m := range mod.c.Prog.H.Methods() {
		if _, ok := mod.c.Prog.Bodies[m]; !ok {
			continue
		}
		for _, v := range mod.c.VersionsOf(m) {
			if p, ok := mod.procs[v]; ok {
				add(ProcInfo{Proc: p, Version: v, Owner: m})
			}
		}
	}
	return out
}
