package vm

import (
	"fmt"

	"selspec/internal/hier"
	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/opt"
)

// CompileError reports an IR construct the bytecode compiler does not
// handle. The driver treats it as "fall back to the tree tier"; it can
// only arise for IR node types added after this compiler was written.
type CompileError struct {
	Node ir.Node
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("vm: unsupported IR node %T", e.Node)
}

// Module is the compiled form of one opt.Compiled: procs for every
// method version, closure body and initializer thunk. Version procs are
// compiled eagerly for bodies that exist at construction time and
// lazily for versions the lazy configurations create mid-run; the
// module is single-goroutine state, like the Interp it executes under.
type Module struct {
	c           *opt.Compiled
	procs       map[*ir.Version]*Proc
	closures    map[*ir.ClosureCode]*Proc
	globalInits []*Proc
	fieldInits  map[*hier.Class][]*Proc
}

func newModule(c *opt.Compiled) (*Module, error) {
	mod := &Module{
		c:          c,
		procs:      map[*ir.Version]*Proc{},
		closures:   map[*ir.ClosureCode]*Proc{},
		fieldInits: map[*hier.Class][]*Proc{},
	}
	for i, init := range c.GlobalInits {
		p, err := mod.compile(fmt.Sprintf("<global#%d>", i), KindInit, init, 0)
		if err != nil {
			return nil, err
		}
		mod.globalInits = append(mod.globalInits, p)
	}
	for cls, inits := range c.FieldInits {
		ps := make([]*Proc, len(inits))
		for i, init := range inits {
			if init == nil {
				continue
			}
			p, err := mod.compile(fmt.Sprintf("<%s.%s>", cls.Name, cls.Fields[i].Name), KindInit, init, 0)
			if err != nil {
				return nil, err
			}
			ps[i] = p
		}
		mod.fieldInits[cls] = ps
	}
	// Every version whose body exists now (eager configurations compile
	// all bodies up front) is compiled here, so an unsupported construct
	// is detected before the run starts and the driver can fall back to
	// the tree tier with no side effects. Lazy configurations hand out
	// nil bodies until first invocation; those compile in Machine.proc.
	for m := range c.Prog.Bodies {
		for _, v := range c.VersionsOf(m) {
			if v.Body != nil {
				if _, err := mod.version(v); err != nil {
					return nil, err
				}
			}
		}
	}
	return mod, nil
}

// version compiles (and caches) the proc for one method version whose
// body is already available.
func (mod *Module) version(v *ir.Version) (*Proc, error) {
	if p, ok := mod.procs[v]; ok {
		return p, nil
	}
	p, err := mod.compile(v.String(), KindMethod, v.Body, v.NumSlots)
	if err != nil {
		return nil, err
	}
	mod.procs[v] = p
	return p, nil
}

// closure compiles (and caches) a closure body. Closure procs are
// compiled when the containing proc compiles its MakeClosure, so by the
// time a closure value exists its proc is in the cache.
func (mod *Module) closure(code *ir.ClosureCode) (*Proc, error) {
	if p, ok := mod.closures[code]; ok {
		return p, nil
	}
	p, err := mod.compile("<closure>", KindClosure, code.Body, code.NumSlots)
	if err != nil {
		return nil, err
	}
	mod.closures[code] = p
	return p, nil
}

func (mod *Module) compile(name string, kind ProcKind, body ir.Node, numSlots int) (*Proc, error) {
	c := &compiler{
		mod: mod,
		p: &Proc{
			Name:     name,
			Kind:     kind,
			NumSlots: numSlots,
		},
		eff:  analyzeEffects(body),
		next: int32(numSlots),
		max:  int32(numSlots),
	}
	dest := c.temp()
	c.into(body, dest)
	c.emit(OpRet, dest, 0, 0, 0)
	if c.err != nil {
		return nil, c.err
	}
	c.p.NumRegs = int(c.max)
	return c.p, nil
}

// compiler builds one Proc. Temporary registers are allocated with a
// stack discipline: save/restore brackets around subexpressions reuse
// registers, and max tracks the high-water mark that sizes the window.
type compiler struct {
	mod  *Module
	p    *Proc
	eff  *effects
	next int32 // next free temp register
	max  int32
	err  error

	constIdx map[constKey]int32
	nameIdx  map[string]int32
}

type constKey struct {
	k interp.Kind
	i int64
	s string
}

func (c *compiler) temp() int32 {
	r := c.next
	c.next++
	if c.next > c.max {
		c.max = c.next
	}
	return r
}

// window allocates n consecutive registers (a call-argument window).
func (c *compiler) window(n int) int32 {
	r := c.next
	c.next += int32(n)
	if c.next > c.max {
		c.max = c.next
	}
	return r
}

func (c *compiler) save() int32        { return c.next }
func (c *compiler) restore(mark int32) { c.next = mark }

func (c *compiler) emit(op Op, a, b, cc, d int32) int32 {
	c.p.Code = append(c.p.Code, Instr{Op: op, A: a, B: b, C: cc, D: d})
	return int32(len(c.p.Code) - 1)
}

// patch points a forward branch emitted at pc to the next instruction.
// OpJump targets live in A; OpBranchFalse targets in B; OpCmpBr in C.
func (c *compiler) patch(pc int32) {
	t := int32(len(c.p.Code))
	switch c.p.Code[pc].Op {
	case OpJump:
		c.p.Code[pc].A = t
	case OpBranchFalse:
		c.p.Code[pc].B = t
	case OpCmpBr, OpCmpBrK, OpCmpBrField:
		c.p.Code[pc].C = t
	default:
		panic("vm: patch on non-branch")
	}
}

func (c *compiler) konst(v interp.Value) int32 {
	if c.constIdx == nil {
		c.constIdx = map[constKey]int32{}
	}
	k := constKey{k: v.K, i: v.I, s: v.S}
	if idx, ok := c.constIdx[k]; ok {
		return idx
	}
	idx := int32(len(c.p.Consts))
	c.p.Consts = append(c.p.Consts, v)
	c.constIdx[k] = idx
	return idx
}

func (c *compiler) name(s string) int32 {
	if c.nameIdx == nil {
		c.nameIdx = map[string]int32{}
	}
	if idx, ok := c.nameIdx[s]; ok {
		return idx
	}
	idx := int32(len(c.p.Names))
	c.p.Names = append(c.p.Names, s)
	c.nameIdx[s] = idx
	return idx
}

func constValue(n *ir.Const) interp.Value {
	switch n.Kind {
	case ir.KInt:
		return interp.IntV(n.Int)
	case ir.KStr:
		return interp.StrV(n.Str)
	case ir.KBool:
		return interp.BoolV(n.Bool)
	default:
		return interp.NilV
	}
}

// operand compiles n and returns a register holding its value. Depth-0
// locals are returned as their slot register with no code; everything
// else evaluates into a fresh temporary from the current scope.
func (c *compiler) operand(n ir.Node) int32 {
	if l, ok := n.(*ir.Local); ok && l.Depth == 0 {
		return int32(l.Slot)
	}
	t := c.temp()
	c.into(n, t)
	return t
}

// discard evaluates n for effect only. Statement shapes get dedicated
// effect-only forms so no dead result moves or nil loads reach the hot
// loop bodies; none of the elided instructions (OpMove, OpConst) carry
// counter or cycle effects, so the accounting is unchanged.
func (c *compiler) discard(n ir.Node) {
	switch n := n.(type) {
	case *ir.SetLocal:
		if n.Depth == 0 {
			// The slot is the destination: expr writes it as its final
			// action, no result copy.
			c.into(n.X, int32(n.Slot))
			return
		}

	case *ir.Seq:
		for _, child := range n.Nodes {
			c.discard(child)
		}
		return

	case *ir.If:
		br := c.cond(n.Cond, msgIf)
		c.discard(n.Then)
		if n.Else != nil {
			end := c.emit(OpJump, 0, 0, 0, 0)
			c.patch(br)
			c.discard(n.Else)
			c.patch(end)
		} else {
			c.patch(br)
		}
		return

	case *ir.While:
		loop := int32(len(c.p.Code))
		c.emit(OpStep, 0, 0, 0, 0)
		br := c.cond(n.Cond, msgWhile)
		c.discard(n.Body)
		c.emit(OpJump, loop, 0, 0, 0)
		c.patch(br)
		return

	case *ir.Const:
		return // pure, uncounted: no code

	case *ir.Local:
		if n.Depth == 0 {
			return // pure, uncounted: no code
		}
	}
	mark := c.save()
	t := c.temp()
	c.into(n, t)
	c.restore(mark)
}

// argWindow compiles a call's arguments into a fresh contiguous
// register window and returns its base. The caller restores the scope.
func (c *compiler) argWindow(args []ir.Node) int32 {
	base := c.window(len(args))
	for i, a := range args {
		mark := c.save()
		c.into(a, base+int32(i))
		c.restore(mark)
	}
	return base
}

// captured compiles operand a for an instruction that reads its operand
// registers at execution time — after the nodes in `later` have
// evaluated. A depth-0 local is used in place (its slot register, no
// code) unless the effect analysis says some later node may write that
// slot, in which case the slot's current value is snapshotted into a
// temporary first. Later code cannot touch the temporary (stack
// discipline: subsequent evaluation writes only fresh, higher temps,
// argument windows, and slots), so this preserves the tree tier's
// left-to-right value capture exactly — with a copy only where the
// analysis proves one is needed.
func (c *compiler) captured(a ir.Node, later ...ir.Node) int32 {
	if l, ok := a.(*ir.Local); ok && l.Depth == 0 {
		for _, n := range later {
			if c.eff.mayWriteSlot(n, l.Slot) {
				t := c.temp()
				c.emit(OpMove, t, int32(l.Slot), 0, 0)
				return t
			}
		}
		return int32(l.Slot)
	}
	return c.operand(a)
}

// fieldOp pools the slot/name/operator triple of one fused field/binop
// superinstruction and returns its FieldOps index.
func (c *compiler) fieldOp(gf *ir.GetField, op ir.BinOp) int32 {
	idx := int32(len(c.p.FieldOps))
	c.p.FieldOps = append(c.p.FieldOps, FieldOpRef{Slot: int32(gf.Slot), Name: c.name(gf.Name), Op: op})
	return idx
}

func isCompare(op ir.BinOp) bool {
	switch op {
	case ir.OpLT, ir.OpLE, ir.OpGT, ir.OpGE, ir.OpEQ, ir.OpNE:
		return true
	}
	return false
}

// cond compiles a conditional test, jumping to a (to-be-patched) target
// when the condition is false, and returns the branch pc. Comparison
// Bin conditions fuse into OpCmpBr; everything else evaluates the
// condition value and branches with OpBranchFalse (message kind msg).
// Counter effects are identical either way — and identical to the tree
// tier's evaluate-check-charge-branch sequence.
func (c *compiler) cond(n ir.Node, msg int32) int32 {
	if b, ok := n.(*ir.Bin); ok && isCompare(b.Op) {
		mark := c.save()
		l := c.captured(b.L, b.R)
		if gf, ok := b.R.(*ir.GetField); ok && gf.Slot >= 0 {
			obj := c.operand(gf.Obj)
			pc := c.emit(OpCmpBrField, l, obj, 0, c.fieldOp(gf, b.Op))
			c.restore(mark)
			return pc
		}
		if k, ok := b.R.(*ir.Const); ok {
			pc := c.emit(OpCmpBrK, l, c.konst(constValue(k)), 0, int32(b.Op))
			c.restore(mark)
			return pc
		}
		r := c.operand(b.R)
		pc := c.emit(OpCmpBr, l, r, 0, int32(b.Op))
		c.restore(mark)
		return pc
	}
	mark := c.save()
	t := c.operand(n)
	pc := c.emit(OpBranchFalse, t, 0, msg, 0)
	c.restore(mark)
	return pc
}

// into compiles n so that its value lands in dest. Discipline: dest is
// written only as the final action of n's evaluation (single write per
// executed path), so `slot := expr` can compile expr directly into the
// slot register while expr still reads the slot's old value.
func (c *compiler) into(n ir.Node, dest int32) {
	if c.err != nil {
		return
	}
	switch n := n.(type) {
	case *ir.Const:
		c.emit(OpConst, dest, c.konst(constValue(n)), 0, 0)

	case *ir.Local:
		if n.Depth == 0 {
			if int32(n.Slot) != dest {
				c.emit(OpMove, dest, int32(n.Slot), 0, 0)
			}
			return
		}
		c.emit(OpGetUp, dest, int32(n.Depth), int32(n.Slot), 0)

	case *ir.SetLocal:
		if n.Depth == 0 {
			c.into(n.X, int32(n.Slot))
			if int32(n.Slot) != dest {
				c.emit(OpMove, dest, int32(n.Slot), 0, 0)
			}
			return
		}
		c.into(n.X, dest)
		c.emit(OpSetUp, dest, int32(n.Depth), int32(n.Slot), 0)

	case *ir.Global:
		c.emit(OpGetGlobal, dest, int32(n.Slot), c.name(n.Name), 0)

	case *ir.SetGlobal:
		c.into(n.X, dest)
		c.emit(OpSetGlobal, dest, int32(n.Slot), 0, 0)

	case *ir.GetField:
		mark := c.save()
		obj := c.operand(n.Obj)
		if n.Slot >= 0 {
			c.emit(OpGetField, dest, obj, int32(n.Slot), c.name(n.Name))
		} else {
			c.emit(OpGetFieldDyn, dest, obj, 0, c.name(n.Name))
		}
		c.restore(mark)

	case *ir.SetField:
		mark := c.save()
		// The store reads the object register after the value evaluates;
		// snapshot a slot-resident object the value expression may clobber.
		obj := c.captured(n.Obj, n.X)
		c.into(n.X, dest)
		if n.Slot >= 0 {
			c.emit(OpSetField, obj, dest, int32(n.Slot), c.name(n.Name))
		} else {
			c.emit(OpSetFieldDyn, obj, dest, 0, c.name(n.Name))
		}
		c.restore(mark)

	case *ir.Seq:
		if len(n.Nodes) == 0 {
			c.emit(OpConst, dest, c.konst(interp.NilV), 0, 0)
			return
		}
		for _, child := range n.Nodes[:len(n.Nodes)-1] {
			c.discard(child)
		}
		c.into(n.Nodes[len(n.Nodes)-1], dest)

	case *ir.If:
		br := c.cond(n.Cond, msgIf)
		c.into(n.Then, dest)
		end := c.emit(OpJump, 0, 0, 0, 0)
		c.patch(br)
		if n.Else != nil {
			c.into(n.Else, dest)
		} else {
			c.emit(OpConst, dest, c.konst(interp.NilV), 0, 0)
		}
		c.patch(end)

	case *ir.While:
		loop := int32(len(c.p.Code))
		c.emit(OpStep, 0, 0, 0, 0)
		br := c.cond(n.Cond, msgWhile)
		c.discard(n.Body)
		c.emit(OpJump, loop, 0, 0, 0)
		c.patch(br)
		c.emit(OpConst, dest, c.konst(interp.NilV), 0, 0)

	case *ir.Return:
		if n.X != nil {
			c.into(n.X, dest)
		} else {
			c.emit(OpConst, dest, c.konst(interp.NilV), 0, 0)
		}
		if c.p.Kind == KindMethod {
			// A return lexically inside the method body targets the
			// method's own (live) activation: a direct return.
			c.emit(OpRet, dest, 0, 0, 0)
		} else {
			c.emit(OpRetNL, dest, 0, 0, 0)
		}

	case *ir.New:
		mark := c.save()
		cls := int32(len(c.p.News))
		c.p.News = append(c.p.News, NewRef{Class: n.Class, inits: c.mod.fieldInits[n.Class]})
		// The tree tier charges construction before evaluating field
		// arguments; keep that order so a guard trip lands identically.
		// B records the News index the charge belongs to (ignored by the
		// machine) so the verifier can pair each OpNew with the OpCharge
		// that accounts for it.
		c.emit(OpCharge, int32(interp.CostNewBase+len(n.Class.Fields)), cls, 0, 0)
		base := c.argWindow(n.Args)
		c.emit(OpNew, dest, cls, base, int32(len(n.Args)))
		c.restore(mark)

	case *ir.MakeClosure:
		if _, err := c.mod.closure(n.Fn); err != nil {
			c.err = err
			return
		}
		idx := int32(len(c.p.Closures))
		c.p.Closures = append(c.p.Closures, n.Fn)
		c.emit(OpMakeClosure, dest, idx, 0, 0)
		c.p.NeedsFrame = true

	case *ir.CallClosure:
		mark := c.save()
		// The call reads the closure register after the arguments
		// evaluate; snapshot a slot-resident closure they may overwrite.
		fn := c.captured(n.Fn, n.Args...)
		pos := int32(len(c.p.Poss))
		c.p.Poss = append(c.p.Poss, n.Pos)
		c.emit(OpCheckClosure, fn, int32(len(n.Args)), pos, 0)
		base := c.argWindow(n.Args)
		c.emit(OpCallClosure, dest, fn, base, pos)
		c.restore(mark)

	case *ir.Send:
		mark := c.save()
		base := c.argWindow(n.Args)
		site := int32(len(c.p.Sites))
		c.p.Sites = append(c.p.Sites, n.Site)
		c.emit(OpSend, dest, site, base, int32(len(n.Args)))
		c.restore(mark)

	case *ir.StaticCall:
		mark := c.save()
		base := c.argWindow(n.Args)
		idx := int32(len(c.p.Statics))
		c.p.Statics = append(c.p.Statics, StaticRef{Site: n.Site, Target: n.Target})
		c.emit(OpStaticCall, dest, idx, base, int32(len(n.Args)))
		c.restore(mark)

	case *ir.VersionSelect:
		mark := c.save()
		base := c.argWindow(n.Args)
		idx := int32(len(c.p.VSels))
		c.p.VSels = append(c.p.VSels, VSelRef{Site: n.Site, Method: n.Method})
		c.emit(OpVSelect, dest, idx, base, int32(len(n.Args)))
		c.restore(mark)

	case *ir.Bin:
		mark := c.save()
		// `obj.field <op> x` fuses the field read into the primitive when
		// the right operand is a constant or a depth-0 local, so the
		// observable order — object eval, field charge, bin charge — is
		// the unfused sequence exactly. An in-place slot as the right
		// operand is always safe here: both tiers read the slot after the
		// object expression has evaluated. The mirrored `x <op> obj.field`
		// shape fuses unconditionally: the left operand compiles first,
		// which is already the tree tier's evaluation order.
		if gf, ok := n.L.(*ir.GetField); ok && gf.Slot >= 0 {
			if k, isK := n.R.(*ir.Const); isK {
				obj := c.operand(gf.Obj)
				c.emit(OpFieldBinK, dest, obj, c.konst(constValue(k)), c.fieldOp(gf, n.Op))
				c.restore(mark)
				return
			}
			if l, isL := n.R.(*ir.Local); isL && l.Depth == 0 {
				obj := c.operand(gf.Obj)
				c.emit(OpFieldBin, dest, obj, int32(l.Slot), c.fieldOp(gf, n.Op))
				c.restore(mark)
				return
			}
		}
		l := c.captured(n.L, n.R)
		if k, ok := n.R.(*ir.Const); ok {
			c.emit(OpBinK, dest, l, c.konst(constValue(k)), int32(n.Op))
		} else if gf, ok := n.R.(*ir.GetField); ok && gf.Slot >= 0 {
			obj := c.operand(gf.Obj)
			c.emit(OpBinField, dest, obj, l, c.fieldOp(gf, n.Op))
		} else {
			r := c.operand(n.R)
			c.emit(OpBin, dest, l, r, int32(n.Op))
		}
		c.restore(mark)

	case *ir.Un:
		mark := c.save()
		x := c.operand(n.X)
		if n.Op == ir.OpNot {
			c.emit(OpNot, dest, x, 0, 0)
		} else {
			c.emit(OpNeg, dest, x, 0, 0)
		}
		c.restore(mark)

	case *ir.PrimCall:
		mark := c.save()
		switch {
		case n.Prim == ir.PrimAGet && len(n.Args) == 2:
			a := c.captured(n.Args[0], n.Args[1])
			ix := c.captured(n.Args[1])
			c.emit(OpAGet, dest, a, ix, 0)
		case n.Prim == ir.PrimAPut && len(n.Args) == 3:
			a := c.captured(n.Args[0], n.Args[1], n.Args[2])
			ix := c.captured(n.Args[1], n.Args[2])
			v := c.captured(n.Args[2])
			c.emit(OpAPut, dest, a, ix, v)
		default:
			base := c.argWindow(n.Args)
			c.emit(OpPrim, dest, int32(n.Prim), base, int32(len(n.Args)))
		}
		c.restore(mark)

	case *ir.And:
		// Evaluate the left operand into a temp (never dest: the right
		// operand may still read dest's register, e.g. `b := b && e`).
		mark := c.save()
		l := c.operand(n.L)
		br := c.emit(OpBranchFalse, l, 0, msgAnd, 0)
		c.restore(mark)
		c.into(n.R, dest)
		c.emit(OpCheckBool, dest, 0, msgAnd, 0)
		end := c.emit(OpJump, 0, 0, 0, 0)
		c.patch(br)
		c.emit(OpConst, dest, c.konst(interp.FalseV), 0, 0)
		c.patch(end)

	case *ir.Or:
		mark := c.save()
		l := c.operand(n.L)
		br := c.emit(OpBranchFalse, l, 0, msgOr, 0)
		c.restore(mark)
		// Left was true: result is TrueV.
		c.emit(OpConst, dest, c.konst(interp.TrueV), 0, 0)
		end := c.emit(OpJump, 0, 0, 0, 0)
		c.patch(br)
		c.into(n.R, dest)
		c.emit(OpCheckBool, dest, 0, msgOr, 0)
		c.patch(end)

	default:
		c.err = &CompileError{Node: n}
	}
}
