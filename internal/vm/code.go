// Package vm is the bytecode execution tier: a compiler from the
// optimized/specialized tree IR (internal/ir, post internal/opt) to a
// compact register bytecode, plus a dispatch-loop machine that executes
// it. It is the Futamura-style move of partially evaluating the tree
// interpreter over the program once — IR structure, operand positions,
// constant operands, and comparison-then-branch shapes are resolved at
// compile time — so the hot path executes a flat instruction array
// instead of re-walking an interface-typed tree every step.
//
// The VM is an execution substrate only. Everything observable —
// dynamic dispatch, version selection, inline caches, profiling,
// counters, the cycle cost model, resource guards — runs through the
// *interp.Interp the machine wraps, via the exported seams in
// internal/interp/engine.go. That makes the tree interpreter a true
// differential-testing oracle: for every program and configuration both
// tiers must produce byte-identical output, the same final value, the
// same error, and identical counter totals, and the tests enforce it.
package vm

import (
	"fmt"
	"strings"

	"selspec/internal/hier"
	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/lang"
)

// Op is a bytecode opcode.
type Op uint8

// The instruction set. Operand registers index the executing proc's
// register window: frame slots (params + locals) occupy registers
// [0, NumSlots), compiler temporaries sit above. Superinstructions
// (OpCmpBr, OpBinK, and the call megaops) fuse the dominant tree
// shapes; each one's counter/cycle effects are documented to be
// identical to the unfused tree evaluation.
const (
	// OpConst: regs[A] = Consts[B].
	OpConst Op = iota
	// OpMove: regs[A] = regs[B].
	OpMove
	// OpJump: pc = A.
	OpJump
	// OpBranchFalse: truthy-check regs[A] (failing with the message
	// selected by C — if/while/&&/||), charge CostBin, jump to B when
	// false. This is the shared cond shape of If, While, And and Or.
	OpBranchFalse
	// OpCheckBool: truthy-check regs[A] with message C; no charge, no
	// branch (the right operand of && / || is checked but not charged).
	OpCheckBool
	// OpCmpBr is the fused comparison-branch superinstruction for
	// If/While conditions that are integer/string comparisons: counts
	// one PrimOp, charges CostBin for the comparison and CostBin for
	// the branch (exactly the unfused Bin + If accounting), and jumps
	// to C when regs[A] <op D> regs[B] is false.
	OpCmpBr
	// OpCmpBrK is OpCmpBr with a constant right operand taken from
	// Consts[B] — the `x <op> literal` condition shape — eliminating the
	// per-evaluation constant load. Accounting is identical to OpCmpBr.
	OpCmpBrK
	// OpStep charges one interpreter step (loop heads).
	OpStep
	// OpCharge adds A to the cycle counter (hoisted constant costs,
	// e.g. New's base+fields charge which precedes argument evaluation).
	// B is ignored by the machine; for a New charge it records the News
	// index so the verifier can pair each OpNew with its charge.
	OpCharge
	// OpGetUp: regs[A] = slot C of the frame B static-chain hops out
	// (B >= 1; depth-0 locals are registers and compile to no code).
	OpGetUp
	// OpSetUp: slot C of the frame B hops out = regs[A].
	OpSetUp
	// OpGetGlobal: regs[A] = global B, failing (with name Names[C]) if
	// its initializer has not run.
	OpGetGlobal
	// OpSetGlobal: global B = regs[A], marking it initialized.
	OpSetGlobal
	// OpGetField: regs[A] = field C of object regs[B] (statically
	// resolved index; charges CostFieldCached). Names[D] names the
	// field in non-object errors.
	OpGetField
	// OpGetFieldDyn: like OpGetField but the index is resolved from
	// Names[D] at run time (charges CostFieldLookup).
	OpGetFieldDyn
	// OpSetField: field C of object regs[A] = regs[B] (declared-type
	// checked); the value stays in regs[B] as the expression result.
	OpSetField
	// OpSetFieldDyn: OpSetField with run-time index resolution.
	OpSetFieldDyn
	// OpNew: regs[A] = new Classes[B] with the C..C+D-1 register window
	// as leading field values; remaining fields run their compiled
	// initializer thunks; every field is declared-type checked. The
	// CostNewBase+fields charge is a separate OpCharge emitted before
	// argument evaluation, as the tree tier charges it.
	OpNew
	// OpMakeClosure: regs[A] = closure over Closures[B] capturing the
	// current frame and activation; charges CostClosureMake.
	OpMakeClosure
	// OpCheckClosure: fail (at Poss[C]) unless regs[A] is a closure of
	// arity B. Emitted before argument evaluation, matching the tree
	// tier's check-then-evaluate order.
	OpCheckClosure
	// OpCallClosure: regs[A] = call closure regs[B] with the argument
	// window at C (arity from the closure; OpCheckClosure already
	// validated it); call position Poss[D]. Counts/charges/steps via
	// the shared NoteClosureCall seam, then enters one depth level.
	OpCallClosure
	// OpSend is the dynamic-dispatch megaop: regs[A] = send through
	// call site Sites[B] with the argument window C..C+D-1. The site
	// index is the inline-cache slot: it addresses the per-site PIC
	// directly (no hashing, no tree walk), and dispatch + version
	// selection run through the shared DispatchSendClasses seam.
	OpSend
	// OpStaticCall: regs[A] = invoke Statics[B].Target with window
	// C..C+D-1 (statically bound after specialization).
	OpStaticCall
	// OpVSelect: regs[A] = invoke the run-time-selected version of
	// VSels[B].Method with window C..C+D-1.
	OpVSelect
	// OpPrim: regs[A] = primitive B applied to window C..C+D-1.
	OpPrim
	// OpBin: regs[A] = regs[B] <op D> regs[C], with inline int fast
	// paths and the shared EvalBin fallback.
	OpBin
	// OpBinK is the constant-right-operand superinstruction:
	// regs[A] = regs[B] <op D> Consts[C]. Same accounting as OpBin.
	OpBinK
	// OpNot: regs[A] = !regs[B] (boolean-checked).
	OpNot
	// OpNeg: regs[A] = -regs[B] (integer-checked).
	OpNeg
	// OpRet returns regs[A] from the current proc. Emitted for method
	// bodies' implicit result and for ir.Return nodes lexically inside
	// a method body, where the tree tier's returnSignal is caught by
	// the method's own activation — a plain return is equivalent.
	OpRet
	// OpRetNL is a (possibly non-local) return of regs[A] from a
	// closure or initializer body: it fails if the target activation
	// already exited, otherwise unwinds to it.
	OpRetNL
	// OpFieldBin fuses the `obj.field <op> x` shape — the dominant
	// predicate-method body (`i.src1 == r`, `a.dest == b.dest`) — into
	// one dispatch: regs[A] = (field of object regs[B]) <op> regs[C],
	// with slot, field name and operator in FieldOps[D]. Emitted only
	// when the right operand is effect-free (a depth-0 local), so the
	// observable order — object eval, CostFieldCached, PrimOp+CostBin —
	// is exactly the unfused OpGetField + OpBin sequence.
	OpFieldBin
	// OpFieldBinK is OpFieldBin with a constant right operand from
	// Consts[C]: the `obj.field <op> literal` shape (`i.dest >= 0`).
	OpFieldBinK
	// OpBinField is the mirrored fusion, field on the right:
	// regs[A] = regs[C] <op> (field of object regs[B]) with FieldOps[D].
	// The left operand is compiled first (any shape), then the field's
	// object — the tree tier's exact evaluation order for Bin.
	OpBinField
	// OpAGet is the window-free array read: regs[A] = regs[B][regs[C]],
	// with OpPrim's exact aget fast path and the shared CallPrim seam
	// (hence identical errors and charges) on any failure shape. Fusing
	// skips the argument-window moves and the prim dispatch entirely.
	OpAGet
	// OpAPut is the window-free array write:
	// regs[A] = (regs[B][regs[C]] = regs[D]).
	OpAPut
	// OpCmpBrField fuses the dominant loop-bound shape `x <op> obj.field`
	// (`while i < b.n`) into the compare-branch: read the field of object
	// regs[B] per FieldOps[D] (charging CostFieldCached), compare with
	// regs[A] (one PrimOp + CostBin), charge the branch's CostBin, and
	// jump to C when false — OpGetField + OpCmpBr accounting exactly.
	OpCmpBrField
)

var opNames = [...]string{
	"const", "move", "jump", "brfalse", "checkbool", "cmpbr", "cmpbrk", "step",
	"charge", "getup", "setup", "getglobal", "setglobal", "getfield",
	"getfielddyn", "setfield", "setfielddyn", "new", "makeclosure",
	"checkclosure", "callclosure", "send", "staticcall", "vselect",
	"prim", "bin", "bink", "not", "neg", "ret", "retnl",
	"fieldbin", "fieldbink", "binfield", "aget", "aput", "cmpbrfield",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one fixed-width bytecode instruction.
type Instr struct {
	Op         Op
	A, B, C, D int32
}

// Truthy-check message kinds (operand C of OpBranchFalse/OpCheckBool),
// matching the tree interpreter's error text per construct.
const (
	msgIf = iota
	msgWhile
	msgAnd
	msgOr
)

var checkMsgs = [...]string{
	"if condition is not a boolean: %s",
	"while condition is not a boolean: %s",
	"'&&' on non-boolean %s",
	"'||' on non-boolean %s",
}

// ProcKind distinguishes how returns behave in a compiled body.
type ProcKind uint8

// Proc kinds.
const (
	// KindMethod is a compiled method version: ir.Return compiles to a
	// direct OpRet (the activation being returned to is this one).
	KindMethod ProcKind = iota
	// KindClosure is a compiled closure body: ir.Return compiles to
	// OpRetNL targeting the lexically enclosing method activation.
	KindClosure
	// KindInit is a global or field initializer thunk: ir.Return has no
	// enclosing activation and always fails, as in the tree tier.
	KindInit
)

// StaticRef is the target of one OpStaticCall. proc caches the
// target's compiled proc after the first invocation (the binding is
// static, so the cache never invalidates).
type StaticRef struct {
	Site   *ir.CallSite
	Target *ir.Version
	proc   *Proc
}

// NewRef is the class operand of one OpNew, with the field-initializer
// thunk procs resolved at compile time (aligned with Class.Fields; nil
// entries for fields without initializers).
type NewRef struct {
	Class *hier.Class
	inits []*Proc
}

// FieldOpRef is the operand pool entry of one fused field/binop
// superinstruction (OpFieldBin, OpFieldBinK, OpBinField): the
// statically-resolved field slot, the field name (Names index, for the
// non-object error text) and the binary operator.
type FieldOpRef struct {
	Slot int32
	Name int32
	Op   ir.BinOp
}

// VSelRef is the method of one OpVSelect.
type VSelRef struct {
	Site   *ir.CallSite
	Method *hier.Method
}

// Proc is one compiled body: a register window layout plus flat code
// and its operand pools.
type Proc struct {
	Name     string
	Kind     ProcKind
	NumSlots int // frame slots: params + locals (registers [0, NumSlots))
	NumRegs  int // slots + compiler temporaries
	Code     []Instr

	Consts   []interp.Value
	Names    []string
	Sites    []*ir.CallSite
	Statics  []StaticRef
	VSels    []VSelRef
	FieldOps []FieldOpRef
	News     []NewRef
	Closures []*ir.ClosureCode
	Poss     []lang.Pos

	// NeedsFrame: the body creates closures, so its slots must live in
	// a heap frame (captured via the static chain) instead of a window
	// of the machine's contiguous register stack.
	NeedsFrame bool

	// noted: this version is already in the interpreter's invoked set,
	// so later entries skip the set lookup (see Interp.NoteInvokeKnown).
	noted bool
}

// Disasm renders the proc's code for debugging and the DESIGN.md
// instruction-set examples.
func (p *Proc) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proc %s (%s) slots=%d regs=%d frame=%v\n",
		p.Name, [...]string{"method", "closure", "init"}[p.Kind], p.NumSlots, p.NumRegs, p.NeedsFrame)
	for pc, i := range p.Code {
		fmt.Fprintf(&b, "  %4d  %-12s", pc, i.Op)
		switch i.Op {
		case OpConst:
			fmt.Fprintf(&b, "r%d <- %s", i.A, p.Consts[i.B])
		case OpMove:
			fmt.Fprintf(&b, "r%d <- r%d", i.A, i.B)
		case OpJump:
			fmt.Fprintf(&b, "-> %d", i.A)
		case OpBranchFalse:
			fmt.Fprintf(&b, "r%d -> %d (%s)", i.A, i.B, [...]string{"if", "while", "&&", "||"}[i.C])
		case OpCmpBr:
			fmt.Fprintf(&b, "r%d %s r%d else -> %d", i.A, ir.BinOp(i.D), i.B, i.C)
		case OpCmpBrK:
			fmt.Fprintf(&b, "r%d %s %s else -> %d", i.A, ir.BinOp(i.D), p.Consts[i.B], i.C)
		case OpBin:
			fmt.Fprintf(&b, "r%d <- r%d %s r%d", i.A, i.B, ir.BinOp(i.D), i.C)
		case OpBinK:
			fmt.Fprintf(&b, "r%d <- r%d %s %s", i.A, i.B, ir.BinOp(i.D), p.Consts[i.C])
		case OpFieldBin:
			f := p.FieldOps[i.D]
			fmt.Fprintf(&b, "r%d <- r%d.%s %s r%d", i.A, i.B, p.Names[f.Name], f.Op, i.C)
		case OpFieldBinK:
			f := p.FieldOps[i.D]
			fmt.Fprintf(&b, "r%d <- r%d.%s %s %s", i.A, i.B, p.Names[f.Name], f.Op, p.Consts[i.C])
		case OpBinField:
			f := p.FieldOps[i.D]
			fmt.Fprintf(&b, "r%d <- r%d %s r%d.%s", i.A, i.C, f.Op, i.B, p.Names[f.Name])
		case OpCmpBrField:
			f := p.FieldOps[i.D]
			fmt.Fprintf(&b, "r%d %s r%d.%s else -> %d", i.A, f.Op, i.B, p.Names[f.Name], i.C)
		case OpSend:
			fmt.Fprintf(&b, "r%d <- %s args r%d..%d", i.A, p.Sites[i.B].GF.Key(), i.C, i.C+i.D-1)
		case OpStaticCall:
			fmt.Fprintf(&b, "r%d <- %s args r%d..%d", i.A, p.Statics[i.B].Target, i.C, i.C+i.D-1)
		case OpVSelect:
			fmt.Fprintf(&b, "r%d <- select %s args r%d..%d", i.A, p.VSels[i.B].Method.Name(), i.C, i.C+i.D-1)
		case OpPrim, OpNew, OpCallClosure:
			fmt.Fprintf(&b, "r%d <- (%d) args/win r%d+%d", i.A, i.B, i.C, i.D)
		default:
			fmt.Fprintf(&b, "A=%d B=%d C=%d D=%d", i.A, i.B, i.C, i.D)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
