package vm_test

// The engine differential suite: the tree interpreter is the oracle,
// and the bytecode VM must be indistinguishable from it — identical
// final value, identical print output, identical counter totals
// (dispatches, PIC hits/misses, version selects, cycles, steps, ...)
// for every benchmark program under every configuration and dispatch
// mechanism, and identical errors on failing programs. Each engine run
// loads the program fresh so shared hierarchy lookup caches cannot leak
// state between the runs being compared.

import (
	"testing"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/obs"
	"selspec/internal/opt"
	"selspec/internal/programs"
)

func runEngine(t *testing.T, b programs.Benchmark, cfg opt.Config, eng driver.Engine, reg *obs.Registry) *driver.Result {
	t.Helper()
	p, err := driver.LoadNamed(b.Name, b.Source)
	if err != nil {
		t.Fatalf("load %s: %v", b.Name, err)
	}
	res, err := p.RunConfig(driver.ConfigOptions{
		Config: cfg,
		Train:  b.Train,
		Test:   b.Train, // training-size input keeps the full grid fast
		RunExtra: func(ro *driver.RunOptions) {
			ro.CaptureOutput = true
			ro.StepLimit = 500_000_000
			ro.Engine = eng
			ro.Metrics = reg
		},
	})
	if err != nil {
		t.Fatalf("%s under %v engine %v: %v", b.Name, cfg, eng, err)
	}
	if res.Engine != eng {
		t.Fatalf("%s under %v: requested engine %v but %v ran (unexpected fallback)", b.Name, cfg, eng, res.Engine)
	}
	return res
}

// TestEngineDiffAllProgramsAllConfigs is the acceptance grid: all
// benchmark programs × all configurations, tree vs vm.
func TestEngineDiffAllProgramsAllConfigs(t *testing.T) {
	for _, b := range programs.Registry() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, cfg := range opt.Configs() {
				tree := runEngine(t, b, cfg, driver.EngineTree, nil)
				vmres := runEngine(t, b, cfg, driver.EngineVM, nil)
				if vmres.Value != tree.Value {
					t.Errorf("%s/%v: value diverged: vm %q, tree %q", b.Name, cfg, vmres.Value, tree.Value)
				}
				if vmres.Output != tree.Output {
					t.Errorf("%s/%v: output diverged (vm %d bytes, tree %d bytes)",
						b.Name, cfg, len(vmres.Output), len(tree.Output))
				}
				if vmres.Counters != tree.Counters {
					t.Errorf("%s/%v: counters diverged:\n  vm:   %+v\n  tree: %+v", b.Name, cfg, vmres.Counters, tree.Counters)
				}
				if vmres.Steps != tree.Steps {
					t.Errorf("%s/%v: steps diverged: vm %d, tree %d", b.Name, cfg, vmres.Steps, tree.Steps)
				}
				if vmres.Invoked != tree.Invoked {
					t.Errorf("%s/%v: invoked versions diverged: vm %d, tree %d", b.Name, cfg, vmres.Invoked, tree.Invoked)
				}
			}
		})
	}
}

// TestEngineDiffMechanisms crosses the engines with every dispatch
// mechanism on one dispatch-heavy program: PIC hit/miss and table
// counter totals must match exactly.
func TestEngineDiffMechanisms(t *testing.T) {
	b, ok := programs.ByName("Richards")
	if !ok {
		t.Fatal("Richards missing from registry")
	}
	for mech := 0; mech < 3; mech++ {
		for _, cfg := range []opt.Config{opt.Base, opt.Selective} {
			mkRun := func(eng driver.Engine) *driver.Result {
				p, err := driver.LoadNamed(b.Name, b.Source)
				if err != nil {
					t.Fatal(err)
				}
				res, err := p.RunConfig(driver.ConfigOptions{
					Config: cfg,
					Train:  b.Train,
					Test:   b.Train,
					RunExtra: func(ro *driver.RunOptions) {
						ro.CaptureOutput = true
						ro.Mechanism = interp.Mechanism(mech)
						ro.Engine = eng
					},
				})
				if err != nil {
					t.Fatalf("mech %d cfg %v engine %v: %v", mech, cfg, eng, err)
				}
				return res
			}
			tree := mkRun(driver.EngineTree)
			vmres := mkRun(driver.EngineVM)
			if vmres.Counters != tree.Counters {
				t.Errorf("mech %d cfg %v: counters diverged:\n  vm:   %+v\n  tree: %+v", mech, cfg, vmres.Counters, tree.Counters)
			}
			if vmres.Output != tree.Output || vmres.Value != tree.Value {
				t.Errorf("mech %d cfg %v: result diverged", mech, cfg)
			}
		}
	}
}

// TestEngineDiffObsSnapshot runs the same program+config under each
// engine with its own fresh registry and demands the full metric
// snapshots — every counter series, including PIC and GF-cache
// behavior — be byte-comparable, the /metrics contract of the issue.
func TestEngineDiffObsSnapshot(t *testing.T) {
	b, ok := programs.ByName("Sets")
	if !ok {
		t.Fatal("Sets missing from registry")
	}
	snap := func(eng driver.Engine) map[string]uint64 {
		reg := obs.NewRegistry()
		runEngine(t, b, opt.Selective, eng, reg)
		return reg.Snapshot().Counters
	}
	treeSnap := snap(driver.EngineTree)
	vmSnap := snap(driver.EngineVM)
	if len(treeSnap) != len(vmSnap) {
		t.Fatalf("metric series count diverged: vm %d, tree %d", len(vmSnap), len(treeSnap))
	}
	for name, tv := range treeSnap {
		if vv, ok := vmSnap[name]; !ok || vv != tv {
			t.Errorf("series %s diverged: vm %d, tree %d", name, vmSnap[name], tv)
		}
	}
}
