package dispatch

import (
	"testing"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
)

// Micro-benchmarks for the three §3.5 lookup mechanisms, isolating the
// per-dispatch costs the interpreter's cycle model abstracts.

func benchHier(b *testing.B) (*hier.Hierarchy, *hier.GF, []*hier.Class) {
	b.Helper()
	h, err := hier.Build(lang.MustParse(hierSrc))
	if err != nil {
		b.Fatal(err)
	}
	g, _ := h.GF("mm", 2)
	var cs []*hier.Class
	for _, n := range []string{"A", "B", "C", "D"} {
		c, _ := h.Class(n)
		cs = append(cs, c)
	}
	return h, g, cs
}

func BenchmarkFullLookup(b *testing.B) {
	h, g, cs := benchHier(b)
	args := make([]*hier.Class, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		args[0] = cs[i%len(cs)]
		args[1] = cs[(i/2)%len(cs)]
		h.Lookup(g, args...)
	}
}

func BenchmarkPICHit(b *testing.B) {
	_, _, cs := benchHier(b)
	p := NewPIC(0)
	v := &ir.Version{}
	for _, c1 := range cs {
		for _, c2 := range cs {
			p.Add([]*hier.Class{c1, c2}, Target{Version: v})
		}
	}
	args := make([]*hier.Class, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		args[0] = cs[i%len(cs)]
		args[1] = cs[(i/2)%len(cs)]
		p.Lookup(args)
	}
}

// BenchmarkPICHitMonomorphic is the move-to-front fast path: the same
// tuple every time, always at the front.
func BenchmarkPICHitMonomorphic(b *testing.B) {
	_, _, cs := benchHier(b)
	p := NewPIC(0)
	v := &ir.Version{}
	for _, c1 := range cs {
		p.Add([]*hier.Class{c1, cs[0]}, Target{Version: v})
	}
	args := []*hier.Class{cs[0], cs[0]}
	p.Lookup(args) // promote to front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Lookup(args)
	}
}

func BenchmarkMMTableLookup(b *testing.B) {
	h, g, cs := benchHier(b)
	tab, err := NewMMTable(h, g)
	if err != nil {
		b.Fatal(err)
	}
	args := make([]*hier.Class, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		args[0] = cs[i%len(cs)]
		args[1] = cs[(i/2)%len(cs)]
		tab.Lookup(args)
	}
}

func BenchmarkMMTableBuild(b *testing.B) {
	h, g, _ := benchHier(b)
	for i := 0; i < b.N; i++ {
		if _, err := NewMMTable(h, g); err != nil {
			b.Fatal(err)
		}
	}
}
