// Package dispatch implements the run-time method lookup mechanisms
// discussed in §3.5 of the paper: polymorphic inline caches (Hölzle,
// Chambers & Ungar), dense single-dispatch tables, and compressed
// multi-method dispatch tables (in the style of Amiel et al. / Chen et
// al.), all extended to select among specialized method versions.
package dispatch

import (
	"selspec/internal/hier"
	"selspec/internal/ir"
)

// Target is the result of a dispatch: the most-specific method and the
// specialized version selected for the actual argument classes.
type Target struct {
	Method  *hier.Method
	Version *ir.Version
}

// DefaultPICSize is the default entry bound of a polymorphic inline
// cache; beyond it the site is treated as megamorphic and entries are
// no longer added.
const DefaultPICSize = 8

type picEntry struct {
	classes []*hier.Class
	target  Target
}

// PIC is a call-site-specific polymorphic inline cache: an association
// list mapping actual argument class tuples to dispatch targets. The
// key covers every argument position because specialized versions may
// constrain positions the generic function itself does not dispatch on.
type PIC struct {
	entries []picEntry
	max     int

	Hits   uint64
	Misses uint64
}

// NewPIC returns a PIC bounded to max entries (0 = DefaultPICSize).
func NewPIC(max int) *PIC {
	if max <= 0 {
		max = DefaultPICSize
	}
	return &PIC{max: max}
}

// Lookup searches the cache for the class tuple.
func (p *PIC) Lookup(classes []*hier.Class) (Target, bool) {
outer:
	for i := range p.entries {
		e := &p.entries[i]
		if len(e.classes) != len(classes) {
			continue
		}
		for j, c := range e.classes {
			if c != classes[j] {
				continue outer
			}
		}
		p.Hits++
		return e.target, true
	}
	p.Misses++
	return Target{}, false
}

// Add inserts an entry unless the cache is megamorphic (full).
func (p *PIC) Add(classes []*hier.Class, t Target) {
	if len(p.entries) >= p.max {
		return
	}
	cp := make([]*hier.Class, len(classes))
	copy(cp, classes)
	p.entries = append(p.entries, picEntry{classes: cp, target: t})
}

// Len returns the number of cached entries.
func (p *PIC) Len() int { return len(p.entries) }

// Megamorphic reports whether the cache has hit its entry bound.
func (p *PIC) Megamorphic() bool { return len(p.entries) >= p.max }

// Entries returns the cached targets (for profile-style inspection: the
// paper gathers its call graph from PIC counters, §3.7.2).
func (p *PIC) Entries() []Target {
	out := make([]Target, len(p.entries))
	for i, e := range p.entries {
		out[i] = e.target
	}
	return out
}
