// Package dispatch implements the run-time method lookup mechanisms
// discussed in §3.5 of the paper: polymorphic inline caches (Hölzle,
// Chambers & Ungar), dense single-dispatch tables, and compressed
// multi-method dispatch tables (in the style of Amiel et al. / Chen et
// al.), all extended to select among specialized method versions.
package dispatch

import (
	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/obs"
)

// Target is the result of a dispatch: the most-specific method and the
// specialized version selected for the actual argument classes.
type Target struct {
	Method  *hier.Method
	Version *ir.Version
}

// DefaultPICSize is the default entry bound of a polymorphic inline
// cache; beyond it the site is treated as megamorphic and entries are
// no longer added.
const DefaultPICSize = 8

type picEntry struct {
	classes []*hier.Class
	target  Target
}

// PICMetrics is the observability hook of a PIC: shared counters
// (typically one set for every PIC of an interpreter, registered in an
// obs.Registry) bumped on each lookup. The zero value — all-nil
// counters — is the disabled mode and adds only nil checks to the hit
// path; see the overhead guard in bench_test.go.
type PICMetrics struct {
	Hits       *obs.Counter
	Misses     *obs.Counter
	Promotions *obs.Counter // hits behind the front entry moved to front
}

// NewPICMetrics registers the shared PIC counters (zero value when the
// registry is nil).
func NewPICMetrics(r *obs.Registry) PICMetrics {
	if r == nil {
		return PICMetrics{}
	}
	return PICMetrics{
		Hits:       r.Counter("selspec_dispatch_pic_hits_total"),
		Misses:     r.Counter("selspec_dispatch_pic_misses_total"),
		Promotions: r.Counter("selspec_dispatch_pic_promotions_total"),
	}
}

// PIC is a call-site-specific polymorphic inline cache: an association
// list mapping actual argument class tuples to dispatch targets. The
// key covers every argument position because specialized versions may
// constrain positions the generic function itself does not dispatch on.
type PIC struct {
	entries []picEntry
	max     int

	Hits   uint64
	Misses uint64

	// M carries the optional shared obs counters. A value (not a
	// pointer) so the zero PIC needs no extra allocation and the
	// disabled cost is a nil check per counter.
	M PICMetrics
}

// NewPIC returns a PIC bounded to max entries (0 = DefaultPICSize).
func NewPIC(max int) *PIC {
	if max <= 0 {
		max = DefaultPICSize
	}
	return &PIC{max: max}
}

// match compares an entry's class tuple against the actuals. The
// common arities are unrolled so a monomorphic site costs one (or two)
// pointer compares instead of a counted loop.
func (e *picEntry) match(classes []*hier.Class) bool {
	k := e.classes
	if len(k) != len(classes) {
		return false
	}
	switch len(k) {
	case 1:
		return k[0] == classes[0]
	case 2:
		return k[0] == classes[0] && k[1] == classes[1]
	case 3:
		return k[0] == classes[0] && k[1] == classes[1] && k[2] == classes[2]
	default:
		for j, c := range k {
			if c != classes[j] {
				return false
			}
		}
		return true
	}
}

// Lookup searches the cache for the class tuple. Hits behind the front
// entry move to the front (preserving the relative order of the rest),
// so a site's hottest tuple is always the first — monomorphic and
// phase-stable sites pay a single arity-specialized compare.
func (p *PIC) Lookup(classes []*hier.Class) (Target, bool) {
	if len(p.entries) > 0 && p.entries[0].match(classes) {
		p.Hits++
		p.M.Hits.Inc()
		return p.entries[0].target, true
	}
	for i := 1; i < len(p.entries); i++ {
		if p.entries[i].match(classes) {
			e := p.entries[i]
			copy(p.entries[1:i+1], p.entries[:i])
			p.entries[0] = e
			p.Hits++
			p.M.Hits.Inc()
			p.M.Promotions.Inc()
			return e.target, true
		}
	}
	p.Misses++
	p.M.Misses.Inc()
	return Target{}, false
}

// Entry exposes the i'th cache entry (tuple and target) for engines
// that mirror the cache's hottest entries into faster structures; ok
// is false past the live entries. The returned tuple slice is owned by
// the PIC and must not be mutated.
func (p *PIC) Entry(i int) ([]*hier.Class, Target, bool) {
	if i < 0 || i >= len(p.entries) {
		return nil, Target{}, false
	}
	return p.entries[i].classes, p.entries[i].target, true
}

// PromoteAt replays the bookkeeping of a Lookup that matched entry i
// (i >= 1) — hit counters, promotion counter, and the move-to-front
// that preserves the relative order of the entries it displaces — for
// an engine-side cache that matched a mirrored entry itself. The caller
// guarantees the cache currently has more than i entries and that entry
// i is the matched one, so PIC state stays identical to a run that took
// Lookup.
func (p *PIC) PromoteAt(i int) {
	e := p.entries[i]
	copy(p.entries[1:i+1], p.entries[:i])
	p.entries[0] = e
	p.Hits++
	p.M.Hits.Inc()
	p.M.Promotions.Inc()
}

// Add inserts an entry unless the cache is megamorphic (full).
func (p *PIC) Add(classes []*hier.Class, t Target) {
	if len(p.entries) >= p.max {
		return
	}
	cp := make([]*hier.Class, len(classes))
	copy(cp, classes)
	p.entries = append(p.entries, picEntry{classes: cp, target: t})
}

// Len returns the number of cached entries.
func (p *PIC) Len() int { return len(p.entries) }

// Megamorphic reports whether the cache has hit its entry bound.
func (p *PIC) Megamorphic() bool { return len(p.entries) >= p.max }

// Entries returns the cached targets (for profile-style inspection: the
// paper gathers its call graph from PIC counters, §3.7.2).
func (p *PIC) Entries() []Target {
	out := make([]Target, len(p.entries))
	for i, e := range p.entries {
		out[i] = e.target
	}
	return out
}
