// Scale benchmarks for pole-compressed multi-method table construction
// over generated mega-hierarchies (package dispatch_test so it can
// import internal/gen without an import cycle — the gen->dispatch edge
// only exists in test code).
//
// Run with:
//
//	go test ./internal/dispatch -bench MMTable -benchtime 3x
package dispatch_test

import (
	"sort"
	"sync"
	"testing"

	"selspec/internal/dispatch"
	"selspec/internal/gen"
	"selspec/internal/hier"
	"selspec/internal/lang"
)

var (
	scaleMu     sync.Mutex
	scaleHiers  = map[int]*hier.Hierarchy{}
	scaleMultis = map[int][]*hier.GF{}
)

// scaleHier builds (once per size) the frozen hierarchy for a generated
// program with the given class count, plus its multi-dispatch GFs
// ranked by method count — the same slice the gen scale probe tables.
func scaleHier(tb testing.TB, classes int) (*hier.Hierarchy, []*hier.GF) {
	tb.Helper()
	scaleMu.Lock()
	defer scaleMu.Unlock()
	if h, ok := scaleHiers[classes]; ok {
		return h, scaleMultis[classes]
	}
	src := gen.New(gen.Config{Seed: 7, Classes: classes, Methods: 4 * classes, Depth: 32}).Source()
	prog, err := lang.Parse(src)
	if err != nil {
		tb.Fatalf("parse generated program: %v", err)
	}
	h, err := hier.Build(prog)
	if err != nil {
		tb.Fatal(err)
	}
	h.Freeze()
	var multi []*hier.GF
	for _, gf := range h.GFs() {
		if len(gf.DispatchedPositions()) >= 1 && len(gf.Methods) > 1 {
			multi = append(multi, gf)
		}
	}
	sort.Slice(multi, func(i, j int) bool {
		if len(multi[i].Methods) != len(multi[j].Methods) {
			return len(multi[i].Methods) > len(multi[j].Methods)
		}
		return multi[i].Name < multi[j].Name
	})
	if len(multi) > 64 {
		multi = multi[:64]
	}
	scaleHiers[classes] = h
	scaleMultis[classes] = multi
	return h, multi
}

func benchMMTable(b *testing.B, classes int) {
	h, multi := scaleHier(b, classes)
	if len(multi) == 0 {
		b.Fatal("generated program has no multi-dispatch GFs")
	}
	entries := 0
	for i := 0; i < b.N; i++ {
		entries = 0
		for _, gf := range multi {
			tbl, err := dispatch.NewMMTable(h, gf)
			if err != nil {
				b.Fatal(err)
			}
			entries += tbl.Size()
		}
	}
	b.ReportMetric(float64(len(multi)), "gfs")
	b.ReportMetric(float64(entries), "entries")
}

func BenchmarkMMTableBuild1k(b *testing.B)  { benchMMTable(b, 1_000) }
func BenchmarkMMTableBuild10k(b *testing.B) { benchMMTable(b, 10_000) }
