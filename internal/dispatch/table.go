package dispatch

import (
	"fmt"

	"selspec/internal/hier"
)

// SingleTable is a dense dispatch table for a singly-dispatched generic
// function: one slot per class, holding the most-specific method (nil =
// message not understood). This models the vtable-style dispatching of
// C++/Modula-3 mentioned in §3.7.2.
type SingleTable struct {
	GF      *hier.GF
	pos     int
	methods []*hier.Method // indexed by class ID
}

// NewSingleTable builds the table; the GF must dispatch on exactly one
// position.
func NewSingleTable(h *hier.Hierarchy, g *hier.GF) (*SingleTable, error) {
	dpos := g.DispatchedPositions()
	if len(dpos) != 1 {
		return nil, fmt.Errorf("dispatch: %s dispatches on %d positions, want 1", g.Key(), len(dpos))
	}
	t := &SingleTable{GF: g, pos: dpos[0], methods: make([]*hier.Method, h.NumClasses())}
	classes := make([]*hier.Class, g.Arity)
	for i := range classes {
		classes[i] = h.Any()
	}
	for _, c := range h.Classes() {
		classes[t.pos] = c
		if m, err := h.Lookup(g, classes...); err == nil {
			t.methods[c.ID] = m
		}
	}
	return t, nil
}

// Lookup dispatches on the receiver class; nil means "not understood".
func (t *SingleTable) Lookup(classes []*hier.Class) *hier.Method {
	return t.methods[classes[t.pos].ID]
}

// MMTable is a compressed multi-method dispatch table. For each
// dispatched argument position, classes are first grouped into "poles":
// two classes share a pole iff every method of the GF treats them
// identically at that position (same applicability). The dense table is
// then indexed by pole numbers rather than class IDs, which compresses
// its size from |classes|^n to |poles_1|×…×|poles_n| (Amiel et al. 94,
// Chen et al. 94).
type MMTable struct {
	GF        *hier.GF
	positions []int
	poleOf    [][]int // per dispatched position: class ID → pole index (-1: never applicable)
	dims      []int   // number of poles per position
	table     []*hier.Method
	ambiguous []bool
}

// NewMMTable builds the compressed table for any GF with at least one
// dispatched position.
func NewMMTable(h *hier.Hierarchy, g *hier.GF) (*MMTable, error) {
	positions := g.DispatchedPositions()
	if len(positions) == 0 {
		return nil, fmt.Errorf("dispatch: %s dispatches on no positions", g.Key())
	}
	t := &MMTable{GF: g, positions: positions}

	// Pole computation: signature of class c at position p is the
	// bitvector of methods applicable at p for c.
	reps := make([][]*hier.Class, len(positions)) // one representative class per pole
	for pi, p := range positions {
		sigToPole := map[string]int{}
		poleOf := make([]int, h.NumClasses())
		var repList []*hier.Class
		for _, c := range h.Classes() {
			sig := make([]byte, len(g.Methods))
			any := false
			for mi, m := range g.Methods {
				if c.IsSubclassOf(m.Specs[p]) {
					sig[mi] = 1
					any = true
				}
			}
			if !any {
				poleOf[c.ID] = -1
				continue
			}
			key := string(sig)
			pole, ok := sigToPole[key]
			if !ok {
				pole = len(repList)
				sigToPole[key] = pole
				repList = append(repList, c)
			}
			poleOf[c.ID] = pole
		}
		t.poleOf = append(t.poleOf, poleOf)
		t.dims = append(t.dims, len(repList))
		reps[pi] = repList
	}

	// Fill the dense pole-indexed table using one representative class
	// per pole (classes in a pole are dispatch-equivalent by
	// construction).
	size := 1
	for _, d := range t.dims {
		size *= d
	}
	t.table = make([]*hier.Method, size)
	t.ambiguous = make([]bool, size)

	classes := make([]*hier.Class, g.Arity)
	for i := range classes {
		classes[i] = h.Any()
	}
	idx := make([]int, len(positions))
	for flat := 0; flat < size; flat++ {
		rem := flat
		for pi := len(positions) - 1; pi >= 0; pi-- {
			idx[pi] = rem % t.dims[pi]
			rem /= t.dims[pi]
		}
		for pi, p := range positions {
			classes[p] = reps[pi][idx[pi]]
		}
		m, err := h.Lookup(g, classes...)
		if err != nil {
			t.ambiguous[flat] = err.Ambiguous
			continue
		}
		t.table[flat] = m
	}
	return t, nil
}

// Lookup dispatches on the argument classes. It returns (nil, false)
// for "message not understood" and (nil, true) for ambiguity.
func (t *MMTable) Lookup(classes []*hier.Class) (m *hier.Method, ambiguous bool) {
	flat := 0
	for pi, p := range t.positions {
		pole := t.poleOf[pi][classes[p].ID]
		if pole < 0 {
			return nil, false
		}
		flat = flat*t.dims[pi] + pole
	}
	return t.table[flat], t.ambiguous[flat]
}

// Size returns the number of dense table entries (the compression
// metric reported in the ablation).
func (t *MMTable) Size() int { return len(t.table) }

// UncompressedSize returns what a class-indexed n-dimensional table
// would need.
func (t *MMTable) UncompressedSize(h *hier.Hierarchy) int {
	size := 1
	for range t.positions {
		size *= h.NumClasses()
	}
	return size
}
