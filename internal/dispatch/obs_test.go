package dispatch

import (
	"sync"
	"testing"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/obs"
)

// TestPICMetricsExactCounts drives scripted lookup sequences through an
// instrumented PIC and checks the registry counters land on exactly the
// hit/miss/promotion totals the sequence implies. The cases cover the
// three counter paths: front-entry hits, behind-front hits (which also
// count a move-to-front promotion), and misses.
func TestPICMetricsExactCounts(t *testing.T) {
	h := buildHier(t)
	a, b, c := cls(t, h, "A"), cls(t, h, "B"), cls(t, h, "C")
	va, vb := &ir.Version{}, &ir.Version{}

	// seed installs A then B, leaving B at the BACK (Add appends; only
	// hits reorder), so the first B lookup is a behind-front hit.
	seed := func(p *PIC) {
		p.Add([]*hier.Class{a}, Target{Version: va})
		p.Add([]*hier.Class{b}, Target{Version: vb})
	}

	cases := []struct {
		name                     string
		lookups                  []*hier.Class // receiver per lookup, in order
		hits, misses, promotions uint64
	}{
		{
			name:    "monomorphic front hits",
			lookups: []*hier.Class{a, a, a, a},
			hits:    4,
		},
		{
			name: "behind-front hit promotes once",
			// First b: behind-front hit + promotion (order becomes b,a).
			// Second b: front hit. a: now behind-front, promoting again.
			lookups:    []*hier.Class{b, b, a},
			hits:       3,
			promotions: 2,
		},
		{
			name:    "uncached class misses every time",
			lookups: []*hier.Class{c, c, c},
			misses:  3,
		},
		{
			name: "mixed phase change",
			// a hit; c miss; b behind-front hit (promotes, order b,a);
			// a behind-front hit (promotes, order a,b); a front hit.
			lookups:    []*hier.Class{a, c, b, a, a},
			hits:       4,
			misses:     1,
			promotions: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			p := NewPIC(4)
			p.M = NewPICMetrics(reg)
			seed(p)
			for _, recv := range tc.lookups {
				p.Lookup([]*hier.Class{recv})
			}
			snap := reg.Snapshot()
			got := [3]uint64{
				snap.Counters["selspec_dispatch_pic_hits_total"],
				snap.Counters["selspec_dispatch_pic_misses_total"],
				snap.Counters["selspec_dispatch_pic_promotions_total"],
			}
			want := [3]uint64{tc.hits, tc.misses, tc.promotions}
			if got != want {
				t.Errorf("counters (hits,misses,promotions) = %v, want %v", got, want)
			}
			// The registry mirrors must agree with the PIC's own tallies.
			if p.Hits != tc.hits || p.Misses != tc.misses {
				t.Errorf("PIC fields hits=%d misses=%d, want %d/%d", p.Hits, p.Misses, tc.hits, tc.misses)
			}
		})
	}
}

// TestPICMetricsConcurrentSnapshot bumps shared counters from many
// PICs (one per goroutine — a PIC itself is single-threaded, the
// counters are the shared part) while other goroutines continuously
// Snapshot and WritePrometheus the registry. Run under -race this
// proves scrapes never tear or block the dispatch path; the final
// totals must still be exact.
func TestPICMetricsConcurrentSnapshot(t *testing.T) {
	h := buildHier(t)
	a, b := cls(t, h, "A"), cls(t, h, "B")
	va := &ir.Version{}

	reg := obs.NewRegistry()
	m := NewPICMetrics(reg)

	const workers = 8
	const rounds = 500
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				hits := snap.Counters["selspec_dispatch_pic_hits_total"]
				misses := snap.Counters["selspec_dispatch_pic_misses_total"]
				if hits > workers*rounds || misses > workers*rounds {
					t.Errorf("snapshot overshot: hits=%d misses=%d", hits, misses)
					return
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			p := NewPIC(4)
			p.M = m
			p.Add([]*hier.Class{a}, Target{Version: va})
			for i := 0; i < rounds; i++ {
				if i%2 == 0 {
					p.Lookup([]*hier.Class{a}) // hit
				} else {
					p.Lookup([]*hier.Class{b}) // miss (never added)
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	snap := reg.Snapshot()
	wantHits := uint64(workers * rounds / 2)
	wantMisses := uint64(workers * rounds / 2)
	if snap.Counters["selspec_dispatch_pic_hits_total"] != wantHits {
		t.Errorf("hits = %d, want %d", snap.Counters["selspec_dispatch_pic_hits_total"], wantHits)
	}
	if snap.Counters["selspec_dispatch_pic_misses_total"] != wantMisses {
		t.Errorf("misses = %d, want %d", snap.Counters["selspec_dispatch_pic_misses_total"], wantMisses)
	}
	if snap.Counters["selspec_dispatch_pic_promotions_total"] != 0 {
		t.Errorf("promotions = %d, want 0 (no multi-entry reordering in this workload)",
			snap.Counters["selspec_dispatch_pic_promotions_total"])
	}
}

// TestGFCacheMetricsExactCounts pins the hierarchy-level dispatch-cache
// counters: a repeated Lookup of the same (gf, classes) tuple must miss
// once and hit thereafter, and attaching metrics mid-stream must not
// disturb results.
func TestGFCacheMetricsExactCounts(t *testing.T) {
	h := buildHier(t)
	a, b := cls(t, h, "A"), cls(t, h, "B")

	reg := obs.NewRegistry()
	h.SetLookupMetrics(hier.NewLookupMetrics(reg))
	gf, ok := h.GF("m", 1)
	if !ok {
		t.Fatal("no GF m/1")
	}

	seq := []*hier.Class{
		a, // miss (cold)
		a, // hit
		a, // hit
		b, // miss (new tuple)
		b, // hit
	}
	for i, recv := range seq {
		if _, derr := h.Lookup(gf, recv); derr != nil {
			t.Fatalf("step %d: %v", i, derr)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["selspec_dispatch_gf_cache_hits_total"]; got != 3 {
		t.Errorf("gf cache hits = %d, want 3", got)
	}
	if got := snap.Counters["selspec_dispatch_gf_cache_misses_total"]; got != 2 {
		t.Errorf("gf cache misses = %d, want 2", got)
	}

	// Detach: further lookups must leave the counters untouched.
	h.SetLookupMetrics(nil)
	for i := 0; i < 10; i++ {
		if _, derr := h.Lookup(gf, a); derr != nil {
			t.Fatal(derr)
		}
	}
	snap = reg.Snapshot()
	if got := snap.Counters["selspec_dispatch_gf_cache_hits_total"]; got != 3 {
		t.Errorf("gf cache hits after detach = %d, want still 3", got)
	}
}
