package dispatch

import (
	"math/rand"
	"testing"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
)

const hierSrc = `
class A
class B isa A
class C isa A
class D isa B
method m(x@A) { 1; }
method m(x@B) { 2; }
method mm(x@A, y@A) { 1; }
method mm(x@B, y@B) { 2; }
method mm(x@A, y@C) { 3; }
method mm(x@B, y@C) { 4; }
method plain(x, y) { 5; }
`

func buildHier(t *testing.T) *hier.Hierarchy {
	t.Helper()
	h, err := hier.Build(lang.MustParse(hierSrc))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func cls(t *testing.T, h *hier.Hierarchy, name string) *hier.Class {
	t.Helper()
	c, ok := h.Class(name)
	if !ok {
		t.Fatalf("no class %s", name)
	}
	return c
}

func TestPICBasics(t *testing.T) {
	h := buildHier(t)
	p := NewPIC(2)
	a, b := cls(t, h, "A"), cls(t, h, "B")
	va := &ir.Version{}
	vb := &ir.Version{}

	if _, ok := p.Lookup([]*hier.Class{a}); ok {
		t.Fatal("empty PIC hit")
	}
	p.Add([]*hier.Class{a}, Target{Version: va})
	p.Add([]*hier.Class{b}, Target{Version: vb})
	if got, ok := p.Lookup([]*hier.Class{a}); !ok || got.Version != va {
		t.Fatal("PIC miss for A")
	}
	if got, ok := p.Lookup([]*hier.Class{b}); !ok || got.Version != vb {
		t.Fatal("PIC miss for B")
	}
	if p.Hits != 2 || p.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", p.Hits, p.Misses)
	}
	if !p.Megamorphic() || p.Len() != 2 {
		t.Error("PIC should be at capacity")
	}
	// Beyond capacity: Add is a no-op.
	p.Add([]*hier.Class{cls(t, h, "C")}, Target{})
	if p.Len() != 2 {
		t.Error("megamorphic PIC grew")
	}
	if got := p.Entries(); len(got) != 2 {
		t.Errorf("Entries = %d", len(got))
	}
}

func TestPICKeyCoversAllPositions(t *testing.T) {
	h := buildHier(t)
	p := NewPIC(0)
	a, b := cls(t, h, "A"), cls(t, h, "B")
	v1, v2 := &ir.Version{}, &ir.Version{}
	p.Add([]*hier.Class{a, b}, Target{Version: v1})
	p.Add([]*hier.Class{b, a}, Target{Version: v2})
	if got, ok := p.Lookup([]*hier.Class{a, b}); !ok || got.Version != v1 {
		t.Fatal("(A,B) lookup wrong")
	}
	if got, ok := p.Lookup([]*hier.Class{b, a}); !ok || got.Version != v2 {
		t.Fatal("(B,A) lookup wrong")
	}
	if _, ok := p.Lookup([]*hier.Class{a}); ok {
		t.Fatal("arity-mismatched entry matched")
	}
}

// TestPICMoveToFront: a hit behind the front promotes its entry to the
// front and keeps the relative order of the others, so the hottest
// tuple ends up costing one compare.
func TestPICMoveToFront(t *testing.T) {
	h := buildHier(t)
	p := NewPIC(0)
	a, b, c := cls(t, h, "A"), cls(t, h, "B"), cls(t, h, "C")
	va, vb, vc := &ir.Version{}, &ir.Version{}, &ir.Version{}
	p.Add([]*hier.Class{a}, Target{Version: va})
	p.Add([]*hier.Class{b}, Target{Version: vb})
	p.Add([]*hier.Class{c}, Target{Version: vc})

	if got, ok := p.Lookup([]*hier.Class{c}); !ok || got.Version != vc {
		t.Fatal("lookup C missed")
	}
	// Order is now C, A, B.
	want := []*ir.Version{vc, va, vb}
	for i, e := range p.Entries() {
		if e.Version != want[i] {
			t.Fatalf("entry %d = %p, want %p (order after MTF)", i, e.Version, want[i])
		}
	}
	// Hitting the front entry keeps the order.
	if _, ok := p.Lookup([]*hier.Class{c}); !ok {
		t.Fatal("front hit missed")
	}
	for i, e := range p.Entries() {
		if e.Version != want[i] {
			t.Fatalf("front hit reordered entry %d", i)
		}
	}
	if p.Hits != 2 || p.Misses != 0 {
		t.Errorf("hits/misses = %d/%d", p.Hits, p.Misses)
	}
}

func TestDefaultPICSize(t *testing.T) {
	p := NewPIC(0)
	if p.max != DefaultPICSize {
		t.Fatalf("default size = %d", p.max)
	}
}

func TestSingleTableMatchesLookup(t *testing.T) {
	h := buildHier(t)
	g, _ := h.GF("m", 1)
	tab, err := NewSingleTable(h, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range h.Classes() {
		want, derr := h.Lookup(g, c)
		got := tab.Lookup([]*hier.Class{c})
		if derr != nil {
			if got != nil {
				t.Errorf("table found %v for %s, lookup errs", got, c.Name)
			}
			continue
		}
		if got != want {
			t.Errorf("table(%s) = %v, want %v", c.Name, got, want)
		}
	}
}

func TestSingleTableRejectsMultiDispatch(t *testing.T) {
	h := buildHier(t)
	g, _ := h.GF("mm", 2)
	if _, err := NewSingleTable(h, g); err == nil {
		t.Fatal("SingleTable should reject a 2-position GF")
	}
}

func TestMMTableMatchesLookupExhaustively(t *testing.T) {
	h := buildHier(t)
	for _, key := range []string{"m", "mm"} {
		var g *hier.GF
		if key == "m" {
			g, _ = h.GF("m", 1)
		} else {
			g, _ = h.GF("mm", 2)
		}
		tab, err := NewMMTable(h, g)
		if err != nil {
			t.Fatal(err)
		}
		check := func(classes []*hier.Class) {
			want, derr := h.Lookup(g, classes...)
			got, amb := tab.Lookup(classes)
			if derr != nil {
				if got != nil {
					t.Errorf("%s%v: table %v, lookup err %v", g.Name, classes, got, derr)
				} else if amb != derr.Ambiguous {
					t.Errorf("%s%v: ambiguity flag %t, want %t", g.Name, classes, amb, derr.Ambiguous)
				}
				return
			}
			if got != want {
				t.Errorf("%s%v: table %v, want %v", g.Name, classes, got, want)
			}
		}
		if g.Arity == 1 {
			for _, c := range h.Classes() {
				check([]*hier.Class{c})
			}
		} else {
			for _, c1 := range h.Classes() {
				for _, c2 := range h.Classes() {
					check([]*hier.Class{c1, c2})
				}
			}
		}
	}
}

func TestMMTableCompression(t *testing.T) {
	h := buildHier(t)
	g, _ := h.GF("mm", 2)
	tab, err := NewMMTable(h, g)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Size() >= tab.UncompressedSize(h) {
		t.Errorf("no compression: %d vs %d", tab.Size(), tab.UncompressedSize(h))
	}
	// Position 0 poles: {A,C-like classes applicable only to @A} vs
	// {B,D applicable to both} → 2; position 1: A/B/D vs C → at most 3.
	if tab.Size() > 6 {
		t.Errorf("table size %d unexpectedly large", tab.Size())
	}
}

func TestMMTableRejectsUndispatched(t *testing.T) {
	h := buildHier(t)
	g, _ := h.GF("plain", 2)
	if _, err := NewMMTable(h, g); err == nil {
		t.Fatal("MMTable should reject a GF with no dispatched positions")
	}
}

// TestMMTableRandomHierarchies cross-checks the compressed table
// against the reference lookup on randomly generated hierarchies and
// method sets.
func TestMMTableRandomHierarchies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	classNames := []string{"C0", "C1", "C2", "C3", "C4", "C5"}
	for round := 0; round < 40; round++ {
		src := ""
		for i, n := range classNames {
			src += "class " + n
			if i > 0 {
				src += " isa " + classNames[rng.Intn(i)]
			}
			src += "\n"
		}
		arity := 1 + rng.Intn(2)
		seen := map[string]bool{}
		nm := 1 + rng.Intn(4)
		body := 0
		for k := 0; k < nm; k++ {
			s1 := classNames[rng.Intn(len(classNames))]
			s2 := classNames[rng.Intn(len(classNames))]
			key := s1 + "/" + s2
			if seen[key] {
				continue
			}
			seen[key] = true
			if arity == 1 {
				src += "method f(x@" + s1 + ") { " + itoa(body) + "; }\n"
			} else {
				src += "method f(x@" + s1 + ", y@" + s2 + ") { " + itoa(body) + "; }\n"
			}
			body++
		}
		h, err := hier.Build(lang.MustParse(src))
		if err != nil {
			continue // e.g. duplicate single-dispatch specializers
		}
		g, ok := h.GF("f", arity)
		if !ok {
			continue
		}
		if len(g.DispatchedPositions()) == 0 {
			continue
		}
		tab, err := NewMMTable(h, g)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		classes := make([]*hier.Class, arity)
		var rec func(pos int)
		rec = func(pos int) {
			if pos == arity {
				want, derr := h.Lookup(g, classes...)
				got, amb := tab.Lookup(classes)
				if derr != nil {
					if got != nil || amb != derr.Ambiguous {
						t.Fatalf("round %d %v: table (%v,%t) vs err %v\n%s", round, classes, got, amb, derr, src)
					}
					return
				}
				if got != want {
					t.Fatalf("round %d %v: table %v want %v\n%s", round, classes, got, want, src)
				}
				return
			}
			for _, c := range h.Classes() {
				classes[pos] = c
				rec(pos + 1)
			}
		}
		rec(0)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
