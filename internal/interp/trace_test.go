package interp

import (
	"bytes"
	"strings"
	"testing"

	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
)

func TestDispatchTracing(t *testing.T) {
	src := `
class A
class B isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method main() {
  var objs := newarray(2);
  aput(objs, 0, new A());
  aput(objs, 1, new B());
  var total := 0;
  var i := 0;
  while i < 4 { total := total + m(aget(objs, i % 2)); i := i + 1; }
  total;
}
`
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	in := New(c)
	var buf bytes.Buffer
	in.Trace = &buf
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "lookup") {
		t.Errorf("trace has no full lookups:\n%s", out)
	}
	if !strings.Contains(out, "pic-hit") {
		t.Errorf("trace has no PIC hits (third m(A) should hit):\n%s", out)
	}
	if !strings.Contains(out, "m/1") || !strings.Contains(out, "m(@B)") {
		t.Errorf("trace lines lack targets:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 4 {
		t.Errorf("trace lines = %d, want 4:\n%s", lines, out)
	}
}
