// Package interp executes compiled Mini-Cecil programs. It is the
// "runtime system" of the reproduction: it performs method lookup with
// polymorphic inline caches (or dispatch tables), selects specialized
// versions, counts every dynamic dispatch / version select / static
// call, charges an abstract cycle cost model, and can record the
// weighted call graph that drives the selective specialization
// algorithm.
package interp

import (
	"fmt"
	"strings"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
)

// Kind tags a runtime value.
type Kind uint8

// Value kinds.
const (
	KNil Kind = iota
	KInt
	KBool
	KStr
	KObj
	KClosure
	KArray
)

// Object is an instance of a user-defined class.
type Object struct {
	Class  *hier.Class
	Fields []Value
}

// Array is a mutable fixed-length vector.
type Array struct {
	Elems []Value
}

// Frame is one activation record; closures capture their defining
// frame, forming a static chain via Parent.
type Frame struct {
	Slots  []Value
	Parent *Frame
}

// At follows the static chain depth hops and reads a slot.
func (f *Frame) At(depth, slot int) Value {
	for ; depth > 0; depth-- {
		f = f.Parent
	}
	return f.Slots[slot]
}

// Set follows the static chain and writes a slot.
func (f *Frame) Set(depth, slot int, v Value) {
	for ; depth > 0; depth-- {
		f = f.Parent
	}
	f.Slots[slot] = v
}

// Activation identifies a live method activation, the target of
// (possibly non-local) returns.
type Activation struct {
	alive bool
}

// Closure is a first-class function value: code plus the captured
// defining frame and the method activation non-local returns unwind to.
type Closure struct {
	Code  *ir.ClosureCode
	Frame *Frame      // defining frame (static link)
	Act   *Activation // enclosing method activation, for Return
}

// Value is a runtime value (tagged union).
type Value struct {
	K Kind
	I int64 // int value, or 0/1 for bool
	S string
	O *Object
	C *Closure
	A *Array
}

// Constructors.
var (
	// NilV is the nil value.
	NilV = Value{K: KNil}
	// TrueV and FalseV are the boolean values.
	TrueV  = Value{K: KBool, I: 1}
	FalseV = Value{K: KBool}
)

// IntV makes an integer value.
func IntV(i int64) Value { return Value{K: KInt, I: i} }

// StrV makes a string value.
func StrV(s string) Value { return Value{K: KStr, S: s} }

// BoolV makes a boolean value.
func BoolV(b bool) Value {
	if b {
		return TrueV
	}
	return FalseV
}

// Truthy reports whether the value is the boolean true; conditions on
// non-booleans are runtime errors.
func (v Value) Truthy() (bool, bool) {
	if v.K != KBool {
		return false, false
	}
	return v.I != 0, true
}

// Class returns the runtime class of the value.
func (v Value) Class(h *hier.Hierarchy) *hier.Class {
	switch v.K {
	case KInt:
		return h.B.Int
	case KBool:
		return h.B.Bool
	case KStr:
		return h.B.String
	case KObj:
		return v.O.Class
	case KClosure:
		return h.B.Closure
	case KArray:
		return h.B.Array
	default:
		return h.B.Nil
	}
}

// Equal implements the == primitive: value equality for immediates,
// identity for objects, closures and arrays.
func (v Value) Equal(w Value) bool {
	if v.K != w.K {
		return false
	}
	switch v.K {
	case KNil:
		return true
	case KInt, KBool:
		return v.I == w.I
	case KStr:
		return v.S == w.S
	case KObj:
		return v.O == w.O
	case KClosure:
		return v.C == w.C
	case KArray:
		return v.A == w.A
	}
	return false
}

// String renders the value as the str/print primitives do.
func (v Value) String() string {
	switch v.K {
	case KNil:
		return "nil"
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KStr:
		return v.S
	case KObj:
		var b strings.Builder
		b.WriteString(v.O.Class.Name)
		b.WriteByte('(')
		for i, f := range v.O.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			if f.K == KObj {
				// Avoid unbounded recursion through cyclic structures.
				b.WriteString(f.O.Class.Name)
				b.WriteString("(...)")
			} else {
				b.WriteString(f.String())
			}
		}
		b.WriteByte(')')
		return b.String()
	case KClosure:
		return "<closure>"
	case KArray:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range v.A.Elems {
			if i > 0 {
				b.WriteString(", ")
			}
			if e.K == KArray || e.K == KObj {
				b.WriteString("...")
			} else {
				b.WriteString(e.String())
			}
		}
		b.WriteByte(']')
		return b.String()
	}
	return "<?>"
}

// RuntimeError is a Mini-Cecil runtime error (message-not-understood,
// type errors, aborts, ...). Dispatch faults carry the source position
// of the failing send, matching the locations internal/check reports
// statically.
type RuntimeError struct {
	Pos lang.Pos // zero when no source location applies
	Msg string
}

func (e *RuntimeError) Error() string {
	if e.Pos.Line > 0 {
		return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg)
	}
	return "runtime error: " + e.Msg
}

// Position returns the error's source position (zero when none
// applies), for the pipeline boundary's position extraction.
func (e *RuntimeError) Position() lang.Pos { return e.Pos }

// returnSignal implements (non-local) return via panic/recover.
type returnSignal struct {
	act *Activation
	val Value
}
