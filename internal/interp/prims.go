package interp

import (
	"fmt"

	"selspec/internal/ir"
)

// evalPrim implements the built-in primitive functions.
func (in *Interp) evalPrim(p ir.Prim, args []Value) Value {
	switch p {
	case ir.PrimPrint, ir.PrimPrintln:
		if in.Out != nil {
			if p == ir.PrimPrintln {
				fmt.Fprintln(in.Out, args[0].String())
			} else {
				fmt.Fprint(in.Out, args[0].String())
			}
		}
		return NilV

	case ir.PrimStr:
		return StrV(args[0].String())

	case ir.PrimNewArray:
		if args[0].K != KInt || args[0].I < 0 {
			fail("newarray size must be a non-negative integer, got %s", args[0])
		}
		elems := make([]Value, args[0].I)
		for i := range elems {
			elems[i] = NilV
		}
		return Value{K: KArray, A: &Array{Elems: elems}}

	case ir.PrimAGet:
		a, i := args[0], args[1]
		if a.K != KArray || i.K != KInt {
			fail("aget(%s, %s)", a, i)
		}
		if i.I < 0 || i.I >= int64(len(a.A.Elems)) {
			fail("array index %d out of range [0, %d)", i.I, len(a.A.Elems))
		}
		return a.A.Elems[i.I]

	case ir.PrimAPut:
		a, i, v := args[0], args[1], args[2]
		if a.K != KArray || i.K != KInt {
			fail("aput(%s, %s, _)", a, i)
		}
		if i.I < 0 || i.I >= int64(len(a.A.Elems)) {
			fail("array index %d out of range [0, %d)", i.I, len(a.A.Elems))
		}
		a.A.Elems[i.I] = v
		return v

	case ir.PrimALen:
		if args[0].K != KArray {
			fail("alen on non-array %s", args[0])
		}
		return IntV(int64(len(args[0].A.Elems)))

	case ir.PrimStrLen:
		if args[0].K != KStr {
			fail("strlen on non-string %s", args[0])
		}
		return IntV(int64(len(args[0].S)))

	case ir.PrimSubstr:
		s, i, j := args[0], args[1], args[2]
		if s.K != KStr || i.K != KInt || j.K != KInt {
			fail("substr(%s, %s, %s)", s, i, j)
		}
		if i.I < 0 || j.I < i.I || j.I > int64(len(s.S)) {
			fail("substr bounds [%d, %d) out of range for length %d", i.I, j.I, len(s.S))
		}
		return StrV(s.S[i.I:j.I])

	case ir.PrimCharAt:
		s, i := args[0], args[1]
		if s.K != KStr || i.K != KInt {
			fail("charat(%s, %s)", s, i)
		}
		if i.I < 0 || i.I >= int64(len(s.S)) {
			fail("charat index %d out of range for length %d", i.I, len(s.S))
		}
		return StrV(string(s.S[i.I]))

	case ir.PrimOrd:
		if args[0].K != KStr || len(args[0].S) == 0 {
			fail("ord needs a non-empty string, got %s", args[0])
		}
		return IntV(int64(args[0].S[0]))

	case ir.PrimChr:
		if args[0].K != KInt || args[0].I < 0 || args[0].I > 255 {
			fail("chr needs an integer in [0, 255], got %s", args[0])
		}
		return StrV(string(rune(byte(args[0].I))))

	case ir.PrimAbort:
		fail("abort: %s", args[0])

	case ir.PrimClassName:
		return StrV(args[0].Class(in.H).Name)

	case ir.PrimSame:
		return BoolV(sameIdentity(args[0], args[1]))
	}
	// Unknown primitives (a lowering/interpreter table mismatch) raise a
	// positioned RuntimeError instead of a bare Go panic, so the fault
	// is contained per compilation unit and reports file:line:col.
	failAt(in.g.callPos, "internal error: unknown primitive %d", p)
	panic("unreachable")
}

// sameIdentity is reference identity (value identity for immediates).
func sameIdentity(a, b Value) bool {
	if a.K != b.K {
		return false
	}
	switch a.K {
	case KObj:
		return a.O == b.O
	case KArray:
		return a.A == b.A
	case KClosure:
		return a.C == b.C
	default:
		return a.Equal(b)
	}
}
