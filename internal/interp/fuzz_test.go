package interp_test

// FuzzInterp runs generated Mini-Cecil programs through the RAW
// lower→compile→interpret stack under tight resource guards (steps,
// call depth, wall clock). The pipeline boundary is deliberately not
// used: it would convert a crasher into a contained StageError and hide
// it from the fuzzer. Mini-Cecil runtime errors (*interp.RuntimeError)
// are expected outcomes; Go panics are the bug.

import (
	"context"
	"testing"
	"time"

	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
)

func FuzzInterp(f *testing.F) {
	for _, s := range []string{
		"method main() { 1; }",
		"method main() { while true { 1; } }",                        // step guard
		"method f(n) { f(n + 1); }\nmethod main() { f(0); }",         // depth guard
		"method main() { 1 / 0; }",                                   // runtime error
		"class A\nmethod main() { var keep := new A(); missing(keep); }", // MNU
		"method main() { var f := fn(x) { x(x); }; f(f); }",
		"method main() { [1, 2][5]; }",
		"global g := 0;\nmethod main() { g := g + 1; g; }",
		"class A\nclass B isa A\nmethod m(x@A) { 1; }\nmethod m(x@B) { resend; }\nmethod main() { m(new B()); }",
		"method main() { var s := \"x\"; s + 1; }",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // big inputs only slow discovery down
		}
		parsed, err := lang.Parse(src)
		if err != nil {
			return
		}
		prog, err := ir.Lower(parsed)
		if err != nil {
			return
		}
		// Every configuration shares the interpreter; Base keeps the
		// per-input cost low while still covering the whole evaluator.
		c, err := opt.Compile(prog, opt.Options{Config: opt.Base})
		if err != nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		in := interp.New(c)
		in.StepLimit = 200_000
		in.DepthLimit = 256
		in.Ctx = ctx
		_, _ = in.Run() // RuntimeErrors (incl. guard trips) are fine
	})
}
