package interp

import (
	"selspec/internal/dispatch"
	"selspec/internal/hier"
	"selspec/internal/ir"
)

// This file is the seam between the two execution tiers. The bytecode
// VM (internal/vm) executes compiled register code but runs every
// observable event — dispatch, version selection, profiling, counter
// and cycle accounting, primitive evaluation — through the Interp it
// wraps, via the exported entry points below. That is what makes the
// tree interpreter usable as a differential-testing oracle: both tiers
// share one implementation of everything that is counted, so metric
// blocks are byte-comparable across engines by construction.

// ClassesOf computes the runtime classes of a value slice into buf
// (reusing its storage), for engines that keep a scratch buffer across
// dispatches. The result must be treated as dead after the next call
// that receives it; see DispatchSendClasses for why that is safe here.
func (in *Interp) ClassesOf(vals []Value, buf []*hier.Class) []*hier.Class {
	return in.classesOf(vals, buf)
}

// SelectVersionClasses is the engine-shared core of an ir.VersionSelect
// site: a statically-bound call whose specialized version is chosen at
// run time from the argument classes. Counter and trace behavior is
// identical to the tree interpreter's VersionSelect case.
func (in *Interp) SelectVersionClasses(site *ir.CallSite, m *hier.Method, classes []*hier.Class) *ir.Version {
	in.Counters.VersionSelects++
	in.charge(CostVersionSelect)
	in.record(site, m)
	v := in.C.SelectVersion(m, classes)
	if in.Trace != nil {
		in.trace("vselect", site, v)
	}
	return v
}

// NotePICHit charges a send resolved by an engine-side monomorphic
// inline cache, replaying exactly the front-entry PIC-hit path of
// DispatchSendClasses — including the site PIC's own hit counters, so
// the PIC state and every metric stay identical to a run that took the
// generic path. The caller guarantees the cached tuple is the PIC's
// front entry (the cache is filled only after a PIC hit, when the
// looked-up tuple has just moved to or confirmed the front), so no
// promotion is skipped.
func (in *Interp) NotePICHit(site *ir.CallSite, mth *hier.Method, v *ir.Version) {
	in.Counters.Dispatches++
	pic := in.pics[site.ID]
	pic.Hits++
	pic.M.Hits.Inc()
	in.Counters.PICHits++
	in.charge(CostPICHit)
	in.record(site, mth)
	if in.Trace != nil {
		in.trace("pic-hit", site, v)
	}
}

// NotePICHitAt charges a send resolved by an engine cache's way i
// (i >= 1), replaying Lookup's behind-the-front hit exactly: hit and
// promotion counters plus the PIC's own move-to-front, so the PIC ends
// in the same state the tree tier's lookup would leave it in. The
// engine guarantees its way i mirrors the PIC's entry i.
func (in *Interp) NotePICHitAt(site *ir.CallSite, mth *hier.Method, v *ir.Version, i int) {
	in.Counters.Dispatches++
	in.pics[site.ID].PromoteAt(i)
	in.Counters.PICHits++
	in.charge(CostPICHit)
	in.record(site, mth)
	if in.Trace != nil {
		in.trace("pic-hit", site, v)
	}
}

// SitePIC returns a call site's polymorphic inline cache — nil until
// the site's first dispatch under MechPIC creates it. Engines use it
// to mirror the cache's front entries after a generic dispatch.
func (in *Interp) SitePIC(id int) *dispatch.PIC { return in.pics[id] }

// NoteVersionSelect charges a version-select site whose selection an
// engine-side cache resolved: the counter/charge/record/trace sequence
// of SelectVersionClasses with the (deterministic) table lookup
// skipped.
func (in *Interp) NoteVersionSelect(site *ir.CallSite, m *hier.Method, v *ir.Version) {
	in.Counters.VersionSelects++
	in.charge(CostVersionSelect)
	in.record(site, m)
	if in.Trace != nil {
		in.trace("vselect", site, v)
	}
}

// NoteStaticCall charges a statically-bound call: the counter, the
// cycle cost, and the profile arc, exactly as the tree tier's
// StaticCall case does before invoking the target.
func (in *Interp) NoteStaticCall(site *ir.CallSite, target *ir.Version) {
	in.Counters.StaticCalls++
	in.charge(CostStaticCall)
	in.record(site, target.Method)
}

// NoteInvoke charges a method-version entry: the profile entry record,
// the invoked-version set, the entry counter, the cycle cost and one
// step — the exact sequence the tree tier runs after a version's body
// has been resolved, in the same order relative to any guard trip.
func (in *Interp) NoteInvoke(v *ir.Version, args []Value) {
	if !in.invoked[v] {
		in.invoked[v] = true
	}
	in.NoteInvokeKnown(v, args)
}

// NoteInvokeKnown is NoteInvoke minus the invoked-set insertion, for an
// engine that tracks set membership itself: the VM keeps a noted bit on
// each compiled proc and calls MarkInvoked exactly once, removing a map
// access from every later entry through that proc.
func (in *Interp) NoteInvokeKnown(v *ir.Version, args []Value) {
	if in.Profile != nil && len(args) > 0 {
		in.Profile.RecordEntry(v.Method, in.classesOf(args, make([]*hier.Class, 0, len(args))))
	}
	in.Counters.MethodEntries++
	in.charge(CostMethodEntry)
	in.step()
}

// MarkInvoked records a version in the invoked set (the Figure 6
// dynamic-compilation metric).
func (in *Interp) MarkInvoked(v *ir.Version) { in.invoked[v] = true }

// NoteClosureCall charges a closure invocation (counter, cycle cost,
// one step), matching the tree tier's CallClosure case after argument
// evaluation.
func (in *Interp) NoteClosureCall() {
	in.Counters.ClosureCalls++
	in.charge(CostClosureCall)
	in.step()
}

// CallPrim charges and evaluates one primitive call, matching the tree
// tier's PrimCall case after argument evaluation.
func (in *Interp) CallPrim(p ir.Prim, args []Value) Value {
	in.Counters.PrimOps++
	in.charge(CostPrim)
	return in.evalPrim(p, args)
}

// EvalBin evaluates one binary primitive with the interpreter's exact
// semantics and error messages. Counter charging is the caller's
// responsibility (both tiers charge PrimOps/CostBin before evaluating).
func EvalBin(op ir.BinOp, l, r Value) Value { return evalBin(op, l, r) }

// CheckFieldType enforces a declared field type on a store, raising the
// tree tier's exact RuntimeError on violation.
func (in *Interp) CheckFieldType(cls *hier.Class, idx int, v Value) {
	in.checkFieldType(cls, idx, v)
}

// Charge adds to the abstract cycle counter. The VM uses this for the
// node costs it executes natively (control flow, field access, object
// construction); everything dispatch-related is charged inside the
// shared seams above.
func (in *Interp) Charge(c uint64) { in.charge(c) }

// FlushObs flushes the run-scoped observability totals (send/static/
// step counters) into the attached Metrics, as the tree tier does when
// Run returns. Safe on a nil Obs.
func (in *Interp) FlushObs() { in.Obs.flushRun(in) }

// NewActivation returns a live method activation, the target of
// (possibly non-local) returns.
func NewActivation() *Activation { return &Activation{alive: true} }

// Alive reports whether the activation is still on the call stack.
func (a *Activation) Alive() bool { return a.alive }

// Exit marks the activation dead: returns aimed at it from escaped
// closures now fail instead of unwinding.
func (a *Activation) Exit() { a.alive = false }
