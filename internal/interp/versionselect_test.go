package interp

import (
	"strings"
	"testing"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
	"selspec/internal/profile"
)

// buildSelective compiles a program under Selective with hand-built
// directives that force run-time version selection at a
// statically-bound call site.
func buildSelective(t *testing.T) (*opt.Compiled, *ir.Program) {
	t.Helper()
	src := `
class A
class B isa A
class C isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method callM(x@A) { x.m(); }
method main() {
  var objs := newarray(3);
  aput(objs, 0, new A());
  aput(objs, 1, new B());
  aput(objs, 2, new C());
  var total := 0;
  var i := 0;
  while i < 30 {
    total := total + callM(aget(objs, i % 3));
    i := i + 1;
  }
  total;
}
`
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	h := prog.H
	var callM *hier.Method
	for _, m := range h.Methods() {
		if m.GF.Name == "callM" {
			callM = m
		}
	}
	b, _ := h.Class("B")
	c, _ := h.Class("C")
	gen := h.ApplicableClasses(callM).Clone()
	specB := gen.Clone()
	specB[0].Clear()
	specB[0].Add(b.ID)
	specC := gen.Clone()
	specC[0].Clear()
	specC[0].Add(c.ID)
	comp, err := opt.Compile(prog, opt.Options{
		Config:          opt.Selective,
		Specializations: map[*hier.Method][]hier.Tuple{callM: {gen, specB, specC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return comp, prog
}

func TestVersionSelectionAtRuntime(t *testing.T) {
	comp, _ := buildSelective(t)
	in := New(comp)
	val, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10×(A:1) + 10×(B:2) + 10×(C:1) = 40.
	if val.String() != "40" {
		t.Fatalf("value = %s", val)
	}
	// Every callM dispatch selects a version (PIC folds that in); the
	// specialized B version runs with x.m() statically bound inside.
	if in.Counters.Dispatches == 0 {
		t.Fatal("no dispatches recorded")
	}
	if in.InvokedVersions() < 5 {
		t.Errorf("expected ≥5 distinct versions invoked, got %d", in.InvokedVersions())
	}
}

func TestVersionSelectionUnderAllMechanisms(t *testing.T) {
	for _, mech := range []Mechanism{MechPIC, MechGlobal, MechTables} {
		comp, _ := buildSelective(t)
		in := New(comp)
		in.Mech = mech
		val, err := in.Run()
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if val.String() != "40" {
			t.Fatalf("%v: value = %s", mech, val)
		}
	}
}

func TestTableLookupErrors(t *testing.T) {
	src := `
class A
class B1 isa A
class B2 isa A
class D isa B1, B2
method amb(x@B1) { 1; }
method amb(x@B2) { 2; }
method id(x) { x; }
method main() { amb(id(new D())); }
`
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := opt.Compile(prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	in := New(comp)
	in.Mech = MechTables
	_, rerr := in.Run()
	if rerr == nil || !strings.Contains(rerr.Error(), "ambiguous") {
		t.Fatalf("err = %v", rerr)
	}

	// Not-understood through tables.
	src2 := strings.Replace(src, "amb(id(new D()))", "amb(id(42))", 1)
	prog2, err := ir.Lower(lang.MustParse(src2))
	if err != nil {
		t.Fatal(err)
	}
	comp2, err := opt.Compile(prog2, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	in2 := New(comp2)
	in2.Mech = MechTables
	_, rerr = in2.Run()
	if rerr == nil || !strings.Contains(rerr.Error(), "not understood") {
		t.Fatalf("err = %v", rerr)
	}
}

func TestProfileRecordsEntriesAndStaticArcs(t *testing.T) {
	src := `
class A
class B isa A
method m(x@A) { x; }
method caller(x@A) { x.m(); }
method main() { caller(new A()); caller(new B()); 0; }
`
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := opt.Compile(prog, opt.Options{Config: opt.Base, DisableInlining: true})
	if err != nil {
		t.Fatal(err)
	}
	in := New(comp)
	cg := profile.NewCallGraph(prog)
	in.Profile = cg
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if cg.Len() == 0 {
		t.Fatal("no arcs recorded")
	}
	var caller *hier.Method
	for _, m := range prog.H.Methods() {
		if m.GF.Name == "caller" {
			caller = m
		}
	}
	ts := cg.Entries(caller)
	if ts == nil || len(ts.Tuples) != 2 {
		t.Fatalf("entry tuples for caller: %+v", ts)
	}
}
