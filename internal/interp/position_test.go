package interp

import (
	"errors"
	"strings"
	"testing"

	"selspec/internal/check"
)

// TestDispatchErrorPositions verifies that runtime dispatch faults are
// anchored at the source position of the failing send — and that the
// position is the same one internal/check reports statically, so a
// runtime trace and a `selspec check` diagnostic point at the same
// place.
func TestDispatchErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		errSub    string // substring of the runtime error message
		checkID   string // static check expected at the same position
		line, col int
	}{
		{
			name: "message not understood",
			src: `class A
class B
method f(x@A) { 1; }
method main() { var keep := new A(); f(new B()); }`,
			errSub:  "message not understood: f(B)",
			checkID: check.CheckPossibleMNU,
			line:    4, col: 38,
		},
		{
			name: "ambiguous dispatch",
			src: `class L
class R
class C isa L, R
method amb(x@L) { 1; }
method amb(x@R) { 2; }
method main() { var kl := new L(); var kr := new R(); amb(new C()); }`,
			errSub:  "message ambiguous: amb(C)",
			checkID: check.CheckAmbiguous,
			line:    6, col: 55,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := tryRun(t, tc.src)
			if err == nil {
				t.Fatalf("expected a runtime error containing %q", tc.errSub)
			}
			var re *RuntimeError
			if !errors.As(err, &re) {
				t.Fatalf("error %T is not a *RuntimeError: %v", err, err)
			}
			if !strings.Contains(re.Msg, tc.errSub) {
				t.Errorf("error %q does not contain %q", re.Msg, tc.errSub)
			}
			if re.Pos.Line != tc.line || re.Pos.Col != tc.col {
				t.Errorf("runtime error at %s, want %d:%d", re.Pos, tc.line, tc.col)
			}

			ds, cerr := check.Source("test.mc", tc.src, check.Options{Instantiation: true})
			if cerr != nil {
				t.Fatalf("check.Source: %v", cerr)
			}
			found := false
			for _, d := range ds {
				if d.Check == tc.checkID {
					found = true
					if d.Line != re.Pos.Line || d.Col != re.Pos.Col {
						t.Errorf("static %s at %d:%d, runtime fault at %s — positions must agree",
							d.Check, d.Line, d.Col, re.Pos)
					}
				}
			}
			if !found {
				t.Errorf("static analysis did not report %s; got:\n%v", tc.checkID, ds)
			}
		})
	}
}
