package interp

import (
	"context"

	"selspec/internal/lang"
)

// DefaultDepthLimit is the call-depth guard applied when
// Interp.DepthLimit is zero. It is far above what the benchmarks need
// but low enough that the Go stack frames behind each guest call stay
// well under the runtime's stack ceiling.
const DefaultDepthLimit = 10_000

// CtxCheckInterval is how many interpreter steps pass between context
// polls: a power of two so the check is a mask, cheap enough to leave
// in the hot step path. Both execution tiers share this constant via
// Guard, so a cancelled run aborts after the same number of steps
// whichever engine executes it.
const CtxCheckInterval = 1024

// Guard is the shared resource-limit enforcer for both execution tiers
// (the tree-walking interpreter and the bytecode VM): step budget,
// Mini-Cecil call depth, and wall-clock cancellation via a context
// polled every CtxCheckInterval steps. Keeping one implementation —
// with identical trip messages, identical poll cadence, and identical
// step accounting — is what lets the differential tests demand
// byte-identical failure behavior across engines.
//
// A Guard is single-goroutine state, owned by the Interp whose run it
// protects; the VM borrows the same instance so both tiers draw from
// one step budget even when a run mixes them (e.g. tree fallback).
type Guard struct {
	stepLimit  uint64
	depthLimit int // resolved: <=0 disables, never the raw 0 sentinel
	ctx        context.Context

	steps   uint64
	depth   int
	callPos lang.Pos // innermost call-site position, for faults with no node position
}

// Arm resolves and installs the limits for one run. A zero depthLimit
// selects DefaultDepthLimit, negative disables the depth guard; a zero
// stepLimit or nil ctx disables those guards. The call depth resets to
// zero; the step counter is deliberately left running so repeated runs
// on one Interp keep accumulating into the same observable total.
func (g *Guard) Arm(stepLimit uint64, depthLimit int, ctx context.Context) {
	g.stepLimit = stepLimit
	g.depthLimit = depthLimit
	if g.depthLimit == 0 {
		g.depthLimit = DefaultDepthLimit
	}
	g.ctx = ctx
	g.depth = 0
}

// Step charges one interpreter step and trips the step-limit and
// cancellation guards. Both failure modes raise Mini-Cecil
// RuntimeErrors (the cancellation one anchored at the innermost call
// site), so they are contained by the normal run boundary.
func (g *Guard) Step() {
	g.steps++
	if g.stepLimit > 0 && g.steps > g.stepLimit {
		fail("step limit exceeded (%d)", g.stepLimit)
	}
	if g.ctx != nil && g.steps%CtxCheckInterval == 0 {
		select {
		case <-g.ctx.Done():
			failAt(g.callPos, "interpreter cancelled: %v", context.Cause(g.ctx))
		default:
		}
	}
}

// Enter charges one level of Mini-Cecil call depth, failing with a
// positioned RuntimeError when the guard trips. pos is the call site
// (zero for main). Every Enter must be matched by a Leave on ordinary
// exits; non-local unwinds may skip Leaves and instead restore the
// absolute depth via SetDepth at the catch point.
func (g *Guard) Enter(pos lang.Pos) {
	g.depth++
	if g.depthLimit > 0 && g.depth > g.depthLimit {
		failAt(pos, "call depth limit exceeded (%d)", g.depthLimit)
	}
	if pos.Line > 0 {
		g.callPos = pos
	}
}

// Leave undoes one Enter.
func (g *Guard) Leave() { g.depth-- }

// Steps returns the total interpreter steps charged so far.
func (g *Guard) Steps() uint64 { return g.steps }

// Depth returns the current Mini-Cecil call depth.
func (g *Guard) Depth() int { return g.depth }

// SetDepth restores an absolute call depth. The bytecode VM uses this
// at non-local-return catch points: a returnSignal unwind skips the
// Leave of every frame between the throwing closure and the caught
// activation, and restoring the saved depth in one store replaces the
// per-frame deferred Leaves the tree interpreter relies on.
func (g *Guard) SetDepth(d int) { g.depth = d }

// CallPos returns the innermost call-site position recorded by Enter,
// the anchor for faults that carry no node position of their own.
func (g *Guard) CallPos() lang.Pos { return g.callPos }
