package interp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
)

func compileFor(t *testing.T, src string) *opt.Compiled {
	t.Helper()
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const deepRecursion = `
method f(n) { if n == 0 { 0; } else { f(n - 1); } }
method main() { f(100000000); }
`

// TestDepthLimitDefault: unbounded guest recursion must hit the default
// call-depth guard as a positioned RuntimeError, not fatally overflow
// the Go stack (which no recover could contain).
func TestDepthLimitDefault(t *testing.T) {
	in := New(compileFor(t, deepRecursion))
	_, err := in.Run()
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *RuntimeError", err, err)
	}
	if !strings.Contains(re.Msg, "call depth limit exceeded") {
		t.Fatalf("msg = %q", re.Msg)
	}
	// Anchored at the recursive call site, line 2 of the fixture.
	if re.Pos.Line != 2 {
		t.Errorf("pos = %v, want line 2", re.Pos)
	}
}

// TestDepthLimitConfigurable: the limit scales with DepthLimit — a
// recursion deeper than the limit faults, a shallower one completes.
func TestDepthLimitConfigurable(t *testing.T) {
	src := `
method f(n) { if n == 0 { 0; } else { f(n - 1); } }
method main() { f(200); }
`
	in := New(compileFor(t, src))
	in.DepthLimit = 100
	if _, err := in.Run(); err == nil || !strings.Contains(err.Error(), "call depth limit exceeded (100)") {
		t.Fatalf("limit 100: err = %v", err)
	}

	in = New(compileFor(t, src))
	in.DepthLimit = 1000
	if _, err := in.Run(); err != nil {
		t.Fatalf("limit 1000: err = %v", err)
	}
}

// TestDepthLimitRecoversAcrossRuns: after a depth fault the guard state
// is reset, so a fresh Run on the same interpreter is unaffected.
func TestDepthLimitRecoversAcrossRuns(t *testing.T) {
	in := New(compileFor(t, `
method f(n) { if n == 0 { 0; } else { f(n - 1); } }
method main() { f(50); }
`))
	in.DepthLimit = 10
	if _, err := in.Run(); err == nil {
		t.Fatal("first run: expected depth fault")
	}
	in.DepthLimit = 100
	if _, err := in.Run(); err != nil {
		t.Fatalf("second run: err = %v", err)
	}
}

// TestContextTimeout: a runaway loop is cancelled by a deadline as a
// RuntimeError naming the cause.
func TestContextTimeout(t *testing.T) {
	in := New(compileFor(t, `method main() { while true { 1; } }`))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	in.Ctx = ctx
	_, err := in.Run()
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want *RuntimeError", err, err)
	}
	if !strings.Contains(re.Msg, "interpreter cancelled") ||
		!strings.Contains(re.Msg, context.DeadlineExceeded.Error()) {
		t.Fatalf("msg = %q", re.Msg)
	}
}

// TestContextCancelCause: an explicit cancellation cause surfaces in
// the error text.
func TestContextCancelCause(t *testing.T) {
	in := New(compileFor(t, `method main() { while true { 1; } }`))
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("grid cell evicted"))
	in.Ctx = ctx
	_, err := in.Run()
	if err == nil || !strings.Contains(err.Error(), "grid cell evicted") {
		t.Fatalf("err = %v", err)
	}
}

// TestStepLimitStillWins: the pre-existing step guard is unaffected by
// the new guards being present.
func TestStepLimitStillWins(t *testing.T) {
	in := New(compileFor(t, `method main() { while true { 1; } }`))
	in.StepLimit = 1000
	in.DepthLimit = 5
	if _, err := in.Run(); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v", err)
	}
}
