package interp

import (
	"context"
	"fmt"
	"io"
	"strings"

	"selspec/internal/dispatch"
	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
	"selspec/internal/profile"
)

// Mechanism selects the run-time lookup mechanism for dynamically
// dispatched sends (§3.5 ablation).
type Mechanism int

// Lookup mechanisms.
const (
	// MechPIC uses per-site polymorphic inline caches backed by the
	// global lookup routine (the Cecil/Self arrangement).
	MechPIC Mechanism = iota
	// MechGlobal always runs the full lookup (no caching).
	MechGlobal
	// MechTables uses compressed multi-method dispatch tables, with a
	// per-site PIC only for version selection results.
	MechTables
)

var mechNames = [...]string{"PIC", "Global", "Tables"}

func (m Mechanism) String() string { return mechNames[m] }

// MechanismNames returns the valid dispatch-mechanism names — the
// single source of truth for CLI help text and error messages.
func MechanismNames() []string { return append([]string(nil), mechNames[:]...) }

// ParseMechanism resolves a mechanism name (as printed by String).
func ParseMechanism(s string) (Mechanism, error) {
	for i, n := range mechNames {
		if n == s {
			return Mechanism(i), nil
		}
	}
	return 0, fmt.Errorf("interp: unknown dispatch mechanism %q (valid: %s)", s, strings.Join(mechNames[:], ", "))
}

// Cycle cost model: abstract costs that mirror what the operations
// would cost in the paper's compiled code. Wall-clock interpreter time
// is also measurable, but the cycle counter is deterministic and
// machine-independent, so EXPERIMENTS.md reports it as "execution
// speed".
const (
	CostPrim          = 1
	CostBin           = 1
	CostFieldCached   = 2
	CostFieldLookup   = 6
	CostStaticCall    = 2
	CostClosureCall   = 4
	CostClosureMake   = 4
	CostMethodEntry   = 2
	CostPICHit        = 6
	CostFullLookup    = 30
	CostTableLookup   = 8
	CostVersionSelect = 8
	CostNewBase       = 4
)

// Counters aggregates the runtime event counts that Figures 5 and 6 are
// built from.
type Counters struct {
	Dispatches     uint64 // dynamically-dispatched sends executed
	PICHits        uint64
	PICMisses      uint64
	VersionSelects uint64 // run-time specialized-version selections on statically-bound calls
	StaticCalls    uint64
	ClosureCalls   uint64
	MethodEntries  uint64
	PrimOps        uint64
	Cycles         uint64 // abstract cost model total
}

// DynamicDispatches is the Figure-5 metric: dispatched sends plus
// version-selection tests (a hoisted dispatch is still a dispatch, just
// executed less often).
func (c Counters) DynamicDispatches() uint64 { return c.Dispatches + c.VersionSelects }

// Add accumulates other into c. Concurrent runs each keep their own
// Interp (and therefore their own Counters); aggregation into suite
// totals happens after the goroutines join, via this method, so no
// counter is ever shared between running interpreters.
func (c *Counters) Add(o Counters) {
	c.Dispatches += o.Dispatches
	c.PICHits += o.PICHits
	c.PICMisses += o.PICMisses
	c.VersionSelects += o.VersionSelects
	c.StaticCalls += o.StaticCalls
	c.ClosureCalls += o.ClosureCalls
	c.MethodEntries += o.MethodEntries
	c.PrimOps += o.PrimOps
	c.Cycles += o.Cycles
}

// Interp executes one compiled program. An Interp is single-goroutine
// state (PICs, counters, the invoked-version set); to run one Compiled
// program from several goroutines, give each its own Interp — the
// shared pieces underneath (Hierarchy.Lookup caches, eagerly-compiled
// version bodies, Compiled.SelectVersion) are safe for concurrent use.
// Lazy-compiling configurations (Cust-MM) additionally serialize body
// compilation through Compiled's internal lock, but sharing one lazy
// Compiled between concurrently-running interpreters is not supported.
type Interp struct {
	C *opt.Compiled
	H *hier.Hierarchy

	Out io.Writer // print/println target; nil discards

	Mech      Mechanism
	Counters  Counters
	Profile   *profile.CallGraph // non-nil: record (site, callee, weight) arcs
	StepLimit uint64             // 0 = unlimited; guards runaway programs

	// DepthLimit bounds the Mini-Cecil call depth (methods + closure
	// calls). eval is recursive, so unbounded guest recursion would
	// overflow the Go stack — a fatal, unrecoverable fault — before any
	// error boundary could contain it. 0 selects DefaultDepthLimit;
	// negative disables the guard (callers accept the overflow risk).
	// Exceeding the limit raises a positioned RuntimeError.
	DepthLimit int

	// Ctx, when non-nil, is polled every ctxCheckInterval steps: once it
	// is cancelled (deadline or explicit), the run aborts with a
	// RuntimeError. This is the per-cell wall-clock guard the experiment
	// harness threads through driver.RunOptions.
	Ctx context.Context

	// Trace, when non-nil, receives one line per dynamic dispatch and
	// version selection: which site dispatched to which method/version.
	// A debugging aid; enormous on real runs, so keep inputs small.
	Trace io.Writer

	// Obs, when non-nil, feeds the shared observability counters: PIC
	// and table behavior live, send/step totals flushed when Run ends.
	// Nil (the default) costs the hot path a few nil checks.
	Obs *Metrics

	Globals      []Value
	globalsReady []bool
	g            Guard // step/depth/cancellation limits, shared with the VM tier
	returning    bool  // a returnSignal unwind is in flight (see runBody)

	pics     []*dispatch.PIC // per call-site ID
	mmTables map[*hier.GF]*dispatch.MMTable

	invoked map[*ir.Version]bool
}

// New prepares an interpreter for a compiled program.
func New(c *opt.Compiled) *Interp {
	in := &Interp{
		C:        c,
		H:        c.Prog.H,
		Mech:     MechPIC,
		pics:     make([]*dispatch.PIC, len(c.Prog.Sites)),
		mmTables: map[*hier.GF]*dispatch.MMTable{},
		invoked:  map[*ir.Version]bool{},
	}
	return in
}

// InvokedVersions returns the number of distinct method versions that
// actually ran (Figure 6 right, for eager configurations; lazy
// configurations can also use Compiled.InvokedVersionCount).
func (in *Interp) InvokedVersions() int { return len(in.invoked) }

// fail raises a Mini-Cecil runtime error.
func fail(format string, args ...any) {
	panic(&RuntimeError{Msg: fmt.Sprintf(format, args...)})
}

// failAt raises a Mini-Cecil runtime error anchored at a source
// position, so runtime dispatch faults point at the same location as
// the static diagnostics of internal/check.
func failAt(pos lang.Pos, format string, args ...any) {
	panic(&RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (in *Interp) charge(c uint64) { in.Counters.Cycles += c }

// step, enter and leave delegate to the shared Guard (guard.go) so the
// tree tier and the bytecode VM enforce byte-identical limits.
func (in *Interp) step()             { in.g.Step() }
func (in *Interp) enter(pos lang.Pos) { in.g.Enter(pos) }
func (in *Interp) leave()            { in.g.Leave() }

// Guard exposes the interpreter's resource guard. The bytecode VM runs
// against the same instance, so both tiers share one step budget, one
// depth counter and one cancellation poll cadence.
func (in *Interp) Guard() *Guard { return &in.g }

// Steps returns the interpreter steps charged so far (both tiers).
func (in *Interp) Steps() uint64 { return in.g.Steps() }

// Run initializes globals and invokes main(); it returns main's value.
func (in *Interp) Run() (v Value, err error) {
	defer in.Obs.flushRun(in)
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				err = re
				return
			}
			if rs, ok := r.(returnSignal); ok {
				_ = rs
				in.returning = false
				err = &RuntimeError{Msg: "return from a method activation that already exited"}
				return
			}
			panic(r)
		}
	}()

	in.g.Arm(in.StepLimit, in.DepthLimit, in.Ctx)
	in.returning = false

	in.Globals = make([]Value, len(in.C.GlobalInits))
	in.globalsReady = make([]bool, len(in.C.GlobalInits))
	for i, init := range in.C.GlobalInits {
		in.Globals[i] = in.eval(init, nil, nil)
		in.globalsReady[i] = true
	}

	if in.C.Prog.Main == nil {
		return NilV, fmt.Errorf("interp: program has no main() method")
	}
	m, derr := in.H.Lookup(in.C.Prog.Main)
	if derr != nil {
		return NilV, derr
	}
	return in.invoke(in.C.SelectVersion(m, nil), nil, lang.Pos{}), nil
}

// invoke runs one method version with the given arguments. pos is the
// call-site position (zero for main), anchoring depth-limit faults.
func (in *Interp) invoke(v *ir.Version, args []Value, pos lang.Pos) Value {
	in.enter(pos)
	defer in.leave()
	body, err := in.C.Body(v)
	if err != nil {
		fail("compile: %v", err)
	}
	if in.Profile != nil && len(args) > 0 {
		in.Profile.RecordEntry(v.Method, in.classesOf(args, make([]*hier.Class, 0, len(args))))
	}
	if !in.invoked[v] {
		in.invoked[v] = true
	}
	in.Counters.MethodEntries++
	in.charge(CostMethodEntry)
	in.step()

	fr := &Frame{Slots: make([]Value, v.NumSlots)}
	copy(fr.Slots, args)
	act := &Activation{alive: true}
	return in.runBody(body, fr, act)
}

// callClosureBody runs a closure body one call-depth level down, so
// closure recursion is bounded by the same guard as method recursion.
func (in *Interp) callClosureBody(clo *Closure, nf *Frame, pos lang.Pos) Value {
	in.enter(pos)
	defer in.leave()
	return in.eval(clo.Code.Body, nf, clo.Act)
}

// runBody evaluates a method body, catching returns aimed at this
// activation. The in.returning flag gates the recover: only a
// returnSignal unwind is ever intercepted here, and recovering +
// re-panicking a fatal RuntimeError at every activation would make a
// deep-stack fault (e.g. the call-depth guard tripping at 10,000)
// quadratic in depth — each re-panic restarts the runtime's unwinder.
// Letting fatal panics pass through unrecovered keeps them one linear
// unwind to Run's boundary.
func (in *Interp) runBody(body ir.Node, fr *Frame, act *Activation) (result Value) {
	defer func() {
		act.alive = false
		if !in.returning {
			return
		}
		if r := recover(); r != nil {
			if rs, ok := r.(returnSignal); ok && rs.act == act {
				in.returning = false
				result = rs.val
				return
			}
			panic(r) // a return aimed at an outer activation: keep unwinding
		}
	}()
	return in.eval(body, fr, act)
}

// classesOf computes the runtime classes of a value slice.
func (in *Interp) classesOf(vals []Value, buf []*hier.Class) []*hier.Class {
	buf = buf[:0]
	for _, v := range vals {
		buf = append(buf, v.Class(in.H))
	}
	return buf
}

// dispatchSend performs dynamic dispatch for a send: lookup (via the
// configured mechanism) plus specialized version selection.
func (in *Interp) dispatchSend(site *ir.CallSite, args []Value) *ir.Version {
	classes := in.classesOf(args, make([]*hier.Class, 0, len(args)))
	return in.DispatchSendClasses(site, classes)
}

// DispatchSendClasses is the engine-shared core of dynamic dispatch:
// given the already-computed argument classes for a send, it runs the
// configured lookup mechanism, selects the specialized version, and
// charges exactly the counters the tree interpreter always has. The
// bytecode VM calls this with a reused scratch classes buffer — safe
// because every structure fed from here (PIC entries, the hierarchy's
// lookup cache, dispatch errors) copies or re-encodes the slice rather
// than retaining it.
func (in *Interp) DispatchSendClasses(site *ir.CallSite, classes []*hier.Class) *ir.Version {
	in.Counters.Dispatches++

	switch in.Mech {
	case MechPIC:
		pic := in.pics[site.ID]
		if pic == nil {
			pic = dispatch.NewPIC(0)
			if in.Obs != nil {
				pic.M = in.Obs.PIC
			}
			in.pics[site.ID] = pic
		}
		if t, ok := pic.Lookup(classes); ok {
			in.Counters.PICHits++
			in.charge(CostPICHit)
			in.record(site, t.Method)
			if in.Trace != nil {
				in.trace("pic-hit", site, t.Version)
			}
			return t.Version
		}
		in.Counters.PICMisses++
		in.charge(CostFullLookup)
		m, derr := in.H.Lookup(site.GF, classes...)
		if derr != nil {
			failAt(site.Pos, "%v", derr)
		}
		v := in.C.SelectVersion(m, classes)
		pic.Add(classes, dispatch.Target{Method: m, Version: v})
		in.record(site, m)
		if in.Trace != nil {
			in.trace("lookup", site, v)
		}
		return v

	case MechGlobal:
		in.charge(CostFullLookup)
		m, derr := in.H.Lookup(site.GF, classes...)
		if derr != nil {
			failAt(site.Pos, "%v", derr)
		}
		in.record(site, m)
		return in.C.SelectVersion(m, classes)

	case MechTables:
		in.charge(CostTableLookup)
		m := in.tableLookup(site, classes)
		in.record(site, m)
		return in.C.SelectVersion(m, classes)
	}
	panic("interp: unknown mechanism")
}

func (in *Interp) tableLookup(site *ir.CallSite, classes []*hier.Class) *hier.Method {
	if in.Obs != nil {
		in.Obs.TableLookups.Inc()
	}
	g := site.GF
	if len(g.DispatchedPositions()) == 0 {
		if len(g.Methods) == 1 {
			return g.Methods[0]
		}
	}
	t := in.mmTables[g]
	if t == nil {
		var err error
		t, err = dispatch.NewMMTable(in.H, g)
		if err != nil {
			fail("dispatch: %v", err)
		}
		in.mmTables[g] = t
	}
	m, amb := t.Lookup(classes)
	if m == nil {
		names := make([]string, len(classes))
		for i, c := range classes {
			names[i] = c.Name
		}
		if amb {
			failAt(site.Pos, "message ambiguous: %s(%s)", g.Name, strings.Join(names, ", "))
		}
		failAt(site.Pos, "message not understood: %s(%s)", g.Name, strings.Join(names, ", "))
	}
	return m
}

// checkFieldType enforces a declared field type on a store.
func (in *Interp) checkFieldType(cls *hier.Class, idx int, v Value) {
	dt := cls.Fields[idx].DeclType
	if dt == nil {
		return
	}
	if !v.Class(in.H).IsSubclassOf(dt) {
		fail("field %s.%s declared %s cannot hold %s",
			cls.Name, cls.Fields[idx].Name, dt.Name, v)
	}
}

// record adds one invocation to the profile call graph, if enabled.
func (in *Interp) record(site *ir.CallSite, callee *hier.Method) {
	if in.Profile != nil {
		in.Profile.Record(site, callee, 1)
	}
}

// trace logs one dispatch decision when tracing is on.
func (in *Interp) trace(kind string, site *ir.CallSite, v *ir.Version) {
	if in.Trace == nil {
		return
	}
	fmt.Fprintf(in.Trace, "%-8s site#%-4d %-14s -> %s\n", kind, site.ID, site.GF.Key(), v)
}

// eval evaluates one IR node. fr is the current frame (nil only in
// global initializers), act the enclosing method activation for
// returns.
func (in *Interp) eval(n ir.Node, fr *Frame, act *Activation) Value {
	switch n := n.(type) {
	case *ir.Const:
		switch n.Kind {
		case ir.KInt:
			return IntV(n.Int)
		case ir.KStr:
			return StrV(n.Str)
		case ir.KBool:
			return BoolV(n.Bool)
		default:
			return NilV
		}

	case *ir.Local:
		return fr.At(n.Depth, n.Slot)

	case *ir.SetLocal:
		v := in.eval(n.X, fr, act)
		fr.Set(n.Depth, n.Slot, v)
		return v

	case *ir.Global:
		if !in.globalsReady[n.Slot] {
			fail("global %s read before its initializer has run", n.Name)
		}
		return in.Globals[n.Slot]

	case *ir.SetGlobal:
		v := in.eval(n.X, fr, act)
		in.Globals[n.Slot] = v
		in.globalsReady[n.Slot] = true
		return v

	case *ir.GetField:
		obj := in.eval(n.Obj, fr, act)
		if obj.K != KObj {
			fail("field %q read on non-object %s", n.Name, obj)
		}
		idx := n.Slot
		if idx < 0 {
			in.charge(CostFieldLookup)
			idx = obj.O.Class.FieldIndex(n.Name)
			if idx < 0 {
				fail("class %s has no field %q", obj.O.Class.Name, n.Name)
			}
		} else {
			in.charge(CostFieldCached)
		}
		return obj.O.Fields[idx]

	case *ir.SetField:
		obj := in.eval(n.Obj, fr, act)
		v := in.eval(n.X, fr, act)
		if obj.K != KObj {
			fail("field %q written on non-object %s", n.Name, obj)
		}
		idx := n.Slot
		if idx < 0 {
			in.charge(CostFieldLookup)
			idx = obj.O.Class.FieldIndex(n.Name)
			if idx < 0 {
				fail("class %s has no field %q", obj.O.Class.Name, n.Name)
			}
		} else {
			in.charge(CostFieldCached)
		}
		in.checkFieldType(obj.O.Class, idx, v)
		obj.O.Fields[idx] = v
		return v

	case *ir.Seq:
		var v Value = NilV
		for _, c := range n.Nodes {
			v = in.eval(c, fr, act)
		}
		return v

	case *ir.If:
		cond := in.eval(n.Cond, fr, act)
		b, ok := cond.Truthy()
		if !ok {
			fail("if condition is not a boolean: %s", cond)
		}
		in.charge(CostBin)
		if b {
			return in.eval(n.Then, fr, act)
		}
		if n.Else != nil {
			return in.eval(n.Else, fr, act)
		}
		return NilV

	case *ir.While:
		for {
			in.step()
			cond := in.eval(n.Cond, fr, act)
			b, ok := cond.Truthy()
			if !ok {
				fail("while condition is not a boolean: %s", cond)
			}
			in.charge(CostBin)
			if !b {
				return NilV
			}
			in.eval(n.Body, fr, act)
		}

	case *ir.Return:
		var v Value = NilV
		if n.X != nil {
			v = in.eval(n.X, fr, act)
		}
		if act == nil || !act.alive {
			fail("return from a method activation that already exited")
		}
		in.returning = true
		panic(returnSignal{act: act, val: v})

	case *ir.New:
		cls := n.Class
		in.charge(CostNewBase + uint64(len(cls.Fields)))
		obj := &Object{Class: cls, Fields: make([]Value, len(cls.Fields))}
		for i := range obj.Fields {
			obj.Fields[i] = NilV
		}
		for i, arg := range n.Args {
			obj.Fields[i] = in.eval(arg, fr, act)
		}
		inits := in.C.FieldInits[cls]
		for i := len(n.Args); i < len(cls.Fields); i++ {
			if i < len(inits) && inits[i] != nil {
				obj.Fields[i] = in.eval(inits[i], nil, nil)
			}
		}
		// Declared field types are enforced at construction: class
		// hierarchy analysis relies on every store conforming.
		for i := range cls.Fields {
			in.checkFieldType(cls, i, obj.Fields[i])
		}
		return Value{K: KObj, O: obj}

	case *ir.MakeClosure:
		in.charge(CostClosureMake)
		return Value{K: KClosure, C: &Closure{Code: n.Fn, Frame: fr, Act: act}}

	case *ir.CallClosure:
		fn := in.eval(n.Fn, fr, act)
		if fn.K != KClosure {
			failAt(n.Pos, "calling a non-closure value %s", fn)
		}
		clo := fn.C
		if len(n.Args) != clo.Code.NumParams {
			failAt(n.Pos, "closure expects %d arguments, got %d", clo.Code.NumParams, len(n.Args))
		}
		nf := &Frame{Slots: make([]Value, clo.Code.NumSlots), Parent: clo.Frame}
		for i, arg := range n.Args {
			nf.Slots[i] = in.eval(arg, fr, act)
		}
		in.Counters.ClosureCalls++
		in.charge(CostClosureCall)
		in.step()
		return in.callClosureBody(clo, nf, n.Pos)

	case *ir.Send:
		args := make([]Value, len(n.Args))
		for i, arg := range n.Args {
			args[i] = in.eval(arg, fr, act)
		}
		v := in.dispatchSend(n.Site, args)
		return in.invoke(v, args, n.Site.Pos)

	case *ir.StaticCall:
		args := make([]Value, len(n.Args))
		for i, arg := range n.Args {
			args[i] = in.eval(arg, fr, act)
		}
		in.Counters.StaticCalls++
		in.charge(CostStaticCall)
		in.record(n.Site, n.Target.Method)
		return in.invoke(n.Target, args, n.Site.Pos)

	case *ir.VersionSelect:
		args := make([]Value, len(n.Args))
		for i, arg := range n.Args {
			args[i] = in.eval(arg, fr, act)
		}
		in.Counters.VersionSelects++
		in.charge(CostVersionSelect)
		in.record(n.Site, n.Method)
		classes := in.classesOf(args, make([]*hier.Class, 0, len(args)))
		v := in.C.SelectVersion(n.Method, classes)
		in.trace("vselect", n.Site, v)
		return in.invoke(v, args, n.Site.Pos)

	case *ir.Bin:
		l := in.eval(n.L, fr, act)
		r := in.eval(n.R, fr, act)
		in.Counters.PrimOps++
		in.charge(CostBin)
		return evalBin(n.Op, l, r)

	case *ir.Un:
		x := in.eval(n.X, fr, act)
		in.Counters.PrimOps++
		in.charge(CostBin)
		switch n.Op {
		case ir.OpNot:
			b, ok := x.Truthy()
			if !ok {
				fail("'!' on non-boolean %s", x)
			}
			return BoolV(!b)
		default:
			if x.K != KInt {
				fail("unary '-' on non-integer %s", x)
			}
			return IntV(-x.I)
		}

	case *ir.PrimCall:
		args := make([]Value, len(n.Args))
		for i, arg := range n.Args {
			args[i] = in.eval(arg, fr, act)
		}
		in.Counters.PrimOps++
		in.charge(CostPrim)
		return in.evalPrim(n.Prim, args)

	case *ir.And:
		l := in.eval(n.L, fr, act)
		b, ok := l.Truthy()
		if !ok {
			fail("'&&' on non-boolean %s", l)
		}
		in.charge(CostBin)
		if !b {
			return FalseV
		}
		r := in.eval(n.R, fr, act)
		if _, ok := r.Truthy(); !ok {
			fail("'&&' on non-boolean %s", r)
		}
		return r

	case *ir.Or:
		l := in.eval(n.L, fr, act)
		b, ok := l.Truthy()
		if !ok {
			fail("'||' on non-boolean %s", l)
		}
		in.charge(CostBin)
		if b {
			return TrueV
		}
		r := in.eval(n.R, fr, act)
		if _, ok := r.Truthy(); !ok {
			fail("'||' on non-boolean %s", r)
		}
		return r
	}
	// An unknown node is an interpreter bug, but it must surface as a
	// positioned, recoverable RuntimeError (anchored at the innermost
	// call site) rather than a bare Go panic string: the pipeline
	// boundary reports file:line:col and the rest of a grid keeps going.
	failAt(in.g.callPos, "internal error: unknown IR node %T", n)
	panic("unreachable")
}

func evalBin(op ir.BinOp, l, r Value) Value {
	switch op {
	case ir.OpEQ:
		return BoolV(l.Equal(r))
	case ir.OpNE:
		return BoolV(!l.Equal(r))
	case ir.OpAdd:
		if l.K == KInt && r.K == KInt {
			return IntV(l.I + r.I)
		}
		if l.K == KStr && r.K == KStr {
			return StrV(l.S + r.S)
		}
		fail("'+' on %s and %s", l, r)
	case ir.OpLT, ir.OpLE, ir.OpGT, ir.OpGE:
		if l.K == KStr && r.K == KStr {
			switch op {
			case ir.OpLT:
				return BoolV(l.S < r.S)
			case ir.OpLE:
				return BoolV(l.S <= r.S)
			case ir.OpGT:
				return BoolV(l.S > r.S)
			default:
				return BoolV(l.S >= r.S)
			}
		}
		if l.K != KInt || r.K != KInt {
			fail("comparison on %s and %s", l, r)
		}
		switch op {
		case ir.OpLT:
			return BoolV(l.I < r.I)
		case ir.OpLE:
			return BoolV(l.I <= r.I)
		case ir.OpGT:
			return BoolV(l.I > r.I)
		default:
			return BoolV(l.I >= r.I)
		}
	}
	// Remaining arithmetic requires integers.
	if l.K != KInt || r.K != KInt {
		fail("'%s' on %s and %s", op, l, r)
	}
	switch op {
	case ir.OpSub:
		return IntV(l.I - r.I)
	case ir.OpMul:
		return IntV(l.I * r.I)
	case ir.OpDiv:
		if r.I == 0 {
			fail("division by zero")
		}
		return IntV(l.I / r.I)
	case ir.OpMod:
		if r.I == 0 {
			fail("modulo by zero")
		}
		return IntV(l.I % r.I)
	}
	panic("interp: unknown binary op")
}
