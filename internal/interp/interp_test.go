package interp

import (
	"bytes"
	"strings"
	"testing"

	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
)

// run executes a program under Base and returns (value string, output).
func run(t *testing.T, src string) (string, string) {
	t.Helper()
	v, out, err := tryRun(t, src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, out
}

func tryRun(t *testing.T, src string) (string, string, error) {
	t.Helper()
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	in := New(c)
	var buf bytes.Buffer
	in.Out = &buf
	in.StepLimit = 20_000_000
	val, rerr := in.Run()
	if rerr != nil {
		return "", buf.String(), rerr
	}
	return val.String(), buf.String(), nil
}

func wantErr(t *testing.T, src, sub string) {
	t.Helper()
	_, _, err := tryRun(t, src)
	if err == nil {
		t.Fatalf("expected runtime error containing %q", sub)
	}
	if !strings.Contains(err.Error(), sub) {
		t.Fatalf("error %q does not contain %q", err, sub)
	}
}

func TestArithmeticAndComparison(t *testing.T) {
	cases := []struct{ expr, want string }{
		{"1 + 2 * 3", "7"},
		{"10 / 3", "3"},
		{"10 % 3", "1"},
		{"-7 / 2", "-3"},
		{"1 < 2", "true"},
		{"2 <= 1", "false"},
		{"3 == 3", "true"},
		{"3 != 3", "false"},
		{`"abc" + "def"`, "abcdef"},
		{`"abc" < "abd"`, "true"},
		{`"x" == "x"`, "true"},
		{"!(1 == 2)", "true"},
		{"-(5)", "-5"},
		{"true && false", "false"},
		{"false || true", "true"},
		{"nil == nil", "true"},
	}
	for _, c := range cases {
		// Defeat the compile-time folder with an opaque global so the
		// interpreter's own operators are exercised too.
		got, _ := run(t, "method main() { "+c.expr+"; }")
		if got != c.want {
			t.Errorf("%s = %s, want %s", c.expr, got, c.want)
		}
	}
}

func TestRuntimeBinDynamicPath(t *testing.T) {
	// Values flow through an identity method so the optimizer cannot
	// fold; the interpreter's evalBin runs.
	src := `
method id(x) { x; }
method main() {
  var a := id(6);
  var b := id(7);
  println(str(a * b));
  println(str(id("a") + id("b")));
  println(str(id(3) < id(4)));
  a * b;
}
`
	v, out := run(t, src)
	if v != "42" || out != "42\nab\ntrue\n" {
		t.Fatalf("v=%q out=%q", v, out)
	}
}

func TestShortCircuitEffects(t *testing.T) {
	src := `
var hits := 0;
method bump() { hits := hits + 1; true; }
method main() {
  false && bump();
  true || bump();
  true && bump();
  hits;
}
`
	if v, _ := run(t, src); v != "1" {
		t.Fatalf("hits = %s", v)
	}
}

func TestWhileAndAssignment(t *testing.T) {
	src := `
method main() {
  var i := 0;
  var sum := 0;
  while i < 10 { sum := sum + i; i := i + 1; }
  sum;
}
`
	if v, _ := run(t, src); v != "45" {
		t.Fatalf("sum = %s", v)
	}
}

func TestObjectsAndFields(t *testing.T) {
	src := `
class P { field x : Int := 0; field y : Int := 9; }
method main() {
  var p := new P(3);
  p.y := p.y + p.x;
  str(p.x) + "," + str(p.y);
}
`
	if v, _ := run(t, src); v != "3,12" {
		t.Fatalf("v = %s", v)
	}
}

func TestFieldTypeEnforcement(t *testing.T) {
	wantErr(t, `
class T
class H { field t : T := nil; }
method main() { new H(nil); }
`, "declared T cannot hold nil")

	wantErr(t, `
class T
class H { field t : T := nil; }
method main() {
  var h := new H(new T());
  h.t := 5;
}
`, "declared T cannot hold 5")

	// Conforming stores are fine, including subclasses.
	src := `
class T
class S isa T
class H { field t : T := nil; }
method main() {
  var h := new H(new T());
  h.t := new S();
  classname(h.t);
}
`
	if v, _ := run(t, src); v != "S" {
		t.Fatalf("v = %s", v)
	}
}

func TestClosuresCaptureByReference(t *testing.T) {
	src := `
method main() {
  var n := 0;
  var inc := fn() { n := n + 1; };
  inc();
  inc();
  inc();
  n;
}
`
	if v, _ := run(t, src); v != "3" {
		t.Fatalf("n = %s", v)
	}
}

func TestNestedClosureDepths(t *testing.T) {
	src := `
method adder(x) {
  fn(y) { fn(z) { x + y + z; }; };
}
method main() {
  var f := adder(100);
  var g := f(20);
  g(3);
}
`
	if v, _ := run(t, src); v != "123" {
		t.Fatalf("v = %s", v)
	}
}

func TestNonLocalReturn(t *testing.T) {
	src := `
method each(arr, body) {
  var i := 0;
  while i < alen(arr) { body(aget(arr, i)); i := i + 1; }
  nil;
}
method find3(arr) {
  each(arr, fn(x) { if x == 3 { return "found"; } });
  "missing";
}
method main() {
  var a := newarray(5);
  aput(a, 2, 3);
  find3(a) + "/" + find3(newarray(2));
}
`
	if v, _ := run(t, src); v != "found/missing" {
		t.Fatalf("v = %s", v)
	}
}

func TestNonLocalReturnAfterMethodExitFails(t *testing.T) {
	wantErr(t, `
var leak := nil;
method maker() {
  leak := fn() { return 1; };
  nil;
}
method main() {
  maker();
  leak();
}
`, "already exited")
}

func TestDispatchErrors(t *testing.T) {
	wantErr(t, `
class A
method f(x@A) { 1; }
method main() { f(3); }
`, "not understood")

	wantErr(t, `
class A
class B isa A
class C isa A
class D isa B, C
method g(x@B) { 1; }
method g(x@C) { 2; }
method main() { g(new D()); }
`, "ambiguous")
}

func TestPrimitives(t *testing.T) {
	src := `
method main() {
  var a := newarray(3);
  aput(a, 0, "x");
  aput(a, 1, 42);
  var s := "hello";
  println(str(alen(a)) + " " + aget(a, 0) + " " + str(aget(a, 1)));
  println(str(strlen(s)) + " " + substr(s, 1, 3) + " " + charat(s, 4));
  println(str(ord("A")) + " " + chr(66));
  println(classname(a) + " " + classname(s) + " " + classname(nil) + " " + classname(fn() { 1; }));
  println(str(same(a, a)) + " " + str(same(a, newarray(3))));
  0;
}
`
	_, out := run(t, src)
	want := "3 x 42\n5 el o\n65 B\nArray String Nil Closure\ntrue false\n"
	if out != want {
		t.Fatalf("out = %q, want %q", out, want)
	}
}

func TestPrimitiveErrors(t *testing.T) {
	cases := []struct{ src, sub string }{
		{`method main() { aget(newarray(2), 5); }`, "out of range"},
		{`method main() { aget(newarray(2), -1); }`, "out of range"},
		{`method main() { aput(newarray(1), 3, 0); }`, "out of range"},
		{`method main() { newarray(-1); }`, "non-negative"},
		{`method main() { substr("abc", 2, 9); }`, "out of range"},
		{`method main() { charat("abc", 7); }`, "out of range"},
		{`method main() { ord(""); }`, "non-empty"},
		{`method main() { chr(999); }`, "[0, 255]"},
		{`method main() { abort("boom"); }`, "boom"},
		{`method id(x) { x; } method main() { id(1) / id(0); }`, "division by zero"},
		{`method id(x) { x; } method main() { id(1) % id(0); }`, "modulo by zero"},
		{`method id(x) { x; } method main() { id(1) + id("s"); }`, "'+'"},
		{`method id(x) { x; } method main() { if id(3) { 1; } }`, "not a boolean"},
		{`method id(x) { x; } method main() { id(nil)(); }`, "non-closure"},
		{`method main() { (fn(x) { x; })(); }`, "expects 1 arguments"},
		{`class P method id(x) { x; } method main() { id(new P()).zzz; }`, "no field"},
		{`method id(x) { x; } method main() { id(3).zzz; }`, "non-object"},
	}
	for _, c := range cases {
		_, _, err := tryRun(t, c.src)
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("src %q: err = %v, want %q", c.src, err, c.sub)
		}
	}
}

func TestGlobalReadBeforeInit(t *testing.T) {
	wantErr(t, `
var a := helper();
var b := 5;
method helper() { b + 1; }
method main() { a; }
`, "before its initializer")
}

func TestValueStringRendering(t *testing.T) {
	src := `
class P { field a := nil; field b := nil; }
method main() {
  var p := new P(1, "two");
  var q := new P(p, nil);
  var arr := newarray(2);
  aput(arr, 0, 7);
  aput(arr, 1, arr);
  println(str(p));
  println(str(q));
  println(str(arr));
  0;
}
`
	_, out := run(t, src)
	want := "P(1, two)\nP(P(...), nil)\n[7, ...]\n"
	if out != want {
		t.Fatalf("out = %q", out)
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := ir.Lower(lang.MustParse(`method main() { while true { 1; } }`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	in := New(c)
	in.StepLimit = 1000
	if _, err := in.Run(); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestCountersAndPIC(t *testing.T) {
	// Instances flow through an array so Base cannot statically bind
	// anything: every call and every m is a real dynamic dispatch.
	src := `
class A
class B isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method call(x@A) { x.m(); }
method main() {
  var objs := newarray(2);
  aput(objs, 0, new A());
  aput(objs, 1, new B());
  var i := 0;
  while i < 20 { call(aget(objs, i % 2)); i := i + 1; }
  0;
}
`
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	in := New(c)
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	ct := in.Counters
	// call is dispatched 20×, m is dispatched 20×.
	if ct.Dispatches != 40 {
		t.Errorf("Dispatches = %d, want 40", ct.Dispatches)
	}
	// Two sites, m's sees A and B (2 misses), call's sees A and B (2
	// misses): 4 misses, 36 hits.
	if ct.PICMisses != 4 || ct.PICHits != 36 {
		t.Errorf("PIC hits/misses = %d/%d, want 36/4", ct.PICHits, ct.PICMisses)
	}
	if ct.Cycles == 0 || ct.MethodEntries == 0 {
		t.Errorf("counters empty: %+v", ct)
	}
	if ct.DynamicDispatches() != ct.Dispatches+ct.VersionSelects {
		t.Error("DynamicDispatches arithmetic wrong")
	}
	if in.InvokedVersions() < 4 {
		t.Errorf("InvokedVersions = %d", in.InvokedVersions())
	}
}

func TestMechanismsEquivalentOnDispatchHeavyProgram(t *testing.T) {
	src := `
class A
class B isa A
class C isa B
method m(x@A, y@A) { 1; }
method m(x@B, y@B) { 2; }
method m(x@A, y@C) { 3; }
method m(x@B, y@C) { 4; }
method pick(k) {
  if k % 3 == 0 { return new A(); }
  if k % 3 == 1 { return new B(); }
  new C();
}
method main() {
  var total := 0;
  var i := 0;
  while i < 30 {
    total := total + m(pick(i), pick(i + 1));
    i := i + 1;
  }
  total;
}
`
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, mech := range []Mechanism{MechPIC, MechGlobal, MechTables} {
		in := New(c)
		in.Mech = mech
		v, err := in.Run()
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		got = append(got, v.String())
	}
	if got[0] != got[1] || got[1] != got[2] {
		t.Fatalf("mechanisms disagree: %v", got)
	}
}

func TestMechanismStrings(t *testing.T) {
	if MechPIC.String() != "PIC" || MechGlobal.String() != "Global" || MechTables.String() != "Tables" {
		t.Error("mechanism names wrong")
	}
}

func TestValueEqualAcrossKinds(t *testing.T) {
	if IntV(1).Equal(BoolV(true)) {
		t.Error("1 == true")
	}
	if !StrV("a").Equal(StrV("a")) || StrV("a").Equal(StrV("b")) {
		t.Error("string equality wrong")
	}
	o1 := Value{K: KObj, O: &Object{}}
	o2 := Value{K: KObj, O: &Object{}}
	if o1.Equal(o2) || !o1.Equal(o1) {
		t.Error("object identity equality wrong")
	}
	if !NilV.Equal(NilV) {
		t.Error("nil != nil")
	}
}

func TestNoMainError(t *testing.T) {
	prog, err := ir.Lower(lang.MustParse(`method notmain() { 1; }`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(c).Run(); err == nil || !strings.Contains(err.Error(), "no main") {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiMethodDoubleDispatchProgram(t *testing.T) {
	// The paper's BitSet-style double specialization: the (BitSet,
	// BitSet) pair takes the fast path, everything else the generic.
	src := `
class Set
class ListSet isa Set
class BitSet isa Set
method combine(a@Set, b@Set) { "generic"; }
method combine(a@BitSet, b@BitSet) { "fast"; }
method main() {
  combine(new BitSet(), new BitSet()) + "/" +
  combine(new BitSet(), new ListSet()) + "/" +
  combine(new ListSet(), new BitSet());
}
`
	if v, _ := run(t, src); v != "fast/generic/generic" {
		t.Fatalf("v = %s", v)
	}
}
