package interp

import (
	"selspec/internal/dispatch"
	"selspec/internal/obs"
)

// Metrics is the interpreter's observability hook: shared counters for
// the runtime events the paper's figures are built from — sends
// executed (dynamic binds), statically-bound calls, run-time version
// selections, interpreter steps — plus the dispatch-layer counters the
// interpreter's PICs and multi-method tables feed live.
//
// The send/step totals are flushed from Interp.Counters when Run
// finishes (one Add per counter per run), so an enabled registry adds
// zero work to the per-send hot path; only the PIC and table counters
// tick live, because call-site-level cache behavior is what /metrics
// consumers watch converge. A nil *Metrics (the default) disables
// everything.
type Metrics struct {
	Sends          *obs.Counter // dynamically-dispatched sends executed
	StaticCalls    *obs.Counter // statically-bound calls executed
	VersionSelects *obs.Counter // run-time specialized-version selections
	MethodEntries  *obs.Counter
	Steps          *obs.Counter
	TableLookups   *obs.Counter // MM-table dispatches (MechTables fallback path)

	PIC dispatch.PICMetrics // shared by every PIC this interpreter creates
}

// NewMetrics registers the interpreter + dispatch counters in r.
// Idempotent across calls with the same registry (every run of a
// service shares one set of series). Returns nil on the nil registry.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Sends:          r.Counter("selspec_interp_sends_total"),
		StaticCalls:    r.Counter("selspec_interp_static_calls_total"),
		VersionSelects: r.Counter("selspec_interp_version_selects_total"),
		MethodEntries:  r.Counter("selspec_interp_method_entries_total"),
		Steps:          r.Counter("selspec_interp_steps_total"),
		TableLookups:   r.Counter("selspec_dispatch_table_lookups_total"),
		PIC:            dispatch.NewPICMetrics(r),
	}
}

// flushRun accumulates one finished run's counters. Called from Run's
// exit path (success or contained error), never concurrently for one
// Interp.
func (m *Metrics) flushRun(in *Interp) {
	if m == nil {
		return
	}
	c := in.Counters
	m.Sends.Add(c.Dispatches)
	m.StaticCalls.Add(c.StaticCalls)
	m.VersionSelects.Add(c.VersionSelects)
	m.MethodEntries.Add(c.MethodEntries)
	m.Steps.Add(in.g.steps)
}
