package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"selspec/internal/opt"
	"selspec/internal/pipeline"
	"selspec/internal/specialize"
)

// poisonedSuite runs the grid with the pipeline fault-injection seam
// armed to panic for exactly one cell (InstSched under CHA, at its
// harness-level guard): the acceptance test for graceful degradation —
// a deliberately crashing cell must produce one recorded Failure plus
// complete, unchanged results for every other cell. Shared by the
// assertions below; run with -race in CI, so it also exercises the
// worker pool's containment under the race detector.
var poisoned *Suite

func poisonedSuite(t *testing.T) *Suite {
	t.Helper()
	if poisoned != nil {
		return poisoned
	}
	inj := pipeline.NewInjector(1, pipeline.FaultRule{
		Stage: pipeline.StageHarness, Program: "InstSched", Config: "CHA",
		Action: pipeline.FaultPanic, Message: "injected: poisoned cell",
	})
	defer pipeline.ArmFaults(inj)()
	s, err := RunSuite(Options{
		Quick:      true,
		StepLimit:  500_000_000,
		SpecParams: specialize.Params{Threshold: specialize.DefaultThreshold},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := inj.Fired(pipeline.StageHarness, "InstSched", "CHA"); n != 1 {
		t.Fatalf("fault fired %d times, want exactly once", n)
	}
	poisoned = s
	return s
}

func TestPoisonedCellIsContained(t *testing.T) {
	s := poisonedSuite(t)
	if len(s.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly the injected one", s.Failures)
	}
	f := s.Failures[0]
	if f.Benchmark != "InstSched" || f.Config != "CHA" {
		t.Errorf("failure cell = %s/%s", f.Benchmark, f.Config)
	}
	if f.Stage != "harness" {
		t.Errorf("stage = %q, want harness (the seam fires at the cell's harness guard)", f.Stage)
	}
	if !strings.Contains(f.Error, "injected: poisoned cell") {
		t.Errorf("error = %q", f.Error)
	}
	if s.Results["InstSched"][opt.CHA] != nil {
		t.Error("poisoned cell has a result")
	}
	if !s.Failed() {
		t.Error("Failed() = false")
	}
}

func TestPoisonedSuiteOtherCellsUnchanged(t *testing.T) {
	clean := quickSuite(t)
	s := poisonedSuite(t)
	checked := 0
	for _, name := range s.Names {
		for _, cfg := range opt.Configs() {
			if name == "InstSched" && cfg == opt.CHA {
				continue
			}
			got, want := s.Results[name][cfg], clean.Results[name][cfg]
			if got == nil {
				t.Errorf("%s/%v: missing result", name, cfg)
				continue
			}
			// Wall time differs run to run; every deterministic metric
			// must match the clean grid exactly.
			if got.Cycles != want.Cycles || got.Dispatches != want.Dispatches ||
				got.VersionSelects != want.VersionSelects ||
				got.StaticVersions != want.StaticVersions ||
				got.InvokedVersions != want.InvokedVersions ||
				got.IRNodes != want.IRNodes {
				t.Errorf("%s/%v diverged from clean run:\n got %+v\nwant %+v", name, cfg, got, want)
			}
			checked++
		}
	}
	if checked != len(s.Names)*len(opt.Configs())-1 {
		t.Errorf("checked %d cells", checked)
	}
}

func TestPoisonedSuiteRenders(t *testing.T) {
	s := poisonedSuite(t)
	var b bytes.Buffer
	s.Report(&b) // must not panic on the nil cell
	if !strings.Contains(b.String(), "FAIL") {
		t.Error("report does not mark the failed cell")
	}
	b.Reset()
	if err := s.CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if want := 1 + len(s.Names)*len(opt.Configs()) - 1; len(lines) != want {
		t.Errorf("CSV rows = %d, want %d (failed cell skipped)", len(lines), want)
	}
	b.Reset()
	s.FailureSummary(&b)
	if !strings.Contains(b.String(), "1 contained failure") ||
		!strings.Contains(b.String(), "InstSched/CHA") {
		t.Errorf("summary = %q", b.String())
	}
}

func TestPoisonedSuiteJSON(t *testing.T) {
	s := poisonedSuite(t)
	var b bytes.Buffer
	if err := s.WriteJSON(&b, time.Second, true, 1); err != nil {
		t.Fatal(err)
	}
	var tr JSONTrajectory
	if err := json.Unmarshal(b.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Failures) != 1 || tr.Failures[0].Benchmark != "InstSched" {
		t.Errorf("failures = %+v", tr.Failures)
	}
	if want := len(s.Names)*len(opt.Configs()) - 1; len(tr.Results) != want {
		t.Errorf("results = %d, want %d", len(tr.Results), want)
	}
	for _, r := range tr.Results {
		if r.Benchmark == "InstSched" && r.Config == "CHA" {
			t.Error("failed cell leaked into results")
		}
	}
}

// TestCleanSuiteJSONFailuresPresent: the failures array is present and
// empty (not null) on a clean run, so downstream diffing never needs a
// null check.
func TestCleanSuiteJSONFailuresPresent(t *testing.T) {
	s := quickSuite(t)
	var b bytes.Buffer
	if err := s.WriteJSON(&b, time.Second, true, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"failures": []`) {
		t.Error("clean-run JSON lacks an empty failures array")
	}
}

// TestSecondCellFaultContained: a seam-injected panic in a different
// cell (Richards under Base) is likewise contained per cell.
func TestSecondCellFaultContained(t *testing.T) {
	inj := pipeline.NewInjector(1, pipeline.FaultRule{
		Stage: pipeline.StageHarness, Program: "Richards", Config: "Base",
		Action: pipeline.FaultPanic, Message: "injected: poisoned cell",
	})
	defer pipeline.ArmFaults(inj)()
	s, err := RunSuite(Options{
		Quick:      true,
		StepLimit:  500_000_000,
		SpecParams: specialize.Params{Threshold: specialize.DefaultThreshold},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Base feeds Selective's normalization for Richards only through
	// norm(); the three other benchmarks must be fully intact.
	if len(s.Failures) == 0 {
		t.Fatal("no failure recorded")
	}
	for _, f := range s.Failures {
		if f.Benchmark != "Richards" {
			t.Errorf("unexpected failure %v", f)
		}
	}
	for _, name := range []string{"InstSched", "Typechecker", "Compiler"} {
		for _, cfg := range opt.Configs() {
			if s.Results[name][cfg] == nil {
				t.Errorf("%s/%v: missing result", name, cfg)
			}
		}
	}
}
