package bench

import (
	"bytes"
	"strings"
	"testing"

	"selspec/internal/opt"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

// quickSuite runs the full matrix on training-size inputs (fast) and is
// shared by the rendering tests.
var cachedSuite *Suite

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	if cachedSuite != nil {
		return cachedSuite
	}
	s, err := RunSuite(Options{
		Quick:      true,
		StepLimit:  500_000_000,
		SpecParams: specialize.Params{Threshold: specialize.DefaultThreshold},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedSuite = s
	return s
}

func TestRunSuiteCompleteMatrix(t *testing.T) {
	s := quickSuite(t)
	if len(s.Names) != 4 {
		t.Fatalf("suite names = %v", s.Names)
	}
	for _, name := range s.Names {
		for _, cfg := range opt.Configs() {
			r := s.Results[name][cfg]
			if r == nil {
				t.Fatalf("missing result %s/%v", name, cfg)
			}
			if r.Dispatches == 0 && r.VersionSelects == 0 {
				t.Errorf("%s/%v reports no dispatches", name, cfg)
			}
			if r.Cycles == 0 || r.StaticVersions == 0 || r.InvokedVersions == 0 {
				t.Errorf("%s/%v has empty metrics: %+v", name, cfg, r)
			}
		}
		if s.Results[name][opt.Selective].SpecStats == nil {
			t.Errorf("%s: Selective lacks SpecStats", name)
		}
	}
}

func TestTablesRender(t *testing.T) {
	var b bytes.Buffer
	Table1(&b)
	if !strings.Contains(b.String(), "Cust-MM") || !strings.Contains(b.String(), "Selective") {
		t.Errorf("Table1 output incomplete:\n%s", b.String())
	}
	b.Reset()
	Table2(&b)
	out := b.String()
	for _, want := range []string{"Richards", "InstSched", "Typechecker", "Compiler", "37500"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	s := quickSuite(t)
	var b bytes.Buffer
	s.Report(&b)
	out := b.String()
	for _, want := range []string{
		"Figure 5 (left)", "Figure 5 (right)",
		"Figure 6 (left)", "Figure 6 (right)",
		"Dynamic dispatches eliminated",
		"Specialization statistics",
		"Headline comparison",
		"Richards", "Selective",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFigureNormalization(t *testing.T) {
	s := quickSuite(t)
	dispatches := func(r *Result) float64 { return float64(r.DynamicDispatches()) }
	for _, name := range s.Names {
		// Base always normalizes to exactly 1.
		if v, ok := s.norm(name, opt.Base, dispatches); !ok || v != 1 {
			t.Errorf("%s: Base normalizes to %f (ok=%v)", name, v, ok)
		}
		// Selective eliminates dispatches.
		if v, ok := s.norm(name, opt.Selective, dispatches); !ok || v >= 1 {
			t.Errorf("%s: Selective dispatch ratio %f >= 1 (ok=%v)", name, v, ok)
		}
	}
}

func TestCSVExport(t *testing.T) {
	s := quickSuite(t)
	var b bytes.Buffer
	if err := s.CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// Header + 4 benchmarks × 5 configs.
	if len(lines) != 1+4*5 {
		t.Fatalf("CSV rows = %d, want 21", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,config,engine,dispatches") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Richards,Base,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestRunSingle(t *testing.T) {
	b, _ := programs.ByName("Richards")
	r, err := Run(b, opt.CHA, Options{Quick: true, StepLimit: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "Richards" || r.Config != opt.CHA {
		t.Fatalf("result identity wrong: %+v", r)
	}
	if r.Wall <= 0 {
		t.Error("wall time not measured")
	}
}
