// Package bench is the experiment harness: it reruns the paper's
// evaluation (Section 4) — Table 1, Table 2, Figure 5 (dynamic
// dispatches and execution speed, normalized to Base) and Figure 6
// (compiled routines, statically and under dynamic compilation) — over
// the four embedded benchmarks, plus the §3.2 specialization-count
// statistics and the headline improvement numbers.
package bench

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/obs"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

// Result is one (benchmark, configuration) measurement.
type Result struct {
	Benchmark string
	Config    opt.Config

	Dispatches     uint64 // dynamically dispatched sends
	VersionSelects uint64
	Cycles         uint64 // abstract cost model ("execution speed")
	Steps          uint64 // interpreter steps charged (engine-independent)
	Wall           time.Duration
	Engine         driver.Engine // tier that actually ran (after any fallback)

	StaticVersions  int // routines a static compile produces (Fig 6 left)
	InvokedVersions int // routines invoked at run time (Fig 6 right)
	IRNodes         int // compiled code size in IR nodes

	SpecStats *specialize.Stats // Selective only
}

// DynamicDispatches is the Figure 5 metric.
func (r *Result) DynamicDispatches() uint64 { return r.Dispatches + r.VersionSelects }

// StepsPerSec is the engine-comparable throughput metric of the perf
// trajectory: interpreter steps are charged identically by both
// execution tiers (the differential suites enforce it), so the ratio of
// two engines' StepsPerSec on the same cell is a pure wall-clock
// speedup, immune to the engines ever diverging on work done.
func (r *Result) StepsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Steps) / r.Wall.Seconds()
}

// Options tunes a harness run.
type Options struct {
	SpecParams specialize.Params
	// Quick shrinks measurement inputs (for tests); the shape survives.
	Quick     bool
	StepLimit uint64
	// DepthLimit bounds guest call depth per cell (0 = interpreter
	// default, negative = unlimited).
	DepthLimit int
	// Timeout is the per-cell wall-clock budget (0 = none): one
	// runaway cell cannot stall the whole grid.
	Timeout time.Duration
	// Context, when non-nil, cancels every cell when it is done — how
	// the paperbench CLI turns SIGINT/SIGTERM into a prompt, orderly
	// wind-down (cells fail with a cancellation error, the report and
	// failure summary still render) instead of a mid-write kill.
	Context context.Context
	// Metrics, when non-nil, collects the grid's dispatch/interpreter/
	// specializer counters; RunSuite snapshots them into Suite.Metrics
	// for the JSON trajectory's metrics block.
	Metrics *obs.Registry
	// Engine selects the execution tier for every cell (default
	// driver.EngineVM with automatic per-cell fallback to the tree
	// interpreter on unsupported constructs). The tier that actually ran
	// is recorded per Result, so a fallback is visible in the trajectory.
	Engine driver.Engine
	// Reps re-executes each cell's measured run this many times and
	// keeps the fastest wall clock (<=1 means once). Execution is
	// deterministic, so every repetition produces identical counters and
	// output; only the wall time varies with scheduler and GC noise, and
	// best-of-N is the standard way to report the run least perturbed by
	// it. Profile collection (Selective) is never repeated.
	Reps int
	// Verify runs the bytecode verifier over every cell's compiled
	// module before (and, for lazily-compiled configurations, after)
	// execution. Verification happens outside the measured window, so
	// reported walls are comparable with unverified runs.
	Verify bool
	// Extra appends benchmarks (e.g. generated stress programs from
	// internal/gen) to the embedded suite: their cells flow through the
	// same grid, figures, failures and trajectory as the paper's four.
	Extra []programs.Benchmark
}

// suitePrograms is the benchmark list for one harness run: the embedded
// suite plus any Extra programs, in that order.
func (ho Options) suitePrograms() []programs.Benchmark {
	return append(programs.All(), ho.Extra...)
}

// Fault injection for degradation tests goes through the pipeline
// seam (pipeline.ArmFaults), not through per-cell option hooks: every
// Guard boundary in the grid is a named fault point, so tests poison
// exact (benchmark, config) cells without bench threading test-only
// closures through its options.

// runOptions assembles the per-cell RunOptions for one benchmark.
func (ho Options) runOptions(b programs.Benchmark, cfg opt.Config, overrides map[string]int64) driver.RunOptions {
	ro := driver.RunOptions{
		Overrides:  overrides,
		Mechanism:  interp.MechPIC,
		StepLimit:  ho.StepLimit,
		DepthLimit: ho.DepthLimit,
		Timeout:    ho.Timeout,
		Context:    ho.Context,
		Metrics:    ho.Metrics,
		Engine:     ho.Engine,
		Verify:     ho.Verify,
	}
	return ro
}

// Failure records one contained grid-cell fault: the cell (or whole
// benchmark, when Config is empty and loading failed), the pipeline
// stage that faulted when known, and the error text. A Failure in the
// grid never voids the other cells' results.
type Failure struct {
	Benchmark string `json:"benchmark"`
	Config    string `json:"config,omitempty"` // empty: benchmark-level (load) failure
	Stage     string `json:"stage,omitempty"`
	Error     string `json:"error"`
}

func (f Failure) String() string {
	cell := f.Benchmark
	if f.Config != "" {
		cell += "/" + f.Config
	}
	if f.Stage != "" {
		cell += " (" + f.Stage + ")"
	}
	return cell + ": " + f.Error
}

// failureOf builds a Failure from a cell error, pulling the stage name
// out of a contained *pipeline.StageError when one is in the chain.
func failureOf(bench, config string, err error) Failure {
	f := Failure{Benchmark: bench, Config: config, Error: err.Error()}
	var se *pipeline.StageError
	if errors.As(err, &se) {
		f.Stage = string(se.Stage)
	}
	return f
}

// Run executes one benchmark under one configuration and collects
// every metric the figures need.
func Run(b programs.Benchmark, cfg opt.Config, ho Options) (*Result, error) {
	p, err := driver.LoadNamed(b.Name, b.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return RunOn(p, b, cfg, ho)
}

// RunOn is Run against an already-loaded pipeline (so a suite can reuse
// the lowering across configurations). Every stage runs inside the
// pipeline fault boundary, so an internal panic in any of them comes
// back as a structured error for this cell only.
func RunOn(p *driver.Pipeline, b programs.Benchmark, cfg opt.Config, ho Options) (*Result, error) {
	c, stats, err := prepare(p, b, cfg, ho)
	if err != nil {
		return nil, err
	}
	out, err := measure(c, b, cfg, ho)
	if err != nil {
		return nil, err
	}
	out.SpecStats = stats
	return out, nil
}

// prepare compiles one cell's program — for Selective, after the
// training-input profile run and the specialization pass. The returned
// stats are non-nil only for Selective.
func prepare(p *driver.Pipeline, b programs.Benchmark, cfg opt.Config, ho Options) (*opt.Compiled, *specialize.Stats, error) {
	oo := opt.Options{Config: cfg}
	switch cfg {
	case opt.CustMM:
		oo.Lazy = true
	case opt.Selective:
		cg, err := p.CollectProfile(ho.runOptions(b, cfg, b.Train))
		if err != nil {
			return nil, nil, fmt.Errorf("%s profile: %w", b.Name, err)
		}
		res, err := pipeline.Specialize(b.Name, p.Prog, cg, ho.SpecParams)
		if err != nil {
			return nil, nil, err
		}
		oo.Specializations = res.Specializations
		c, err := pipeline.Compile(b.Name, p.Prog, oo)
		if err != nil {
			return nil, nil, err
		}
		return c, &res.Stats, nil
	}
	c, err := pipeline.Compile(b.Name, p.Prog, oo)
	return c, nil, err
}

// runCell is one measured execution of a prepared cell.
func runCell(c *opt.Compiled, b programs.Benchmark, cfg opt.Config, ho Options, rep int) (*driver.Result, error) {
	test := b.Test
	if ho.Quick {
		test = b.Train
	}
	res, err := driver.Execute(c, ho.runOptions(b, cfg, test))
	if err != nil {
		return nil, fmt.Errorf("%s under %v (rep %d): %w", b.Name, c.Opts.Config, rep, err)
	}
	return res, nil
}

func measure(c *opt.Compiled, b programs.Benchmark, cfg opt.Config, ho Options) (*Result, error) {
	res, err := runCell(c, b, cfg, ho, 0)
	if err != nil {
		return nil, err
	}
	for rep := 1; rep < ho.Reps; rep++ {
		again, err := runCell(c, b, cfg, ho, rep)
		if err != nil {
			return nil, err
		}
		if again.Wall < res.Wall {
			res = again
		}
	}
	return toResult(c, b, res), nil
}

func toResult(c *opt.Compiled, b programs.Benchmark, res *driver.Result) *Result {
	return &Result{
		Benchmark:       b.Name,
		Config:          c.Opts.Config,
		Dispatches:      res.Counters.Dispatches,
		VersionSelects:  res.Counters.VersionSelects,
		Cycles:          res.Counters.Cycles,
		Steps:           res.Steps,
		Wall:            res.Wall,
		Engine:          res.Engine,
		StaticVersions:  c.StaticVersionCount(),
		InvokedVersions: res.Invoked,
		IRNodes:         res.Stats.IRNodes,
	}
}

// Suite holds the full benchmark × configuration result matrix, plus
// the contained failures of cells that did not complete. A failed cell
// leaves a nil Result; the rendering helpers print FAIL there and keep
// every healthy cell's numbers.
type Suite struct {
	Results  map[string]map[opt.Config]*Result
	Names    []string
	Failures []Failure
	// Metrics is the name-sorted counter snapshot taken at the end of
	// RunSuite when Options.Metrics was set; nil otherwise. It feeds the
	// JSON trajectory's metrics block.
	Metrics []JSONMetric
}

// Failed reports whether any benchmark or cell failed.
func (s *Suite) Failed() bool { return len(s.Failures) > 0 }

// FailureSummary renders the contained failures, one per line.
func (s *Suite) FailureSummary(w io.Writer) {
	if len(s.Failures) == 0 {
		return
	}
	fmt.Fprintf(w, "%d contained failure(s):\n", len(s.Failures))
	for _, f := range s.Failures {
		fmt.Fprintf(w, "  %s\n", f)
	}
}

// RunSuite measures every benchmark under every configuration,
// fanning the (benchmark × configuration) grid out over a
// GOMAXPROCS-sized worker pool. Each benchmark's pipeline is loaded
// once and shared by its configurations (the hierarchy's lookup caches
// are concurrency-safe); every cell compiles and runs its own
// opt.Compiled, so runs never share mutable interpreter state. Cells
// land in fixed slots and the rendered figures iterate Names/Configs
// in Table-2 order, so the output is byte-identical to a serial run.
//
// Every cell runs inside the pipeline fault boundary: a panic or error
// in one cell — bad config, poisoned input, runaway program hitting a
// resource guard — is recorded in Suite.Failures and the remaining
// cells keep running. Failures are collected in deterministic
// (benchmark, config) grid order. The returned error is non-nil only
// when the harness itself cannot set up the grid.
func RunSuite(ho Options) (*Suite, error) {
	benches := ho.suitePrograms()
	cfgs := opt.Configs()
	s := &Suite{Results: make(map[string]map[opt.Config]*Result, len(benches))}
	for _, b := range benches {
		s.Names = append(s.Names, b.Name) // Table-2 order, single pass
		s.Results[b.Name] = make(map[opt.Config]*Result, len(cfgs))
	}

	// Load failures take the whole benchmark out of the grid but leave
	// every other benchmark running.
	pipes := make([]*driver.Pipeline, len(benches))
	for i, b := range benches {
		p, err := driver.LoadNamed(b.Name, b.Source)
		if err != nil {
			s.Failures = append(s.Failures, failureOf(b.Name, "", err))
			continue
		}
		pipes[i] = p
	}

	type cell struct{ bench, cfg int }
	cells := make([]cell, 0, len(benches)*len(cfgs))
	for i := range benches {
		if pipes[i] == nil {
			continue
		}
		for j := range cfgs {
			cells = append(cells, cell{i, j})
		}
	}
	results := make([]*Result, len(cells))
	errs := make([]error, len(cells))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cells) {
					return
				}
				cl := cells[i]
				b, cfg := benches[cl.bench], cfgs[cl.cfg]
				// The harness-level guard is the cell's last line of
				// defense: panics in bench code (or injected at this
				// cell's named fault point) that no inner stage
				// boundary contained stop here, not the grid.
				results[i], errs[i] = pipeline.Guard(pipeline.StageHarness, b.Name, cfg.String(),
					func() (*Result, error) { return RunOn(pipes[cl.bench], b, cfg, ho) })
			}
		}()
	}
	wg.Wait()
	for i, cl := range cells { // grid order: deterministic failure list
		if errs[i] != nil {
			s.Failures = append(s.Failures, failureOf(benches[cl.bench].Name, cfgs[cl.cfg].String(), errs[i]))
			continue
		}
		s.Results[benches[cl.bench].Name][cfgs[cl.cfg]] = results[i]
	}
	s.Metrics = MetricRows(ho.Metrics)
	return s, nil
}

// prepared is one cell's compile product (stats non-nil for Selective).
type prepared struct {
	c  *opt.Compiled
	st *specialize.Stats
}

// RunSuitePair measures the whole grid under two engine configurations
// (typically tree and vm) in one process, interleaving the two engines'
// repetitions within every cell: rep k of engine A runs back-to-back
// with rep k of engine B, so both tiers sample the same host conditions
// and the per-cell steps/sec ratio is meaningful even on a noisy,
// shared box — the methodology behind the committed BENCH_baseline.json
// / BENCH_vm.json pair and the CI perf-ratio gate.
//
// Apart from the time interleaving, the two measurements are fully
// independent suites: each engine gets its own pipelines (so hierarchy
// lookup caches warm identically to a solo run), its own profile runs,
// and its own metrics registry — which is what keeps the two
// trajectories' metrics blocks byte-comparable: an engine pair that
// executes identically produces identical counter totals.
func RunSuitePair(a, b Options) (*Suite, *Suite, error) {
	benches := a.suitePrograms()
	cfgs := opt.Configs()
	opts := [2]Options{a, b}
	var suites [2]*Suite
	for e := range suites {
		suites[e] = &Suite{Results: make(map[string]map[opt.Config]*Result, len(benches))}
		for _, bm := range benches {
			suites[e].Names = append(suites[e].Names, bm.Name)
			suites[e].Results[bm.Name] = make(map[opt.Config]*Result, len(cfgs))
		}
	}

	// Per-engine pipelines: independent lookup-cache warmth.
	var pipes [2][]*driver.Pipeline
	for e := range pipes {
		pipes[e] = make([]*driver.Pipeline, len(benches))
		for i, bm := range benches {
			p, err := driver.LoadNamed(bm.Name, bm.Source)
			if err != nil {
				suites[e].Failures = append(suites[e].Failures, failureOf(bm.Name, "", err))
				continue
			}
			pipes[e][i] = p
		}
	}

	// The grid runs serially in deterministic order: pair mode exists to
	// control measurement noise, and a worker pool would reintroduce it.
	for i, bm := range benches {
		for _, cfg := range cfgs {
			var cs [2]*opt.Compiled
			var stats [2]*specialize.Stats
			var best [2]*driver.Result
			failed := false
			for e := range opts {
				if pipes[e][i] == nil {
					failed = true
					continue
				}
				pr, err := pipeline.Guard(pipeline.StageHarness, bm.Name, cfg.String(),
					func() (prepared, error) {
						c, st, err := prepare(pipes[e][i], bm, cfg, opts[e])
						return prepared{c, st}, err
					})
				if err != nil {
					suites[e].Failures = append(suites[e].Failures, failureOf(bm.Name, cfg.String(), err))
					failed = true
					continue
				}
				cs[e], stats[e] = pr.c, pr.st
			}
			if failed {
				continue
			}
			reps := max(1, opts[0].Reps)
			for rep := 0; rep < reps && !failed; rep++ {
				for e := range opts {
					res, err := pipeline.Guard(pipeline.StageHarness, bm.Name, cfg.String(),
						func() (*driver.Result, error) { return runCell(cs[e], bm, cfg, opts[e], rep) })
					if err != nil {
						suites[e].Failures = append(suites[e].Failures, failureOf(bm.Name, cfg.String(), err))
						failed = true
						break
					}
					if best[e] == nil || res.Wall < best[e].Wall {
						best[e] = res
					}
				}
			}
			if failed {
				continue
			}
			for e := range opts {
				out := toResult(cs[e], bm, best[e])
				out.SpecStats = stats[e]
				suites[e].Results[bm.Name][cfg] = out
			}
		}
	}
	for e := range opts {
		suites[e].Metrics = MetricRows(opts[e].Metrics)
	}
	return suites[0], suites[1], nil
}

// Table1 renders the compiler-configuration table (paper Table 1).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Compiler Configurations")
	rows := []struct{ name, desc string }{
		{"Base", "Intraprocedural class analysis, inlining, constant propagation & folding, dead-code elimination (closure elimination), hard-wired class prediction for primitives. One compiled version per source method."},
		{"Cust", "Base + simple customization: specialize each method for each inheriting class of the receiver argument (Self/Sather/Trellis)."},
		{"Cust-MM", "Base + customization extended to multi-methods: one version per combination of dispatched argument classes (lazy compilation only)."},
		{"CHA", "Base + class hierarchy analysis: dynamically-bound calls become statically bound when the hierarchy shows no overriding methods."},
		{"Selective", "CHA + the profile-guided selective specialization algorithm (threshold 1,000 invocations)."},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s  %s\n", r.name, r.desc)
	}
}

// Table2 renders the benchmark table (paper Table 2) with both the
// paper's sizes and this reproduction's program sizes.
func Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Benchmarks")
	fmt.Fprintf(w, "  %-12s %-12s %-12s %s\n", "Program", "Paper lines", "Repro lines", "Description")
	for _, b := range programs.All() {
		lines := strings.Count(b.Source, "\n")
		fmt.Fprintf(w, "  %-12s %-12d %-12d %s\n", b.Name, b.PaperLines, lines, b.Description)
	}
}

// norm returns f(cell)/f(Base) for one cell, with ok=false when either
// cell is missing (contained failure) or the Base metric is zero.
func (s *Suite) norm(bench string, cfg opt.Config, f func(*Result) float64) (float64, bool) {
	base, r := s.Results[bench][opt.Base], s.Results[bench][cfg]
	if base == nil || r == nil || f(base) == 0 {
		return 0, false
	}
	return f(r) / f(base), true
}

// Figure5a renders the number of dynamic dispatches normalized to Base
// (left panel of the paper's Figure 5; lower is better).
func (s *Suite) Figure5a(w io.Writer) {
	fmt.Fprintln(w, "Figure 5 (left): Number of dynamic dispatches, normalized to Base")
	s.matrix(w, func(r *Result) float64 { return float64(r.DynamicDispatches()) }, false)
}

// Figure5b renders execution speed (Base cycles / config cycles)
// normalized to Base (right panel of Figure 5; higher is better).
func (s *Suite) Figure5b(w io.Writer) {
	fmt.Fprintln(w, "Figure 5 (right): Execution speed, normalized to Base (cycle model)")
	s.matrix(w, func(r *Result) float64 { return float64(r.Cycles) }, true)
}

// Figure6a renders compiled routines in a statically-compiled system,
// normalized to Base (left panel of Figure 6).
func (s *Suite) Figure6a(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 (left): Compiled routines, static system, normalized to Base")
	s.matrix(w, func(r *Result) float64 { return float64(r.StaticVersions) }, false)
}

// Figure6b renders routines invoked (compiled) under dynamic
// compilation, normalized to Base (right panel of Figure 6).
func (s *Suite) Figure6b(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 (right): Invoked routines, dynamic compilation, normalized to Base")
	s.matrix(w, func(r *Result) float64 { return float64(r.InvokedVersions) }, false)
}

// matrix prints one metric for every benchmark × config. invert=true
// reports base/val (speedups), otherwise val/base.
func (s *Suite) matrix(w io.Writer, f func(*Result) float64, invert bool) {
	fmt.Fprintf(w, "  %-12s", "Program")
	for _, cfg := range opt.Configs() {
		fmt.Fprintf(w, " %10s", cfg)
	}
	fmt.Fprintln(w)
	for _, name := range s.Names {
		fmt.Fprintf(w, "  %-12s", name)
		for _, cfg := range opt.Configs() {
			v, ok := s.norm(name, cfg, f)
			if !ok {
				fmt.Fprintf(w, " %10s", "FAIL")
				continue
			}
			if invert && v != 0 {
				v = 1 / v
			}
			fmt.Fprintf(w, " %10.2f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  (raw Base:")
	for _, name := range s.Names {
		if base := s.Results[name][opt.Base]; base != nil {
			fmt.Fprintf(w, " %s=%.0f", name, f(base))
		} else {
			fmt.Fprintf(w, " %s=FAIL", name)
		}
	}
	fmt.Fprintln(w, ")")
}

// SpecStats prints the §3.2 statistics ("an average of 1.9
// specializations per method receiving any specializations, with a
// maximum of 8").
func (s *Suite) SpecStats(w io.Writer) {
	fmt.Fprintln(w, "Specialization statistics (paper §3.2: avg 1.9 per specialized method, max 8)")
	totalAdded, totalMeth, max := 0, 0, 0
	for _, name := range s.Names {
		r := s.Results[name][opt.Selective]
		if r == nil || r.SpecStats == nil {
			continue
		}
		st := r.SpecStats
		fmt.Fprintf(w, "  %-12s methods=%d added=%d max=%d avg=%.2f cascades=%d\n",
			name, st.MethodsSpecialized, st.AddedSpecs, st.MaxPerMethod, st.AvgPerMethod, st.CascadeRequests)
		totalAdded += st.AddedSpecs
		totalMeth += st.MethodsSpecialized
		if st.MaxPerMethod > max {
			max = st.MaxPerMethod
		}
	}
	if totalMeth > 0 {
		fmt.Fprintf(w, "  %-12s avg=%.2f max=%d\n", "OVERALL", float64(totalAdded)/float64(totalMeth), max)
	}
}

// Headline prints the paper's abstract-level claims next to the
// measured equivalents.
func (s *Suite) Headline(w io.Writer) {
	fmt.Fprintln(w, "Headline comparison (paper abstract)")
	var selSpeedMin, selSpeedMax float64 = 1e9, 0
	var spaceMin, spaceMax float64 = 1e9, 0
	var vsCustSpeedMin, vsCustSpeedMax float64 = 1e9, 0
	var vsCustSpaceMin, vsCustSpaceMax float64 = 1e9, 0
	measured := 0
	for _, name := range s.Names {
		base := s.Results[name][opt.Base]
		cust := s.Results[name][opt.Cust]
		sel := s.Results[name][opt.Selective]
		if base == nil || cust == nil || sel == nil {
			fmt.Fprintf(w, "  %-12s FAIL (cell did not complete)\n", name)
			continue
		}
		measured++
		speed := float64(base.Cycles)/float64(sel.Cycles) - 1
		space := float64(sel.IRNodes)/float64(base.IRNodes) - 1
		vsCust := float64(cust.Cycles)/float64(sel.Cycles) - 1
		vsCustSpace := 1 - float64(sel.StaticVersions)/float64(cust.StaticVersions)
		fmt.Fprintf(w, "  %-12s speed vs Base %+.0f%%  space vs Base %+.0f%%  speed vs Cust %+.0f%%  versions vs Cust %.0f%% fewer\n",
			name, speed*100, space*100, vsCust*100, vsCustSpace*100)
		selSpeedMin, selSpeedMax = minf(selSpeedMin, speed), maxf(selSpeedMax, speed)
		spaceMin, spaceMax = minf(spaceMin, space), maxf(spaceMax, space)
		vsCustSpeedMin, vsCustSpeedMax = minf(vsCustSpeedMin, vsCust), maxf(vsCustSpeedMax, vsCust)
		vsCustSpaceMin, vsCustSpaceMax = minf(vsCustSpaceMin, vsCustSpace), maxf(vsCustSpaceMax, vsCustSpace)
	}
	if measured == 0 {
		fmt.Fprintln(w, "  (no benchmark completed all of Base, Cust and Selective)")
		return
	}
	fmt.Fprintf(w, "  measured: Selective speeds up programs %.0f%%..%.0f%% over Base (paper: 65%%..275%%)\n",
		selSpeedMin*100, selSpeedMax*100)
	fmt.Fprintf(w, "  measured: code space %+.0f%%..%+.0f%% vs Base (paper: +4%%..+10%%)\n",
		spaceMin*100, spaceMax*100)
	fmt.Fprintf(w, "  measured: %+.0f%%..%+.0f%% speed vs Cust (paper: +11%%..+67%%)\n",
		vsCustSpeedMin*100, vsCustSpeedMax*100)
	fmt.Fprintf(w, "  measured: %.0f%%..%.0f%% fewer versions than Cust (paper: 65%%..73%% fewer)\n",
		vsCustSpaceMin*100, vsCustSpaceMax*100)
}

// DispatchEliminationSummary prints, per configuration, the percentage
// of Base dispatches eliminated (the paper's 35-61% / 41-62% / 33-54% /
// 54-66% ranges).
func (s *Suite) DispatchEliminationSummary(w io.Writer) {
	fmt.Fprintln(w, "Dynamic dispatches eliminated vs Base (paper: Cust 35-61%, Cust-MM 41-62%, CHA 33-54%, Selective 54-66%)")
	for _, cfg := range []opt.Config{opt.Cust, opt.CustMM, opt.CHA, opt.Selective} {
		var lo, hi float64 = 1e9, -1e9
		for _, name := range s.Names {
			v, ok := s.norm(name, cfg, func(r *Result) float64 { return float64(r.DynamicDispatches()) })
			if !ok {
				continue
			}
			elim := 1 - v
			lo, hi = minf(lo, elim), maxf(hi, elim)
		}
		if lo > hi {
			fmt.Fprintf(w, "  %-9s FAIL\n", cfg)
			continue
		}
		fmt.Fprintf(w, "  %-9s %.0f%%..%.0f%%\n", cfg, lo*100, hi*100)
	}
}

// CSV writes the full result matrix in machine-readable form (one row
// per benchmark × configuration), for plotting the figures elsewhere.
func (s *Suite) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "config", "engine", "dispatches", "version_selects", "cycles",
		"static_versions", "invoked_versions", "ir_nodes", "steps", "wall_ns",
	}); err != nil {
		return err
	}
	for _, name := range s.Names {
		for _, cfg := range opt.Configs() {
			r := s.Results[name][cfg]
			if r == nil { // contained failure: the cell has no numbers
				continue
			}
			rec := []string{
				name, cfg.String(), r.Engine.String(),
				fmt.Sprint(r.Dispatches), fmt.Sprint(r.VersionSelects), fmt.Sprint(r.Cycles),
				fmt.Sprint(r.StaticVersions), fmt.Sprint(r.InvokedVersions), fmt.Sprint(r.IRNodes),
				fmt.Sprint(r.Steps), fmt.Sprint(r.Wall.Nanoseconds()),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Extensions measures the two post-paper analyses implemented beyond
// the published system (§6 return-type propagation and RTA-style
// instantiation analysis) on top of CHA and Selective, plus the
// Collections library workload that motivates them.
func Extensions(w io.Writer, ho Options) error {
	fmt.Fprintln(w, "Extensions (beyond the published system): return-type analysis + instantiation analysis")
	fmt.Fprintf(w, "  %-14s %-22s %12s %12s %10s\n", "Program", "config", "dispatches", "cycles", "versions")
	benches := append(programs.All(), programs.Collections())
	var failed []Failure
	for _, b := range benches {
		if err := extensionRows(w, b, ho); err != nil {
			f := failureOf(b.Name, "", err)
			failed = append(failed, f)
			fmt.Fprintf(w, "  %-14s FAIL: %v\n", b.Name, err)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d of %d extension benchmarks failed", len(failed), len(benches))
	}
	return nil
}

// extensionRows measures one benchmark's extension rows inside the
// fault boundary, so a fault in one program degrades only its rows.
func extensionRows(w io.Writer, b programs.Benchmark, ho Options) error {
	_, err := pipeline.Guard(pipeline.StageHarness, b.Name, "", func() (struct{}, error) {
		return struct{}{}, extensionRowsRaw(w, b, ho)
	})
	return err
}

func extensionRowsRaw(w io.Writer, b programs.Benchmark, ho Options) error {
	p, err := driver.LoadNamed(b.Name, b.Source)
	if err != nil {
		return err
	}
	rows := []struct {
		name string
		cfg  opt.Config
		ext  bool
	}{
		{"Base", opt.Base, false},
		{"CHA", opt.CHA, false},
		{"CHA+ext", opt.CHA, true},
		{"Selective", opt.Selective, false},
		{"Selective+ext", opt.Selective, true},
	}
	for _, row := range rows {
		oo := opt.Options{Config: row.cfg, ReturnTypeAnalysis: row.ext, InstantiationAnalysis: row.ext}
		if row.cfg == opt.Selective {
			cg, err := p.CollectProfile(ho.runOptions(b, row.cfg, b.Train))
			if err != nil {
				return err
			}
			res, err := pipeline.Specialize(b.Name, p.Prog, cg, ho.SpecParams)
			if err != nil {
				return err
			}
			oo.Specializations = res.Specializations
		}
		c, err := pipeline.Compile(b.Name, p.Prog, oo)
		if err != nil {
			return err
		}
		test := b.Test
		if ho.Quick {
			test = b.Train
		}
		res, err := driver.Execute(c, ho.runOptions(b, row.cfg, test))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-14s %-22s %12d %12d %10d\n",
			b.Name, row.name, res.Counters.DynamicDispatches(), res.Counters.Cycles, res.Stats.Versions)
	}
	return nil
}

// Report renders everything.
func (s *Suite) Report(w io.Writer) {
	Table1(w)
	fmt.Fprintln(w)
	Table2(w)
	fmt.Fprintln(w)
	s.Figure5a(w)
	fmt.Fprintln(w)
	s.Figure5b(w)
	fmt.Fprintln(w)
	s.Figure6a(w)
	fmt.Fprintln(w)
	s.Figure6b(w)
	fmt.Fprintln(w)
	s.DispatchEliminationSummary(w)
	fmt.Fprintln(w)
	s.SpecStats(w)
	fmt.Fprintln(w)
	s.Headline(w)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
