// Package bench is the experiment harness: it reruns the paper's
// evaluation (Section 4) — Table 1, Table 2, Figure 5 (dynamic
// dispatches and execution speed, normalized to Base) and Figure 6
// (compiled routines, statically and under dynamic compilation) — over
// the four embedded benchmarks, plus the §3.2 specialization-count
// statistics and the headline improvement numbers.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/opt"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

// Result is one (benchmark, configuration) measurement.
type Result struct {
	Benchmark string
	Config    opt.Config

	Dispatches     uint64 // dynamically dispatched sends
	VersionSelects uint64
	Cycles         uint64 // abstract cost model ("execution speed")
	Wall           time.Duration

	StaticVersions  int // routines a static compile produces (Fig 6 left)
	InvokedVersions int // routines invoked at run time (Fig 6 right)
	IRNodes         int // compiled code size in IR nodes

	SpecStats *specialize.Stats // Selective only
}

// DynamicDispatches is the Figure 5 metric.
func (r *Result) DynamicDispatches() uint64 { return r.Dispatches + r.VersionSelects }

// Options tunes a harness run.
type Options struct {
	SpecParams specialize.Params
	// Quick shrinks measurement inputs (for tests); the shape survives.
	Quick     bool
	StepLimit uint64
}

// Run executes one benchmark under one configuration and collects
// every metric the figures need.
func Run(b programs.Benchmark, cfg opt.Config, ho Options) (*Result, error) {
	p, err := driver.Load(b.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return RunOn(p, b, cfg, ho)
}

// RunOn is Run against an already-loaded pipeline (so a suite can reuse
// the lowering across configurations).
func RunOn(p *driver.Pipeline, b programs.Benchmark, cfg opt.Config, ho Options) (*Result, error) {
	test := b.Test
	if ho.Quick {
		test = b.Train
	}

	oo := opt.Options{Config: cfg}
	switch cfg {
	case opt.CustMM:
		oo.Lazy = true
	case opt.Selective:
		cg, err := p.CollectProfile(driver.RunOptions{Overrides: b.Train, StepLimit: ho.StepLimit})
		if err != nil {
			return nil, fmt.Errorf("%s profile: %w", b.Name, err)
		}
		res := specialize.Run(p.Prog, cg, ho.SpecParams)
		oo.Specializations = res.Specializations
		c, err := opt.Compile(p.Prog, oo)
		if err != nil {
			return nil, err
		}
		out, err := measure(c, b, test, ho)
		if err != nil {
			return nil, err
		}
		out.SpecStats = &res.Stats
		return out, nil
	}

	c, err := opt.Compile(p.Prog, oo)
	if err != nil {
		return nil, err
	}
	return measure(c, b, test, ho)
}

func measure(c *opt.Compiled, b programs.Benchmark, test map[string]int64, ho Options) (*Result, error) {
	res, err := driver.Execute(c, driver.RunOptions{
		Overrides: test,
		Mechanism: interp.MechPIC,
		StepLimit: ho.StepLimit,
	})
	if err != nil {
		return nil, fmt.Errorf("%s under %v: %w", b.Name, c.Opts.Config, err)
	}
	return &Result{
		Benchmark:       b.Name,
		Config:          c.Opts.Config,
		Dispatches:      res.Counters.Dispatches,
		VersionSelects:  res.Counters.VersionSelects,
		Cycles:          res.Counters.Cycles,
		Wall:            res.Wall,
		StaticVersions:  c.StaticVersionCount(),
		InvokedVersions: res.Invoked,
		IRNodes:         res.Stats.IRNodes,
	}, nil
}

// Suite holds the full benchmark × configuration result matrix.
type Suite struct {
	Results map[string]map[opt.Config]*Result
	Names   []string
}

// RunSuite measures every benchmark under every configuration,
// fanning the (benchmark × configuration) grid out over a
// GOMAXPROCS-sized worker pool. Each benchmark's pipeline is loaded
// once and shared by its configurations (the hierarchy's lookup caches
// are concurrency-safe); every cell compiles and runs its own
// opt.Compiled, so runs never share mutable interpreter state. Cells
// land in fixed slots and the rendered figures iterate Names/Configs
// in Table-2 order, so the output is byte-identical to a serial run.
func RunSuite(ho Options) (*Suite, error) {
	benches := programs.All()
	cfgs := opt.Configs()
	s := &Suite{Results: make(map[string]map[opt.Config]*Result, len(benches))}
	for _, b := range benches {
		s.Names = append(s.Names, b.Name) // Table-2 order, single pass
		s.Results[b.Name] = make(map[opt.Config]*Result, len(cfgs))
	}

	pipes := make([]*driver.Pipeline, len(benches))
	for i, b := range benches {
		p, err := driver.Load(b.Source)
		if err != nil {
			return nil, err
		}
		pipes[i] = p
	}

	type cell struct{ bench, cfg int }
	cells := make([]cell, 0, len(benches)*len(cfgs))
	for i := range benches {
		for j := range cfgs {
			cells = append(cells, cell{i, j})
		}
	}
	results := make([]*Result, len(cells))
	errs := make([]error, len(cells))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cells) {
					return
				}
				cl := cells[i]
				results[i], errs[i] = RunOn(pipes[cl.bench], benches[cl.bench], cfgs[cl.cfg], ho)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs { // lowest-index error wins: deterministic
		if err != nil {
			return nil, err
		}
	}
	for i, cl := range cells {
		s.Results[benches[cl.bench].Name][cfgs[cl.cfg]] = results[i]
	}
	return s, nil
}

// Table1 renders the compiler-configuration table (paper Table 1).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Compiler Configurations")
	rows := []struct{ name, desc string }{
		{"Base", "Intraprocedural class analysis, inlining, constant propagation & folding, dead-code elimination (closure elimination), hard-wired class prediction for primitives. One compiled version per source method."},
		{"Cust", "Base + simple customization: specialize each method for each inheriting class of the receiver argument (Self/Sather/Trellis)."},
		{"Cust-MM", "Base + customization extended to multi-methods: one version per combination of dispatched argument classes (lazy compilation only)."},
		{"CHA", "Base + class hierarchy analysis: dynamically-bound calls become statically bound when the hierarchy shows no overriding methods."},
		{"Selective", "CHA + the profile-guided selective specialization algorithm (threshold 1,000 invocations)."},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s  %s\n", r.name, r.desc)
	}
}

// Table2 renders the benchmark table (paper Table 2) with both the
// paper's sizes and this reproduction's program sizes.
func Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Benchmarks")
	fmt.Fprintf(w, "  %-12s %-12s %-12s %s\n", "Program", "Paper lines", "Repro lines", "Description")
	for _, b := range programs.All() {
		lines := strings.Count(b.Source, "\n")
		fmt.Fprintf(w, "  %-12s %-12d %-12d %s\n", b.Name, b.PaperLines, lines, b.Description)
	}
}

func (s *Suite) norm(bench string, cfg opt.Config, f func(*Result) float64) float64 {
	base := f(s.Results[bench][opt.Base])
	if base == 0 {
		return 0
	}
	return f(s.Results[bench][cfg]) / base
}

// Figure5a renders the number of dynamic dispatches normalized to Base
// (left panel of the paper's Figure 5; lower is better).
func (s *Suite) Figure5a(w io.Writer) {
	fmt.Fprintln(w, "Figure 5 (left): Number of dynamic dispatches, normalized to Base")
	s.matrix(w, func(r *Result) float64 { return float64(r.DynamicDispatches()) }, false)
}

// Figure5b renders execution speed (Base cycles / config cycles)
// normalized to Base (right panel of Figure 5; higher is better).
func (s *Suite) Figure5b(w io.Writer) {
	fmt.Fprintln(w, "Figure 5 (right): Execution speed, normalized to Base (cycle model)")
	s.matrix(w, func(r *Result) float64 { return float64(r.Cycles) }, true)
}

// Figure6a renders compiled routines in a statically-compiled system,
// normalized to Base (left panel of Figure 6).
func (s *Suite) Figure6a(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 (left): Compiled routines, static system, normalized to Base")
	s.matrix(w, func(r *Result) float64 { return float64(r.StaticVersions) }, false)
}

// Figure6b renders routines invoked (compiled) under dynamic
// compilation, normalized to Base (right panel of Figure 6).
func (s *Suite) Figure6b(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 (right): Invoked routines, dynamic compilation, normalized to Base")
	s.matrix(w, func(r *Result) float64 { return float64(r.InvokedVersions) }, false)
}

// matrix prints one metric for every benchmark × config. invert=true
// reports base/val (speedups), otherwise val/base.
func (s *Suite) matrix(w io.Writer, f func(*Result) float64, invert bool) {
	fmt.Fprintf(w, "  %-12s", "Program")
	for _, cfg := range opt.Configs() {
		fmt.Fprintf(w, " %10s", cfg)
	}
	fmt.Fprintln(w)
	for _, name := range s.Names {
		fmt.Fprintf(w, "  %-12s", name)
		for _, cfg := range opt.Configs() {
			v := s.norm(name, cfg, f)
			if invert && v != 0 {
				v = 1 / v
			}
			fmt.Fprintf(w, " %10.2f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  (raw Base:")
	for _, name := range s.Names {
		fmt.Fprintf(w, " %s=%.0f", name, f(s.Results[name][opt.Base]))
	}
	fmt.Fprintln(w, ")")
}

// SpecStats prints the §3.2 statistics ("an average of 1.9
// specializations per method receiving any specializations, with a
// maximum of 8").
func (s *Suite) SpecStats(w io.Writer) {
	fmt.Fprintln(w, "Specialization statistics (paper §3.2: avg 1.9 per specialized method, max 8)")
	totalAdded, totalMeth, max := 0, 0, 0
	for _, name := range s.Names {
		st := s.Results[name][opt.Selective].SpecStats
		if st == nil {
			continue
		}
		fmt.Fprintf(w, "  %-12s methods=%d added=%d max=%d avg=%.2f cascades=%d\n",
			name, st.MethodsSpecialized, st.AddedSpecs, st.MaxPerMethod, st.AvgPerMethod, st.CascadeRequests)
		totalAdded += st.AddedSpecs
		totalMeth += st.MethodsSpecialized
		if st.MaxPerMethod > max {
			max = st.MaxPerMethod
		}
	}
	if totalMeth > 0 {
		fmt.Fprintf(w, "  %-12s avg=%.2f max=%d\n", "OVERALL", float64(totalAdded)/float64(totalMeth), max)
	}
}

// Headline prints the paper's abstract-level claims next to the
// measured equivalents.
func (s *Suite) Headline(w io.Writer) {
	fmt.Fprintln(w, "Headline comparison (paper abstract)")
	var selSpeedMin, selSpeedMax float64 = 1e9, 0
	var spaceMin, spaceMax float64 = 1e9, 0
	var vsCustSpeedMin, vsCustSpeedMax float64 = 1e9, 0
	var vsCustSpaceMin, vsCustSpaceMax float64 = 1e9, 0
	for _, name := range s.Names {
		base := s.Results[name][opt.Base]
		cust := s.Results[name][opt.Cust]
		sel := s.Results[name][opt.Selective]
		speed := float64(base.Cycles)/float64(sel.Cycles) - 1
		space := float64(sel.IRNodes)/float64(base.IRNodes) - 1
		vsCust := float64(cust.Cycles)/float64(sel.Cycles) - 1
		vsCustSpace := 1 - float64(sel.StaticVersions)/float64(cust.StaticVersions)
		fmt.Fprintf(w, "  %-12s speed vs Base %+.0f%%  space vs Base %+.0f%%  speed vs Cust %+.0f%%  versions vs Cust %.0f%% fewer\n",
			name, speed*100, space*100, vsCust*100, vsCustSpace*100)
		selSpeedMin, selSpeedMax = minf(selSpeedMin, speed), maxf(selSpeedMax, speed)
		spaceMin, spaceMax = minf(spaceMin, space), maxf(spaceMax, space)
		vsCustSpeedMin, vsCustSpeedMax = minf(vsCustSpeedMin, vsCust), maxf(vsCustSpeedMax, vsCust)
		vsCustSpaceMin, vsCustSpaceMax = minf(vsCustSpaceMin, vsCustSpace), maxf(vsCustSpaceMax, vsCustSpace)
	}
	fmt.Fprintf(w, "  measured: Selective speeds up programs %.0f%%..%.0f%% over Base (paper: 65%%..275%%)\n",
		selSpeedMin*100, selSpeedMax*100)
	fmt.Fprintf(w, "  measured: code space %+.0f%%..%+.0f%% vs Base (paper: +4%%..+10%%)\n",
		spaceMin*100, spaceMax*100)
	fmt.Fprintf(w, "  measured: %+.0f%%..%+.0f%% speed vs Cust (paper: +11%%..+67%%)\n",
		vsCustSpeedMin*100, vsCustSpeedMax*100)
	fmt.Fprintf(w, "  measured: %.0f%%..%.0f%% fewer versions than Cust (paper: 65%%..73%% fewer)\n",
		vsCustSpaceMin*100, vsCustSpaceMax*100)
}

// DispatchEliminationSummary prints, per configuration, the percentage
// of Base dispatches eliminated (the paper's 35-61% / 41-62% / 33-54% /
// 54-66% ranges).
func (s *Suite) DispatchEliminationSummary(w io.Writer) {
	fmt.Fprintln(w, "Dynamic dispatches eliminated vs Base (paper: Cust 35-61%, Cust-MM 41-62%, CHA 33-54%, Selective 54-66%)")
	for _, cfg := range []opt.Config{opt.Cust, opt.CustMM, opt.CHA, opt.Selective} {
		var lo, hi float64 = 1e9, -1e9
		for _, name := range s.Names {
			elim := 1 - s.norm(name, cfg, func(r *Result) float64 { return float64(r.DynamicDispatches()) })
			lo, hi = minf(lo, elim), maxf(hi, elim)
		}
		fmt.Fprintf(w, "  %-9s %.0f%%..%.0f%%\n", cfg, lo*100, hi*100)
	}
}

// CSV writes the full result matrix in machine-readable form (one row
// per benchmark × configuration), for plotting the figures elsewhere.
func (s *Suite) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"benchmark", "config", "dispatches", "version_selects", "cycles",
		"static_versions", "invoked_versions", "ir_nodes", "wall_ns",
	}); err != nil {
		return err
	}
	for _, name := range s.Names {
		for _, cfg := range opt.Configs() {
			r := s.Results[name][cfg]
			rec := []string{
				name, cfg.String(),
				fmt.Sprint(r.Dispatches), fmt.Sprint(r.VersionSelects), fmt.Sprint(r.Cycles),
				fmt.Sprint(r.StaticVersions), fmt.Sprint(r.InvokedVersions), fmt.Sprint(r.IRNodes),
				fmt.Sprint(r.Wall.Nanoseconds()),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Extensions measures the two post-paper analyses implemented beyond
// the published system (§6 return-type propagation and RTA-style
// instantiation analysis) on top of CHA and Selective, plus the
// Collections library workload that motivates them.
func Extensions(w io.Writer, ho Options) error {
	fmt.Fprintln(w, "Extensions (beyond the published system): return-type analysis + instantiation analysis")
	fmt.Fprintf(w, "  %-14s %-22s %12s %12s %10s\n", "Program", "config", "dispatches", "cycles", "versions")
	benches := append(programs.All(), programs.Collections())
	for _, b := range benches {
		p, err := driver.Load(b.Source)
		if err != nil {
			return err
		}
		rows := []struct {
			name string
			cfg  opt.Config
			ext  bool
		}{
			{"Base", opt.Base, false},
			{"CHA", opt.CHA, false},
			{"CHA+ext", opt.CHA, true},
			{"Selective", opt.Selective, false},
			{"Selective+ext", opt.Selective, true},
		}
		for _, row := range rows {
			oo := opt.Options{Config: row.cfg, ReturnTypeAnalysis: row.ext, InstantiationAnalysis: row.ext}
			if row.cfg == opt.Selective {
				cg, err := p.CollectProfile(driver.RunOptions{Overrides: b.Train, StepLimit: ho.StepLimit})
				if err != nil {
					return err
				}
				oo.Specializations = specialize.Run(p.Prog, cg, ho.SpecParams).Specializations
			}
			c, err := opt.Compile(p.Prog, oo)
			if err != nil {
				return err
			}
			test := b.Test
			if ho.Quick {
				test = b.Train
			}
			res, err := driver.Execute(c, driver.RunOptions{Overrides: test, StepLimit: ho.StepLimit})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-14s %-22s %12d %12d %10d\n",
				b.Name, row.name, res.Counters.DynamicDispatches(), res.Counters.Cycles, res.Stats.Versions)
		}
	}
	return nil
}

// Report renders everything.
func (s *Suite) Report(w io.Writer) {
	Table1(w)
	fmt.Fprintln(w)
	Table2(w)
	fmt.Fprintln(w)
	s.Figure5a(w)
	fmt.Fprintln(w)
	s.Figure5b(w)
	fmt.Fprintln(w)
	s.Figure6a(w)
	fmt.Fprintln(w)
	s.Figure6b(w)
	fmt.Fprintln(w)
	s.DispatchEliminationSummary(w)
	fmt.Fprintln(w)
	s.SpecStats(w)
	fmt.Fprintln(w)
	s.Headline(w)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
