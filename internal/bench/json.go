package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"time"

	"selspec/internal/obs"
	"selspec/internal/opt"
)

// JSONResult is one (benchmark, configuration) cell of the perf
// trajectory: the wall-clock and cycle-model costs plus the dispatch
// counts future PRs diff against to catch regressions.
type JSONResult struct {
	Benchmark         string  `json:"benchmark"`
	Config            string  `json:"config"`
	Engine            string  `json:"engine"` // tier that actually ran this cell
	WallNS            int64   `json:"wall_ns"`
	Steps             uint64  `json:"steps"`
	StepsPerSec       float64 `json:"steps_per_sec"`
	Cycles            uint64  `json:"cycles"`
	Dispatches        uint64  `json:"dispatches"`
	VersionSelects    uint64  `json:"version_selects"`
	DynamicDispatches uint64  `json:"dynamic_dispatches"`
	StaticVersions    int     `json:"static_versions"`
	InvokedVersions   int     `json:"invoked_versions"`
	IRNodes           int     `json:"ir_nodes"`
}

// JSONMetric is one observability counter in the trajectory's metrics
// block: a (series name, cumulative value) pair from the run's
// obs.Registry snapshot, name-sorted for deterministic diffs.
type JSONMetric struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// MetricRows converts a registry's counter snapshot into name-sorted
// trajectory rows. A nil registry yields nil.
func MetricRows(r *obs.Registry) []JSONMetric {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	rows := make([]JSONMetric, 0, len(snap.Counters))
	for name, v := range snap.Counters {
		rows = append(rows, JSONMetric{Name: name, Value: v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// JSONTrajectory is the top-level shape of BENCH_paperbench.json.
// Failures lists the contained per-cell faults; a failed cell has an
// entry here and no row in Results. Metrics holds the run's counter
// snapshot when the harness ran with a registry. All three arrays are
// always present (empty on a clean or unobserved run) so consumers can
// diff on them unconditionally.
type JSONTrajectory struct {
	SuiteWallNS int64        `json:"suite_wall_ns"` // end-to-end RunSuite wall time
	Workers     int          `json:"workers"`       // GOMAXPROCS during the run
	Quick       bool         `json:"quick"`
	Reps        int          `json:"reps"` // best-of-N wall per cell (0/1 = single shot)
	Results     []JSONResult `json:"results"`
	Failures    []Failure    `json:"failures"`
	Metrics     []JSONMetric `json:"metrics"`
}

// WriteJSON emits the machine-readable perf trajectory for the suite,
// rows in Table-2 × Configs order (deterministic apart from the wall
// times themselves).
func (s *Suite) WriteJSON(w io.Writer, suiteWall time.Duration, quick bool, reps int) error {
	t := JSONTrajectory{
		SuiteWallNS: suiteWall.Nanoseconds(),
		Workers:     runtime.GOMAXPROCS(0),
		Quick:       quick,
		Reps:        reps,
		Failures:    append([]Failure{}, s.Failures...),    // non-null even when empty
		Metrics:     append([]JSONMetric{}, s.Metrics...), // likewise
	}
	for _, name := range s.Names {
		for _, cfg := range opt.Configs() {
			r := s.Results[name][cfg]
			if r == nil { // contained failure: listed in Failures instead
				continue
			}
			t.Results = append(t.Results, JSONResult{
				Benchmark:         name,
				Config:            cfg.String(),
				Engine:            r.Engine.String(),
				WallNS:            r.Wall.Nanoseconds(),
				Steps:             r.Steps,
				StepsPerSec:       r.StepsPerSec(),
				Cycles:            r.Cycles,
				Dispatches:        r.Dispatches,
				VersionSelects:    r.VersionSelects,
				DynamicDispatches: r.DynamicDispatches(),
				StaticVersions:    r.StaticVersions,
				InvokedVersions:   r.InvokedVersions,
				IRNodes:           r.IRNodes,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
