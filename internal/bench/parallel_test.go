package bench

import (
	"runtime"
	"testing"

	"selspec/internal/opt"
	"selspec/internal/specialize"
)

// TestRunSuiteParallelMatchesSerial checks the harness invariant the
// parallel fan-out promises: every measurement except wall time is
// byte-identical whether the (benchmark × config) grid runs on one
// worker or several.
func TestRunSuiteParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice")
	}
	opts := Options{
		Quick:      true,
		StepLimit:  500_000_000,
		SpecParams: specialize.Params{Threshold: specialize.DefaultThreshold},
	}

	prev := runtime.GOMAXPROCS(1)
	serial, serr := RunSuite(opts)
	runtime.GOMAXPROCS(4) // the CI box may have 1 CPU; force a real worker pool
	par, perr := RunSuite(opts)
	runtime.GOMAXPROCS(prev)
	if serr != nil || perr != nil {
		t.Fatalf("serial err %v, parallel err %v", serr, perr)
	}

	if len(serial.Names) != len(par.Names) {
		t.Fatalf("names differ: %v vs %v", serial.Names, par.Names)
	}
	for i := range serial.Names {
		if serial.Names[i] != par.Names[i] {
			t.Fatalf("name order differs: %v vs %v", serial.Names, par.Names)
		}
	}
	for _, name := range serial.Names {
		for _, cfg := range opt.Configs() {
			s, p := serial.Results[name][cfg], par.Results[name][cfg]
			if s == nil || p == nil {
				t.Fatalf("%s/%v: missing result (serial %v, parallel %v)", name, cfg, s, p)
			}
			if s.Dispatches != p.Dispatches || s.VersionSelects != p.VersionSelects ||
				s.Cycles != p.Cycles || s.StaticVersions != p.StaticVersions ||
				s.InvokedVersions != p.InvokedVersions || s.IRNodes != p.IRNodes {
				t.Errorf("%s/%v: parallel run diverged:\n  serial   %+v\n  parallel %+v",
					name, cfg, s, p)
			}
		}
		ss := serial.Results[name][opt.Selective].SpecStats
		ps := par.Results[name][opt.Selective].SpecStats
		if (ss == nil) != (ps == nil) {
			t.Errorf("%s: SpecStats presence differs", name)
		} else if ss != nil && *ss != *ps {
			t.Errorf("%s: SpecStats diverged: %+v vs %+v", name, *ss, *ps)
		}
	}
}
