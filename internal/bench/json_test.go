package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"testing"
	"time"

	"selspec/internal/obs"
	"selspec/internal/opt"
	"selspec/internal/specialize"
)

// observedCache backs observedSuite the way cachedSuite backs
// quickSuite: the grid is expensive, the JSON checks are not.
var observedCache *Suite

// observedSuite runs the quick grid with a live metrics registry, so
// the trajectory's metrics block is populated.
func observedSuite(t *testing.T) *Suite {
	t.Helper()
	if observedCache != nil {
		return observedCache
	}
	s, err := RunSuite(Options{
		Quick:      true,
		StepLimit:  500_000_000,
		SpecParams: specialize.Params{Threshold: specialize.DefaultThreshold},
		Metrics:    obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	observedCache = s
	return s
}

func configByName(t *testing.T, name string) opt.Config {
	t.Helper()
	for _, cfg := range opt.Configs() {
		if cfg.String() == name {
			return cfg
		}
	}
	t.Fatalf("unknown config %q", name)
	return 0
}

// TestJSONRoundTrip: the perf-trajectory JSON (the contract surface
// other tooling diffs against) must decode back into an equivalent
// JSONTrajectory — every field, including the failures array from a
// poisoned run — and re-encode byte-identically. Any field rename,
// omitted tag, or float drift breaks this test before it breaks a
// downstream consumer.
func TestJSONRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		suite *Suite
	}{
		{"clean", quickSuite(t)},
		{"poisoned", poisonedSuite(t)},
		{"observed", observedSuite(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var first bytes.Buffer
			if err := tc.suite.WriteJSON(&first, 1234*time.Millisecond, true, 1); err != nil {
				t.Fatal(err)
			}

			var tr JSONTrajectory
			if err := json.Unmarshal(first.Bytes(), &tr); err != nil {
				t.Fatal(err)
			}
			if tr.SuiteWallNS != (1234 * time.Millisecond).Nanoseconds() {
				t.Errorf("suite_wall_ns = %d", tr.SuiteWallNS)
			}
			if !tr.Quick {
				t.Error("quick flag lost")
			}
			if tr.Results == nil || tr.Failures == nil || tr.Metrics == nil {
				t.Fatal("results/failures/metrics decoded as null")
			}
			if tc.name == "observed" {
				if len(tr.Metrics) == 0 {
					t.Fatal("observed run has an empty metrics block")
				}
				if !sort.SliceIsSorted(tr.Metrics, func(i, j int) bool {
					return tr.Metrics[i].Name < tr.Metrics[j].Name
				}) {
					t.Error("metrics block is not name-sorted")
				}
				found := map[string]uint64{}
				for _, m := range tr.Metrics {
					found[m.Name] = m.Value
				}
				for _, name := range []string{
					"selspec_interp_sends_total",
					"selspec_interp_steps_total",
					"selspec_dispatch_pic_hits_total",
					"selspec_dispatch_gf_cache_hits_total",
				} {
					if found[name] == 0 {
						t.Errorf("metrics block missing or zero %s", name)
					}
				}
			} else if len(tr.Metrics) != 0 {
				t.Errorf("unobserved run has metrics: %+v", tr.Metrics)
			}
			if tc.name == "poisoned" {
				if len(tr.Failures) != 1 || tr.Failures[0].Benchmark != "InstSched" ||
					tr.Failures[0].Config != "CHA" || tr.Failures[0].Stage != "harness" {
					t.Errorf("failures = %+v", tr.Failures)
				}
			} else if len(tr.Failures) != 0 {
				t.Errorf("clean run has failures: %+v", tr.Failures)
			}
			// Spot-check that a decoded row carries every metric field,
			// not just the ones with non-zero defaults.
			r := tr.Results[0]
			if r.Benchmark == "" || r.Config == "" || r.Cycles == 0 || r.IRNodes == 0 {
				t.Errorf("decoded row lost fields: %+v", r)
			}
			if tc.suite.Results[r.Benchmark] == nil ||
				tc.suite.Results[r.Benchmark][configByName(t, r.Config)].Cycles != r.Cycles {
				t.Errorf("row %s/%s does not match the in-memory suite", r.Benchmark, r.Config)
			}

			// Re-encoding the decoded struct reproduces the file
			// byte-for-byte: the Go types are a complete model of the
			// format, with nothing dropped or reordered.
			var second bytes.Buffer
			enc := json.NewEncoder(&second)
			enc.SetIndent("", "  ")
			if err := enc.Encode(tr); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("re-encoded JSON differs from original:\n--- first\n%s\n--- second\n%s",
					first.String(), second.String())
			}

			// And a second decode of the re-encoding is structurally equal.
			var tr2 JSONTrajectory
			if err := json.Unmarshal(second.Bytes(), &tr2); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tr, tr2) {
				t.Error("double round trip is not a fixed point")
			}
		})
	}
}
