package gen

// FuzzGen drives the generator itself from fuzzer-controlled bytes:
// derive a Config from the input, generate a program, and push it
// through the entire pipeline — parse, check, specialize, VM compile,
// bytecode verify, differential run — requiring no panics and
// tree/VM-identical observables. The generator's construction
// invariants (acyclic rank-ordered call graph, ladder specializers on
// one chain, globally unique field names) are what make "every
// generated program is valid" a checkable property; this target is the
// enforcement.

import (
	"encoding/binary"
	"testing"

	"selspec/internal/check"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
)

// configFromBytes derives a bounded generator Config from fuzzer input.
// Sizes are capped so a single fuzz execution stays fast; the seed gets
// the full 64-bit range.
func configFromBytes(data []byte) Config {
	var b [16]byte
	copy(b[:], data)
	seed := binary.LittleEndian.Uint64(b[:8])
	return Config{
		Seed:       seed,
		Classes:    4 + int(b[8]%60),
		Methods:    8 + int(b[9])&0x7f,
		Depth:      1 + int(b[10]%40),
		MaxArity:   1 + int(b[11]%3),
		CheckClean: b[12]&1 == 1,
		Drivers:    1 + int(b[13]%16),
		CalledGFs:  1 + int(b[14]%32),
	}
}

func FuzzGen(f *testing.F) {
	// Committed corpus: the fixed differential-grid seeds, the config
	// that generated the vselect/send inline-cache collision divergence
	// (seed 32 at grid scale — minimized source lives in
	// testdata/shrunk/ and internal/vm's FuzzVMDiff corpus), and edge
	// shapes (min sizes, arity 1, check-clean).
	seedBytes := func(seed uint64, classes, methods, depth, arity, clean, drivers, called byte) []byte {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[:8], seed)
		b[8], b[9], b[10], b[11], b[12], b[13], b[14] = classes, methods, depth, arity, clean, drivers, called
		return b[:]
	}
	f.Add(seedBytes(1, 26, 112, 7, 2, 0, 23, 47))
	f.Add(seedBytes(2, 26, 112, 7, 2, 0, 23, 47))
	f.Add(seedBytes(3, 26, 112, 7, 2, 1, 23, 47))
	f.Add(seedBytes(32, 21, 92, 7, 2, 0, 23, 47)) // vselect IC collision config
	f.Add(seedBytes(77, 26, 112, 7, 2, 0, 23, 47))
	f.Add(seedBytes(0, 0, 0, 0, 0, 0, 0, 0))                // all-minimum knobs
	f.Add(seedBytes(^uint64(0), 59, 127, 39, 2, 1, 15, 31)) // all-maximum knobs
	f.Add(seedBytes(11, 8, 16, 1, 0, 0, 0, 0))              // arity 1, shallow
	f.Add(seedBytes(42, 40, 100, 30, 1, 1, 8, 16))          // deep chain, check-clean

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := configFromBytes(data)
		g := New(cfg)
		src := g.Source()

		// The static checker must accept every generated program (it
		// reports findings, never errors, on valid source).
		if _, err := pipeline.CheckSource(g.Name(), src, check.Options{}); err != nil {
			t.Fatalf("check rejected generated source: %v", err)
		}

		// Full differential: tree vs VM under Base and Selective. The
		// fuzz guards are tight — generated programs at these sizes run
		// in well under a million steps.
		b := g.Benchmark()
		fg := Guards{StepLimit: 5_000_000}
		for _, cfgOpt := range []opt.Config{opt.Base, opt.Selective} {
			if err := CompareEngines(b, cfgOpt, fg); err != nil {
				t.Fatalf("seed %d: %v", cfg.Seed, err)
			}
		}
	})
}
