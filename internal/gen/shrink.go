// Greedy AST shrinker for divergence minimization. Given a failing
// source program and a predicate that reproduces the failure, Shrink
// repeatedly deletes program elements — methods, classes (with their
// methods and references), statements, globals — keeping each deletion
// only when the shrunk program still parses, prints, and reproduces the
// failure. The result is a local minimum: no single remaining deletion
// keeps the failure alive. Minimized cases are small enough to read and
// to commit as fuzz corpus seeds.

package gen

import (
	"strings"

	"selspec/internal/lang"
)

// ShrinkResult reports what the shrinker did.
type ShrinkResult struct {
	Source     string // minimized source (still failing)
	Passes     int    // full fixed-point passes over the deletion menu
	Deleted    int    // elements removed in total
	Candidates int    // deletion attempts made
}

// MaxShrinkAttempts bounds the total number of predicate evaluations so
// a pathological predicate cannot stall the harness.
const MaxShrinkAttempts = 20000

// Shrink minimizes src with respect to fails. fails must return true on
// src itself (otherwise Shrink returns src unchanged with zero work
// recorded). The predicate receives full source text; it is free to
// parse, run, or diff it. Shrinking is purely syntactic: every
// intermediate candidate is validated by re-parsing before fails sees
// it, so the predicate only ever observes well-formed programs.
func Shrink(src string, fails func(src string) bool) ShrinkResult {
	res := ShrinkResult{Source: src}
	prog, err := lang.Parse(src)
	if err != nil || !fails(src) {
		return res
	}
	cur := prog
	for {
		res.Passes++
		deleted := 0
		deleted += shrinkMethods(&cur, fails, &res)
		deleted += shrinkClasses(&cur, fails, &res)
		deleted += shrinkStmts(&cur, fails, &res)
		deleted += shrinkGlobals(&cur, fails, &res)
		res.Deleted += deleted
		if deleted == 0 || res.Candidates >= MaxShrinkAttempts {
			break
		}
	}
	res.Source = lang.Format(cur)
	return res
}

// try re-renders the candidate program; if it parses and still fails,
// it becomes the new current program. Reparsing rather than mutating in
// place keeps every accepted state printable and well formed.
func try(cur **lang.Program, cand *lang.Program, fails func(string) bool, res *ShrinkResult) bool {
	if res.Candidates >= MaxShrinkAttempts {
		return false
	}
	res.Candidates++
	src := lang.Format(cand)
	rp, err := lang.Parse(src)
	if err != nil || !fails(src) {
		return false
	}
	*cur = rp
	return true
}

func shrinkMethods(cur **lang.Program, fails func(string) bool, res *ShrinkResult) int {
	deleted := 0
	i := 0
	for i < len((*cur).Methods) {
		m := (*cur).Methods[i]
		if m.Name == "main" && !hasDispatched(m) {
			i++ // never delete the entry point
			continue
		}
		cand := clone(*cur)
		cand.Methods = append(cand.Methods[:i:i], cand.Methods[i+1:]...)
		if try(cur, cand, fails, res) {
			deleted++
			continue // same index now holds the next method
		}
		i++
	}
	return deleted
}

func hasDispatched(m *lang.MethodDecl) bool {
	for _, p := range m.Params {
		if p.Spec != "" {
			return true
		}
	}
	return false
}

func shrinkClasses(cur **lang.Program, fails func(string) bool, res *ShrinkResult) int {
	deleted := 0
	i := 0
	for i < len((*cur).Classes) {
		name := (*cur).Classes[i].Name
		cand := clone(*cur)
		cand.Classes = append(cand.Classes[:i:i], cand.Classes[i+1:]...)
		// Also drop methods specialized on the deleted class; parents and
		// body references to it would fail the re-parse/load predicate, so
		// those candidates simply don't stick.
		kept := cand.Methods[:0]
		for _, m := range cand.Methods {
			if !mentionsClass(m, name) {
				kept = append(kept, m)
			}
		}
		cand.Methods = kept
		if try(cur, cand, fails, res) {
			deleted++
			continue
		}
		i++
	}
	return deleted
}

func mentionsClass(m *lang.MethodDecl, class string) bool {
	for _, p := range m.Params {
		if p.Spec == class {
			return true
		}
	}
	// Coarse but safe: a textual mention anywhere in the printed method
	// (new expressions, nested uses) keeps the method tied to the class.
	one := lang.Program{Methods: []*lang.MethodDecl{m}}
	return strings.Contains(lang.Format(&one), class)
}

func shrinkStmts(cur **lang.Program, fails func(string) bool, res *ShrinkResult) int {
	deleted := 0
	for mi := 0; mi < len((*cur).Methods); mi++ {
		si := 0
		for {
			m := (*cur).Methods[mi]
			if si >= len(m.Body.Stmts) || len(m.Body.Stmts) <= 1 {
				break
			}
			cand := clone(*cur)
			cm := *cand.Methods[mi] // copy the node; never scribble on the shared decl
			cm.Body = &lang.Block{Stmts: append(cm.Body.Stmts[:si:si], cm.Body.Stmts[si+1:]...)}
			cand.Methods[mi] = &cm
			if try(cur, cand, fails, res) {
				deleted++
				continue
			}
			si++
		}
	}
	return deleted
}

func shrinkGlobals(cur **lang.Program, fails func(string) bool, res *ShrinkResult) int {
	deleted := 0
	i := 0
	for i < len((*cur).Globals) {
		cand := clone(*cur)
		cand.Globals = append(cand.Globals[:i:i], cand.Globals[i+1:]...)
		if try(cur, cand, fails, res) {
			deleted++
			continue
		}
		i++
	}
	return deleted
}

// clone copies the top-level slices (and per-method body pointers stay
// shared — deletions use three-index append so shared arrays are never
// scribbled on, and accepted candidates are re-parsed anyway).
func clone(p *lang.Program) *lang.Program {
	return &lang.Program{
		Classes: append([]*lang.ClassDecl(nil), p.Classes...),
		Methods: append([]*lang.MethodDecl(nil), p.Methods...),
		Globals: append([]*lang.GlobalDecl(nil), p.Globals...),
	}
}
