package gen

import (
	"fmt"
	"testing"

	"selspec/internal/driver"
	"selspec/internal/opt"
)

// gridGuards keeps individual grid cells snappy; generated programs at
// grid scale run well under a million steps.
var gridGuards = Guards{StepLimit: 20_000_000}

// TestDifferentialGrid: 25 fixed-seed generated programs × {tree, vm} ×
// {Base, Selective}, byte-identical value/output/error-text/counters/
// step counts. Run with -race in CI.
func TestDifferentialGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid skipped in -short mode")
	}
	for seed := uint64(1); seed <= 25; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			g := New(Config{Seed: seed, Classes: 30, Methods: 120, CheckClean: seed%3 == 0})
			b := g.Benchmark()
			for _, cfg := range []opt.Config{opt.Base, opt.Selective} {
				if err := CompareEngines(b, cfg, gridGuards); err != nil {
					t.Errorf("%v", err)
				}
			}
		})
	}
}

// TestConfigSemantics: every optimization configuration must preserve
// Base semantics on generated programs, under both engines.
func TestConfigSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("config sweep skipped in -short mode")
	}
	for seed := uint64(30); seed <= 35; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			b := New(Config{Seed: seed, Classes: 25, Methods: 100}).Benchmark()
			for _, eng := range []driver.Engine{driver.EngineTree, driver.EngineVM} {
				if err := CompareConfigs(b, opt.Configs(), eng, gridGuards); err != nil {
					t.Errorf("engine %v: %v", eng, err)
				}
			}
		})
	}
}

// TestDifferentialDeterminism: the full differential observation of a
// fixed seed is reproducible run-to-run (not just the source text).
func TestDifferentialDeterminism(t *testing.T) {
	t.Parallel()
	b := New(Config{Seed: 77, Classes: 30, Methods: 120}).Benchmark()
	first, err := Observe(b, opt.Selective, driver.EngineVM, gridGuards)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Observe(b, opt.Selective, driver.EngineVM, gridGuards)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("two observations of the same cell differ:\n%+v\n%+v", first, second)
	}
}
