// Metamorphic mutators: source-to-source transformations that must not
// change a program's observable behavior. Each returns the mutated
// source (via parse → edit → print, so the output is exactly what the
// printer produces) together with a description for failure reports.

package gen

import (
	"fmt"

	"selspec/internal/lang"
)

// Mutation is one semantics-preserving program edit.
type Mutation struct {
	Name   string
	Source string
}

// AddUnrelatedSubclass appends a fresh leaf class under the picked
// existing class (round-robin by pick) that no send ever names and no
// method specializes on. Dispatch must be oblivious to it: every
// existing lookup result, and therefore every observable, is unchanged.
func AddUnrelatedSubclass(src string, pick int) (Mutation, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return Mutation{}, fmt.Errorf("mutate parse: %w", err)
	}
	if len(prog.Classes) == 0 {
		return Mutation{}, fmt.Errorf("mutate: no classes to subclass")
	}
	parent := prog.Classes[pick%len(prog.Classes)].Name
	name := fmt.Sprintf("GMutant%d", pick)
	prog.Classes = append(prog.Classes, &lang.ClassDecl{
		Name:    name,
		Parents: []string{parent},
	})
	return Mutation{
		Name:   fmt.Sprintf("unrelated-subclass %s isa %s", name, parent),
		Source: lang.Format(prog),
	}, nil
}

// InjectDeadMethod adds a method to the picked generic function,
// specialized on a fresh never-instantiated class, so it can never be
// invoked. Method lookup for every reachable tuple is unchanged (the
// new specializer's cone contains only the new class), so observables
// must be identical.
func InjectDeadMethod(src string, pick int) (Mutation, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return Mutation{}, fmt.Errorf("mutate parse: %w", err)
	}
	// Find a dispatched method to clone the shape of: same name and
	// arity keeps the GF well-formed; the fresh specializer class makes
	// the copy unreachable.
	var donor *lang.MethodDecl
	n := 0
	for _, m := range prog.Methods {
		if m.Name == "main" {
			continue
		}
		for _, p := range m.Params {
			if p.Spec != "" {
				if n == pick%countDispatched(prog) {
					donor = m
				}
				n++
				break
			}
		}
		if donor != nil {
			break
		}
	}
	if donor == nil {
		return Mutation{}, fmt.Errorf("mutate: no dispatched method to shadow")
	}
	cls := fmt.Sprintf("GDeadSpec%d", pick)
	prog.Classes = append(prog.Classes, &lang.ClassDecl{Name: cls})
	params := make([]lang.Param, len(donor.Params))
	first := true
	for i, p := range donor.Params {
		params[i] = lang.Param{Name: p.Name}
		if p.Spec != "" && first {
			params[i].Spec = cls // one fresh-specialized position suffices
			first = false
		}
	}
	prog.Methods = append(prog.Methods, &lang.MethodDecl{
		Name:   donor.Name,
		Params: params,
		Body: &lang.Block{Stmts: []lang.Stmt{
			&lang.ReturnStmt{X: &lang.IntLit{Val: 0}},
		}},
	})
	return Mutation{
		Name:   fmt.Sprintf("dead-method %s on fresh %s", donor.Name, cls),
		Source: lang.Format(prog),
	}, nil
}

func countDispatched(prog *lang.Program) int {
	n := 0
	for _, m := range prog.Methods {
		if m.Name == "main" {
			continue
		}
		for _, p := range m.Params {
			if p.Spec != "" {
				n++
				break
			}
		}
	}
	if n == 0 {
		return 1
	}
	return n
}
