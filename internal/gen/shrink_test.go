package gen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selspec/internal/driver"
	"selspec/internal/lang"
	"selspec/internal/opt"
	"selspec/internal/programs"
)

// TestShrinkDrill: inject a synthetic "failure" (presence of a marker
// generic function in the source) and verify the shrinker drives the
// program down to a small local minimum that still reproduces it, while
// every candidate it accepted stayed parseable.
func TestShrinkDrill(t *testing.T) {
	t.Parallel()
	g := New(Config{Seed: 11, Classes: 30, Methods: 120})
	src := g.Source()
	marker := g.GFs[len(g.GFs)/2].Name + "("
	fails := func(s string) bool { return strings.Contains(s, marker) }

	res := Shrink(src, fails)
	if !fails(res.Source) {
		t.Fatal("shrunk program no longer reproduces the failure")
	}
	if _, err := lang.Parse(res.Source); err != nil {
		t.Fatalf("shrunk program does not parse: %v", err)
	}
	if res.Deleted == 0 {
		t.Fatal("shrinker deleted nothing")
	}
	if len(res.Source) >= len(src) {
		t.Fatalf("shrunk source (%d bytes) not smaller than input (%d bytes)", len(res.Source), len(src))
	}
	// Local minimum sanity: the marker GF's methods must survive, and
	// the shrunk program should be a small fraction of the original.
	if len(res.Source) > len(src)/2 {
		t.Errorf("weak shrink: %d -> %d bytes", len(src), len(res.Source))
	}
}

// TestShrinkNonFailing: a predicate that never fires returns the input
// untouched with zero deletions.
func TestShrinkNonFailing(t *testing.T) {
	t.Parallel()
	src := New(Config{Seed: 12, Classes: 20, Methods: 60}).Source()
	res := Shrink(src, func(string) bool { return false })
	if res.Source != src || res.Deleted != 0 || res.Passes != 0 {
		t.Fatalf("non-failing input was modified: %+v", res)
	}
}

// TestShrunkRegressions replays every committed shrinker-minimized
// divergence under the full differential harness: tree and VM must now
// agree on all configurations. Each fixture is the minimized form of a
// real tree-vs-VM divergence the generator found (see the fixture name
// for the defect), so this is the regression net for fixed VM bugs.
func TestShrunkRegressions(t *testing.T) {
	t.Parallel()
	files, err := filepath.Glob("testdata/shrunk/*.cecil")
	if err != nil || len(files) == 0 {
		t.Fatalf("no shrunk fixtures found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		b := programs.Benchmark{
			Name:   filepath.Base(f),
			Source: string(src),
			Train:  map[string]int64{"genReps": 2},
			Test:   map[string]int64{"genReps": 3},
		}
		for _, cfg := range opt.Configs() {
			if err := CompareEngines(b, cfg, gridGuards); err != nil {
				t.Errorf("%v", err)
			}
		}
		if err := CompareConfigs(b, opt.Configs(), driver.EngineVM, gridGuards); err != nil {
			t.Errorf("%v", err)
		}
	}
}
