// Differential harness: run one program under both execution tiers and
// any set of configurations, and compare every deterministic
// observable. The tree interpreter is the oracle; the bytecode VM must
// be byte-indistinguishable from it — and any configuration must be
// value/output-indistinguishable from Base. Runtime errors are
// observables too: a failing program must fail with the identical
// positioned error text everywhere.

package gen

import (
	"fmt"
	"time"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/opt"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

// Observation is everything deterministic about one run. Two runs of
// the same (program, config) under different engines must produce
// identical Observations; two configs of the same program must agree on
// Value and Output (the semantic observables).
type Observation struct {
	Value    string
	Output   string
	ErrText  string // runtime error text; "" on success
	Counters interp.Counters
	Steps    uint64
}

// Guards bounds one differential run so a pathological generated
// program degrades into a deterministic resource-guard error instead of
// hanging the harness.
type Guards struct {
	StepLimit  uint64
	DepthLimit int
	Timeout    time.Duration
}

// DefaultGuards is sized for generated stress programs: generous enough
// for 10k-class scale runs, bounded enough to terminate the harness.
var DefaultGuards = Guards{StepLimit: 200_000_000, DepthLimit: 0}

// Observe runs b under one configuration and engine and captures the
// observables. The returned error is harness-level only (load/compile
// infrastructure failures); guest runtime errors land in ErrText.
func Observe(b programs.Benchmark, cfg opt.Config, eng driver.Engine, gd Guards) (Observation, error) {
	p, err := driver.LoadNamed(b.Name, b.Source)
	if err != nil {
		return Observation{}, fmt.Errorf("load %s: %w", b.Name, err)
	}
	res, err := p.RunConfig(driver.ConfigOptions{
		Config:     cfg,
		Train:      b.Train,
		Test:       b.Test,
		SpecParams: specialize.Params{Threshold: 1}, // tiny profiles still specialize
		RunExtra: func(ro *driver.RunOptions) {
			ro.CaptureOutput = true
			ro.Engine = eng
			ro.StepLimit = gd.StepLimit
			ro.DepthLimit = gd.DepthLimit
			ro.Timeout = gd.Timeout
			ro.Verify = true
		},
	})
	if err != nil {
		// Guest-level failure: an observable, compared across engines.
		return Observation{ErrText: err.Error()}, nil
	}
	if res.Engine != eng {
		return Observation{}, fmt.Errorf("%s under %v: requested engine %v but %v ran (unexpected fallback)",
			b.Name, cfg, eng, res.Engine)
	}
	return Observation{
		Value:    res.Value,
		Output:   res.Output,
		Counters: res.Counters,
		Steps:    res.Steps,
	}, nil
}

// Divergence describes one failed comparison: which cell, which
// observable, and the two values.
type Divergence struct {
	Benchmark string
	Config    opt.Config
	Field     string // "value", "output", "error", "counters", "steps"
	Tree, VM  string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("%s under %v: %s diverged:\n  tree: %s\n  vm:   %s",
		d.Benchmark, d.Config, d.Field, d.Tree, d.VM)
}

// CompareEngines runs b under cfg on both tiers and requires
// byte-identical observables. Returns a *Divergence (as error) on
// mismatch, nil when the engines agree, or a wrapped harness error.
func CompareEngines(b programs.Benchmark, cfg opt.Config, gd Guards) error {
	tree, err := Observe(b, cfg, driver.EngineTree, gd)
	if err != nil {
		return err
	}
	vm, err := Observe(b, cfg, driver.EngineVM, gd)
	if err != nil {
		return err
	}
	return diffObservations(b.Name, cfg, tree, vm)
}

func diffObservations(name string, cfg opt.Config, tree, vm Observation) error {
	mk := func(field, t, v string) error {
		return &Divergence{Benchmark: name, Config: cfg, Field: field, Tree: t, VM: v}
	}
	switch {
	case tree.ErrText != vm.ErrText:
		return mk("error", tree.ErrText, vm.ErrText)
	case tree.Value != vm.Value:
		return mk("value", tree.Value, vm.Value)
	case tree.Output != vm.Output:
		return mk("output", tree.Output, vm.Output)
	case tree.Counters != vm.Counters:
		return mk("counters", fmt.Sprintf("%+v", tree.Counters), fmt.Sprintf("%+v", vm.Counters))
	case tree.Steps != vm.Steps:
		return mk("steps", fmt.Sprint(tree.Steps), fmt.Sprint(vm.Steps))
	}
	return nil
}

// CompareConfigs checks the cross-configuration semantic invariant: all
// configurations must compute Base's value and output (or fail with
// Base's error). Dispatch counters legitimately differ across configs,
// so only the semantic observables are compared.
func CompareConfigs(b programs.Benchmark, cfgs []opt.Config, eng driver.Engine, gd Guards) error {
	base, err := Observe(b, opt.Base, eng, gd)
	if err != nil {
		return err
	}
	for _, cfg := range cfgs {
		if cfg == opt.Base {
			continue
		}
		o, err := Observe(b, cfg, eng, gd)
		if err != nil {
			return err
		}
		if o.ErrText != base.ErrText || o.Value != base.Value || o.Output != base.Output {
			return &Divergence{Benchmark: b.Name, Config: cfg, Field: "semantics vs Base",
				Tree: fmt.Sprintf("base: value=%q err=%q output %dB", base.Value, base.ErrText, len(base.Output)),
				VM:   fmt.Sprintf("%v:  value=%q err=%q output %dB", cfg, o.Value, o.ErrText, len(o.Output))}
		}
	}
	return nil
}
