package gen

import (
	"fmt"
	"testing"

	"selspec/internal/driver"
	"selspec/internal/opt"
	"selspec/internal/programs"
)

// metamorphicCompare runs the original and mutated program under every
// configuration and requires identical semantic observables. Under Base
// the dispatch counters must match exactly too: the mutations touch
// classes no send ever sees, so even the dynamic dispatch mix is
// unchanged. (CHA/Selective counters may legitimately shift — class
// analysis sees the new class — so only semantics are compared there.)
func metamorphicCompare(t *testing.T, orig programs.Benchmark, mut Mutation) {
	t.Helper()
	mb := programs.Benchmark{Name: orig.Name + "+mut", Source: mut.Source, Train: orig.Train, Test: orig.Test}
	for _, cfg := range opt.Configs() {
		o, err := Observe(orig, cfg, driver.EngineTree, gridGuards)
		if err != nil {
			t.Fatalf("%s under %v: %v", mut.Name, cfg, err)
		}
		m, err := Observe(mb, cfg, driver.EngineTree, gridGuards)
		if err != nil {
			t.Fatalf("%s under %v: %v", mut.Name, cfg, err)
		}
		if o.Value != m.Value || o.Output != m.Output || o.ErrText != m.ErrText {
			t.Errorf("%s under %v changed semantics:\n  orig: value=%q err=%q\n  mut:  value=%q err=%q",
				mut.Name, cfg, o.Value, o.ErrText, m.Value, m.ErrText)
		}
		if cfg == opt.Base && (o.Counters != m.Counters || o.Steps != m.Steps) {
			t.Errorf("%s under Base changed counters/steps:\n  orig: %+v steps=%d\n  mut:  %+v steps=%d",
				mut.Name, o.Counters, o.Steps, m.Counters, m.Steps)
		}
	}
}

// TestMetamorphicUnrelatedSubclass: inserting a subclass that nothing
// references leaves every observable unchanged.
func TestMetamorphicUnrelatedSubclass(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic suite skipped in -short mode")
	}
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			b := New(Config{Seed: seed, Classes: 25, Methods: 100}).Benchmark()
			for pick := 0; pick < 3; pick++ {
				mut, err := AddUnrelatedSubclass(b.Source, pick*7+int(seed))
				if err != nil {
					t.Fatal(err)
				}
				metamorphicCompare(t, b, mut)
			}
		})
	}
}

// TestMetamorphicDeadMethod: adding a method specialized on a fresh
// never-instantiated class cannot change any dispatch outcome.
func TestMetamorphicDeadMethod(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic suite skipped in -short mode")
	}
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			b := New(Config{Seed: seed, Classes: 25, Methods: 100}).Benchmark()
			for pick := 0; pick < 3; pick++ {
				mut, err := InjectDeadMethod(b.Source, pick*5+int(seed))
				if err != nil {
					t.Fatal(err)
				}
				metamorphicCompare(t, b, mut)
			}
		})
	}
}
