package gen

import (
	"os"
	"testing"
	"time"

	"selspec/internal/check"
	"selspec/internal/driver"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
)

// TestProbe exercises the scale probe at a size small enough for the
// regular suite and sanity-checks the report invariants.
func TestProbe(t *testing.T) {
	t.Parallel()
	rep, err := Probe(Config{Seed: 9, Classes: 200, Methods: 800, Depth: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ApplicableMethods < 800 {
		t.Errorf("applicable ran over %d methods, want >= 800", rep.ApplicableMethods)
	}
	if rep.TabledGFs == 0 || rep.TableEntries == 0 {
		t.Errorf("no dispatch tables measured: %+v", rep)
	}
	if rep.CompressionX < 1 {
		t.Errorf("pole compression expanded the table: %.2fx", rep.CompressionX)
	}
	if rep.Stats.Classes != 200 {
		t.Errorf("stats: %+v", rep.Stats)
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}

// TestMegaScale is the acceptance drill for the 10k-class/100k-method
// target: generation, parse, check, hierarchy probe, and the full
// pipeline — specialize, VM compile, bytecode verify, run — must all
// complete inside the interpreter resource guards at 10k classes.
// Running BOTH engines at that size roughly doubles the dominant
// compile cost, so the byte-level tree-vs-VM differential runs at
// 2k-class scale here (and at grid scale, under -race, in
// TestDifferentialGrid). The drill takes minutes, so it only runs when
// SELSPEC_GEN_SCALE=1 (the CI gen-stress job sets it).
func TestMegaScale(t *testing.T) {
	if os.Getenv("SELSPEC_GEN_SCALE") == "" {
		t.Skip("set SELSPEC_GEN_SCALE=1 to run the 10k-class scale drill")
	}
	cfg := Config{Seed: 1002, Classes: 10_000, Methods: 100_000, Depth: 48}

	t0 := time.Now()
	rep, err := Probe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("probe (%v):\n%s", time.Since(t0), rep)
	if rep.Stats.Classes != 10_000 || rep.Stats.Methods < 100_000 {
		t.Fatalf("scale not reached: %+v", rep.Stats)
	}
	if rep.Stats.MaxDepth < 32 {
		t.Fatalf("depth %d < 32", rep.Stats.MaxDepth)
	}

	// Tree-vs-VM byte-identical observables under Selective at 2k
	// classes (two full pipelines).
	mid := New(Config{Seed: 1002, Classes: 2_000, Methods: 8_000, Depth: 48})
	t0 = time.Now()
	if err := CompareEngines(mid.Benchmark(), opt.Selective, DefaultGuards); err != nil {
		t.Errorf("%v", err)
	}
	t.Logf("differential Selective tree-vs-vm at 2k classes: %v", time.Since(t0))

	// The static analyzer must get through the 10k program without an
	// internal error (findings are fine: this config does not ask for
	// check-clean output, so dead methods are expected).
	g := New(cfg)
	t0 = time.Now()
	ds, err := pipeline.CheckSource(g.Name(), g.Source(), check.Options{})
	if err != nil {
		t.Fatalf("check at 10k classes: %v", err)
	}
	t.Logf("check at 10k classes: %v, %d findings", time.Since(t0), len(ds))

	// The 10k acceptance pipeline: train, specialize, VM compile,
	// bytecode verify (Observe always verifies), run.
	t0 = time.Now()
	o, err := Observe(g.Benchmark(), opt.Selective, driver.EngineVM, DefaultGuards)
	if err != nil {
		t.Fatal(err)
	}
	if o.ErrText != "" {
		t.Fatalf("mega program failed at runtime: %s", o.ErrText)
	}
	t.Logf("Selective vm pipeline at 10k classes: %v, %d steps", time.Since(t0), o.Steps)
}
