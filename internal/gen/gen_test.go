package gen

import (
	"strings"
	"testing"

	"selspec/internal/check"
	"selspec/internal/lang"
	"selspec/internal/pipeline"
)

// TestDeterministic: a fixed seed must reproduce byte-identical source.
// Construction happens twice from scratch so the test catches any map
// iteration or other nondeterminism in the generator itself.
func TestDeterministic(t *testing.T) {
	t.Parallel()
	for _, cfg := range []Config{
		{Seed: 1},
		{Seed: 42, Classes: 80, Methods: 400, Depth: 16},
		{Seed: 7, Classes: 120, Methods: 300, CheckClean: true},
		{Seed: 99, Classes: 60, MaxArity: 1},
	} {
		a := New(cfg).Source()
		b := New(cfg).Source()
		if a != b {
			t.Fatalf("seed %d: two generations differ", cfg.Seed)
		}
	}
	if New(Config{Seed: 1}).Source() == New(Config{Seed: 2}).Source() {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestRoundTrip: generated source must parse, and printing the parse
// result must reproduce the program body byte-for-byte (the generator
// emits through the same printer, modulo the header comment).
func TestRoundTrip(t *testing.T) {
	t.Parallel()
	for seed := uint64(1); seed <= 10; seed++ {
		g := New(Config{Seed: seed, Classes: 50, Methods: 200})
		src := g.Source()
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v", seed, err)
		}
		printed := lang.Format(prog)
		body := src[strings.Index(src, "\n")+1:] // drop the header comment
		if printed != body {
			t.Fatalf("seed %d: print(parse(src)) differs from generated body", seed)
		}
	}
}

func TestStatsHonorConfig(t *testing.T) {
	t.Parallel()
	g := New(Config{Seed: 3, Classes: 500, Methods: 2000, Depth: 32, MaxArity: 3})
	s := g.Stats
	if s.Classes != 500 {
		t.Errorf("classes = %d, want 500", s.Classes)
	}
	if s.Methods < 2000 {
		t.Errorf("methods = %d, want >= 2000", s.Methods)
	}
	if s.MaxDepth < 32 {
		t.Errorf("max depth = %d, want >= 32", s.MaxDepth)
	}
	if s.MIClasses == 0 {
		t.Error("no multiple-inheritance classes generated")
	}
	if s.MaxArity < 2 {
		t.Errorf("max dispatch arity = %d, want >= 2", s.MaxArity)
	}
}

// TestCheckClean: programs generated with CheckClean must produce zero
// diagnostics from the full static-check suite — every GF is called,
// every ladder specializer class is instantiated.
func TestCheckClean(t *testing.T) {
	t.Parallel()
	for seed := uint64(1); seed <= 6; seed++ {
		g := New(Config{Seed: seed, Classes: 60, Methods: 250, CheckClean: true})
		diags, err := pipeline.CheckSource(g.Name(), g.Source(), check.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range diags {
			t.Errorf("seed %d: unexpected diagnostic: %s", seed, d)
		}
	}
}

// TestNormalizeDefaults pins the documented defaults.
func TestNormalizeDefaults(t *testing.T) {
	t.Parallel()
	c := Config{Seed: 5}.Normalize()
	if c.Classes == 0 || c.Methods == 0 || c.Depth == 0 || c.MaxArity == 0 {
		t.Fatalf("Normalize left zero fields: %+v", c)
	}
	if c.Depth > c.Classes {
		t.Fatalf("depth %d exceeds classes %d", c.Depth, c.Classes)
	}
	if c.MaxArity > 3 {
		t.Fatalf("arity %d out of range", c.MaxArity)
	}
}
