// Scale probe: build the hierarchy for a generated program and measure
// the structures the paper's machinery must scale with — the
// ApplicableClasses closure over every method and the pole-compressed
// multi-method dispatch tables — reporting compressed vs uncompressed
// table size against the Gawrychowski-style yardstick (a class-indexed
// n-ary table is |C|^n entries; pole compression should stay within a
// small multiple of methods×arity).

package gen

import (
	"fmt"
	"sort"
	"time"

	"selspec/internal/dispatch"
	"selspec/internal/hier"
	"selspec/internal/lang"
)

// ProbeReport aggregates scale measurements for one generated program.
type ProbeReport struct {
	Stats Stats `json:"stats"`

	SourceBytes int `json:"source_bytes"`

	ParseMS     float64 `json:"parse_ms"`
	HierBuildMS float64 `json:"hier_build_ms"`

	// ApplicableClasses over every method of every GF.
	ApplicableMethods int     `json:"applicable_methods"`
	ApplicableMS      float64 `json:"applicable_ms"`
	ApplicableUSPer   float64 `json:"applicable_us_per_method"`

	// Dispatch tables, built for the ProbeGFs largest multi-dispatch GFs
	// (all of them when ProbeGFs <= 0).
	TabledGFs        int     `json:"tabled_gfs"`
	TableBuildMS     float64 `json:"table_build_ms"`
	TableEntries     int     `json:"table_entries"`
	UncompressedLogE float64 `json:"uncompressed_entries_log10"` // sum over GFs, log10
	CompressionX     float64 `json:"compression_factor"`         // uncompressed / compressed (capped)
	MaxTableEntries  int     `json:"max_table_entries"`

	// Yardstick: entries per method across the tabled GFs. Gawrychowski
	// et al. show binary dispatch needs structures near-linear in the
	// number of methods; a pole table far above methods×arity signals a
	// compression regression.
	EntriesPerMethod float64 `json:"entries_per_method"`
}

// ProbeGFs bounds how many multi-dispatch GFs get full table builds in
// Probe; building every n-ary table at 10k classes would dominate the
// probe without adding information.
const ProbeGFs = 64

// Probe generates the program for cfg and measures hierarchy and
// dispatch-table scale. It is read-only over the pipeline front end: no
// execution happens.
func Probe(cfg Config) (*ProbeReport, error) {
	g := New(cfg)
	src := g.Source()
	rep := &ProbeReport{Stats: g.Stats, SourceBytes: len(src)}

	t0 := time.Now()
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	rep.ParseMS = msSince(t0)

	t0 = time.Now()
	h, err := hier.Build(prog)
	if err != nil {
		return nil, fmt.Errorf("hier build: %w", err)
	}
	h.Freeze()
	rep.HierBuildMS = msSince(t0)

	t0 = time.Now()
	for _, gf := range h.GFs() {
		for _, m := range gf.Methods {
			h.ApplicableClasses(m)
			rep.ApplicableMethods++
		}
	}
	rep.ApplicableMS = msSince(t0)
	if rep.ApplicableMethods > 0 {
		rep.ApplicableUSPer = rep.ApplicableMS * 1000 / float64(rep.ApplicableMethods)
	}

	// Rank multi-dispatch GFs by method count and table the top slice.
	var multi []*hier.GF
	for _, gf := range h.GFs() {
		if len(gf.DispatchedPositions()) >= 1 && len(gf.Methods) > 1 {
			multi = append(multi, gf)
		}
	}
	sort.Slice(multi, func(i, j int) bool {
		if len(multi[i].Methods) != len(multi[j].Methods) {
			return len(multi[i].Methods) > len(multi[j].Methods)
		}
		return multi[i].Name < multi[j].Name
	})
	if ProbeGFs > 0 && len(multi) > ProbeGFs {
		multi = multi[:ProbeGFs]
	}

	t0 = time.Now()
	methods := 0
	var unc float64
	for _, gf := range multi {
		tbl, err := dispatch.NewMMTable(h, gf)
		if err != nil {
			return nil, fmt.Errorf("mm table %s: %w", gf.Key(), err)
		}
		rep.TabledGFs++
		methods += len(gf.Methods)
		sz := tbl.Size()
		rep.TableEntries += sz
		if sz > rep.MaxTableEntries {
			rep.MaxTableEntries = sz
		}
		u := tbl.UncompressedSize(h)
		rep.UncompressedLogE += log10int(u)
		unc += float64(u)
	}
	rep.TableBuildMS = msSince(t0)
	if rep.TableEntries > 0 {
		rep.CompressionX = unc / float64(rep.TableEntries)
	}
	if methods > 0 {
		rep.EntriesPerMethod = float64(rep.TableEntries) / float64(methods)
	}
	return rep, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }

func log10int(n int) float64 {
	if n <= 0 {
		return 0
	}
	d := 0.0
	f := float64(n)
	for f >= 10 {
		f /= 10
		d++
	}
	// One digit of mantissa precision is plenty for a scale report.
	return d + (f-1)/9
}

// String renders the report for terminal output.
func (r *ProbeReport) String() string {
	return fmt.Sprintf(
		"classes=%d methods=%d gfs=%d depth=%d mi=%d source=%dB\n"+
			"parse=%.1fms hier=%.1fms\n"+
			"applicable: %d methods in %.1fms (%.2fus/method)\n"+
			"mm-tables: %d gfs, %d entries (max %d) in %.1fms, compression=%.1fx, entries/method=%.2f",
		r.Stats.Classes, r.Stats.Methods, r.Stats.GFs, r.Stats.MaxDepth, r.Stats.MIClasses, r.SourceBytes,
		r.ParseMS, r.HierBuildMS,
		r.ApplicableMethods, r.ApplicableMS, r.ApplicableUSPer,
		r.TabledGFs, r.TableEntries, r.MaxTableEntries, r.TableBuildMS, r.CompressionX, r.EntriesPerMethod)
}
