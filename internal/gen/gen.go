// Package gen is the seeded Mini-Cecil program generator behind the
// differential stress harness: it grows class DAGs and call graphs at
// configurable scale (tens of classes for property tests, 10k classes /
// 100k methods for scale probes) and emits them as valid source via the
// AST printer, so every generated program flows through the unchanged
// production pipeline: parse → check → specialize → vm compile →
// verify → run.
//
// Generation is fully deterministic: the same Config (including Seed)
// produces byte-identical source on every run, platform and Go
// version — the generator uses its own splitmix64 stream and never
// iterates a Go map. That property is what makes generated programs
// usable as fixed benchmark cells, fuzz corpus seeds and shrinking
// targets.
//
// The shape of a generated program is chosen to stress the layers the
// hand-written paper benchmarks cannot: deep primary inheritance
// chains with multiple-inheritance cross links (hier cones and
// ApplicableClasses), multi-method generic functions of dispatch arity
// up to 3 whose specializer "ladders" climb one primary chain
// (compressed dispatch tables and the specializer's tuple-intersection
// closure), closures with occasional non-local returns, and typed
// integer field reads/writes in the shapes the VM fuses into
// superinstructions.
//
// Every generated generic function carries an all-Any fallback method,
// and all of its specialized methods sit on a single primary-parent
// chain, so any two methods are pointwise comparable: generated
// programs are message-not-understood-free and ambiguity-free by
// construction, for every argument tuple — divergence found by the
// harness is therefore always an engine bug, never a degenerate
// program.
package gen

import (
	"fmt"

	"selspec/internal/lang"
	"selspec/internal/programs"
)

// Config sets the generator's scale and shape knobs. The zero value is
// usable: Normalize fills in defaults.
type Config struct {
	// Seed selects the program. Same Config ⇒ byte-identical source.
	Seed uint64
	// Classes is the number of generated classes (default 40).
	Classes int
	// Methods is the approximate number of generated methods; the
	// generator adds whole generic functions until it crosses this
	// target (default 4×Classes).
	Methods int
	// Depth is the minimum primary-chain inheritance depth (default 8,
	// capped at Classes).
	Depth int
	// MaxArity bounds the dispatched arity of generated multi-methods,
	// 1..3 (default 3).
	MaxArity int
	// CheckClean makes the program `selspec check`-clean: every
	// generated generic function is invoked from main's driver loop and
	// every specializer class is instantiated, so no dead-method or
	// useless-specialization findings are possible. Costs main-size
	// proportional to the number of generic functions; leave it off for
	// 10k-class scale runs.
	CheckClean bool
	// Drivers caps the number of classes instantiated and rotated
	// through the polymorphic driver loop in main (default 24;
	// CheckClean forces at least one driver per specializer class).
	Drivers int
	// CalledGFs caps how many generic functions main's driver waves
	// invoke directly when CheckClean is off (default 48; the rest stay
	// reachable only through the generated call graph, or dead).
	CalledGFs int
	// TrainReps/TestReps are the values of the genReps input-size
	// global under the training and measurement inputs (defaults 2/3).
	TrainReps, TestReps int64
}

// Normalize returns cfg with defaults filled in and bounds applied —
// the exact Config a Program records, so a report of the normalized
// Config reproduces the program.
func (c Config) Normalize() Config {
	if c.Classes <= 0 {
		c.Classes = 40
	}
	if c.Classes < 4 {
		c.Classes = 4
	}
	if c.Methods <= 0 {
		c.Methods = 4 * c.Classes
	}
	if c.Depth <= 0 {
		c.Depth = 8
	}
	if c.Depth > c.Classes {
		c.Depth = c.Classes
	}
	if c.MaxArity <= 0 {
		c.MaxArity = 3
	}
	if c.MaxArity > 3 {
		c.MaxArity = 3
	}
	if c.Drivers <= 0 {
		c.Drivers = 24
	}
	if c.CalledGFs <= 0 {
		c.CalledGFs = 48
	}
	if c.TrainReps <= 0 {
		c.TrainReps = 2
	}
	if c.TestReps <= 0 {
		c.TestReps = 3
	}
	return c
}

// rng is a splitmix64 stream: deterministic across platforms and Go
// versions, unlike math/rand's unspecified algorithm.
type rng struct{ x uint64 }

func newRNG(seed uint64) *rng { return &rng{x: seed ^ 0x6a09e667f3bcc908} }

func (r *rng) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// pct is true with probability p/100.
func (r *rng) pct(p int) bool { return r.intn(100) < p }

// paramKind classifies a generated generic function's formals.
type paramKind int

const (
	pObj paramKind = iota // dispatched object position
	pInt                  // undispatched integer
	pClo                  // undispatched one-argument closure
)

// genGF is the model of one generated generic function.
type genGF struct {
	Name   string
	Params []paramKind // dispatched pObj positions first
	Disp   int         // dispatched arity (1..3)
	Ladder []int       // specializer class indices, general → specific
	Rank   int         // callees must have strictly smaller rank
}

// genClass is the model of one generated class.
type genClass struct {
	Name    string
	Primary int      // primary parent index; -1 for the root
	Extras  []int    // additional (multiple-inheritance) parent indices
	Fields  []string // own integer fields
	Inits   []int64
	Depth   int // 1 + max parent depth
}

// Stats summarizes a generated program's actual shape.
type Stats struct {
	Classes   int `json:"classes"`
	Methods   int `json:"methods"` // all methods, waves and main included
	GFs       int `json:"gfs"`     // generated multi-method generic functions
	MaxDepth  int `json:"max_depth"`
	MaxArity  int `json:"max_arity"` // max dispatched arity actually used
	MIClasses int `json:"mi_classes"`
	Drivers   int `json:"drivers"`
	CalledGFs int `json:"called_gfs"`
}

// Program is one generated program: its model, its AST and its
// rendered source.
type Program struct {
	Cfg     Config // normalized
	AST     *lang.Program
	GFs     []*genGF
	Classes []*genClass
	Stats   Stats

	src string
}

// maxRank bounds the generated call-graph depth: a body only calls
// generic functions of strictly smaller rank, so the guest call chain
// below any send is at most maxRank deep (plus leaf closures), far
// inside the interpreter's default depth guard.
const maxRank = 5

// New generates the program for cfg. It never fails: every reachable
// Config produces a parseable, runnable program.
func New(cfg Config) *Program {
	cfg = cfg.Normalize()
	r := newRNG(cfg.Seed)
	g := &Program{Cfg: cfg}
	g.genClasses(r)
	g.genGFs(r)
	ast := &lang.Program{}
	for _, c := range g.Classes {
		ast.Classes = append(ast.Classes, g.classDecl(c))
	}
	ast.Globals = append(ast.Globals, &lang.GlobalDecl{Name: "genReps", Init: intL(cfg.TrainReps)})
	for _, gf := range g.GFs {
		for _, m := range g.methodsFor(r, gf) {
			ast.Methods = append(ast.Methods, m)
		}
	}
	ast.Methods = append(ast.Methods, g.driverMethods(r)...)
	g.AST = ast
	g.Stats.Classes = len(g.Classes)
	g.Stats.Methods = len(ast.Methods)
	g.Stats.GFs = len(g.GFs)
	return g
}

// Source renders (and caches) the program text.
func (g *Program) Source() string {
	if g.src == "" {
		g.src = fmt.Sprintf("-- generated: seed=%d classes=%d methods=%d depth=%d arity=%d clean=%t\n%s",
			g.Cfg.Seed, g.Cfg.Classes, g.Cfg.Methods, g.Cfg.Depth, g.Cfg.MaxArity, g.Cfg.CheckClean,
			lang.Format(g.AST))
	}
	return g.src
}

// Name returns the benchmark-style identity of the generated program.
func (g *Program) Name() string { return fmt.Sprintf("Gen-%d", g.Cfg.Seed) }

// Benchmark wraps the program as an embedded-benchmark cell: the
// genReps input-size global carries the training/measurement split, so
// generated cells flow through the harness grid (profile runs included)
// exactly like the paper benchmarks.
func (g *Program) Benchmark() programs.Benchmark {
	return programs.Benchmark{
		Name:        g.Name(),
		Description: fmt.Sprintf("generated: %d classes, %d methods, depth %d", g.Stats.Classes, g.Stats.Methods, g.Stats.MaxDepth),
		Source:      g.Source(),
		Train:       map[string]int64{"genReps": g.Cfg.TrainReps},
		Test:        map[string]int64{"genReps": g.Cfg.TestReps},
	}
}

// ---------------------------------------------------------------------
// Class DAG
// ---------------------------------------------------------------------

func className(i int) string { return fmt.Sprintf("GC%d", i) }

func (g *Program) genClasses(r *rng) {
	n := g.Cfg.Classes
	g.Classes = make([]*genClass, n)
	for i := 0; i < n; i++ {
		c := &genClass{Name: className(i), Primary: -1, Depth: 1}
		if i > 0 {
			// The first Depth classes form the guaranteed-deep primary
			// spine; the rest attach anywhere, biased toward recent
			// classes so depth keeps growing off-spine too.
			if i < g.Cfg.Depth {
				c.Primary = i - 1
			} else if r.pct(50) {
				lo := i - 1 - r.intn(min(i, 8))
				c.Primary = lo
			} else {
				c.Primary = r.intn(i)
			}
			c.Depth = g.Classes[c.Primary].Depth + 1
			// Multiple inheritance: a quarter of the classes pick one or
			// two extra parents among the earlier classes. Field names
			// are globally unique, so diamonds never conflict.
			if r.pct(25) && i >= 2 {
				for k := 0; k < 1+r.intn(2); k++ {
					e := r.intn(i)
					if e == c.Primary || containsInt(c.Extras, e) {
						continue
					}
					c.Extras = append(c.Extras, e)
					if d := g.Classes[e].Depth + 1; d > c.Depth {
						c.Depth = d
					}
				}
				if len(c.Extras) > 0 {
					g.Stats.MIClasses++
				}
			}
		}
		// One or two own integer fields, globally-unique names.
		for k := 0; k <= r.intn(2); k++ {
			c.Fields = append(c.Fields, fmt.Sprintf("gf%dx%d", i, k))
			c.Inits = append(c.Inits, int64(1+r.intn(9)))
		}
		if c.Depth > g.Stats.MaxDepth {
			g.Stats.MaxDepth = c.Depth
		}
		g.Classes[i] = c
	}
}

func (g *Program) classDecl(c *genClass) *lang.ClassDecl {
	d := &lang.ClassDecl{Name: c.Name}
	if c.Primary >= 0 {
		d.Parents = append(d.Parents, g.Classes[c.Primary].Name)
	}
	for _, e := range c.Extras {
		d.Parents = append(d.Parents, g.Classes[e].Name)
	}
	for i, f := range c.Fields {
		d.Fields = append(d.Fields, &lang.FieldDecl{Name: f, Type: "Int", Init: intL(c.Inits[i])})
	}
	return d
}

// chainOf returns the primary-parent chain of class i, most-derived
// first, ending at the primary root.
func (g *Program) chainOf(i int) []int {
	var chain []int
	for i >= 0 {
		chain = append(chain, i)
		i = g.Classes[i].Primary
	}
	return chain
}

// fieldsOf returns every field readable on an instance of class i (own
// plus all ancestors', primary and extra), in deterministic order.
func (g *Program) fieldsOf(i int) []string {
	var out []string
	visited := make(map[int]bool)
	var walk func(int)
	walk = func(c int) {
		if visited[c] {
			return
		}
		visited[c] = true
		cl := g.Classes[c]
		if cl.Primary >= 0 {
			walk(cl.Primary)
		}
		for _, e := range cl.Extras {
			walk(e)
		}
		out = append(out, cl.Fields...)
	}
	walk(i)
	return out
}

// ---------------------------------------------------------------------
// Generic functions
// ---------------------------------------------------------------------

func gfName(i int) string { return fmt.Sprintf("gm%d", i) }

func (g *Program) genGFs(r *rng) {
	methods := 0
	for methods < g.Cfg.Methods {
		gf := &genGF{Name: gfName(len(g.GFs)), Rank: r.intn(maxRank + 1)}
		// Dispatched arity: mostly 1, sometimes 2, rarely 3.
		switch p := r.intn(100); {
		case p < 60 || g.Cfg.MaxArity == 1:
			gf.Disp = 1
		case p < 85 || g.Cfg.MaxArity == 2:
			gf.Disp = 2
		default:
			gf.Disp = 3
		}
		if gf.Disp > g.Stats.MaxArity {
			g.Stats.MaxArity = gf.Disp
		}
		for i := 0; i < gf.Disp; i++ {
			gf.Params = append(gf.Params, pObj)
		}
		// Zero or one undispatched extra: an int or a closure argument.
		if r.pct(40) {
			if r.pct(30) {
				gf.Params = append(gf.Params, pClo)
			} else {
				gf.Params = append(gf.Params, pInt)
			}
		}
		// Specializer ladder: a handful of classes off one primary
		// chain, general → specific. All methods of the GF are pairwise
		// pointwise-comparable, so dispatch is never ambiguous.
		start := r.intn(len(g.Classes))
		// Prefer deep starting classes so ladders have room.
		if alt := r.intn(len(g.Classes)); g.Classes[alt].Depth > g.Classes[start].Depth {
			start = alt
		}
		chain := g.chainOf(start)
		want := 1 + r.intn(4)
		if want > len(chain) {
			want = len(chain)
		}
		// Pick `want` distinct chain positions; chain is most-derived
		// first, ladder wants general → specific, so fill backwards.
		picked := pickDistinct(r, len(chain), want)
		for k := len(picked) - 1; k >= 0; k-- {
			gf.Ladder = append(gf.Ladder, chain[picked[k]])
		}
		g.GFs = append(g.GFs, gf)
		methods += 1 + len(gf.Ladder) // fallback + ladder methods
	}
}

// pickDistinct returns `want` distinct ints in [0,n), ascending.
func pickDistinct(r *rng, n, want int) []int {
	picked := make([]bool, n)
	got := 0
	for got < want {
		i := r.intn(n)
		if !picked[i] {
			picked[i] = true
			got++
		}
	}
	out := make([]int, 0, want)
	for i, p := range picked {
		if p {
			out = append(out, i)
		}
	}
	return out
}

// methodsFor emits the fallback and ladder methods of one GF.
func (g *Program) methodsFor(r *rng, gf *genGF) []*lang.MethodDecl {
	var out []*lang.MethodDecl
	out = append(out, g.methodDecl(r, gf, -1))
	for lvl := range gf.Ladder {
		out = append(out, g.methodDecl(r, gf, lvl))
	}
	return out
}

// methodDecl emits one method: lvl == -1 is the all-Any fallback,
// otherwise the method specialized at ladder class gf.Ladder[lvl] in
// every dispatched position.
func (g *Program) methodDecl(r *rng, gf *genGF, lvl int) *lang.MethodDecl {
	m := &lang.MethodDecl{Name: gf.Name}
	spec := ""
	specClass := -1
	if lvl >= 0 {
		specClass = gf.Ladder[lvl]
		spec = g.Classes[specClass].Name
	}
	for i, k := range gf.Params {
		p := lang.Param{Name: fmt.Sprintf("gp%d", i)}
		if k == pObj && lvl >= 0 {
			p.Spec = spec
		}
		m.Params = append(m.Params, p)
	}
	m.Body = g.body(r, gf, specClass)
	return m
}

// body generates a method body: a local accumulator, a few statements
// off the menu (field ops, calls down-rank, bounded loops, closures,
// conditionals), and the accumulator as the trailing result expression.
// specClass >= 0 makes the dispatched params' fields accessible.
func (g *Program) body(r *rng, gf *genGF, specClass int) *lang.Block {
	b := &lang.Block{}
	b.Stmts = append(b.Stmts, varDecl("gacc", intL(int64(r.intn(10)))))
	closures := 0
	for n := 2 + r.intn(3); n > 0; n-- {
		switch pick := r.intn(100); {
		case pick < 30 && specClass >= 0:
			g.stmtFieldOp(r, b, gf, specClass)
		case pick < 55:
			g.stmtCall(r, b, gf, specClass, false)
		case pick < 70:
			g.stmtLoop(r, b, gf, specClass)
		case pick < 85:
			g.stmtClosure(r, b, &closures)
		default:
			g.stmtIf(r, b)
		}
	}
	// Apply an incoming closure argument, when the signature has one.
	for i, k := range gf.Params {
		if k == pClo {
			b.Stmts = append(b.Stmts, accAdd(call(fmt.Sprintf("gp%d", i), modExpr(ident("gacc"), 5))))
		}
	}
	b.Stmts = append(b.Stmts, &lang.ExprStmt{X: ident("gacc")})
	return b
}

// stmtFieldOp reads or writes an integer field of a dispatched param —
// the shapes (field-read ⊕ k, field := field ⊕ k) the bytecode tier
// fuses into fieldbin/fieldbink/binfield superinstructions.
func (g *Program) stmtFieldOp(r *rng, b *lang.Block, gf *genGF, specClass int) {
	fields := g.fieldsOf(specClass)
	f := fields[r.intn(len(fields))]
	p := ident(fmt.Sprintf("gp%d", r.intn(gf.Disp)))
	fa := &lang.FieldAccess{Recv: p, Name: f}
	if r.pct(50) {
		// gacc := gacc + (gp.f + k);
		b.Stmts = append(b.Stmts, accAdd(bin(lang.PLUS, fa, intL(int64(1+r.intn(7))))))
	} else {
		// gp.f := gp.f % 997 + k; gacc := gacc + gp.f;
		b.Stmts = append(b.Stmts, &lang.AssignStmt{
			LHS: fa,
			RHS: bin(lang.PLUS, modExpr(fa, 997), intL(int64(1+r.intn(7)))),
		})
		b.Stmts = append(b.Stmts, accAdd(fa))
	}
}

// stmtCall invokes a strictly-lower-rank GF; leafOnly restricts to
// rank-0 callees (used inside loops so iteration never multiplies a
// deep call chain).
func (g *Program) stmtCall(r *rng, b *lang.Block, gf *genGF, specClass int, leafOnly bool) {
	callee := g.pickCallee(r, gf.Rank, leafOnly)
	if callee == nil {
		// No callee available at this rank: degrade to arithmetic.
		b.Stmts = append(b.Stmts, accAdd(intL(int64(1+r.intn(9)))))
		return
	}
	b.Stmts = append(b.Stmts, accAdd(g.callExpr(r, callee, gf, specClass)))
}

// pickCallee selects a GF with rank < rank (rank 0 when leafOnly), or
// nil when none exists yet.
func (g *Program) pickCallee(r *rng, rank int, leafOnly bool) *genGF {
	// leafOnly tightens the bound but never loosens it: the callee rank
	// must stay strictly below the caller's, so the call graph is acyclic
	// even among leaves (a rank-0 caller gets no callee at all).
	limit := rank
	if leafOnly && limit > 1 {
		limit = 1
	}
	// Deterministic bounded scan from a random start.
	if len(g.GFs) == 0 || limit == 0 {
		return nil
	}
	start := r.intn(len(g.GFs))
	for k := 0; k < len(g.GFs) && k < 64; k++ {
		cand := g.GFs[(start+k)%len(g.GFs)]
		if cand.Rank < limit {
			return cand
		}
	}
	return nil
}

// callExpr builds a call to callee with arguments synthesized from the
// caller's context: dispatched positions receive the caller's own
// object params (polymorphic flow) or fresh instances; int positions
// receive damped arithmetic; closure positions receive literals.
func (g *Program) callExpr(r *rng, callee, caller *genGF, specClass int) lang.Expr {
	var args []lang.Expr
	for _, k := range callee.Params {
		switch k {
		case pObj:
			switch {
			case caller != nil && caller.Disp > 0 && r.pct(70):
				args = append(args, ident(fmt.Sprintf("gp%d", r.intn(caller.Disp))))
			case r.pct(85):
				cls := callee.Ladder[r.intn(len(callee.Ladder))]
				args = append(args, &lang.NewExpr{Class: g.Classes[cls].Name})
			default:
				// An integer at a dispatched position: binds the all-Any
				// fallback, exercising the non-class cone paths.
				args = append(args, intL(int64(r.intn(50))))
			}
		case pInt:
			if r.pct(50) {
				args = append(args, modExpr(ident("gacc"), 13))
			} else {
				args = append(args, intL(int64(r.intn(20))))
			}
		case pClo:
			args = append(args, g.closureLit(r))
		}
	}
	return call(callee.Name, args...)
}

// closureLit builds a one-argument integer closure; a tenth of them
// carry a rarely-taken non-local return.
func (g *Program) closureLit(r *rng) lang.Expr {
	body := &lang.Block{}
	if r.pct(10) {
		body.Stmts = append(body.Stmts, &lang.IfStmt{
			Cond: bin(lang.GT, ident("gz"), intL(int64(5000+r.intn(5000)))),
			Then: &lang.Block{Stmts: []lang.Stmt{&lang.ReturnStmt{X: intL(int64(r.intn(9)))}}},
		})
	}
	body.Stmts = append(body.Stmts, &lang.ExprStmt{
		X: bin(lang.PLUS, ident("gz"), intL(int64(1+r.intn(9)))),
	})
	return &lang.FnExpr{Params: []string{"gz"}, Body: body}
}

// stmtLoop emits a constant-bounded while accumulating arithmetic; a
// third of loops also call a rank-0 leaf GF per iteration.
func (g *Program) stmtLoop(r *rng, b *lang.Block, gf *genGF, specClass int) {
	iv := fmt.Sprintf("gi%d", len(b.Stmts))
	bound := 2 + r.intn(3)
	loop := &lang.Block{}
	loop.Stmts = append(loop.Stmts, accAdd(bin(lang.STAR, ident(iv), intL(int64(1+r.intn(5))))))
	if r.pct(33) {
		if callee := g.pickCallee(r, gf.Rank, true); callee != nil {
			loop.Stmts = append(loop.Stmts, accAdd(g.callExpr(r, callee, gf, specClass)))
		}
	}
	loop.Stmts = append(loop.Stmts, &lang.AssignStmt{LHS: ident(iv), RHS: bin(lang.PLUS, ident(iv), intL(1))})
	b.Stmts = append(b.Stmts, varDecl(iv, intL(0)))
	b.Stmts = append(b.Stmts, &lang.WhileStmt{Cond: bin(lang.LT, ident(iv), intL(int64(bound))), Body: loop})
}

// stmtClosure declares a local closure and applies it twice.
func (g *Program) stmtClosure(r *rng, b *lang.Block, closures *int) {
	cv := fmt.Sprintf("gc%d", *closures)
	*closures++
	b.Stmts = append(b.Stmts, varDecl(cv, g.closureLit(r)))
	b.Stmts = append(b.Stmts, accAdd(call(cv, modExpr(ident("gacc"), 7))))
	b.Stmts = append(b.Stmts, accAdd(call(cv, intL(int64(r.intn(30))))))
}

// stmtIf emits a parity-conditional update of the accumulator.
func (g *Program) stmtIf(r *rng, b *lang.Block) {
	b.Stmts = append(b.Stmts, &lang.IfStmt{
		Cond: bin(lang.EQ, modExpr(ident("gacc"), 2), intL(0)),
		Then: &lang.Block{Stmts: []lang.Stmt{accAdd(intL(int64(1 + r.intn(5))))}},
		Else: &lang.Block{Stmts: []lang.Stmt{
			&lang.AssignStmt{LHS: ident("gacc"), RHS: bin(lang.PLUS, modExpr(ident("gacc"), 97), intL(3))},
		}},
	})
}

// ---------------------------------------------------------------------
// Driver: waves + main
// ---------------------------------------------------------------------

// waveSize caps the sends per driver-wave method, keeping any one
// method body small regardless of how many GFs main exercises.
const waveSize = 12

// driverMethods emits the polymorphic driver: wave methods, each
// sending a chunk of the called GFs to one rotated object, and main,
// which instantiates the driver classes into an array and rotates every
// object through every wave genReps times.
func (g *Program) driverMethods(r *rng) []*lang.MethodDecl {
	driverClasses, called := g.driverPlan(r)
	g.Stats.Drivers = len(driverClasses)
	g.Stats.CalledGFs = len(called)

	var out []*lang.MethodDecl
	var waves []string
	for start := 0; start < len(called); start += waveSize {
		end := min(start+waveSize, len(called))
		name := fmt.Sprintf("gwave%d", len(waves))
		waves = append(waves, name)
		wb := &lang.Block{}
		wb.Stmts = append(wb.Stmts, varDecl("gacc", intL(0)))
		for _, gf := range called[start:end] {
			wb.Stmts = append(wb.Stmts, accAdd(g.waveCall(r, gf)))
		}
		wb.Stmts = append(wb.Stmts, &lang.ExprStmt{X: modExpr(ident("gacc"), 99991)})
		out = append(out, &lang.MethodDecl{
			Name:   name,
			Params: []lang.Param{{Name: "gw"}},
			Body:   wb,
		})
	}

	mb := &lang.Block{}
	mb.Stmts = append(mb.Stmts, varDecl("gacc", intL(0)))
	mb.Stmts = append(mb.Stmts, varDecl("gobjs", call("newarray", intL(int64(len(driverClasses))))))
	for i, cls := range driverClasses {
		mb.Stmts = append(mb.Stmts, &lang.ExprStmt{
			X: call("aput", ident("gobjs"), intL(int64(i)), &lang.NewExpr{Class: g.Classes[cls].Name}),
		})
	}
	inner := &lang.Block{}
	inner.Stmts = append(inner.Stmts, varDecl("gx", call("aget", ident("gobjs"), ident("gi"))))
	for _, w := range waves {
		inner.Stmts = append(inner.Stmts, accAdd(call(w, ident("gx"))))
	}
	inner.Stmts = append(inner.Stmts, &lang.AssignStmt{LHS: ident("gacc"), RHS: modExpr(ident("gacc"), 999983)})
	inner.Stmts = append(inner.Stmts, &lang.AssignStmt{LHS: ident("gi"), RHS: bin(lang.PLUS, ident("gi"), intL(1))})

	rotation := &lang.Block{}
	rotation.Stmts = append(rotation.Stmts, varDecl("gi", intL(0)))
	rotation.Stmts = append(rotation.Stmts, &lang.WhileStmt{
		Cond: bin(lang.LT, ident("gi"), intL(int64(len(driverClasses)))),
		Body: inner,
	})
	rotation.Stmts = append(rotation.Stmts, &lang.AssignStmt{LHS: ident("gr"), RHS: bin(lang.PLUS, ident("gr"), intL(1))})

	mb.Stmts = append(mb.Stmts, varDecl("gr", intL(0)))
	mb.Stmts = append(mb.Stmts, &lang.WhileStmt{
		Cond: bin(lang.LT, ident("gr"), ident("genReps")),
		Body: rotation,
	})
	mb.Stmts = append(mb.Stmts, &lang.ExprStmt{X: call("println", call("str", ident("gacc")))})
	mb.Stmts = append(mb.Stmts, &lang.ExprStmt{X: ident("gacc")})
	out = append(out, &lang.MethodDecl{Name: "main", Body: mb})
	return out
}

// driverPlan picks which classes main instantiates and which GFs the
// waves call. CheckClean covers every GF and every specializer class,
// so no method can be dead and no specialization useless; otherwise
// both sets are capped samples.
func (g *Program) driverPlan(r *rng) (driverClasses []int, called []*genGF) {
	seen := make([]bool, len(g.Classes))
	addClass := func(i int) {
		if !seen[i] {
			seen[i] = true
			driverClasses = append(driverClasses, i)
		}
	}
	if g.Cfg.CheckClean {
		called = g.GFs
		for _, gf := range g.GFs {
			for _, cls := range gf.Ladder {
				addClass(cls)
			}
		}
	} else {
		n := min(g.Cfg.CalledGFs, len(g.GFs))
		for _, i := range pickDistinct(r, len(g.GFs), n) {
			called = append(called, g.GFs[i])
		}
		for _, gf := range called {
			for _, cls := range gf.Ladder {
				addClass(cls)
				if len(driverClasses) >= g.Cfg.Drivers {
					break
				}
			}
			if len(driverClasses) >= g.Cfg.Drivers {
				break
			}
		}
		// A few extra deep classes make mid-ladder bindings richer.
		for k := 0; k < 4 && len(driverClasses) < g.Cfg.Drivers; k++ {
			addClass(r.intn(len(g.Classes)))
		}
	}
	if len(driverClasses) == 0 {
		addClass(len(g.Classes) - 1)
	}
	return driverClasses, called
}

// waveCall builds one wave send: the rotated object gw at every
// dispatched position, synthesized int/closure extras.
func (g *Program) waveCall(r *rng, gf *genGF) lang.Expr {
	var args []lang.Expr
	for _, k := range gf.Params {
		switch k {
		case pObj:
			args = append(args, ident("gw"))
		case pInt:
			args = append(args, intL(int64(r.intn(25))))
		case pClo:
			args = append(args, g.closureLit(r))
		}
	}
	return call(gf.Name, args...)
}

// ---------------------------------------------------------------------
// Small AST constructors
// ---------------------------------------------------------------------

func ident(n string) *lang.Ident { return &lang.Ident{Name: n} }
func intL(v int64) *lang.IntLit  { return &lang.IntLit{Val: v} }
func bin(op lang.Kind, l, r lang.Expr) lang.Expr {
	return &lang.BinaryExpr{Op: op, L: l, R: r}
}
func call(name string, args ...lang.Expr) *lang.Call {
	return &lang.Call{Name: name, Args: args}
}
func varDecl(n string, init lang.Expr) *lang.VarStmt {
	return &lang.VarStmt{Name: n, Init: init}
}

// accAdd is `gacc := gacc + expr;`.
func accAdd(e lang.Expr) *lang.AssignStmt {
	return &lang.AssignStmt{LHS: ident("gacc"), RHS: bin(lang.PLUS, ident("gacc"), e)}
}

// modExpr is `(e % k)` with a positive constant divisor — the only
// form of division the generator emits, so division faults are
// impossible by construction.
func modExpr(e lang.Expr, k int64) lang.Expr {
	return bin(lang.PERCENT, e, intL(k))
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
