package specialize

import (
	"testing"

	"selspec/internal/hier"
	"selspec/internal/profile"
)

// recordEntries registers observed argument tuples for m4 so the §3.2
// tuple-profile extension has data.
func (fx *fixture) recordEntries(t *testing.T, pairs [][2]string) {
	t.Helper()
	for _, p := range pairs {
		c1, ok1 := fx.h.Class(p[0])
		c2, ok2 := fx.h.Class(p[1])
		if !ok1 || !ok2 {
			t.Fatalf("bad classes %v", p)
		}
		fx.cg.RecordEntry(fx.m4, []*hier.Class{c1, c2})
	}
}

// TestTupleProfilesPruneCombinations: with tuple profiles on and only
// (A,B)-shaped invocations observed, the cross combinations that no
// call ever exercised are dropped, while the observed ones survive.
func TestTupleProfilesPruneCombinations(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	// Observed calls: self ∈ {A,B,C,D,F} always paired with arg2 ∈
	// {B,E,H,I}; never (E.., A..)-shaped pairs.
	fx.recordEntries(t, [][2]string{{"A", "B"}, {"B", "E"}, {"C", "H"}})

	res := Run(fx.prog, fx.cg, Params{Threshold: 100, UseTupleProfiles: true})
	m4specs := res.Specializations[fx.m4]

	abcdf := fx.setOf("A", "B", "C", "D", "F")
	ehi := fx.setOf("E", "H", "I")
	behi := fx.setOf("B", "E", "H", "I")
	acdfgj := fx.setOf("A", "C", "D", "F", "G", "J")

	if !hasTuple(m4specs, hier.Tuple{abcdf, behi}) {
		t.Errorf("observed combination <{A..F},{B,E,H,I}> was pruned:\n%s", res.Describe(fx.h))
	}
	if hasTuple(m4specs, hier.Tuple{ehi, acdfgj}) {
		t.Errorf("unobserved combination <{E,H,I},{A,C,D,F,G,J}> survived:\n%s", res.Describe(fx.h))
	}
	if len(m4specs) >= 9 {
		t.Errorf("tuple profiles did not prune: %d tuples", len(m4specs))
	}
}

func TestTupleProfilesOverflowKeepsAll(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	// Overflow the sample: every recorded tuple is then moot.
	classes := fx.h.Classes()
	for i := 0; i < profile.MaxTupleSample+5; i++ {
		c1 := classes[i%len(classes)]
		c2 := classes[(i/len(classes))%len(classes)]
		fx.cg.RecordEntry(fx.m4, []*hier.Class{c1, c2})
	}
	if ts := fx.cg.Entries(fx.m4); !ts.Overflow {
		t.Fatalf("sample did not overflow (%d tuples)", len(ts.Tuples))
	}
	res := Run(fx.prog, fx.cg, Params{Threshold: 100, UseTupleProfiles: true})
	if got := len(res.Specializations[fx.m4]); got != 9 {
		t.Fatalf("overflowed sample should keep all 9 tuples, got %d", got)
	}
}

func TestTupleProfilesNoSampleKeepsAll(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	res := Run(fx.prog, fx.cg, Params{Threshold: 100, UseTupleProfiles: true})
	if got := len(res.Specializations[fx.m4]); got != 9 {
		t.Fatalf("methods without samples should keep all tuples, got %d", got)
	}
}

// TestSpaceBudget: the §3.4 heuristic stops once the program-wide
// budget of added specializations is hit, preferring heavier arcs.
func TestSpaceBudget(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()

	unlimited := Run(fx.prog, fx.cg, Params{Threshold: 100})
	if unlimited.Stats.AddedSpecs < 8 {
		t.Fatalf("baseline added %d specs", unlimited.Stats.AddedSpecs)
	}

	budgeted := Run(fx.prog, fx.cg, Params{SpaceBudget: 3})
	// The in-flight arc may finish combining, so allow a small
	// overshoot but require a real reduction.
	if budgeted.Stats.AddedSpecs < 1 || budgeted.Stats.AddedSpecs > 6 {
		t.Fatalf("budgeted run added %d specs, want ~3", budgeted.Stats.AddedSpecs)
	}
	if budgeted.Stats.AddedSpecs >= unlimited.Stats.AddedSpecs {
		t.Fatal("budget had no effect")
	}

	// The heaviest specializable arc (m3→m4, weight 1500) is served
	// first: m3 (as its caller) must have been specialized... m3→m4 is
	// statically bound, so the first *specializable* arc is the
	// heaviest dynamic one: arg2.m2()→A::m2? No: weights are m-site
	// 625/375, m2-site 550/450; the 625 arc comes first.
	abcdf := fx.setOf("A", "B", "C", "D", "F")
	coneA := fx.setOf("A", "B", "C", "D", "E", "F", "G", "H", "I", "J")
	if !hasTuple(budgeted.Specializations[fx.m4], hier.Tuple{abcdf, coneA}) {
		t.Errorf("heaviest arc's tuple missing under budget:\n%s", budgeted.Describe(fx.h))
	}
}

func TestEntriesRoundTripThroughJSON(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	fx.recordEntries(t, [][2]string{{"A", "B"}, {"E", "H"}})

	data, err := fx.cg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back := profile.NewCallGraph(fx.prog)
	if err := back.UnmarshalInto(data); err != nil {
		t.Fatal(err)
	}
	ts := back.Entries(fx.m4)
	if ts == nil || len(ts.Tuples) != 2 || ts.Overflow {
		t.Fatalf("entries round trip: %+v", ts)
	}
	// And the filtered algorithm behaves identically on the restored
	// graph.
	r1 := Run(fx.prog, fx.cg, Params{Threshold: 100, UseTupleProfiles: true})
	r2 := Run(fx.prog, back, Params{Threshold: 100, UseTupleProfiles: true})
	if len(r1.Specializations[fx.m4]) != len(r2.Specializations[fx.m4]) {
		t.Fatalf("restored profile gives different result: %d vs %d",
			len(r1.Specializations[fx.m4]), len(r2.Specializations[fx.m4]))
	}
}
