package specialize

import (
	"math/rand"
	"testing"

	"selspec/internal/bits"
	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/profile"
)

// paperSrc reproduces the example of Figures 2 and 3 of the paper: ten
// classes A..J, m defined on A/E/G, m2 on A/B, m3 and m4 on A.
const paperSrc = `
class A
class B isa A
class C isa A
class D isa A
class G isa A
class E isa B
class F isa C
class H isa E
class I isa E
class J isa G

method m(self@A) { 1; }
method m(self@E) { 2; }
method m(self@G) { 3; }
method m2(self@A) { 4; }
method m2(self@B) { 5; }
method m3(self@A, arg2@A) { self.m4(arg2); }
method m4(self@A, arg2@A) { self.m(); arg2.m2(); }
`

type fixture struct {
	prog *ir.Program
	h    *hier.Hierarchy
	cg   *profile.CallGraph

	m3, m4                *hier.Method
	mA, mE, mG, m2A, m2B  *hier.Method
	siteM, siteM2, siteM4 *ir.CallSite
	setOf                 func(names ...string) *bits.Set
	findMethod            func(gf string, spec string) *hier.Method
}

func load(t *testing.T) *fixture {
	t.Helper()
	prog, err := ir.Lower(lang.MustParse(paperSrc))
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{prog: prog, h: prog.H, cg: profile.NewCallGraph(prog)}

	fx.findMethod = func(gf string, spec string) *hier.Method {
		g, ok := fx.h.GF(gf, 1)
		if !ok {
			g, ok = fx.h.GF(gf, 2)
		}
		if !ok {
			t.Fatalf("no GF %s", gf)
		}
		for _, m := range g.Methods {
			if m.Specs[0].Name == spec {
				return m
			}
		}
		t.Fatalf("no method %s@%s", gf, spec)
		return nil
	}
	fx.mA, fx.mE, fx.mG = fx.findMethod("m", "A"), fx.findMethod("m", "E"), fx.findMethod("m", "G")
	fx.m2A, fx.m2B = fx.findMethod("m2", "A"), fx.findMethod("m2", "B")
	fx.m3, fx.m4 = fx.findMethod("m3", "A"), fx.findMethod("m4", "A")

	for _, s := range prog.Bodies[fx.m4].Sites {
		switch s.GF.Name {
		case "m":
			fx.siteM = s
		case "m2":
			fx.siteM2 = s
		}
	}
	fx.siteM4 = prog.Bodies[fx.m3].Sites[0]

	fx.setOf = func(names ...string) *bits.Set {
		s := bits.New(fx.h.NumClasses())
		for _, n := range names {
			c, ok := fx.h.Class(n)
			if !ok {
				t.Fatalf("no class %s", n)
			}
			s.Add(c.ID)
		}
		return s
	}
	return fx
}

// recordPaperWeights installs the Figure 3 arc weights: from m4,
// self.m() reaches A::m 625× and E::m 375×; arg2.m2() reaches B::m2
// 550× (the paper's arc α) and A::m2 450×; m3 calls m4 1500×.
func (fx *fixture) recordPaperWeights() {
	fx.cg.Record(fx.siteM, fx.mA, 625)
	fx.cg.Record(fx.siteM, fx.mE, 375)
	fx.cg.Record(fx.siteM2, fx.m2B, 550)
	fx.cg.Record(fx.siteM2, fx.m2A, 450)
	fx.cg.Record(fx.siteM4, fx.m4, 1500)
}

func hasTuple(ts []hier.Tuple, want hier.Tuple) bool {
	for _, t := range ts {
		if t.Equal(want) {
			return true
		}
	}
	return false
}

// TestNeededInfoPaperArcAlpha reproduces the paper's §3.1 example: for
// arc α (m4's arg2.m2() reaching B::m2), neededInfoForArc is
// <{A,...,J}, {B,E,H,I}>.
func TestNeededInfoPaperArcAlpha(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	r := &runner{h: fx.h, prog: fx.prog, cg: fx.cg,
		specs: map[*hier.Method][]hier.Tuple{}, general: map[*hier.Method]hier.Tuple{}}
	for _, m := range fx.h.Methods() {
		g := r.generalFor(m)
		r.general[m] = g
		r.specs[m] = []hier.Tuple{g}
	}

	var alpha *profile.Arc
	for _, a := range fx.cg.Arcs() {
		if a.Site == fx.siteM2 && a.Callee == fx.m2B {
			alpha = a
		}
	}
	if alpha == nil {
		t.Fatal("arc α not found")
	}
	needed := r.neededInfoForArc(alpha)
	coneA := fx.setOf("A", "B", "C", "D", "E", "F", "G", "H", "I", "J")
	if !needed[0].Equal(coneA) {
		t.Errorf("needed[0] = %v, want cone(A)", needed[0])
	}
	if want := fx.setOf("B", "E", "H", "I"); !needed[1].Equal(want) {
		t.Errorf("needed[1] = %v, want {B,E,H,I}", needed[1])
	}
	if !r.isSpecializableArc(alpha) {
		t.Error("arc α must be specializable")
	}
}

// TestPaperNineVersionsOfM4 checks §3.2: "nine versions of m4 would be
// produced, including the original unspecialized version, assuming that
// all four outgoing call arcs were above threshold."
func TestPaperNineVersionsOfM4(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	res := Run(fx.prog, fx.cg, Params{Threshold: 100})

	m4specs := res.Specializations[fx.m4]
	if len(m4specs) != 9 {
		t.Fatalf("m4 has %d specializations, want 9:\n%s", len(m4specs), res.Describe(fx.h))
	}

	coneA := fx.setOf("A", "B", "C", "D", "E", "F", "G", "H", "I", "J")
	abcdf := fx.setOf("A", "B", "C", "D", "F")
	ehi := fx.setOf("E", "H", "I")
	behi := fx.setOf("B", "E", "H", "I")
	acdfgj := fx.setOf("A", "C", "D", "F", "G", "J")

	want := []hier.Tuple{
		{coneA, coneA},  // general
		{abcdf, coneA},  // from self.m() → A::m
		{ehi, coneA},    // from self.m() → E::m
		{coneA, acdfgj}, // from arg2.m2() → A::m2 (the paper's §3.3 example tuple base)
		{coneA, behi},   // from arg2.m2() → B::m2 (arc α)
		{abcdf, acdfgj}, // the paper's <{A,B,C,D,F},{A,C,D,F,G,J}>
		{abcdf, behi},
		{ehi, acdfgj},
		{ehi, behi},
	}
	for _, w := range want {
		if !hasTuple(m4specs, w) {
			t.Errorf("missing specialization %s", w.String(fx.h))
		}
	}
}

// TestCascadeSpecializesM3 checks §3.3: the statically-bound
// pass-through arc m3→m4 ripples m4's specializations up into m3.
func TestCascadeSpecializesM3(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	res := Run(fx.prog, fx.cg, Params{Threshold: 100})

	m3specs := res.Specializations[fx.m3]
	if len(m3specs) <= 1 {
		t.Fatalf("m3 received no cascaded specializations:\n%s", res.Describe(fx.h))
	}
	// m3 passes both formals straight through, so its cascaded tuples
	// match m4's added tuples exactly.
	abcdf := fx.setOf("A", "B", "C", "D", "F")
	acdfgj := fx.setOf("A", "C", "D", "F", "G", "J")
	if !hasTuple(m3specs, hier.Tuple{abcdf, acdfgj}) {
		t.Errorf("m3 missing cascaded <{A,B,C,D,F},{A,C,D,F,G,J}>:\n%s", res.Describe(fx.h))
	}
	if res.Stats.CascadeRequests == 0 {
		t.Error("no cascade requests recorded")
	}
}

func TestCascadeDisabled(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	res := Run(fx.prog, fx.cg, Params{Threshold: 100, DisableCascade: true})
	if n := len(res.Specializations[fx.m3]); n != 1 {
		t.Fatalf("with cascade disabled m3 has %d tuples, want 1", n)
	}
	if res.Stats.CascadeRequests != 0 {
		t.Error("cascade requests recorded despite DisableCascade")
	}
}

func TestThresholdFilters(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	// Threshold above every arc weight: nothing specialized.
	res := Run(fx.prog, fx.cg, Params{Threshold: 10_000})
	for m, specs := range res.Specializations {
		if len(specs) != 1 {
			t.Errorf("%s specialized despite huge threshold", m.Name())
		}
	}
	if res.Stats.ArcsAboveThreshold != 0 {
		t.Errorf("ArcsAboveThreshold = %d", res.Stats.ArcsAboveThreshold)
	}

	// Threshold between 450 and 550: only arc α and the m-site arcs
	// above it qualify.
	res = Run(fx.prog, fx.cg, Params{Threshold: 500})
	m4specs := res.Specializations[fx.m4]
	acdfgj := fx.setOf("A", "C", "D", "F", "G", "J")
	coneA := fx.setOf("A", "B", "C", "D", "E", "F", "G", "H", "I", "J")
	if hasTuple(m4specs, hier.Tuple{coneA, acdfgj}) {
		t.Error("arc below threshold (450) still produced a specialization")
	}
	if len(m4specs) != 1+ /*mA*/ 1+ /*α*/ 1+ /*mA∩α*/ 1 {
		t.Errorf("m4 has %d tuples at threshold 500:\n%s", len(m4specs), res.Describe(fx.h))
	}
}

func TestDefaultThresholdIs1000(t *testing.T) {
	if (Params{}).threshold() != 1000 {
		t.Fatal("default threshold must match the paper (1,000 invocations)")
	}
	if (Params{Threshold: -1}).threshold() != 0 {
		t.Fatal("Threshold -1 should consider every arc")
	}
}

// TestIntersectionClosure: the specialization set of every method is
// closed under pairwise non-empty intersection — the property that
// makes run-time version selection unambiguous (§3.2/§3.5).
func TestIntersectionClosure(t *testing.T) {
	fx := load(t)
	rng := rand.New(rand.NewSource(7))
	// Random weights over all possible arcs, several rounds.
	for round := 0; round < 20; round++ {
		cg := profile.NewCallGraph(fx.prog)
		for _, site := range fx.prog.Sites {
			for _, m := range site.GF.Methods {
				if rng.Intn(2) == 1 {
					cg.Record(site, m, int64(rng.Intn(3000)))
				}
			}
		}
		res := Run(fx.prog, cg, Params{Threshold: 100})
		for meth, specs := range res.Specializations {
			for i := range specs {
				for j := range specs {
					inter := specs[i].Intersect(specs[j])
					if inter.HasEmpty() {
						continue
					}
					if !hasTuple(specs, inter) {
						t.Fatalf("round %d: %s specs not intersection-closed:\n%s",
							round, meth.Name(), res.Describe(fx.h))
					}
				}
			}
		}
	}
}

// TestSpecsSubsetOfGeneral: every specialization is componentwise ⊆ the
// general tuple (versions never widen beyond what can dispatch there).
func TestSpecsSubsetOfGeneral(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	res := Run(fx.prog, fx.cg, Params{Threshold: 100})
	for m, specs := range res.Specializations {
		gen := specs[0]
		for _, s := range specs[1:] {
			if !s.SubsetOf(gen) {
				t.Errorf("%s: %s ⊄ general %s", m.Name(), s.String(fx.h), gen.String(fx.h))
			}
		}
	}
}

func TestDisableCombination(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	res := Run(fx.prog, fx.cg, Params{Threshold: 100, DisableCombination: true})
	// Only the four arc tuples are added (no pairwise intersections):
	// 1 general + 4 = 5 (cascade adds none for m4).
	if n := len(res.Specializations[fx.m4]); n != 5 {
		t.Fatalf("m4 has %d tuples without combination, want 5:\n%s", n, res.Describe(fx.h))
	}
}

func TestStatsAndDescribe(t *testing.T) {
	fx := load(t)
	fx.recordPaperWeights()
	res := Run(fx.prog, fx.cg, Params{Threshold: 100})
	if res.Stats.MethodsSpecialized < 2 { // m4 and m3
		t.Errorf("MethodsSpecialized = %d", res.Stats.MethodsSpecialized)
	}
	if res.Stats.MaxPerMethod != 8 {
		t.Errorf("MaxPerMethod = %d, want 8 (m4's nine versions minus the original)", res.Stats.MaxPerMethod)
	}
	if res.Stats.AvgPerMethod <= 0 {
		t.Error("AvgPerMethod not computed")
	}
	desc := res.Describe(fx.h)
	if len(desc) == 0 || desc[0] == ' ' {
		t.Errorf("Describe output: %q", desc)
	}
}

func TestEmptyProfileNoSpecialization(t *testing.T) {
	fx := load(t)
	res := Run(fx.prog, fx.cg, Params{})
	for m, specs := range res.Specializations {
		if len(specs) != 1 {
			t.Errorf("%s specialized with an empty profile", m.Name())
		}
	}
	if res.Stats.AddedSpecs != 0 || res.Stats.MethodsSpecialized != 0 {
		t.Errorf("stats non-zero on empty profile: %+v", res.Stats)
	}
}
