// Package specialize implements the goal-directed selective
// specialization algorithm of Dean, Chambers & Grove (PLDI'95),
// Figure 4: given a weighted dynamic call graph and the class
// hierarchy's ApplicableClasses information, it decides which methods
// to specialize for which tuples of argument class sets.
//
// The three routines mirror the paper directly:
//
//   - specializeMethod visits each high-weight, pass-through,
//     information-adding ("specializable") arc leaving a method and
//     requests a specialization for the classes that would let the arc
//     be statically bound (neededInfoForArc);
//   - addSpecialization combines a new tuple with every existing one by
//     pairwise intersection, keeping the specialization set closed
//     under intersection so the runtime can always pick a unique most
//     specific version (§3.2);
//   - cascadeSpecializations ripples specializations up statically
//     bound pass-through caller chains so callers can still statically
//     bind to the specialized callee (§3.3).
package specialize

import (
	"fmt"
	"sort"
	"strings"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/profile"
)

// DefaultThreshold is the paper's SpecializationThreshold: "in our
// implementation, the specializationThreshold is 1,000 invocations."
const DefaultThreshold = 1000

// Params tunes the algorithm; the zero value gives the paper's setup.
type Params struct {
	// Threshold is the minimum Weight(arc) for an arc to be considered
	// for specialization; 0 selects DefaultThreshold. Set to -1 to
	// consider every arc (useful in tests).
	Threshold int64

	// DisableCascade turns off cascadeSpecializations (§3.3 ablation):
	// statically-bound callers of specialized methods then fall back to
	// run-time version selection.
	DisableCascade bool

	// DisableCombination turns off the §3.2 tuple combination: arc
	// tuples are added directly without closing under intersection.
	// This can leave the runtime without a unique most-specific version
	// for some calls; selection then conservatively uses the general
	// version for ambiguous cases.
	DisableCombination bool

	// UseTupleProfiles enables the §3.2 extension: "the set of actual
	// [argument class] tuples encountered during the profiling run
	// could be used to see which of the specializations would actually
	// be invoked". Specialization tuples containing no observed
	// argument tuple are dropped, curbing combination blow-up. Requires
	// a profile with RecordEntry data; methods without a sample (or
	// with an overflowed one) keep every tuple.
	UseTupleProfiles bool

	// SpaceBudget, when positive, switches to the §3.4 alternative
	// heuristic: visit specializable arcs in decreasing weight order
	// (ignoring the threshold) and specialize until the budget — a
	// program-wide cap on added specializations — is consumed.
	SpaceBudget int
}

func (p Params) threshold() int64 {
	switch {
	case p.Threshold == 0:
		return DefaultThreshold
	case p.Threshold < 0:
		return 0
	default:
		return p.Threshold
	}
}

// Stats summarizes an algorithm run.
type Stats struct {
	ArcsTotal          int
	ArcsSpecializable  int
	ArcsAboveThreshold int
	CascadeRequests    int

	MethodsSpecialized int // methods with at least one added specialization
	AddedSpecs         int // specializations beyond the general version
	MaxPerMethod       int // max added specializations on one method
	AvgPerMethod       float64
}

// Result is the algorithm's output: the specialization tuples per
// method (the general tuple first, then added specializations) plus
// statistics.
type Result struct {
	Specializations map[*hier.Method][]hier.Tuple
	Stats           Stats
}

type runner struct {
	h      *hier.Hierarchy
	prog   *ir.Program
	cg     *profile.CallGraph
	params Params

	specs   map[*hier.Method][]hier.Tuple
	general map[*hier.Method]hier.Tuple
	inArcs  map[*hier.Method][]*profile.Arc
	stats   Stats
}

// Run executes the algorithm over the call graph.
func Run(p *ir.Program, cg *profile.CallGraph, params Params) *Result {
	r := &runner{
		h:       p.H,
		prog:    p,
		cg:      cg,
		params:  params,
		specs:   map[*hier.Method][]hier.Tuple{},
		general: map[*hier.Method]hier.Tuple{},
		inArcs:  map[*hier.Method][]*profile.Arc{},
	}

	// specializeProgram: initialize Specializations[meth] with the
	// method's general tuple.
	for _, m := range p.H.Methods() {
		g := r.generalFor(m)
		r.general[m] = g
		r.specs[m] = []hier.Tuple{g}
	}
	for _, a := range cg.Arcs() {
		r.stats.ArcsTotal++
		r.inArcs[a.Callee] = append(r.inArcs[a.Callee], a)
	}

	if params.SpaceBudget > 0 {
		r.specializeWithBudget()
	} else {
		for _, m := range p.H.Methods() {
			r.specializeMethod(m)
		}
	}

	r.finishStats()
	return &Result{Specializations: r.specs, Stats: r.stats}
}

// generalFor returns the base tuple for a method: its exact
// ApplicableClasses, or the always-safe specializer-cone tuple when the
// exact projection was not computable.
func (r *runner) generalFor(m *hier.Method) hier.Tuple {
	if app, exact := r.h.ApplicableClassesExact(m); exact {
		return app.Clone()
	}
	return r.h.GeneralTuple(m)
}

// specializeWithBudget is the §3.4 alternative cost/benefit heuristic:
// "the algorithm could be provided with a fixed space budget, and could
// visit arcs in decreasing order of weight, specializing until the
// space budget was consumed."
func (r *runner) specializeWithBudget() {
	arcs := r.cg.Arcs()
	sort.SliceStable(arcs, func(i, j int) bool { return arcs[i].Weight > arcs[j].Weight })
	for _, arc := range arcs {
		if r.addedTotal() >= r.params.SpaceBudget {
			return
		}
		if arc.Caller() == nil || !r.isSpecializableArc(arc) {
			continue
		}
		r.stats.ArcsSpecializable++
		r.stats.ArcsAboveThreshold++
		r.addSpecialization(arc.Caller(), r.neededInfoForArc(arc))
	}
}

func (r *runner) addedTotal() int {
	n := 0
	for _, specs := range r.specs {
		n += len(specs) - 1
	}
	return n
}

// specializeMethod is the paper's routine of the same name.
func (r *runner) specializeMethod(meth *hier.Method) {
	for _, arc := range r.cg.OutArcs(meth) {
		if !r.isSpecializableArc(arc) {
			continue
		}
		r.stats.ArcsSpecializable++
		if arc.Weight > r.params.threshold() {
			r.stats.ArcsAboveThreshold++
			r.addSpecialization(meth, r.neededInfoForArc(arc))
		}
	}
}

// isSpecializableArc: PassThroughArgs[CallSite(arc)] ≠ ∅ and
// ApplicableClasses[Caller(arc)] ≠ neededInfoForArc(arc).
func (r *runner) isSpecializableArc(arc *profile.Arc) bool {
	if arc.Caller() == nil || len(arc.Site.PassThrough) == 0 {
		return false
	}
	return !r.general[arc.Caller()].Equal(r.neededInfoForArc(arc))
}

// neededInfoForArc computes the most general class-set tuple for the
// caller's formals that statically binds the arc to its callee: the
// callee's ApplicableClasses mapped back through the call site's
// pass-through argument mapping.
func (r *runner) neededInfoForArc(arc *profile.Arc) hier.Tuple {
	return r.neededInfoFor(arc, r.generalFor(arc.Callee))
}

// neededInfoFor is the two-argument form used by cascading: it maps an
// arbitrary callee tuple back to the caller's formals.
func (r *runner) neededInfoFor(arc *profile.Arc, calleeInfo hier.Tuple) hier.Tuple {
	needed := r.general[arc.Caller()].Clone()
	for _, pp := range arc.Site.PassThrough {
		needed[pp.Formal].RetainAll(calleeInfo[pp.ArgPos])
	}
	return needed
}

func (r *runner) hasSpec(meth *hier.Method, t hier.Tuple) bool {
	for _, e := range r.specs[meth] {
		if e.Equal(t) {
			return true
		}
	}
	return false
}

// addSpecialization combines the new tuple with all existing
// specializations by pairwise intersection (dropping tuples with empty
// components), then cascades the new tuple to the method's callers.
func (r *runner) addSpecialization(meth *hier.Method, specTuple hier.Tuple) {
	var toAdd []hier.Tuple
	if r.params.DisableCombination {
		if !specTuple.HasEmpty() && !r.hasSpec(meth, specTuple) && r.observed(meth, specTuple) {
			toAdd = append(toAdd, specTuple)
		}
	} else {
		for _, existing := range r.specs[meth] {
			inter := existing.Intersect(specTuple)
			if inter.HasEmpty() || r.hasSpec(meth, inter) || !r.observed(meth, inter) {
				continue
			}
			dup := false
			for _, t := range toAdd {
				if t.Equal(inter) {
					dup = true
					break
				}
			}
			if !dup {
				toAdd = append(toAdd, inter)
			}
		}
	}
	r.specs[meth] = append(r.specs[meth], toAdd...)

	if r.params.DisableCascade {
		return
	}
	for _, arc := range r.inArcs[meth] {
		r.cascadeSpecializations(arc, specTuple)
	}
}

// cascadeSpecializations specializes statically-bound pass-through
// high-weight callers of a newly-specialized method, so that they can
// statically bind to the specialized version instead of falling back
// to a run-time version selection (§3.3).
func (r *runner) cascadeSpecializations(arc *profile.Arc, calleeSpec hier.Tuple) {
	if arc.Caller() == nil || len(arc.Site.PassThrough) == 0 {
		return
	}
	// "The call arc was statically bound (with respect to the
	// pass-through arguments)": the caller's general information
	// already pins the callee.
	if !r.general[arc.Caller()].Equal(r.neededInfoForArc(arc)) {
		return
	}
	if arc.Weight <= r.params.threshold() {
		return
	}
	callerSpec := r.neededInfoFor(arc, calleeSpec)
	if callerSpec.HasEmpty() || r.hasSpec(arc.Caller(), callerSpec) || !r.observed(arc.Caller(), callerSpec) {
		return
	}
	r.stats.CascadeRequests++
	r.addSpecialization(arc.Caller(), callerSpec)
}

// observed reports whether at least one argument-class tuple recorded
// for the method during profiling lies inside the candidate
// specialization tuple (§3.2 extension). Without tuple profiling, or
// for methods whose sample overflowed, everything passes.
func (r *runner) observed(meth *hier.Method, t hier.Tuple) bool {
	if !r.params.UseTupleProfiles {
		return true
	}
	sample := r.cg.Entries(meth)
	if sample == nil || sample.Overflow {
		return true
	}
	for _, ids := range sample.Tuples {
		if t.ContainsIDs(ids) {
			return true
		}
	}
	return false
}

func (r *runner) finishStats() {
	total := 0
	for _, m := range r.h.Methods() {
		added := len(r.specs[m]) - 1
		if added <= 0 {
			continue
		}
		r.stats.MethodsSpecialized++
		total += added
		if added > r.stats.MaxPerMethod {
			r.stats.MaxPerMethod = added
		}
	}
	r.stats.AddedSpecs = total
	if r.stats.MethodsSpecialized > 0 {
		r.stats.AvgPerMethod = float64(total) / float64(r.stats.MethodsSpecialized)
	}
}

// Describe renders the directives human-readably (for the specialize
// CLI and debugging), sorted by method name.
func (res *Result) Describe(h *hier.Hierarchy) string {
	type entry struct {
		name   string
		tuples []hier.Tuple
	}
	var entries []entry
	for m, tuples := range res.Specializations {
		if len(tuples) <= 1 {
			continue
		}
		entries = append(entries, entry{m.Name(), tuples})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	var b strings.Builder
	fmt.Fprintf(&b, "%d methods specialized, %d added specializations (max %d, avg %.2f)\n",
		res.Stats.MethodsSpecialized, res.Stats.AddedSpecs, res.Stats.MaxPerMethod, res.Stats.AvgPerMethod)
	for _, e := range entries {
		fmt.Fprintf(&b, "%s:\n", e.name)
		for i, t := range e.tuples {
			tag := "spec"
			if i == 0 {
				tag = "general"
			}
			fmt.Fprintf(&b, "  [%s] %s\n", tag, t.String(h))
		}
	}
	return b.String()
}
