// Pipeline observability: a process-wide Observer armed at every Guard
// boundary, mirroring the fault-injection seam in fault.go. When armed,
// each guarded stage records its wall time into a per-stage histogram,
// contained panics tick a per-stage counter, and (optionally) every
// stage run lands in a span tracer for `-trace` summaries. The
// Specialize and Compile wrappers additionally flush the algorithm
// statistics the paper's figures are built from — arcs examined,
// specializations added, cascade requests, statically-bound sends —
// into counters, so /metrics shows the specializer working without the
// optimizer knowing anything about observability.
//
// Disarmed (the production default) the seam costs one atomic pointer
// load per Guard and never reads the clock.

package pipeline

import (
	"sync"
	"sync/atomic"
	"time"

	"selspec/internal/obs"
	"selspec/internal/specialize"
)

// allStages lists the Guard boundaries that pre-register their series
// so the stage event path is a map read plus atomic bumps — no
// allocation, no registry lock.
var allStages = []Stage{
	StageParse, StageHierarchy, StageLower, StageProfile,
	StageSpecialize, StageCompile, StageInterp, StageCheck, StageHarness,
}

// stageObs is one stage's pre-registered instruments.
type stageObs struct {
	seconds *obs.Histogram // selspec_pipeline_stage_seconds{stage=...}
	panics  *obs.Counter   // selspec_pipeline_contained_panics_total{stage=...}
}

// Observer records pipeline activity into an obs.Registry and/or an
// obs.Tracer; either may be nil. Safe for concurrent use by every
// goroutine running guarded stages.
type Observer struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	mu     sync.Mutex
	stages map[Stage]stageObs // known stages pre-filled; others added lazily

	specArcs     *obs.Counter
	specAdded    *obs.Counter
	specCascades *obs.Counter
	optStatic    *obs.Counter
	optInlined   *obs.Counter
}

// NewObserver builds an observer over a registry and an optional span
// tracer. A nil registry is allowed (trace-only observation); a nil
// tracer is allowed (metrics-only); both nil yields an observer that
// does nothing, which callers should avoid arming.
func NewObserver(r *obs.Registry, tr *obs.Tracer) *Observer {
	o := &Observer{
		reg:    r,
		tracer: tr,
		stages: make(map[Stage]stageObs, len(allStages)),

		specArcs:     r.Counter("selspec_specialize_arcs_examined_total"),
		specAdded:    r.Counter("selspec_specialize_specializations_added_total"),
		specCascades: r.Counter("selspec_specialize_cascade_requests_total"),
		optStatic:    r.Counter("selspec_opt_static_bound_sends_total"),
		optInlined:   r.Counter("selspec_opt_inlined_calls_total"),
	}
	for _, s := range allStages {
		o.stages[s] = o.register(s)
	}
	return o
}

func (o *Observer) register(s Stage) stageObs {
	l := obs.Label{Key: "stage", Value: string(s)}
	return stageObs{
		seconds: o.reg.Histogram("selspec_pipeline_stage_seconds", nil, l),
		panics:  o.reg.Counter("selspec_pipeline_contained_panics_total", l),
	}
}

// forStage returns the stage's instruments, registering unknown stages
// on first use.
func (o *Observer) forStage(s Stage) stageObs {
	o.mu.Lock()
	so, ok := o.stages[s]
	if !ok {
		so = o.register(s)
		o.stages[s] = so
	}
	o.mu.Unlock()
	return so
}

// observe records one finished stage run.
func (o *Observer) observe(stage Stage, program, config string, d time.Duration, panicked, failed bool) {
	so := o.forStage(stage)
	so.seconds.Observe(d.Seconds())
	if panicked {
		so.panics.Inc()
	}
	o.tracer.Observe(string(stage), pointName(stage, program, config), d, failed)
}

// observeSpecialize flushes one specialization run's statistics.
func (o *Observer) observeSpecialize(s specialize.Stats) {
	o.specArcs.Add(uint64(s.ArcsTotal))
	o.specAdded.Add(uint64(s.AddedSpecs))
	o.specCascades.Add(uint64(s.CascadeRequests))
}

// observeCompile flushes one compilation's optimizer statistics.
func (o *Observer) observeCompile(static, inlined int) {
	o.optStatic.Add(uint64(static))
	o.optInlined.Add(uint64(inlined))
}

// observing is the process-wide observer; nil (the production state)
// keeps Guard at a single atomic load with no clock reads.
var observing atomic.Pointer[Observer]

// SetObserver installs o at every Guard boundary and returns a restore
// function, which reinstates whatever was armed before. Tests must
// restore (defer restore()) so observation never leaks across tests;
// `selspec serve` arms for the life of the process.
func SetObserver(o *Observer) (restore func()) {
	prev := observing.Swap(o)
	return func() { observing.Store(prev) }
}
