// Package pipeline is the fault-containment boundary around the
// compilation pipeline (parse → lower → hierarchy → profile →
// specialize → compile → interpret → check). Every stage entry point is
// available here wrapped in a panic-recovering guard that converts
// internal panics into a structured *StageError — stage name, program
// label, configuration, source position when the fault carries one, and
// the goroutine stack — so drivers get diagnostics instead of crashes.
//
// The design follows interp.Run's long-standing RuntimeError recovery:
// a fault inside one compilation unit is an error value for that unit,
// never a process abort. The experiment harness (internal/bench) leans
// on this to keep a multi-minute benchmark grid alive when one cell is
// poisoned, in the spirit of Vortex-style compilers that contain faults
// per compilation unit and of profile-guided systems that treat a
// failed compilation as a recoverable, deoptimizable event.
//
// Errors returned by a stage in the ordinary way (parse errors, runtime
// errors, ...) pass through unchanged: they already carry context and
// callers match on their text and types. Only panics are converted.
package pipeline

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"selspec/internal/check"
	"selspec/internal/hier"
	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
	"selspec/internal/profile"
	"selspec/internal/specialize"
	"selspec/internal/vm"
	"selspec/internal/vmcheck"
)

// Stage names one pipeline stage for diagnostics.
type Stage string

// The pipeline stages, in execution order.
const (
	StageParse      Stage = "parse"
	StageHierarchy  Stage = "hierarchy"
	StageLower      Stage = "lower"
	StageProfile    Stage = "profile"
	StageSpecialize Stage = "specialize"
	StageCompile    Stage = "compile"
	StageInterp     Stage = "interp"
	StageCheck      Stage = "check"
	// StageVerify is the load-time bytecode verifier (internal/vmcheck)
	// run over a compiled machine before (and, for lazily compiling
	// configurations, after) execution.
	StageVerify Stage = "verify"
	// StageHarness is the experiment harness itself: the outermost
	// per-cell guard in a benchmark grid, catching faults in harness
	// code and caller-supplied hooks that no inner stage boundary saw.
	StageHarness Stage = "harness"
)

// StageError is a contained pipeline fault: one stage of one
// compilation unit panicked (or, for wrapped errors, failed) and the
// boundary converted it into a value the caller can record and keep
// going from.
type StageError struct {
	Stage   Stage
	Program string   // unit label: benchmark name, file, ... (may be empty)
	Config  string   // compiler configuration (may be empty)
	Pos     lang.Pos // source position, when the fault carries one
	Err     error    // underlying cause
	Stack   []byte   // goroutine stack; non-nil only for recovered panics
}

func (e *StageError) Error() string {
	s := fmt.Sprintf("stage %s", e.Stage)
	if e.Program != "" {
		s += " [" + e.Program
		if e.Config != "" {
			s += "/" + e.Config
		}
		s += "]"
	}
	if e.Pos.Line > 0 {
		s += " at " + e.Pos.String()
	}
	if e.Stack != nil {
		s += " panicked"
	}
	return s + ": " + e.Err.Error()
}

func (e *StageError) Unwrap() error { return e.Err }

// positioned is any error that can report a source position.
// lang.Error and interp.RuntimeError both implement it.
type positioned interface{ Position() lang.Pos }

// posOf extracts a source position from an error chain, if any link
// carries one.
func posOf(err error) lang.Pos {
	var p positioned
	if errors.As(err, &p) {
		return p.Position()
	}
	return lang.Pos{}
}

// Guard runs fn inside the recovery boundary for one (stage, unit)
// pair. A panic in fn becomes a *StageError carrying the recovered
// value and the goroutine stack; ordinary errors pass through
// untouched. The zero value of T is returned alongside any error.
//
// Every Guard entry is also a named fault point: when an Injector is
// armed (tests, chaos mode — see fault.go), it may panic, fail, or
// delay the stage here, inside the recovery boundary, so injected
// faults are contained exactly like organic ones.
func Guard[T any](stage Stage, program, config string, fn func() (T, error)) (out T, err error) {
	obsv := observing.Load()
	var start time.Time
	if obsv != nil {
		start = time.Now()
	}
	defer func() {
		r := recover()
		if r != nil {
			cause, ok := r.(error)
			if !ok {
				cause = fmt.Errorf("panic: %v", r)
			}
			var zero T
			out = zero
			err = &StageError{
				Stage:   stage,
				Program: program,
				Config:  config,
				Pos:     posOf(cause),
				Err:     cause,
				Stack:   debug.Stack(),
			}
		}
		if obsv != nil {
			obsv.observe(stage, program, config, time.Since(start), r != nil, err != nil)
		}
	}()
	if ferr := inject(stage, program, config); ferr != nil {
		var zero T
		return zero, ferr
	}
	return fn()
}

// Parse runs the lexer and parser inside the boundary.
func Parse(label, src string) (*lang.Program, error) {
	return Guard(StageParse, label, "", func() (*lang.Program, error) {
		return lang.Parse(src)
	})
}

// Build constructs the class hierarchy inside the boundary.
func Build(label string, parsed *lang.Program) (*hier.Hierarchy, error) {
	return Guard(StageHierarchy, label, "", func() (*hier.Hierarchy, error) {
		return hier.Build(parsed)
	})
}

// Lower lowers a parsed program against a pre-built hierarchy inside
// the boundary.
func Lower(label string, parsed *lang.Program, h *hier.Hierarchy) (*ir.Program, error) {
	return Guard(StageLower, label, "", func() (*ir.Program, error) {
		return ir.LowerWith(parsed, h)
	})
}

// Load is the guarded front half of the pipeline: parse, build the
// hierarchy, lower. Each stage is contained separately so a fault names
// the stage that produced it.
func Load(label, src string) (*ir.Program, error) {
	parsed, err := Parse(label, src)
	if err != nil {
		return nil, err
	}
	h, err := Build(label, parsed)
	if err != nil {
		return nil, err
	}
	return Lower(label, parsed, h)
}

// Compile runs the optimizing middle end inside the boundary. The
// configuration is recorded on any contained fault.
func Compile(label string, p *ir.Program, oo opt.Options) (*opt.Compiled, error) {
	c, err := Guard(StageCompile, label, oo.Config.String(), func() (*opt.Compiled, error) {
		return opt.Compile(p, oo)
	})
	if err == nil {
		if o := observing.Load(); o != nil {
			s := c.Stats()
			o.observeCompile(s.StaticBound, s.InlinedCalls)
		}
	}
	return c, err
}

// Specialize runs the selective specialization algorithm inside the
// boundary (the algorithm itself returns no error; only a contained
// panic can produce one).
func Specialize(label string, p *ir.Program, cg *profile.CallGraph, params specialize.Params) (*specialize.Result, error) {
	res, err := Guard(StageSpecialize, label, opt.Selective.String(), func() (*specialize.Result, error) {
		return specialize.Run(p, cg, params), nil
	})
	if err == nil {
		if o := observing.Load(); o != nil {
			o.observeSpecialize(res.Stats)
		}
	}
	return res, err
}

// RunInterp executes a prepared interpreter inside the boundary.
// Mini-Cecil runtime errors come back as *interp.RuntimeError exactly
// as from in.Run; only interpreter-internal panics are converted.
func RunInterp(label, config string, in *interp.Interp) (interp.Value, error) {
	return Guard(StageInterp, label, config, func() (interp.Value, error) {
		return in.Run()
	})
}

// RunVM executes a prepared bytecode machine inside the same boundary
// (and under the same stage name) as RunInterp: the execution tier is
// an implementation detail of the interp stage, so contained-fault
// reports and stage metrics stay comparable across engines.
func RunVM(label, config string, m *vm.Machine) (interp.Value, error) {
	return Guard(StageInterp, label, config, func() (interp.Value, error) {
		return m.Run()
	})
}

// CheckSource runs the static analyzer over one source unit inside the
// boundary: the analyzer must never crash the process on a parseable
// program.
func CheckSource(label, src string, opts check.Options) ([]check.Diagnostic, error) {
	return Guard(StageCheck, label, "", func() ([]check.Diagnostic, error) {
		return check.Source(label, src, opts)
	})
}

// VerifyMachine runs the bytecode verifier over every proc the machine
// has compiled so far, inside the boundary. A verifier finding comes
// back as a positioned, stage-attributed *StageError wrapping the
// *vmcheck.Error.
func VerifyMachine(label, config string, m *vm.Machine) error {
	_, err := Guard(StageVerify, label, config, func() (struct{}, error) {
		return struct{}{}, vmcheck.Verify(m)
	})
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: StageVerify, Program: label, Config: config, Pos: posOf(err), Err: err}
}

// CheckBytecode runs the post-compile bytecode diagnostics (unreachable
// code, dead stores) over a compiled machine inside the boundary.
func CheckBytecode(label string, m *vm.Machine) ([]check.Diagnostic, error) {
	return Guard(StageCheck, label, "", func() ([]check.Diagnostic, error) {
		return vmcheck.Diagnose(m, label), nil
	})
}
