package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"selspec/internal/check"
	"selspec/internal/interp"
	"selspec/internal/lang"
)

func TestGuardConvertsPanic(t *testing.T) {
	_, err := Guard(StageCompile, "Richards", "Selective", func() (int, error) {
		panic("index out of range [3] with length 2")
	})
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *StageError", err, err)
	}
	if se.Stage != StageCompile || se.Program != "Richards" || se.Config != "Selective" {
		t.Errorf("identity = %s/%s/%s", se.Stage, se.Program, se.Config)
	}
	if se.Stack == nil {
		t.Error("recovered panic lacks a stack")
	}
	for _, want := range []string{"stage compile", "[Richards/Selective]", "panicked", "index out of range"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestGuardPassesErrorsThrough(t *testing.T) {
	sentinel := errors.New("ordinary failure")
	v, err := Guard(StageParse, "p", "", func() (string, error) {
		return "partial", sentinel
	})
	if err != sentinel {
		t.Fatalf("err = %v, want the sentinel unchanged", err)
	}
	if v != "partial" {
		t.Fatalf("v = %q", v)
	}
}

func TestGuardPassesValuesThrough(t *testing.T) {
	v, err := Guard(StageParse, "p", "", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("= %v, %v", v, err)
	}
}

func TestGuardZeroesResultOnPanic(t *testing.T) {
	v, err := Guard(StageLower, "p", "", func() (*lang.Program, error) {
		panic("boom")
	})
	if v != nil {
		t.Errorf("result not zeroed: %v", v)
	}
	if err == nil {
		t.Error("panic not converted")
	}
}

func TestGuardExtractsPosition(t *testing.T) {
	// A panicking error value that carries a source position (as
	// lang.Error and interp.RuntimeError do) anchors the StageError.
	_, err := Guard(StageInterp, "p", "Base", func() (int, error) {
		panic(&interp.RuntimeError{Pos: lang.Pos{Line: 7, Col: 3}, Msg: "boom"})
	})
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatal(err)
	}
	if se.Pos.Line != 7 || se.Pos.Col != 3 {
		t.Errorf("pos = %v", se.Pos)
	}
	if !strings.Contains(err.Error(), "at 7:3") {
		t.Errorf("error %q lacks position", err)
	}
}

func TestStageErrorUnwrap(t *testing.T) {
	cause := fmt.Errorf("cause")
	_, err := Guard(StageCheck, "p", "", func() (int, error) { panic(cause) })
	if !errors.Is(err, cause) {
		t.Errorf("errors.Is fails through StageError: %v", err)
	}
}

func TestLoadParseErrorUntouched(t *testing.T) {
	// Ordinary front-end diagnostics keep their type and text: existing
	// callers match on both.
	_, err := Load("unit", "method main( {")
	if err == nil {
		t.Fatal("expected a parse error")
	}
	var se *StageError
	if errors.As(err, &se) {
		t.Fatalf("parse error wrongly wrapped: %v", err)
	}
	var le *lang.Error
	if !errors.As(err, &le) {
		t.Fatalf("err = %T, want *lang.Error", err)
	}
}

func TestLoadAndRunHealthy(t *testing.T) {
	prog, err := Load("unit", "method main() { 40 + 2; }")
	if err != nil {
		t.Fatal(err)
	}
	if prog == nil || prog.Main == nil {
		t.Fatal("no program")
	}
}

func TestCheckSourceHealthy(t *testing.T) {
	ds, err := CheckSource("unit", `class A
method f(x@A) { 1; }
method main() { var keep := new A(); g(keep); }
method g(x@A) { f(x); }`, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = ds // any diagnostics are fine; the boundary just must not wrap them
}
