// Fault injection: a first-class, seeded seam at every Guard boundary.
//
// PR 3 proved fault containment with ad-hoc "poisoned options" closures
// living inside bench's tests; the seam here promotes that pattern into
// the pipeline itself so every consumer — the bench grid, the serve
// mode's chaos tests, future soak harnesses — can inject panics, errors
// and slow stages at named points without threading test hooks through
// production signatures.
//
// Every Guard boundary is a named fault point identified by its
// (stage, program, config) triple. An armed Injector is consulted once
// per Guard entry; rules match a point by exact fields (empty = any)
// and fire a panic, an injected error, or a delay. Firing happens
// INSIDE the recovery boundary, so an injected panic is contained
// exactly like a real one: the caller sees a *StageError for that
// stage, never a process abort.
//
// The seam is disarmed by default — one atomic pointer load per Guard,
// nil in production — and armed only by tests and by `selspec serve
// -chaos`, whose probabilistic rules draw from a seeded PRNG so chaos
// runs are reproducible.

package pipeline

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultAction is what a matched fault rule does at its injection point.
type FaultAction int

const (
	// FaultPanic panics at the stage boundary; the Guard converts it
	// into a *StageError with a stack, exactly like an organic panic.
	FaultPanic FaultAction = iota
	// FaultError makes the stage return an *InjectedError without
	// running it.
	FaultError
	// FaultSleep delays the stage by Delay, then runs it normally —
	// the slow-stage simulation deadline tests lean on.
	FaultSleep
)

func (a FaultAction) String() string {
	switch a {
	case FaultPanic:
		return "panic"
	case FaultError:
		return "error"
	case FaultSleep:
		return "sleep"
	}
	return fmt.Sprintf("FaultAction(%d)", int(a))
}

// FaultRule arms one kind of fault at a set of points. Empty match
// fields are wildcards; Probability 0 (or ≥1) fires on every match,
// anything between draws from the injector's seeded PRNG.
type FaultRule struct {
	Stage   Stage  // "" = any stage
	Program string // "" = any unit label
	Config  string // "" = any configuration
	Action  FaultAction
	Delay   time.Duration // FaultSleep only
	Message string        // panic/error text (default "injected fault")

	// Probability in (0,1) fires the rule on that fraction of matches,
	// using the injector's seeded source; 0 or ≥1 always fires.
	Probability float64

	// Limit, when positive, disarms the rule after it has fired this
	// many times ("crash the first N attempts, then recover").
	Limit int
}

// InjectedError is the error an armed FaultError rule returns; tests
// match on the type to tell injected faults from organic ones.
type InjectedError struct {
	Point string // "stage [program/config]" of the firing point
	Msg   string
}

func (e *InjectedError) Error() string { return "injected fault at " + e.Point + ": " + e.Msg }

// Injector evaluates fault rules at Guard boundaries. It is safe for
// concurrent use; the hit counters make chaos assertions deterministic
// ("exactly the faulted requests failed").
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []FaultRule
	fired map[int]int   // per-rule fire counts (by rule index)
	hits  map[point]int // per-point fire counts
}

// point identifies one Guard boundary for hit accounting.
type point struct {
	stage           Stage
	program, config string
}

// NewInjector builds an injector with a deterministic seed for its
// probabilistic rules.
func NewInjector(seed int64, rules ...FaultRule) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: rules,
		fired: make(map[int]int),
		hits:  make(map[point]int),
	}
}

func pointName(stage Stage, program, config string) string {
	s := string(stage)
	if program != "" || config != "" {
		s += " [" + program
		if config != "" {
			s += "/" + config
		}
		s += "]"
	}
	return s
}

// Fired reports how many times any rule fired at points matching the
// given triple (empty fields are wildcards, mirroring rule matching).
func (inj *Injector) Fired(stage Stage, program, config string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	n := 0
	for p, c := range inj.hits {
		if (stage == "" || stage == p.stage) &&
			(program == "" || program == p.program) &&
			(config == "" || config == p.config) {
			n += c
		}
	}
	return n
}

// TotalFired reports the total number of injected faults.
func (inj *Injector) TotalFired() int { return inj.Fired("", "", "") }

// fire consults the rules for one Guard entry. It panics (FaultPanic),
// returns an error (FaultError), sleeps then returns nil (FaultSleep),
// or returns nil when nothing matches. At most one rule fires per
// entry: the first match wins, in arming order.
func (inj *Injector) fire(stage Stage, program, config string) error {
	inj.mu.Lock()
	var hit *FaultRule
	var idx int
	for i := range inj.rules {
		r := &inj.rules[i]
		if r.Stage != "" && r.Stage != stage {
			continue
		}
		if r.Program != "" && r.Program != program {
			continue
		}
		if r.Config != "" && r.Config != config {
			continue
		}
		if r.Limit > 0 && inj.fired[i] >= r.Limit {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && inj.rng.Float64() >= r.Probability {
			continue
		}
		hit, idx = r, i
		break
	}
	if hit == nil {
		inj.mu.Unlock()
		return nil
	}
	inj.fired[idx]++
	inj.hits[point{stage, program, config}]++
	name := pointName(stage, program, config)
	msg := hit.Message
	if msg == "" {
		msg = "injected fault"
	}
	action, delay := hit.Action, hit.Delay
	inj.mu.Unlock() // release before panicking/sleeping: Guards nest

	switch action {
	case FaultPanic:
		panic(&InjectedError{Point: name, Msg: msg})
	case FaultError:
		return &InjectedError{Point: name, Msg: msg}
	case FaultSleep:
		time.Sleep(delay)
	}
	return nil
}

// armed is the process-wide injector; nil (the production state) makes
// the seam a single atomic load per Guard.
var armed atomic.Pointer[Injector]

// ArmFaults installs inj at every Guard boundary and returns the
// disarm function, which restores whatever was armed before. Tests
// must disarm (defer disarm()) so state never leaks across tests;
// `selspec serve -chaos` arms for the life of the process.
func ArmFaults(inj *Injector) (disarm func()) {
	prev := armed.Swap(inj)
	return func() { armed.Store(prev) }
}

// inject is the Guard-side hook: nil when disarmed.
func inject(stage Stage, program, config string) error {
	inj := armed.Load()
	if inj == nil {
		return nil
	}
	return inj.fire(stage, program, config)
}
