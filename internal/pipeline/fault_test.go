package pipeline

import (
	"errors"
	"testing"
	"time"
)

func guardOK(stage Stage, program, config string) (int, error) {
	return Guard(stage, program, config, func() (int, error) { return 42, nil })
}

func TestDisarmedSeamIsInert(t *testing.T) {
	v, err := guardOK(StageCompile, "p", "Base")
	if err != nil || v != 42 {
		t.Fatalf("got (%d, %v)", v, err)
	}
}

func TestInjectedPanicIsContained(t *testing.T) {
	inj := NewInjector(1, FaultRule{
		Stage: StageCompile, Program: "victim", Config: "CHA",
		Action: FaultPanic, Message: "boom",
	})
	defer ArmFaults(inj)()

	// Non-matching points run untouched.
	if v, err := guardOK(StageCompile, "other", "CHA"); err != nil || v != 42 {
		t.Fatalf("non-matching point: (%d, %v)", v, err)
	}
	if v, err := guardOK(StageInterp, "victim", "CHA"); err != nil || v != 42 {
		t.Fatalf("wrong stage: (%d, %v)", v, err)
	}

	// The matching point panics inside the boundary: a StageError with
	// a stack, wrapping the InjectedError.
	v, err := guardOK(StageCompile, "victim", "CHA")
	if v != 0 || err == nil {
		t.Fatalf("got (%d, %v)", v, err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
	if se.Stage != StageCompile || se.Stack == nil {
		t.Errorf("StageError = %+v, want compile stage with stack", se)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Msg != "boom" {
		t.Errorf("cause = %v, want InjectedError boom", err)
	}
	if n := inj.Fired(StageCompile, "victim", "CHA"); n != 1 {
		t.Errorf("Fired = %d", n)
	}
	if n := inj.Fired("", "victim", ""); n != 1 {
		t.Errorf("wildcard Fired = %d", n)
	}
}

func TestInjectedErrorSkipsStage(t *testing.T) {
	inj := NewInjector(1, FaultRule{Stage: StageParse, Action: FaultError, Message: "no parse today"})
	defer ArmFaults(inj)()

	ran := false
	_, err := Guard(StageParse, "p", "", func() (int, error) { ran = true; return 1, nil })
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want InjectedError", err)
	}
	if ran {
		t.Error("stage body ran despite FaultError")
	}
	// FaultError is an ordinary error, not a contained panic.
	var se *StageError
	if errors.As(err, &se) {
		t.Errorf("injected error wrapped in StageError: %v", err)
	}
}

func TestInjectedSleepDelaysThenRuns(t *testing.T) {
	const delay = 30 * time.Millisecond
	inj := NewInjector(1, FaultRule{Stage: StageInterp, Action: FaultSleep, Delay: delay})
	defer ArmFaults(inj)()

	start := time.Now()
	v, err := guardOK(StageInterp, "p", "Base")
	if err != nil || v != 42 {
		t.Fatalf("got (%d, %v)", v, err)
	}
	if wall := time.Since(start); wall < delay {
		t.Errorf("stage completed in %v, want ≥ %v", wall, delay)
	}
}

func TestRuleLimitDisarms(t *testing.T) {
	inj := NewInjector(1, FaultRule{Stage: StageCompile, Action: FaultError, Limit: 2})
	defer ArmFaults(inj)()

	fails := 0
	for i := 0; i < 5; i++ {
		if _, err := guardOK(StageCompile, "p", "Base"); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Errorf("rule fired %d times, want 2 (Limit)", fails)
	}
}

func TestProbabilityIsSeededAndPartial(t *testing.T) {
	run := func(seed int64) []bool {
		inj := NewInjector(seed, FaultRule{Action: FaultError, Probability: 0.5})
		disarm := ArmFaults(inj)
		defer disarm()
		outcomes := make([]bool, 64)
		for i := range outcomes {
			_, err := guardOK(StageInterp, "p", "")
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(7), run(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("p=0.5 fired %d/%d times", fired, len(a))
	}
}

func TestFirstMatchWinsAndDisarmRestores(t *testing.T) {
	inner := NewInjector(1,
		FaultRule{Stage: StageCheck, Action: FaultError, Message: "first"},
		FaultRule{Stage: StageCheck, Action: FaultPanic, Message: "second"},
	)
	outer := NewInjector(1, FaultRule{Stage: StageCheck, Action: FaultError, Message: "outer"})

	disarmOuter := ArmFaults(outer)
	disarmInner := ArmFaults(inner)

	_, err := guardOK(StageCheck, "p", "")
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Msg != "first" {
		t.Fatalf("err = %v, want first rule", err)
	}

	disarmInner()
	_, err = guardOK(StageCheck, "p", "")
	if !errors.As(err, &ie) || ie.Msg != "outer" {
		t.Fatalf("after inner disarm err = %v, want outer rule", err)
	}

	disarmOuter()
	if _, err := guardOK(StageCheck, "p", ""); err != nil {
		t.Fatalf("after full disarm err = %v", err)
	}
}
