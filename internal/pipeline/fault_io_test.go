package pipeline

import (
	"errors"
	"testing"
)

func TestInjectIODisarmedIsNil(t *testing.T) {
	if fl := InjectIO(IOWrite, "/tmp/x"); fl != nil {
		t.Fatalf("disarmed InjectIO fired: %v", fl)
	}
}

func TestIOInjectorMatching(t *testing.T) {
	inj := NewIOInjector(1,
		IORule{Op: IOFsync, Path: "wal", Message: "boom"},
		IORule{Op: IOWrite, ShortBytes: 5},
	)
	disarm := ArmIOFaults(inj)
	defer disarm()

	if fl := InjectIO(IOFsync, "/d/wal.log"); fl == nil || fl.Msg != "boom" {
		t.Fatalf("fsync rule missed: %v", fl)
	}
	if fl := InjectIO(IOFsync, "/d/snapshot.json"); fl != nil {
		t.Fatalf("path filter ignored: %v", fl)
	}
	if fl := InjectIO(IOWrite, "/anything"); fl == nil || fl.ShortBytes != 5 {
		t.Fatalf("wildcard write rule: %v", fl)
	}
	if fl := InjectIO(IORename, "/anything"); fl != nil {
		t.Fatalf("unmatched op fired: %v", fl)
	}
	if inj.TotalFired() != 2 {
		t.Fatalf("TotalFired = %d, want 2", inj.TotalFired())
	}
}

func TestIORuleLimit(t *testing.T) {
	disarm := ArmIOFaults(NewIOInjector(1, IORule{Op: IOWrite, Limit: 2}))
	defer disarm()
	for i := 0; i < 2; i++ {
		if InjectIO(IOWrite, "x") == nil {
			t.Fatalf("firing %d suppressed before limit", i)
		}
	}
	if InjectIO(IOWrite, "x") != nil {
		t.Fatal("rule fired past its limit")
	}
}

func TestIORuleProbabilityDeterministic(t *testing.T) {
	count := func() int {
		disarm := ArmIOFaults(NewIOInjector(42, IORule{Op: IOWrite, Probability: 0.5}))
		defer disarm()
		n := 0
		for i := 0; i < 100; i++ {
			if InjectIO(IOWrite, "x") != nil {
				n++
			}
		}
		return n
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("probability 0.5 fired %d/100", a)
	}
}

func TestArmIOFaultsRestoresPrevious(t *testing.T) {
	outer := NewIOInjector(1, IORule{Op: IORename})
	disarmOuter := ArmIOFaults(outer)
	defer disarmOuter()
	disarmInner := ArmIOFaults(NewIOInjector(1, IORule{Op: IOFsync}))
	if InjectIO(IORename, "x") != nil {
		t.Fatal("inner arm did not replace outer")
	}
	disarmInner()
	if InjectIO(IORename, "x") == nil {
		t.Fatal("outer injector not restored")
	}
}

func TestIOFaultIsError(t *testing.T) {
	var err error = &IOFault{Op: IOWrite, Path: "/d/wal.log", Msg: "m"}
	var fl *IOFault
	if !errors.As(err, &fl) || fl.Op != IOWrite {
		t.Fatalf("errors.As failed: %v", err)
	}
	if err.Error() == "" {
		t.Fatal("empty error text")
	}
}
