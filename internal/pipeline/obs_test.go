package pipeline

import (
	"errors"
	"strings"
	"testing"

	"selspec/internal/obs"
	"selspec/internal/opt"
	"selspec/internal/profile"
	"selspec/internal/specialize"
)

// TestObserverRecordsStagesAndPanics pins the Guard-side contract: an
// armed observer times every stage run into the per-stage histogram,
// counts contained panics against the exact stage that panicked, and
// feeds the span tracer with success/failure marks.
func TestObserverRecordsStagesAndPanics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	defer SetObserver(NewObserver(reg, tr))()

	if v, err := Guard(StageParse, "p", "", func() (int, error) { return 42, nil }); err != nil || v != 42 {
		t.Fatalf("healthy stage: v=%d err=%v", v, err)
	}
	if _, err := Guard(StageCompile, "p", "Base", func() (int, error) { panic("boom") }); err == nil {
		t.Fatal("panicking stage returned nil error")
	}
	if _, err := Guard(StageLower, "p", "", func() (int, error) { return 0, errors.New("nope") }); err == nil {
		t.Fatal("erroring stage returned nil error")
	}

	snap := reg.Snapshot()
	for stage, want := range map[string]uint64{"parse": 1, "compile": 1, "lower": 1, "interp": 0} {
		if got := snap.Histograms[`selspec_pipeline_stage_seconds{stage="`+stage+`"}`].Count; got != want {
			t.Errorf("stage %s timing count = %d, want %d", stage, got, want)
		}
	}
	if got := snap.Counters[`selspec_pipeline_contained_panics_total{stage="compile"}`]; got != 1 {
		t.Errorf(`contained panics for compile = %d, want 1`, got)
	}
	if got := snap.Counters[`selspec_pipeline_contained_panics_total{stage="lower"}`]; got != 0 {
		t.Errorf("plain error counted as panic: lower panics = %d", got)
	}

	byName := map[string]*obs.SpanSummary{}
	for _, s := range tr.Summary() {
		s := s
		byName[s.Name] = &s
	}
	if s := byName["parse"]; s == nil || s.Count != 1 || s.Failed != 0 {
		t.Errorf("parse span summary = %+v", s)
	}
	if s := byName["compile"]; s == nil || s.Failed != 1 {
		t.Errorf("compile span summary = %+v", s)
	}
	if s := byName["lower"]; s == nil || s.Failed != 1 {
		t.Errorf("lower span summary = %+v", s)
	}
}

// TestObserverFlushesSpecializeAndCompileStats runs a real program
// through the guarded Specialize and Compile wrappers and checks the
// algorithm statistics land in the registry.
func TestObserverFlushesSpecializeAndCompileStats(t *testing.T) {
	reg := obs.NewRegistry()
	defer SetObserver(NewObserver(reg, nil))()

	const src = `
class A
class B isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method main() { m(new A()) + m(new B()); }
`
	prog, err := Load("obs-test", src)
	if err != nil {
		t.Fatal(err)
	}
	cg := profile.NewCallGraph(prog)
	if _, err := Specialize("obs-test", prog, cg, specialize.Params{Threshold: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile("obs-test", prog, opt.Options{Config: opt.CHA}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if _, ok := snap.Counters["selspec_specialize_arcs_examined_total"]; !ok {
		t.Error("specialize counters never registered")
	}
	if got := snap.Counters["selspec_opt_static_bound_sends_total"]; got == 0 {
		t.Error("CHA compile bound no sends statically; static-bound counter is 0")
	}
}

// TestObserverDisarmedIsInvisible: with no observer armed, Guard must
// leave the registry untouched (the restore function works) and the
// nil observer path must be taken without reading the clock — proven
// indirectly by the allocation guard in the obs package; here we pin
// the arming/restore semantics.
func TestObserverDisarmedIsInvisible(t *testing.T) {
	reg := obs.NewRegistry()
	restore := SetObserver(NewObserver(reg, nil))
	restore()

	if _, err := Guard(StageParse, "p", "", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Histograms[`selspec_pipeline_stage_seconds{stage="parse"}`].Count; got != 0 {
		t.Errorf("disarmed Guard still recorded %d timings", got)
	}
}

// TestObserverTraceSummaryRendersStages: the -trace surface end to end
// at the package level — spans from guarded stages render into the
// aligned summary table.
func TestObserverTraceSummaryRendersStages(t *testing.T) {
	tr := obs.NewTracer(0)
	defer SetObserver(NewObserver(nil, tr))()

	if _, err := Parse("tracee", "method main() { 7; }"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tr.WriteSummary(&sb)
	out := sb.String()
	if !strings.Contains(out, "parse") {
		t.Errorf("summary missing parse stage:\n%s", out)
	}
}
