// I/O fault injection: the storage-layer sibling of the Guard-boundary
// seam in fault.go.
//
// The profile database (internal/profdb) makes durability promises —
// "fsync'd before ack", "atomic rename or nothing" — that only matter
// in exactly the moments a real disk misbehaves or the process dies
// mid-syscall. Those moments are untestable with real SIGKILL alone:
// a signal cannot be delivered at a chosen byte offset. This seam can.
// Every durable file operation in profdb (write, fsync, rename) asks
// the armed IOInjector first; a matching rule fails the operation with
// a deterministic error, optionally after writing a chosen number of
// bytes (a torn write, the exact state a power cut leaves behind).
//
// Like the Guard seam, the disarmed state is one atomic pointer load —
// nil in production — and arming is test-scoped via the returned
// disarm function.

package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
)

// IOOp names one durable file operation class at an injection point.
type IOOp string

const (
	// IOWrite is a data write to an open file.
	IOWrite IOOp = "write"
	// IOFsync is an fsync/File.Sync of file contents (or a directory).
	IOFsync IOOp = "fsync"
	// IORename is the atomic rename publishing a tmp file.
	IORename IOOp = "rename"
)

// IORule arms one kind of I/O fault. Empty match fields are wildcards;
// Path matches by substring so tests can target "wal" or "snapshot"
// without knowing the temp directory.
type IORule struct {
	Op   IOOp   // "" = any operation
	Path string // substring of the target path; "" = any
	// ShortBytes, for IOWrite rules, is how many bytes of the buffer
	// are actually written before the failure — a torn write. 0 means
	// the write fails before any byte lands.
	ShortBytes int
	// Message is the fault text (default "injected io fault").
	Message string
	// Probability in (0,1) fires on that fraction of matches using the
	// injector's seeded source; 0 or ≥1 always fires.
	Probability float64
	// Limit, when positive, disarms the rule after this many firings.
	Limit int
}

// IOFault is the error an armed IORule produces. The storage layer
// both returns it to its caller and honors ShortBytes, so a test sees
// the same torn on-disk state a crash mid-write would leave.
type IOFault struct {
	Op         IOOp
	Path       string
	ShortBytes int
	Msg        string
}

func (f *IOFault) Error() string {
	return fmt.Sprintf("injected io fault: %s %s: %s", f.Op, f.Path, f.Msg)
}

// IOInjector evaluates I/O fault rules. Safe for concurrent use.
type IOInjector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []IORule
	fired map[int]int
	total int
}

// NewIOInjector builds an injector with a deterministic seed for its
// probabilistic rules.
func NewIOInjector(seed int64, rules ...IORule) *IOInjector {
	return &IOInjector{
		rng:   rand.New(rand.NewSource(seed)),
		rules: rules,
		fired: make(map[int]int),
	}
}

// TotalFired reports how many faults the injector has produced.
func (inj *IOInjector) TotalFired() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.total
}

// fire consults the rules for one operation; first match wins.
func (inj *IOInjector) fire(op IOOp, path string) *IOFault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.rules {
		r := &inj.rules[i]
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		if r.Limit > 0 && inj.fired[i] >= r.Limit {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && inj.rng.Float64() >= r.Probability {
			continue
		}
		inj.fired[i]++
		inj.total++
		msg := r.Message
		if msg == "" {
			msg = "injected io fault"
		}
		return &IOFault{Op: op, Path: path, ShortBytes: r.ShortBytes, Msg: msg}
	}
	return nil
}

// armedIO is the process-wide I/O injector; nil in production.
var armedIO atomic.Pointer[IOInjector]

// ArmIOFaults installs inj at every InjectIO call site and returns the
// disarm function, which restores whatever was armed before. Tests
// must disarm (defer disarm()) so faults never leak across tests.
func ArmIOFaults(inj *IOInjector) (disarm func()) {
	prev := armedIO.Swap(inj)
	return func() { armedIO.Store(prev) }
}

// InjectIO is the storage-side hook: nil (proceed normally) when
// disarmed or when no rule matches.
func InjectIO(op IOOp, path string) *IOFault {
	inj := armedIO.Load()
	if inj == nil {
		return nil
	}
	return inj.fire(op, path)
}
