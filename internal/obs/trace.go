package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one completed traced operation: a pipeline stage run, a
// request, any timed unit of work.
type Span struct {
	Name   string // aggregation key (e.g. the stage name)
	Detail string // free-form context (program/config); not aggregated on
	D      time.Duration
	Failed bool
}

// Tracer collects completed spans up to a bound and aggregates them
// into per-name summaries. Like the Registry's instruments, the nil
// tracer is valid and discards everything, so tracing costs one nil
// check when off.
//
// Spans beyond the bound still feed the running summaries — only the
// raw span log is bounded, so a long benchmark run cannot grow memory
// without limit while its per-stage totals stay exact.
type Tracer struct {
	mu      sync.Mutex
	bound   int
	spans   []Span
	dropped int
	agg     map[string]*SpanSummary
}

// DefaultTracerBound is how many raw spans a NewTracer(0) keeps.
const DefaultTracerBound = 4096

// NewTracer returns a tracer keeping at most bound raw spans
// (0 selects DefaultTracerBound).
func NewTracer(bound int) *Tracer {
	if bound <= 0 {
		bound = DefaultTracerBound
	}
	return &Tracer{bound: bound, agg: map[string]*SpanSummary{}}
}

// Observe records one completed span. Nil-safe.
func (t *Tracer) Observe(name, detail string, d time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) < t.bound {
		t.spans = append(t.spans, Span{Name: name, Detail: detail, D: d, Failed: failed})
	} else {
		t.dropped++
	}
	s := t.agg[name]
	if s == nil {
		s = &SpanSummary{Name: name, Min: d, Max: d}
		t.agg[name] = s
	}
	s.Count++
	s.Total += d
	if d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	if failed {
		s.Failed++
	}
}

// Start begins a span and returns the function that completes it.
// Usage: defer t.Start("compile", label)(nil-error-check…) is awkward
// for error capture, so the done function takes the failure flag:
//
//	done := t.Start("compile", label)
//	…
//	done(err != nil)
//
// On the nil tracer no clock is read and done is a cheap no-op.
func (t *Tracer) Start(name, detail string) func(failed bool) {
	if t == nil {
		return func(bool) {}
	}
	start := time.Now()
	return func(failed bool) { t.Observe(name, detail, time.Since(start), failed) }
}

// Spans returns a copy of the retained raw spans, in arrival order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped reports how many spans exceeded the raw-log bound (their
// durations still count in the summaries).
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanSummary aggregates every span sharing one name.
type SpanSummary struct {
	Name   string
	Count  int
	Failed int
	Total  time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Mean is the average span duration.
func (s SpanSummary) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Summary returns the per-name aggregates sorted by descending total
// time (the view `-trace` prints: where did the wall time go).
func (t *Tracer) Summary() []SpanSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanSummary, 0, len(t.agg))
	for _, s := range t.agg {
		out = append(out, *s)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteSummary renders the per-name aggregates as an aligned table.
// Writes nothing when no spans were observed.
func (t *Tracer) WriteSummary(w io.Writer) {
	sums := t.Summary()
	if len(sums) == 0 {
		return
	}
	fmt.Fprintf(w, "%-12s %7s %7s %12s %12s %12s %12s\n",
		"stage", "count", "failed", "total", "mean", "min", "max")
	for _, s := range sums {
		fmt.Fprintf(w, "%-12s %7d %7d %12s %12s %12s %12s\n",
			s.Name, s.Count, s.Failed,
			s.Total.Round(time.Microsecond), s.Mean().Round(time.Microsecond),
			s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(w, "(%d raw spans beyond the %d-span log were aggregated only)\n", d, t.bound)
	}
}
