package obs

import "testing"

// The acceptance contract for the whole observability layer: the
// disabled (nil) instruments must cost nothing measurable and never
// allocate, because they sit on the dispatch hit path of every
// interpreter run. TestDisabledPathAllocs enforces the alloc half
// mechanically; the benchmarks let `go test -bench` quantify the
// nil-check cost next to the enabled atomic cost.

func TestDisabledPathAllocs(t *testing.T) {
	var c *Counter
	var h *Histogram
	var tr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(1)
		tr.Observe("x", "", 0, false)
	}); n != 0 {
		t.Errorf("disabled instruments allocate %v allocs/op, want 0", n)
	}
}

func TestEnabledCounterAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	h := r.Histogram("h_seconds", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.001)
	}); n != 0 {
		t.Errorf("enabled instruments allocate %v allocs/op on the bump path, want 0", n)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("c_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
