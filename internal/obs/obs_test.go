package obs

import (
	"bytes"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("selspec_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if again := r.Counter("selspec_test_total"); again != c {
		t.Error("re-registration did not return the same counter")
	}
	if other := r.Counter("selspec_test_total", Label{"k", "v"}); other == c {
		t.Error("labelled series aliased the unlabelled one")
	}
}

func TestNilInstrumentsAreFreeNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("y", nil)
	if c != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	c.Inc()
	c.Add(7)
	h.Observe(1)
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments recorded values")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	r.Reset()
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	var tr *Tracer
	tr.Observe("a", "", time.Second, false)
	tr.Start("a", "")(true)
	if tr.Summary() != nil || tr.Spans() != nil {
		t.Error("nil tracer retained spans")
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if got, want := h.Sum(), 56.05; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	hs := r.Snapshot().Histograms["lat"]
	wantCounts := []uint64{1, 2, 1, 1} // ≤0.1, ≤1, ≤10, +Inf
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
}

func TestHistogramBoundaryValueLandsInBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", []float64{1, 2})
	h.Observe(1) // exactly on a bound: le="1" is inclusive in Prometheus
	hs := r.Snapshot().Histograms["b"]
	if hs.Counts[0] != 1 {
		t.Errorf("v=bound landed in bucket %v, want first", hs.Counts)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", Label{"stage", "parse"})
	c.Add(3)
	h := r.Histogram("b_seconds", []float64{1})
	h.Observe(0.5)

	s := r.Snapshot()
	if s.Counters[`a_total{stage="parse"}`] != 3 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}
	if s.Histograms["b_seconds"].Count != 1 {
		t.Errorf("snapshot histograms = %v", s.Histograms)
	}

	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("Reset left values behind")
	}
	c.Inc() // held pointers stay live after Reset
	if r.Snapshot().Counters[`a_total{stage="parse"}`] != 1 {
		t.Error("counter dead after Reset")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("selspec_hits_total", Label{"kind", "pic"}).Add(2)
	r.Counter("selspec_hits_total", Label{"kind", "table"}).Add(1)
	h := r.Histogram("selspec_stage_seconds", []float64{0.5, 1}, Label{"stage", "parse"})
	h.Observe(0.25)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE selspec_hits_total counter`,
		`selspec_hits_total{kind="pic"} 2`,
		`selspec_hits_total{kind="table"} 1`,
		`# TYPE selspec_stage_seconds histogram`,
		`selspec_stage_seconds_bucket{stage="parse",le="0.5"} 1`,
		`selspec_stage_seconds_bucket{stage="parse",le="1"} 1`,
		`selspec_stage_seconds_bucket{stage="parse",le="+Inf"} 2`,
		`selspec_stage_seconds_sum{stage="parse"} 2.25`,
		`selspec_stage_seconds_count{stage="parse"} 2`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got\n%s--- want\n%s", got, want)
	}
}

func TestConcurrentBumpSnapshotWrite(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	h := r.Histogram("h_seconds", []float64{0.5})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	// Concurrent readers while writers run: values must be torn-free
	// and the writer must not race (run under -race in CI).
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
		_ = r.WritePrometheus(&bytes.Buffer{})
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("c = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("h count = %d, want %d", got, workers*perWorker)
	}
	if got, want := h.Sum(), 0.25*workers*perWorker; got != want {
		t.Errorf("h sum = %v, want %v", got, want)
	}
}

// yieldWriter discards output but yields the processor on every write,
// keeping a render in flight across many scheduler quanta.
type yieldWriter struct{}

func (yieldWriter) Write(p []byte) (int, error) {
	runtime.Gosched()
	return len(p), nil
}

// TestConcurrentRegisterScrape is the serve-mode race regression: the
// first POST /run registers interpreter/PIC counters lazily while a
// GET /metrics scrape renders the registry. WritePrometheus must never
// read the instrument maps outside the lock, or concurrent
// registration is a fatal concurrent map read/write under -race (and
// in production). Same for Snapshot and Reset.
func TestConcurrentRegisterScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	done := make(chan struct{})
	// Iteration counts are sized so a single -race run reliably
	// overlaps an unlocked render with a registration map write.
	const workers, perWorker = 8, 600
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Fresh series each iteration forces a map write; a
				// shared series exercises the idempotent path.
				r.Counter("reg_race_total", Label{"w", strconv.Itoa(w*perWorker + i)}).Inc()
				r.Counter("reg_race_shared_total").Inc()
				r.Histogram("reg_race_seconds", []float64{0.5}, Label{"w", strconv.Itoa(w*perWorker + i)}).Observe(0.1)
			}
		}(w)
	}
	// Scrape from several goroutines for as long as registrations are
	// in flight, so renders genuinely overlap map writes rather than
	// finishing first.
	go func() { wg.Wait(); close(done) }()
	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			// The yielding writer stretches each render across many
			// scheduler quanta, maximizing overlap with registrations.
			for {
				select {
				case <-done:
					return
				default:
					_ = r.WritePrometheus(yieldWriter{})
					_ = r.Snapshot()
				}
			}
		}()
	}
	scrapers.Wait()
	if got := r.Counter("reg_race_shared_total").Value(); got != workers*perWorker {
		t.Errorf("shared counter = %d, want %d", got, workers*perWorker)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if got := strings.Count(buf.String(), "reg_race_total{"); got != workers*perWorker {
		t.Errorf("rendered %d reg_race_total series, want %d", got, workers*perWorker)
	}
}

func TestTracerSummary(t *testing.T) {
	tr := NewTracer(0)
	tr.Observe("parse", "a", 10*time.Millisecond, false)
	tr.Observe("parse", "b", 30*time.Millisecond, true)
	tr.Observe("compile", "a", 100*time.Millisecond, false)

	sums := tr.Summary()
	if len(sums) != 2 {
		t.Fatalf("summary groups = %d", len(sums))
	}
	if sums[0].Name != "compile" { // sorted by descending total
		t.Errorf("first group = %s", sums[0].Name)
	}
	p := sums[1]
	if p.Count != 2 || p.Failed != 1 || p.Total != 40*time.Millisecond ||
		p.Min != 10*time.Millisecond || p.Max != 30*time.Millisecond || p.Mean() != 20*time.Millisecond {
		t.Errorf("parse summary = %+v", p)
	}

	var buf bytes.Buffer
	tr.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "compile") || !strings.Contains(buf.String(), "parse") {
		t.Errorf("summary table missing stages:\n%s", buf.String())
	}
}

func TestTracerBoundKeepsAggregatesExact(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Observe("s", "", time.Millisecond, false)
	}
	if got := len(tr.Spans()); got != 2 {
		t.Errorf("retained spans = %d, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	if s := tr.Summary()[0]; s.Count != 5 || s.Total != 5*time.Millisecond {
		t.Errorf("summary lost dropped spans: %+v", s)
	}
}

func TestTracerStart(t *testing.T) {
	tr := NewTracer(0)
	done := tr.Start("stage", "prog")
	done(true)
	s := tr.Summary()
	if len(s) != 1 || s[0].Count != 1 || s[0].Failed != 1 {
		t.Errorf("summary = %+v", s)
	}
	if sp := tr.Spans()[0]; sp.Detail != "prog" {
		t.Errorf("span detail = %q", sp.Detail)
	}
}
