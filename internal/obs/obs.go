// Package obs is the zero-dependency observability core: atomic
// counters, bounded histograms, a Registry that snapshots and renders
// them in the Prometheus text exposition format, and a span-style
// stage tracer (trace.go).
//
// The design contract, relied on by every instrumented hot path
// (internal/hier's dispatch cache, internal/dispatch's PICs, the
// interpreter, the pipeline guard):
//
//   - Disabled is free. A nil *Registry hands out nil *Counter and
//     *Histogram instruments, and every instrument method is nil-safe:
//     the hot path pays one predictable nil check, no allocation, no
//     atomic. There are no build tags and no global switches — whether
//     a component is observed is decided by whoever constructs it
//     (see DESIGN.md §11).
//   - Enabled is allocation-free. Instruments are registered once
//     (Registry methods are idempotent per name+labels) and bumped with
//     plain atomic adds; no map lookups, locks or allocation on the
//     event path.
//   - Concurrent. Instruments may be bumped from any number of
//     goroutines while others call Snapshot, Reset or WritePrometheus.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. stage="compile"). Instruments
// with the same name but different labels are distinct time series
// under one Prometheus metric family.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing atomic counter. The nil
// counter is valid and discards every operation — the disabled fast
// path.
type Counter struct {
	id idKey
	v  atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add accumulates n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on the nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// DefaultSecondsBuckets are the histogram bounds used for stage
// latencies: 100µs up to 10s in roughly half-decade steps, covering
// everything from a parse of a small program to a full Selective
// profile+compile+measure cell.
var DefaultSecondsBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// Histogram is a bounded histogram with fixed upper bounds, in the
// Prometheus cumulative-bucket style. Like Counter, the nil histogram
// discards observations.
//
// Consistency note: Observe updates the bucket count, the total count
// and the sum as three independent atomics so the event path stays
// lock-free. A Snapshot or scrape that lands between those updates can
// therefore see a histogram whose _count/_sum momentarily disagree
// with the bucket counts by the in-flight observations. Each value is
// itself torn-free, the skew is bounded by the number of concurrent
// Observe calls, and the series re-converge on the next scrape — the
// standard trade Prometheus client libraries make. Callers needing an
// exact cut must quiesce writers first (as Reset's callers do).
type Histogram struct {
	id     idKey
	bounds []float64       // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1; counts[i] = observations ≤ bounds[i]
	sum    atomic.Uint64   // math.Float64bits of the running sum
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// idKey identifies one instrument: metric family name plus rendered
// label pairs. Registration is keyed on it; the exposition writer
// groups families by name.
type idKey struct {
	name   string
	labels string // `k1="v1",k2="v2"` with keys sorted; "" for none
}

func (k idKey) series() string {
	if k.labels == "" {
		return k.name
	}
	return k.name + "{" + k.labels + "}"
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return strings.Join(parts, ",")
}

// Registry owns a set of named instruments. The nil registry is the
// disabled mode: it hands out nil instruments and snapshots empty.
// Registration takes a lock; bumping registered instruments never
// does.
type Registry struct {
	mu    sync.Mutex
	cs    map[idKey]*Counter
	hs    map[idKey]*Histogram
	order []idKey // registration order, for stable family grouping
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cs: map[idKey]*Counter{}, hs: map[idKey]*Histogram{}}
}

// Counter returns the counter registered under name+labels, creating
// it on first use. Idempotent: every caller asking for the same series
// shares one counter. Returns nil (the free no-op instrument) on the
// nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	id := idKey{name: name, labels: labelString(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cs[id]; ok {
		return c
	}
	c := &Counter{id: id}
	r.cs[id] = c
	r.order = append(r.order, id)
	return c
}

// Histogram returns the histogram registered under name+labels with
// the given upper bounds (nil bounds selects DefaultSecondsBuckets),
// creating it on first use. Bounds are fixed at first registration.
// Returns nil on the nil registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefaultSecondsBuckets
	}
	id := idKey{name: name, labels: labelString(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hs[id]; ok {
		return h
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{id: id, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	r.hs[id] = h
	r.order = append(r.order, id)
	return h
}

// HistogramSnapshot is one histogram's state at Snapshot time.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // per-bucket (not cumulative); last is +Inf
	Sum    float64
	Count  uint64
}

// Snapshot is a point-in-time copy of every registered instrument,
// keyed by series name (name or name{labels}). Counters and histograms
// may be bumped concurrently; the snapshot is per-series consistent.
type Snapshot struct {
	Counters   map[string]uint64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the current values. Safe to call at any time,
// including on the nil registry (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}, Histograms: map[string]HistogramSnapshot{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, c := range r.cs {
		s.Counters[id.series()] = c.Value()
	}
	for id, h := range r.hs {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[id.series()] = hs
	}
	return s
}

// Reset zeroes every registered instrument (the instruments stay
// registered, so held pointers remain valid). No-op on nil.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.cs {
		c.v.Store(0)
	}
	for _, h := range r.hs {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.count.Store(0)
	}
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (v0.0.4): one TYPE line per metric family, then
// one line per series, families in registration order and series
// sorted within a family. Deterministic for a fixed set of values.
//
// The instrument maps are only touched under r.mu: each idKey is
// resolved to its *Counter/*Histogram while the lock is held, and
// rendering (which may block on a slow scraper's io.Writer) happens
// afterwards from those pointers. Concurrent lazy registration —
// e.g. the first POST /run registering interpreter counters while a
// /metrics scrape is in flight — therefore never races a map read
// against a map write.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type series struct {
		id idKey
		c  *Counter
		h  *Histogram
	}
	type family struct {
		name string
		kind string // "counter" | "histogram"
		ss   []series
	}
	r.mu.Lock()
	var fams []*family
	byName := map[string]*family{}
	for _, id := range r.order {
		sr := series{id: id}
		kind := "counter"
		if h, ok := r.hs[id]; ok {
			kind, sr.h = "histogram", h
		} else {
			sr.c = r.cs[id]
		}
		f := byName[id.name]
		if f == nil {
			f = &family{name: id.name, kind: kind}
			byName[id.name] = f
			fams = append(fams, f)
		}
		f.ss = append(f.ss, sr)
	}
	r.mu.Unlock()

	for _, f := range fams {
		sort.Slice(f.ss, func(i, j int) bool { return f.ss[i].id.labels < f.ss[j].id.labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, sr := range f.ss {
			id := sr.id
			if f.kind == "counter" {
				if _, err := fmt.Fprintf(w, "%s %d\n", id.series(), sr.c.Value()); err != nil {
					return err
				}
				continue
			}
			h := sr.h
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if err := writeBucket(w, id, formatFloat(b), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if err := writeBucket(w, id, "+Inf", cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", seriesSuffix(id, "_sum"), formatFloat(h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesSuffix(id, "_count"), h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeBucket(w io.Writer, id idKey, le string, cum uint64) error {
	labels := fmt.Sprintf("le=%q", le)
	if id.labels != "" {
		labels = id.labels + "," + labels
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", id.name, labels, cum)
	return err
}

func seriesSuffix(id idKey, suffix string) string {
	return idKey{name: id.name + suffix, labels: id.labels}.series()
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
