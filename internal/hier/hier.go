// Package hier models the class hierarchy and generic functions of a
// Mini-Cecil program: the multiple-inheritance class DAG, multi-method
// specificity and lookup, cones (a class plus all its descendants), and
// the ApplicableClasses computation that the PLDI'95 selective
// specialization algorithm is built on.
package hier

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"selspec/internal/bits"
	"selspec/internal/lang"
)

// Names of the built-in classes. They are real classes in the
// hierarchy, so user methods can dispatch on them ("method fib(n@Int)").
const (
	AnyName     = "Any"
	IntName     = "Int"
	BoolName    = "Bool"
	StringName  = "String"
	NilName     = "Nil"
	ArrayName   = "Array"
	ClosureName = "Closure"
)

var builtinNames = []string{AnyName, IntName, BoolName, StringName, NilName, ArrayName, ClosureName}

// Field is one instance field (slot) of a class, with the class that
// declared it, its optional declared type, and its optional default
// initializer expression. When DeclType is non-nil the runtime rejects
// stores of non-conforming values (including nil), which is what lets
// class hierarchy analysis trust the cone of the declared type for
// field reads.
type Field struct {
	Name     string
	TypeName string // "" = untyped
	DeclType *Class // resolved by Build/ResolveFieldTypes; nil = untyped
	Init     lang.Expr
	Owner    *Class
}

// Class is one class in the hierarchy.
type Class struct {
	ID      int
	Name    string
	Parents []*Class

	// Fields is the flattened slot layout: inherited fields first (in
	// parent declaration order, deduplicated), then own fields.
	Fields    []Field
	OwnFields []Field

	ancestors *bits.Set // self + transitive parents
	cone      *bits.Set // self + transitive children; valid after Freeze
}

func (c *Class) String() string { return c.Name }

// FieldIndex returns the slot index of the named field, or -1.
func (c *Class) FieldIndex(name string) int {
	for i, f := range c.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// IsSubclassOf reports whether c ⊑ d (reflexive).
func (c *Class) IsSubclassOf(d *Class) bool { return c.ancestors.Has(d.ID) }

// Ancestors returns the set of ancestor class IDs including c itself.
func (c *Class) Ancestors() *bits.Set { return c.ancestors }

// Cone returns the set of class IDs of c and all its descendants.
// Valid only after Hierarchy.Freeze.
func (c *Class) Cone() *bits.Set {
	if c.cone == nil {
		panic("hier: Cone called before Freeze")
	}
	return c.cone
}

// Method is one multi-method: an implementation attached to a generic
// function with one specializer class per formal position.
type Method struct {
	ID    int // global, dense; index into Hierarchy.Methods()
	GF    *GF
	Specs []*Class // specializer per position; Any for undispatched
	Decl  *lang.MethodDecl
}

// Name returns a human-readable identity like "do(@ListSet,@Any)".
func (m *Method) Name() string {
	var b strings.Builder
	b.WriteString(m.GF.Name)
	b.WriteByte('(')
	for i, s := range m.Specs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('@')
		b.WriteString(s.Name)
	}
	b.WriteByte(')')
	return b.String()
}

func (m *Method) String() string { return m.Name() }

// SpecializesOn reports whether this method dispatches on position i
// (i.e. its specializer there is not Any).
func (m *Method) SpecializesOn(i int, h *Hierarchy) bool { return m.Specs[i] != h.Any() }

// PointwiseLE reports whether m's specializer tuple is pointwise ⊑ n's
// (m at least as specific as n at every position).
func (m *Method) PointwiseLE(n *Method) bool {
	for i := range m.Specs {
		if !m.Specs[i].IsSubclassOf(n.Specs[i]) {
			return false
		}
	}
	return true
}

// Overrides reports whether m strictly overrides n: pointwise ⊑ and
// not identical tuples.
func (m *Method) Overrides(n *Method) bool {
	if m == n || !m.PointwiseLE(n) {
		return false
	}
	for i := range m.Specs {
		if m.Specs[i] != n.Specs[i] {
			return true
		}
	}
	return false
}

// GF is a generic function: all methods sharing a name and arity.
type GF struct {
	Name    string
	Arity   int
	Methods []*Method

	dispatched []bool   // positions where some method specializes
	cache      *gfCache // memoized lookups; installed by Freeze
}

// Key returns the map key "name/arity" identifying the GF.
func (g *GF) Key() string { return GFKey(g.Name, g.Arity) }

// GFKey builds the canonical generic-function key.
func GFKey(name string, arity int) string { return fmt.Sprintf("%s/%d", name, arity) }

// DispatchedPositions returns the argument positions this generic
// function actually dispatches on.
func (g *GF) DispatchedPositions() []int {
	var out []int
	for i, d := range g.dispatched {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// DispatchesOn reports whether position i is a dispatched position.
func (g *GF) DispatchesOn(i int) bool {
	return i < len(g.dispatched) && g.dispatched[i]
}

// DispatchError reports a failed lookup.
type DispatchError struct {
	GF        *GF
	Classes   []*Class
	Ambiguous bool // false = message not understood
}

func (e *DispatchError) Error() string {
	names := make([]string, len(e.Classes))
	for i, c := range e.Classes {
		names[i] = c.Name
	}
	what := "message not understood"
	if e.Ambiguous {
		what = "message ambiguous"
	}
	return fmt.Sprintf("%s: %s(%s)", what, e.GF.Name, strings.Join(names, ", "))
}

// Hierarchy is the full class hierarchy and method set of a program.
// Build one with New, add classes/methods, then Freeze before using
// cones, lookup, or ApplicableClasses.
type Hierarchy struct {
	classes []*Class
	byName  map[string]*Class
	gfs     map[string]*GF
	gfList  []*GF
	methods []*Method
	frozen  bool

	any        *Class
	allClasses *bits.Set

	// B caches the built-in class pointers. Runtime class computation
	// (interp.Value.Class) sits on the dispatch hot path of both
	// execution tiers, so it reads these fields instead of paying a
	// name-map lookup per argument per send.
	B Builtins

	// applicableMu guards the ApplicableClasses memo: compilations of
	// different configurations may share one frozen hierarchy across
	// goroutines (the parallel benchmark harness does).
	applicableMu    sync.Mutex
	applicableMemo  map[*Method]Tuple
	applicableExact map[*Method]bool

	// lookupMetrics, when set, observes the gfCache hit/miss behavior
	// of Lookup (see obs.go). Atomic so observation can be attached
	// while concurrent lookups are in flight.
	lookupMetrics atomic.Pointer[LookupMetrics]
}

// New returns a hierarchy pre-populated with the built-in classes.
func New() *Hierarchy {
	h := &Hierarchy{
		byName:         map[string]*Class{},
		gfs:            map[string]*GF{},
		applicableMemo: map[*Method]Tuple{},
	}
	for _, name := range builtinNames {
		var parents []*Class
		if name != AnyName {
			parents = []*Class{h.any}
		}
		c, err := h.AddClass(name, parents, nil)
		if err != nil {
			panic(err) // cannot happen: fixed names
		}
		if name == AnyName {
			h.any = c
		}
	}
	h.B = Builtins{
		Any:     h.byName[AnyName],
		Int:     h.byName[IntName],
		Bool:    h.byName[BoolName],
		String:  h.byName[StringName],
		Nil:     h.byName[NilName],
		Array:   h.byName[ArrayName],
		Closure: h.byName[ClosureName],
	}
	return h
}

// Builtins holds the built-in class pointers, resolved once at
// hierarchy construction.
type Builtins struct {
	Any, Int, Bool, String, Nil, Array, Closure *Class
}

// Any returns the root class.
func (h *Hierarchy) Any() *Class { return h.any }

// Builtin returns the named builtin class; panics on unknown names
// (programming error, not user error).
func (h *Hierarchy) Builtin(name string) *Class {
	c := h.byName[name]
	if c == nil {
		panic("hier: unknown builtin " + name)
	}
	return c
}

// Class looks up a class by name.
func (h *Hierarchy) Class(name string) (*Class, bool) {
	c, ok := h.byName[name]
	return c, ok
}

// Classes returns all classes, indexed by ID.
func (h *Hierarchy) Classes() []*Class { return h.classes }

// NumClasses returns the number of classes.
func (h *Hierarchy) NumClasses() int { return len(h.classes) }

// AllClasses returns the set of every class ID. Valid after Freeze.
func (h *Hierarchy) AllClasses() *bits.Set {
	if h.allClasses == nil {
		panic("hier: AllClasses called before Freeze")
	}
	return h.allClasses
}

// Methods returns all methods, indexed by ID.
func (h *Hierarchy) Methods() []*Method { return h.methods }

// GFs returns all generic functions in definition order.
func (h *Hierarchy) GFs() []*GF { return h.gfList }

// GF returns the generic function for name/arity, if any.
func (h *Hierarchy) GF(name string, arity int) (*GF, bool) {
	g, ok := h.gfs[GFKey(name, arity)]
	return g, ok
}

// Arities returns the sorted arities for which a generic function with
// the given name is defined (diagnostics: "f/1 undefined, but f/2
// exists").
func (h *Hierarchy) Arities(name string) []int {
	var out []int
	for _, g := range h.gfList {
		if g.Name == name {
			out = append(out, g.Arity)
		}
	}
	sort.Ints(out)
	return out
}

// AddClass declares a new class. Parents defaults to [Any] when empty.
// Field layouts are flattened immediately, so parents must be declared
// before children (the program loader guarantees this by processing
// declarations in order; forward references are a load error).
func (h *Hierarchy) AddClass(name string, parents []*Class, ownFields []Field) (*Class, error) {
	if h.frozen {
		return nil, fmt.Errorf("hier: AddClass(%s) after Freeze", name)
	}
	if _, dup := h.byName[name]; dup {
		return nil, fmt.Errorf("hier: class %s already defined", name)
	}
	if len(parents) == 0 && h.any != nil {
		parents = []*Class{h.any}
	}
	c := &Class{ID: len(h.classes), Name: name, Parents: parents}

	c.ancestors = bits.New(len(h.classes) + 1)
	c.ancestors.Add(c.ID)
	for _, p := range parents {
		c.ancestors.AddAll(p.ancestors)
	}

	// Flatten fields: inherited (dedup by name, first wins must be
	// unique) then own.
	seen := map[string]*Class{}
	for _, p := range parents {
		for _, f := range p.Fields {
			if prev, dup := seen[f.Name]; dup {
				if prev != f.Owner {
					return nil, fmt.Errorf("hier: class %s inherits conflicting field %q from %s and %s",
						name, f.Name, prev.Name, f.Owner.Name)
				}
				continue // diamond: same declaration, keep one copy
			}
			seen[f.Name] = f.Owner
			c.Fields = append(c.Fields, f)
		}
	}
	for _, f := range ownFields {
		if _, dup := seen[f.Name]; dup {
			return nil, fmt.Errorf("hier: class %s redeclares field %q", name, f.Name)
		}
		f.Owner = c
		seen[f.Name] = c
		c.Fields = append(c.Fields, f)
		c.OwnFields = append(c.OwnFields, f)
	}

	h.classes = append(h.classes, c)
	h.byName[name] = c
	return c, nil
}

// AddMethod declares a method on the generic function name/len(specs).
func (h *Hierarchy) AddMethod(name string, specs []*Class, decl *lang.MethodDecl) (*Method, error) {
	if h.frozen {
		return nil, fmt.Errorf("hier: AddMethod(%s) after Freeze", name)
	}
	key := GFKey(name, len(specs))
	g := h.gfs[key]
	if g == nil {
		g = &GF{Name: name, Arity: len(specs), dispatched: make([]bool, len(specs))}
		h.gfs[key] = g
		h.gfList = append(h.gfList, g)
	}
	for _, existing := range g.Methods {
		same := true
		for i := range specs {
			if existing.Specs[i] != specs[i] {
				same = false
				break
			}
		}
		if same {
			return nil, fmt.Errorf("hier: method %s already defined with the same specializers", existing.Name())
		}
	}
	m := &Method{ID: len(h.methods), GF: g, Specs: specs, Decl: decl}
	g.Methods = append(g.Methods, m)
	h.methods = append(h.methods, m)
	for i, s := range specs {
		if s != h.any {
			g.dispatched[i] = true
		}
	}
	return m, nil
}

// Freeze finalizes the hierarchy: computes cones and enables lookup
// and ApplicableClasses.
func (h *Hierarchy) Freeze() {
	if h.frozen {
		return
	}
	h.frozen = true
	h.allClasses = bits.New(len(h.classes))
	for _, c := range h.classes {
		h.allClasses.Add(c.ID)
		c.cone = bits.New(len(h.classes))
	}
	// cone(a) = {c : a ∈ ancestors(c)}.
	for _, c := range h.classes {
		c.ancestors.ForEach(func(aid int) bool {
			h.classes[aid].cone.Add(c.ID)
			return true
		})
	}
	for _, g := range h.gfList {
		g.cache = newGFCache(g.Arity, len(h.classes))
	}
}

// Frozen reports whether Freeze has run.
func (h *Hierarchy) Frozen() bool { return h.frozen }

// ConeSet returns the cone of a class as a set, and the full class set
// for Any (identical, but avoids the panic path pre-freeze misuse).
func (h *Hierarchy) ConeSet(c *Class) *bits.Set { return c.Cone() }

// Lookup performs multi-method dispatch for the given argument classes:
// it returns the unique most-specific applicable method, or a
// DispatchError (message not understood / ambiguous).
//
// After Freeze, Lookup is safe for concurrent use by multiple
// goroutines and allocation-free on cache hits (the gfCache keeps a
// dense per-class slot for single dispatch and a packed integer key
// for small arities).
func (h *Hierarchy) Lookup(g *GF, classes ...*Class) (*Method, *DispatchError) {
	if len(classes) != g.Arity {
		panic(fmt.Sprintf("hier: Lookup %s with %d classes", g.Key(), len(classes)))
	}
	cache := g.cache
	if cache == nil { // pre-Freeze: uncached
		return h.lookupSlow(g, classes)
	}
	lm := h.lookupMetrics.Load()
	if r, ok := cache.get(classes); ok {
		if lm != nil {
			lm.CacheHits.Inc()
		}
		return r.m, r.err
	}
	if lm != nil {
		lm.CacheMisses.Inc()
	}
	m, err := h.lookupSlow(g, classes)
	cache.put(classes, lookupResult{m: m, err: err})
	return m, err
}

func (h *Hierarchy) lookupSlow(g *GF, classes []*Class) (*Method, *DispatchError) {
	var applicable []*Method
outer:
	for _, m := range g.Methods {
		for i, s := range m.Specs {
			if !classes[i].IsSubclassOf(s) {
				continue outer
			}
		}
		applicable = append(applicable, m)
	}
	if len(applicable) == 0 {
		return nil, &DispatchError{GF: g, Classes: append([]*Class(nil), classes...)}
	}
	// Most specific: the unique applicable method pointwise ⊑ all others.
	best := applicable[0]
	for _, m := range applicable[1:] {
		if m.PointwiseLE(best) {
			best = m
		}
	}
	for _, m := range applicable {
		if !best.PointwiseLE(m) {
			return nil, &DispatchError{GF: g, Classes: append([]*Class(nil), classes...), Ambiguous: true}
		}
	}
	return best, nil
}

// SortedGFKeys returns GF keys in sorted order (deterministic output
// for reports and tests).
func (h *Hierarchy) SortedGFKeys() []string {
	keys := make([]string, 0, len(h.gfs))
	for k := range h.gfs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
