package hier

import (
	"fmt"

	"selspec/internal/lang"
)

// Build constructs a frozen Hierarchy from a parsed program. Class
// declarations must precede their use as parents or specializers
// (Mini-Cecil is declaration-ordered, like the paper's Cecil modules).
func Build(prog *lang.Program) (*Hierarchy, error) {
	h := New()
	for _, cd := range prog.Classes {
		var parents []*Class
		for _, pn := range cd.Parents {
			p, ok := h.byName[pn]
			if !ok {
				return nil, fmt.Errorf("%s: unknown parent class %q of %s", cd.Pos, pn, cd.Name)
			}
			parents = append(parents, p)
		}
		var fields []Field
		for _, fd := range cd.Fields {
			fields = append(fields, Field{Name: fd.Name, TypeName: fd.Type, Init: fd.Init})
		}
		if _, err := h.AddClass(cd.Name, parents, fields); err != nil {
			return nil, fmt.Errorf("%s: %v", cd.Pos, err)
		}
	}
	if err := h.ResolveFieldTypes(); err != nil {
		return nil, err
	}
	for _, md := range prog.Methods {
		specs := make([]*Class, len(md.Params))
		for i, p := range md.Params {
			if p.Spec == "" {
				specs[i] = h.any
				continue
			}
			c, ok := h.byName[p.Spec]
			if !ok {
				return nil, fmt.Errorf("%s: unknown specializer class %q in method %s", md.Pos, p.Spec, md.Name)
			}
			specs[i] = c
		}
		if _, err := h.AddMethod(md.Name, specs, md); err != nil {
			return nil, fmt.Errorf("%s: %v", md.Pos, err)
		}
	}
	h.Freeze()
	return h, nil
}

// ResolveFieldTypes resolves declared field type names to classes.
// Field declarations may reference classes declared later (including
// the declaring class itself), so this runs after all classes exist.
func (h *Hierarchy) ResolveFieldTypes() error {
	for _, c := range h.classes {
		for i := range c.Fields {
			f := &c.Fields[i]
			if f.TypeName == "" {
				continue
			}
			t, ok := h.byName[f.TypeName]
			if !ok {
				return fmt.Errorf("hier: field %s.%s has unknown declared type %q",
					f.Owner.Name, f.Name, f.TypeName)
			}
			f.DeclType = t
		}
	}
	return nil
}
