package hier

import (
	"strings"
	"testing"

	"selspec/internal/bits"
	"selspec/internal/lang"
)

// paperHierarchy builds the example of Figure 2 of the paper: ten
// classes A..J with
//
//	A → {B, C, D, G};  B → {E};  E → {H, I};  C → {F};  G → {J}
//
// method m() defined on A, E and G; m2() on A and B; m3(arg2) and
// m4(arg2) on A only (second argument unspecialized).
const paperSrc = `
class A
class B isa A
class C isa A
class D isa A
class G isa A
class E isa B
class F isa C
class H isa E
class I isa E
class J isa G

method m(self@A) { 1; }
method m(self@E) { 2; }
method m(self@G) { 3; }
method m2(self@A) { 4; }
method m2(self@B) { 5; }
method m3(self@A, arg2@A) { self.m4(arg2); }
method m4(self@A, arg2@A) { self.m(); arg2.m2(); }
`

func paperHier(t *testing.T) *Hierarchy {
	t.Helper()
	prog, err := lang.Parse(paperSrc)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func classSet(t *testing.T, h *Hierarchy, names ...string) *bits.Set {
	t.Helper()
	s := bits.New(h.NumClasses())
	for _, n := range names {
		c, ok := h.Class(n)
		if !ok {
			t.Fatalf("no class %s", n)
		}
		s.Add(c.ID)
	}
	return s
}

func mustClass(t *testing.T, h *Hierarchy, name string) *Class {
	t.Helper()
	c, ok := h.Class(name)
	if !ok {
		t.Fatalf("no class %s", name)
	}
	return c
}

// findMethod locates a method by GF name/arity and specializer names.
func findMethod(t *testing.T, h *Hierarchy, name string, arity int, specs ...string) *Method {
	t.Helper()
	g, ok := h.GF(name, arity)
	if !ok {
		t.Fatalf("no generic function %s/%d", name, arity)
	}
outer:
	for _, m := range g.Methods {
		for i, s := range specs {
			if m.Specs[i].Name != s {
				continue outer
			}
		}
		return m
	}
	t.Fatalf("no method %s with specs %v", name, specs)
	return nil
}

func TestBuiltinsPresent(t *testing.T) {
	h := New()
	h.Freeze()
	for _, n := range []string{"Any", "Int", "Bool", "String", "Nil", "Array", "Closure"} {
		c, ok := h.Class(n)
		if !ok {
			t.Fatalf("builtin %s missing", n)
		}
		if n != "Any" && !c.IsSubclassOf(h.Any()) {
			t.Errorf("%s not a subclass of Any", n)
		}
	}
	if h.Any().Cone().Len() != h.NumClasses() {
		t.Errorf("cone(Any) = %d classes, want %d", h.Any().Cone().Len(), h.NumClasses())
	}
}

func TestSubclassingAndCones(t *testing.T) {
	h := paperHier(t)
	a, b, e, hh := mustClass(t, h, "A"), mustClass(t, h, "B"), mustClass(t, h, "E"), mustClass(t, h, "H")

	if !hh.IsSubclassOf(e) || !hh.IsSubclassOf(b) || !hh.IsSubclassOf(a) || !hh.IsSubclassOf(h.Any()) {
		t.Error("H should be under E, B, A, Any")
	}
	if b.IsSubclassOf(e) {
		t.Error("B is not under E")
	}
	if !b.IsSubclassOf(b) {
		t.Error("subclassing must be reflexive")
	}

	if got, want := b.Cone(), classSet(t, h, "B", "E", "H", "I"); !got.Equal(want) {
		t.Errorf("cone(B) = %v, want %v", got, want)
	}
	if got, want := mustClass(t, h, "G").Cone(), classSet(t, h, "G", "J"); !got.Equal(want) {
		t.Errorf("cone(G) = %v, want %v", got, want)
	}
	wantA := classSet(t, h, "A", "B", "C", "D", "E", "F", "G", "H", "I", "J")
	if got := a.Cone(); !got.Equal(wantA) {
		t.Errorf("cone(A) = %v, want %v", got, wantA)
	}
}

func TestLookupSingleDispatch(t *testing.T) {
	h := paperHier(t)
	g, _ := h.GF("m", 1)

	cases := []struct{ class, wantSpec string }{
		{"A", "A"}, {"B", "A"}, {"C", "A"}, {"D", "A"}, {"F", "A"},
		{"E", "E"}, {"H", "E"}, {"I", "E"},
		{"G", "G"}, {"J", "G"},
	}
	for _, c := range cases {
		m, err := h.Lookup(g, mustClass(t, h, c.class))
		if err != nil {
			t.Fatalf("Lookup m(%s): %v", c.class, err)
		}
		if m.Specs[0].Name != c.wantSpec {
			t.Errorf("Lookup m(%s) = %s, want @%s", c.class, m.Name(), c.wantSpec)
		}
	}

	// A class outside cone(A) does not understand m.
	if _, err := h.Lookup(g, h.Builtin(IntName)); err == nil || err.Ambiguous {
		t.Errorf("m(Int) should be 'not understood', got %v", err)
	} else if !strings.Contains(err.Error(), "not understood") {
		t.Errorf("error text: %v", err)
	}
}

func TestLookupCacheConsistency(t *testing.T) {
	h := paperHier(t)
	g, _ := h.GF("m2", 1)
	e := mustClass(t, h, "E")
	m1, err1 := h.Lookup(g, e)
	m2, err2 := h.Lookup(g, e) // cached path
	if err1 != nil || err2 != nil || m1 != m2 {
		t.Fatalf("cache inconsistency: %v %v %v %v", m1, err1, m2, err2)
	}
	if m1.Specs[0].Name != "B" {
		t.Errorf("m2(E) = %s", m1.Name())
	}
}

func TestLookupMultiMethod(t *testing.T) {
	src := `
class Shape
class Circle isa Shape
class Square isa Shape
method collide(a@Shape, b@Shape) { 0; }
method collide(a@Circle, b@Circle) { 1; }
method collide(a@Circle, b@Square) { 2; }
`
	h, err := Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := h.GF("collide", 2)
	ci, sq, sh := mustClass(t, h, "Circle"), mustClass(t, h, "Square"), mustClass(t, h, "Shape")

	m, err2 := h.Lookup(g, ci, ci)
	if err2 != nil || m.Specs[1].Name != "Circle" {
		t.Errorf("collide(Circle,Circle) = %v, %v", m, err2)
	}
	m, err2 = h.Lookup(g, ci, sq)
	if err2 != nil || m.Specs[1].Name != "Square" {
		t.Errorf("collide(Circle,Square) = %v, %v", m, err2)
	}
	m, err2 = h.Lookup(g, sq, ci)
	if err2 != nil || m.Specs[0].Name != "Shape" {
		t.Errorf("collide(Square,Circle) = %v, %v", m, err2)
	}
	m, err2 = h.Lookup(g, sh, sh)
	if err2 != nil || m.Specs[0].Name != "Shape" {
		t.Errorf("collide(Shape,Shape) = %v, %v", m, err2)
	}
}

func TestLookupAmbiguous(t *testing.T) {
	src := `
class S
class C1 isa S
class C2 isa S
class D isa C1, C2
method f(x@C1) { 1; }
method f(x@C2) { 2; }
`
	h, err := Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := h.GF("f", 1)
	_, derr := h.Lookup(g, mustClass(t, h, "D"))
	if derr == nil || !derr.Ambiguous {
		t.Fatalf("f(D) should be ambiguous, got %v", derr)
	}
	// Cross-product ambiguity for multi-methods.
	src2 := `
class S
class C1 isa S
class C2 isa S
method g(x@C1, y@S) { 1; }
method g(x@S, y@C2) { 2; }
`
	h2, err := Build(lang.MustParse(src2))
	if err != nil {
		t.Fatal(err)
	}
	gg, _ := h2.GF("g", 2)
	_, derr = h2.Lookup(gg, mustClass(t, h2, "C1"), mustClass(t, h2, "C2"))
	if derr == nil || !derr.Ambiguous {
		t.Fatalf("g(C1,C2) should be ambiguous, got %v", derr)
	}
}

func TestApplicableClassesPaperExample(t *testing.T) {
	h := paperHier(t)

	// The paper: ApplicableClasses[E::m] = <{E,H,I}>.
	em := findMethod(t, h, "m", 1, "E")
	if got, want := h.ApplicableClasses(em)[0], classSet(t, h, "E", "H", "I"); !got.Equal(want) {
		t.Errorf("Applicable[E::m] = %v, want %v", got, want)
	}
	am := findMethod(t, h, "m", 1, "A")
	if got, want := h.ApplicableClasses(am)[0], classSet(t, h, "A", "B", "C", "D", "F"); !got.Equal(want) {
		t.Errorf("Applicable[A::m] = %v, want %v", got, want)
	}
	gm := findMethod(t, h, "m", 1, "G")
	if got, want := h.ApplicableClasses(gm)[0], classSet(t, h, "G", "J"); !got.Equal(want) {
		t.Errorf("Applicable[G::m] = %v, want %v", got, want)
	}
	// The paper: ApplicableClasses[B::m2] = <{B,E,H,I}>.
	bm2 := findMethod(t, h, "m2", 1, "B")
	if got, want := h.ApplicableClasses(bm2)[0], classSet(t, h, "B", "E", "H", "I"); !got.Equal(want) {
		t.Errorf("Applicable[B::m2] = %v, want %v", got, want)
	}
	am2 := findMethod(t, h, "m2", 1, "A")
	if got, want := h.ApplicableClasses(am2)[0], classSet(t, h, "A", "C", "D", "F", "G", "J"); !got.Equal(want) {
		t.Errorf("Applicable[A::m2] = %v, want %v", got, want)
	}

	// m4 is dispatched only on position 0 within cone(A); position 1 is
	// specialized on A with no overriders, so its applicable set at
	// position 1 is cone(A).
	m4 := findMethod(t, h, "m4", 2, "A", "A")
	app := h.ApplicableClasses(m4)
	coneA := mustClass(t, h, "A").Cone()
	if !app[0].Equal(coneA) || !app[1].Equal(coneA) {
		t.Errorf("Applicable[A::m4] = %v, want <cone(A), cone(A)>", app.String(h))
	}
}

func TestApplicableClassesMultiMethod(t *testing.T) {
	// BitSet-style example from the paper's §2: overlaps is specialized
	// on both arguments by the BitSet implementation.
	src := `
class Set
class ListSet isa Set
class HashSet isa Set
class BitSet isa Set
method overlaps(s1@Set, s2@Set) { 0; }
method overlaps(s1@BitSet, s2@BitSet) { 1; }
`
	h, err := Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	gen := findMethod(t, h, "overlaps", 2, "Set", "Set")
	app := h.ApplicableClasses(gen)
	allSets := classSet(t, h, "Set", "ListSet", "HashSet", "BitSet")
	// The generic method applies whenever either argument is not a
	// BitSet, so the per-position projection is the full Set cone on
	// both positions (e.g. overlaps(BitSet, ListSet) → generic).
	if !app[0].Equal(allSets) || !app[1].Equal(allSets) {
		t.Errorf("Applicable[Set::overlaps] = %v", app.String(h))
	}
	bs := findMethod(t, h, "overlaps", 2, "BitSet", "BitSet")
	appBS := h.ApplicableClasses(bs)
	onlyBS := classSet(t, h, "BitSet")
	if !appBS[0].Equal(onlyBS) || !appBS[1].Equal(onlyBS) {
		t.Errorf("Applicable[BitSet::overlaps] = %v", appBS.String(h))
	}
}

func TestApplicableContainsAllDispatchTuples(t *testing.T) {
	// Soundness: whenever lookup(c1,..,cn) = m, each ci must be in
	// ApplicableClasses[m][i]. Verified exhaustively on a gnarly
	// multi-method hierarchy.
	src := `
class S
class P isa S
class Q isa S
class R isa P, Q
class T isa R
method f(x@S, y@S) { 0; }
method f(x@P, y@S) { 1; }
method f(x@S, y@Q) { 2; }
method f(x@P, y@Q) { 3; }
method f(x@R, y@R) { 4; }
`
	h, err := Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := h.GF("f", 2)
	for _, c1 := range h.Classes() {
		for _, c2 := range h.Classes() {
			m, derr := h.Lookup(g, c1, c2)
			if derr != nil {
				continue
			}
			app := h.ApplicableClasses(m)
			if !app[0].Has(c1.ID) || !app[1].Has(c2.ID) {
				t.Errorf("lookup f(%s,%s)=%s but Applicable %v misses it",
					c1.Name, c2.Name, m.Name(), app.String(h))
			}
		}
	}
}

func TestApplicablePartitionSingleDispatch(t *testing.T) {
	// For singly-dispatched GFs the applicable sets of the methods
	// partition the set of understanding classes.
	h := paperHier(t)
	for _, gname := range []string{"m", "m2"} {
		g, _ := h.GF(gname, 1)
		union := bits.New(h.NumClasses())
		total := 0
		for _, m := range g.Methods {
			app := h.ApplicableClasses(m)[0]
			if app.Intersects(union) {
				t.Errorf("%s: applicable sets overlap", gname)
			}
			union.AddAll(app)
			total += app.Len()
		}
		if total != union.Len() {
			t.Errorf("%s: partition sizes disagree", gname)
		}
		if !union.Equal(mustClass(t, h, "A").Cone()) {
			t.Errorf("%s: union %v != cone(A)", gname, union)
		}
	}
}

func TestGeneralTupleContainsApplicable(t *testing.T) {
	h := paperHier(t)
	for _, m := range h.Methods() {
		app, gen := h.ApplicableClasses(m), h.GeneralTuple(m)
		if !app.SubsetOf(gen) {
			t.Errorf("%s: Applicable %v ⊄ General %v", m.Name(), app.String(h), gen.String(h))
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{`class A isa Missing`, "unknown parent"},
		{`class A class A`, "already defined"},
		{`method f(x@Nope) { 1; }`, "unknown specializer"},
		{`method f(x@Int) { 1; } method f(y@Int) { 2; }`, "already defined with the same specializers"},
		{`class A { field x; } class B isa A { field x; }`, "redeclares field"},
		{`class A { field x; } class B { field x; } class C isa A, B`, "conflicting field"},
	}
	for _, c := range cases {
		prog, err := lang.Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		_, err = Build(prog)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Build(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestDiamondFieldOK(t *testing.T) {
	src := `
class A { field x := 1; }
class B isa A
class C isa A
class D isa B, C
`
	h, err := Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	d := mustClass(t, h, "D")
	if len(d.Fields) != 1 || d.Fields[0].Name != "x" {
		t.Fatalf("diamond field layout: %+v", d.Fields)
	}
}

func TestFieldLayoutOrder(t *testing.T) {
	src := `
class A { field a1 := 1; field a2 := 2; }
class B isa A { field b1 := 3; }
`
	h, err := Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	b := mustClass(t, h, "B")
	var names []string
	for _, f := range b.Fields {
		names = append(names, f.Name)
	}
	if strings.Join(names, ",") != "a1,a2,b1" {
		t.Fatalf("field order = %v", names)
	}
	if b.FieldIndex("b1") != 2 || b.FieldIndex("zz") != -1 {
		t.Fatalf("FieldIndex wrong")
	}
}

func TestAddAfterFreezeRejected(t *testing.T) {
	h := New()
	h.Freeze()
	if _, err := h.AddClass("X", nil, nil); err == nil {
		t.Error("AddClass after Freeze should fail")
	}
	if _, err := h.AddMethod("f", []*Class{h.Any()}, nil); err == nil {
		t.Error("AddMethod after Freeze should fail")
	}
}

func TestDispatchedPositions(t *testing.T) {
	h := paperHier(t)
	g, _ := h.GF("m4", 2)
	pos := g.DispatchedPositions()
	if len(pos) != 2 {
		// both positions are specialized on A by m4's declaration
		t.Fatalf("m4 dispatched positions = %v", pos)
	}
	src := `method u(a, b) { 1; }`
	h2, err := Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := h2.GF("u", 2)
	if got := g2.DispatchedPositions(); len(got) != 0 {
		t.Fatalf("u dispatched positions = %v", got)
	}
}

func TestMethodNameAndOverrides(t *testing.T) {
	h := paperHier(t)
	am := findMethod(t, h, "m", 1, "A")
	em := findMethod(t, h, "m", 1, "E")
	if em.Name() != "m(@E)" {
		t.Errorf("Name = %q", em.Name())
	}
	if !em.Overrides(am) || am.Overrides(em) || am.Overrides(am) {
		t.Error("override relation wrong")
	}
}

func TestTupleOps(t *testing.T) {
	h := paperHier(t)
	t1 := NewTuple(classSet(t, h, "A", "B"), classSet(t, h, "C"))
	t2 := NewTuple(classSet(t, h, "B"), classSet(t, h, "C", "D"))
	inter := t1.Intersect(t2)
	if !inter[0].Equal(classSet(t, h, "B")) || !inter[1].Equal(classSet(t, h, "C")) {
		t.Errorf("Intersect = %v", inter.String(h))
	}
	if inter.HasEmpty() {
		t.Error("non-empty intersection flagged empty")
	}
	t3 := NewTuple(classSet(t, h, "D"), classSet(t, h, "C"))
	if !t1.Intersect(t3).HasEmpty() {
		t.Error("disjoint first components should give empty")
	}
	if !inter.SubsetOf(t1) || !inter.SubsetOf(t2) {
		t.Error("intersection not subset")
	}
	if !t1.Intersects(t2) || t1.Intersects(t3) {
		t.Error("Intersects wrong")
	}
	a, c := mustClass(t, h, "A"), mustClass(t, h, "C")
	if !t1.ContainsClasses([]*Class{a, c}) {
		t.Error("ContainsClasses wrong")
	}
	if t1.ContainsIDs([]int{c.ID, c.ID}) {
		t.Error("ContainsIDs wrong")
	}
	if t1.Size(100) != 2 {
		t.Errorf("Size = %d", t1.Size(100))
	}
	if s := t1.String(h); s != "<{A B}, {C}>" {
		t.Errorf("String = %q", s)
	}
	if t1.Hash() == t2.Hash() && t1.Equal(t2) {
		t.Error("unexpected equal")
	}
	cl := t1.Clone()
	cl[0].Add(mustClass(t, h, "J").ID)
	if t1[0].Has(mustClass(t, h, "J").ID) {
		t.Error("Clone aliases storage")
	}
}
