package hier

import (
	"strings"

	"selspec/internal/bits"
)

// Tuple is a tuple of class sets, one set per formal argument position —
// the paper's unit of specialization ("a method can be specialized for
// a tuple of class sets, one class set per formal argument").
type Tuple []*bits.Set

// NewTuple builds a tuple from per-position sets (aliases, not copies).
func NewTuple(sets ...*bits.Set) Tuple { return Tuple(sets) }

// Clone deep-copies a tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	for i, s := range t {
		c[i] = s.Clone()
	}
	return c
}

// Intersect returns the pairwise intersection t ∩ u (the paper's "set
// operations on tuples are defined to operate pairwise").
func (t Tuple) Intersect(u Tuple) Tuple {
	if len(t) != len(u) {
		panic("hier: Tuple.Intersect arity mismatch")
	}
	out := make(Tuple, len(t))
	for i := range t {
		out[i] = bits.Intersect(t[i], u[i])
	}
	return out
}

// HasEmpty reports whether any component is empty ("tuples containing
// empty class sets are dropped").
func (t Tuple) HasEmpty() bool {
	for _, s := range t {
		if s.Empty() {
			return true
		}
	}
	return false
}

// Equal reports component-wise set equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// SubsetOf reports component-wise ⊆.
func (t Tuple) SubsetOf(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].SubsetOf(u[i]) {
			return false
		}
	}
	return true
}

// Intersects reports whether every component pair overlaps; because
// tuples denote products of class sets, this is exactly "the two
// products share at least one concrete class tuple".
func (t Tuple) Intersects(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Intersects(u[i]) {
			return false
		}
	}
	return true
}

// ContainsClasses reports whether the concrete class tuple is inside
// the product denoted by t.
func (t Tuple) ContainsClasses(classes []*Class) bool {
	if len(classes) != len(t) {
		return false
	}
	for i, c := range classes {
		if !t[i].Has(c.ID) {
			return false
		}
	}
	return true
}

// ContainsIDs is ContainsClasses over raw class IDs.
func (t Tuple) ContainsIDs(ids []int) bool {
	if len(ids) != len(t) {
		return false
	}
	for i, id := range ids {
		if !t[i].Has(id) {
			return false
		}
	}
	return true
}

// Size returns the number of concrete class tuples in the product
// (capped at cap to avoid overflow; returns cap if exceeded).
func (t Tuple) Size(cap int) int {
	n := 1
	for _, s := range t {
		n *= s.Len()
		if n >= cap || n < 0 {
			return cap
		}
	}
	return n
}

// Hash returns a content hash suitable for dedup maps.
func (t Tuple) Hash() uint64 {
	var h uint64 = 14695981039346656037
	for _, s := range t {
		h ^= s.Hash()
		h *= 1099511628211
	}
	return h
}

// String renders the tuple with class names resolved via h, e.g.
// "<{ListSet HashSet}, {HashSet}>".
func (t Tuple) String(h *Hierarchy) string {
	var b strings.Builder
	b.WriteByte('<')
	for i, s := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('{')
		first := true
		s.ForEach(func(id int) bool {
			if !first {
				b.WriteByte(' ')
			}
			first = false
			b.WriteString(h.classes[id].Name)
			return true
		})
		b.WriteByte('}')
	}
	b.WriteByte('>')
	return b.String()
}
