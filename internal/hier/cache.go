package hier

import (
	mathbits "math/bits"
	"sync"
	"sync/atomic"
)

// lookupResult is one memoized Lookup outcome: the winning method, or
// the dispatch error when the tuple does not understand the message.
type lookupResult struct {
	m   *Method
	err *DispatchError
}

// cacheShardCount is the number of locked shards of a packed cache.
// Power of two; the shard index is the top bits of a multiplicative
// hash of the key, so adjacent keys spread across shards.
const cacheShardCount = 16

type cacheShard struct {
	mu sync.RWMutex
	m  map[uint64]lookupResult
}

// gfCache memoizes Lookup results for one generic function. It is
// created by Freeze and is safe for concurrent use by multiple
// goroutines. Three layouts, chosen by arity and hierarchy size:
//
//   - arity ≤ 1: a dense per-class slot array read with lock-free
//     atomic loads (one pointer load per hit, zero allocations);
//   - packed: every class ID fits in keyBits bits and the whole tuple
//     packs into one uint64, stored in sharded RWMutex-protected maps
//     (zero allocations on hits);
//   - wide: arities or hierarchies too large to pack fall back to a
//     sync.Map keyed by the full 32-bit IDs (hits allocate the key
//     string but never alias, unlike the old 16-bit truncating key).
type gfCache struct {
	keyBits uint
	dense   []atomic.Pointer[lookupResult]
	shards  *[cacheShardCount]cacheShard
	wide    *sync.Map
}

// newGFCache sizes a cache for a generic function of the given arity
// over a hierarchy of numClasses classes (IDs 0..numClasses-1).
func newGFCache(arity, numClasses int) *gfCache {
	c := &gfCache{keyBits: uint(mathbits.Len(uint(numClasses)))}
	if c.keyBits == 0 {
		c.keyBits = 1
	}
	switch {
	case arity <= 1:
		n := numClasses
		if n == 0 {
			n = 1
		}
		// Arity 0 uses the single slot at index 0.
		c.dense = make([]atomic.Pointer[lookupResult], n)
	case uint(arity)*c.keyBits <= 64:
		c.shards = &[cacheShardCount]cacheShard{}
	default:
		c.wide = &sync.Map{}
	}
	return c
}

// packedKey concatenates the class IDs into one uint64, keyBits bits
// per position. Collision-free: every ID is < 1<<keyBits.
func (c *gfCache) packedKey(classes []*Class) uint64 {
	var k uint64
	for _, cl := range classes {
		k = k<<c.keyBits | uint64(cl.ID)
	}
	return k
}

// wideKey serializes the full 32-bit class IDs (the fallback layout's
// map key). Unlike the pre-cache string key this never truncates IDs.
func wideKey(classes []*Class) string {
	b := make([]byte, 0, 4*len(classes))
	for _, cl := range classes {
		b = append(b, byte(cl.ID), byte(cl.ID>>8), byte(cl.ID>>16), byte(cl.ID>>24))
	}
	return string(b)
}

func shardOf(key uint64) uint64 {
	// Fibonacci hash; top bits select one of the 16 shards.
	return (key * 0x9E3779B97F4A7C15) >> 60
}

// get returns the cached result for the class tuple, if present.
func (c *gfCache) get(classes []*Class) (lookupResult, bool) {
	switch {
	case c.dense != nil:
		idx := 0
		if len(classes) == 1 {
			idx = classes[0].ID
		}
		if p := c.dense[idx].Load(); p != nil {
			return *p, true
		}
		return lookupResult{}, false
	case c.shards != nil:
		key := c.packedKey(classes)
		s := &c.shards[shardOf(key)]
		s.mu.RLock()
		r, ok := s.m[key]
		s.mu.RUnlock()
		return r, ok
	default:
		if v, ok := c.wide.Load(wideKey(classes)); ok {
			return v.(lookupResult), true
		}
		return lookupResult{}, false
	}
}

// put stores a result. Racing writers for the same tuple store the
// same deterministic result, so last-write-wins is harmless.
func (c *gfCache) put(classes []*Class, r lookupResult) {
	switch {
	case c.dense != nil:
		idx := 0
		if len(classes) == 1 {
			idx = classes[0].ID
		}
		c.dense[idx].Store(&r)
	case c.shards != nil:
		key := c.packedKey(classes)
		s := &c.shards[shardOf(key)]
		s.mu.Lock()
		if s.m == nil {
			s.m = map[uint64]lookupResult{}
		}
		s.m[key] = r
		s.mu.Unlock()
	default:
		c.wide.Store(wideKey(classes), r)
	}
}
