package hier

import "selspec/internal/bits"

// ApplicableClasses is the paper's ApplicableClasses[meth]: "the tuple
// of the set of classes for each formal argument for which the method
// meth could be invoked (excluding classes that bind to overriding
// methods)".
//
// For singly-dispatched generic functions this is straightforward. For
// multi-methods we compute the exact projection of the set of concrete
// dispatch tuples when the product of specializer cones over the
// dispatched positions is small enough (productLimit), and fall back to
// a conservative per-position approximation otherwise — the fallback
// under-approximates, which is safe here because the runtime always
// retains a fully general fallback version (see internal/opt).
//
// The result is memoized; Freeze must have been called.
func (h *Hierarchy) ApplicableClasses(m *Method) Tuple {
	t, _ := h.ApplicableClassesExact(m)
	return t
}

// ApplicableClassesExact is ApplicableClasses plus a flag reporting
// whether the result is exact (true) or the conservative per-position
// fallback (false). Clients that use the tuple as analysis truth for a
// method's general version must fall back to GeneralTuple when exact is
// false.
func (h *Hierarchy) ApplicableClassesExact(m *Method) (Tuple, bool) {
	if !h.frozen {
		panic("hier: ApplicableClasses before Freeze")
	}
	// Single-flight under the mutex: the computation is deterministic,
	// so holding the lock through it keeps the memo consistent for
	// concurrent compilations sharing this hierarchy.
	h.applicableMu.Lock()
	defer h.applicableMu.Unlock()
	if t, ok := h.applicableMemo[m]; ok {
		return t, h.applicableExact[m]
	}
	if h.applicableExact == nil {
		h.applicableExact = map[*Method]bool{}
	}
	// One shared enumeration answers ApplicableClasses for every method
	// of the generic function at once; fall back to the per-method path
	// when the GF's dispatch space is too large to enumerate.
	if h.batchApplicable(m.GF) {
		return h.applicableMemo[m], h.applicableExact[m]
	}
	t, exact := h.computeApplicable(m)
	h.applicableMemo[m] = t
	h.applicableExact[m] = exact
	return t, exact
}

// productLimit bounds the number of concrete class tuples enumerated by
// the exact ApplicableClasses computation.
const productLimit = 1 << 20

// enumBudget is the per-generic-function tuple-enumeration budget. It
// scales with hierarchy size but is bounded by productLimit: on
// mega-hierarchies (thousands of classes) exhaustive products over
// all-classes cones would cost minutes per compile, so large spaces
// take the conservative approximateApplicable path instead — which is
// safe (see ApplicableClassesExact callers) and O(methods²).
func (h *Hierarchy) enumBudget() int {
	b := 16 * h.NumClasses()
	if b < 1<<16 {
		b = 1 << 16
	}
	if b > productLimit {
		b = productLimit
	}
	return b
}

// batchApplicable computes exact ApplicableClasses for every method of
// g in a single enumeration of g's dispatch space (the product over
// dispatched positions of the union of all specializer cones — a
// superset of every method's own cone product, so per-method
// projections agree with what exactApplicable would compute). Fills the
// memo and returns true, or returns false untouched when the space
// exceeds the enumeration budget (caller then goes per-method).
// Called with applicableMu held.
func (h *Hierarchy) batchApplicable(g *GF) bool {
	dpos := g.DispatchedPositions()
	if len(dpos) == 0 || len(g.Methods) == 0 {
		return false
	}
	space := make([][]int, len(dpos))
	size := 1
	for i, p := range dpos {
		u := bits.New(h.NumClasses())
		for _, m := range g.Methods {
			u.AddAll(m.Specs[p].Cone())
		}
		space[i] = u.Elems()
		size *= len(space[i])
		if size == 0 || size > h.enumBudget() {
			return false
		}
	}

	proj := make(map[*Method][]*bits.Set, len(g.Methods))
	for _, m := range g.Methods {
		sets := make([]*bits.Set, len(dpos))
		for i := range sets {
			sets[i] = bits.New(h.NumClasses())
		}
		proj[m] = sets
	}

	classes := make([]*Class, g.Arity)
	for i := range classes {
		classes[i] = h.any // undispatched positions never matter
	}
	idx := make([]int, len(dpos))
	for {
		for i, p := range dpos {
			classes[p] = h.classes[space[i][idx[i]]]
		}
		// Bypass the lookup cache, as in exactApplicable.
		if won, err := h.lookupSlow(g, classes); err == nil {
			if sets := proj[won]; sets != nil {
				for i, p := range dpos {
					sets[i].Add(classes[p].ID)
				}
			}
		}
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(space[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}

	for _, m := range g.Methods {
		out := make(Tuple, g.Arity)
		for i, s := range m.Specs {
			out[i] = s.Cone().Clone()
		}
		for i, p := range dpos {
			out[p] = proj[m][i]
		}
		h.applicableMemo[m] = out
		h.applicableExact[m] = true
	}
	return true
}

func (h *Hierarchy) computeApplicable(m *Method) (Tuple, bool) {
	g := m.GF
	dpos := g.DispatchedPositions()

	// Start with cones of the specializers. Undispatched positions are
	// final: no method constrains them, so the cone (all classes when
	// the specializer is Any) is exact.
	out := make(Tuple, g.Arity)
	for i, s := range m.Specs {
		out[i] = s.Cone().Clone()
	}
	if len(dpos) == 0 {
		return out, true
	}

	// Exact product enumeration. For singly-dispatched generic
	// functions this costs one lookup per class in the specializer's
	// cone; it also correctly excludes classes whose lookup is
	// ambiguous (possible under multiple inheritance), which a
	// cone-minus-overriders shortcut would keep.
	size := 1
	for _, p := range dpos {
		size *= out[p].Len()
		if size > h.enumBudget() {
			return h.approximateApplicable(m, out, dpos), false
		}
	}
	return h.exactApplicable(m, out, dpos), true
}

// exactApplicable enumerates every concrete class tuple in the product
// of the specializer cones over the dispatched positions, asks Lookup
// which method wins, and projects the winning tuples of m onto each
// position.
func (h *Hierarchy) exactApplicable(m *Method, base Tuple, dpos []int) Tuple {
	g := m.GF
	proj := make([]*bits.Set, len(dpos))
	for i := range dpos {
		proj[i] = bits.New(h.NumClasses())
	}
	elems := make([][]int, len(dpos))
	for i, p := range dpos {
		elems[i] = base[p].Elems()
	}

	classes := make([]*Class, g.Arity)
	for i := range classes {
		classes[i] = h.any // undispatched positions never matter
	}

	idx := make([]int, len(dpos))
	for {
		for i, p := range dpos {
			classes[p] = h.classes[elems[i][idx[i]]]
		}
		// Bypass the lookup cache: enumeration may visit up to
		// productLimit tuples and caching them all would waste memory.
		if won, err := h.lookupSlow(g, classes); err == nil && won == m {
			for i, p := range dpos {
				proj[i].Add(classes[p].ID)
			}
		}
		// Advance the odometer.
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(elems[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}

	out := base.Clone()
	for i, p := range dpos {
		out[p] = proj[i]
	}
	return out
}

// approximateApplicable is the conservative per-position fallback for
// very large products: position p keeps the classes of cone(spec_p(m))
// not covered by any strictly overriding method at p. It may
// under-approximate the true projection for partially-overlapping
// multi-methods, which only makes specializations narrower (safe).
func (h *Hierarchy) approximateApplicable(m *Method, base Tuple, dpos []int) Tuple {
	out := base.Clone()
	for _, p := range dpos {
		for _, n := range m.GF.Methods {
			if n.Overrides(m) && n.Specs[p] != m.Specs[p] {
				out[p].RemoveAll(n.Specs[p].Cone())
			}
		}
	}
	return out
}

// GeneralTuple returns the always-safe tuple for a method: the cones of
// its specializers. Every invocation that dispatches to m lies inside
// this product, so a version compiled against it is valid for any
// caller. (ApplicableClasses ⊆ GeneralTuple componentwise.)
func (h *Hierarchy) GeneralTuple(m *Method) Tuple {
	out := make(Tuple, len(m.Specs))
	for i, s := range m.Specs {
		out[i] = s.Cone().Clone()
	}
	return out
}
