// Scale benchmarks for the ApplicableClasses closure over generated
// mega-hierarchies (package hier_test so it can import internal/gen;
// the gen->hier edge only exists in test code, so there is no cycle).
//
// Run with:
//
//	go test ./internal/hier -bench ApplicableClasses -benchtime 3x
//
// Each iteration rebuilds the hierarchy outside the timer so the
// memoized closure is computed cold every time — the number being
// measured is the per-program analysis cost the specializer pays, not
// a cache hit.
package hier_test

import (
	"sync"
	"testing"

	"selspec/internal/gen"
	"selspec/internal/hier"
	"selspec/internal/lang"
)

var (
	scaleMu    sync.Mutex
	scaleProgs = map[int]*lang.Program{}
)

// scaleProgram parses (once per size) a generated program with the
// given class count and 4x methods, at depth 32+.
func scaleProgram(tb testing.TB, classes int) *lang.Program {
	tb.Helper()
	scaleMu.Lock()
	defer scaleMu.Unlock()
	if p, ok := scaleProgs[classes]; ok {
		return p
	}
	src := gen.New(gen.Config{Seed: 7, Classes: classes, Methods: 4 * classes, Depth: 32}).Source()
	p, err := lang.Parse(src)
	if err != nil {
		tb.Fatalf("parse generated program: %v", err)
	}
	scaleProgs[classes] = p
	return p
}

func benchApplicable(b *testing.B, classes int) {
	prog := scaleProgram(b, classes)
	methods := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := hier.Build(prog)
		if err != nil {
			b.Fatal(err)
		}
		h.Freeze()
		b.StartTimer()
		methods = 0
		for _, gf := range h.GFs() {
			for _, m := range gf.Methods {
				h.ApplicableClasses(m)
				methods++
			}
		}
	}
	b.ReportMetric(float64(methods), "methods")
}

func BenchmarkApplicableClasses1k(b *testing.B)  { benchApplicable(b, 1_000) }
func BenchmarkApplicableClasses10k(b *testing.B) { benchApplicable(b, 10_000) }

// BenchmarkHierBuild1k isolates hierarchy construction (topological
// numbering, cone bitsets, GF indexing) from the closure computation.
func BenchmarkHierBuild1k(b *testing.B) {
	prog := scaleProgram(b, 1_000)
	for i := 0; i < b.N; i++ {
		h, err := hier.Build(prog)
		if err != nil {
			b.Fatal(err)
		}
		h.Freeze()
	}
}
