package hier

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"selspec/internal/bits"
	"selspec/internal/lang"
)

// randomHierarchy builds a random class DAG with random multi-methods
// over one generic function.
func randomHierarchy(t *testing.T, rng *rand.Rand) (*Hierarchy, *GF) {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		var b strings.Builder
		n := 4 + rng.Intn(5)
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "class R%d", i)
			if i > 0 && rng.Intn(4) > 0 {
				fmt.Fprintf(&b, " isa R%d", rng.Intn(i))
				if rng.Intn(4) == 0 {
					if p2 := rng.Intn(i); true {
						fmt.Fprintf(&b, ", R%d", p2)
					}
				}
			}
			b.WriteString("\n")
		}
		arity := 1 + rng.Intn(2)
		nm := 1 + rng.Intn(5)
		seen := map[string]bool{}
		count := 0
		for k := 0; k < nm; k++ {
			specs := make([]string, arity)
			names := make([]string, arity)
			for p := range specs {
				specs[p] = fmt.Sprintf("R%d", rng.Intn(n))
				names[p] = fmt.Sprintf("x%d@%s", p, specs[p])
			}
			key := strings.Join(specs, "/")
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintf(&b, "method f(%s) { %d; }\n", strings.Join(names, ", "), k)
			count++
		}
		if count == 0 {
			continue
		}
		prog, err := lang.Parse(b.String())
		if err != nil {
			t.Fatalf("generator emitted unparseable source: %v\n%s", err, b.String())
		}
		h, err := Build(prog)
		if err != nil {
			continue // duplicate parents etc. — try again
		}
		g, ok := h.GF("f", arity)
		if !ok {
			continue
		}
		return h, g
	}
	t.Skip("could not generate a hierarchy after 20 attempts")
	return nil, nil
}

// TestRandomApplicableClassesInvariants checks, over random
// hierarchies, the two key properties the specializer relies on:
//
//  1. soundness: lookup(c⃗)=m  ⇒  ∀i: c_i ∈ ApplicableClasses[m][i];
//  2. tightness (exact mode): every class in ApplicableClasses[m][i]
//     appears in at least one winning tuple of m.
func TestRandomApplicableClassesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	for round := 0; round < 60; round++ {
		h, g := randomHierarchy(t, rng)
		arity := g.Arity

		// Enumerate every concrete tuple and record winners.
		winners := map[*Method][][]*Class{}
		classes := make([]*Class, arity)
		var rec func(pos int)
		rec = func(pos int) {
			if pos == arity {
				if m, err := h.Lookup(g, classes...); err == nil {
					cp := make([]*Class, arity)
					copy(cp, classes)
					winners[m] = append(winners[m], cp)
				}
				return
			}
			for _, c := range h.Classes() {
				classes[pos] = c
				rec(pos + 1)
			}
		}
		rec(0)

		for _, m := range g.Methods {
			app, exact := h.ApplicableClassesExact(m)
			// 1. Soundness.
			for _, win := range winners[m] {
				for i, c := range win {
					if !app[i].Has(c.ID) {
						t.Fatalf("round %d: lookup %v wins %s but Applicable %v misses pos %d",
							round, win, m.Name(), app.String(h), i)
					}
				}
			}
			if !exact {
				continue
			}
			// 2. Tightness on dispatched positions.
			for _, p := range g.DispatchedPositions() {
				covered := bits.New(h.NumClasses())
				for _, win := range winners[m] {
					covered.Add(win[p].ID)
				}
				if !app[p].SubsetOf(covered) {
					t.Fatalf("round %d: Applicable[%s][%d] = %v has classes never winning (covered %v)",
						round, m.Name(), p, app[p], covered)
				}
			}
		}
	}
}

// TestRandomLookupMostSpecific: whenever lookup succeeds, the winner is
// applicable and pointwise ⊑ every other applicable method.
func TestRandomLookupMostSpecific(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for round := 0; round < 60; round++ {
		h, g := randomHierarchy(t, rng)
		classes := make([]*Class, g.Arity)
		var rec func(pos int)
		rec = func(pos int) {
			if pos == g.Arity {
				m, err := h.Lookup(g, classes...)
				var applicable []*Method
			outer:
				for _, cand := range g.Methods {
					for i, s := range cand.Specs {
						if !classes[i].IsSubclassOf(s) {
							continue outer
						}
					}
					applicable = append(applicable, cand)
				}
				if err != nil {
					if !err.Ambiguous && len(applicable) != 0 {
						t.Fatalf("round %d: MNU with %d applicable methods", round, len(applicable))
					}
					if err.Ambiguous && len(applicable) < 2 {
						t.Fatalf("round %d: ambiguity with %d applicable", round, len(applicable))
					}
					return
				}
				for _, o := range applicable {
					if !m.PointwiseLE(o) {
						t.Fatalf("round %d: winner %s not ⊑ applicable %s", round, m.Name(), o.Name())
					}
				}
				return
			}
			for _, c := range h.Classes() {
				classes[pos] = c
				rec(pos + 1)
			}
		}
		rec(0)
	}
}
