package hier

import (
	"strings"
	"testing"
)

// Direct-API construction (the path programmatic clients use, as
// opposed to Build over an AST).
func TestDirectAPIConstruction(t *testing.T) {
	h := New()
	a, err := h.AddClass("A", nil, []Field{{Name: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.AddClass("B", []*Class{a}, []Field{{Name: "y", TypeName: "A"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddMethod("f", []*Class{a}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddMethod("f", []*Class{b}, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.ResolveFieldTypes(); err != nil {
		t.Fatal(err)
	}
	h.Freeze()
	if !h.Frozen() {
		t.Fatal("not frozen")
	}
	if b.Fields[1].DeclType != a {
		t.Fatal("field type not resolved")
	}
	g, ok := h.GF("f", 1)
	if !ok || len(g.Methods) != 2 {
		t.Fatalf("GF f/1: %v %d", ok, len(g.Methods))
	}
	m, derr := h.Lookup(g, b)
	if derr != nil || m.Specs[0] != b {
		t.Fatalf("Lookup(B) = %v, %v", m, derr)
	}
	if h.ConeSet(a).Len() != 2 {
		t.Fatalf("cone(A) = %v", h.ConeSet(a))
	}
	keys := h.SortedGFKeys()
	if len(keys) != 1 || keys[0] != "f/1" {
		t.Fatalf("SortedGFKeys = %v", keys)
	}
}

func TestResolveFieldTypesUnknown(t *testing.T) {
	h := New()
	if _, err := h.AddClass("A", nil, []Field{{Name: "x", TypeName: "Missing"}}); err != nil {
		t.Fatal(err)
	}
	if err := h.ResolveFieldTypes(); err == nil || !strings.Contains(err.Error(), "unknown declared type") {
		t.Fatalf("err = %v", err)
	}
}

func TestPreFreezePanics(t *testing.T) {
	h := New()
	a, _ := h.AddClass("A", nil, nil)

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic before Freeze", name)
			}
		}()
		f()
	}
	expectPanic("Cone", func() { _ = a.Cone() })
	expectPanic("AllClasses", func() { _ = h.AllClasses() })
	m, _ := h.AddMethod("f", []*Class{a}, nil)
	expectPanic("ApplicableClasses", func() { _ = h.ApplicableClasses(m) })
	expectPanic("Builtin unknown", func() { _ = h.Builtin("NoSuchBuiltin") })
}

func TestLookupArityMismatchPanics(t *testing.T) {
	h := New()
	a, _ := h.AddClass("A", nil, nil)
	h.AddMethod("f", []*Class{a, a}, nil)
	h.Freeze()
	g, _ := h.GF("f", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup with wrong arity did not panic")
		}
	}()
	h.Lookup(g, a)
}

func TestSpecializesOn(t *testing.T) {
	h := New()
	a, _ := h.AddClass("A", nil, nil)
	m, _ := h.AddMethod("f", []*Class{a, h.Any()}, nil)
	h.Freeze()
	if !m.SpecializesOn(0, h) || m.SpecializesOn(1, h) {
		t.Fatal("SpecializesOn wrong")
	}
	g := m.GF
	if !g.DispatchesOn(0) || g.DispatchesOn(1) || g.DispatchesOn(99) {
		t.Fatal("DispatchesOn wrong")
	}
	if g.Key() != "f/2" || GFKey("f", 2) != "f/2" {
		t.Fatal("keys wrong")
	}
}
