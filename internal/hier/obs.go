package hier

import (
	"selspec/internal/obs"
)

// LookupMetrics observes the memoized dispatch cache behind
// Hierarchy.Lookup: how many lookups were answered by a gfCache hit
// versus falling through to the full multi-method lookup. The counters
// are shared across every GF of the hierarchy.
type LookupMetrics struct {
	CacheHits   *obs.Counter
	CacheMisses *obs.Counter
}

// NewLookupMetrics registers the lookup-cache counters. Returns nil on
// the nil registry — the disabled mode, costing Lookup one atomic
// pointer load and a nil check.
func NewLookupMetrics(r *obs.Registry) *LookupMetrics {
	if r == nil {
		return nil
	}
	return &LookupMetrics{
		CacheHits:   r.Counter("selspec_dispatch_gf_cache_hits_total"),
		CacheMisses: r.Counter("selspec_dispatch_gf_cache_misses_total"),
	}
}

// SetLookupMetrics attaches (or, with nil, detaches) cache observation.
// Safe to call at any time, including while other goroutines Lookup
// concurrently: the pointer swap is atomic and the counters themselves
// are atomic.
func (h *Hierarchy) SetLookupMetrics(m *LookupMetrics) {
	h.lookupMetrics.Store(m)
}
