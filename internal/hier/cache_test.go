package hier

import (
	"sync"
	"testing"

	"selspec/internal/lang"
)

const cacheHierSrc = `
class A
class B isa A
class C isa A
class D isa B
method m(x@A) { 1; }
method m(x@B) { 2; }
method mm(x@A, y@A) { 1; }
method mm(x@B, y@B) { 2; }
method mm(x@A, y@C) { 3; }
method mm(x@B, y@C) { 4; }
`

func cacheHier(tb testing.TB) (*Hierarchy, []*Class) {
	tb.Helper()
	h, err := Build(lang.MustParse(cacheHierSrc))
	if err != nil {
		tb.Fatal(err)
	}
	var cs []*Class
	for _, n := range []string{"A", "B", "C", "D"} {
		c, ok := h.Class(n)
		if !ok {
			tb.Fatalf("no class %s", n)
		}
		cs = append(cs, c)
	}
	return h, cs
}

// TestCacheFullClassIDs pins the fix for the old string-key truncation:
// classKey kept only 16 bits of Class.ID, so in hierarchies beyond
// 65 535 classes the tuples (1, x) and (65537, x) silently aliased one
// cache entry. The integer-keyed cache must keep full IDs in every
// layout. Classes are fabricated directly (building 65 000+ real
// classes would allocate gigabytes of ancestor bitsets).
func TestCacheFullClassIDs(t *testing.T) {
	const numClasses = 70_000
	low := &Class{ID: 1}
	high := &Class{ID: 65_537} // 1<<16 + 1: truncated to 1 by the old key
	other := &Class{ID: 2}
	mLow := &Method{ID: 1}
	mHigh := &Method{ID: 2}

	t.Run("dense", func(t *testing.T) {
		c := newGFCache(1, numClasses)
		if c.dense == nil {
			t.Fatal("arity 1 should use the dense layout")
		}
		c.put([]*Class{low}, lookupResult{m: mLow})
		c.put([]*Class{high}, lookupResult{m: mHigh})
		if r, ok := c.get([]*Class{low}); !ok || r.m != mLow {
			t.Fatalf("dense get(1) = %v, %t", r.m, ok)
		}
		if r, ok := c.get([]*Class{high}); !ok || r.m != mHigh {
			t.Fatalf("dense get(65537) = %v, %t", r.m, ok)
		}
	})

	t.Run("packed", func(t *testing.T) {
		c := newGFCache(2, numClasses)
		if c.shards == nil {
			t.Fatal("arity 2 over 70k classes should pack into a uint64")
		}
		c.put([]*Class{low, other}, lookupResult{m: mLow})
		c.put([]*Class{high, other}, lookupResult{m: mHigh})
		if r, ok := c.get([]*Class{low, other}); !ok || r.m != mLow {
			t.Fatalf("packed get(1,2) = %v, %t", r.m, ok)
		}
		if r, ok := c.get([]*Class{high, other}); !ok || r.m != mHigh {
			t.Fatalf("packed get(65537,2) = %v, %t", r.m, ok)
		}
	})

	t.Run("wide", func(t *testing.T) {
		c := newGFCache(6, numClasses) // 6×17 bits > 64: wide fallback
		if c.wide == nil {
			t.Fatal("arity 6 over 70k classes should use the wide layout")
		}
		tup := func(first *Class) []*Class {
			return []*Class{first, other, other, other, other, other}
		}
		c.put(tup(low), lookupResult{m: mLow})
		c.put(tup(high), lookupResult{m: mHigh})
		if r, ok := c.get(tup(low)); !ok || r.m != mLow {
			t.Fatalf("wide get(1,...) = %v, %t", r.m, ok)
		}
		if r, ok := c.get(tup(high)); !ok || r.m != mHigh {
			t.Fatalf("wide get(65537,...) = %v, %t", r.m, ok)
		}
	})
}

// TestLookupCacheHitAllocFree: after warmup, Lookup must not allocate
// on cache hits (the dispatch hot path of the interpreter and of the
// unique-target enumeration in opt).
func TestLookupCacheHitAllocFree(t *testing.T) {
	h, cs := cacheHier(t)
	g1, _ := h.GF("m", 1)
	g2, _ := h.GF("mm", 2)

	args1 := []*Class{cs[3]}
	args2 := []*Class{cs[1], cs[2]}
	h.Lookup(g1, args1...)
	h.Lookup(g2, args2...)

	if n := testing.AllocsPerRun(100, func() {
		h.Lookup(g1, args1...)
	}); n != 0 {
		t.Errorf("arity-1 Lookup hit allocates %v objects/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		h.Lookup(g2, args2...)
	}); n != 0 {
		t.Errorf("arity-2 Lookup hit allocates %v objects/op", n)
	}
}

// TestConcurrentLookup hammers one frozen hierarchy from many
// goroutines, mixing cold and warm tuples, and checks every result
// against the serial answers. Run under -race this is the lookup half
// of the harness-concurrency guarantee.
func TestConcurrentLookup(t *testing.T) {
	h, cs := cacheHier(t)
	g1, _ := h.GF("m", 1)
	g2, _ := h.GF("mm", 2)

	// Serial reference answers from a second, identical hierarchy (so
	// the concurrent run starts with cold caches).
	href, _ := Build(lang.MustParse(cacheHierSrc))
	var refs []*Class
	for _, c := range cs {
		rc, _ := href.Class(c.Name)
		refs = append(refs, rc)
	}
	type want struct {
		name string
		amb  bool
		err  bool
	}
	wantM := make([]want, len(cs))
	wantMM := make([]want, len(cs)*len(cs))
	for i, c := range refs {
		if m, err := href.Lookup(href.gfs[GFKey("m", 1)], c); err != nil {
			wantM[i] = want{err: true, amb: err.Ambiguous}
		} else {
			wantM[i] = want{name: m.Name()}
		}
		for j, d := range refs {
			if m, err := href.Lookup(href.gfs[GFKey("mm", 2)], c, d); err != nil {
				wantMM[i*len(cs)+j] = want{err: true, amb: err.Ambiguous}
			} else {
				wantMM[i*len(cs)+j] = want{name: m.Name()}
			}
		}
	}

	const goroutines = 8
	const rounds = 300
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			args := make([]*Class, 2)
			for r := 0; r < rounds; r++ {
				i := (seed + r) % len(cs)
				j := (seed*3 + r) % len(cs)
				args[0], args[1] = cs[i], cs[j]
				m, err := h.Lookup(g2, args...)
				w2 := wantMM[i*len(cs)+j]
				if (err != nil) != w2.err || (err == nil && m.Name() != w2.name) ||
					(err != nil && err.Ambiguous != w2.amb) {
					errc <- &DispatchError{GF: g2, Classes: []*Class{cs[i], cs[j]}}
					return
				}
				m1, err1 := h.Lookup(g1, args[:1]...)
				w1 := wantM[i]
				if (err1 != nil) != w1.err || (err1 == nil && m1.Name() != w1.name) {
					errc <- &DispatchError{GF: g1, Classes: []*Class{cs[i]}}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent lookup diverged from serial answer: %v", err)
	}
}

// BenchmarkHierLookup measures cache-hit dispatch; run with -benchmem,
// hits must report 0 allocs/op.
func BenchmarkHierLookup(b *testing.B) {
	h, cs := cacheHier(b)

	b.Run("arity1", func(b *testing.B) {
		g, _ := h.GF("m", 1)
		args := make([]*Class, 1)
		for _, c := range cs {
			args[0] = c
			h.Lookup(g, args...)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args[0] = cs[i%len(cs)]
			h.Lookup(g, args...)
		}
	})

	b.Run("arity2", func(b *testing.B) {
		g, _ := h.GF("mm", 2)
		args := make([]*Class, 2)
		for _, c1 := range cs {
			for _, c2 := range cs {
				args[0], args[1] = c1, c2
				h.Lookup(g, args...)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args[0] = cs[i%len(cs)]
			args[1] = cs[(i/2)%len(cs)]
			h.Lookup(g, args...)
		}
	})
}
