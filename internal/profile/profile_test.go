package profile

import (
	"fmt"
	"strings"
	"testing"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
)

const src = `
class A
class B isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method f(x@A) { x.m(); x.m(); }
method main() { f(new A()); f(new B()); }
`

func load(t *testing.T) *ir.Program {
	t.Helper()
	p, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func methods(t *testing.T, p *ir.Program) (mA, mB, f *hier.Method) {
	t.Helper()
	for _, m := range p.H.Methods() {
		switch {
		case m.GF.Name == "m" && m.Specs[0].Name == "A":
			mA = m
		case m.GF.Name == "m" && m.Specs[0].Name == "B":
			mB = m
		case m.GF.Name == "f":
			f = m
		}
	}
	return
}

func TestRecordAndQuery(t *testing.T) {
	p := load(t)
	mA, mB, f := methods(t, p)
	cg := NewCallGraph(p)
	s0, s1 := p.Bodies[f].Sites[0], p.Bodies[f].Sites[1]

	cg.Record(s0, mA, 5)
	cg.Record(s0, mA, 2) // accumulates
	cg.Record(s0, mB, 3)
	cg.Record(s1, mB, 7)

	if cg.Len() != 3 {
		t.Fatalf("Len = %d", cg.Len())
	}
	if cg.TotalWeight() != 17 {
		t.Fatalf("TotalWeight = %d", cg.TotalWeight())
	}
	arcs := cg.Arcs()
	if len(arcs) != 3 || arcs[0].Weight != 7 && arcs[0].Weight != 5+2 {
		t.Fatalf("arcs = %v", arcs)
	}
	// Deterministic order: by (site, callee).
	if arcs[0].Site != s0 || arcs[0].Callee != mA || arcs[0].Weight != 7 {
		t.Errorf("first arc = %v", arcs[0])
	}

	out := cg.OutArcs(f)
	if len(out) != 3 {
		t.Errorf("OutArcs(f) = %d", len(out))
	}
	in := cg.InArcs(mB)
	if len(in) != 2 {
		t.Errorf("InArcs(mB) = %d", len(in))
	}
	site := cg.SiteArcs(s0)
	if len(site) != 2 {
		t.Errorf("SiteArcs(s0) = %d", len(site))
	}
	if got := arcs[0].Caller(); got != f {
		t.Errorf("Caller = %v", got)
	}
	if s := arcs[0].String(); !strings.Contains(s, "f(@A)") || !strings.Contains(s, "m(@A)") {
		t.Errorf("String = %q", s)
	}
}

func TestMerge(t *testing.T) {
	p := load(t)
	mA, _, f := methods(t, p)
	s0 := p.Bodies[f].Sites[0]

	a := NewCallGraph(p)
	b := NewCallGraph(p)
	a.Record(s0, mA, 5)
	b.Record(s0, mA, 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.TotalWeight() != 12 {
		t.Fatalf("merged weight = %d", a.TotalWeight())
	}

	other := load(t)
	c := NewCallGraph(other)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging call graphs across programs should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := load(t)
	mA, mB, f := methods(t, p)
	cg := NewCallGraph(p)
	cg.Record(p.Bodies[f].Sites[0], mA, 1234)
	cg.Record(p.Bodies[f].Sites[1], mB, 999)

	data, err := cg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back := NewCallGraph(p)
	if err := back.UnmarshalInto(data); err != nil {
		t.Fatal(err)
	}
	if back.Len() != cg.Len() || back.TotalWeight() != cg.TotalWeight() {
		t.Fatalf("round trip lost arcs: %d/%d", back.Len(), back.TotalWeight())
	}
	a1, a2 := cg.Arcs(), back.Arcs()
	for i := range a1 {
		if a1[i].Site != a2[i].Site || a1[i].Callee != a2[i].Callee || a1[i].Weight != a2[i].Weight {
			t.Errorf("arc %d differs: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	p := load(t)
	cg := NewCallGraph(p)
	cases := []struct{ data, sub string }{
		{`{bad json`, "profile:"},
		{`{"version": 99, "arcs": []}`, "unsupported format version"},
		{`{"version": 1, "arcs": [{"site": 999, "callee": 0, "weight": 1}]}`, "site 999 out of range"},
		{`{"version": 1, "arcs": [{"site": 0, "callee": 999, "weight": 1}]}`, "method 999 out of range"},
		{`{"version": 1, "arcs": [{"site": 0, "callee": 0, "weight": -5}]}`, "negative weight"},
		{`{"version": 1, "arcs": [{"site": 0, "callee": 0, "weight": 9223372036854775807}, {"site": 0, "callee": 0, "weight": 1}]}`,
			"weight overflow on duplicate arc"},
		{`{"version": 1, "entries": [{"method": 999, "overflow": true}]}`, "entry method 999 out of range"},
	}
	for _, c := range cases {
		err := cg.UnmarshalInto([]byte(c.data))
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("UnmarshalInto(%q) err = %v, want %q", c.data, err, c.sub)
		}
	}
}

// TestUnmarshalCorruptEntries covers the entry-table validation that
// needs real method/class IDs from the bound program, so the inputs are
// built with Sprintf rather than written as literals.
func TestUnmarshalCorruptEntries(t *testing.T) {
	p := load(t)
	mA, _, _ := methods(t, p) // m(x@A): arity 1
	cases := []struct{ name, data, sub string }{
		{"arity too wide",
			fmt.Sprintf(`{"version": 1, "entries": [{"method": %d, "tuples": [[0, 0]]}]}`, mA.ID),
			"tuple arity 2 does not match"},
		{"arity too narrow",
			fmt.Sprintf(`{"version": 1, "entries": [{"method": %d, "tuples": [[]]}]}`, mA.ID),
			"tuple arity 0 does not match"},
		{"class out of range",
			fmt.Sprintf(`{"version": 1, "entries": [{"method": %d, "tuples": [[999]]}]}`, mA.ID),
			"entry class 999 out of range"},
		{"duplicate entry",
			fmt.Sprintf(`{"version": 1, "entries": [{"method": %d, "overflow": true}, {"method": %d, "tuples": [[0]]}]}`, mA.ID, mA.ID),
			"duplicate entry for method"},
	}
	for _, c := range cases {
		cg := NewCallGraph(p)
		err := cg.UnmarshalInto([]byte(c.data))
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: UnmarshalInto err = %v, want %q", c.name, err, c.sub)
		}
	}
}

// Duplicate arcs with small weights are tolerated (Record accumulates,
// as it does for live profiling); only an accumulation that would wrap
// int64 is rejected.
func TestUnmarshalDuplicateArcsAccumulate(t *testing.T) {
	p := load(t)
	cg := NewCallGraph(p)
	data := `{"version": 1, "arcs": [{"site": 0, "callee": 0, "weight": 4}, {"site": 0, "callee": 0, "weight": 3}]}`
	if err := cg.UnmarshalInto([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if cg.Len() != 1 || cg.TotalWeight() != 7 {
		t.Fatalf("Len = %d, TotalWeight = %d, want 1 arc of weight 7", cg.Len(), cg.TotalWeight())
	}
}

// Entries (tuples and the overflow marker) survive a marshal/unmarshal
// round trip alongside the arcs.
func TestEntriesRoundTrip(t *testing.T) {
	p := load(t)
	mA, mB, f := methods(t, p)
	var clsA *hier.Class
	for _, c := range p.H.Classes() {
		if c.Name == "A" {
			clsA = c
		}
	}
	if clsA == nil {
		t.Fatal("class A not found")
	}
	cg := NewCallGraph(p)
	cg.Record(p.Bodies[f].Sites[0], mA, 10)
	cg.RecordEntry(mA, []*hier.Class{clsA})
	cg.entries[mB] = &tupleSet{overflow: true}

	data, err := cg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back := NewCallGraph(p)
	if err := back.UnmarshalInto(data); err != nil {
		t.Fatal(err)
	}
	ts := back.Entries(mA)
	if ts == nil || len(ts.Tuples) != 1 || ts.Overflow {
		t.Fatalf("Entries(mA) = %+v", ts)
	}
	if ts := back.Entries(mB); ts == nil || !ts.Overflow {
		t.Fatalf("Entries(mB) = %+v, want overflow marker", ts)
	}
}

func TestGlobalInitArcCallerNil(t *testing.T) {
	srcG := `
class A
method m(x@A) { 1; }
var g := m(new A());
method main() { g; }
`
	p, err := ir.Lower(lang.MustParse(srcG))
	if err != nil {
		t.Fatal(err)
	}
	cg := NewCallGraph(p)
	var site *ir.CallSite
	for _, s := range p.Sites {
		if s.Caller == nil {
			site = s
		}
	}
	if site == nil {
		t.Fatal("no global-init site found")
	}
	cg.Record(site, p.H.Methods()[0], 3)
	a := cg.Arcs()[0]
	if a.Caller() != nil {
		t.Error("global-init arc should have nil caller")
	}
	if !strings.Contains(a.String(), "<global>") {
		t.Errorf("String = %q", a.String())
	}
}
