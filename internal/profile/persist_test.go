package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// Satellite of the profdb work: Merge is the operation the profile
// database applies on every upload, so an overflowing merge must error
// and leave the target untouched — never wrap into a negative weight.
func TestMergeOverflowErrors(t *testing.T) {
	p := load(t)
	mA, _, f := methods(t, p)
	s0, s1 := p.Bodies[f].Sites[0], p.Bodies[f].Sites[1]

	a := NewCallGraph(p)
	a.Record(s0, mA, math.MaxInt64-1)
	a.Record(s1, mA, 10)
	b := NewCallGraph(p)
	b.Record(s1, mA, 5) // fine on its own...
	b.Record(s0, mA, 2) // ...but this one would wrap

	err := a.Merge(b)
	if err == nil || !strings.Contains(err.Error(), "weight overflow") {
		t.Fatalf("Merge err = %v, want weight overflow", err)
	}
	// The failed merge applied nothing: not even b's safe arc.
	arcs := a.Arcs()
	if arcs[0].Weight != math.MaxInt64-1 || arcs[1].Weight != 10 {
		t.Fatalf("failed merge mutated target: %v", arcs)
	}
	for _, arc := range arcs {
		if arc.Weight < 0 {
			t.Fatalf("weight wrapped negative: %v", arc)
		}
	}
}

func TestMergeAtExactBoundary(t *testing.T) {
	p := load(t)
	mA, _, f := methods(t, p)
	s0 := p.Bodies[f].Sites[0]
	a := NewCallGraph(p)
	a.Record(s0, mA, math.MaxInt64-5)
	b := NewCallGraph(p)
	b.Record(s0, mA, 5) // lands exactly on MaxInt64: allowed
	if err := a.Merge(b); err != nil {
		t.Fatalf("boundary merge rejected: %v", err)
	}
	if a.Arcs()[0].Weight != math.MaxInt64 {
		t.Fatalf("weight = %d", a.Arcs()[0].Weight)
	}
}

func TestParseWireStructural(t *testing.T) {
	good := `{"version": 1, "arcs": [{"site": 3, "callee": 9999, "weight": 7}]}`
	w, err := ParseWire([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	// ParseWire is structural only: id 9999 is fine without a program.
	if len(w.Arcs) != 1 || w.Arcs[0].Callee != 9999 {
		t.Fatalf("parsed = %+v", w.Arcs)
	}
	bad := []struct{ data, sub string }{
		{`{nope`, "profile:"},
		{`{"version": 2, "arcs": []}`, "unsupported format version"},
		{`{"version": 1, "arcs": [{"site": -1, "callee": 0, "weight": 1}]}`, "negative id"},
		{`{"version": 1, "arcs": [{"site": 0, "callee": 0, "weight": -1}]}`, "negative weight"},
		{`{"version": 1, "entries": [{"method": -1}]}`, "negative entry method"},
		{`{"version": 1, "entries": [{"method": 0, "tuples": [[-4]]}]}`, "negative entry class"},
	}
	for _, c := range bad {
		if _, err := ParseWire([]byte(c.data)); err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("ParseWire(%q) err = %v, want %q", c.data, err, c.sub)
		}
	}
}

func TestWireSortCanonical(t *testing.T) {
	w := &Wire{Version: FormatVersion,
		Arcs: []WireArc{
			{Site: 2, Callee: 0, Weight: 1},
			{Site: 0, Callee: 5, Weight: 2},
			{Site: 0, Callee: 1, Weight: 3},
		},
		Entries: []WireEntry{
			{Method: 4, Tuples: [][]int{{2, 1}, {1, 9}, {1}}},
			{Method: 1},
		},
	}
	w.Sort()
	if w.Arcs[0].Site != 0 || w.Arcs[0].Callee != 1 || w.Arcs[2].Site != 2 {
		t.Fatalf("arc order: %+v", w.Arcs)
	}
	if w.Entries[0].Method != 1 {
		t.Fatalf("entry order: %+v", w.Entries)
	}
	tuples := w.Entries[1].Tuples
	if len(tuples[0]) != 1 || tuples[1][1] != 9 || tuples[2][0] != 2 {
		t.Fatalf("tuple order: %v", tuples)
	}

	// Sorting twice is idempotent and Marshal of equal Wires is
	// byte-equal — the property the profile database's byte-identity
	// guarantee stands on.
	b1, err := w.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	w.Sort()
	b2, _ := w.Marshal()
	if !bytes.Equal(b1, b2) {
		t.Fatal("Sort is not idempotent under Marshal")
	}
}

func TestWireMatchesCallGraphMarshal(t *testing.T) {
	p := load(t)
	mA, mB, f := methods(t, p)
	cg := NewCallGraph(p)
	cg.Record(p.Bodies[f].Sites[1], mB, 9)
	cg.Record(p.Bodies[f].Sites[0], mA, 4)

	viaWire, err := cg.Wire().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaWire, direct) {
		t.Fatalf("Wire().Marshal() differs from MarshalJSON:\n%s\nvs\n%s", viaWire, direct)
	}
	if _, err := ParseWire(direct); err != nil {
		t.Fatalf("ParseWire rejects MarshalJSON output: %v", err)
	}
}
