package profile

// FuzzProfile drives the raw profile decoder (UnmarshalInto) with
// arbitrary bytes. Profiles cross a file-system boundary
// (`selspec -use-profile`), so the decoder's contract is: any input
// yields either a valid in-memory call graph or an ordinary error —
// never a panic, and never a silently poisoned graph. Accepted inputs
// must also survive a marshal → unmarshal round trip, byte-stably.

import (
	"bytes"
	"testing"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
)

func FuzzProfile(f *testing.F) {
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		f.Fatal(err)
	}

	// A real profile of the shared test program is the structured seed
	// the mutator works from: arcs on both sites of f plus an entry
	// tuple and an overflow marker.
	{
		var mA, mB, mf *hier.Method
		for _, m := range prog.H.Methods() {
			switch {
			case m.GF.Name == "m" && m.Specs[0].Name == "A":
				mA = m
			case m.GF.Name == "m" && m.Specs[0].Name == "B":
				mB = m
			case m.GF.Name == "f":
				mf = m
			}
		}
		cg := NewCallGraph(prog)
		cg.Record(prog.Bodies[mf].Sites[0], mA, 5)
		cg.Record(prog.Bodies[mf].Sites[0], mB, 3)
		cg.Record(prog.Bodies[mf].Sites[1], mB, 7)
		cg.RecordEntry(mA, []*hier.Class{prog.H.Classes()[0]})
		cg.entries[mB] = &tupleSet{overflow: true}
		data, err := cg.MarshalJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Hand-written seeds covering every validation branch of the
	// decoder (mirrors the corrupt-input unit tests) plus shape errors.
	for _, s := range []string{
		``,
		`{}`,
		`{"version": 1}`,
		`{"version": 99, "arcs": []}`,
		`{"version": 1, "arcs": [{"site": 0, "callee": 0, "weight": 1}]}`,
		`{"version": 1, "arcs": [{"site": -1, "callee": 0, "weight": 1}]}`,
		`{"version": 1, "arcs": [{"site": 9999, "callee": 0, "weight": 1}]}`,
		`{"version": 1, "arcs": [{"site": 0, "callee": 0, "weight": -5}]}`,
		`{"version": 1, "arcs": [{"site": 0, "callee": 0, "weight": 9223372036854775807}, {"site": 0, "callee": 0, "weight": 1}]}`,
		`{"version": 1, "entries": [{"method": 0, "tuples": [[0]]}]}`,
		`{"version": 1, "entries": [{"method": 0, "tuples": [[0, 1, 2]]}]}`,
		`{"version": 1, "entries": [{"method": 0, "overflow": true}, {"method": 0}]}`,
		`{"version": 1, "entries": [{"method": 0, "tuples": [[-1]]}]}`,
		`[1, 2, 3]`,
		`null`,
		"\x00\xff{",
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cg := NewCallGraph(prog)
		if err := cg.UnmarshalInto(data); err != nil {
			return // rejecting the input with an ordinary error is fine
		}
		// Accepted inputs must produce a graph whose own encoding is
		// accepted back — the round-trip invariant persisted profiles
		// rely on.
		out, err := cg.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted input failed to marshal: %v\ninput: %q", err, data)
		}
		back := NewCallGraph(prog)
		if err := back.UnmarshalInto(out); err != nil {
			t.Fatalf("round trip rejected: %v\nencoded: %q", err, out)
		}
		out2, err := back.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip not stable:\nfirst:  %s\nsecond: %s", out, out2)
		}
	})
}
