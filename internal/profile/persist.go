package profile

import (
	"encoding/json"
	"fmt"
	"math"

	"selspec/internal/hier"
)

// fileFormat is the on-disk JSON representation. Sites and methods are
// identified by their dense IDs, which are stable for a given source
// program (lowering assigns them deterministically), so a profile
// gathered once can be reused across many compilations — the paper
// observes profiles "remain fairly constant across different inputs"
// (§3.7.2).
type fileFormat struct {
	Version int         `json:"version"`
	Arcs    []fileArc   `json:"arcs"`
	Entries []fileEntry `json:"entries,omitempty"`
}

type fileArc struct {
	Site   int   `json:"site"`
	Callee int   `json:"callee"`
	Weight int64 `json:"weight"`
}

type fileEntry struct {
	Method   int     `json:"method"`
	Tuples   [][]int `json:"tuples,omitempty"`
	Overflow bool    `json:"overflow,omitempty"`
}

const formatVersion = 1

// MarshalJSON encodes the call graph.
func (g *CallGraph) MarshalJSON() ([]byte, error) {
	ff := fileFormat{Version: formatVersion}
	for _, a := range g.Arcs() {
		ff.Arcs = append(ff.Arcs, fileArc{Site: a.Site.ID, Callee: a.Callee.ID, Weight: a.Weight})
	}
	for _, m := range g.prog.H.Methods() {
		if ts := g.Entries(m); ts != nil {
			ff.Entries = append(ff.Entries, fileEntry{Method: m.ID, Tuples: ts.Tuples, Overflow: ts.Overflow})
		}
	}
	return json.MarshalIndent(ff, "", "  ")
}

// UnmarshalInto decodes data into a fresh call graph bound to g's
// program, replacing g's arcs. Profiles cross a file-system boundary,
// so every reference is validated against the bound program before it
// touches graph state: ids in range, weights non-negative and
// non-overflowing under duplicate arcs, tuple arities matching the
// method they claim to sample, one entry per method. A corrupt or
// hostile file yields an error, never a panic or a silently poisoned
// profile.
func (g *CallGraph) UnmarshalInto(data []byte) error {
	var ff fileFormat
	if err := json.Unmarshal(data, &ff); err != nil {
		return fmt.Errorf("profile: %v", err)
	}
	if ff.Version != formatVersion {
		return fmt.Errorf("profile: unsupported format version %d", ff.Version)
	}
	g.arcs = map[arcKey]*Arc{}
	g.entries = map[*hier.Method]*tupleSet{}
	methods := g.prog.H.Methods()
	for _, fa := range ff.Arcs {
		if fa.Site < 0 || fa.Site >= len(g.prog.Sites) {
			return fmt.Errorf("profile: site %d out of range (profile from a different program?)", fa.Site)
		}
		if fa.Callee < 0 || fa.Callee >= len(methods) {
			return fmt.Errorf("profile: method %d out of range (profile from a different program?)", fa.Callee)
		}
		if fa.Weight < 0 {
			return fmt.Errorf("profile: negative weight on site %d", fa.Site)
		}
		if a, ok := g.arcs[arcKey{fa.Site, fa.Callee}]; ok && a.Weight > math.MaxInt64-fa.Weight {
			return fmt.Errorf("profile: weight overflow on duplicate arc %d->%d", fa.Site, fa.Callee)
		}
		g.Record(g.prog.Sites[fa.Site], methods[fa.Callee], fa.Weight)
	}
	classes := g.prog.H.Classes()
	for _, fe := range ff.Entries {
		if fe.Method < 0 || fe.Method >= len(methods) {
			return fmt.Errorf("profile: entry method %d out of range", fe.Method)
		}
		m := methods[fe.Method]
		if _, dup := g.entries[m]; dup {
			return fmt.Errorf("profile: duplicate entry for method %d", fe.Method)
		}
		if fe.Overflow {
			g.entries[m] = &tupleSet{overflow: true}
			continue
		}
		for _, ids := range fe.Tuples {
			if len(ids) != len(m.Specs) {
				return fmt.Errorf("profile: entry tuple arity %d does not match method %d arity %d",
					len(ids), fe.Method, len(m.Specs))
			}
			cs := make([]*hier.Class, len(ids))
			for i, id := range ids {
				if id < 0 || id >= len(classes) {
					return fmt.Errorf("profile: entry class %d out of range", id)
				}
				cs[i] = classes[id]
			}
			g.RecordEntry(m, cs)
		}
	}
	return nil
}
