package profile

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"selspec/internal/hier"
)

// Wire is the on-disk / on-the-wire JSON representation of a profile.
// Sites and methods are identified by their dense IDs, which are stable
// for a given source program (lowering assigns them deterministically),
// so a profile gathered once can be reused across many compilations —
// the paper observes profiles "remain fairly constant across different
// inputs" (§3.7.2).
//
// The type is exported because the profile database (internal/profdb)
// stores and aggregates profiles in this program-independent form: the
// database never holds the program IR, only the serving layer that
// validates an upload against its bound program does.
type Wire struct {
	Version int         `json:"version"`
	Arcs    []WireArc   `json:"arcs"`
	Entries []WireEntry `json:"entries,omitempty"`
}

// WireArc is one weighted call-graph edge in wire form.
type WireArc struct {
	Site   int   `json:"site"`
	Callee int   `json:"callee"`
	Weight int64 `json:"weight"`
}

// WireEntry is one method's argument-tuple sample in wire form.
type WireEntry struct {
	Method   int     `json:"method"`
	Tuples   [][]int `json:"tuples,omitempty"`
	Overflow bool    `json:"overflow,omitempty"`
}

// FormatVersion is the wire format version this package reads and
// writes.
const FormatVersion = 1

const formatVersion = FormatVersion

// Marshal renders a Wire in the canonical indented-JSON encoding every
// producer in the repo uses, so two structurally equal profiles are
// byte-identical.
func (w *Wire) Marshal() ([]byte, error) {
	return json.MarshalIndent(w, "", "  ")
}

// MarshalJSON encodes the call graph.
func (g *CallGraph) MarshalJSON() ([]byte, error) {
	return g.Wire().Marshal()
}

// Wire converts the call graph to its wire form: arcs ordered by
// (site, callee), entries ordered by method, tuples in the recorded
// sorted order — the canonical shape MarshalJSON serializes.
func (g *CallGraph) Wire() *Wire {
	ff := &Wire{Version: formatVersion}
	for _, a := range g.Arcs() {
		ff.Arcs = append(ff.Arcs, WireArc{Site: a.Site.ID, Callee: a.Callee.ID, Weight: a.Weight})
	}
	for _, m := range g.prog.H.Methods() {
		if ts := g.Entries(m); ts != nil {
			ff.Entries = append(ff.Entries, WireEntry{Method: m.ID, Tuples: ts.Tuples, Overflow: ts.Overflow})
		}
	}
	return ff
}

// ParseWire decodes a profile's JSON without a program to validate it
// against: only structural checks (well-formed JSON, supported version,
// non-negative weights, sane tuple shapes) run here. Callers that hold
// the program must follow with CallGraph.UnmarshalInto for the full
// referential validation; callers that do not (the profile database)
// rely on the serving layer having done so before handing the bytes
// over.
func ParseWire(data []byte) (*Wire, error) {
	var ff Wire
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("profile: %v", err)
	}
	if ff.Version != formatVersion {
		return nil, fmt.Errorf("profile: unsupported format version %d", ff.Version)
	}
	for _, fa := range ff.Arcs {
		if fa.Site < 0 || fa.Callee < 0 {
			return nil, fmt.Errorf("profile: negative id on arc %d->%d", fa.Site, fa.Callee)
		}
		if fa.Weight < 0 {
			return nil, fmt.Errorf("profile: negative weight on site %d", fa.Site)
		}
	}
	for _, fe := range ff.Entries {
		if fe.Method < 0 {
			return nil, fmt.Errorf("profile: negative entry method %d", fe.Method)
		}
		for _, ids := range fe.Tuples {
			for _, id := range ids {
				if id < 0 {
					return nil, fmt.Errorf("profile: negative entry class %d", id)
				}
			}
		}
	}
	return &ff, nil
}

// Sort orders the wire form canonically: arcs by (site, callee),
// entries by method, tuples lexicographically. Producers that build a
// Wire by hand call it before Marshal so equality is byte equality.
func (w *Wire) Sort() {
	sort.Slice(w.Arcs, func(i, j int) bool {
		if w.Arcs[i].Site != w.Arcs[j].Site {
			return w.Arcs[i].Site < w.Arcs[j].Site
		}
		return w.Arcs[i].Callee < w.Arcs[j].Callee
	})
	sort.Slice(w.Entries, func(i, j int) bool { return w.Entries[i].Method < w.Entries[j].Method })
	for _, e := range w.Entries {
		sort.Slice(e.Tuples, func(i, j int) bool { return lessTuple(e.Tuples[i], e.Tuples[j]) })
	}
}

func lessTuple(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// UnmarshalInto decodes data into a fresh call graph bound to g's
// program, replacing g's arcs. Profiles cross a file-system boundary,
// so every reference is validated against the bound program before it
// touches graph state: ids in range, weights non-negative and
// non-overflowing under duplicate arcs, tuple arities matching the
// method they claim to sample, one entry per method. A corrupt or
// hostile file yields an error, never a panic or a silently poisoned
// profile.
func (g *CallGraph) UnmarshalInto(data []byte) error {
	var ff Wire
	if err := json.Unmarshal(data, &ff); err != nil {
		return fmt.Errorf("profile: %v", err)
	}
	if ff.Version != formatVersion {
		return fmt.Errorf("profile: unsupported format version %d", ff.Version)
	}
	g.arcs = map[arcKey]*Arc{}
	g.entries = map[*hier.Method]*tupleSet{}
	methods := g.prog.H.Methods()
	for _, fa := range ff.Arcs {
		if fa.Site < 0 || fa.Site >= len(g.prog.Sites) {
			return fmt.Errorf("profile: site %d out of range (profile from a different program?)", fa.Site)
		}
		if fa.Callee < 0 || fa.Callee >= len(methods) {
			return fmt.Errorf("profile: method %d out of range (profile from a different program?)", fa.Callee)
		}
		if fa.Weight < 0 {
			return fmt.Errorf("profile: negative weight on site %d", fa.Site)
		}
		if a, ok := g.arcs[arcKey{fa.Site, fa.Callee}]; ok && a.Weight > math.MaxInt64-fa.Weight {
			return fmt.Errorf("profile: weight overflow on duplicate arc %d->%d", fa.Site, fa.Callee)
		}
		g.Record(g.prog.Sites[fa.Site], methods[fa.Callee], fa.Weight)
	}
	classes := g.prog.H.Classes()
	for _, fe := range ff.Entries {
		if fe.Method < 0 || fe.Method >= len(methods) {
			return fmt.Errorf("profile: entry method %d out of range", fe.Method)
		}
		m := methods[fe.Method]
		if _, dup := g.entries[m]; dup {
			return fmt.Errorf("profile: duplicate entry for method %d", fe.Method)
		}
		if fe.Overflow {
			g.entries[m] = &tupleSet{overflow: true}
			continue
		}
		for _, ids := range fe.Tuples {
			if len(ids) != len(m.Specs) {
				return fmt.Errorf("profile: entry tuple arity %d does not match method %d arity %d",
					len(ids), fe.Method, len(m.Specs))
			}
			cs := make([]*hier.Class, len(ids))
			for i, id := range ids {
				if id < 0 || id >= len(classes) {
					return fmt.Errorf("profile: entry class %d out of range", id)
				}
				cs[i] = classes[id]
			}
			g.RecordEntry(m, cs)
		}
	}
	return nil
}
