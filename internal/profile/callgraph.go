// Package profile implements the weighted program call graph the
// selective specialization algorithm consumes: for each call site, the
// set of methods invoked and the number of times each was invoked
// (paper §3: Caller(arc), Callee(arc), CallSite(arc), Weight(arc)).
//
// Profiles are gathered by an instrumented interpreter run and can be
// persisted to JSON, mirroring the paper's "persistent internal
// database of profile information" (§3.7.2).
package profile

import (
	"fmt"
	"math"
	"sort"

	"selspec/internal/hier"
	"selspec/internal/ir"
)

// Arc is one weighted call-graph edge. A call site can have multiple
// arcs (one per callee method observed) due to dynamic dispatching.
type Arc struct {
	Site   *ir.CallSite
	Callee *hier.Method
	Weight int64
}

// Caller returns the method lexically containing the arc's call site
// (nil for sends in global initializers).
func (a *Arc) Caller() *hier.Method { return a.Site.Caller }

func (a *Arc) String() string {
	caller := "<global>"
	if a.Caller() != nil {
		caller = a.Caller().Name()
	}
	return fmt.Sprintf("%s --%d--> %s [site#%d]", caller, a.Weight, a.Callee.Name(), a.Site.ID)
}

type arcKey struct {
	siteID   int
	calleeID int
}

// MaxTupleSample bounds the number of distinct argument class tuples
// recorded per method; beyond it the sample is marked overflowed and
// treated as "anything was seen" (§3.2: "it is likely to be more
// expensive to gather profiles of argument tuples than simple call arc
// and count information").
const MaxTupleSample = 128

// TupleSample is the set of distinct argument class-ID tuples observed
// for one method during a profiling run — the paper's §3.2 extension
// for pruning never-invoked combined specializations.
type TupleSample struct {
	Tuples   [][]int
	Overflow bool
}

// CallGraph is a weighted dynamic call graph, optionally augmented with
// per-method argument-tuple samples.
type CallGraph struct {
	prog    *ir.Program
	arcs    map[arcKey]*Arc
	entries map[*hier.Method]*tupleSet
}

type tupleSet struct {
	seen     map[string][]int
	overflow bool
}

// NewCallGraph returns an empty call graph for the program.
func NewCallGraph(p *ir.Program) *CallGraph {
	return &CallGraph{prog: p, arcs: map[arcKey]*Arc{}, entries: map[*hier.Method]*tupleSet{}}
}

// RecordEntry records one method invocation's argument classes.
func (g *CallGraph) RecordEntry(m *hier.Method, classes []*hier.Class) {
	ts := g.entries[m]
	if ts == nil {
		ts = &tupleSet{seen: map[string][]int{}}
		g.entries[m] = ts
	}
	if ts.overflow {
		return
	}
	key := make([]byte, 0, 2*len(classes))
	ids := make([]int, len(classes))
	for i, c := range classes {
		ids[i] = c.ID
		key = append(key, byte(c.ID), byte(c.ID>>8))
	}
	k := string(key)
	if _, ok := ts.seen[k]; ok {
		return
	}
	if len(ts.seen) >= MaxTupleSample {
		ts.overflow = true
		ts.seen = nil
		return
	}
	ts.seen[k] = ids
}

// Entries returns the argument-tuple sample for a method, or nil when
// none was recorded.
func (g *CallGraph) Entries(m *hier.Method) *TupleSample {
	ts := g.entries[m]
	if ts == nil {
		return nil
	}
	out := &TupleSample{Overflow: ts.overflow}
	keys := make([]string, 0, len(ts.seen))
	for k := range ts.seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out.Tuples = append(out.Tuples, ts.seen[k])
	}
	return out
}

// Program returns the program the graph was built against.
func (g *CallGraph) Program() *ir.Program { return g.prog }

// Record adds weight n to the arc (site → callee).
func (g *CallGraph) Record(site *ir.CallSite, callee *hier.Method, n int64) {
	k := arcKey{site.ID, callee.ID}
	if a, ok := g.arcs[k]; ok {
		a.Weight += n
		return
	}
	g.arcs[k] = &Arc{Site: site, Callee: callee, Weight: n}
}

// Len returns the number of distinct arcs.
func (g *CallGraph) Len() int { return len(g.arcs) }

// TotalWeight sums all arc weights.
func (g *CallGraph) TotalWeight() int64 {
	var t int64
	for _, a := range g.arcs {
		t += a.Weight
	}
	return t
}

// Arcs returns all arcs ordered by (site, callee) for deterministic
// iteration.
func (g *CallGraph) Arcs() []*Arc {
	out := make([]*Arc, 0, len(g.arcs))
	for _, a := range g.arcs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site.ID != out[j].Site.ID {
			return out[i].Site.ID < out[j].Site.ID
		}
		return out[i].Callee.ID < out[j].Callee.ID
	})
	return out
}

// OutArcs returns arcs whose caller is m, ordered deterministically.
func (g *CallGraph) OutArcs(m *hier.Method) []*Arc {
	var out []*Arc
	for _, a := range g.Arcs() {
		if a.Caller() == m {
			out = append(out, a)
		}
	}
	return out
}

// InArcs returns arcs whose callee is m, ordered deterministically.
func (g *CallGraph) InArcs(m *hier.Method) []*Arc {
	var out []*Arc
	for _, a := range g.Arcs() {
		if a.Callee == m {
			out = append(out, a)
		}
	}
	return out
}

// SiteArcs returns the arcs leaving one call site.
func (g *CallGraph) SiteArcs(site *ir.CallSite) []*Arc {
	var out []*Arc
	for _, a := range g.Arcs() {
		if a.Site == site {
			out = append(out, a)
		}
	}
	return out
}

// Merge adds every arc of other into g (same program required). Arc
// weights are summed with the same int64 overflow guard UnmarshalInto
// applies to duplicate arcs: a merge that would wrap errors before
// touching g, so a poisoned aggregate can never come out of repeated
// merging — the failure mode a long-lived profile database would
// otherwise hit first.
func (g *CallGraph) Merge(other *CallGraph) error {
	if other.prog != g.prog {
		return fmt.Errorf("profile: cannot merge call graphs from different programs")
	}
	// Validate the whole merge before applying any of it, so an
	// overflow leaves g untouched rather than partially merged.
	for k, a := range other.arcs {
		if ex, ok := g.arcs[k]; ok && ex.Weight > math.MaxInt64-a.Weight {
			return fmt.Errorf("profile: weight overflow merging arc %d->%d", k.siteID, k.calleeID)
		}
	}
	for _, a := range other.arcs {
		g.Record(a.Site, a.Callee, a.Weight)
	}
	return nil
}
