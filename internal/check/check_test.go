package check

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"selspec/internal/programs"
)

// want describes one expected diagnostic: the check that fires, its
// severity, the 1-based line it is anchored to, and a substring of the
// message.
type want struct {
	check string
	sev   Severity
	line  int
	sub   string
}

func analyze(t *testing.T, src string, opts Options) []Diagnostic {
	t.Helper()
	ds, err := Source("test.mc", src, opts)
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	return ds
}

func assertDiags(t *testing.T, ds []Diagnostic, wants []want) {
	t.Helper()
	if len(ds) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(ds), len(wants), renderAll(ds))
	}
	for i, w := range wants {
		d := ds[i]
		if d.Check != w.check || d.Severity != w.sev || d.Line != w.line ||
			!strings.Contains(d.Message, w.sub) {
			t.Errorf("diagnostic %d = %s\nwant check=%s sev=%s line=%d message containing %q",
				i, d, w.check, w.sev, w.line, w.sub)
		}
	}
}

func renderAll(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// TestChecksFire gives every check ID a positive fixture (the check
// fires, at the right position) and a clean negative twin (the minimal
// repair silences it).
func TestChecksFire(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		wants []want // nil means the program must be clean
	}{
		{
			name: "possible-mnu certain failure is an error",
			src: `class A
class B
method f(x@A) { 1; }
method main() { var keep := new A(); f(new B()); }`,
			wants: []want{{CheckPossibleMNU, SevError, 4, "no applicable method for f/1"}},
		},
		{
			name: "possible-mnu clean when the method covers the argument",
			src: `class A
class B isa A
method f(x@A) { 1; }
method main() { f(new B()); }`,
		},
		{
			name: "possible-mnu partial coverage is a warning",
			src: `class A
class B
method f(x@A) { 1; }
method main() {
  var v := new A();
  if 1 < 2 { v := new B(); }
  f(v);
}`,
			wants: []want{{CheckPossibleMNU, SevWarning, 7, "fails for 1 of 2"}},
		},
		{
			name: "possible-mnu nil default is guardable, not reported",
			src: `class A
method f(x@A) { 1; }
method main() {
  var v := nil;
  if 1 < 2 { v := new A(); }
  f(v);
}`,
		},
		{
			name: "ambiguous-dispatch diamond",
			src: `class L
class R
class C isa L, R
method amb(x@L) { 1; }
method amb(x@R) { 2; }
method main() { var kl := new L(); var kr := new R(); amb(new C()); }`,
			wants: []want{{CheckAmbiguous, SevWarning, 6, "ambiguous dispatch for amb/1"}},
		},
		{
			name: "ambiguous-dispatch resolved by a tie-breaking method",
			src: `class L
class R
class C isa L, R
method amb(x@L) { 1; }
method amb(x@R) { 2; }
method amb(x@C) { 3; }
method main() { var kl := new L(); var kr := new R(); amb(new C()); }`,
		},
		{
			name: "dead-method unreachable from main",
			src: `class A
method used(x@A) { 1; }
method unused(x@A) { 2; }
method main() { used(new A()); }`,
			wants: []want{{CheckDeadMethod, SevWarning, 3, "unused(@A) is unreachable"}},
		},
		{
			name: "dead-method clean once the method is sent",
			src: `class A
method used(x@A) { 1; }
method unused(x@A) { 2; }
method main() { used(new A()); unused(new A()); }`,
		},
		{
			name: "arity-mismatch wrong arity lists the defined ones",
			src: `class A
method f(x@A) { 1; }
method f(x@A, y@A) { 2; }
method main() { f(new A(), new A(), new A()); }`,
			wants: []want{{CheckArityMismatch, SevError, 4, "no method f/3; defined: f/1, f/2"}},
		},
		{
			name: "arity-mismatch unknown selector",
			src: `class A
method main() { g(new A()); }`,
			wants: []want{{CheckArityMismatch, SevError, 2, "unknown selector g/1"}},
		},
		{
			name:  "arity-mismatch primitive signature",
			src:   `method main() { println("a", "b"); }`,
			wants: []want{{CheckArityMismatch, SevError, 1, "primitive println takes 1 arguments, got 2"}},
		},
		{
			name: "arity-mismatch clean call",
			src: `class A
method f(x@A) { 1; }
method main() { f(new A()); println("ok"); }`,
		},
		{
			name: "useless-specialization shadowed by overrides",
			src: `class P
class Q isa P
method g(x@P) { 1; }
method g(x@Q) { 2; }
method main() { g(new Q()); }`,
			wants: []want{{CheckUselessSpec, SevWarning, 3, "specialization g(@P) is useless"}},
		},
		{
			name: "useless-specialization clean when the base class is live",
			src: `class P
class Q isa P
method g(x@P) { 1; }
method g(x@Q) { 2; }
method main() { g(new P()); g(new Q()); }`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := analyze(t, tc.src, Options{Instantiation: true})
			assertDiags(t, ds, tc.wants)
		})
	}
}

// TestInstantiationSharpens shows the RTA-style refinement at work: a
// send that is a possible MNU under plain CHA is proven safe once only
// the instantiated classes are considered.
func TestInstantiationSharpens(t *testing.T) {
	src := `class A
class B isa A
class Dead isa A
method f(x@B) { 1; }
method g(x@A) { f(x); }
method main() { g(new B()); }`
	if ds := analyze(t, src, Options{Instantiation: true}); len(ds) != 0 {
		t.Errorf("instantiation on: want clean, got:\n%s", renderAll(ds))
	}
	ds := analyze(t, src, Options{})
	found := false
	for _, d := range ds {
		if d.Check == CheckPossibleMNU {
			found = true
		}
	}
	if !found {
		t.Errorf("instantiation off: want a possible-mnu diagnostic, got:\n%s", renderAll(ds))
	}
}

// TestBenchmarksClean is the headline acceptance criterion: the five
// embedded benchmark programs come back with zero diagnostics.
func TestBenchmarksClean(t *testing.T) {
	for _, b := range programs.Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			ds, err := Source(b.Name, b.Source, Options{Instantiation: true})
			if err != nil {
				t.Fatalf("Source: %v", err)
			}
			if len(ds) != 0 {
				t.Errorf("want clean, got %d diagnostics:\n%s", len(ds), renderAll(ds))
			}
		})
	}
}

// TestDiagnosticsSorted verifies the deterministic output order:
// diagnostics come back sorted by file, line, column, check ID.
func TestDiagnosticsSorted(t *testing.T) {
	src := `class A
class B
method f(x@A) { 1; }
method unused(x@A) { 2; }
method main() { var keep := new A(); f(new B()); f(new B()); }`
	ds := analyze(t, src, Options{Instantiation: true})
	if len(ds) < 3 {
		t.Fatalf("fixture regressed: want >= 3 diagnostics, got:\n%s", renderAll(ds))
	}
	if !sort.SliceIsSorted(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	}) {
		t.Errorf("diagnostics not sorted:\n%s", renderAll(ds))
	}
}

// TestJSONStable round-trips the JSON encoding and verifies it is
// byte-for-byte stable across repeated analyses of the same source —
// the property the CI golden-file comparison depends on.
func TestJSONStable(t *testing.T) {
	src := `class A
class B
method f(x@A) { 1; }
method main() { var keep := new A(); f(new B()); }`
	var first []byte
	for i := 0; i < 5; i++ {
		ds := analyze(t, src, Options{Instantiation: true})
		var buf bytes.Buffer
		if err := WriteJSON(&buf, ds); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if first == nil {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("JSON output not stable:\n--- run 0:\n%s\n--- run %d:\n%s", first, i, buf.Bytes())
		}
	}

	var decoded []Diagnostic
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(decoded) != 1 || decoded[0].Check != CheckPossibleMNU ||
		decoded[0].Severity != SevError || decoded[0].File != "test.mc" {
		t.Errorf("round-trip mismatch: %+v", decoded)
	}
}

// TestJSONEmpty: no diagnostics must encode as an empty array, never
// null, so downstream tooling can always iterate the result.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty diagnostics encode as %q, want []", got)
	}
}

// TestCatalog: every check ID constant is documented exactly once.
func TestCatalog(t *testing.T) {
	ids := map[string]int{}
	for _, info := range Catalog() {
		ids[info.ID]++
		if info.Description == "" {
			t.Errorf("check %s has no description", info.ID)
		}
	}
	for _, id := range []string{CheckPossibleMNU, CheckAmbiguous, CheckDeadMethod, CheckArityMismatch, CheckUselessSpec} {
		if ids[id] != 1 {
			t.Errorf("check %s appears %d times in the catalog, want 1", id, ids[id])
		}
	}
}

// TestArityAbortsLowering: a program with arity errors cannot be
// lowered, but Source still reports the AST-level diagnostics instead
// of a hard error.
func TestArityAbortsLowering(t *testing.T) {
	src := `class A
method f(x@A) { 1; }
method main() { f(new A(), new A()); }`
	ds := analyze(t, src, Options{Instantiation: true})
	assertDiags(t, ds, []want{{CheckArityMismatch, SevError, 3, "no method f/2; defined: f/1"}})
}

// TestSourceParseError: a syntactically invalid program is a hard
// error, not a diagnostic.
func TestSourceParseError(t *testing.T) {
	if _, err := Source("bad.mc", "method main( {", Options{}); err == nil {
		t.Fatal("want a parse error")
	}
}
