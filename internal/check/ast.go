package check

import (
	"fmt"
	"strings"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
)

// astChecker walks the parsed program before lowering, mirroring the
// lowerer's call-resolution rules (variable → closure call, else
// generic function, else primitive) to diagnose arity and selector
// mismatches. Running on the AST matters: these mistakes are lowering
// errors, so the IR-level analyses never get to see them.
type astChecker struct {
	file    string
	h       *hier.Hierarchy
	globals map[string]bool
	scopes  []map[string]bool
	diags   []Diagnostic
}

// checkAST reports every arity/selector mismatch in the program.
func checkAST(file string, p *lang.Program, h *hier.Hierarchy) []Diagnostic {
	ac := &astChecker{file: file, h: h, globals: map[string]bool{}}
	for _, g := range p.Globals {
		ac.globals[g.Name] = true
	}
	for _, g := range p.Globals {
		ac.expr(g.Init)
	}
	for _, c := range p.Classes {
		for _, f := range c.Fields {
			if f.Init != nil {
				ac.expr(f.Init)
			}
		}
	}
	for _, m := range p.Methods {
		ac.push()
		for _, prm := range m.Params {
			ac.bind(prm.Name)
		}
		ac.block(m.Body)
		ac.pop()
	}
	return ac.diags
}

func (ac *astChecker) push() { ac.scopes = append(ac.scopes, map[string]bool{}) }
func (ac *astChecker) pop()  { ac.scopes = ac.scopes[:len(ac.scopes)-1] }

func (ac *astChecker) bind(name string) { ac.scopes[len(ac.scopes)-1][name] = true }

// isVariable reports whether name resolves to a local, formal or global
// — in which case a call through it is a closure call of unknowable
// arity, not a send.
func (ac *astChecker) isVariable(name string) bool {
	for i := len(ac.scopes) - 1; i >= 0; i-- {
		if ac.scopes[i][name] {
			return true
		}
	}
	return ac.globals[name]
}

func (ac *astChecker) report(pos lang.Pos, format string, args ...any) {
	ac.diags = append(ac.diags, Diagnostic{
		Check:    CheckArityMismatch,
		Severity: SevError,
		File:     ac.file,
		Line:     pos.Line,
		Col:      pos.Col,
		Message:  fmt.Sprintf(format, args...),
	})
}

// checkSelector diagnoses a send to sel with the given argument count
// when no matching generic function exists.
func (ac *astChecker) checkSelector(pos lang.Pos, sel string, arity int, receiverSyntax bool) {
	if _, ok := ac.h.GF(sel, arity); ok {
		return
	}
	if !receiverSyntax {
		if primArity, ok := ir.PrimSignature(sel); ok {
			if primArity != arity {
				ac.report(pos, "primitive %s takes %d arguments, got %d", sel, primArity, arity)
			}
			return
		}
	}
	if arities := ac.h.Arities(sel); len(arities) > 0 {
		ss := make([]string, len(arities))
		for i, a := range arities {
			ss[i] = fmt.Sprintf("%s/%d", sel, a)
		}
		ac.report(pos, "no method %s/%d; defined: %s", sel, arity, strings.Join(ss, ", "))
		return
	}
	ac.report(pos, "unknown selector %s/%d", sel, arity)
}

func (ac *astChecker) block(b *lang.Block) {
	if b == nil {
		return
	}
	ac.push()
	for _, s := range b.Stmts {
		ac.stmt(s)
	}
	ac.pop()
}

func (ac *astChecker) stmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.VarStmt:
		ac.expr(s.Init)
		ac.bind(s.Name)
	case *lang.ExprStmt:
		ac.expr(s.X)
	case *lang.AssignStmt:
		ac.expr(s.LHS)
		ac.expr(s.RHS)
	case *lang.ReturnStmt:
		if s.X != nil {
			ac.expr(s.X)
		}
	case *lang.WhileStmt:
		ac.expr(s.Cond)
		ac.block(s.Body)
	case *lang.IfStmt:
		ac.expr(s.Cond)
		ac.block(s.Then)
		ac.block(s.Else)
	}
}

func (ac *astChecker) expr(e lang.Expr) {
	switch e := e.(type) {
	case *lang.Call:
		for _, a := range e.Args {
			ac.expr(a)
		}
		if ac.isVariable(e.Name) {
			return // closure call; arity is a runtime property
		}
		ac.checkSelector(e.Pos, e.Name, len(e.Args), false)
	case *lang.SendSugar:
		ac.expr(e.Recv)
		for _, a := range e.Args {
			ac.expr(a)
		}
		ac.checkSelector(e.Pos, e.Sel, 1+len(e.Args), true)
	case *lang.FieldAccess:
		ac.expr(e.Recv)
	case *lang.ApplyExpr:
		ac.expr(e.Fn)
		for _, a := range e.Args {
			ac.expr(a)
		}
	case *lang.NewExpr:
		for _, a := range e.Args {
			ac.expr(a)
		}
	case *lang.FnExpr:
		ac.push()
		for _, p := range e.Params {
			ac.bind(p)
		}
		ac.block(e.Body)
		ac.pop()
	case *lang.UnaryExpr:
		ac.expr(e.X)
	case *lang.BinaryExpr:
		ac.expr(e.L)
		ac.expr(e.R)
	case *lang.BlockExpr:
		ac.block(e.Block)
	}
}
