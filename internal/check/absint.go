package check

import (
	"fmt"
	"strings"

	"selspec/internal/bits"
	"selspec/internal/hier"
	"selspec/internal/ir"
)

// This file is the checker's abstract interpreter: the same
// intraprocedural class analysis the optimizer runs before specializing
// (see internal/opt/analyze.go), re-targeted at diagnosis. Where the
// optimizer uses a send's argument class sets to statically bind and
// inline, the checker enumerates the concrete class tuples in their
// product and asks multi-method Lookup which ones fail — possible
// message-not-understood and ambiguous-dispatch findings. The analysis
// never mutates the shared IR (the trees it walks are the program's
// canonical lowered bodies, not clones).

// ainfo is the analysis lattice value: Top or a finite set of classes.
// Sets stored in ainfos are treated as immutable; joins allocate.
type ainfo struct {
	top bool
	set *bits.Set
}

func aTop() ainfo { return ainfo{top: true} }

func aExact(h *hier.Hierarchy, c *hier.Class) ainfo {
	s := bits.New(h.NumClasses())
	s.Add(c.ID)
	return ainfo{set: s}
}

func aJoin(a, b ainfo) ainfo {
	if a.top || b.top {
		return aTop()
	}
	return ainfo{set: bits.Union(a.set, b.set)}
}

// cframe is the analysis state of one lexical frame.
type cframe struct {
	infos    []ainfo
	poisoned map[int]bool // slots writable by escaped closures: always Top
	isMethod bool
}

func newCFrame(size int, isMethod bool) *cframe {
	f := &cframe{infos: make([]ainfo, size), poisoned: map[int]bool{}, isMethod: isMethod}
	for i := range f.infos {
		f.infos[i] = aTop()
	}
	return f
}

func (f *cframe) get(slot int) ainfo {
	if slot >= len(f.infos) || f.poisoned[slot] {
		return aTop()
	}
	return f.infos[slot]
}

func (f *cframe) set(slot int, in ainfo) {
	for slot >= len(f.infos) {
		f.infos = append(f.infos, aTop())
	}
	if f.poisoned[slot] {
		return
	}
	f.infos[slot] = in
}

func (f *cframe) snapshot() []ainfo {
	out := make([]ainfo, len(f.infos))
	copy(out, f.infos)
	return out
}

func (f *cframe) restore(s []ainfo) {
	f.infos = f.infos[:0]
	f.infos = append(f.infos, s...)
}

// progChecker holds the whole-program state of one analysis run.
type progChecker struct {
	file        string
	prog        *ir.Program
	h           *hier.Hierarchy
	opts        Options
	live        *bits.Set // instantiated classes, or nil
	universe    *bits.Set // all classes a value can have: AllClasses ∩ live
	globalInfos []ainfo
	diags       []Diagnostic
}

// liveOnly sharpens a class set with the instantiation analysis,
// allocating rather than mutating (the input may be a shared memo).
func (pc *progChecker) liveOnly(s *bits.Set) *bits.Set {
	if pc.live == nil {
		return s
	}
	return bits.Intersect(s, pc.live)
}

// computeGlobalInfos mirrors the optimizer's constant propagation for
// never-assigned globals.
func (pc *progChecker) computeGlobalInfos() {
	pc.globalInfos = make([]ainfo, len(pc.prog.Globals))
	for i := range pc.globalInfos {
		pc.globalInfos[i] = aTop()
	}
	for i, g := range pc.prog.Globals {
		if pc.prog.GlobalAssigned[i] {
			continue
		}
		pc.globalInfos[i] = pc.initInfo(g.Init, i)
	}
}

func (pc *progChecker) initInfo(nd ir.Node, before int) ainfo {
	h := pc.h
	switch nd := nd.(type) {
	case *ir.Const:
		return constAInfo(h, nd)
	case *ir.New:
		return aExact(h, nd.Class)
	case *ir.MakeClosure:
		return aExact(h, h.Builtin(hier.ClosureName))
	case *ir.Global:
		if nd.Slot < before && !pc.prog.GlobalAssigned[nd.Slot] {
			return pc.initInfo(pc.prog.Globals[nd.Slot].Init, nd.Slot)
		}
		return aTop()
	default:
		return aTop()
	}
}

func constAInfo(h *hier.Hierarchy, c *ir.Const) ainfo {
	switch c.Kind {
	case ir.KInt:
		return aExact(h, h.Builtin(hier.IntName))
	case ir.KStr:
		return aExact(h, h.Builtin(hier.StringName))
	case ir.KBool:
		return aExact(h, h.Builtin(hier.BoolName))
	default:
		return aExact(h, h.Builtin(hier.NilName))
	}
}

// bodyChecker analyzes one method body (or top-level initializer).
type bodyChecker struct {
	pc     *progChecker
	method *hier.Method // nil for top-level code
	frames []*cframe    // frames[0] is the method frame, when present
}

// checkBody analyzes a method body under class-hierarchy-derived formal
// information: each formal starts at the method's ApplicableClasses set
// when exact, else at the cone of its specializer — every tuple that
// can actually dispatch here lies inside that product.
func (pc *progChecker) checkBody(m *hier.Method) {
	src := pc.prog.Bodies[m]
	if src == nil {
		return
	}
	f := newCFrame(src.NumSlots, true)
	app, exact := pc.h.ApplicableClassesExact(m)
	if !exact {
		app = pc.h.GeneralTuple(m)
	}
	for i, s := range app {
		f.infos[i] = ainfo{set: pc.liveOnly(s)}
	}
	bc := &bodyChecker{pc: pc, method: m, frames: []*cframe{f}}
	bc.poisonClosureWrites(src.Code)
	bc.eval(src.Code)
}

// checkTopLevel analyzes a global or field initializer (no frame).
func (pc *progChecker) checkTopLevel(n ir.Node) {
	bc := &bodyChecker{pc: pc}
	bc.eval(n)
}

func (bc *bodyChecker) curFrame() *cframe {
	if len(bc.frames) == 0 {
		return nil
	}
	return bc.frames[len(bc.frames)-1]
}

func (bc *bodyChecker) frameAt(depth int) *cframe {
	idx := len(bc.frames) - 1 - depth
	if idx < 0 || idx >= len(bc.frames) {
		return nil
	}
	return bc.frames[idx]
}

// poisonClosureWrites marks slots that closures in the tree can write:
// such slots must be Top everywhere, because a closure may run at any
// later point. Identical to the optimizer's rule.
func (bc *bodyChecker) poisonClosureWrites(n ir.Node) {
	if len(bc.frames) == 0 {
		return
	}
	var walk func(n ir.Node, nesting int)
	walk = func(n ir.Node, nesting int) {
		ir.Walk(n, func(ch ir.Node) bool {
			switch ch := ch.(type) {
			case *ir.MakeClosure:
				walk(ch.Fn.Body, nesting+1)
				return false
			case *ir.SetLocal:
				if nesting > 0 && ch.Depth >= nesting {
					hops := ch.Depth - nesting
					if f := bc.frameAt(hops); f != nil {
						f.poisoned[ch.Slot] = true
					}
				}
			}
			return true
		})
	}
	walk(n, 0)
}

// degradeAssigned widens every current-frame slot assigned inside a
// loop to the join of its pre-loop info with a state-independent bound
// of each assigned right-hand side, so one pass over the loop body is
// sound (loop counters stay {Int} instead of collapsing to Top).
func (bc *bodyChecker) degradeAssigned(n ir.Node) {
	f := bc.curFrame()
	if f == nil {
		return
	}
	var walk func(n ir.Node, nesting int)
	walk = func(n ir.Node, nesting int) {
		ir.Walk(n, func(ch ir.Node) bool {
			switch ch := ch.(type) {
			case *ir.MakeClosure:
				walk(ch.Fn.Body, nesting+1)
				return false
			case *ir.SetLocal:
				if ch.Depth == nesting {
					if nesting == 0 {
						f.set(ch.Slot, aJoin(f.get(ch.Slot), bc.quickInfo(ch.X)))
					} else {
						f.set(ch.Slot, aTop())
					}
				}
			}
			return true
		})
	}
	walk(n, 0)
}

// quickInfo bounds an expression's classes without consulting analysis
// state, so the bound holds at every loop iteration.
func (bc *bodyChecker) quickInfo(n ir.Node) ainfo {
	h := bc.pc.h
	switch n := n.(type) {
	case *ir.Const:
		return constAInfo(h, n)
	case *ir.New:
		return aExact(h, n.Class)
	case *ir.MakeClosure:
		return aExact(h, h.Builtin(hier.ClosureName))
	case *ir.Bin:
		switch n.Op {
		case ir.OpLT, ir.OpLE, ir.OpGT, ir.OpGE, ir.OpEQ, ir.OpNE:
			return aExact(h, h.Builtin(hier.BoolName))
		case ir.OpAdd:
			li, ri := bc.quickInfo(n.L), bc.quickInfo(n.R)
			intC := h.Builtin(hier.IntName)
			strC := h.Builtin(hier.StringName)
			canBe := func(in ainfo, c *hier.Class) bool { return in.top || in.set.Has(c.ID) }
			s := bits.New(h.NumClasses())
			if canBe(li, intC) && canBe(ri, intC) {
				s.Add(intC.ID)
			}
			if canBe(li, strC) && canBe(ri, strC) {
				s.Add(strC.ID)
			}
			if s.Empty() {
				s.Add(intC.ID) // mismatched operands error at runtime
			}
			return ainfo{set: s}
		default:
			return aExact(h, h.Builtin(hier.IntName))
		}
	case *ir.Un:
		if n.Op == ir.OpNot {
			return aExact(h, h.Builtin(hier.BoolName))
		}
		return aExact(h, h.Builtin(hier.IntName))
	case *ir.And, *ir.Or:
		return aExact(h, h.Builtin(hier.BoolName))
	case *ir.PrimCall:
		return bc.primInfo(n.Prim)
	case *ir.Seq:
		if len(n.Nodes) == 0 {
			return aExact(h, h.Builtin(hier.NilName))
		}
		return bc.quickInfo(n.Nodes[len(n.Nodes)-1])
	case *ir.SetLocal:
		return bc.quickInfo(n.X)
	case *ir.If:
		ti := bc.quickInfo(n.Then)
		if n.Else == nil {
			return aJoin(ti, aExact(h, h.Builtin(hier.NilName)))
		}
		return aJoin(ti, bc.quickInfo(n.Else))
	default:
		return aTop()
	}
}

func (bc *bodyChecker) primInfo(p ir.Prim) ainfo {
	h := bc.pc.h
	switch p {
	case ir.PrimStr, ir.PrimSubstr, ir.PrimCharAt, ir.PrimChr, ir.PrimClassName:
		return aExact(h, h.Builtin(hier.StringName))
	case ir.PrimNewArray:
		return aExact(h, h.Builtin(hier.ArrayName))
	case ir.PrimALen, ir.PrimStrLen, ir.PrimOrd:
		return aExact(h, h.Builtin(hier.IntName))
	case ir.PrimSame:
		return aExact(h, h.Builtin(hier.BoolName))
	case ir.PrimPrint, ir.PrimPrintln, ir.PrimAbort:
		return aExact(h, h.Builtin(hier.NilName))
	default: // aget, aput: element type unknown
		return aTop()
	}
}

// fieldInfo bounds a field read from declared field types (enforced at
// every store). Unlike the optimizer this always applies — the checker
// wants the sharpest sound information regardless of configuration.
func (bc *bodyChecker) fieldInfo(name string, oi ainfo) ainfo {
	pc := bc.pc
	out := bits.New(pc.h.NumClasses())
	consider := func(c *hier.Class) bool {
		idx := c.FieldIndex(name)
		if idx < 0 {
			return true // read would fail at runtime: contributes no value
		}
		dt := c.Fields[idx].DeclType
		if dt == nil {
			return false // untyped field: anything
		}
		out.AddAll(dt.Cone())
		return true
	}
	if oi.top {
		for _, c := range pc.h.Classes() {
			if !consider(c) {
				return aTop()
			}
		}
		return ainfo{set: pc.liveOnly(out)}
	}
	ok := true
	oi.set.ForEach(func(id int) bool {
		ok = consider(pc.h.Classes()[id])
		return ok
	})
	if !ok {
		return aTop()
	}
	return ainfo{set: pc.liveOnly(out)}
}

// eval computes the class info of a node, updating frame state and
// checking every message send it encounters.
func (bc *bodyChecker) eval(n ir.Node) ainfo {
	h := bc.pc.h
	switch n := n.(type) {
	case *ir.Const:
		return constAInfo(h, n)

	case *ir.Local:
		if f := bc.frameAt(n.Depth); f != nil {
			return f.get(n.Slot)
		}
		return aTop()

	case *ir.SetLocal:
		xi := bc.eval(n.X)
		if f := bc.frameAt(n.Depth); f != nil {
			if n.Depth == 0 {
				f.set(n.Slot, xi)
			} else {
				f.set(n.Slot, aTop())
			}
		}
		return xi

	case *ir.Global:
		return bc.pc.globalInfos[n.Slot]

	case *ir.SetGlobal:
		return bc.eval(n.X)

	case *ir.GetField:
		oi := bc.eval(n.Obj)
		return bc.fieldInfo(n.Name, oi)

	case *ir.SetField:
		bc.eval(n.Obj)
		return bc.eval(n.X)

	case *ir.Seq:
		last := aExact(h, h.Builtin(hier.NilName))
		for _, ch := range n.Nodes {
			last = bc.eval(ch)
		}
		return last

	case *ir.If:
		bc.eval(n.Cond)
		f := bc.curFrame()
		var pre, post []ainfo
		if f != nil {
			pre = f.snapshot()
		}
		ti := bc.eval(n.Then)
		if f != nil {
			post = f.snapshot()
			f.restore(pre)
		}
		ei := aExact(h, h.Builtin(hier.NilName))
		if n.Else != nil {
			ei = bc.eval(n.Else)
		}
		if f != nil {
			for i := range f.infos {
				other := aTop()
				if i < len(post) {
					other = post[i]
				}
				f.infos[i] = aJoin(f.infos[i], other)
			}
		}
		return aJoin(ti, ei)

	case *ir.While:
		bc.degradeAssigned(n)
		bc.eval(n.Cond)
		bc.eval(n.Body)
		return aExact(h, h.Builtin(hier.NilName))

	case *ir.Return:
		if n.X != nil {
			bc.eval(n.X)
		}
		// Control never continues past a return: bottom (join identity).
		return ainfo{set: bits.New(h.NumClasses())}

	case *ir.New:
		for _, arg := range n.Args {
			bc.eval(arg)
		}
		return aExact(h, n.Class)

	case *ir.MakeClosure:
		bc.checkClosureBody(n.Fn)
		return aExact(h, h.Builtin(hier.ClosureName))

	case *ir.CallClosure:
		bc.eval(n.Fn)
		for _, arg := range n.Args {
			bc.eval(arg)
		}
		return aTop()

	case *ir.Send:
		infos := make([]ainfo, len(n.Args))
		for i, arg := range n.Args {
			infos[i] = bc.eval(arg)
		}
		bc.checkSend(n.Site, infos)
		return aTop()

	case *ir.StaticCall:
		for _, arg := range n.Args {
			bc.eval(arg)
		}
		return aTop()

	case *ir.VersionSelect:
		for _, arg := range n.Args {
			bc.eval(arg)
		}
		return aTop()

	case *ir.Bin:
		li := bc.eval(n.L)
		ri := bc.eval(n.R)
		switch n.Op {
		case ir.OpLT, ir.OpLE, ir.OpGT, ir.OpGE, ir.OpEQ, ir.OpNE:
			return aExact(h, h.Builtin(hier.BoolName))
		case ir.OpAdd:
			intC, strC := h.Builtin(hier.IntName), h.Builtin(hier.StringName)
			onlyInt := !li.top && li.set.SubsetOf(intC.Cone()) && !ri.top && ri.set.SubsetOf(intC.Cone())
			onlyStr := !li.top && li.set.SubsetOf(strC.Cone()) && !ri.top && ri.set.SubsetOf(strC.Cone())
			switch {
			case onlyInt:
				return aExact(h, intC)
			case onlyStr:
				return aExact(h, strC)
			default:
				s := bits.New(h.NumClasses())
				s.Add(intC.ID)
				s.Add(strC.ID)
				return ainfo{set: s}
			}
		default:
			return aExact(h, h.Builtin(hier.IntName))
		}

	case *ir.Un:
		bc.eval(n.X)
		if n.Op == ir.OpNot {
			return aExact(h, h.Builtin(hier.BoolName))
		}
		return aExact(h, h.Builtin(hier.IntName))

	case *ir.PrimCall:
		for _, arg := range n.Args {
			bc.eval(arg)
		}
		return bc.primInfo(n.Prim)

	case *ir.And:
		bc.eval(n.L)
		f := bc.curFrame()
		var pre []ainfo
		if f != nil {
			pre = f.snapshot()
		}
		bc.eval(n.R)
		if f != nil {
			// R may not execute; join with the pre-state.
			for i := range f.infos {
				if i < len(pre) {
					f.infos[i] = aJoin(f.infos[i], pre[i])
				}
			}
		}
		return aExact(h, h.Builtin(hier.BoolName))

	case *ir.Or:
		bc.eval(n.L)
		f := bc.curFrame()
		var pre []ainfo
		if f != nil {
			pre = f.snapshot()
		}
		bc.eval(n.R)
		if f != nil {
			for i := range f.infos {
				if i < len(pre) {
					f.infos[i] = aJoin(f.infos[i], pre[i])
				}
			}
		}
		return aExact(h, h.Builtin(hier.BoolName))
	}
	panic(fmt.Sprintf("check: unknown node %T", n))
}

// checkClosureBody analyzes a closure body at its creation point. Outer
// frames are visible only in guarded form: every slot Top except the
// enclosing method's never-assigned, unpoisoned formals, whose class
// sets are stable for the whole activation.
func (bc *bodyChecker) checkClosureBody(code *ir.ClosureCode) {
	saved := bc.frames
	guarded := make([]*cframe, len(saved))
	for i, f := range saved {
		g := newCFrame(len(f.infos), f.isMethod)
		if i == 0 && f.isMethod && bc.method != nil {
			src := bc.pc.prog.Bodies[bc.method]
			for slot := 0; slot < len(src.AssignedFormals) && slot < len(f.infos); slot++ {
				if !src.AssignedFormals[slot] && !f.poisoned[slot] {
					g.infos[slot] = f.infos[slot]
				}
			}
		}
		guarded[i] = g
	}
	cf := newCFrame(code.NumSlots, false)
	bc.frames = append(guarded, cf)
	bc.poisonClosureWrites(code.Body)
	bc.eval(code.Body)
	bc.frames = saved
}

// checkSend enumerates the concrete class tuples a send could dispatch
// with and diagnoses the ones multi-method Lookup rejects.
//
// One refinement keeps the flow-insensitive analysis useful on real
// programs: a failing tuple with Nil at a dispatched position whose set
// also admits other classes is skipped, not reported. Such Nils almost
// always flow from "not yet linked" fields and locals that the program
// guards with explicit nil tests the analysis cannot see (every linked
// structure in the benchmark suite does this). Nil is reported only
// when it is the *sole* possibility at a position — then no guard can
// save the send. Skipped tuples still suppress escalation to error.
func (bc *bodyChecker) checkSend(site *ir.CallSite, infos []ainfo) {
	pc := bc.pc
	h := pc.h
	g := site.GF
	dpos := g.DispatchedPositions()
	if len(dpos) == 0 {
		return // at most one method (duplicate specializers are rejected)
	}

	nilID := h.Builtin(hier.NilName).ID
	size := 1
	for _, p := range dpos {
		in := infos[p]
		if in.top || pc.universe.SubsetOf(in.set) {
			// Top, or a set no sharper than "every class in the program":
			// the analysis has no actual information about this position,
			// so reporting would flag every send on an unconstrained
			// formal. Nothing to prove either way.
			return
		}
		n := in.set.Len()
		if n == 0 {
			return // dead code
		}
		size *= n
		if size > pc.opts.productLimit() {
			return
		}
	}

	classes := make([]*hier.Class, g.Arity)
	for i := range classes {
		classes[i] = h.Any()
	}
	elems := make([][]int, len(dpos))
	for i, p := range dpos {
		elems[i] = infos[p].set.Elems()
	}

	var (
		successes, skipped int
		mnu, ambig         []string
		mnuCount, ambCount int
	)
	const maxExamples = 3
	render := func() string {
		parts := make([]string, g.Arity)
		for i := range parts {
			parts[i] = "_"
		}
		for _, p := range dpos {
			parts[p] = classes[p].Name
		}
		return fmt.Sprintf("%s(%s)", g.Name, strings.Join(parts, ", "))
	}

	idx := make([]int, len(dpos))
	for {
		for i, p := range dpos {
			classes[p] = h.Classes()[elems[i][idx[i]]]
		}
		_, derr := h.Lookup(g, classes...)
		switch {
		case derr == nil:
			successes++
		case derr.Ambiguous:
			ambCount++
			if len(ambig) < maxExamples {
				ambig = append(ambig, render())
			}
		default: // message not understood
			guardable := false
			for i, p := range dpos {
				if classes[p].ID == nilID && len(elems[i]) > 1 {
					guardable = true
					break
				}
			}
			if guardable {
				skipped++
			} else {
				mnuCount++
				if len(mnu) < maxExamples {
					mnu = append(mnu, render())
				}
			}
		}
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(elems[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}

	if mnuCount > 0 {
		sev := SevWarning
		if successes == 0 && ambCount == 0 && skipped == 0 {
			sev = SevError // every possible tuple fails: the send cannot succeed
		}
		pc.report(CheckPossibleMNU, sev, site.Pos,
			"no applicable method for %s: %s fails for %d of %d possible class tuple%s",
			g.Key(), exampleList(mnu, mnuCount), mnuCount, size, plural(size))
	}
	if ambCount > 0 {
		pc.report(CheckAmbiguous, SevWarning, site.Pos,
			"ambiguous dispatch for %s: %s has no unique most-specific method (%d of %d possible class tuple%s)",
			g.Key(), exampleList(ambig, ambCount), ambCount, size, plural(size))
	}
}

func exampleList(examples []string, total int) string {
	s := strings.Join(examples, ", ")
	if total > len(examples) {
		s += fmt.Sprintf(", ... (%d total)", total)
	}
	return s
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
