// Package check is the static-analysis layer of the reproduction: a
// reusable pass framework over the Mini-Cecil AST and lowered IR that
// proves facts about message sends before running anything, using the
// same class-hierarchy machinery (hier.ApplicableClasses, cones,
// multi-method lookup) the selective-specialization optimizer is built
// on, optionally sharpened by the instantiation (RTA-style) analysis
// from internal/opt.
//
// It ships five analyses, each with a stable check ID:
//
//	possible-mnu            a send with no applicable method for some
//	                        statically-possible class tuple
//	ambiguous-dispatch      a statically-possible class tuple with no
//	                        unique most-specific multi-method
//	dead-method             a method unreachable from the program's
//	                        entry points under RTA
//	arity-mismatch          a send whose argument count matches no
//	                        defined method or primitive
//	useless-specialization  a declared specialization whose class-set
//	                        tuple is empty or subsumed by overriders
//
// Diagnostics carry file:line:col positions, a severity and the check
// ID, and render deterministically in both text and JSON form.
package check

import (
	"fmt"
	"sort"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
)

// Severity classifies a diagnostic.
type Severity string

// The two severity levels: errors are faults the program cannot avoid
// hitting if the flagged code runs; warnings are possible faults or
// code-quality findings.
const (
	SevError   Severity = "error"
	SevWarning Severity = "warning"
)

// Stable check identifiers. The vm-* checks are computed over compiled
// bytecode by internal/vmcheck and merged into the same diagnostic
// stream; their IDs live here so the catalog stays the single list.
const (
	CheckPossibleMNU   = "possible-mnu"
	CheckAmbiguous     = "ambiguous-dispatch"
	CheckDeadMethod    = "dead-method"
	CheckArityMismatch = "arity-mismatch"
	CheckUselessSpec   = "useless-specialization"
	CheckVMUnreachable = "vm-unreachable-code"
	CheckVMDeadStore   = "vm-dead-store"
)

// Info describes one analysis in the catalog.
type Info struct {
	ID          string
	Description string
}

// Catalog lists every analysis the checker runs, in stable order — the
// single source of truth for documentation and the CLI.
func Catalog() []Info {
	return []Info{
		{CheckPossibleMNU, "send with no applicable method for some statically-possible class tuple"},
		{CheckAmbiguous, "statically-possible class tuple with no unique most-specific multi-method"},
		{CheckDeadMethod, "method unreachable from the program's entry points under RTA"},
		{CheckArityMismatch, "send whose argument count matches no defined method or primitive"},
		{CheckUselessSpec, "declared specialization whose class-set tuple is empty or subsumed"},
		{CheckVMUnreachable, "compiled bytecode no path from entry reaches (code after an unconditional return)"},
		{CheckVMDeadStore, "frame-slot write in compiled bytecode that no path ever reads back"},
	}
}

// Diagnostic is one finding, positioned and machine-readable.
type Diagnostic struct {
	Check    string   `json:"check"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", d.File, d.Line, d.Col, d.Severity, d.Message, d.Check)
}

// Options configures an analysis run.
type Options struct {
	// Instantiation sharpens every class set with the instantiation
	// (RTA-style) analysis from internal/opt: classes the program never
	// creates are excluded, exactly as the compiler's
	// InstantiationAnalysis option does.
	Instantiation bool
	// ProductLimit bounds the number of concrete class tuples
	// enumerated per send; 0 selects the default. Sends whose product
	// exceeds the limit are skipped (never falsely reported).
	ProductLimit int
}

const defaultProductLimit = 4096

func (o Options) productLimit() int {
	if o.ProductLimit <= 0 {
		return defaultProductLimit
	}
	return o.ProductLimit
}

// Sort orders diagnostics deterministically: by file, position, check
// ID, then message — stable across runs for golden-file CI diffs.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Source parses, builds and analyzes one Mini-Cecil compilation unit.
// The file name is used only to label diagnostics. Parse and
// class-hierarchy errors are returned as hard errors; everything the
// analyses find comes back as sorted diagnostics. When arity/selector
// mismatches make the program impossible to lower, the IR-level
// analyses are skipped and the mismatch diagnostics alone are
// returned.
func Source(file, src string, opts Options) ([]Diagnostic, error) {
	parsed, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	h, err := hier.Build(parsed)
	if err != nil {
		return nil, err
	}
	diags := checkAST(file, parsed, h)
	prog, err := ir.LowerWith(parsed, h)
	if err != nil {
		if len(diags) > 0 {
			Sort(diags)
			return diags, nil
		}
		return nil, err
	}
	diags = append(diags, Program(file, prog, opts)...)
	Sort(diags)
	return diags, nil
}

// Program runs the IR-level analyses over an already-lowered program:
// possible-mnu and ambiguous-dispatch via abstract interpretation of
// every method body, dead-method via RTA reachability, and
// useless-specialization via ApplicableClasses. The result is sorted.
func Program(file string, prog *ir.Program, opts Options) []Diagnostic {
	pc := &progChecker{
		file: file,
		prog: prog,
		h:    prog.H,
		opts: opts,
	}
	if opts.Instantiation {
		pc.live = opt.InstantiatedClasses(prog)
	}
	pc.universe = pc.liveOnly(prog.H.AllClasses())
	pc.computeGlobalInfos()

	r := analyzeReach(prog)
	pc.reportDeadMethods(r)
	pc.reportUselessSpecializations()

	// Walk every method body, then top-level code (global and field
	// initializers), in deterministic order.
	for _, m := range prog.H.Methods() {
		pc.checkBody(m)
	}
	for _, g := range prog.Globals {
		pc.checkTopLevel(g.Init)
	}
	for _, c := range prog.H.Classes() {
		for _, init := range prog.FieldInits[c] {
			if init != nil {
				pc.checkTopLevel(init)
			}
		}
	}

	Sort(pc.diags)
	return pc.diags
}

// report appends one diagnostic.
func (pc *progChecker) report(id string, sev Severity, pos lang.Pos, format string, args ...any) {
	pc.diags = append(pc.diags, Diagnostic{
		Check:    id,
		Severity: sev,
		File:     pc.File(),
		Line:     pos.Line,
		Col:      pos.Col,
		Message:  fmt.Sprintf(format, args...),
	})
}

// File returns the label diagnostics are filed under.
func (pc *progChecker) File() string { return pc.file }
