package check

import (
	"selspec/internal/bits"
	"selspec/internal/hier"
	"selspec/internal/ir"
)

// This file holds the two hierarchy-level analyses: dead-method, a
// rapid-type-analysis-style reachability fixpoint over (live classes ×
// called generic functions), and useless-specialization, a direct
// application of the paper's ApplicableClasses computation.

// reach is the result of the reachability fixpoint.
type reach struct {
	hasEntry  bool // a main/0 generic function exists
	reachable map[*hier.Method]bool
}

// analyzeReach computes which methods the program can ever invoke,
// RTA-style: starting from the main/0 methods and the global
// initializers, track the set of classes instantiated by reachable
// code and the set of generic functions it sends to; a method becomes
// reachable when its generic function is called and every specializer
// cone contains a live class. Field initializers join in only when
// their class becomes live.
func analyzeReach(p *ir.Program) reach {
	h := p.H
	r := reach{reachable: map[*hier.Method]bool{}}
	if p.Main == nil {
		return r // no entry point: reachability is undefined, report nothing
	}
	r.hasEntry = true

	live := bits.New(h.NumClasses())
	for _, n := range []string{hier.AnyName, hier.IntName, hier.BoolName,
		hier.StringName, hier.NilName, hier.ArrayName, hier.ClosureName} {
		live.Add(h.Builtin(n).ID)
	}
	called := map[*hier.GF]bool{}

	var scan func(body ir.Node)
	addClass := func(c *hier.Class) {
		if live.Has(c.ID) {
			return
		}
		live.Add(c.ID)
		for _, init := range p.FieldInits[c] {
			if init != nil {
				scan(init)
			}
		}
	}
	scan = func(body ir.Node) {
		ir.Walk(body, func(n ir.Node) bool {
			switch n := n.(type) {
			case *ir.New:
				addClass(n.Class)
			case *ir.Send:
				called[n.Site.GF] = true
			}
			return true
		})
	}

	// Globals always initialize, in order, before main runs.
	for _, g := range p.Globals {
		scan(g.Init)
	}

	markReachable := func(m *hier.Method) {
		if r.reachable[m] {
			return
		}
		r.reachable[m] = true
		if b := p.Bodies[m]; b != nil {
			scan(b.Code)
		}
	}
	for _, m := range p.Main.Methods {
		markReachable(m)
	}

	// applicable: some live class lies in every specializer's cone, so a
	// dispatch could select (or need) this method. Per-position is a
	// sound over-approximation of tuple existence.
	applicable := func(m *hier.Method) bool {
		for _, s := range m.Specs {
			if !s.Cone().Intersects(live) {
				return false
			}
		}
		return true
	}

	for changed := true; changed; {
		changed = false
		for g := range called {
			for _, m := range g.Methods {
				if !r.reachable[m] && applicable(m) {
					markReachable(m)
					changed = true
				}
			}
		}
	}
	return r
}

// reportDeadMethods flags every source method the reachability analysis
// proves the program can never invoke.
func (pc *progChecker) reportDeadMethods(r reach) {
	if !r.hasEntry {
		return
	}
	for _, m := range pc.h.Methods() {
		if r.reachable[m] || m.Decl == nil {
			continue
		}
		pc.report(CheckDeadMethod, SevWarning, m.Decl.Pos,
			"method %s is unreachable from main", m.Name())
	}
}

// reportUselessSpecializations flags declared specializations whose
// ApplicableClasses set is empty at some specialized position: no
// dispatch can ever select the method there, because every class in
// the specializer's cone either binds to an overriding method or (with
// instantiation analysis) is never created.
func (pc *progChecker) reportUselessSpecializations() {
	h := pc.h
	for _, m := range h.Methods() {
		if m.Decl == nil {
			continue
		}
		specialized := false
		for i := range m.Specs {
			if m.SpecializesOn(i, h) {
				specialized = true
				break
			}
		}
		if !specialized {
			continue
		}
		app, exact := h.ApplicableClassesExact(m)
		if !exact {
			continue // conservative fallback under-approximates: unreliable here
		}
		for i := range m.Specs {
			if !m.SpecializesOn(i, h) {
				continue
			}
			if !app[i].Empty() && pc.liveOnly(app[i]).Empty() {
				pc.report(CheckUselessSpec, SevWarning, m.Decl.Pos,
					"specialization %s is useless: no class that could invoke it at position %d (@%s) is ever instantiated",
					m.Name(), i+1, m.Specs[i].Name)
				continue
			}
			if app[i].Empty() {
				pc.report(CheckUselessSpec, SevWarning, m.Decl.Pos,
					"specialization %s is useless: every class in the cone of @%s at position %d binds to an overriding method",
					m.Name(), m.Specs[i].Name, i+1)
			}
		}
	}
}
