package check

import (
	"encoding/json"
	"fmt"
	"io"
)

// Format names accepted by the CLI's -format flag; the first is the
// default. Single source of truth for help text and validation.
func Formats() []string { return []string{"text", "json"} }

// WriteText renders diagnostics one per line as
// "file:line:col: severity: message [check-id]".
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders diagnostics as an indented JSON array — "[]" when
// there are none, so consumers always parse a list.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	out, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
