package check_test

// FuzzCheck drives the RAW analyzer entry point (not the pipeline
// boundary, which would contain — and so hide — crashers): on any
// parseable program the static analyzer must produce diagnostics or an
// ordinary error, never panic.

import (
	"testing"

	"selspec/internal/check"
	"selspec/internal/lang"
	"selspec/internal/programs"
)

func FuzzCheck(f *testing.F) {
	for _, b := range append(programs.All(), programs.Sets(), programs.Collections()) {
		f.Add(b.Source)
	}
	for _, s := range []string{
		"method main() { 1; }",
		"class A\nmethod f(x@A) { 1; }\nmethod main() { f(new A()); }",
		"class L\nclass R\nclass C isa L, R\nmethod amb(x@L) { 1; }\nmethod amb(x@R) { 2; }\nmethod main() { amb(new C()); }",
		"method main() { undefinedCall(1, 2); }",
		"class A\nmethod main() { (new A()).missingField; }",
		"method f() { f(); }\nmethod main() { f(); }",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if _, err := lang.Parse(src); err != nil {
			return // the analyzer's contract starts at parseable programs
		}
		for _, inst := range []bool{false, true} {
			if _, err := check.Source("fuzz.mc", src, check.Options{Instantiation: inst}); err != nil {
				_ = err // ordinary analysis errors are acceptable; panics are the bug
			}
		}
	})
}
