// Package driver ties the pipeline together: parse → lower → (profile
// with an instrumented Base run) → selective specialization → compile
// under a configuration → execute and measure. It is the programmatic
// API behind the CLIs, the benchmark harness and the examples.
package driver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"selspec/internal/hier"
	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/obs"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
	"selspec/internal/profile"
	"selspec/internal/specialize"
	"selspec/internal/vm"
)

// Pipeline holds a loaded program; one Pipeline can be compiled and run
// under many configurations (the call sites and method identities stay
// stable, so profiles carry across).
type Pipeline struct {
	Prog *ir.Program
	// Label names the compilation unit in contained-fault diagnostics
	// (benchmark name, file path, ...); empty for anonymous sources.
	Label string
}

// Load parses and lowers source code. Every stage runs inside the
// pipeline fault boundary: an internal panic in the front end comes
// back as a *pipeline.StageError instead of crashing the process.
func Load(src string) (*Pipeline, error) {
	return LoadNamed("", src)
}

// LoadNamed is Load with a unit label for fault diagnostics.
func LoadNamed(label, src string) (*Pipeline, error) {
	prog, err := pipeline.Load(label, src)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Prog: prog, Label: label}, nil
}

// MustLoad is Load for known-good embedded sources.
func MustLoad(src string) *Pipeline {
	p, err := Load(src)
	if err != nil {
		panic(fmt.Sprintf("driver.MustLoad: %v", err))
	}
	return p
}

// RunOptions controls one execution.
type RunOptions struct {
	// Overrides replaces named global variables after initialization
	// and before main() — how the harness switches between training and
	// measurement inputs without perturbing site/method identities.
	Overrides map[string]int64
	// CaptureOutput buffers print/println output into Result.Output.
	CaptureOutput bool
	// Profile, when non-nil, records the weighted call graph.
	Profile *profile.CallGraph
	// Mechanism selects the dispatch mechanism (default PIC).
	Mechanism interp.Mechanism
	// StepLimit guards against runaway programs (0 = unlimited).
	StepLimit uint64
	// DepthLimit bounds the Mini-Cecil call depth (0 =
	// interp.DefaultDepthLimit, negative = unlimited): deep guest
	// recursion raises a positioned RuntimeError instead of fatally
	// overflowing the Go stack.
	DepthLimit int
	// Timeout aborts the run after this wall-clock duration (0 = no
	// timeout) — the per-cell guard the experiment grid uses.
	Timeout time.Duration
	// Context, when non-nil, cancels the run when it is done; composed
	// with Timeout when both are set.
	Context context.Context
	// Metrics, when non-nil, receives the run's dispatch and
	// interpreter counters (PIC hits, GF-cache hits, sends, steps, ...).
	// Registration is idempotent, so many runs may share one registry.
	// Each Execute re-resolves the instruments under the registry lock;
	// hot callers should register once with NewInstruments and set
	// Instruments instead.
	Metrics *obs.Registry
	// Instruments supplies pre-registered instrument bundles (see
	// NewInstruments) and takes precedence over Metrics, keeping the
	// registry mutex entirely off the per-request path.
	Instruments *Instruments
	// Engine selects the execution tier (default EngineVM, with
	// automatic fallback to the tree interpreter when the bytecode
	// compiler does not support a construct).
	Engine Engine
	// Verify runs the bytecode verifier (internal/vmcheck) over every
	// compiled proc before execution, and — for the VM engine — again
	// after the run so lazily compiled procs are covered too. A verifier
	// finding aborts the run with a positioned *pipeline.StageError.
	// When the tree engine is selected the bytecode module is still
	// compiled and verified (skipped only if the compiler declines the
	// program entirely).
	Verify bool
}

// Instruments bundles the interpreter and dispatch-cache instruments
// pre-registered against one registry. A long-lived caller (the HTTP
// server) builds this once at construction and shares it across every
// Execute via RunOptions.Instruments, instead of paying ~10 registry
// mutex acquisitions per request to re-resolve the same shared series.
// Every field is backed by atomic counters, so one bundle may serve
// any number of concurrent runs.
type Instruments struct {
	Interp *interp.Metrics
	Lookup *hier.LookupMetrics
	// FallbackUnsupported/FallbackInternal count silent vm→tree engine
	// fallbacks by reason (series of selspec_vm_fallback_total): the
	// bytecode compiler declining a construct vs. any other failure to
	// build the machine. Without these the fallback is invisible — a
	// benchmark could quietly measure the tree tier.
	FallbackUnsupported *obs.Counter
	FallbackInternal    *obs.Counter
}

// NoteVMFallback records one vm→tree fallback, classified by cause.
func (ins *Instruments) NoteVMFallback(err error) {
	if ins == nil {
		return
	}
	var ce *vm.CompileError
	if errors.As(err, &ce) {
		ins.FallbackUnsupported.Inc()
	} else {
		ins.FallbackInternal.Inc()
	}
}

// NewInstruments registers (idempotently) the interpreter and
// GF-cache instruments in r. Returns nil on the nil registry — the
// disabled mode, which Execute treats as "no metrics".
func NewInstruments(r *obs.Registry) *Instruments {
	if r == nil {
		return nil
	}
	return &Instruments{
		Interp:              interp.NewMetrics(r),
		Lookup:              hier.NewLookupMetrics(r),
		FallbackUnsupported: r.Counter("selspec_vm_fallback_total", obs.Label{Key: "reason", Value: "unsupported-node"}),
		FallbackInternal:    r.Counter("selspec_vm_fallback_total", obs.Label{Key: "reason", Value: "internal"}),
	}
}

// Result reports one execution.
type Result struct {
	Config   opt.Config
	Engine   Engine // tier that actually ran (after any fallback)
	Value    string
	Output   string
	Counters interp.Counters
	Stats    opt.Stats
	Invoked  int    // distinct versions that ran
	Steps    uint64 // interpreter steps charged (engine-independent)
	Wall     time.Duration
}

// Execute runs an already-compiled program. The interpreter runs
// inside the pipeline fault boundary with the RunOptions resource
// guards applied: step limit, call-depth limit, and wall-clock
// timeout/cancellation. Mini-Cecil runtime errors come back as
// *interp.RuntimeError; interpreter-internal panics come back as
// *pipeline.StageError.
func Execute(c *opt.Compiled, ro RunOptions) (*Result, error) {
	in := interp.New(c)
	var buf bytes.Buffer
	if ro.CaptureOutput {
		in.Out = &buf
	}
	in.Mech = ro.Mechanism
	in.Profile = ro.Profile
	in.StepLimit = ro.StepLimit
	in.DepthLimit = ro.DepthLimit
	ins := ro.Instruments
	if ins == nil {
		ins = NewInstruments(ro.Metrics)
	}
	if ins != nil {
		in.Obs = ins.Interp
		if c.Prog.H != nil {
			c.Prog.H.SetLookupMetrics(ins.Lookup)
		}
	}

	ctx := ro.Context
	if ro.Timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ro.Timeout)
		defer cancel()
	}
	in.Ctx = ctx

	// Apply global overrides after initialization: Run initializes
	// globals itself, so we pre-validate names here and patch the
	// initializer values. Overrides mutate c, so concurrent Executes
	// (the parallel harness) must each use their own Compiled.
	if len(ro.Overrides) > 0 {
		saved, err := overrideGlobals(c, ro.Overrides)
		if err != nil {
			return nil, err
		}
		defer restoreGlobals(c, saved)
	}

	engine := ro.Engine
	var mach *vm.Machine
	if engine == EngineVM || ro.Verify {
		var merr error
		if mach, merr = vm.New(in); merr != nil {
			// Unsupported construct: fall back to the tree tier. vm.New
			// runs no guest code, so the fallback is side-effect free —
			// but counted, so a benchmark can never quietly measure the
			// wrong tier. Under Verify with the tree engine selected
			// there is simply nothing compiled to verify.
			if engine == EngineVM {
				ins.NoteVMFallback(merr)
				engine = EngineTree
			}
			mach = nil
		}
	}
	if ro.Verify && mach != nil {
		if verr := pipeline.VerifyMachine("", c.Opts.Config.String(), mach); verr != nil {
			return nil, verr
		}
	}

	start := time.Now()
	var val interp.Value
	var err error
	if engine == EngineVM {
		val, err = pipeline.RunVM("", c.Opts.Config.String(), mach)
	} else {
		val, err = pipeline.RunInterp("", c.Opts.Config.String(), in)
	}
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	// Lazy configurations compile procs mid-run; re-verify so every
	// specialized version that executed has been checked.
	if ro.Verify && engine == EngineVM {
		if verr := pipeline.VerifyMachine("", c.Opts.Config.String(), mach); verr != nil {
			return nil, verr
		}
	}
	return &Result{
		Config:   c.Opts.Config,
		Engine:   engine,
		Value:    val.String(),
		Output:   buf.String(),
		Counters: in.Counters,
		Stats:    c.Stats(),
		Invoked:  in.InvokedVersions(),
		Steps:    in.Steps(),
		Wall:     wall,
	}, nil
}

// overrideGlobals temporarily swaps the compiled initializers of the
// named globals for integer constants, returning the displaced
// initializers. The saved set stays on the caller's stack rather than
// in package state, so runs of different Compiled programs never
// contend.
func overrideGlobals(c *opt.Compiled, over map[string]int64) (map[int]ir.Node, error) {
	saved := map[int]ir.Node{}
	for name, val := range over {
		idx, ok := c.Prog.GlobalIdx[name]
		if !ok {
			return nil, fmt.Errorf("driver: override of unknown global %q", name)
		}
		saved[idx] = c.GlobalInits[idx]
		c.GlobalInits[idx] = &ir.Const{Kind: ir.KInt, Int: val}
	}
	return saved, nil
}

func restoreGlobals(c *opt.Compiled, saved map[int]ir.Node) {
	for idx, n := range saved {
		c.GlobalInits[idx] = n
	}
}

// CollectProfile compiles the program under Base with instrumentation
// and runs it on the training input, returning the weighted call graph
// (the paper gathers profiles the same way: an instrumented run of the
// unspecialized system, §3.7.2).
func (p *Pipeline) CollectProfile(ro RunOptions) (*profile.CallGraph, error) {
	c, err := pipeline.Compile(p.Label, p.Prog, opt.Options{Config: opt.Base})
	if err != nil {
		return nil, err
	}
	cg := profile.NewCallGraph(p.Prog)
	ro.Profile = cg
	if _, err := Execute(c, ro); err != nil {
		return nil, err
	}
	return cg, nil
}

// ConfigOptions describes one full configuration run.
type ConfigOptions struct {
	Config opt.Config
	// Train holds the training-input overrides for Selective's profile
	// run; Test the measurement input.
	Train map[string]int64
	Test  map[string]int64

	SpecParams specialize.Params
	OptExtra   func(*opt.Options) // optional tweaks (inlining ablation, lazy, ...)
	RunExtra   func(*RunOptions)  // optional tweaks (mechanism, step limit)
}

// RunConfig executes the complete pipeline for one configuration:
// for Selective it first collects a profile on the training input and
// runs the specialization algorithm; then it compiles and measures on
// the test input.
func (p *Pipeline) RunConfig(co ConfigOptions) (*Result, error) {
	oo := opt.Options{Config: co.Config}
	if co.Config == opt.CustMM {
		oo.Lazy = true
	}
	if co.Config == opt.Selective {
		ro := RunOptions{Overrides: co.Train, StepLimit: 0}
		if co.RunExtra != nil {
			co.RunExtra(&ro)
		}
		ro.Mechanism = interp.MechPIC
		cg, err := p.CollectProfile(ro)
		if err != nil {
			return nil, fmt.Errorf("profile run: %w", err)
		}
		res, err := pipeline.Specialize(p.Label, p.Prog, cg, co.SpecParams)
		if err != nil {
			return nil, err
		}
		oo.Specializations = res.Specializations
	}
	if co.OptExtra != nil {
		co.OptExtra(&oo)
	}
	c, err := pipeline.Compile(p.Label, p.Prog, oo)
	if err != nil {
		return nil, err
	}
	ro := RunOptions{Overrides: co.Test}
	if co.RunExtra != nil {
		co.RunExtra(&ro)
	}
	return Execute(c, ro)
}
