package driver

import (
	"strings"
	"testing"

	"selspec/internal/interp"
	"selspec/internal/obs"
	"selspec/internal/opt"
	"selspec/internal/specialize"
)

// setProgram is the paper's §2 motivating example: a Set hierarchy with
// overlaps/includes/do factored into an abstract superclass, driven by
// a loop performing many overlaps tests. inputSize is overridden by the
// harness to switch between training and measurement inputs.
const setProgram = `
var inputSize := 6;

class Set { field elems := nil; field n := 0; }
class ListSet isa Set
class HashSet isa Set
class BitSet isa Set { field bits := 0; }

method mkset(kind, cap) {
  var s := nil;
  if kind == 0 { s := new ListSet(newarray(cap), 0); }
  else { if kind == 1 { s := new HashSet(newarray(cap), 0); }
  else { s := new BitSet(newarray(cap), 0, 0); } }
  s;
}

method add(s@Set, e) {
  aput(s.elems, s.n, e);
  s.n := s.n + 1;
  s;
}

method do(s@ListSet, body) {
  var i := 0;
  while i < s.n { body(aget(s.elems, i)); i := i + 1; }
}
method do(s@HashSet, body) {
  var i := 0;
  while i < s.n { body(aget(s.elems, i)); i := i + 1; }
}
method do(s@BitSet, body) {
  var i := 0;
  while i < s.n { body(aget(s.elems, i)); i := i + 1; }
}

-- Default includes: iterate with a closure (non-local return).
method includes(s@Set, e) {
  s.do(fn(x) { if x == e { return true; } });
  false;
}
-- More efficient includes for HashSet/BitSet, as in the paper.
method includes(s@HashSet, e) {
  var i := 0;
  var found := false;
  while i < s.n { if aget(s.elems, i) == e { found := true; i := s.n; } else { i := i + 1; } }
  found;
}
method includes(s@BitSet, e) {
  var i := 0;
  var found := false;
  while i < s.n { if aget(s.elems, i) == e { found := true; i := s.n; } else { i := i + 1; } }
  found;
}

method size(s@Set) { s.n; }
method isEmpty(s@Set) { s.size() == 0; }

method overlaps(s1@Set, s2@Set) {
  if s1.isEmpty() || s2.isEmpty() { return false; }
  s1.do(fn(elem) { if s2.includes(elem) { return true; } });
  false;
}

method main() {
  var total := 0;
  var kinds := 3;
  var k1 := 0;
  while k1 < kinds {
    var k2 := 0;
    while k2 < kinds {
      var a := mkset(k1, inputSize);
      var b := mkset(k2, inputSize);
      var i := 0;
      while i < inputSize { a.add(i * 2); b.add(i * 3 + 1); i := i + 1; }
      var reps := 0;
      while reps < 40 {
        if a.overlaps(b) { total := total + 1; }
        reps := reps + 1;
      }
      k2 := k2 + 1;
    }
    k1 := k1 + 1;
  }
  println(str(total));
  total;
}
`

func runSet(t *testing.T, cfg opt.Config) *Result {
	t.Helper()
	p := MustLoad(setProgram)
	res, err := p.RunConfig(ConfigOptions{
		Config:     cfg,
		Train:      map[string]int64{"inputSize": 4},
		Test:       map[string]int64{"inputSize": 6},
		SpecParams: specialize.Params{Threshold: 50},
		RunExtra:   func(ro *RunOptions) { ro.CaptureOutput = true; ro.StepLimit = 50_000_000 },
	})
	if err != nil {
		t.Fatalf("%v under %v", err, cfg)
	}
	return res
}

func TestSetProgramAllConfigsAgree(t *testing.T) {
	base := runSet(t, opt.Base)
	if base.Value == "0" {
		t.Fatalf("degenerate program: no overlaps found")
	}
	for _, cfg := range []opt.Config{opt.Cust, opt.CustMM, opt.CHA, opt.Selective} {
		res := runSet(t, cfg)
		if res.Value != base.Value || res.Output != base.Output {
			t.Errorf("%v result %q/%q != Base %q/%q", cfg, res.Value, res.Output, base.Value, base.Output)
		}
	}
}

func TestSetProgramDispatchShape(t *testing.T) {
	results := map[opt.Config]*Result{}
	for _, cfg := range opt.Configs() {
		results[cfg] = runSet(t, cfg)
	}
	base := results[opt.Base].Counters.DynamicDispatches()
	sel := results[opt.Selective].Counters.DynamicDispatches()
	cha := results[opt.CHA].Counters.DynamicDispatches()
	cust := results[opt.Cust].Counters.DynamicDispatches()

	t.Logf("dispatches: Base=%d Cust=%d CustMM=%d CHA=%d Selective=%d",
		base, cust, results[opt.CustMM].Counters.DynamicDispatches(), cha, sel)
	t.Logf("cycles:     Base=%d Cust=%d CustMM=%d CHA=%d Selective=%d",
		results[opt.Base].Counters.Cycles, results[opt.Cust].Counters.Cycles,
		results[opt.CustMM].Counters.Cycles, results[opt.CHA].Counters.Cycles,
		results[opt.Selective].Counters.Cycles)

	if cust >= base {
		t.Errorf("Cust (%d) should eliminate dispatches vs Base (%d)", cust, base)
	}
	if cha >= base {
		t.Errorf("CHA (%d) should eliminate dispatches vs Base (%d)", cha, base)
	}
	if sel >= base {
		t.Errorf("Selective (%d) should eliminate dispatches vs Base (%d)", sel, base)
	}
	// The paper's headline: Selective eliminates the most dispatches.
	if sel > cust {
		t.Errorf("Selective (%d) should beat Cust (%d) on the Set benchmark", sel, cust)
	}
	// Selective's code space should stay modest vs customization.
	if results[opt.Selective].Stats.Versions >= results[opt.Cust].Stats.Versions*3 {
		t.Errorf("Selective versions (%d) unexpectedly dwarf Cust (%d)",
			results[opt.Selective].Stats.Versions, results[opt.Cust].Stats.Versions)
	}
}

func TestOverridesValidated(t *testing.T) {
	p := MustLoad(`var x := 1; method main() { x; }`)
	c, err := opt.Compile(p.Prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(c, RunOptions{Overrides: map[string]int64{"nope": 3}}); err == nil ||
		!strings.Contains(err.Error(), "unknown global") {
		t.Fatalf("err = %v", err)
	}
	res, err := Execute(c, RunOptions{Overrides: map[string]int64{"x": 41}})
	if err != nil || res.Value != "41" {
		t.Fatalf("override failed: %v %v", res, err)
	}
	// Restored afterwards.
	res, err = Execute(c, RunOptions{})
	if err != nil || res.Value != "1" {
		t.Fatalf("restore failed: %v %v", res, err)
	}
}

func TestSharedInstrumentsAccumulate(t *testing.T) {
	if NewInstruments(nil) != nil {
		t.Fatal("NewInstruments(nil) should be nil (disabled mode)")
	}
	p := MustLoad(setProgram)
	c, err := opt.Compile(p.Prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ins := NewInstruments(reg)
	// Two runs through one pre-registered bundle — the server's shape —
	// must feed the same series Metrics-based registration would.
	for i := 0; i < 2; i++ {
		if _, err := Execute(c, RunOptions{Instruments: ins, StepLimit: 50_000_000}); err != nil {
			t.Fatal(err)
		}
	}
	two := reg.Snapshot().Counters["selspec_interp_sends_total"]
	if two == 0 {
		t.Fatal("shared instruments recorded no sends")
	}
	if _, err := Execute(c, RunOptions{Metrics: reg, StepLimit: 50_000_000}); err != nil {
		t.Fatal(err)
	}
	three := reg.Snapshot().Counters["selspec_interp_sends_total"]
	if three != two/2*3 {
		t.Errorf("Metrics path diverged from Instruments path: 2 runs = %d sends, 3 runs = %d", two, three)
	}
}

func TestMechanismsAgree(t *testing.T) {
	p := MustLoad(setProgram)
	c, err := opt.Compile(p.Prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	var vals []string
	for _, mech := range []interp.Mechanism{interp.MechPIC, interp.MechGlobal, interp.MechTables} {
		res, err := Execute(c, RunOptions{Mechanism: mech, StepLimit: 50_000_000})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		vals = append(vals, res.Value)
	}
	if vals[0] != vals[1] || vals[1] != vals[2] {
		t.Fatalf("mechanisms disagree: %v", vals)
	}
}
