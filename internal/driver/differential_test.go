package driver

import (
	"testing"

	"selspec/internal/obs"
	"selspec/internal/opt"
	"selspec/internal/programs"
)

// TestDifferentialAllProgramsAllConfigs is the end-to-end differential
// golden test: every embedded program must produce byte-identical
// results — final value AND captured print output — under every
// optimizing configuration, because specialization is a pure
// performance transformation. Any divergence means a specialized
// version computed something different from the method it replaced.
//
// Training-size inputs keep the full programs × configs grid fast while
// still exercising every dispatch mechanism and specialized version.
func TestDifferentialAllProgramsAllConfigs(t *testing.T) {
	for _, b := range programs.Registry() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			p, err := LoadNamed(b.Name, b.Source)
			if err != nil {
				t.Fatalf("load %s: %v", b.Name, err)
			}
			run := func(cfg opt.Config) (string, string) {
				t.Helper()
				res, err := p.RunConfig(ConfigOptions{
					Config: cfg,
					Train:  b.Train,
					Test:   b.Train, // training-size measurement input
					RunExtra: func(ro *RunOptions) {
						ro.CaptureOutput = true
						ro.StepLimit = 500_000_000
					},
				})
				if err != nil {
					t.Fatalf("%s under %v: %v", b.Name, cfg, err)
				}
				return res.Value, res.Output
			}

			cfgs := opt.Configs()
			baseVal, baseOut := run(cfgs[0])
			if cfgs[0] != opt.Base {
				t.Fatalf("config order changed: first config is %v, want Base", cfgs[0])
			}
			for _, cfg := range cfgs[1:] {
				val, out := run(cfg)
				if val != baseVal {
					t.Errorf("%s: value diverged under %v: got %q, Base %q", b.Name, cfg, val, baseVal)
				}
				if out != baseOut {
					t.Errorf("%s: output diverged under %v (%d bytes vs Base %d bytes)",
						b.Name, cfg, len(out), len(baseOut))
				}
			}
		})
	}
}

// TestDifferentialWithMetricsAttached reruns one program's grid with a
// live registry attached, proving observation does not perturb results
// (the counters only watch) and that the per-run flush accumulates.
func TestDifferentialWithMetricsAttached(t *testing.T) {
	b, ok := programs.ByName("Sets")
	if !ok {
		t.Fatal("Sets program missing from registry")
	}
	p, err := LoadNamed(b.Name, b.Source)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var vals []string
	for _, cfg := range opt.Configs() {
		res, err := p.RunConfig(ConfigOptions{
			Config: cfg,
			Train:  b.Train,
			Test:   b.Train,
			RunExtra: func(ro *RunOptions) {
				ro.CaptureOutput = true
				ro.Metrics = reg
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		vals = append(vals, res.Value+"\n"+res.Output)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[0] {
			t.Errorf("config %v diverged from Base with metrics attached", opt.Configs()[i])
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["selspec_interp_sends_total"] == 0 {
		t.Error("interp send counter never flushed despite instrumented runs")
	}
	if snap.Counters["selspec_interp_steps_total"] == 0 {
		t.Error("interp step counter never flushed despite instrumented runs")
	}
}
