package driver

// Property test: randomly generated Mini-Cecil programs must compute
// identical results and output under every compiler configuration.
// This is the broadest soundness check of the optimizer, the
// specializer and the version-selection machinery: any unsound static
// binding, bad inline substitution, wrong closure capture, or invalid
// version choice shows up as a divergence.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"selspec/internal/opt"
	"selspec/internal/specialize"
)

// progGen generates random but guaranteed-terminating programs:
// methods only send generic functions with strictly larger indexes, so
// the call graph is acyclic; there are no loops in generated bodies.
type progGen struct {
	rng        *rand.Rand
	classes    []string
	numGFs     int
	gfArity    []int
	b          strings.Builder
	depthLimit int
}

func newProgGen(seed int64) *progGen {
	g := &progGen{
		rng:        rand.New(rand.NewSource(seed)),
		numGFs:     5 + rand.New(rand.NewSource(seed^0x5a5a)).Intn(5),
		depthLimit: 3,
	}
	n := 3 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		g.classes = append(g.classes, fmt.Sprintf("K%d", i))
	}
	return g
}

func (g *progGen) class() string { return g.classes[g.rng.Intn(len(g.classes))] }

// expr emits a random integer-valued expression. params are the
// in-scope formal names known to hold objects; iparams hold integers.
func (g *progGen) expr(depth, gfMin int, objParams, intParams []string) string {
	r := g.rng
	if depth <= 0 {
		if len(intParams) > 0 && r.Intn(2) == 0 {
			return intParams[r.Intn(len(intParams))]
		}
		return fmt.Sprintf("%d", r.Intn(20))
	}
	switch k := r.Intn(14); {
	case k < 3: // arithmetic
		op := []string{"+", "-", "*"}[r.Intn(3)]
		return fmt.Sprintf("(%s %s %s)",
			g.expr(depth-1, gfMin, objParams, intParams), op,
			g.expr(depth-1, gfMin, objParams, intParams))
	case k < 5 && gfMin < g.numGFs: // send to a later GF
		gf := gfMin + r.Intn(g.numGFs-gfMin)
		var args []string
		for i := 0; i < g.gfArity[gf]; i++ {
			if i == 0 || r.Intn(3) > 0 {
				args = append(args, g.objExpr(objParams))
			} else {
				args = append(args, g.objExpr(objParams))
			}
		}
		return fmt.Sprintf("f%d(%s)", gf, strings.Join(args, ", "))
	case k < 6: // field read of a fresh object
		return fmt.Sprintf("(new %s(%d)).v", g.class(), r.Intn(9))
	case k < 7: // conditional (parenthesized if-expression)
		return fmt.Sprintf("(if %s < %s { %s; } else { %s; })",
			g.expr(depth-1, gfMin, objParams, intParams),
			g.expr(depth-1, gfMin, objParams, intParams),
			g.expr(depth-1, gfMin, objParams, intParams),
			g.expr(depth-1, gfMin, objParams, intParams))
	case k < 8 && len(objParams) > 0: // field read of a param
		return fmt.Sprintf("%s.v", objParams[r.Intn(len(objParams))])
	case k < 9: // immediately-invoked closure (captures params)
		return fmt.Sprintf("(fn(z) { z + %s; })(%d)",
			g.expr(depth-1, gfMin, objParams, intParams), r.Intn(9))
	case k < 10: // bounded loop accumulating an expression
		return fmt.Sprintf(
			"(if true { var li := 0; var lacc := 0; while li < %d { lacc := lacc + %s; li := li + 1; } lacc; })",
			1+r.Intn(4), g.expr(depth-1, gfMin, objParams, intParams))
	case k < 11 && len(objParams) > 0: // field write, then read back
		p := objParams[r.Intn(len(objParams))]
		return fmt.Sprintf("(if true { %s.v := %s; %s.v; })",
			p, g.expr(depth-1, gfMin, objParams, intParams), p)
	default:
		return fmt.Sprintf("%d", r.Intn(50))
	}
}

// objExpr emits an expression guaranteed to evaluate to an object.
func (g *progGen) objExpr(objParams []string) string {
	if len(objParams) > 0 && g.rng.Intn(2) == 0 {
		return objParams[g.rng.Intn(len(objParams))]
	}
	return fmt.Sprintf("new %s(%d)", g.class(), g.rng.Intn(9))
}

func (g *progGen) generate() string {
	r := g.rng
	// Class DAG: Ki may inherit from earlier classes. Every class gets
	// one Int field v via the root.
	fmt.Fprintf(&g.b, "class %s { field v : Int := 0; }\n", g.classes[0])
	for i := 1; i < len(g.classes); i++ {
		if r.Intn(3) == 0 {
			// An independent root: declares its own v so construction
			// is uniform across all classes.
			fmt.Fprintf(&g.b, "class %s { field v : Int := 0; }\n", g.classes[i])
		} else {
			fmt.Fprintf(&g.b, "class %s isa %s\n", g.classes[i], g.classes[r.Intn(i)])
		}
	}

	// Generic functions f0..fn with 1–3 methods each.
	g.gfArity = make([]int, g.numGFs)
	for i := range g.gfArity {
		g.gfArity[i] = 1 + r.Intn(2)
	}
	for i := 0; i < g.numGFs; i++ {
		// A catch-all method (specialized on Any everywhere) keeps the
		// message-not-understood rate low; specific overriders follow.
		{
			var params, objParams []string
			for p := 0; p < g.gfArity[i]; p++ {
				name := fmt.Sprintf("a%d", p)
				params = append(params, name)
				objParams = append(objParams, name)
			}
			fmt.Fprintf(&g.b, "method f%d(%s) { %s; }\n",
				i, strings.Join(params, ", "),
				g.expr(g.depthLimit, i+1, objParams, nil))
		}
		seen := map[string]bool{}
		nm := 1 + r.Intn(3)
		for m := 0; m < nm; m++ {
			specs := make([]string, g.gfArity[i])
			for p := range specs {
				specs[p] = g.class()
			}
			key := strings.Join(specs, "/")
			if seen[key] {
				continue
			}
			seen[key] = true
			var params []string
			var objParams []string
			for p := range specs {
				name := fmt.Sprintf("a%d", p)
				params = append(params, fmt.Sprintf("%s@%s", name, specs[p]))
				objParams = append(objParams, name)
			}
			fmt.Fprintf(&g.b, "method f%d(%s) { %s; }\n",
				i, strings.Join(params, ", "),
				g.expr(g.depthLimit, i+1, objParams, nil))
		}
	}

	// main: call f0 with a spread of classes, accumulate, print.
	g.b.WriteString("method main() {\n  var acc := 0;\n")
	for k := 0; k < 12; k++ {
		var args []string
		for p := 0; p < g.gfArity[0]; p++ {
			args = append(args, fmt.Sprintf("new %s(%d)", g.class(), r.Intn(9)))
		}
		// Sends may fail dispatch (not-understood/ambiguous) — that is
		// part of the property: all configs must fail identically. But
		// to keep most programs running, route through f0's specializer
		// classes often enough by retrying class choice.
		fmt.Fprintf(&g.b, "  acc := acc * 31 + f%d(%s);\n", 0, strings.Join(args, ", "))
	}
	g.b.WriteString("  println(str(acc));\n  acc;\n}\n")
	return g.b.String()
}

// runProgram compiles and runs src under cfg, returning a canonical
// outcome string (value+output, or the error text). rta additionally
// enables the §6 return-type-analysis extension.
func runProgram(t *testing.T, src string, cfg opt.Config, rta bool) string {
	t.Helper()
	p, err := Load(src)
	if err != nil {
		t.Fatalf("generated program does not load: %v\n%s", err, src)
	}
	res, err := p.RunConfig(ConfigOptions{
		Config:     cfg,
		SpecParams: specialize.Params{Threshold: -1}, // specialize everything
		OptExtra: func(oo *opt.Options) {
			oo.ReturnTypeAnalysis = rta
			oo.InstantiationAnalysis = rta // exercise both extensions together
		},
		RunExtra: func(ro *RunOptions) {
			ro.CaptureOutput = true
			ro.StepLimit = 5_000_000
		},
	})
	if err != nil {
		return "error: " + err.Error()
	}
	return res.Value + "\n" + res.Output
}

func TestRandomProgramsAllConfigsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ran, errored := 0, 0
	for seed := int64(1); seed <= 80; seed++ {
		src := newProgGen(seed).generate()
		base := runProgram(t, src, opt.Base, false)
		variants := []struct {
			cfg opt.Config
			rta bool
		}{
			{opt.Cust, false}, {opt.CustMM, false}, {opt.CHA, false},
			{opt.Selective, false}, {opt.CHA, true}, {opt.Selective, true},
		}
		if strings.HasPrefix(base, "error: ") {
			errored++
			// Errors must still be consistent across configurations
			// (same failure, since evaluation order is preserved).
			for _, v := range variants {
				got := runProgram(t, src, v.cfg, v.rta)
				if !strings.HasPrefix(got, "error: ") {
					t.Fatalf("seed %d: Base errored (%s) but %v/rta=%t succeeded (%s)\n%s",
						seed, base, v.cfg, v.rta, got, src)
				}
			}
			continue
		}
		ran++
		for _, v := range variants {
			if got := runProgram(t, src, v.cfg, v.rta); got != base {
				t.Fatalf("seed %d: %v/rta=%t diverges\nBase: %q\ngot:  %q\nprogram:\n%s",
					seed, v.cfg, v.rta, base, got, src)
			}
		}
	}
	t.Logf("random programs: %d ran to completion, %d errored consistently", ran, errored)
	if ran < 20 {
		t.Fatalf("too few successful random programs (%d) — generator broken?", ran)
	}
}
