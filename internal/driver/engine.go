package driver

import (
	"fmt"
	"strings"
)

// Engine selects the execution tier a run uses. The bytecode VM is the
// default: it executes compiled register code at a multiple of the tree
// tier's speed while producing byte-identical output, errors and
// dispatch counters (the differential suites enforce this). The tree
// interpreter remains available as the differential-testing oracle and
// as the automatic fallback when the bytecode compiler meets a
// construct it does not support.
type Engine int

// Execution engines. The zero value is EngineVM so RunOptions defaults
// to the fast tier.
const (
	EngineVM Engine = iota
	EngineTree
)

var engineNames = [...]string{"vm", "tree"}

func (e Engine) String() string {
	if int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// EngineNames returns the valid engine names — the single source of
// truth for CLI help text and error messages.
func EngineNames() []string { return append([]string(nil), engineNames[:]...) }

// ParseEngine resolves an engine name (as printed by String). The empty
// string selects the default engine (vm).
func ParseEngine(s string) (Engine, error) {
	if s == "" {
		return EngineVM, nil
	}
	for i, n := range engineNames {
		if n == s {
			return Engine(i), nil
		}
	}
	return 0, fmt.Errorf("driver: unknown engine %q (valid: %s)", s, strings.Join(engineNames[:], ", "))
}
