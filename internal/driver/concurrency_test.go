package driver

import (
	"runtime"
	"sync"
	"testing"

	"selspec/internal/interp"
	"selspec/internal/opt"
)

// TestConcurrentExecutePIC runs PIC-backed interpretation of one shared
// eagerly-compiled program from many goroutines at once. Each goroutine
// owns its Interp (Execute creates one per call); the shared pieces —
// the hierarchy's dispatch caches, the compiled method bodies — must be
// safe for concurrent readers. Run under -race this covers the
// lookup-cache and compile-side synchronization end to end.
func TestConcurrentExecutePIC(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // the CI box may have 1 CPU; force real parallelism
	defer runtime.GOMAXPROCS(prev)

	p := MustLoad(setProgram)
	for _, cfg := range []opt.Config{opt.Base, opt.CHA} { // eager configs share a Compiled safely
		c, err := opt.Compile(p.Prog, opt.Options{Config: cfg})
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		ref, err := Execute(c, RunOptions{Mechanism: interp.MechPIC, StepLimit: 50_000_000})
		if err != nil {
			t.Fatalf("%v: reference run: %v", cfg, err)
		}

		const goroutines, rounds = 8, 3
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		totals := make([]interp.Counters, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					res, err := Execute(c, RunOptions{Mechanism: interp.MechPIC, StepLimit: 50_000_000})
					if err != nil {
						errs <- err
						return
					}
					if res.Value != ref.Value {
						t.Errorf("%v: goroutine %d got %q, want %q", cfg, g, res.Value, ref.Value)
						return
					}
					totals[g].Add(res.Counters)
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%v: %v", cfg, err)
		}

		// The interpreter is deterministic, so aggregated counters must be
		// exact multiples of the reference run's.
		var sum interp.Counters
		for _, c := range totals {
			sum.Add(c)
		}
		if want := ref.Counters.Dispatches * goroutines * rounds; sum.Dispatches != want {
			t.Errorf("%v: aggregated dispatches = %d, want %d", cfg, sum.Dispatches, want)
		}
		if want := ref.Counters.Cycles * goroutines * rounds; sum.Cycles != want {
			t.Errorf("%v: aggregated cycles = %d, want %d", cfg, sum.Cycles, want)
		}
	}
}
