package driver

import (
	"strings"
	"testing"

	"selspec/internal/opt"
	"selspec/internal/specialize"
)

func TestLoadErrors(t *testing.T) {
	cases := []struct{ src, sub string }{
		{`method f( { 1; }`, "expected"},                   // parse error
		{`method f(x@Nope) { 1; }`, "unknown specializer"}, // hierarchy error
		{`method f() { zzz; }`, "undefined variable"},      // lowering error
	}
	for _, c := range cases {
		_, err := Load(c.src)
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Load(%q) err = %v, want %q", c.src, err, c.sub)
		}
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLoad on bad source did not panic")
		}
	}()
	MustLoad(`broken(`)
}

func TestRunConfigProfileRunFails(t *testing.T) {
	// The training run aborts: RunConfig must surface the error with
	// context rather than compiling with a partial profile.
	p := MustLoad(`
var crash := 1;
method main() { if crash == 1 { abort("training boom"); } 0; }
`)
	_, err := p.RunConfig(ConfigOptions{
		Config: opt.Selective,
		Train:  map[string]int64{"crash": 1},
		Test:   map[string]int64{"crash": 0},
	})
	if err == nil || !strings.Contains(err.Error(), "profile run") || !strings.Contains(err.Error(), "training boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunConfigSucceedsWhenOnlyTestInputDiffers(t *testing.T) {
	p := MustLoad(`
var crash := 1;
method main() { if crash == 1 { abort("boom"); } 42; }
`)
	res, err := p.RunConfig(ConfigOptions{
		Config:     opt.Selective,
		Train:      map[string]int64{"crash": 0},
		Test:       map[string]int64{"crash": 0},
		SpecParams: specialize.Params{Threshold: -1},
	})
	if err != nil || res.Value != "42" {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestExecuteRuntimeErrorSurfaced(t *testing.T) {
	p := MustLoad(`method main() { abort("kaput"); }`)
	c, err := opt.Compile(p.Prog, opt.Options{Config: opt.Base})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Execute(c, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectProfileOnErroringProgram(t *testing.T) {
	p := MustLoad(`method main() { abort("nope"); }`)
	if _, err := p.CollectProfile(RunOptions{}); err == nil {
		t.Fatal("expected error")
	}
}
