package programs

// Compiler is an optimizing compiler over an expression AST (Table 2:
// "Compiler, 37,500 lines, optimizing compiler for the Cecil language"
// — here a compiler of the same shape at reduced size): dispatched
// constant folding and algebraic simplification through smart
// constructors (which pass their formals into dispatched predicate
// sends — prime specialization targets), structural comparison as a
// multi-method, and stack-machine code generation.
func Compiler() Benchmark {
	return Benchmark{
		Name:        "Compiler",
		Description: "Optimizing compiler for an expression language",
		PaperLines:  37500,
		Source:      compilerSrc,
		Train:       map[string]int64{"ccDepth": 6, "ccRounds": 300},
		Test:        map[string]int64{"ccDepth": 7, "ccRounds": 60},
	}
}

const compilerSrc = `
-- Compiler: fold/simplify/codegen passes over an expression AST, each
-- pass a generic function dispatched on the node class, with smart
-- constructors doing the algebraic rewriting.

var ccDepth := 6;
var ccRounds := 25;

class Node
class NumNode isa Node { field val : Int := 0; }
class VarNode isa Node { field idx : Int := 0; }
class BinNode isa Node { field l : Node := nil; field r : Node := nil; }
class AddNode isa BinNode
class SubNode isa BinNode
class MulNode isa BinNode
class MinNode isa BinNode
class NegNode isa Node { field x : Node := nil; }
class LetNode isa Node { field idx : Int := 0; field bound : Node := nil; field body : Node := nil; }

-- Dispatched predicates over nodes.
method isNum(n@Node) { false; }
method isNum(n@NumNode) { true; }
method numVal(n@Node) { abort("numVal on non-constant"); }
method numVal(n@NumNode) { n.val; }
method isZero(n@Node) { false; }
method isZero(n@NumNode) { n.val == 0; }
method isOne(n@Node) { false; }
method isOne(n@NumNode) { n.val == 1; }

-- Structural equality, a multi-method on node pairs.
method sameExpr(a@Node, b@Node) { false; }
method sameExpr(a@NumNode, b@NumNode) { a.val == b.val; }
method sameExpr(a@VarNode, b@VarNode) { a.idx == b.idx; }
method sameExpr(a@AddNode, b@AddNode) { sameExpr(a.l, b.l) && sameExpr(a.r, b.r); }
method sameExpr(a@SubNode, b@SubNode) { sameExpr(a.l, b.l) && sameExpr(a.r, b.r); }
method sameExpr(a@MulNode, b@MulNode) { sameExpr(a.l, b.l) && sameExpr(a.r, b.r); }
method sameExpr(a@MinNode, b@MinNode) { sameExpr(a.l, b.l) && sameExpr(a.r, b.r); }
method sameExpr(a@NegNode, b@NegNode) { sameExpr(a.x, b.x); }

-- Size metric.
method nodeSize(n@Node) { 1; }
method nodeSize(n@BinNode) { 1 + n.l.nodeSize() + n.r.nodeSize(); }
method nodeSize(n@NegNode) { 1 + n.x.nodeSize(); }
method nodeSize(n@LetNode) { 1 + n.bound.nodeSize() + n.body.nodeSize(); }

-- Smart constructors: every predicate send below passes a formal
-- through, so the specializer can produce per-operand-class versions
-- in which the predicates statically bind and inline away.
method mkAdd(l@Node, r@Node) {
  if l.isNum() && r.isNum() { return new NumNode(l.numVal() + r.numVal()); }
  if l.isZero() { return r; }
  if r.isZero() { return l; }
  new AddNode(l, r);
}
method mkSub(l@Node, r@Node) {
  if l.isNum() && r.isNum() { return new NumNode(l.numVal() - r.numVal()); }
  if r.isZero() { return l; }
  if sameExpr(l, r) { return new NumNode(0); }
  new SubNode(l, r);
}
method mkMul(l@Node, r@Node) {
  if l.isNum() && r.isNum() { return new NumNode(l.numVal() * r.numVal()); }
  if l.isOne() { return r; }
  if r.isOne() { return l; }
  if l.isZero() { return l; }
  if r.isZero() { return r; }
  new MulNode(l, r);
}
method mkMin(l@Node, r@Node) {
  if l.isNum() && r.isNum() {
    if l.numVal() < r.numVal() { return l; }
    return r;
  }
  if sameExpr(l, r) { return l; }
  new MinNode(l, r);
}
method negOf(n@Node) {
  if n.isNum() { return new NumNode(0 - n.numVal()); }
  new NegNode(n);
}
method negOf(n@NegNode) { n.x; }

-- The optimization pass, dispatched per node kind; applied twice (to a
-- fixpoint for these rules).
method simp(n@Node) { n; }
method simp(n@AddNode) { mkAdd(n.l.simp(), n.r.simp()); }
method simp(n@SubNode) { mkSub(n.l.simp(), n.r.simp()); }
method simp(n@MulNode) { mkMul(n.l.simp(), n.r.simp()); }
method simp(n@MinNode) { mkMin(n.l.simp(), n.r.simp()); }
method simp(n@NegNode) { negOf(n.x.simp()); }
method simp(n@LetNode) { new LetNode(n.idx, n.bound.simp(), n.body.simp()); }

-- Code generation for a stack machine; the emitter counts
-- instructions and tracks maximum stack depth.
class Emitter {
  field count : Int := 0;
  field depth : Int := 0;
  field maxDepth : Int := 0;
}
method emitOp(e@Emitter, delta@Int) {
  e.count := e.count + 1;
  e.depth := e.depth + delta;
  if e.depth > e.maxDepth { e.maxDepth := e.depth; }
}

method gen(n@NumNode, e@Emitter) { e.emitOp(1); }       -- push
method gen(n@VarNode, e@Emitter) { e.emitOp(1); }       -- loadvar
method gen(n@AddNode, e@Emitter) { n.l.gen(e); n.r.gen(e); e.emitOp(-1); }
method gen(n@SubNode, e@Emitter) { n.l.gen(e); n.r.gen(e); e.emitOp(-1); }
method gen(n@MulNode, e@Emitter) { n.l.gen(e); n.r.gen(e); e.emitOp(-1); }
method gen(n@MinNode, e@Emitter) { n.l.gen(e); n.r.gen(e); e.emitOp(-1); }
method gen(n@NegNode, e@Emitter) { n.x.gen(e); e.emitOp(0); }
method gen(n@LetNode, e@Emitter) {
  n.bound.gen(e);
  e.emitOp(-1);                                          -- storevar
  n.body.gen(e);
}

-- Evaluator (to validate the optimizer: value preserved by passes).
method evalNode(n@NumNode, env@Array) { n.val; }
method evalNode(n@VarNode, env@Array) { aget(env, n.idx); }
method evalNode(n@AddNode, env@Array) { n.l.evalNode(env) + n.r.evalNode(env); }
method evalNode(n@SubNode, env@Array) { n.l.evalNode(env) - n.r.evalNode(env); }
method evalNode(n@MulNode, env@Array) { n.l.evalNode(env) * n.r.evalNode(env); }
method evalNode(n@MinNode, env@Array) {
  var l := n.l.evalNode(env);
  var r := n.r.evalNode(env);
  if l < r { l; } else { r; }
}
method evalNode(n@NegNode, env@Array) { 0 - n.x.evalNode(env); }
method evalNode(n@LetNode, env@Array) {
  -- Lexically scoped: restore the shadowed value on exit so dropping a
  -- dead subtree (e.g. x*0 -> 0) cannot change observable bindings.
  var old := aget(env, n.idx);
  aput(env, n.idx, n.bound.evalNode(env));
  var v := n.body.evalNode(env);
  aput(env, n.idx, old);
  v;
}

-- AST generator.
class CRand { field seed : Int := 0; }
method cnext(r@CRand) {
  r.seed := (r.seed * 1103515245 + 12345) % 2147483648;
  r.seed;
}
method cbelow(r@CRand, n@Int) { r.cnext() % n; }

method genNode(r@CRand, depth@Int) {
  if depth <= 0 {
    if r.cbelow(2) == 0 { return new NumNode(r.cbelow(7)); }
    return new VarNode(r.cbelow(4));
  }
  var k := r.cbelow(8);
  if k == 0 || k == 1 { return new AddNode(genNode(r, depth - 1), genNode(r, depth - 1)); }
  if k == 2 { return new SubNode(genNode(r, depth - 1), genNode(r, depth - 1)); }
  if k == 3 || k == 4 { return new MulNode(genNode(r, depth - 1), genNode(r, depth - 1)); }
  if k == 5 { return new MinNode(genNode(r, depth - 1), genNode(r, depth - 1)); }
  if k == 6 { return new NegNode(genNode(r, depth - 1)); }
  new LetNode(r.cbelow(4), genNode(r, depth - 1), genNode(r, depth - 1));
}

method main() {
  var r := new CRand(424242);
  var instrs := 0;
  var shrink := 0;
  var checksum := 0;
  var round := 0;
  while round < ccRounds {
    var ast := genNode(r, ccDepth);
    var before := ast.nodeSize();

    var opt := ast.simp().simp();
    shrink := shrink + (before - opt.nodeSize());

    -- Optimization must preserve the program's value.
    var env1 := newarray(4);
    var env2 := newarray(4);
    var i := 0;
    while i < 4 { aput(env1, i, i + 1); aput(env2, i, i + 1); i := i + 1; }
    var v1 := ast.evalNode(env1);
    var v2 := opt.evalNode(env2);
    if v1 != v2 { abort("optimizer changed program value"); }
    checksum := (checksum + v1) % 1000003;
    if checksum < 0 { checksum := checksum + 1000003; }

    var e := new Emitter(0, 0, 0);
    opt.gen(e);
    instrs := instrs + e.count;
    round := round + 1;
  }
  println("instrs=" + str(instrs) + " shrink=" + str(shrink) + " checksum=" + str(checksum));
  instrs;
}
`
