// Package programs embeds the Mini-Cecil benchmark programs used to
// reproduce the paper's Table 2 suite: Richards (operating-system task
// queue simulation), InstSched (a MIPS-style instruction scheduler),
// Typechecker (a typechecker for a small functional language) and
// Compiler (an optimizing AST compiler) — plus the §2 Set example.
//
// Each program declares an input-size global that the harness overrides
// to switch between the training input (profile gathering) and the
// measurement input, mirroring the paper's methodology ("we used one
// set of inputs ... for gathering the profiles and a different set of
// inputs for measuring").
package programs

// Benchmark describes one embedded benchmark program.
type Benchmark struct {
	Name        string
	Description string
	PaperLines  int // source lines reported in the paper's Table 2
	Source      string
	// Train/Test override the program's input-size globals for the
	// profiling run and the measurement run.
	Train map[string]int64
	Test  map[string]int64
}

// All returns the four paper benchmarks in Table 2 order.
func All() []Benchmark {
	return []Benchmark{Richards(), InstSched(), Typechecker(), Compiler()}
}

// Suite returns the five embedded benchmark programs: the four Table 2
// benchmarks plus the §2 Set example.
func Suite() []Benchmark {
	return append(All(), Sets())
}

// Registry returns every embedded program selectable by name, in
// deterministic order — the single source of truth behind ByName and
// the CLI's -bench option list.
func Registry() []Benchmark {
	return append(Suite(), Collections())
}

// Names returns the names of every embedded program, in Registry order.
func Names() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, b := range reg {
		out[i] = b.Name
	}
	return out
}

// ByName finds an embedded program by (case-sensitive) name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Registry() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Richards is the classic operating-system task queue simulation
// (Table 2: "Richards, 400 lines, operating system task queue
// simulation"), ported to Mini-Cecil with the task kinds as a class
// hierarchy and the run/decision logic as dispatched methods.
func Richards() Benchmark {
	return Benchmark{
		Name:        "Richards",
		Description: "Operating system task queue simulation",
		PaperLines:  400,
		Source:      richardsSrc,
		Train:       map[string]int64{"richardsCount": 1500},
		Test:        map[string]int64{"richardsCount": 700},
	}
}

const richardsSrc = `
-- Richards: OS task-queue simulation (Mini-Cecil port).
-- Task kinds are classes; scheduler decisions are dispatched methods.

var richardsCount := 180;

var ID_IDLE      := 0;
var ID_WORKER    := 1;
var ID_HANDLER_A := 2;
var ID_HANDLER_B := 3;
var ID_DEVICE_A  := 4;
var ID_DEVICE_B  := 5;

var KIND_DEVICE := 0;
var KIND_WORK   := 1;

var STATE_RUNNING   := 0;
var STATE_RUNNABLE  := 1;
var STATE_SUSPENDED := 2;
var STATE_HELD      := 4;
var STATE_SUSPENDED_RUNNABLE := 3;
var STATE_NOT_HELD  := 3;

var DATA_SIZE := 4;

-- Bitwise helpers (the language has no bit operators).
method bitand(a@Int, b@Int) {
  var r := 0;
  var bit := 1;
  var x := a;
  var y := b;
  while x > 0 && y > 0 {
    if x % 2 == 1 && y % 2 == 1 { r := r + bit; }
    x := x / 2;
    y := y / 2;
    bit := bit * 2;
  }
  r;
}
method bitor(a@Int, b@Int) {
  var r := 0;
  var bit := 1;
  var x := a;
  var y := b;
  while x > 0 || y > 0 {
    if x % 2 == 1 || y % 2 == 1 { r := r + bit; }
    x := x / 2;
    y := y / 2;
    bit := bit * 2;
  }
  r;
}
method bitxor(a@Int, b@Int) {
  var r := 0;
  var bit := 1;
  var x := a;
  var y := b;
  while x > 0 || y > 0 {
    if (x + y) % 2 == 1 { r := r + bit; }
    x := x / 2;
    y := y / 2;
    bit := bit * 2;
  }
  r;
}

-- Packet kinds are classes (rather than a kind field), in the
-- dispatched style the paper's benchmarks use.
class Packet {
  field link := nil;          -- nilable: next packet in queue
  field id : Int := 0;
  field a1 : Int := 0;
  field a2 : Array := newarray(4);
}
class WorkPacket isa Packet
class DevicePacket isa Packet

method isWork(p@Packet) { false; }
method isWork(p@WorkPacket) { true; }

method mkpacket(link, id@Int, kind@Int) {
  if kind == KIND_WORK { return new WorkPacket(link, id, 0, newarray(DATA_SIZE)); }
  new DevicePacket(link, id, 0, newarray(DATA_SIZE));
}

-- Append self to the end of queue, returning the new queue head.
method addTo(p@Packet, queue) {
  p.link := nil;
  if queue == nil { return p; }
  var peek := queue;
  var next := peek.link;
  while next != nil {
    peek := next;
    next := peek.link;
  }
  peek.link := p;
  queue;
}

class Scheduler {
  field queueCount : Int := 0;
  field holdCount : Int := 0;
  field blocks : Array := newarray(6);
  field list := nil;          -- nilable TCB list head
  field currentTcb := nil;    -- nilable
  field currentId : Int := 0;
}

class TaskControlBlock {
  field link := nil;          -- nilable
  field id : Int := 0;
  field priority : Int := 0;
  field queue := nil;         -- nilable packet queue
  field task : Task := nil;   -- always a Task instance
  field state : Int := 0;
}

-- The task hierarchy. The intermediate SystemTask/UserTask layers
-- carry shared utilities — under plain customization every one of
-- these gets copied per concrete class (the paper's overspecialization).
class Task { field scheduler : Scheduler := nil; }
class SystemTask isa Task
class UserTask isa Task
class IdleTask isa SystemTask { field v1 : Int := 0; field count : Int := 0; }
class DeviceTask isa SystemTask { field v1 := nil; }
class WorkerTask isa UserTask { field v1 : Int := 0; field v2 : Int := 0; }
class HandlerTask isa UserTask { field v1 := nil; field v2 := nil; }

-- Shared utilities on the abstract layers.
method kindName(t@Task) { "task"; }
method kindName(t@UserTask) { "user"; }
method isUserWork(t@Task) { false; }
method isUserWork(t@UserTask) { true; }
method sched(t@Task) { t.scheduler; }

method mkscheduler() {
  new Scheduler(0, 0, newarray(6), nil, nil, 0);
}

method addTCB(s@Scheduler, id@Int, priority@Int, queue, task@Task) {
  var state := STATE_SUSPENDED_RUNNABLE;
  if queue == nil { state := STATE_SUSPENDED; }
  var tcb := new TaskControlBlock(s.list, id, priority, queue, task, state);
  s.list := tcb;
  aput(s.blocks, id, tcb);
  tcb;
}

method addIdleTask(s@Scheduler, id@Int, priority@Int, queue, count@Int) {
  var tcb := s.addTCB(id, priority, queue, new IdleTask(s, 1, count));
  tcb.setRunning();
  tcb;
}
method addWorkerTask(s@Scheduler, id@Int, priority@Int, queue) {
  s.addTCB(id, priority, queue, new WorkerTask(s, ID_HANDLER_A, 0));
}
method addHandlerTask(s@Scheduler, id@Int, priority@Int, queue) {
  s.addTCB(id, priority, queue, new HandlerTask(s, nil, nil));
}
method addDeviceTask(s@Scheduler, id@Int, priority@Int, queue) {
  s.addTCB(id, priority, queue, new DeviceTask(s, nil));
}

-- TCB state transitions.
method setRunning(t@TaskControlBlock) { t.state := STATE_RUNNING; }
method markAsNotHeld(t@TaskControlBlock) { t.state := bitand(t.state, STATE_NOT_HELD); }
method markAsHeld(t@TaskControlBlock) { t.state := bitor(t.state, STATE_HELD); }
method isHeldOrSuspended(t@TaskControlBlock) {
  bitand(t.state, STATE_HELD) != 0 || t.state == STATE_SUSPENDED;
}
method markAsSuspended(t@TaskControlBlock) { t.state := bitor(t.state, STATE_SUSPENDED); }
method markAsRunnable(t@TaskControlBlock) { t.state := bitor(t.state, STATE_RUNNABLE); }

-- Run the TCB: pop a pending packet if runnable, then dispatch to the
-- task-kind-specific run method (the hot dynamic dispatch).
method runTCB(t@TaskControlBlock) {
  var packet := nil;
  if t.state == STATE_SUSPENDED_RUNNABLE {
    packet := t.queue;
    t.queue := packet.link;
    if t.queue == nil { t.setRunning(); }
    else { t.state := STATE_RUNNABLE; }
  }
  run(t.task, packet);
}

method checkPriorityAdd(t@TaskControlBlock, task@TaskControlBlock, packet@Packet) {
  if t.queue == nil {
    t.queue := packet;
    t.markAsRunnable();
    if t.priority > task.priority { return t; }
  } else {
    t.queue := packet.addTo(t.queue);
  }
  task;
}

-- One scheduling step over a known TCB: class hierarchy analysis can
-- statically bind the sends on the tcb formal here.
method scheduleStep(s@Scheduler, tcb@TaskControlBlock) {
  if tcb.isHeldOrSuspended() { return tcb.link; }
  s.currentId := tcb.id;
  s.currentTcb := tcb;
  tcb.runTCB();
}

method schedule(s@Scheduler) {
  var tcb := s.list;
  while tcb != nil {
    tcb := s.scheduleStep(tcb);
  }
}

method holdCurrent(s@Scheduler) {
  s.holdCount := s.holdCount + 1;
  var cur := s.currentTcb;
  cur.markAsHeld();
  cur.link;
}

method release(s@Scheduler, id@Int) {
  var tcb := aget(s.blocks, id);
  if tcb == nil { return tcb; }
  tcb.markAsNotHeld();
  if tcb.priority > s.currentTcb.priority { return tcb; }
  s.currentTcb;
}

method suspendCurrent(s@Scheduler) {
  var cur := s.currentTcb;
  cur.markAsSuspended();
  cur;
}

method queuePacket(s@Scheduler, packet@Packet) {
  var t := aget(s.blocks, packet.id);
  if t == nil { return t; }
  s.queueCount := s.queueCount + 1;
  packet.link := nil;
  packet.id := s.currentId;
  t.checkPriorityAdd(s.currentTcb, packet);
}

-- Task-kind run methods: the multi-way dispatch the benchmark exists
-- to exercise. The packet argument is nilable, hence unspecialized.
method run(t@IdleTask, packet) {
  var s := t.sched();
  t.count := t.count - 1;
  if t.count == 0 { return s.holdCurrent(); }
  if t.v1 % 2 == 0 {
    t.v1 := t.v1 / 2;
    return s.release(ID_DEVICE_A);
  }
  t.v1 := bitxor(t.v1 / 2, 53256);
  s.release(ID_DEVICE_B);
}

method run(t@DeviceTask, packet) {
  var s := t.sched();
  if packet == nil {
    if t.v1 == nil { return s.suspendCurrent(); }
    var v := t.v1;
    t.v1 := nil;
    return s.queuePacket(v);
  }
  t.v1 := packet;
  s.holdCurrent();
}

method run(t@WorkerTask, packet) {
  var s := t.sched();
  if packet == nil { return s.suspendCurrent(); }
  if t.v1 == ID_HANDLER_A { t.v1 := ID_HANDLER_B; }
  else { t.v1 := ID_HANDLER_A; }
  packet.id := t.v1;
  packet.a1 := 0;
  var i := 0;
  while i < DATA_SIZE {
    t.v2 := t.v2 + 1;
    if t.v2 > 26 { t.v2 := 1; }
    aput(packet.a2, i, t.v2);
    i := i + 1;
  }
  s.queuePacket(packet);
}

method run(t@HandlerTask, packet) {
  var s := t.sched();
  if packet != nil {
    if packet.isWork() { t.v1 := packet.addTo(t.v1); }
    else { t.v2 := packet.addTo(t.v2); }
  }
  if t.v1 != nil {
    var count := t.v1.a1;
    if count < DATA_SIZE {
      if t.v2 != nil {
        var v := t.v2;
        t.v2 := v.link;
        v.a1 := aget(t.v1.a2, count);
        t.v1.a1 := count + 1;
        return s.queuePacket(v);
      }
    } else {
      var v := t.v1;
      t.v1 := v.link;
      return s.queuePacket(v);
    }
  }
  s.suspendCurrent();
}

method main() {
  var s := mkscheduler();
  s.addIdleTask(ID_IDLE, 0, nil, richardsCount);

  var q := mkpacket(nil, ID_WORKER, KIND_WORK);
  q := mkpacket(q, ID_WORKER, KIND_WORK);
  s.addWorkerTask(ID_WORKER, 1000, q);

  q := mkpacket(nil, ID_DEVICE_A, KIND_DEVICE);
  q := mkpacket(q, ID_DEVICE_A, KIND_DEVICE);
  q := mkpacket(q, ID_DEVICE_A, KIND_DEVICE);
  s.addHandlerTask(ID_HANDLER_A, 2000, q);

  q := mkpacket(nil, ID_DEVICE_B, KIND_DEVICE);
  q := mkpacket(q, ID_DEVICE_B, KIND_DEVICE);
  q := mkpacket(q, ID_DEVICE_B, KIND_DEVICE);
  s.addHandlerTask(ID_HANDLER_B, 3000, q);

  s.addDeviceTask(ID_DEVICE_A, 4000, nil);
  s.addDeviceTask(ID_DEVICE_B, 5000, nil);

  s.schedule();

  -- Walk the task list once with the shared utilities (cheap at run
  -- time, but customization still clones them per concrete class).
  var users := 0;
  var names := "";
  var t := s.list;
  while t != nil {
    if t.task.isUserWork() { users := users + 1; }
    names := names + t.task.kindName() + " ";
    t := t.link;
  }

  println("queueCount=" + str(s.queueCount) + " holdCount=" + str(s.holdCount)
          + " users=" + str(users));
  s.queueCount * 100000 + s.holdCount;
}
`
