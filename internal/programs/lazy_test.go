package programs

import (
	"testing"

	"selspec/internal/driver"
	"selspec/internal/opt"
	"selspec/internal/profile"
	"selspec/internal/specialize"
)

// TestLazyCompilationEquivalence: §3.7.3 — compiling method versions
// lazily on first invocation must not change program behaviour or
// dispatch counts, only which versions get bodies.
func TestLazyCompilationEquivalence(t *testing.T) {
	for _, b := range []Benchmark{Richards(), Sets()} {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, cfg := range []opt.Config{opt.Base, opt.Cust, opt.CHA} {
				p, err := driver.Load(b.Source)
				if err != nil {
					t.Fatal(err)
				}
				run := func(lazy bool) *driver.Result {
					c, err := opt.Compile(p.Prog, opt.Options{Config: cfg, Lazy: lazy})
					if err != nil {
						t.Fatal(err)
					}
					res, err := driver.Execute(c, driver.RunOptions{
						Overrides: b.Train, CaptureOutput: true, StepLimit: 200_000_000,
					})
					if err != nil {
						t.Fatalf("%v lazy=%t: %v", cfg, lazy, err)
					}
					if lazy && c.InvokedVersionCount() != c.Stats().CompiledBodies {
						t.Errorf("%v: lazy bookkeeping inconsistent", cfg)
					}
					return res
				}
				eager := run(false)
				lazy := run(true)
				if eager.Value != lazy.Value || eager.Output != lazy.Output {
					t.Errorf("%v: lazy and eager disagree: %q vs %q", cfg, eager.Value, lazy.Value)
				}
				if eager.Counters.DynamicDispatches() != lazy.Counters.DynamicDispatches() {
					t.Errorf("%v: dispatch counts differ: %d vs %d",
						cfg, eager.Counters.DynamicDispatches(), lazy.Counters.DynamicDispatches())
				}
				if lazy.Invoked > eager.Invoked {
					t.Errorf("%v: lazy invoked more versions (%d) than eager (%d)",
						cfg, lazy.Invoked, eager.Invoked)
				}
			}
		})
	}
}

// TestProfileStabilityAcrossInputs checks the paper's §3.7.2
// observation: "the kind of profile information needed to construct
// this call graph remains fairly constant across different inputs", so
// directives derived from one input work well on another. We train on
// two different inputs and require the resulting specialization sets to
// perform within a few percent of each other on a common measurement
// input.
func TestProfileStabilityAcrossInputs(t *testing.T) {
	b := InstSched()
	p, err := driver.Load(b.Source)
	if err != nil {
		t.Fatal(err)
	}

	trainInputs := []map[string]int64{
		{"schedInstrs": 60, "schedBlocks": 6},
		{"schedInstrs": 90, "schedBlocks": 9},
	}
	var dispatches []uint64
	for _, train := range trainInputs {
		cg := profile.NewCallGraph(p.Prog)
		cgRun, err := p.CollectProfile(driver.RunOptions{Overrides: train})
		if err != nil {
			t.Fatal(err)
		}
		_ = cg
		res := specialize.Run(p.Prog, cgRun, specialize.Params{})
		c, err := opt.Compile(p.Prog, opt.Options{Config: opt.Selective, Specializations: res.Specializations})
		if err != nil {
			t.Fatal(err)
		}
		out, err := driver.Execute(c, driver.RunOptions{Overrides: b.Test, StepLimit: 500_000_000})
		if err != nil {
			t.Fatal(err)
		}
		dispatches = append(dispatches, out.Counters.DynamicDispatches())
	}
	lo, hi := dispatches[0], dispatches[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi) > float64(lo)*1.10 {
		t.Errorf("profiles from different inputs give dispatch counts %d vs %d (>10%% apart)",
			dispatches[0], dispatches[1])
	}
	t.Logf("dispatches with profiles from two inputs: %v", dispatches)
}
