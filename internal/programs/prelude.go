package programs

// Prelude is a small Mini-Cecil standard library in the style the
// paper's benchmarks were built on (each Cecil program linked an
// 8,500-line standard library): an abstract Collection protocol whose
// generic operations (contains, fold, map, filter, …) are factored
// into the superclass and implemented via the dispatched do/size
// methods of each concrete representation — precisely the code shape
// §2 of the paper argues both needs and rewards specialization.
//
// Programs can prepend it with WithPrelude(src).
const Prelude = `
-- ======================= Mini-Cecil prelude =======================

class Pair { field first := nil; field second := nil; }

-- Abstract collection protocol: subclasses implement do/2 and size/1.
class Collection

method isEmpty(c@Collection) { c.size() == 0; }

method contains(c@Collection, x) {
  c.do(fn(e) { if e == x { return true; } });
  false;
}

method countWhere(c@Collection, pred) {
  var n := 0;
  c.do(fn(e) { if pred(e) { n := n + 1; } });
  n;
}

method foldLeft(c@Collection, acc, f) {
  var a := acc;
  c.do(fn(e) { a := f(a, e); });
  a;
}

method sumOf(c@Collection) {
  c.foldLeft(0, fn(a, e) { a + e; });
}

method maxOf(c@Collection, least) {
  c.foldLeft(least, fn(a, e) { if e > a { e; } else { a; } });
}

method anySatisfies(c@Collection, pred) {
  c.do(fn(e) { if pred(e) { return true; } });
  false;
}

method allSatisfy(c@Collection, pred) {
  c.do(fn(e) { if !pred(e) { return false; } });
  true;
}

method mapTo(c@Collection, f) {
  var out := mkvector();
  c.do(fn(e) { out.vpush(f(e)); });
  out;
}

method filterTo(c@Collection, pred) {
  var out := mkvector();
  c.do(fn(e) { if pred(e) { out.vpush(e); } });
  out;
}

method joinStrings(c@Collection, sep) {
  var s := "";
  var firstItem := true;
  c.do(fn(e) {
    if firstItem { firstItem := false; } else { s := s + sep; }
    s := s + str(e);
  });
  s;
}

-- Singly-linked list.
class Cons { field val := nil; field next := nil; }
class LinkedList isa Collection { field head := nil; field len : Int := 0; }

method mklist() { new LinkedList(nil, 0); }
method push(l@LinkedList, x) {
  l.head := new Cons(x, l.head);
  l.len := l.len + 1;
  l;
}
method size(l@LinkedList) { l.len; }
method do(l@LinkedList, body) {
  var c := l.head;
  while c != nil {
    body(c.val);
    c := c.next;
  }
}
method reverseTo(l@LinkedList) {
  var out := mklist();
  l.do(fn(e) { out.push(e); });
  out;
}

-- Growable vector.
class Vector isa Collection { field elems : Array := newarray(4); field n : Int := 0; }

method mkvector() { new Vector(newarray(4), 0); }
method vpush(v@Vector, x) {
  if v.n == alen(v.elems) {
    var bigger := newarray(alen(v.elems) * 2);
    var i := 0;
    while i < v.n { aput(bigger, i, aget(v.elems, i)); i := i + 1; }
    v.elems := bigger;
  }
  aput(v.elems, v.n, x);
  v.n := v.n + 1;
  v;
}
method size(v@Vector) { v.n; }
method at(v@Vector, i@Int) {
  if i < 0 || i >= v.n { abort("Vector index " + str(i) + " out of range"); }
  aget(v.elems, i);
}
method atPut(v@Vector, i@Int, x) {
  if i < 0 || i >= v.n { abort("Vector index " + str(i) + " out of range"); }
  aput(v.elems, i, x);
  x;
}
method do(v@Vector, body) {
  var i := 0;
  while i < v.n {
    body(aget(v.elems, i));
    i := i + 1;
  }
}
-- In-place insertion sort with a comparison closure.
method sortBy(v@Vector, lessThan) {
  var i := 1;
  while i < v.n {
    var x := v.at(i);
    var j := i - 1;
    var moving := true;
    while moving {
      if j >= 0 {
        var y := v.at(j);
        if lessThan(x, y) {
          v.atPut(j + 1, y);
          j := j - 1;
        } else { moving := false; }
      } else { moving := false; }
    }
    v.atPut(j + 1, x);
    i := i + 1;
  }
  v;
}

-- Association dictionary over a vector of Pairs.
class Dict isa Collection { field pairs : Vector := nil; }

method mkdict() { new Dict(mkvector()); }
method size(d@Dict) { d.pairs.size(); }
method do(d@Dict, body) { d.pairs.do(body); }
method dput(d@Dict, k, val) {
  var found := false;
  d.pairs.do(fn(p) { if p.first == k { p.second := val; found := true; } });
  if !found { d.pairs.vpush(new Pair(k, val)); }
  d;
}
method dget(d@Dict, k, dflt) {
  d.pairs.do(fn(p) { if p.first == k { return p.second; } });
  dflt;
}
method dhas(d@Dict, k) {
  d.pairs.anySatisfies(fn(p) { p.first == k; });
}

-- Integer ranges [lo, hi).
class Range isa Collection { field lo : Int := 0; field hi : Int := 0; }

method mkrange(lo@Int, hi@Int) { new Range(lo, hi); }
method size(r@Range) {
  if r.hi > r.lo { r.hi - r.lo; } else { 0; }
}
method do(r@Range, body) {
  var i := r.lo;
  while i < r.hi {
    body(i);
    i := i + 1;
  }
}

-- Small numeric helpers.
method absInt(x@Int) { if x < 0 { 0 - x; } else { x; } }
method minInt(a@Int, b@Int) { if a < b { a; } else { b; } }
method maxInt(a@Int, b@Int) { if a > b { a; } else { b; } }

-- ===================== end of prelude =====================
`

// WithPrelude prepends the standard library to a program source.
func WithPrelude(src string) string { return Prelude + "\n" + src }

// Collections is a library-exercise program: it drives every prelude
// collection through the generic Collection protocol, the situation in
// which class hierarchy analysis alone cannot bind do/size (three
// implementations each) but selective specialization can, per concrete
// collection class.
func Collections() Benchmark {
	return Benchmark{
		Name:        "Collections",
		Description: "Standard-library collections exercised through the abstract protocol",
		PaperLines:  8500, // the paper's standard library, for context
		Source:      collectionsSrc,
		Train:       map[string]int64{"colSize": 40, "colReps": 800},
		Test:        map[string]int64{"colSize": 90, "colReps": 60},
	}
}

var collectionsSrc = WithPrelude(`
var colSize := 60;
var colReps := 30;

-- Polymorphic workload: the same generic pipeline over all three
-- concrete collections, via the abstract protocol.
method pipeline(c@Collection) {
  var evens := c.filterTo(fn(x) { x % 2 == 0; });
  var doubled := evens.mapTo(fn(x) { x * 2; });
  var total := doubled.sumOf();
  var top := doubled.maxOf(-1000000);
  total + top + c.countWhere(fn(x) { x % 3 == 0; });
}

method buildList(n@Int) {
  var l := mklist();
  mkrange(0, n).do(fn(i) { l.push(i * 7 % 50); });
  l;
}
method buildVector(n@Int) {
  var v := mkvector();
  mkrange(0, n).do(fn(i) { v.vpush(i * 13 % 50); });
  v;
}

method main() {
  var acc := 0;
  var r := 0;
  while r < colReps {
    var l := buildList(colSize);
    var v := buildVector(colSize);
    var rng := mkrange(0, colSize);

    acc := acc + pipeline(l) + pipeline(v) + pipeline(rng);

    -- Dictionary churn through the same generic protocol.
    var d := mkdict();
    rng.do(fn(i) { d.dput(i % 11, i); });
    acc := acc + d.size() + d.dget(3, -1) + d.dget(99, -7);

    -- Sorting with a closure comparator.
    var sorted := v.filterTo(fn(x) { x < 25; }).sortBy(fn(a, b) { a < b; });
    if sorted.size() > 1 {
      if !(sorted.at(0) <= sorted.at(sorted.size() - 1)) { abort("sort broken"); }
    }
    acc := acc + sorted.size();

    if l.contains(7) { acc := acc + 1; }
    if v.isEmpty() { abort("vector empty?"); }
    r := r + 1;
  }
  println("acc=" + str(acc));
  acc;
}
`)
