package programs

// Sets returns the paper's §2 motivating example: a Set hierarchy whose
// generic operations (overlaps, includes) are factored into an abstract
// superclass and implemented via closure-based iteration (do), with
// more efficient overriding implementations in some subclasses. It is
// small but exhibits every phenomenon the paper discusses: receiver
// customization (do), argument specialization (set2 in overlaps),
// closure elimination, non-local return, and CHA-bindable helpers.
func Sets() Benchmark {
	return Benchmark{
		Name:        "Sets",
		Description: "The paper's §2 Set-hierarchy example",
		PaperLines:  0, // illustrative example, not in Table 2
		Source:      setsSrc,
		Train:       map[string]int64{"setSize": 8, "setReps": 30},
		Test:        map[string]int64{"setSize": 14, "setReps": 60},
	}
}

const setsSrc = `
-- The Set example from §2 of the paper.

var setSize := 8;
var setReps := 30;

class Set { field elems := nil; field n := 0; }
class ListSet isa Set
class HashSet isa Set
class BitSet isa Set { field bits := 0; }

method mkset(kind, cap) {
  var s := nil;
  if kind == 0 { s := new ListSet(newarray(cap), 0); }
  else { if kind == 1 { s := new HashSet(newarray(cap), 0); }
  else { s := new BitSet(newarray(cap), 0, 0); } }
  s;
}

method add(s@Set, e) {
  aput(s.elems, s.n, e);
  s.n := s.n + 1;
  s;
}

method size(s@Set) { s.n; }
method isEmpty(s@Set) { s.size() == 0; }

method do(s@ListSet, body) {
  var i := 0;
  while i < s.n { body(aget(s.elems, i)); i := i + 1; }
}
method do(s@HashSet, body) {
  var i := 0;
  while i < s.n { body(aget(s.elems, i)); i := i + 1; }
}
method do(s@BitSet, body) {
  var i := 0;
  while i < s.n { body(aget(s.elems, i)); i := i + 1; }
}

-- "A default includes implementation; subclasses can override to
-- provide a more efficient implementation."
method includes(s@Set, e) {
  s.do(fn(x) { if x == e { return true; } });
  false;
}
method includes(s@HashSet, e) {
  var i := 0;
  var found := false;
  while i < s.n { if aget(s.elems, i) == e { found := true; i := s.n; } else { i := i + 1; } }
  found;
}
method includes(s@BitSet, e) {
  var i := 0;
  var found := false;
  while i < s.n { if aget(s.elems, i) == e { found := true; i := s.n; } else { i := i + 1; } }
  found;
}

method overlaps(s1@Set, s2@Set) {
  if s1.isEmpty() || s2.isEmpty() { return false; }
  s1.do(fn(elem) { if s2.includes(elem) { return true; } });
  false;
}

method main() {
  var total := 0;
  var kinds := 3;
  var k1 := 0;
  while k1 < kinds {
    var k2 := 0;
    while k2 < kinds {
      var a := mkset(k1, setSize);
      var b := mkset(k2, setSize);
      var i := 0;
      while i < setSize { a.add(i * 2); b.add(i * 3 + 1); i := i + 1; }
      var reps := 0;
      while reps < setReps {
        if a.overlaps(b) { total := total + 1; }
        reps := reps + 1;
      }
      k2 := k2 + 1;
    }
    k1 := k1 + 1;
  }
  println("overlapping pairs counted: " + str(total));
  total;
}
`
