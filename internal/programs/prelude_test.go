package programs

import (
	"strings"
	"testing"

	"selspec/internal/driver"
	"selspec/internal/opt"
	"selspec/internal/specialize"
)

// runPrelude executes a program (with the prelude prepended) under the
// given configuration and returns the result.
func runPrelude(t *testing.T, body string, cfg opt.Config) *driver.Result {
	t.Helper()
	p, err := driver.Load(WithPrelude(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunConfig(driver.ConfigOptions{
		Config:     cfg,
		SpecParams: specialize.Params{Threshold: -1},
		RunExtra: func(ro *driver.RunOptions) {
			ro.CaptureOutput = true
			ro.StepLimit = 100_000_000
		},
	})
	if err != nil {
		t.Fatalf("%v: %v", cfg, err)
	}
	return res
}

func TestPreludeLoads(t *testing.T) {
	if _, err := driver.Load(WithPrelude(`method main() { 0; }`)); err != nil {
		t.Fatalf("prelude does not load: %v", err)
	}
}

func TestPreludeLinkedList(t *testing.T) {
	res := runPrelude(t, `
method main() {
  var l := mklist();
  l.push(1);
  l.push(2);
  l.push(3);
  println(str(l.size()) + " " + l.joinStrings(","));
  println(str(l.contains(2)) + " " + str(l.contains(9)));
  println(l.reverseTo().joinStrings(","));
  l.sumOf();
}
`, opt.Base)
	want := "3 3,2,1\ntrue false\n1,2,3\n"
	if res.Output != want || res.Value != "6" {
		t.Fatalf("output %q value %s", res.Output, res.Value)
	}
}

func TestPreludeVector(t *testing.T) {
	res := runPrelude(t, `
method main() {
  var v := mkvector();
  var i := 0;
  while i < 10 { v.vpush(9 - i); i := i + 1; }
  v.sortBy(fn(a, b) { a < b; });
  println(v.joinStrings(""));
  println(str(v.at(0)) + " " + str(v.at(9)));
  v.atPut(0, 42);
  println(str(v.maxOf(0)));
  v.size();
}
`, opt.Base)
	want := "0123456789\n0 9\n42\n"
	if res.Output != want || res.Value != "10" {
		t.Fatalf("output %q value %s", res.Output, res.Value)
	}
}

func TestPreludeVectorGrowth(t *testing.T) {
	// Push far past the initial capacity of 4.
	res := runPrelude(t, `
method main() {
  var v := mkvector();
  mkrange(0, 100).do(fn(i) { v.vpush(i); });
  str(v.size()) + " " + str(v.at(99)) + " " + str(v.sumOf());
}
`, opt.Base)
	if res.Value != "100 99 4950" {
		t.Fatalf("value %s", res.Value)
	}
}

func TestPreludeVectorBounds(t *testing.T) {
	p, err := driver.Load(WithPrelude(`method main() { mkvector().at(0); }`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.RunConfig(driver.ConfigOptions{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
}

func TestPreludeDict(t *testing.T) {
	res := runPrelude(t, `
method main() {
  var d := mkdict();
  d.dput("a", 1);
  d.dput("b", 2);
  d.dput("a", 10);
  println(str(d.size()) + " " + str(d.dget("a", -1)) + " " + str(d.dget("zz", -1)));
  println(str(d.dhas("b")) + " " + str(d.dhas("c")));
  d.foldLeft(0, fn(acc, p) { acc + p.second; });
}
`, opt.Base)
	want := "2 10 -1\ntrue false\n"
	if res.Output != want || res.Value != "12" {
		t.Fatalf("output %q value %s", res.Output, res.Value)
	}
}

func TestPreludeRangeAndPredicates(t *testing.T) {
	res := runPrelude(t, `
method main() {
  var r := mkrange(3, 8);
  println(str(r.size()) + " " + r.joinStrings("+") + "=" + str(r.sumOf()));
  println(str(r.anySatisfies(fn(x) { x == 5; })) + " " + str(r.allSatisfy(fn(x) { x > 2; })));
  println(str(mkrange(5, 2).size()) + " " + str(mkrange(5, 2).isEmpty()));
  println(str(absInt(-4)) + " " + str(minInt(2, 9)) + " " + str(maxInt(2, 9)));
  r.countWhere(fn(x) { x % 2 == 1; });
}
`, opt.Base)
	want := "5 3+4+5+6+7=25\ntrue true\n0 true\n4 2 9\n"
	if res.Output != want || res.Value != "3" {
		t.Fatalf("output %q value %s", res.Output, res.Value)
	}
}

func TestPreludeMapFilter(t *testing.T) {
	res := runPrelude(t, `
method main() {
  var squares := mkrange(1, 6).mapTo(fn(x) { x * x; });
  var odds := squares.filterTo(fn(x) { x % 2 == 1; });
  println(squares.joinStrings(",") + " | " + odds.joinStrings(","));
  odds.sumOf();
}
`, opt.Base)
	if res.Output != "1,4,9,16,25 | 1,9,25\n" || res.Value != "35" {
		t.Fatalf("output %q value %s", res.Output, res.Value)
	}
}

// TestCollectionsProgramAllConfigs runs the library-exercise program
// under every configuration (with and without the §6 return-type
// extension): results must always agree.
//
// Library-style code is dominated by sends on constructor *results*
// ("var out := mkvector(); out.vpush(...)"), which no configuration of
// the published system can bind — the paper's §6 names exactly this as
// future work ("specializing callers for the return values of the
// called methods"). The dispatch-reduction assertion therefore runs
// Selective with ReturnTypeAnalysis on: return info gives out's class,
// specialization pins the collection argument, do inlines, the closure
// inlines, and the per-element vpush binds.
func TestCollectionsProgramAllConfigs(t *testing.T) {
	b := Collections()
	p, err := driver.Load(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg opt.Config, rta bool) *driver.Result {
		res, err := p.RunConfig(driver.ConfigOptions{
			Config:     cfg,
			Train:      b.Train,
			Test:       b.Test,
			SpecParams: specialize.Params{Threshold: specialize.DefaultThreshold},
			OptExtra:   func(oo *opt.Options) { oo.ReturnTypeAnalysis = rta },
			RunExtra: func(ro *driver.RunOptions) {
				ro.CaptureOutput = true
				ro.StepLimit = 500_000_000
			},
		})
		if err != nil {
			t.Fatalf("%v/rta=%t: %v", cfg, rta, err)
		}
		return res
	}

	base := run(opt.Base, false)
	results := map[string]*driver.Result{"Base": base}
	for _, cfg := range []opt.Config{opt.Cust, opt.CustMM, opt.CHA, opt.Selective} {
		results[cfg.String()] = run(cfg, false)
	}
	results["CHA+ret"] = run(opt.CHA, true)
	results["Selective+ret"] = run(opt.Selective, true)

	for name, res := range results {
		if res.Value != base.Value || res.Output != base.Output {
			t.Errorf("%s result %q != Base %q", name, res.Value, base.Value)
		}
	}
	for _, name := range []string{"Base", "Cust", "Cust-MM", "CHA", "Selective", "CHA+ret", "Selective+ret"} {
		t.Logf("Collections %-14s dispatches=%8d cycles=%9d versions=%d",
			name, results[name].Counters.DynamicDispatches(),
			results[name].Counters.Cycles, results[name].Stats.Versions)
	}

	selRet := results["Selective+ret"].Counters.DynamicDispatches()
	if float64(selRet) > 0.8*float64(base.Counters.DynamicDispatches()) {
		t.Errorf("Selective+return-types (%d) should cut dispatches well below Base (%d)",
			selRet, base.Counters.DynamicDispatches())
	}
	if selRet >= results["Selective"].Counters.DynamicDispatches() {
		t.Errorf("return-type analysis should help Selective on library code: %d vs %d",
			selRet, results["Selective"].Counters.DynamicDispatches())
	}
}
