package programs

// Typechecker checks a small functional language (Table 2:
// "Typechecker, 11,000 lines, typechecker for the Cecil language" —
// here a typechecker of the same shape at reduced size): AST nodes and
// types are classes, checking is dispatched per node kind, type
// equality is a multi-method (TFun × TFun recursion), and the shared
// judgment helpers pass their formals straight into dispatched sends —
// the pass-through pattern the selective specialization algorithm
// feeds on.
func Typechecker() Benchmark {
	return Benchmark{
		Name:        "Typechecker",
		Description: "Typechecker for a small functional language",
		PaperLines:  11000,
		Source:      typecheckerSrc,
		Train:       map[string]int64{"tcDepth": 5, "tcRounds": 1200},
		Test:        map[string]int64{"tcDepth": 6, "tcRounds": 90},
	}
}

const typecheckerSrc = `
-- Typechecker: AST classes + dispatched check methods + multi-method
-- type equality.

var tcDepth := 5;    -- depth of generated expressions
var tcRounds := 35;  -- number of expressions checked

-- Types.
class Type
class TInt isa Type
class TBool isa Type
class TFun isa Type { field from : Type := nil; field to : Type := nil; }
class TError isa Type   -- the type of ill-typed expressions

var theInt := new TInt();
var theBool := new TBool();
var theError := new TError();

-- Multi-method structural type equality.
method typeEq(a@Type, b@Type) { false; }
method typeEq(a@TInt, b@TInt) { true; }
method typeEq(a@TBool, b@TBool) { true; }
method typeEq(a@TFun, b@TFun) {
  typeEq(a.from, b.from) && typeEq(a.to, b.to);
}
method typeEq(a@TError, b@TError) { true; }

method typeName(t@TInt) { "int"; }
method typeName(t@TBool) { "bool"; }
method typeName(t@TError) { "error"; }
method typeName(t@TFun) { "(" + t.from.typeName() + "->" + t.to.typeName() + ")"; }

method isError(t@Type) { false; }
method isError(t@TError) { true; }

-- Shared judgment helpers: each passes its formals directly to
-- dispatched sends, so profile-guided specialization can hoist the
-- inner dispatches out of every checker that calls them.
method isIntType(t@Type) { typeEq(t, theInt); }
method isBoolType(t@Type) { typeEq(t, theBool); }
method bothInt(lt@Type, rt@Type) { lt.isIntType() && rt.isIntType(); }
method joinTypes(a@Type, b@Type) {
  if typeEq(a, b) && !a.isError() { a; } else { theError; }
}

-- Expressions. Subexpression fields carry declared types (Cecil
-- style), which class hierarchy analysis exploits.
class Expr
class IntLit isa Expr { field val : Int := 0; }
class BoolLit isa Expr { field val : Bool := false; }
class VarRef isa Expr { field name : Int := 0; }
class BinExpr isa Expr { field l : Expr := nil; field r : Expr := nil; }
class AddExpr isa BinExpr
class LessExpr isa BinExpr
class EqExpr isa BinExpr
class IfExpr isa Expr { field c : Expr := nil; field t : Expr := nil; field e : Expr := nil; }
class LetExpr isa Expr { field name : Int := 0; field bound : Expr := nil; field body : Expr := nil; }
class LambdaExpr isa Expr { field name : Int := 0; field pty : Type := nil; field body : Expr := nil; }
class ApplyExpr isa Expr { field f : Expr := nil; field arg : Expr := nil; }

-- Environments: linked association lists.
class Env { field name : Int := 0; field ty : Type := nil; field next := nil; }

method envLookup(env, name@Int) {
  var e := env;
  while e != nil {
    if e.name == name { return e.ty; }
    e := e.next;
  }
  theError;
}

-- The checker: one method per AST class, dispatched on the node.
method check(x@IntLit, env) { theInt; }
method check(x@BoolLit, env) { theBool; }
method check(x@VarRef, env) { envLookup(env, x.name); }
method check(x@AddExpr, env) {
  if bothInt(x.l.check(env), x.r.check(env)) { theInt; } else { theError; }
}
method check(x@LessExpr, env) {
  if bothInt(x.l.check(env), x.r.check(env)) { theBool; } else { theError; }
}
method check(x@EqExpr, env) {
  var j := joinTypes(x.l.check(env), x.r.check(env));
  if j.isError() { theError; } else { theBool; }
}
method check(x@IfExpr, env) {
  var ct := x.c.check(env);
  if !ct.isBoolType() { return theError; }
  joinTypes(x.t.check(env), x.e.check(env));
}
method check(x@LetExpr, env) {
  var bt := x.bound.check(env);
  if bt.isError() { return theError; }
  x.body.check(new Env(x.name, bt, env));
}
method check(x@LambdaExpr, env) {
  var bt := x.body.check(new Env(x.name, x.pty, env));
  if bt.isError() { return theError; }
  new TFun(x.pty, bt);
}
method check(x@ApplyExpr, env) {
  checkApply(x.f.check(env), x.arg.check(env));
}

-- Application checking dispatches on the callee type; the argument
-- type passes through into the multi-method equality test.
method checkApply(ft@Type, at@Type) { theError; }
method checkApply(ft@TFun, at@Type) {
  if typeEq(ft.from, at) { ft.to; } else { theError; }
}

-- Expression generator (deterministic, seeded).
class Gen { field seed : Int := 0; field vars : Int := 0; }
method gnext(g@Gen) {
  g.seed := (g.seed * 1103515245 + 12345) % 2147483648;
  g.seed;
}
method gbelow(g@Gen, n@Int) { g.gnext() % n; }

method genType(g@Gen, depth@Int) {
  if depth <= 0 || g.gbelow(3) != 0 {
    if g.gbelow(2) == 0 { return theInt; }
    return theBool;
  }
  new TFun(genType(g, depth - 1), genType(g, depth - 1));
}

method genExpr(g@Gen, depth@Int) {
  if depth <= 0 {
    var k := g.gbelow(3);
    if k == 0 { return new IntLit(g.gbelow(100)); }
    if k == 1 { return new BoolLit(g.gbelow(2) == 0); }
    return new VarRef(g.gbelow(4));
  }
  var k := g.gbelow(8);
  if k == 0 { return new AddExpr(genExpr(g, depth - 1), genExpr(g, depth - 1)); }
  if k == 1 { return new LessExpr(genExpr(g, depth - 1), genExpr(g, depth - 1)); }
  if k == 2 { return new EqExpr(genExpr(g, depth - 1), genExpr(g, depth - 1)); }
  if k == 3 { return new IfExpr(genExpr(g, depth - 1), genExpr(g, depth - 1), genExpr(g, depth - 1)); }
  if k == 4 { return new LetExpr(g.gbelow(4), genExpr(g, depth - 1), genExpr(g, depth - 1)); }
  if k == 5 { return new LambdaExpr(g.gbelow(4), genType(g, 2), genExpr(g, depth - 1)); }
  if k == 6 { return new ApplyExpr(genExpr(g, depth - 1), genExpr(g, depth - 1)); }
  new AddExpr(new IntLit(g.gbelow(10)), genExpr(g, depth - 1));
}

-- A base environment with a few int/bool/function variables.
method baseEnv() {
  var env := new Env(0, theInt, nil);
  env := new Env(1, theBool, env);
  env := new Env(2, new TFun(theInt, theInt), env);
  env := new Env(3, new TFun(theInt, theBool), env);
  env;
}

method main() {
  var g := new Gen(987654321, 4);
  var env := baseEnv();
  var ok := 0;
  var bad := 0;
  var funs := 0;
  var nameChars := 0;
  var round := 0;
  while round < tcRounds {
    var e := genExpr(g, tcDepth);
    var t := e.check(env);
    nameChars := nameChars + strlen(t.typeName());
    if t.isError() { bad := bad + 1; }
    else {
      ok := ok + 1;
      if typeEq(t, t) && classname(t) == "TFun" { funs := funs + 1; }
    }
    round := round + 1;
  }
  println("ok=" + str(ok) + " bad=" + str(bad) + " funs=" + str(funs)
          + " nameChars=" + str(nameChars));
  ok * 1000000 + bad * 1000 + funs;
}
`
