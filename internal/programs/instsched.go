package programs

// InstSched is a MIPS-style assembly instruction scheduler (Table 2:
// "InstSched, 2,400 lines, a MIPS assembly code instruction
// scheduler"): a synthetic instruction stream is generated, a pairwise
// dependence graph is built with multi-method conflict tests, and a
// priority list scheduler fills issue slots respecting latencies.
func InstSched() Benchmark {
	return Benchmark{
		Name:        "InstSched",
		Description: "A MIPS assembly code instruction scheduler",
		PaperLines:  2400,
		Source:      instSchedSrc,
		Train:       map[string]int64{"schedInstrs": 60, "schedBlocks": 6},
		Test:        map[string]int64{"schedInstrs": 110, "schedBlocks": 14},
	}
}

const instSchedSrc = `
-- InstSched: list scheduler over a synthetic MIPS-like instruction
-- stream. The instruction kinds form a class hierarchy and the
-- dependence tests are multi-methods.

var schedInstrs := 60;   -- instructions per basic block
var schedBlocks := 6;    -- number of basic blocks to schedule

-- Deterministic linear congruential generator.
class Rand { field seed : Int := 1; }
method next(r@Rand) {
  r.seed := (r.seed * 1103515245 + 12345) % 2147483648;
  r.seed;
}
method nextBelow(r@Rand, n@Int) { r.next() % n; }

-- Instruction hierarchy.
class Instr {
  field num : Int := 0;
  field dest : Int := 0;   -- destination register (-1: none)
  field src1 : Int := 0;   -- source register (-1: none)
  field src2 : Int := 0;
}
class ArithInstr isa Instr
class AddInstr isa ArithInstr
class MulInstr isa ArithInstr
class DivInstr isa ArithInstr
class MemInstr isa Instr { field addrReg : Int := 0; }
class LoadInstr isa MemInstr
class StoreInstr isa MemInstr
class BranchInstr isa Instr
class NopInstr isa Instr

-- Latencies per instruction kind (single dispatch).
method latency(i@Instr) { 1; }
method latency(i@MulInstr) { 4; }
method latency(i@DivInstr) { 12; }
method latency(i@LoadInstr) { 3; }

-- Classification predicates, factored in the abstract superclass and
-- overridden in subclasses (the style the paper's §2 motivates).
method writesReg(i@Instr) { i.dest >= 0; }
method writesReg(i@StoreInstr) { false; }
method writesReg(i@BranchInstr) { false; }
method writesReg(i@NopInstr) { false; }
method readsMem(i@Instr) { false; }
method readsMem(i@LoadInstr) { true; }
method writesMem(i@Instr) { false; }
method writesMem(i@StoreInstr) { true; }
method isBarrier(i@Instr) { false; }
method isBarrier(i@BranchInstr) { true; }

method usesReg(i@Instr, r@Int) {
  i.src1 == r || i.src2 == r;
}
method usesReg(i@MemInstr, r@Int) {
  i.src1 == r || i.src2 == r || i.addrReg == r;
}

-- Dependence test between an earlier instruction a and a later
-- instruction b: multi-method over the two instruction kinds.
method depends(a@Instr, b@Instr) {
  -- RAW: b reads a register a writes.
  if a.writesReg() && b.usesReg(a.dest) { return true; }
  -- WAR: b writes a register a reads.
  if b.writesReg() && a.usesReg(b.dest) { return true; }
  -- WAW: both write the same register.
  if a.writesReg() && b.writesReg() && a.dest == b.dest { return true; }
  false;
}
method depends(a@StoreInstr, b@LoadInstr) { true; }   -- store→load: conservative memory dep
method depends(a@StoreInstr, b@StoreInstr) { true; }  -- store→store
method depends(a@LoadInstr, b@StoreInstr) { true; }   -- load→store
method depends(a@BranchInstr, b@Instr) { true; }      -- nothing moves below a branch...
method depends(a@Instr, b@BranchInstr) { true; }      -- ...or above it
method depends(a@BranchInstr, b@BranchInstr) { true; }

-- A basic block holds its instructions plus scheduling state.
class Block {
  field instrs : Array := nil;   -- array of Instr
  field n : Int := 0;
  field preds : Array := nil;    -- preds[i] = number of unscheduled predecessors
  field succs : Array := nil;    -- succs[i] = array of successor indexes
  field nsuccs : Array := nil;
  field height : Array := nil;   -- critical-path height
  field ready : Array := nil;    -- earliest issue cycle per instruction
}

method genInstr(r@Rand, num@Int) {
  var kind := r.nextBelow(10);
  var dest := r.nextBelow(8);
  var s1 := r.nextBelow(8);
  var s2 := r.nextBelow(8);
  var addr := r.nextBelow(8);
  if kind < 3 { return new AddInstr(num, dest, s1, s2); }
  if kind < 5 { return new MulInstr(num, dest, s1, s2); }
  if kind == 5 { return new DivInstr(num, dest, s1, s2); }
  if kind < 8 { return new LoadInstr(num, dest, s1, -1, addr); }
  if kind == 8 { return new StoreInstr(num, -1, s1, s2, addr); }
  new BranchInstr(num, -1, s1, -1);
}

method mkblock(r@Rand, n@Int) {
  var instrs := newarray(n);
  var i := 0;
  while i < n { aput(instrs, i, genInstr(r, i)); i := i + 1; }
  var b := new Block(instrs, n, newarray(n), newarray(n), newarray(n), newarray(n), newarray(n));
  i := 0;
  while i < n {
    aput(b.preds, i, 0);
    aput(b.succs, i, newarray(n));
    aput(b.nsuccs, i, 0);
    aput(b.height, i, 0);
    aput(b.ready, i, 0);
    i := i + 1;
  }
  b;
}

-- Build the dependence graph: O(n^2) pairwise multi-method tests (the
-- hot dispatching loop of this benchmark).
method buildDeps(b@Block) {
  var i := 0;
  while i < b.n {
    var a := aget(b.instrs, i);
    var j := i + 1;
    while j < b.n {
      var c := aget(b.instrs, j);
      if depends(a, c) {
        var sl := aget(b.succs, i);
        aput(sl, aget(b.nsuccs, i), j);
        aput(b.nsuccs, i, aget(b.nsuccs, i) + 1);
        aput(b.preds, j, aget(b.preds, j) + 1);
      }
      j := j + 1;
    }
    i := i + 1;
  }
}

-- Critical-path heights, computed backwards.
method computeHeights(b@Block) {
  var i := b.n - 1;
  while i >= 0 {
    var h := latency(aget(b.instrs, i));
    var k := 0;
    while k < aget(b.nsuccs, i) {
      var succ := aget(aget(b.succs, i), k);
      var cand := latency(aget(b.instrs, i)) + aget(b.height, succ);
      if cand > h { h := cand; }
      k := k + 1;
    }
    aput(b.height, i, h);
    i := i - 1;
  }
}

-- Priority list scheduling: at each cycle issue the ready instruction
-- with the greatest height; returns the schedule length.
method listSchedule(b@Block) {
  var scheduled := newarray(b.n);
  var i := 0;
  while i < b.n { aput(scheduled, i, false); i := i + 1; }
  var remaining := b.n;
  var cycle := 0;
  var lastCycle := 0;
  while remaining > 0 {
    -- pick the ready instruction with max height
    var best := -1;
    var bestH := -1;
    i := 0;
    while i < b.n {
      if !aget(scheduled, i) && aget(b.preds, i) == 0 && aget(b.ready, i) <= cycle {
        if aget(b.height, i) > bestH {
          bestH := aget(b.height, i);
          best := i;
        }
      }
      i := i + 1;
    }
    if best == -1 {
      cycle := cycle + 1;
    } else {
      aput(scheduled, best, true);
      remaining := remaining - 1;
      var fin := cycle + latency(aget(b.instrs, best));
      if fin > lastCycle { lastCycle := fin; }
      var k := 0;
      while k < aget(b.nsuccs, best) {
        var succ := aget(aget(b.succs, best), k);
        aput(b.preds, succ, aget(b.preds, succ) - 1);
        if fin > aget(b.ready, succ) { aput(b.ready, succ, fin); }
        k := k + 1;
      }
    }
  }
  lastCycle;
}

method main() {
  var r := new Rand(20260705);
  var total := 0;
  var blk := 0;
  while blk < schedBlocks {
    var b := mkblock(r, schedInstrs);
    b.buildDeps();
    b.computeHeights();
    total := total + b.listSchedule();
    blk := blk + 1;
  }
  -- Cold classification census over one extra small block (plus an
  -- explicit nop, the only kind the generator never emits): exercises
  -- the memory/barrier predicate hierarchy without perturbing the
  -- schedules measured above.
  var census := mkblock(r, 8);
  var memOps := 0;
  var barriers := 0;
  var j := 0;
  while j < census.n {
    var ins := aget(census.instrs, j);
    if ins.readsMem() || ins.writesMem() { memOps := memOps + 1; }
    if ins.isBarrier() { barriers := barriers + 1; }
    j := j + 1;
  }
  var nop := new NopInstr(-1, -1, -1, -1);
  if nop.writesReg() || nop.readsMem() || nop.writesMem() || nop.isBarrier() {
    barriers := barriers + 1;
  }
  println("total schedule length=" + str(total)
    + " censusMem=" + str(memOps) + " censusBarriers=" + str(barriers));
  total;
}
`
