package programs

import (
	"testing"

	"selspec/internal/driver"
	"selspec/internal/opt"
	"selspec/internal/specialize"
)

const testStepLimit = 200_000_000

func runBench(t *testing.T, b Benchmark, cfg opt.Config) *driver.Result {
	t.Helper()
	p, err := driver.Load(b.Source)
	if err != nil {
		t.Fatalf("%s does not load: %v", b.Name, err)
	}
	res, err := p.RunConfig(driver.ConfigOptions{
		Config:     cfg,
		Train:      b.Train,
		Test:       b.Test,
		SpecParams: specialize.Params{Threshold: specialize.DefaultThreshold},
		RunExtra: func(ro *driver.RunOptions) {
			ro.CaptureOutput = true
			ro.StepLimit = testStepLimit
		},
	})
	if err != nil {
		t.Fatalf("%s under %v: %v", b.Name, cfg, err)
	}
	return res
}

// TestBenchmarksLoad ensures every embedded benchmark parses, lowers
// and carries sensible metadata.
func TestBenchmarksLoad(t *testing.T) {
	all := append(All(), Sets())
	if len(all) != 5 {
		t.Fatalf("expected 4 paper benchmarks + Sets, got %d", len(all))
	}
	for _, b := range all {
		if _, err := driver.Load(b.Source); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if len(b.Train) == 0 || len(b.Test) == 0 {
			t.Errorf("%s: missing train/test inputs", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if b, ok := ByName("Richards"); !ok || b.Name != "Richards" {
		t.Fatal("ByName(Richards) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) should fail")
	}
}

// TestAllBenchmarksAllConfigsAgree is the central soundness check of
// the whole reproduction: every compiler configuration must compute the
// same program results and output as Base, for every benchmark.
func TestAllBenchmarksAllConfigsAgree(t *testing.T) {
	for _, b := range append(All(), Sets()) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			base := runBench(t, b, opt.Base)
			if base.Counters.Dispatches == 0 {
				t.Fatalf("%s performs no dynamic dispatches under Base — not a useful benchmark", b.Name)
			}
			for _, cfg := range []opt.Config{opt.Cust, opt.CustMM, opt.CHA, opt.Selective} {
				res := runBench(t, b, cfg)
				if res.Value != base.Value {
					t.Errorf("%v value %q != Base %q", cfg, res.Value, base.Value)
				}
				if res.Output != base.Output {
					t.Errorf("%v output %q != Base %q", cfg, res.Output, base.Output)
				}
			}
		})
	}
}

// TestPaperShape checks the orderings the paper's Figure 5 reports:
// every optimizing configuration removes dispatches relative to Base,
// and Selective removes at least as many as plain CHA and at least as
// many as customization.
func TestPaperShape(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			disp := map[opt.Config]uint64{}
			cyc := map[opt.Config]uint64{}
			for _, cfg := range opt.Configs() {
				res := runBench(t, b, cfg)
				disp[cfg] = res.Counters.DynamicDispatches()
				cyc[cfg] = res.Counters.Cycles
			}
			t.Logf("%s dispatches: Base=%d Cust=%d Cust-MM=%d CHA=%d Selective=%d",
				b.Name, disp[opt.Base], disp[opt.Cust], disp[opt.CustMM], disp[opt.CHA], disp[opt.Selective])
			t.Logf("%s cycles:     Base=%d Cust=%d Cust-MM=%d CHA=%d Selective=%d",
				b.Name, cyc[opt.Base], cyc[opt.Cust], cyc[opt.CustMM], cyc[opt.CHA], cyc[opt.Selective])

			for _, cfg := range []opt.Config{opt.Cust, opt.CustMM, opt.CHA, opt.Selective} {
				if disp[cfg] > disp[opt.Base] {
					t.Errorf("%v dispatches (%d) exceed Base (%d)", cfg, disp[cfg], disp[opt.Base])
				}
			}
			if disp[opt.Selective] > disp[opt.CHA] {
				t.Errorf("Selective (%d) should not dispatch more than CHA (%d)",
					disp[opt.Selective], disp[opt.CHA])
			}
			// The paper's Figure 5 has Selective beating Cust on every
			// benchmark; we allow a small tolerance because our Cust
			// also profits from exact-receiver binding in helpers that
			// fall below Selective's profile threshold.
			if float64(disp[opt.Selective]) > float64(disp[opt.Cust])*1.15 {
				t.Errorf("Selective (%d) should be within 15%% of Cust (%d) (paper Figure 5)",
					disp[opt.Selective], disp[opt.Cust])
			}
			if cyc[opt.Selective] >= cyc[opt.Base] {
				t.Errorf("Selective cycles (%d) should beat Base (%d)", cyc[opt.Selective], cyc[opt.Base])
			}
		})
	}
}

// TestCodeSpaceShape checks the Figure 6 orderings: customization
// multiplies compiled versions; Selective stays within a modest factor
// of Base.
func TestCodeSpaceShape(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			base := runBench(t, b, opt.Base)
			cust := runBench(t, b, opt.Cust)
			sel := runBench(t, b, opt.Selective)
			t.Logf("%s versions: Base=%d Cust=%d Selective=%d (IR nodes %d/%d/%d)",
				b.Name, base.Stats.Versions, cust.Stats.Versions, sel.Stats.Versions,
				base.Stats.IRNodes, cust.Stats.IRNodes, sel.Stats.IRNodes)
			if cust.Stats.Versions <= base.Stats.Versions {
				t.Errorf("Cust should add versions: %d vs %d", cust.Stats.Versions, base.Stats.Versions)
			}
			if sel.Stats.Versions >= cust.Stats.Versions {
				t.Errorf("Selective versions (%d) should undercut Cust (%d) (paper: −65%% to −73%%)",
					sel.Stats.Versions, cust.Stats.Versions)
			}
		})
	}
}
