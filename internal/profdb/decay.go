// Exponential decay: how the aggregate forgets. Without decay, a
// workload that dominated traffic a month ago keeps driving
// specialization decisions forever; with it, every arc weight halves
// once per half-life, so the aggregate tracks what the fleet is
// running *now* (§3.7.2's persistent database, production-scaled).
//
// Time is quantized into epochs (a configurable fraction of the
// half-life). Weights are only ever touched at epoch boundaries: an
// aggregate carries the epoch it was last advanced to, and advancing
// it k epochs multiplies every weight by factor^k (factor =
// 2^(-epoch/halfLife)), rounding down, dropping arcs that reach zero.
// Crucially the epoch of every upload is fixed at ingest time and
// persisted in its WAL record, so replaying a log applies exactly the
// decay the original ingests applied — recovery is deterministic even
// though decay is time-driven.
package profdb

import (
	"fmt"
	"math"
	"time"
)

// ParseHalfLife parses a CLI half-life flag: "" means decay disabled,
// anything else must be a positive duration. Zero and negative values
// are configuration errors, not "disable": a zero half-life would
// decay every weight to nothing instantly, which is never what an
// operator meant.
func ParseHalfLife(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("profdb: invalid half-life %q: %v", s, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("profdb: half-life must be positive, got %v", d)
	}
	return d, nil
}

// decayFactor is the per-epoch multiplier: 2^(-epoch/halfLife).
// With Epoch == HalfLife this is exactly 0.5.
func decayFactor(epoch, halfLife time.Duration) float64 {
	return math.Exp2(-float64(epoch) / float64(halfLife))
}

// decayWeight applies k epochs of decay to one weight, rounding down.
// The result is monotonically non-increasing in k: factor ≤ 1, so
// w·factor^k ≤ w, and floor preserves the ordering.
func decayWeight(w int64, factor float64, k int64) int64 {
	if k <= 0 || w <= 0 {
		return w
	}
	decayed := float64(w) * math.Pow(factor, float64(k))
	if decayed < 1 {
		return 0
	}
	return int64(math.Floor(decayed))
}

// epochOf maps a wall-clock instant to its epoch number. With decay
// disabled every instant is epoch 0, which makes the whole decay layer
// a no-op without a separate code path.
func (c *Config) epochOf(t time.Time) int64 {
	if c.HalfLife <= 0 || c.Epoch <= 0 {
		return 0
	}
	return t.UnixNano() / int64(c.Epoch)
}
