package profdb

import (
	"testing"
	"time"

	"selspec/internal/profile"
)

func TestParseHalfLife(t *testing.T) {
	if d, err := ParseHalfLife(""); err != nil || d != 0 {
		t.Fatalf("empty: d=%v err=%v, want disabled", d, err)
	}
	if d, err := ParseHalfLife("30m"); err != nil || d != 30*time.Minute {
		t.Fatalf("30m: d=%v err=%v", d, err)
	}
	// Zero and negative are configuration errors, not "disable".
	for _, s := range []string{"0s", "0", "-5m", "-1h30m", "bananas"} {
		if _, err := ParseHalfLife(s); err == nil {
			t.Fatalf("ParseHalfLife(%q) accepted, want error", s)
		}
	}
}

func TestConfigValidateRejectsNegative(t *testing.T) {
	if _, err := (Config{HalfLife: -time.Hour}).Validate(); err == nil {
		t.Fatal("negative half-life accepted")
	}
	if _, err := (Config{HalfLife: time.Hour, Epoch: -time.Minute}).Validate(); err == nil {
		t.Fatal("negative epoch accepted")
	}
	cfg, err := (Config{HalfLife: time.Hour}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Epoch != 15*time.Minute {
		t.Fatalf("default epoch = %v, want half-life/4", cfg.Epoch)
	}
}

// Epoch-boundary rounding: with Epoch == HalfLife the per-epoch factor
// is exactly 0.5 and decay is floor division by two.
func TestDecayWeightRounding(t *testing.T) {
	f := decayFactor(time.Hour, time.Hour)
	if f != 0.5 {
		t.Fatalf("factor = %v, want exactly 0.5", f)
	}
	cases := []struct {
		w    int64
		k    int64
		want int64
	}{
		{1000, 1, 500},
		{999, 1, 499}, // floor, not round-to-nearest
		{1000, 2, 250},
		{999, 2, 249},
		{1, 1, 0}, // below 1 decays to zero, not to a lingering 1
		{0, 5, 0},
		{7, 0, 7}, // zero elapsed epochs is the identity
		{1 << 40, 1, 1 << 39},
	}
	for _, tc := range cases {
		if got := decayWeight(tc.w, f, tc.k); got != tc.want {
			t.Errorf("decayWeight(%d, 0.5, %d) = %d, want %d", tc.w, tc.k, got, tc.want)
		}
	}
}

// Weights must be monotonically non-increasing across idle epochs, for
// any weight and any factor — decay never resurrects mass.
func TestDecayMonotone(t *testing.T) {
	for _, hl := range []time.Duration{time.Hour, 7 * time.Hour} {
		for _, ep := range []time.Duration{time.Hour, 13 * time.Minute} {
			f := decayFactor(ep, hl)
			for _, w0 := range []int64{1, 2, 3, 999, 12345, 1 << 50} {
				prev := w0
				for k := int64(1); k <= 64; k++ {
					cur := decayWeight(w0, f, k)
					if cur > prev {
						t.Fatalf("decay increased: w0=%d hl=%v ep=%v k=%d: %d > %d",
							w0, hl, ep, k, cur, prev)
					}
					prev = cur
				}
			}
		}
	}
}

// Golden fixture for decay x merge commutativity: with even weights
// and factor exactly 0.5, decaying the merged aggregate equals merging
// the decayed parts — ingest order relative to an epoch boundary does
// not change what the database converges to.
func TestDecayMergeCommutesGolden(t *testing.T) {
	f := decayFactor(time.Hour, time.Hour) // exactly 0.5
	a := []int64{100, 2048, 4, 77778}
	b := []int64{200, 2, 65536, 2222}
	for i := range a {
		merged := decayWeight(a[i]+b[i], f, 1)
		parts := decayWeight(a[i], f, 1) + decayWeight(b[i], f, 1)
		if merged != parts {
			t.Errorf("decay(a+b)=%d != decay(a)+decay(b)=%d for a=%d b=%d",
				merged, parts, a[i], b[i])
		}
	}
}

// The same commutativity at the database level: two databases, one
// ingesting both uploads before the epoch turns and one split across
// the boundary, export identical profiles (even-weight golden case).
func TestDBDecayAcrossEpochBoundary(t *testing.T) {
	base := time.Unix(1_000_000, 0)
	mkdb := func(t *testing.T, now *time.Time) *DB {
		t.Helper()
		db, err := Open(t.TempDir(), Config{
			HalfLife: time.Hour, Epoch: time.Hour,
			Now: func() time.Time { return *now },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}

	// DB1: both uploads at epoch e, observed at e+1.
	now1 := base
	db1 := mkdb(t, &now1)
	mustIngest(t, db1, "p", wp([3]int64{0, 0, 100}))
	mustIngest(t, db1, "p", wp([3]int64{0, 0, 200}))
	now1 = base.Add(time.Hour)
	w1 := mustExport(t, db1, "p")

	// DB2: first upload at epoch e, second at e+1 pre-decayed by hand
	// (the client saw the boundary pass and halved its weight), so both
	// databases describe the same ground truth.
	now2 := base
	db2 := mkdb(t, &now2)
	mustIngest(t, db2, "p", wp([3]int64{0, 0, 100}))
	now2 = base.Add(time.Hour)
	mustIngest(t, db2, "p", wp([3]int64{0, 0, 100}))
	w2 := mustExport(t, db2, "p")

	// DB1: (100+200)/2 = 150. DB2: 100/2 + 100 = 150.
	if len(w1.Arcs) != 1 || w1.Arcs[0].Weight != 150 {
		t.Fatalf("db1 export = %+v, want single arc weight 150", w1.Arcs)
	}
	if len(w2.Arcs) != 1 || w2.Arcs[0].Weight != 150 {
		t.Fatalf("db2 export = %+v, want single arc weight 150", w2.Arcs)
	}
}

// An idle program's weights only ever shrink, and arcs that reach zero
// vanish rather than lingering.
func TestDBIdleDecayShrinksToEmpty(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	db, err := Open(t.TempDir(), Config{
		HalfLife: time.Hour, Epoch: time.Hour,
		Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustIngest(t, db, "p", wp([3]int64{0, 0, 100}, [3]int64{1, 1, 3}))
	prev := int64(1 << 62)
	for i := 0; i < 10; i++ {
		now = now.Add(time.Hour)
		w := mustExport(t, db, "p")
		var total int64
		for _, a := range w.Arcs {
			total += a.Weight
		}
		if total > prev {
			t.Fatalf("idle decay increased total: %d > %d", total, prev)
		}
		prev = total
	}
	if w := mustExport(t, db, "p"); len(w.Arcs) != 0 {
		t.Fatalf("after 10 idle half-lives arcs remain: %+v", w.Arcs)
	}
}

func mustIngest(t *testing.T, db *DB, prog string, w *profile.Wire) uint64 {
	t.Helper()
	seq, err := db.Ingest(prog, w)
	if err != nil {
		t.Fatalf("Ingest(%s): %v", prog, err)
	}
	return seq
}

func mustExport(t *testing.T, db *DB, prog string) *profile.Wire {
	t.Helper()
	w, err := db.Export(prog)
	if err != nil {
		t.Fatalf("Export(%s): %v", prog, err)
	}
	return w
}
