package profdb

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"selspec/internal/profile"
)

// wp builds a minimal valid wire profile from (site, callee, weight)
// triples.
func wp(arcs ...[3]int64) *profile.Wire {
	w := &profile.Wire{Version: profile.FormatVersion, Arcs: []profile.WireArc{}}
	for _, a := range arcs {
		w.Arcs = append(w.Arcs, profile.WireArc{Site: int(a[0]), Callee: int(a[1]), Weight: a[2]})
	}
	return w
}

// frames encodes a sequence of records into one WAL image.
func frames(t testing.TB, recs ...*walRecord) []byte {
	t.Helper()
	var out []byte
	for _, r := range recs {
		b, err := encodeRecord(r)
		if err != nil {
			t.Fatalf("encodeRecord: %v", err)
		}
		out = append(out, b...)
	}
	return out
}

func TestScanWALRoundTrip(t *testing.T) {
	img := frames(t,
		&walRecord{Seq: 1, Program: "a", Epoch: 0, Profile: wp([3]int64{0, 0, 10})},
		&walRecord{Seq: 2, Program: "b", Epoch: 1, Profile: wp([3]int64{1, 2, 3}, [3]int64{4, 5, 6})},
	)
	res := scanWAL(img)
	if res.truncated {
		t.Fatalf("clean log reported truncated: %s", res.reason)
	}
	if res.goodOff != int64(len(img)) {
		t.Fatalf("goodOff = %d, want %d", res.goodOff, len(img))
	}
	if len(res.records) != 2 {
		t.Fatalf("got %d records, want 2", len(res.records))
	}
	if res.records[0].Program != "a" || res.records[1].Program != "b" {
		t.Fatalf("programs = %q, %q", res.records[0].Program, res.records[1].Program)
	}
	if res.records[1].Profile.Arcs[1].Weight != 6 {
		t.Fatalf("arc weight = %d, want 6", res.records[1].Profile.Arcs[1].Weight)
	}
}

func TestScanWALEmpty(t *testing.T) {
	res := scanWAL(nil)
	if res.truncated || res.goodOff != 0 || len(res.records) != 0 {
		t.Fatalf("empty scan: %+v", res)
	}
}

// TestScanWALTornTail covers the crash-artifact taxonomy: each
// corruption of the second record must preserve the first record
// exactly and truncate at the frame boundary.
func TestScanWALTornTail(t *testing.T) {
	r1 := &walRecord{Seq: 1, Program: "a", Epoch: 0, Profile: wp([3]int64{0, 0, 10})}
	r2 := &walRecord{Seq: 2, Program: "a", Epoch: 0, Profile: wp([3]int64{0, 0, 20})}
	f1 := frames(t, r1)
	full := frames(t, r1, r2)

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
	}{
		{"torn header", func(b []byte) []byte { return b[:len(f1)+3] }},
		{"torn body", func(b []byte) []byte { return b[:len(b)-5] }},
		{"checksum flip", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}},
		{"zero length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(f1):], 0)
			return b
		}},
		{"oversized length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(f1):], maxRecordLen+1)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := tc.corrupt(append([]byte(nil), full...))
			res := scanWAL(img)
			if !res.truncated {
				t.Fatalf("corruption not detected")
			}
			if res.goodOff != int64(len(f1)) {
				t.Fatalf("goodOff = %d, want %d (first record boundary)", res.goodOff, len(f1))
			}
			if len(res.records) != 1 || res.records[0].Seq != 1 {
				t.Fatalf("surviving records: %d", len(res.records))
			}
		})
	}
}

// A checksum-valid record can still be semantically bogus (hand-edited
// log, checksum collision); the scanner must stop there too.
func TestScanWALInconsistentRecords(t *testing.T) {
	r1 := &walRecord{Seq: 5, Program: "a", Epoch: 0, Profile: wp([3]int64{0, 0, 1})}
	cases := []struct {
		name string
		bad  *walRecord
	}{
		{"non-increasing seq", &walRecord{Seq: 5, Program: "a", Epoch: 0, Profile: wp()}},
		{"nil profile", &walRecord{Seq: 6, Program: "a", Epoch: 0, Profile: nil}},
		{"negative weight", &walRecord{Seq: 6, Program: "a", Epoch: 0, Profile: wp([3]int64{0, 0, -1})}},
		{"bad version profile", &walRecord{Seq: 6, Program: "a", Epoch: 0,
			Profile: &profile.Wire{Version: 99, Arcs: []profile.WireArc{}}}},
	}
	f1 := frames(t, r1)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := frames(t, r1, tc.bad)
			res := scanWAL(img)
			if !res.truncated || res.goodOff != int64(len(f1)) || len(res.records) != 1 {
				t.Fatalf("inconsistent record not cut: truncated=%v off=%d n=%d",
					res.truncated, res.goodOff, len(res.records))
			}
		})
	}
}

func TestScanWALUnknownVersion(t *testing.T) {
	img := frames(t, &walRecord{Seq: 1, Program: "a", Epoch: 0, Profile: wp()})
	img[recHeaderLen] = 42 // record version byte
	// Fix the checksum so only the version check can trip.
	body := img[recHeaderLen:]
	binary.LittleEndian.PutUint32(img[4:8], crc32.Checksum(body, crcTable))
	res := scanWAL(img)
	if !res.truncated || res.goodOff != 0 {
		t.Fatalf("unknown version accepted: %+v", res)
	}
}
