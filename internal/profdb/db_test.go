package profdb

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"selspec/internal/obs"
	"selspec/internal/profile"
)

func TestIngestExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if seq := mustIngest(t, db, "p", wp([3]int64{0, 0, 10})); seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	if seq := mustIngest(t, db, "p", wp([3]int64{0, 0, 5}, [3]int64{1, 2, 7})); seq != 2 {
		t.Fatalf("second seq = %d, want 2", seq)
	}
	w := mustExport(t, db, "p")
	if len(w.Arcs) != 2 || w.Arcs[0].Weight != 15 || w.Arcs[1].Weight != 7 {
		t.Fatalf("export = %+v", w.Arcs)
	}
	if _, err := db.Export("nope"); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("unknown program: %v", err)
	}
}

func TestReopenRecoversAggregates(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "a", wp([3]int64{0, 0, 10}))
	mustIngest(t, db, "b", wp([3]int64{1, 1, 20}))
	mustIngest(t, db, "a", wp([3]int64{0, 0, 1}))
	want := mustExport(t, db, "a")
	db.Close()

	db2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := mustExport(t, db2, "a"); !wireEqual(t, got, want) {
		t.Fatalf("recovered export differs: %+v vs %+v", got, want)
	}
	if db2.Stats().Seq != 3 {
		t.Fatalf("recovered seq = %d, want 3", db2.Stats().Seq)
	}
	// Ingest after reopen continues the sequence.
	if seq := mustIngest(t, db2, "a", wp([3]int64{0, 0, 1})); seq != 4 {
		t.Fatalf("post-recovery seq = %d, want 4", seq)
	}
}

func TestCompactionSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	db, err := Open(dir, Config{CompactEvery: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		mustIngest(t, db, "p", wp([3]int64{0, 0, 1}))
	}
	want := mustExport(t, db, "p")
	db.Close()

	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	// 7 ingests with CompactEvery=3: compactions at 3 and 6, leaving
	// one record in the WAL.
	st, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	res := scanWAL(readFileT(t, filepath.Join(dir, walName)))
	if len(res.records) != 1 || res.truncated {
		t.Fatalf("wal after compaction: %d records (size %d), truncated=%v",
			len(res.records), st.Size(), res.truncated)
	}

	db2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := mustExport(t, db2, "p"); !wireEqual(t, got, want) {
		t.Fatalf("post-compaction recovery differs")
	}
}

// A crash between snapshot publication and WAL truncation leaves
// already-compacted records in the log; replay must skip them instead
// of double-counting.
func TestRecoverySkipsRecordsBelowSnapshotSeq(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Config{CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "p", wp([3]int64{0, 0, 10}))
	mustIngest(t, db, "p", wp([3]int64{0, 0, 10})) // compacts, truncates WAL
	want := mustExport(t, db, "p")
	db.Close()

	// Re-append the two compacted records as if the truncate never
	// happened.
	img := frames(t,
		&walRecord{Seq: 1, Program: "p", Epoch: 0, Profile: wp([3]int64{0, 0, 10})},
		&walRecord{Seq: 2, Program: "p", Epoch: 0, Profile: wp([3]int64{0, 0, 10})},
	)
	if err := os.WriteFile(filepath.Join(dir, walName), img, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := mustExport(t, db2, "p"); !wireEqual(t, got, want) {
		t.Fatalf("duplicate tail double-counted: %+v, want %+v", got.Arcs, want.Arcs)
	}
}

// A leftover snapshot tmp from an interrupted compaction is garbage
// and must be swept, never adopted.
func TestRecoveryRemovesStaleSnapshotTmp(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "p", wp([3]int64{0, 0, 10}))
	db.Close()
	tmp := filepath.Join(dir, snapName+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale tmp survived recovery: %v", err)
	}
	if w := mustExport(t, db2, "p"); w.Arcs[0].Weight != 10 {
		t.Fatalf("aggregate lost: %+v", w.Arcs)
	}
}

func TestLRUEvictionByLastSeq(t *testing.T) {
	db, err := Open(t.TempDir(), Config{MaxPrograms: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustIngest(t, db, "old", wp([3]int64{0, 0, 1}))
	mustIngest(t, db, "mid", wp([3]int64{0, 0, 1}))
	mustIngest(t, db, "old", wp([3]int64{0, 0, 1})) // refresh "old"
	mustIngest(t, db, "new", wp([3]int64{0, 0, 1})) // evicts "mid", the LRU
	got := db.Programs()
	if len(got) != 2 || got[0] != "new" || got[1] != "old" {
		t.Fatalf("programs after eviction = %v, want [new old]", got)
	}
}

func TestMaxArcsCapKeepsHeaviest(t *testing.T) {
	db, err := Open(t.TempDir(), Config{MaxArcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustIngest(t, db, "p", wp(
		[3]int64{0, 0, 5}, [3]int64{1, 0, 50}, [3]int64{2, 0, 500},
	))
	w := mustExport(t, db, "p")
	if len(w.Arcs) != 2 || w.Arcs[0].Site != 1 || w.Arcs[1].Site != 2 {
		t.Fatalf("cap kept wrong arcs: %+v", w.Arcs)
	}
}

func TestIngestRejectsOverflow(t *testing.T) {
	reg := obs.NewRegistry()
	db, err := Open(t.TempDir(), Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustIngest(t, db, "p", wp([3]int64{0, 0, math.MaxInt64 - 1}))
	want := mustExport(t, db, "p")

	_, err = db.Ingest("p", wp([3]int64{0, 0, 2}))
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("overflow ingest: %v, want RejectError", err)
	}
	// The reject left both memory and the log untouched.
	if got := mustExport(t, db, "p"); !wireEqual(t, got, want) {
		t.Fatalf("reject mutated aggregate")
	}
	if seq := mustIngest(t, db, "q", wp([3]int64{0, 0, 1})); seq != 2 {
		t.Fatalf("seq after reject = %d, want 2 (no seq burned)", seq)
	}
	// Overflow within a single upload's duplicate arcs is caught too.
	if _, err := db.Ingest("p", wp([3]int64{5, 5, math.MaxInt64 - 1},
		[3]int64{5, 5, math.MaxInt64 - 1})); err == nil {
		t.Fatal("intra-upload duplicate-arc overflow accepted")
	}
}

func TestIngestRejectsInvalidProfile(t *testing.T) {
	db, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cases := []*profile.Wire{
		{Version: 99},
		{Version: profile.FormatVersion, Arcs: []profile.WireArc{{Site: -1, Callee: 0, Weight: 1}}},
		{Version: profile.FormatVersion, Arcs: []profile.WireArc{{Site: 0, Callee: 0, Weight: -1}}},
	}
	for i, w := range cases {
		var rej *RejectError
		if _, err := db.Ingest("p", w); !errors.As(err, &rej) {
			t.Errorf("case %d: %v, want RejectError", i, err)
		}
	}
	if _, err := db.Ingest("", wp()); err == nil {
		t.Error("empty program name accepted")
	}
}

func TestOpenAsyncRecoveringState(t *testing.T) {
	dir := t.TempDir()
	seed, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, seed, "p", wp([3]int64{0, 0, 10}))
	seed.Close()

	gate := make(chan struct{})
	db, err := OpenAsync(dir, Config{RecoveryHook: func() { <-gate }})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if st := db.State(); st != StateRecovering {
		t.Fatalf("state during recovery = %q", st)
	}
	if _, err := db.Ingest("p", wp([3]int64{0, 0, 1})); !errors.Is(err, ErrRecovering) {
		t.Fatalf("ingest during recovery: %v", err)
	}
	if _, err := db.Export("p"); !errors.Is(err, ErrRecovering) {
		t.Fatalf("export during recovery: %v", err)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := db.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if st := db.State(); st != StateReady {
		t.Fatalf("state after recovery = %q", st)
	}
	if w := mustExport(t, db, "p"); w.Arcs[0].Weight != 10 {
		t.Fatalf("recovered weight = %d", w.Arcs[0].Weight)
	}
}

func TestTupleSampleMergeWithOverflow(t *testing.T) {
	db, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	w1 := wp([3]int64{0, 0, 1})
	w1.Entries = []profile.WireEntry{{Method: 3, Tuples: [][]int{{1, 2}, {3, 4}}}}
	w2 := wp([3]int64{0, 0, 1})
	w2.Entries = []profile.WireEntry{
		{Method: 3, Tuples: [][]int{{1, 2}, {5, 6}}},
		{Method: 7, Overflow: true},
	}
	mustIngest(t, db, "p", w1)
	mustIngest(t, db, "p", w2)
	got := mustExport(t, db, "p")
	if len(got.Entries) != 2 {
		t.Fatalf("entries = %+v", got.Entries)
	}
	if got.Entries[0].Method != 3 || len(got.Entries[0].Tuples) != 3 {
		t.Fatalf("method 3 union = %+v", got.Entries[0])
	}
	if got.Entries[1].Method != 7 || !got.Entries[1].Overflow {
		t.Fatalf("method 7 overflow lost: %+v", got.Entries[1])
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	db, err := Open(dir, Config{Metrics: reg, CompactEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, db, "p", wp([3]int64{0, 0, 1}))
	mustIngest(t, db, "p", wp([3]int64{0, 0, 1}))
	db.Ingest("p", &profile.Wire{Version: 99})
	db.RecordReject()
	db.Close()

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"selspec_profdb_ingests_total 2",
		"selspec_profdb_rejects_total 2",
		"selspec_profdb_compactions_total 1",
		"selspec_profdb_recoveries_total 1",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readFileT(t, path); string(got) != "v2" {
		t.Fatalf("content = %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp left behind: %v", err)
	}
}

func wireEqual(t *testing.T, a, b *profile.Wire) bool {
	t.Helper()
	ab, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ab, bb)
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
