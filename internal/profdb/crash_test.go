// Crash drills: every test arms the pipeline I/O fault seam to fail a
// durable operation at a chosen point — the deterministic stand-in for
// SIGKILL at a chosen byte offset — then reopens the directory and
// asserts the database recovered to exactly the acked prefix. The
// black-box companion (a real kill -9 against a serving process) lives
// in the CI profdb-crash job; these run under -race in the ordinary
// test suite.
package profdb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"selspec/internal/pipeline"
	"selspec/internal/profile"
)

// ackedDB seeds a database with acked uploads and returns their wires,
// so drills can compare "what was acknowledged" against "what
// recovery produced".
func ackedUploads(n int) []*profile.Wire {
	out := make([]*profile.Wire, n)
	for i := range out {
		out[i] = wp([3]int64{0, 0, int64(10 * (i + 1))}, [3]int64{int64(i), 1, 7})
	}
	return out
}

// replayReference builds the ground truth: a fresh database fed the
// acked uploads in order, no faults anywhere.
func replayReference(t *testing.T, uploads []*profile.Wire) *profile.Wire {
	t.Helper()
	ref, err := Open(t.TempDir(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, u := range uploads {
		mustIngest(t, ref, "p", u)
	}
	return mustExport(t, ref, "p")
}

// Torn WAL append: the write fails after a prefix of the frame lands
// on disk — exactly what SIGKILL mid-write leaves. The failed upload
// was never acked; recovery must produce the acked prefix and nothing
// else, byte-identically.
func TestCrashTornWALAppend(t *testing.T) {
	for _, shortBytes := range []int{0, 1, 7, 8, 9, 40} {
		uploads := ackedUploads(3)
		dir := t.TempDir()
		db, err := Open(dir, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range uploads {
			mustIngest(t, db, "p", u)
		}

		disarm := pipeline.ArmIOFaults(pipeline.NewIOInjector(1, pipeline.IORule{
			Op: pipeline.IOWrite, Path: walName, ShortBytes: shortBytes, Limit: 1,
		}))
		_, err = db.Ingest("p", wp([3]int64{9, 9, 999}))
		disarm()
		var fl *pipeline.IOFault
		if !errors.As(err, &fl) {
			t.Fatalf("short=%d: ingest error = %v, want injected fault", shortBytes, err)
		}
		// Fail-stop: the database refuses everything until restart.
		if _, err := db.Ingest("p", wp([3]int64{0, 0, 1})); err == nil {
			t.Fatalf("short=%d: ingest after fault succeeded", shortBytes)
		}
		if _, err := db.Export("p"); err == nil {
			t.Fatalf("short=%d: export after fault succeeded", shortBytes)
		}
		if st := db.State(); st != StateFailed {
			t.Fatalf("short=%d: state = %q, want failed", shortBytes, st)
		}
		db.Close()

		db2, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("short=%d: recovery failed: %v", shortBytes, err)
		}
		got := mustExport(t, db2, "p")
		if !wireEqual(t, got, replayReference(t, uploads)) {
			t.Fatalf("short=%d: recovered aggregate != acked prefix", shortBytes)
		}
		if db2.Stats().Seq != 3 {
			t.Fatalf("short=%d: recovered seq = %d, want 3", shortBytes, db2.Stats().Seq)
		}
		db2.Close()
	}
}

// An fsync failure after a complete write: the bytes may or may not be
// durable, so the upload is not acked and the database fail-stops.
// Recovery accepts either outcome — the acked prefix, or the acked
// prefix plus the complete-but-unacked record — but the acked records
// must all survive. (Here the write completed, so replay sees it; the
// drill asserts the at-least-once bound rather than exact equality.)
func TestCrashFsyncFailure(t *testing.T) {
	uploads := ackedUploads(2)
	dir := t.TempDir()
	db, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range uploads {
		mustIngest(t, db, "p", u)
	}
	disarm := pipeline.ArmIOFaults(pipeline.NewIOInjector(1, pipeline.IORule{
		Op: pipeline.IOFsync, Path: walName, Limit: 1,
	}))
	_, err = db.Ingest("p", wp([3]int64{3, 3, 30}))
	disarm()
	if err == nil {
		t.Fatal("ingest with failed fsync acked")
	}
	if st := db.State(); st != StateFailed {
		t.Fatalf("state = %q, want failed", st)
	}
	db.Close()

	db2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db2.Close()
	if seq := db2.Stats().Seq; seq != 2 && seq != 3 {
		t.Fatalf("recovered seq = %d, want 2 (acked) or 3 (at-least-once)", seq)
	}
	got := mustExport(t, db2, "p")
	if got.Arcs[0].Weight < 30 { // both acked uploads carry arc 0->0
		t.Fatalf("acked records lost: %+v", got.Arcs)
	}
}

// Compaction faults are non-fatal: a failed tmp write, fsync, or
// rename leaves the old snapshot and the intact WAL, and the database
// keeps serving. Recovery after any of them reproduces everything.
func TestCrashDuringCompaction(t *testing.T) {
	cases := []struct {
		name string
		rule pipeline.IORule
	}{
		{"tmp write fails", pipeline.IORule{Op: pipeline.IOWrite, Path: snapName + ".tmp", Limit: 1}},
		{"tmp torn write", pipeline.IORule{Op: pipeline.IOWrite, Path: snapName + ".tmp", ShortBytes: 10, Limit: 1}},
		{"tmp fsync fails", pipeline.IORule{Op: pipeline.IOFsync, Path: snapName + ".tmp", Limit: 1}},
		{"rename fails", pipeline.IORule{Op: pipeline.IORename, Path: snapName, Limit: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			uploads := ackedUploads(4)
			dir := t.TempDir()
			db, err := Open(dir, Config{CompactEvery: 4})
			if err != nil {
				t.Fatal(err)
			}
			disarm := pipeline.ArmIOFaults(pipeline.NewIOInjector(1, tc.rule))
			for _, u := range uploads { // 4th ingest triggers the doomed compaction
				mustIngest(t, db, "p", u)
			}
			disarm()
			if st := db.State(); st != StateReady {
				t.Fatalf("compaction fault killed the db: state = %q", st)
			}
			// Still serving after the failed compaction.
			mustIngest(t, db, "p", wp([3]int64{8, 8, 80}))
			want := mustExport(t, db, "p")
			db.Close()

			db2, err := Open(dir, Config{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer db2.Close()
			if got := mustExport(t, db2, "p"); !wireEqual(t, got, want) {
				t.Fatalf("recovered aggregate != pre-crash aggregate")
			}
		})
	}
}

// A crash between the snapshot tmp write and its rename leaves a
// complete tmp beside the old state; recovery must discard it and
// rebuild from snapshot + WAL. (Simulated by failing the rename, then
// restoring the tmp the helper cleaned up.)
func TestCrashBetweenTmpAndRename(t *testing.T) {
	uploads := ackedUploads(3)
	dir := t.TempDir()
	db, err := Open(dir, Config{CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	disarm := pipeline.ArmIOFaults(pipeline.NewIOInjector(1, pipeline.IORule{
		Op: pipeline.IORename, Path: snapName, Limit: 1,
	}))
	for _, u := range uploads {
		mustIngest(t, db, "p", u)
	}
	disarm()
	db.Close()
	// Reconstruct the crash state: the tmp file fully written but never
	// renamed (WriteFileAtomic removed it after the injected failure).
	tmp := filepath.Join(dir, snapName+".tmp")
	if err := os.WriteFile(tmp, []byte(`{"version":1,"seq":999,"programs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("orphaned snapshot tmp not removed")
	}
	got := mustExport(t, db2, "p")
	if !wireEqual(t, got, replayReference(t, uploads)) {
		t.Fatal("recovered aggregate != acked uploads")
	}
	if db2.Stats().Seq != 3 {
		t.Fatalf("seq = %d (adopted the orphan tmp?), want 3", db2.Stats().Seq)
	}
}

// The equivalence the consumers depend on: an export from a recovered
// store is byte-identical to one from a database that ingested the
// acked uploads in order with no crash — so `specialize -from-db`
// cannot tell whether the store ever crashed.
func TestRecoveredExportByteIdentical(t *testing.T) {
	uploads := ackedUploads(5)
	dir := t.TempDir()
	db, err := Open(dir, Config{CompactEvery: 2}) // exercise snapshots too
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range uploads {
		mustIngest(t, db, "p", u)
	}
	// Crash attempt 6 mid-append, torn frame on disk.
	disarm := pipeline.ArmIOFaults(pipeline.NewIOInjector(1, pipeline.IORule{
		Op: pipeline.IOWrite, Path: walName, ShortBytes: 13, Limit: 1,
	}))
	db.Ingest("p", wp([3]int64{6, 6, 66}))
	disarm()
	db.Close()

	db2, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Export("p")
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := got.Marshal()
	wb, _ := replayReference(t, uploads).Marshal()
	if string(gb) != string(wb) {
		t.Fatalf("recovered export differs from in-order replay:\n%s\nvs\n%s", gb, wb)
	}
}
