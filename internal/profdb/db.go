// Package profdb is the crash-safe distributed profile database: the
// paper's "persistent internal database of profile information"
// (§3.7.2) production-scaled from a single JSON file into a durable,
// bounded, decaying aggregate of profile uploads from many runs.
//
// The contract, layer by layer:
//
//   - Durability (wal.go, atomic.go): every accepted upload is
//     appended to a checksummed write-ahead log and fsync'd before it
//     is acknowledged. Periodically the in-memory aggregate is
//     compacted into a snapshot published by atomic rename, and the
//     WAL is truncated. A kill -9 at any byte offset recovers, on the
//     next Open, to exactly the acked prefix: complete records replay,
//     the torn tail is truncated, never a failed startup.
//   - Aggregation (this file, decay.go): uploads merge arc-weight-wise
//     under the same int64 overflow guard profile.UnmarshalInto
//     applies, with exponential decay per epoch so stale workloads
//     stop driving specialization, and per-program caps plus LRU
//     program eviction bounding memory no matter how much traffic
//     arrives.
//   - Fail-stop: if a durable write fails mid-append the database
//     cannot know what reached the disk, so it refuses further writes
//     (every operation returns the original fault) until the process
//     restarts and recovery re-derives the truth from the log — the
//     same posture as a crash, chosen deliberately over guessing.
//
// The database is program-agnostic: it stores profiles in
// profile.Wire form, keyed by program name. Validating an upload
// against the program it claims to profile is the serving layer's job
// (internal/server does it with CallGraph.UnmarshalInto before any
// byte reaches Ingest).
package profdb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"selspec/internal/obs"
	"selspec/internal/profile"
)

// Config tunes the database. The zero value is usable: no decay,
// production defaults for every bound.
type Config struct {
	// HalfLife is the exponential decay half-life for aggregated arc
	// weights (0 = no decay). Negative values are rejected by Validate;
	// use ParseHalfLife for CLI flags so zero is rejected there too.
	HalfLife time.Duration
	// Epoch is the decay quantum (default HalfLife/4 when decay is on).
	// Weights are multiplied by 2^(-Epoch/HalfLife) per elapsed epoch.
	Epoch time.Duration
	// MaxPrograms bounds how many distinct programs the database holds;
	// beyond it the least-recently-ingested program is evicted
	// (default 64).
	MaxPrograms int
	// MaxArcs bounds the aggregate arcs kept per program; after a merge
	// exceeds it, only the heaviest MaxArcs survive (default 65536).
	MaxArcs int
	// MaxEntries bounds the per-program tuple-sample entries kept
	// (default 65536, keeping the lowest method ids).
	MaxEntries int
	// CompactEvery is how many WAL records accumulate before the
	// aggregate is compacted into a snapshot and the WAL truncated
	// (default 256).
	CompactEvery int
	// Metrics, when non-nil, registers the selspec_profdb_* counters.
	Metrics *obs.Registry
	// Now is the clock (default time.Now); tests pin it to drive decay
	// epochs deterministically.
	Now func() time.Time
	// RecoveryHook, when non-nil, runs at the start of recovery, before
	// any state is read — a test seam for observing the "recovering"
	// state from outside (the server's 503-while-replaying path).
	RecoveryHook func()
}

// Validate checks the configuration and fills defaults.
func (c Config) Validate() (Config, error) {
	if c.HalfLife < 0 {
		return c, fmt.Errorf("profdb: half-life must be positive, got %v", c.HalfLife)
	}
	if c.Epoch < 0 {
		return c, fmt.Errorf("profdb: epoch must be positive, got %v", c.Epoch)
	}
	if c.HalfLife > 0 && c.Epoch == 0 {
		c.Epoch = c.HalfLife / 4
		if c.Epoch <= 0 {
			c.Epoch = c.HalfLife
		}
	}
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 64
	}
	if c.MaxArcs <= 0 {
		c.MaxArcs = 1 << 16
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1 << 16
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// Database states, surfaced through State and the server's health
// bodies.
const (
	StateRecovering = "recovering" // Open in progress: WAL replaying
	StateReady      = "ready"      // serving ingests and exports
	StateFailed     = "failed"     // fail-stop after a durable-write fault
	StateClosed     = "closed"
)

// Sentinel errors callers classify on.
var (
	// ErrRecovering: the database is still replaying its WAL; retry
	// shortly (the server maps this to 503 + Retry-After).
	ErrRecovering = errors.New("profdb: recovery in progress")
	// ErrUnknownProgram: no aggregate exists for the requested program.
	ErrUnknownProgram = errors.New("profdb: unknown program")
	// ErrClosed: the database has been closed.
	ErrClosed = errors.New("profdb: closed")
)

// RejectError marks an upload the database refused (overflow, bounds);
// the caller answers 4xx, not 5xx, and must not retry unchanged.
type RejectError struct{ Msg string }

func (e *RejectError) Error() string { return "profdb: rejected: " + e.Msg }

const (
	walName  = "wal.log"
	snapName = "snapshot.json"
)

// snapFile is the snapshot's JSON layout: the full aggregate state as
// of Seq, programs sorted by name.
type snapFile struct {
	Version  int           `json:"version"`
	Seq      uint64        `json:"seq"`
	Programs []snapProgram `json:"programs"`
}

type snapProgram struct {
	Name    string        `json:"name"`
	Epoch   int64         `json:"epoch"`
	LastSeq uint64        `json:"last_seq"`
	Profile *profile.Wire `json:"profile"`
}

const snapVersion = 1

// arcID keys one aggregated arc.
type arcID struct{ site, callee int }

// entryAgg is one method's merged tuple sample.
type entryAgg struct {
	tuples   map[string][]int
	overflow bool
}

// programAgg is one program's aggregate: decayed arc weights plus the
// union of tuple samples. lastSeq orders programs for LRU eviction and
// survives compaction, so eviction decisions replay identically.
type programAgg struct {
	epoch   int64
	lastSeq uint64
	arcs    map[arcID]int64
	entries map[int]*entryAgg
}

// DB is the profile database. Create with Open (synchronous recovery)
// or OpenAsync (recovery in the background, state observable); all
// methods are safe for concurrent use.
type DB struct {
	dir string
	cfg Config

	mu       sync.Mutex
	state    string
	failErr  error // the fault that moved state to failed
	wal      *os.File
	walSize  int64
	walRecs  int
	seq      uint64
	progs    map[string]*programAgg
	openErr  error // recovery failure (OpenAsync)
	recovered chan struct{}

	mIngests, mRejects, mWALBytes       *obs.Counter
	mCompactions, mRecoveries, mTruncated *obs.Counter
}

// Open opens (creating if needed) the database in dir and runs
// recovery before returning: load the last good snapshot, replay the
// WAL tail, truncate at the first torn or corrupt record.
func Open(dir string, cfg Config) (*DB, error) {
	d, err := newDB(dir, cfg)
	if err != nil {
		return nil, err
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

// OpenAsync validates the configuration synchronously, then runs
// recovery in a background goroutine so a server can start serving
// run traffic immediately while the WAL replays. Until recovery
// completes, State reports StateRecovering and Ingest/Export return
// ErrRecovering; WaitReady blocks until the database is usable.
func OpenAsync(dir string, cfg Config) (*DB, error) {
	d, err := newDB(dir, cfg)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := d.recover(); err != nil {
			d.mu.Lock()
			d.state = StateFailed
			d.failErr = err
			d.openErr = err
			close(d.recovered)
			d.mu.Unlock()
		}
	}()
	return d, nil
}

func newDB(dir string, cfg Config) (*DB, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DB{
		dir:       dir,
		cfg:       cfg,
		state:     StateRecovering,
		progs:     map[string]*programAgg{},
		recovered: make(chan struct{}),
	}
	reg := cfg.Metrics
	d.mIngests = reg.Counter("selspec_profdb_ingests_total")
	d.mRejects = reg.Counter("selspec_profdb_rejects_total")
	d.mWALBytes = reg.Counter("selspec_profdb_wal_bytes_total")
	d.mCompactions = reg.Counter("selspec_profdb_compactions_total")
	d.mRecoveries = reg.Counter("selspec_profdb_recoveries_total")
	d.mTruncated = reg.Counter("selspec_profdb_truncated_records_total")
	return d, nil
}

// recover rebuilds the aggregate: snapshot, then the WAL records past
// it, truncating the log at the first record that does not check out.
// A corrupt WAL tail is an expected crash artifact and never fails
// recovery; only environmental errors (unreadable directory, corrupt
// snapshot — which atomic publication should make impossible) do.
//
// It runs WITHOUT d.mu: until it flips the state to ready (under the
// lock, at the very end), every public operation bails out at the
// state check without touching aggregate memory, so recovery has the
// aggregates to itself and State/Stats stay responsive while a large
// WAL replays — the server keeps answering /healthz mid-recovery.
func (d *DB) recover() error {
	if d.cfg.RecoveryHook != nil {
		d.cfg.RecoveryHook()
	}
	// A leftover snapshot tmp is a compaction the crash interrupted
	// before publication; the data it would have held is still in the
	// WAL, so it is garbage, not state.
	os.Remove(filepath.Join(d.dir, snapName+".tmp"))

	if data, err := os.ReadFile(filepath.Join(d.dir, snapName)); err == nil {
		var sf snapFile
		if jerr := json.Unmarshal(data, &sf); jerr != nil {
			return fmt.Errorf("profdb: corrupt snapshot (atomic publication violated?): %v", jerr)
		}
		if sf.Version != snapVersion {
			return fmt.Errorf("profdb: unsupported snapshot version %d", sf.Version)
		}
		d.seq = sf.Seq
		for _, sp := range sf.Programs {
			if sp.Profile == nil {
				return fmt.Errorf("profdb: corrupt snapshot: program %q has no profile", sp.Name)
			}
			if verr := validateWire(sp.Profile); verr != nil {
				return fmt.Errorf("profdb: corrupt snapshot: %v", verr)
			}
			agg := &programAgg{epoch: sp.Epoch, lastSeq: sp.LastSeq,
				arcs: map[arcID]int64{}, entries: map[int]*entryAgg{}}
			for _, a := range sp.Profile.Arcs {
				agg.arcs[arcID{a.Site, a.Callee}] += a.Weight
			}
			for _, e := range sp.Profile.Entries {
				agg.entries[e.Method] = entryFromWire(e)
			}
			d.progs[sp.Name] = agg
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("profdb: reading snapshot: %w", err)
	}

	wal, err := os.OpenFile(filepath.Join(d.dir, walName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("profdb: opening wal: %w", err)
	}
	data, err := readAll(wal)
	if err != nil {
		wal.Close()
		return fmt.Errorf("profdb: reading wal: %w", err)
	}
	res := scanWAL(data)
	for _, rec := range res.records {
		if rec.Seq <= d.seq {
			continue // already folded into the snapshot
		}
		d.applyLocked(rec)
		d.seq = rec.Seq
		d.walRecs++
	}
	if res.truncated {
		if err := wal.Truncate(res.goodOff); err != nil {
			wal.Close()
			return fmt.Errorf("profdb: truncating corrupt wal tail: %w", err)
		}
		if err := wal.Sync(); err != nil {
			wal.Close()
			return fmt.Errorf("profdb: syncing truncated wal: %w", err)
		}
		d.mTruncated.Inc()
	}
	if _, err := wal.Seek(res.goodOff, 0); err != nil {
		wal.Close()
		return fmt.Errorf("profdb: seeking wal: %w", err)
	}
	d.mu.Lock()
	if d.state == StateClosed { // Close raced recovery; stay closed
		d.mu.Unlock()
		wal.Close()
		close(d.recovered)
		return nil
	}
	d.wal = wal
	d.walSize = res.goodOff
	d.state = StateReady
	d.mu.Unlock()
	d.mRecoveries.Inc()
	close(d.recovered)
	return nil
}

func readAll(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, st.Size())
	n, err := f.ReadAt(data, 0)
	if int64(n) == st.Size() {
		return data, nil
	}
	return nil, err
}

// State reports the database's lifecycle state.
func (d *DB) State() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Err returns the terminal fault when State is StateFailed.
func (d *DB) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failErr
}

// WaitReady blocks until recovery completes (returning any recovery
// error) or ctx is done.
func (d *DB) WaitReady(ctx context.Context) error {
	select {
	case <-d.recovered:
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.openErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close releases the WAL handle. It does not compact: the on-disk
// state is already durable and recovery is cheap, and keeping the
// close path trivial means a clean shutdown and a SIGKILL leave disk
// states with identical recovery semantics.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateClosed {
		return nil
	}
	d.state = StateClosed
	if d.wal != nil {
		return d.wal.Close()
	}
	return nil
}

// RecordReject counts an upload the serving layer rejected before it
// reached Ingest (failed validation against the bound program), so the
// selspec_profdb_rejects_total series covers every refused upload no
// matter which layer refused it.
func (d *DB) RecordReject() { d.mRejects.Inc() }

// Ingest durably stores one validated upload for program and merges it
// into the aggregate, returning the upload's sequence number once — and
// only once — the record is fsync'd. The caller must have validated w
// against the program (the server does; trusting callers get the
// structural re-validation only).
//
// Failure modes: *RejectError (bounds/overflow — the aggregate and the
// log are untouched), ErrRecovering, ErrClosed, or a durable-write
// fault, after which the database is failed fail-stop: the disk state
// is ambiguous, so every subsequent call returns the original fault
// until a restart re-derives the truth via recovery.
func (d *DB) Ingest(program string, w *profile.Wire) (uint64, error) {
	if program == "" {
		return 0, &RejectError{Msg: "empty program name"}
	}
	if err := validateWire(w); err != nil {
		d.mRejects.Inc()
		return 0, &RejectError{Msg: err.Error()}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return 0, err
	}
	epoch := d.cfg.epochOf(d.cfg.Now())

	// Overflow pre-check against the current (undecayed) aggregate:
	// decay only shrinks weights, so a sum that fits undecayed fits
	// after the merge applies decay too. Rejecting here keeps both the
	// log and memory untouched.
	if agg := d.progs[program]; agg != nil {
		sums := map[arcID]int64{}
		for _, a := range w.Arcs {
			id := arcID{a.Site, a.Callee}
			prior := agg.arcs[id] + sums[id]
			if prior > math.MaxInt64-a.Weight {
				d.mRejects.Inc()
				return 0, &RejectError{Msg: fmt.Sprintf("arc %d->%d weight overflow", a.Site, a.Callee)}
			}
			sums[id] += a.Weight
		}
	}

	rec := &walRecord{Seq: d.seq + 1, Program: program, Epoch: epoch, Profile: w}
	frame, err := encodeRecord(rec)
	if err != nil {
		d.mRejects.Inc()
		return 0, &RejectError{Msg: err.Error()}
	}
	// The durable section. Any fault here leaves the disk in an
	// unknowable state (bytes may or may not have reached the platter),
	// so the database fail-stops exactly as if the process had died:
	// the answer lives in the log, and recovery reads it on restart.
	if err := writeFull(d.wal, frame); err != nil {
		return 0, d.failLocked(err)
	}
	if err := syncFile(d.wal); err != nil {
		return 0, d.failLocked(err)
	}
	d.walSize += int64(len(frame))
	d.mWALBytes.Add(uint64(len(frame)))

	d.applyLocked(rec)
	d.seq = rec.Seq
	d.walRecs++
	d.mIngests.Inc()

	if d.walRecs >= d.cfg.CompactEvery {
		d.compactLocked()
	}
	return rec.Seq, nil
}

func (d *DB) usableLocked() error {
	switch d.state {
	case StateReady:
		return nil
	case StateRecovering:
		return ErrRecovering
	case StateClosed:
		return ErrClosed
	default:
		return fmt.Errorf("profdb: storage failed (restart to recover): %w", d.failErr)
	}
}

func (d *DB) failLocked(err error) error {
	d.state = StateFailed
	d.failErr = err
	return fmt.Errorf("profdb: durable write failed (database is now fail-stop; restart to recover): %w", err)
}

// applyLocked merges one record into the aggregate — the single code
// path shared by live ingests and WAL replay, which is what makes
// recovery bit-identical to the original sequence of acked uploads.
func (d *DB) applyLocked(rec *walRecord) {
	agg := d.progs[rec.Program]
	if agg == nil {
		agg = &programAgg{epoch: rec.Epoch, arcs: map[arcID]int64{}, entries: map[int]*entryAgg{}}
		d.progs[rec.Program] = agg
		d.evictLocked(rec.Program)
	}
	agg.advance(rec.Epoch, d.cfg)
	for _, a := range rec.Profile.Arcs {
		id := arcID{a.Site, a.Callee}
		// Replayed records were pre-checked at ingest; saturate rather
		// than wrap if a decayed aggregate plus an old record would
		// somehow exceed the range (cannot happen via Ingest, belt and
		// suspenders for hand-fed logs).
		if agg.arcs[id] > math.MaxInt64-a.Weight {
			agg.arcs[id] = math.MaxInt64
		} else {
			agg.arcs[id] += a.Weight
		}
	}
	for _, e := range rec.Profile.Entries {
		mergeEntry(agg.entries, e, d.cfg.MaxEntries)
	}
	agg.lastSeq = rec.Seq
	agg.capArcs(d.cfg.MaxArcs)
}

// evictLocked enforces MaxPrograms by dropping the program with the
// oldest lastSeq (ties broken by name), never the one just added.
func (d *DB) evictLocked(just string) {
	for len(d.progs) > d.cfg.MaxPrograms {
		victim := ""
		var victimSeq uint64
		for name, agg := range d.progs {
			if name == just {
				continue
			}
			if victim == "" || agg.lastSeq < victimSeq ||
				(agg.lastSeq == victimSeq && name < victim) {
				victim, victimSeq = name, agg.lastSeq
			}
		}
		if victim == "" {
			return
		}
		delete(d.progs, victim)
	}
}

// advance applies decay for the epochs elapsed since the aggregate was
// last touched. Weights that decay to zero are dropped entirely: an
// idle program's aggregate shrinks toward empty rather than lingering
// as dust.
func (a *programAgg) advance(to int64, cfg Config) {
	if to <= a.epoch || cfg.HalfLife <= 0 {
		if to > a.epoch {
			a.epoch = to
		}
		return
	}
	k := to - a.epoch
	f := decayFactor(cfg.Epoch, cfg.HalfLife)
	for id, w := range a.arcs {
		if nw := decayWeight(w, f, k); nw <= 0 {
			delete(a.arcs, id)
		} else {
			a.arcs[id] = nw
		}
	}
	a.epoch = to
}

// capArcs keeps only the MaxArcs heaviest arcs (ties broken by
// (site, callee) so the survivor set is deterministic).
func (a *programAgg) capArcs(maxArcs int) {
	if len(a.arcs) <= maxArcs {
		return
	}
	type wa struct {
		id arcID
		w  int64
	}
	all := make([]wa, 0, len(a.arcs))
	for id, w := range a.arcs {
		all = append(all, wa{id, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		if all[i].id.site != all[j].id.site {
			return all[i].id.site < all[j].id.site
		}
		return all[i].id.callee < all[j].id.callee
	})
	for _, v := range all[maxArcs:] {
		delete(a.arcs, v.id)
	}
}

func entryFromWire(e profile.WireEntry) *entryAgg {
	agg := &entryAgg{tuples: map[string][]int{}, overflow: e.Overflow}
	if e.Overflow {
		agg.tuples = nil
		return agg
	}
	for _, t := range e.Tuples {
		agg.tuples[tupleKey(t)] = t
	}
	return agg
}

// mergeEntry unions one uploaded tuple sample into the aggregate,
// with the same overflow semantics profile.RecordEntry applies: past
// MaxTupleSample distinct tuples the sample degrades to "anything was
// seen". maxEntries bounds distinct methods; new methods beyond it are
// dropped (lowest method ids win, since they were there first).
func mergeEntry(entries map[int]*entryAgg, e profile.WireEntry, maxEntries int) {
	agg := entries[e.Method]
	if agg == nil {
		if len(entries) >= maxEntries {
			return
		}
		agg = &entryAgg{tuples: map[string][]int{}}
		entries[e.Method] = agg
	}
	if agg.overflow {
		return
	}
	if e.Overflow {
		agg.overflow = true
		agg.tuples = nil
		return
	}
	for _, t := range e.Tuples {
		k := tupleKey(t)
		if _, ok := agg.tuples[k]; ok {
			continue
		}
		if len(agg.tuples) >= profile.MaxTupleSample {
			agg.overflow = true
			agg.tuples = nil
			return
		}
		agg.tuples[k] = t
	}
}

func tupleKey(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return "t" + fmt.Sprint(parts)
}

// compactLocked folds the aggregate into a snapshot published by
// atomic rename, then truncates the WAL. Failure anywhere is non-fatal
// and leaves durability intact:
//
//   - before the rename: the old snapshot and the full WAL still
//     reconstruct everything (the stale tmp is removed at recovery);
//   - after the rename but before the truncate: replay skips records
//     at or below the snapshot's seq, so the duplicate tail is
//     harmless and the next compaction retries the truncate.
func (d *DB) compactLocked() {
	sf := snapFile{Version: snapVersion, Seq: d.seq}
	names := make([]string, 0, len(d.progs))
	for name := range d.progs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		agg := d.progs[name]
		sf.Programs = append(sf.Programs, snapProgram{
			Name: name, Epoch: agg.epoch, LastSeq: agg.lastSeq, Profile: agg.wire(),
		})
	}
	data, err := json.MarshalIndent(sf, "", " ")
	if err != nil {
		return
	}
	if err := WriteFileAtomic(filepath.Join(d.dir, snapName), data, 0o644); err != nil {
		return // snapshot stays old; WAL keeps everything
	}
	if err := d.wal.Truncate(0); err != nil {
		return // duplicate records ≤ seq; replay skips them
	}
	if _, err := d.wal.Seek(0, 0); err != nil {
		_ = d.failLocked(err) // cannot place further appends safely
		return
	}
	if err := d.wal.Sync(); err != nil {
		_ = d.failLocked(err)
		return
	}
	d.walSize = 0
	d.walRecs = 0
	d.mCompactions.Inc()
}

// wire renders one aggregate in canonical profile.Wire form: arcs by
// (site, callee), entries by method, tuples in numeric-lexicographic
// order — so equal aggregates marshal to equal bytes.
func (a *programAgg) wire() *profile.Wire {
	w := &profile.Wire{Version: profile.FormatVersion}
	for id, wt := range a.arcs {
		w.Arcs = append(w.Arcs, profile.WireArc{Site: id.site, Callee: id.callee, Weight: wt})
	}
	for m, e := range a.entries {
		we := profile.WireEntry{Method: m, Overflow: e.overflow}
		for _, t := range e.tuples {
			we.Tuples = append(we.Tuples, t)
		}
		w.Entries = append(w.Entries, we)
	}
	w.Sort()
	if w.Arcs == nil {
		w.Arcs = []profile.WireArc{}
	}
	return w
}

// Export returns program's aggregate, decayed to the current epoch, in
// canonical wire form — directly consumable by CallGraph.UnmarshalInto
// and byte-stable for a fixed logical time.
func (d *DB) Export(program string) (*profile.Wire, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usableLocked(); err != nil {
		return nil, err
	}
	agg := d.progs[program]
	if agg == nil {
		return nil, ErrUnknownProgram
	}
	agg.advance(d.cfg.epochOf(d.cfg.Now()), d.cfg)
	return agg.wire(), nil
}

// Programs lists the programs with aggregates, sorted (empty while
// recovery still owns the aggregate maps).
func (d *DB) Programs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateRecovering {
		return nil
	}
	names := make([]string, 0, len(d.progs))
	for name := range d.progs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats is a point-in-time operational summary.
type Stats struct {
	State    string `json:"state"`
	Programs int    `json:"programs"`
	Seq      uint64 `json:"seq"`
	WALBytes int64  `json:"wal_bytes"`
}

// Stats snapshots the database for health bodies and tests. During
// recovery only the state is reported: the aggregate fields belong to
// the recovery goroutine until it publishes them.
func (d *DB) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == StateRecovering {
		return Stats{State: d.state}
	}
	return Stats{State: d.state, Programs: len(d.progs), Seq: d.seq, WALBytes: d.walSize}
}
