// The write-ahead log: an append-only file of length-prefixed,
// CRC32C-checksummed, versioned records, one per acked profile upload.
//
// Frame layout (little-endian):
//
//	u32 bodyLen | u32 crc32c(body) | body
//	body = u8 recordVersion | payload JSON
//
// The invariant the whole database rests on: a record is either fully
// durable (its frame complete, its checksum valid) or it is the last
// thing in the file and gets truncated away at recovery. Appends are
// fsync'd before the upload is acknowledged, so the durable prefix
// always covers the acked prefix; anything after it — a torn frame
// from a crash mid-write, garbage from a bad sector — fails the length
// or checksum test and marks the cut point. Recovery never fails
// startup on a corrupt tail: it keeps what checks out and truncates
// the rest.
package profdb

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"selspec/internal/profile"
)

const (
	recVersion   = 1
	recHeaderLen = 8
	// maxRecordLen bounds one record body. A length prefix larger than
	// this is treated as corruption, not an instruction to allocate.
	maxRecordLen = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one upload's payload: which program, at which decay
// epoch, carrying which profile. Seq is the database-wide upload
// sequence number; records at or below the snapshot's seq are skipped
// during replay (they were already compacted in), which is what makes
// a crash between snapshot publication and WAL truncation harmless.
type walRecord struct {
	Seq     uint64        `json:"seq"`
	Program string        `json:"program"`
	Epoch   int64         `json:"epoch"`
	Profile *profile.Wire `json:"profile"`
}

// encodeRecord frames one record for appending.
func encodeRecord(rec *walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	body := make([]byte, 1+len(payload))
	body[0] = recVersion
	copy(body[1:], payload)
	frame := make([]byte, recHeaderLen+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, crcTable))
	copy(frame[recHeaderLen:], body)
	return frame, nil
}

// replayResult is what scanning a WAL image yields: the records that
// checked out, the byte offset of the first byte that did not (== the
// length of the valid prefix), and whether anything had to be dropped.
type replayResult struct {
	records   []*walRecord
	goodOff   int64
	truncated bool
	reason    string // why the scan stopped early, for the recovery log
}

// scanWAL walks a WAL image record by record, stopping at the first
// frame that is torn (short header or body), oversized, checksummed
// wrong, of an unknown version, or carrying an unparseable or
// non-monotonic payload. Every failure mode is a clean stop — never an
// error, never a panic — because a corrupt tail is an expected state
// for this file, not an exceptional one.
func scanWAL(data []byte) replayResult {
	res := replayResult{}
	off := int64(0)
	lastSeq := uint64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			res.goodOff = off
			return res
		}
		if len(rest) < recHeaderLen {
			return truncateAt(res, off, "torn record header")
		}
		bodyLen := binary.LittleEndian.Uint32(rest[0:4])
		if bodyLen == 0 || bodyLen > maxRecordLen {
			return truncateAt(res, off, fmt.Sprintf("implausible record length %d", bodyLen))
		}
		if int64(len(rest)) < recHeaderLen+int64(bodyLen) {
			return truncateAt(res, off, "torn record body")
		}
		body := rest[recHeaderLen : recHeaderLen+int64(bodyLen)]
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			return truncateAt(res, off, "checksum mismatch")
		}
		if body[0] != recVersion {
			return truncateAt(res, off, fmt.Sprintf("unknown record version %d", body[0]))
		}
		var rec walRecord
		if err := json.Unmarshal(body[1:], &rec); err != nil {
			return truncateAt(res, off, "unparseable record payload")
		}
		if rec.Profile == nil || rec.Seq <= lastSeq {
			// A record with no profile or a non-increasing sequence
			// number cannot have been written by an intact append path;
			// treat it like any other corruption.
			return truncateAt(res, off, "inconsistent record")
		}
		if err := validateWire(rec.Profile); err != nil {
			return truncateAt(res, off, "invalid profile in record")
		}
		lastSeq = rec.Seq
		res.records = append(res.records, &rec)
		off += recHeaderLen + int64(bodyLen)
	}
}

func truncateAt(res replayResult, off int64, reason string) replayResult {
	res.goodOff = off
	res.truncated = true
	res.reason = reason
	return res
}

// validateWire applies the structural checks a record's profile must
// pass before it may touch aggregate state. Records were validated at
// ingest time; re-checking at replay is defense in depth against a
// checksum collision or a hand-edited log.
func validateWire(w *profile.Wire) error {
	if w.Version != profile.FormatVersion {
		return fmt.Errorf("profdb: unsupported profile version %d", w.Version)
	}
	for _, a := range w.Arcs {
		if a.Site < 0 || a.Callee < 0 || a.Weight < 0 {
			return fmt.Errorf("profdb: invalid arc %d->%d weight %d", a.Site, a.Callee, a.Weight)
		}
	}
	for _, e := range w.Entries {
		if e.Method < 0 {
			return fmt.Errorf("profdb: invalid entry method %d", e.Method)
		}
		for _, t := range e.Tuples {
			for _, id := range t {
				if id < 0 {
					return fmt.Errorf("profdb: invalid entry class %d", id)
				}
			}
		}
	}
	return nil
}
