package profdb

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecover feeds arbitrary bytes to the database as its WAL and
// asserts the recovery contract: Open never panics and never fails
// (a corrupt tail is an expected state, not an error), and the
// recovered aggregate equals what the valid prefix alone produces —
// corruption can only truncate, never poison.
func FuzzWALRecover(f *testing.F) {
	// Seeds: empty, garbage, a clean two-record log, and that log with
	// a flipped checksum byte, a torn tail, and an inflated length.
	valid := frames(f,
		&walRecord{Seq: 1, Program: "p", Epoch: 0, Profile: wp([3]int64{0, 0, 10})},
		&walRecord{Seq: 2, Program: "q", Epoch: 1, Profile: wp([3]int64{1, 2, 3})},
	)
	f.Add([]byte{})
	f.Add([]byte("not a wal"))
	f.Add(valid)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x40
	f.Add(flipped)
	f.Add(valid[:len(valid)-3])
	inflated := append([]byte(nil), valid...)
	inflated[0] = 0xff
	f.Add(inflated)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("Open on fuzzed WAL: %v", err)
		}
		progs := db.Programs()
		exports := map[string][]byte{}
		for _, p := range progs {
			w, err := db.Export(p)
			if err != nil {
				t.Fatalf("Export(%s): %v", p, err)
			}
			b, err := w.Marshal()
			if err != nil {
				t.Fatalf("Marshal(%s): %v", p, err)
			}
			exports[p] = b
		}
		db.Close()

		// Prefix equality: the valid prefix alone must reproduce the
		// same state — nothing past the cut leaked in.
		res := scanWAL(data)
		refDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(refDir, walName), data[:res.goodOff], 0o644); err != nil {
			t.Fatal(err)
		}
		ref, err := Open(refDir, Config{})
		if err != nil {
			t.Fatalf("Open on valid prefix: %v", err)
		}
		defer ref.Close()
		refProgs := ref.Programs()
		if len(refProgs) != len(progs) {
			t.Fatalf("programs %v != prefix programs %v", progs, refProgs)
		}
		for _, p := range refProgs {
			w, err := ref.Export(p)
			if err != nil {
				t.Fatalf("prefix Export(%s): %v", p, err)
			}
			b, _ := w.Marshal()
			if string(b) != string(exports[p]) {
				t.Fatalf("program %s: fuzzed-WAL aggregate differs from valid-prefix aggregate", p)
			}
		}

		// And the truncation is durable: a second Open sees a clean log.
		again, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer again.Close()
		img, err := os.ReadFile(filepath.Join(dir, walName))
		if err != nil {
			t.Fatal(err)
		}
		if r2 := scanWAL(img); r2.truncated {
			t.Fatalf("WAL still corrupt after recovery: %s", r2.reason)
		}
	})
}
