// Durable file primitives. Every byte the profile database promises to
// keep goes through these four functions, and each one consults the
// pipeline I/O fault seam (pipeline.InjectIO) before touching the real
// syscall — so tests can make any write tear, any fsync fail, and any
// rename vanish, deterministically, at the exact point a power cut or
// SIGKILL would.
package profdb

import (
	"os"
	"path/filepath"

	"selspec/internal/pipeline"
)

// WriteFileAtomic writes data to path with the write-tmp-fsync-rename
// protocol: the bytes land in path+".tmp", are fsync'd, and only then
// atomically renamed over path, followed by an fsync of the directory
// so the rename itself is durable. A crash at any point leaves either
// the old file or the new file, complete — never a torn mixture.
//
// This is the repo's one crash-safe file writer: the profile database
// snapshots, `selspec -profile` output and `paperbench -json`
// trajectories all go through it.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if err := writeFull(f, data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := syncFile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// writeFull writes all of b to f, honoring an injected fault: a
// ShortBytes fault writes that prefix before failing — the torn state
// a crash mid-write leaves on disk.
func writeFull(f *os.File, b []byte) error {
	if fl := pipeline.InjectIO(pipeline.IOWrite, f.Name()); fl != nil {
		if n := fl.ShortBytes; n > 0 {
			if n > len(b) {
				n = len(b)
			}
			_, _ = f.Write(b[:n])
		}
		return fl
	}
	_, err := f.Write(b)
	return err
}

// syncFile fsyncs f's contents.
func syncFile(f *os.File) error {
	if fl := pipeline.InjectIO(pipeline.IOFsync, f.Name()); fl != nil {
		return fl
	}
	return f.Sync()
}

// rename atomically publishes oldpath as newpath.
func rename(oldpath, newpath string) error {
	if fl := pipeline.InjectIO(pipeline.IORename, newpath); fl != nil {
		return fl
	}
	return os.Rename(oldpath, newpath)
}

// syncDir fsyncs a directory, making renames and file creations within
// it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if fl := pipeline.InjectIO(pipeline.IOFsync, dir); fl != nil {
		return fl
	}
	return d.Sync()
}
