package ir

import (
	"fmt"
	"strings"
)

// Dump renders an IR tree as an indented S-expression-style listing,
// for debugging and golden tests. The output is stable and carries the
// information an optimizer developer needs: slot/depth numbers,
// resolved field slots, call-site IDs, and target versions.
func Dump(n Node) string {
	var b strings.Builder
	dump(&b, n, 0)
	return b.String()
}

func dump(b *strings.Builder, n Node, depth int) {
	ind := strings.Repeat("  ", depth)
	if n == nil {
		fmt.Fprintf(b, "%s(nil)\n", ind)
		return
	}
	switch n := n.(type) {
	case *Const:
		switch n.Kind {
		case KInt:
			fmt.Fprintf(b, "%s(int %d)\n", ind, n.Int)
		case KStr:
			fmt.Fprintf(b, "%s(str %q)\n", ind, n.Str)
		case KBool:
			fmt.Fprintf(b, "%s(bool %t)\n", ind, n.Bool)
		default:
			fmt.Fprintf(b, "%s(nil-lit)\n", ind)
		}
	case *Local:
		fmt.Fprintf(b, "%s(local %d.%d %s)\n", ind, n.Depth, n.Slot, n.Name)
	case *SetLocal:
		fmt.Fprintf(b, "%s(set-local %d.%d %s\n", ind, n.Depth, n.Slot, n.Name)
		dump(b, n.X, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *Global:
		fmt.Fprintf(b, "%s(global %d %s)\n", ind, n.Slot, n.Name)
	case *SetGlobal:
		fmt.Fprintf(b, "%s(set-global %d %s\n", ind, n.Slot, n.Name)
		dump(b, n.X, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *GetField:
		fmt.Fprintf(b, "%s(get-field %s slot=%d\n", ind, n.Name, n.Slot)
		dump(b, n.Obj, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *SetField:
		fmt.Fprintf(b, "%s(set-field %s slot=%d\n", ind, n.Name, n.Slot)
		dump(b, n.Obj, depth+1)
		dump(b, n.X, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *Seq:
		fmt.Fprintf(b, "%s(seq\n", ind)
		for _, c := range n.Nodes {
			dump(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s)\n", ind)
	case *If:
		fmt.Fprintf(b, "%s(if\n", ind)
		dump(b, n.Cond, depth+1)
		dump(b, n.Then, depth+1)
		if n.Else != nil {
			dump(b, n.Else, depth+1)
		}
		fmt.Fprintf(b, "%s)\n", ind)
	case *While:
		fmt.Fprintf(b, "%s(while\n", ind)
		dump(b, n.Cond, depth+1)
		dump(b, n.Body, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *Return:
		fmt.Fprintf(b, "%s(return\n", ind)
		dump(b, n.X, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *New:
		fmt.Fprintf(b, "%s(new %s\n", ind, n.Class.Name)
		for _, c := range n.Args {
			dump(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s)\n", ind)
	case *MakeClosure:
		fmt.Fprintf(b, "%s(closure params=%d slots=%d\n", ind, n.Fn.NumParams, n.Fn.NumSlots)
		dump(b, n.Fn.Body, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *CallClosure:
		fmt.Fprintf(b, "%s(call-closure\n", ind)
		dump(b, n.Fn, depth+1)
		for _, c := range n.Args {
			dump(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s)\n", ind)
	case *Send:
		fmt.Fprintf(b, "%s(send %s site=%d\n", ind, n.Site.GF.Key(), n.Site.ID)
		for _, c := range n.Args {
			dump(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s)\n", ind)
	case *StaticCall:
		fmt.Fprintf(b, "%s(static-call %s site=%d\n", ind, n.Target, n.Site.ID)
		for _, c := range n.Args {
			dump(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s)\n", ind)
	case *VersionSelect:
		fmt.Fprintf(b, "%s(version-select %s site=%d\n", ind, n.Method.Name(), n.Site.ID)
		for _, c := range n.Args {
			dump(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s)\n", ind)
	case *Bin:
		fmt.Fprintf(b, "%s(bin %s\n", ind, n.Op)
		dump(b, n.L, depth+1)
		dump(b, n.R, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *Un:
		op := "neg"
		if n.Op == OpNot {
			op = "not"
		}
		fmt.Fprintf(b, "%s(un %s\n", ind, op)
		dump(b, n.X, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *PrimCall:
		fmt.Fprintf(b, "%s(prim %d\n", ind, n.Prim)
		for _, c := range n.Args {
			dump(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s)\n", ind)
	case *And:
		fmt.Fprintf(b, "%s(and\n", ind)
		dump(b, n.L, depth+1)
		dump(b, n.R, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	case *Or:
		fmt.Fprintf(b, "%s(or\n", ind)
		dump(b, n.L, depth+1)
		dump(b, n.R, depth+1)
		fmt.Fprintf(b, "%s)\n", ind)
	default:
		fmt.Fprintf(b, "%s(?%T)\n", ind, n)
	}
}
