// Package ir defines the tree intermediate representation that method
// bodies are lowered to, the call-site and method-version structures
// shared by the optimizer, the specializer and the interpreter, and the
// PassThroughArgs computation from the paper (§3: "the formal is passed
// directly as an actual parameter in the call").
package ir

import (
	"fmt"

	"selspec/internal/hier"
	"selspec/internal/lang"
)

// Node is one IR tree node. Nodes are mutable only during optimization;
// the interpreter treats them as read-only.
type Node interface{ node() }

// ConstKind discriminates constant values.
type ConstKind int

// Constant kinds.
const (
	KInt ConstKind = iota
	KStr
	KBool
	KNil
)

// Const is a literal constant.
type Const struct {
	Kind ConstKind
	Int  int64
	Str  string
	Bool bool
}

// Local reads a frame slot. Depth is the number of lexical frames to
// hop outward (0 = current fn/method frame).
type Local struct {
	Depth, Slot int
	Name        string // for diagnostics only
}

// SetLocal writes a frame slot and yields the value.
type SetLocal struct {
	Depth, Slot int
	Name        string
	X           Node
}

// Global reads a global slot.
type Global struct {
	Slot int
	Name string
}

// SetGlobal writes a global slot and yields the value.
type SetGlobal struct {
	Slot int
	Name string
	X    Node
}

// GetField reads an object field by name. Slot is -1 when the field
// index must be resolved at run time (the interpreter uses an inline
// cache); the optimizer fills Slot in when the receiver's class set is
// known precisely enough that all possible classes agree on the index.
type GetField struct {
	Obj  Node
	Name string
	Slot int // resolved field index, or -1
}

// SetField writes an object field and yields the value. See GetField
// for Slot.
type SetField struct {
	Obj  Node
	Name string
	Slot int // resolved field index, or -1
	X    Node
}

// Seq evaluates nodes left to right; value is the last node's value
// (nil for an empty Seq).
type Seq struct {
	Nodes []Node
}

// If is a conditional expression; a nil Else yields nil.
type If struct {
	Cond Node
	Then Node
	Else Node // may be nil
}

// While loops while Cond is true; value is nil.
type While struct {
	Cond Node
	Body Node
}

// Return performs a (possibly non-local) return from the enclosing
// method activation.
type Return struct {
	X Node // may be nil → returns nil
}

// New instantiates a class. Args cover the first len(Args) flattened
// fields; remaining fields take their FieldInit thunks (or nil).
type New struct {
	Class *hier.Class
	Args  []Node
}

// MakeClosure creates a closure over the current frame chain.
type MakeClosure struct {
	Fn *ClosureCode
}

// ClosureCode is the code of a closure literal. It is shared by all
// closures created at this syntactic point within one compiled version.
type ClosureCode struct {
	NumParams int
	NumSlots  int // params + locals
	Body      Node
	Owner     *hier.Method // lexically enclosing method (nil in global init)
}

// CallClosure invokes a closure value. Pos is the call position, so
// runtime faults (non-closure callee, arity, call-depth limit) report
// file:line:col.
type CallClosure struct {
	Fn   Node
	Args []Node
	Pos  lang.Pos
}

// Send is a dynamically-dispatched message send.
type Send struct {
	Site *CallSite
	Args []Node
}

// StaticCall is a statically-bound call to a specific compiled version.
// Site is retained so the profiler can count statically-bound arcs
// (needed by cascadeSpecializations).
type StaticCall struct {
	Target *Version
	Site   *CallSite
	Args   []Node
}

// VersionSelect is a call whose target *method* is statically known but
// whose specialized *version* must be chosen from the actual argument
// classes at run time (paper §3.5: "message lookup needs to select the
// appropriate specialized version").
type VersionSelect struct {
	Method *hier.Method
	Site   *CallSite
	Args   []Node
}

// BinOp is a primitive binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!="}

func (op BinOp) String() string { return binOpNames[op] }

// Bin applies a primitive binary operator (the paper's "hard-wired
// class prediction for a small number of common messages such as if
// and +": these never go through dispatch).
type Bin struct {
	Op   BinOp
	L, R Node
}

// UnOp is a primitive unary operator.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota
	OpNeg
)

// Un applies a primitive unary operator.
type Un struct {
	Op UnOp
	X  Node
}

// Prim is a built-in primitive function.
type Prim int

// Primitive functions callable from Mini-Cecil.
const (
	PrimPrint     Prim = iota // print(x)
	PrimPrintln               // println(x)
	PrimStr                   // str(x) -> String
	PrimNewArray              // newarray(n) -> Array of nils
	PrimAGet                  // aget(a, i)
	PrimAPut                  // aput(a, i, v) -> v
	PrimALen                  // alen(a) -> Int
	PrimStrLen                // strlen(s) -> Int
	PrimSubstr                // substr(s, i, j) -> String  [i, j)
	PrimCharAt                // charat(s, i) -> String of length 1
	PrimOrd                   // ord(s) -> Int (first byte)
	PrimChr                   // chr(i) -> String
	PrimAbort                 // abort(msg) -> runtime error
	PrimClassName             // classname(x) -> String
	PrimSame                  // same(a, b) -> Bool (identity)
)

// primSigs maps source names to primitives and their arities.
var primSigs = map[string]struct {
	Prim  Prim
	Arity int
}{
	"print": {PrimPrint, 1}, "println": {PrimPrintln, 1}, "str": {PrimStr, 1},
	"newarray": {PrimNewArray, 1}, "aget": {PrimAGet, 2}, "aput": {PrimAPut, 3},
	"alen": {PrimALen, 1}, "strlen": {PrimStrLen, 1}, "substr": {PrimSubstr, 3},
	"charat": {PrimCharAt, 2}, "ord": {PrimOrd, 1}, "chr": {PrimChr, 1},
	"abort": {PrimAbort, 1}, "classname": {PrimClassName, 1}, "same": {PrimSame, 2},
}

// PrimSignature reports the arity of the named built-in primitive, if
// one exists — the same table lowering resolves calls against, so
// static checkers cannot drift from the runtime.
func PrimSignature(name string) (arity int, ok bool) {
	sig, ok := primSigs[name]
	return sig.Arity, ok
}

// PrimCall invokes a built-in primitive.
type PrimCall struct {
	Prim Prim
	Args []Node
}

// And and Or are short-circuit boolean operators.
type And struct{ L, R Node }

// Or is short-circuit disjunction.
type Or struct{ L, R Node }

func (*Const) node()         {}
func (*Local) node()         {}
func (*SetLocal) node()      {}
func (*Global) node()        {}
func (*SetGlobal) node()     {}
func (*GetField) node()      {}
func (*SetField) node()      {}
func (*Seq) node()           {}
func (*If) node()            {}
func (*While) node()         {}
func (*Return) node()        {}
func (*New) node()           {}
func (*MakeClosure) node()   {}
func (*CallClosure) node()   {}
func (*Send) node()          {}
func (*StaticCall) node()    {}
func (*VersionSelect) node() {}
func (*Bin) node()           {}
func (*Un) node()            {}
func (*PrimCall) node()      {}
func (*And) node()           {}
func (*Or) node()            {}

// PassPair maps a caller formal position to a callee argument position
// (the paper's PassThroughArgs entries "<fpos → apos>").
type PassPair struct {
	Formal int // caller formal index
	ArgPos int // callee argument position
}

// CallSite identifies one message-send site in the source program. Site
// identity is stable across configurations (it is created during
// lowering, before optimization), so profiles gathered under one
// configuration can guide compilation under another.
type CallSite struct {
	ID     int
	GF     *hier.GF
	Caller *hier.Method // lexically enclosing method; nil in global init
	Pos    lang.Pos

	// PassThrough is the paper's PassThroughArgs[site]: each entry says
	// "callee argument ArgPos is exactly caller formal Formal" (and the
	// formal is never assigned anywhere in the caller).
	PassThrough []PassPair
}

func (s *CallSite) String() string {
	caller := "<global>"
	if s.Caller != nil {
		caller = s.Caller.Name()
	}
	return fmt.Sprintf("site#%d %s in %s at %s", s.ID, s.GF.Key(), caller, s.Pos)
}

// Version is one compiled version of a method: the paper's unit of
// specialization. The Tuple gives the static class-set information for
// each formal that the body was optimized under; the general version
// uses the method's fully general tuple.
type Version struct {
	Method   *hier.Method
	Tuple    hier.Tuple
	Index    int // position in the method's version list
	General  bool
	Body     Node
	NumSlots int // frame size: params + locals
}

func (v *Version) String() string {
	kind := "spec"
	if v.General {
		kind = "general"
	}
	return fmt.Sprintf("%s[v%d %s]", v.Method.Name(), v.Index, kind)
}
