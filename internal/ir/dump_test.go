package ir

import (
	"strings"
	"testing"

	"selspec/internal/lang"
)

func TestDumpCoversEveryNodeKind(t *testing.T) {
	src := `
class P { field x : Int := 0; }
var g := 1;
method callee(p@P) { 1; }
method f(p@P) {
  var loc := 2;
  var msg := "hi";
  g := g + 1;
  p.x := p.x + loc;
  while loc > 0 { loc := loc - 1; }
  if !(loc == 0) && false || true { return nil; }
  callee(new P(3));
  print(str((fn(q) { q; })(4)));
  p;
}
method main() { f(new P(1)); }
`
	p, err := Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	var f *MethodBody
	for m, b := range p.Bodies {
		if m.GF.Name == "f" {
			f = b
		}
	}
	out := Dump(f.Code)
	for _, want := range []string{
		"(seq", "(set-local", "(local", "(set-global", "(global",
		"(set-field x", "(get-field x", "(while", "(if", "(return",
		"(nil-lit)", "(send callee/1", "(new P", "(prim", "(closure",
		"(call-closure", "(bin", "(un not", "(and", "(or", "(bool",
		"(int", "(str",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q in:\n%s", want, out)
		}
	}
	if Dump(nil) != "(nil)\n" {
		t.Errorf("Dump(nil) = %q", Dump(nil))
	}
}

func TestDumpOptimizedForms(t *testing.T) {
	// StaticCall and VersionSelect are produced by the optimizer; build
	// them directly.
	p, err := Lower(lang.MustParse(`
class P
method callee(p@P) { 1; }
method main() { callee(new P()); }
`))
	if err != nil {
		t.Fatal(err)
	}
	var m *MethodBody
	for mm, b := range p.Bodies {
		if mm.GF.Name == "main" {
			m = b
		}
	}
	send := SendSites(m.Code)[0]
	var callee = send.Site.GF.Methods[0]
	v := &Version{Method: callee, Index: 0, General: true}
	sc := &StaticCall{Target: v, Site: send.Site, Args: send.Args}
	vs := &VersionSelect{Method: callee, Site: send.Site, Args: send.Args}
	if out := Dump(sc); !strings.Contains(out, "static-call") || !strings.Contains(out, "general") {
		t.Errorf("static call dump: %s", out)
	}
	if out := Dump(vs); !strings.Contains(out, "version-select callee(@P)") {
		t.Errorf("version select dump: %s", out)
	}
	// Version.String distinguishes specialized versions.
	v2 := &Version{Method: callee, Index: 1}
	if !strings.Contains(v2.String(), "spec") || !strings.Contains(v.String(), "general") {
		t.Errorf("Version.String: %s / %s", v, v2)
	}
	// Clone handles the optimized forms too.
	c := Clone(&Seq{Nodes: []Node{sc, vs}})
	if Size(c) != Size(&Seq{Nodes: []Node{sc, vs}}) {
		t.Error("Clone of optimized forms changes size")
	}
}

func TestProgramSiteAccessor(t *testing.T) {
	p, err := Lower(lang.MustParse(`
class P
method callee(p@P) { 1; }
method main() { callee(new P()); }
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) == 0 || p.Site(0) != p.Sites[0] {
		t.Fatal("Site accessor broken")
	}
}
