package ir

import (
	"reflect"
	"strings"
	"testing"

	"selspec/internal/lang"
)

func lower(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func lowerErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse error (want lowering error): %v", err)
	}
	_, err = Lower(prog)
	if err == nil {
		t.Fatalf("Lower(%q): expected error", src)
	}
	return err
}

func TestLowerLiteralsAndLocals(t *testing.T) {
	p := lower(t, `method f(x) { var y := 1; y + x; }`)
	body := p.Bodies[p.H.Methods()[0]]
	if body.NumSlots != 2 {
		t.Fatalf("NumSlots = %d", body.NumSlots)
	}
	seq, ok := body.Code.(*Seq)
	if !ok || len(seq.Nodes) != 2 {
		t.Fatalf("code = %#v", body.Code)
	}
	set, ok := seq.Nodes[0].(*SetLocal)
	if !ok || set.Slot != 1 || set.Depth != 0 {
		t.Fatalf("var stmt = %#v", seq.Nodes[0])
	}
	bin, ok := seq.Nodes[1].(*Bin)
	if !ok || bin.Op != OpAdd {
		t.Fatalf("add = %#v", seq.Nodes[1])
	}
	if l := bin.L.(*Local); l.Slot != 1 {
		t.Errorf("y slot = %d", l.Slot)
	}
	if r := bin.R.(*Local); r.Slot != 0 {
		t.Errorf("x slot = %d", r.Slot)
	}
}

func TestLowerGlobals(t *testing.T) {
	p := lower(t, `
var a := 1;
var b := a + 1;
method f() { b := b + 1; b; }
`)
	if len(p.Globals) != 2 || p.GlobalIdx["b"] != 1 {
		t.Fatalf("globals = %v", p.Globals)
	}
	body := p.Bodies[p.H.Methods()[0]]
	seq := body.Code.(*Seq)
	if sg, ok := seq.Nodes[0].(*SetGlobal); !ok || sg.Slot != 1 {
		t.Fatalf("SetGlobal = %#v", seq.Nodes[0])
	}
}

func TestLowerSendAndSugar(t *testing.T) {
	p := lower(t, `
class C
method g(x@C) { 1; }
method f(c@C) { g(c); c.g(); }
`)
	var f *MethodBody
	for m, b := range p.Bodies {
		if m.GF.Name == "f" {
			f = b
		}
	}
	sends := SendSites(f.Code)
	if len(sends) != 2 {
		t.Fatalf("got %d sends", len(sends))
	}
	for _, s := range sends {
		if s.Site.GF.Name != "g" {
			t.Errorf("send to %s", s.Site.GF.Key())
		}
		if s.Site.Caller == nil || s.Site.Caller.GF.Name != "f" {
			t.Errorf("caller = %v", s.Site.Caller)
		}
	}
	if len(p.Sites) != 2 {
		t.Errorf("program sites = %d", len(p.Sites))
	}
}

func TestLowerPrimitives(t *testing.T) {
	p := lower(t, `method f() { print(str(1)); aput(newarray(3), 0, 2); }`)
	body := p.Bodies[p.H.Methods()[0]]
	prims := 0
	Walk(body.Code, func(n Node) bool {
		if _, ok := n.(*PrimCall); ok {
			prims++
		}
		return true
	})
	if prims != 4 {
		t.Fatalf("prim calls = %d, want 4", prims)
	}
}

func TestLowerClosureCallPriority(t *testing.T) {
	// A local name shadows a GF of the same name for call resolution.
	p := lower(t, `
method g() { 1; }
method f() {
  var g := fn() { 2; };
  g();
}
`)
	var f *MethodBody
	for m, b := range p.Bodies {
		if m.GF.Name == "f" {
			f = b
		}
	}
	calls := 0
	Walk(f.Code, func(n Node) bool {
		if _, ok := n.(*CallClosure); ok {
			calls++
		}
		if _, ok := n.(*Send); ok {
			t.Error("g() should be a closure call, not a send")
		}
		return true
	})
	if calls != 1 {
		t.Fatalf("closure calls = %d", calls)
	}
}

func TestLowerClosureDepths(t *testing.T) {
	p := lower(t, `
method f(x) {
  fn(y) { fn(z) { x + y + z; }; };
}
`)
	body := p.Bodies[p.H.Methods()[0]]
	outer := body.Code.(*MakeClosure)
	inner := outer.Fn.Body.(*MakeClosure)
	add := inner.Fn.Body.(*Bin) // (x + y) + z
	xy := add.L.(*Bin)
	if x := xy.L.(*Local); x.Depth != 2 || x.Slot != 0 {
		t.Errorf("x = depth %d slot %d", x.Depth, x.Slot)
	}
	if y := xy.R.(*Local); y.Depth != 1 || y.Slot != 0 {
		t.Errorf("y = depth %d slot %d", y.Depth, y.Slot)
	}
	if z := add.R.(*Local); z.Depth != 0 || z.Slot != 0 {
		t.Errorf("z = depth %d slot %d", z.Depth, z.Slot)
	}
	if outer.Fn.Owner == nil || outer.Fn.Owner.GF.Name != "f" {
		t.Errorf("closure owner = %v", outer.Fn.Owner)
	}
}

// TestPassThroughPaperExample mirrors the paper's §2: inside
// overlaps(s1, s2), the do(s1, closure) send passes formal 0 through at
// argument position 0, and the includes(s2, elem) send inside the
// closure passes formal 1 through at position 0.
func TestPassThroughPaperExample(t *testing.T) {
	p := lower(t, `
class Set
method do(s@Set, body) { 1; }
method includes(s@Set, e) { 2; }
method overlaps(s1@Set, s2@Set) {
  s1.do(fn(elem) { if s2.includes(elem) { return true; } });
  false;
}
`)
	var overlaps *MethodBody
	for m, b := range p.Bodies {
		if m.GF.Name == "overlaps" {
			overlaps = b
		}
	}
	byGF := map[string]*CallSite{}
	for _, s := range overlaps.Sites {
		byGF[s.GF.Name] = s
	}
	doSite := byGF["do"]
	if !reflect.DeepEqual(doSite.PassThrough, []PassPair{{Formal: 0, ArgPos: 0}}) {
		t.Errorf("do PassThrough = %v", doSite.PassThrough)
	}
	incSite := byGF["includes"]
	if !reflect.DeepEqual(incSite.PassThrough, []PassPair{{Formal: 1, ArgPos: 0}}) {
		t.Errorf("includes PassThrough = %v", incSite.PassThrough)
	}
	if incSite.Caller.GF.Name != "overlaps" {
		t.Errorf("closure send attributed to %v", incSite.Caller)
	}
}

func TestPassThroughAssignedFormalExcluded(t *testing.T) {
	p := lower(t, `
class C
method g(x@C) { 1; }
method f(a@C, b@C) {
  g(a);
  g(b);
  b := a;
}
`)
	var f *MethodBody
	for m, b := range p.Bodies {
		if m.GF.Name == "f" {
			f = b
		}
	}
	var passCounts []int
	for _, s := range f.Sites {
		passCounts = append(passCounts, len(s.PassThrough))
	}
	// g(a): formal 0 passes through; g(b): formal 1 is assigned later,
	// so no pass-through.
	if !reflect.DeepEqual(passCounts, []int{1, 0}) {
		t.Errorf("pass-through counts = %v", passCounts)
	}
}

func TestPassThroughMultiplePositions(t *testing.T) {
	p := lower(t, `
class C
method g(x@C, y@C) { 1; }
method f(a@C) { g(a, a); }
`)
	var f *MethodBody
	for m, b := range p.Bodies {
		if m.GF.Name == "f" {
			f = b
		}
	}
	want := []PassPair{{Formal: 0, ArgPos: 0}, {Formal: 0, ArgPos: 1}}
	if got := f.Sites[0].PassThrough; !reflect.DeepEqual(got, want) {
		t.Errorf("PassThrough = %v, want %v", got, want)
	}
}

func TestPassThroughLocalNotFormal(t *testing.T) {
	p := lower(t, `
class C
method g(x@C) { 1; }
method f(a@C) { var tmp := a; g(tmp); }
`)
	var f *MethodBody
	for m, b := range p.Bodies {
		if m.GF.Name == "f" {
			f = b
		}
	}
	if got := f.Sites[0].PassThrough; len(got) != 0 {
		t.Errorf("local argument should not be pass-through: %v", got)
	}
}

func TestLowerNew(t *testing.T) {
	p := lower(t, `
class P { field x := 0; field y := 0; }
method f() { new P(1, 2); new P(1); }
`)
	body := p.Bodies[p.H.Methods()[0]]
	var news []*New
	Walk(body.Code, func(n Node) bool {
		if nn, ok := n.(*New); ok {
			news = append(news, nn)
		}
		return true
	})
	if len(news) != 2 || len(news[0].Args) != 2 || len(news[1].Args) != 1 {
		t.Fatalf("news = %#v", news)
	}
	cls := news[0].Class
	inits := p.FieldInits[cls]
	if len(inits) != 2 || inits[0] == nil || inits[1] == nil {
		t.Fatalf("field inits = %#v", inits)
	}
}

func TestLowerFieldAccessAndAssign(t *testing.T) {
	p := lower(t, `
class P { field x := 0; }
method f(p@P) { p.x := p.x + 1; p.x; }
`)
	body := p.Bodies[p.H.Methods()[0]]
	seq := body.Code.(*Seq)
	if _, ok := seq.Nodes[0].(*SetField); !ok {
		t.Fatalf("stmt0 = %#v", seq.Nodes[0])
	}
	if _, ok := seq.Nodes[1].(*GetField); !ok {
		t.Fatalf("stmt1 = %#v", seq.Nodes[1])
	}
}

func TestLowerShortCircuitAndIfWhileReturn(t *testing.T) {
	p := lower(t, `
method f(x) {
  while x > 0 { x := x - 1; }
  if x == 0 && true || false { return 1; }
  nil;
}
`)
	body := p.Bodies[p.H.Methods()[0]]
	var sawWhile, sawIf, sawOr, sawAnd, sawRet bool
	Walk(body.Code, func(n Node) bool {
		switch n.(type) {
		case *While:
			sawWhile = true
		case *If:
			sawIf = true
		case *Or:
			sawOr = true
		case *And:
			sawAnd = true
		case *Return:
			sawRet = true
		}
		return true
	})
	if !sawWhile || !sawIf || !sawOr || !sawAnd || !sawRet {
		t.Fatalf("missing nodes: while=%t if=%t or=%t and=%t ret=%t", sawWhile, sawIf, sawOr, sawAnd, sawRet)
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{`method f() { zzz; }`, "undefined variable"},
		{`method f() { zzz := 1; }`, "assignment to undefined variable"},
		{`method f() { qqq(1); }`, "unknown function"},
		{`method f() { aget(1); }`, "primitive aget takes 2 arguments"},
		{`method f(x) { x.nosuch(1); }`, "no method nosuch/2"},
		{`method f() { new Nope(); }`, "unknown class"},
		{`class P { field x; } method f() { new P(1, 2); }`, "2 arguments for 1 fields"},
		{`var g := 1; var g := 2;`, "already defined"},
		{`method print(x) { 1; }`, "collides with built-in primitive"},
		{`var g := fn() { return 1; };`, "'return' outside a method"},
	}
	for _, c := range cases {
		err := lowerErr(t, c.src)
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Lower(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestLowerMainDetection(t *testing.T) {
	p := lower(t, `method main() { 1; }`)
	if p.Main == nil || p.Main.Name != "main" {
		t.Fatal("main not detected")
	}
	p2 := lower(t, `method notmain() { 1; }`)
	if p2.Main != nil {
		t.Fatal("spurious main")
	}
}

func TestCloneDeepCopies(t *testing.T) {
	p := lower(t, `
class C
method g(x@C) { 1; }
method f(a@C) { g(a); fn(z) { z; }; }
`)
	var f *MethodBody
	for m, b := range p.Bodies {
		if m.GF.Name == "f" {
			f = b
		}
	}
	c := Clone(f.Code)
	if Size(c) != Size(f.Code) {
		t.Fatalf("clone size %d != %d", Size(c), Size(f.Code))
	}
	// Site pointers shared; node pointers distinct.
	origSends, cloneSends := SendSites(f.Code), SendSites(c)
	if origSends[0] == cloneSends[0] {
		t.Error("Send node aliased")
	}
	if origSends[0].Site != cloneSends[0].Site {
		t.Error("CallSite must be shared between clones")
	}
	// Closure bodies must not alias.
	var origClo, cloneClo *MakeClosure
	Walk(f.Code, func(n Node) bool {
		if mc, ok := n.(*MakeClosure); ok {
			origClo = mc
		}
		return true
	})
	Walk(c, func(n Node) bool {
		if mc, ok := n.(*MakeClosure); ok {
			cloneClo = mc
		}
		return true
	})
	if origClo.Fn == cloneClo.Fn || origClo.Fn.Body == cloneClo.Fn.Body {
		t.Error("ClosureCode aliased by Clone")
	}
}

func TestSizeCountsClosures(t *testing.T) {
	p := lower(t, `method f() { fn() { 1 + 2; }; }`)
	body := p.Bodies[p.H.Methods()[0]]
	// MakeClosure + Bin + 2 Consts = 4.
	if got := Size(body.Code); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	p := lower(t, `method f() { 1 + 2; }`)
	body := p.Bodies[p.H.Methods()[0]]
	n := 0
	Walk(body.Code, func(Node) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d nodes", n)
	}
}

func TestSiteString(t *testing.T) {
	p := lower(t, `
class C
method g(x@C) { 1; }
method f(a@C) { g(a); }
`)
	s := p.Sites[0].String()
	if !strings.Contains(s, "g/1") || !strings.Contains(s, "f(@C)") {
		t.Errorf("Site.String = %q", s)
	}
}
