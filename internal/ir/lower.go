package ir

import (
	"fmt"

	"selspec/internal/hier"
	"selspec/internal/lang"
)

// GlobalVar is one top-level variable with its lowered initializer.
type GlobalVar struct {
	Name string
	Init Node
}

// MethodBody is the lowered (unoptimized) body of a source method.
type MethodBody struct {
	Method   *hier.Method
	NumSlots int // frame size: params + locals of the method frame
	Code     Node
	Sites    []*CallSite // message-send sites lexically inside the method

	// AssignedFormals[i] reports that formal i is assigned somewhere in
	// the method (killing its pass-through status and its class-set
	// stability for analysis).
	AssignedFormals []bool
}

// Program is the lowered program: the hierarchy plus IR for every
// method body, global initializer and field initializer, and the table
// of all call sites.
type Program struct {
	H         *hier.Hierarchy
	Globals   []*GlobalVar
	GlobalIdx map[string]int
	Bodies    map[*hier.Method]*MethodBody

	// FieldInits[class] is aligned with class.Fields; entries are nil
	// for fields without a declared initializer.
	FieldInits map[*hier.Class][]Node

	// GlobalAssigned[i] reports that global i is assigned (SetGlobal)
	// somewhere in the program; never-assigned globals hold their
	// initializer's value forever, which the optimizer exploits.
	GlobalAssigned []bool

	Sites []*CallSite
	Main  *hier.GF // the main/0 generic function, if declared
}

// Site returns the call site with the given ID.
func (p *Program) Site(id int) *CallSite { return p.Sites[id] }

// Load parses nothing: it lowers an already-parsed program against its
// hierarchy. Use Lower(prog) for the common path.
func Lower(src *lang.Program) (*Program, error) {
	h, err := hier.Build(src)
	if err != nil {
		return nil, err
	}
	return LowerWith(src, h)
}

// LowerWith lowers src against a pre-built (frozen) hierarchy.
func LowerWith(src *lang.Program, h *hier.Hierarchy) (*Program, error) {
	p := &Program{
		H:          h,
		GlobalIdx:  map[string]int{},
		Bodies:     map[*hier.Method]*MethodBody{},
		FieldInits: map[*hier.Class][]Node{},
	}

	// Reject generic functions that collide with primitives.
	for _, g := range h.GFs() {
		if sig, ok := primSigs[g.Name]; ok && sig.Arity == g.Arity {
			return nil, fmt.Errorf("method %s/%d collides with built-in primitive", g.Name, g.Arity)
		}
	}

	// Predeclare all globals so initializers may reference any of them
	// (later ones are still nil at evaluation time).
	for _, g := range src.Globals {
		if _, dup := p.GlobalIdx[g.Name]; dup {
			return nil, fmt.Errorf("%s: global %s already defined", g.Pos, g.Name)
		}
		p.GlobalIdx[g.Name] = len(p.Globals)
		p.Globals = append(p.Globals, &GlobalVar{Name: g.Name})
	}
	p.GlobalAssigned = make([]bool, len(p.Globals))
	for i, g := range src.Globals {
		lw := &lowerer{prog: p}
		n, err := lw.expr(g.Init)
		if err != nil {
			return nil, err
		}
		p.Globals[i].Init = n
	}

	// Field initializers, lowered in global scope.
	for _, c := range h.Classes() {
		if len(c.Fields) == 0 {
			continue
		}
		inits := make([]Node, len(c.Fields))
		for i, f := range c.Fields {
			if f.Init == nil {
				continue
			}
			lw := &lowerer{prog: p}
			n, err := lw.expr(f.Init)
			if err != nil {
				return nil, err
			}
			inits[i] = n
		}
		p.FieldInits[c] = inits
	}

	// Method bodies.
	for _, m := range h.Methods() {
		body, err := lowerMethod(p, m)
		if err != nil {
			return nil, err
		}
		p.Bodies[m] = body
	}

	if g, ok := h.GF("main", 0); ok {
		p.Main = g
	}
	return p, nil
}

// frame is one lexical frame (a method activation or a closure
// activation) during lowering.
type frame struct {
	numParams int
	numSlots  int
}

// scope maps names to slots of a particular frame.
type scope struct {
	parent   *scope
	frameIdx int // index into lowerer.frames
	names    map[string]int
}

type lowerer struct {
	prog   *Program
	method *hier.Method // nil in global/field-init context
	frames []*frame     // frames[0] is the method frame
	scope  *scope

	assignedFormals map[int]bool
	sites           []*CallSite
	// candidatePass maps each created site to the raw per-arg formal
	// candidates, filtered against assignedFormals after lowering.
	candidates map[*CallSite][]PassPair
}

func lowerMethod(p *Program, m *hier.Method) (*MethodBody, error) {
	lw := &lowerer{
		prog:            p,
		method:          m,
		assignedFormals: map[int]bool{},
		candidates:      map[*CallSite][]PassPair{},
	}
	f := &frame{numParams: len(m.Decl.Params)}
	lw.frames = append(lw.frames, f)
	lw.scope = &scope{frameIdx: 0, names: map[string]int{}}
	for _, prm := range m.Decl.Params {
		lw.scope.names[prm.Name] = f.numSlots
		f.numSlots++
	}

	code, err := lw.block(m.Decl.Body)
	if err != nil {
		return nil, err
	}

	// Finalize PassThroughArgs: drop formals that are assigned anywhere
	// in the method (including inside closures).
	for _, s := range lw.sites {
		for _, pp := range lw.candidates[s] {
			if !lw.assignedFormals[pp.Formal] {
				s.PassThrough = append(s.PassThrough, pp)
			}
		}
	}

	assigned := make([]bool, f.numParams)
	for i := range assigned {
		assigned[i] = lw.assignedFormals[i]
	}
	return &MethodBody{Method: m, NumSlots: f.numSlots, Code: code, Sites: lw.sites, AssignedFormals: assigned}, nil
}

func (lw *lowerer) curFrame() *frame { return lw.frames[len(lw.frames)-1] }

func (lw *lowerer) pushScope() {
	lw.scope = &scope{parent: lw.scope, frameIdx: len(lw.frames) - 1, names: map[string]int{}}
}
func (lw *lowerer) popScope() { lw.scope = lw.scope.parent }

// declare allocates a new slot in the current frame for name.
func (lw *lowerer) declare(name string) int {
	f := lw.curFrame()
	slot := f.numSlots
	f.numSlots++
	lw.scope.names[name] = slot
	return slot
}

// resolve finds name in the lexical scope chain, returning (depth from
// current frame, slot, frameIdx, found).
func (lw *lowerer) resolve(name string) (depth, slot, frameIdx int, ok bool) {
	for s := lw.scope; s != nil; s = s.parent {
		if sl, found := s.names[name]; found {
			return len(lw.frames) - 1 - s.frameIdx, sl, s.frameIdx, true
		}
	}
	return 0, 0, 0, false
}

func (lw *lowerer) newSite(g *hier.GF, pos lang.Pos) *CallSite {
	s := &CallSite{ID: len(lw.prog.Sites), GF: g, Caller: lw.method, Pos: pos}
	lw.prog.Sites = append(lw.prog.Sites, s)
	lw.sites = append(lw.sites, s)
	return s
}

func (lw *lowerer) block(b *lang.Block) (Node, error) {
	lw.pushScope()
	defer lw.popScope()
	seq := &Seq{}
	for _, s := range b.Stmts {
		n, err := lw.stmt(s)
		if err != nil {
			return nil, err
		}
		seq.Nodes = append(seq.Nodes, n)
	}
	if len(seq.Nodes) == 1 {
		return seq.Nodes[0], nil
	}
	return seq, nil
}

func (lw *lowerer) stmt(s lang.Stmt) (Node, error) {
	switch s := s.(type) {
	case *lang.VarStmt:
		if len(lw.frames) == 0 {
			return nil, fmt.Errorf("%s: 'var' not allowed in a global initializer expression", s.Pos)
		}
		init, err := lw.expr(s.Init)
		if err != nil {
			return nil, err
		}
		// Evaluate the initializer before the slot is visible, so
		// "var x := x;" refers to any outer x.
		slot := lw.declare(s.Name)
		return &SetLocal{Depth: 0, Slot: slot, Name: s.Name, X: init}, nil

	case *lang.ExprStmt:
		return lw.expr(s.X)

	case *lang.AssignStmt:
		rhs, err := lw.expr(s.RHS)
		if err != nil {
			return nil, err
		}
		switch lhs := s.LHS.(type) {
		case *lang.Ident:
			if depth, slot, frameIdx, ok := lw.resolve(lhs.Name); ok {
				if frameIdx == 0 && slot < lw.frames[0].numParams && lw.method != nil {
					lw.assignedFormals[slot] = true
				}
				return &SetLocal{Depth: depth, Slot: slot, Name: lhs.Name, X: rhs}, nil
			}
			if gi, ok := lw.prog.GlobalIdx[lhs.Name]; ok {
				lw.prog.GlobalAssigned[gi] = true
				return &SetGlobal{Slot: gi, Name: lhs.Name, X: rhs}, nil
			}
			return nil, fmt.Errorf("%s: assignment to undefined variable %q", s.Pos, lhs.Name)
		case *lang.FieldAccess:
			obj, err := lw.expr(lhs.Recv)
			if err != nil {
				return nil, err
			}
			return &SetField{Obj: obj, Name: lhs.Name, Slot: -1, X: rhs}, nil
		default:
			return nil, fmt.Errorf("%s: invalid assignment target", s.Pos)
		}

	case *lang.ReturnStmt:
		if lw.method == nil {
			return nil, fmt.Errorf("%s: 'return' outside a method", s.Pos)
		}
		var x Node
		if s.X != nil {
			var err error
			x, err = lw.expr(s.X)
			if err != nil {
				return nil, err
			}
		}
		return &Return{X: x}, nil

	case *lang.WhileStmt:
		cond, err := lw.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := lw.block(s.Body)
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil

	case *lang.IfStmt:
		cond, err := lw.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := lw.block(s.Then)
		if err != nil {
			return nil, err
		}
		var els Node
		if s.Else != nil {
			els, err = lw.block(s.Else)
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil
	}
	return nil, fmt.Errorf("ir: unknown statement %T", s)
}

func (lw *lowerer) exprs(es []lang.Expr) ([]Node, error) {
	out := make([]Node, len(es))
	for i, e := range es {
		n, err := lw.expr(e)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

// send lowers a message send to the generic function g, recording
// pass-through candidates for arguments that are direct, unassigned
// method formals.
func (lw *lowerer) send(g *hier.GF, pos lang.Pos, args []Node) Node {
	site := lw.newSite(g, pos)
	if lw.method != nil {
		var cands []PassPair
		for i, a := range args {
			if l, ok := a.(*Local); ok &&
				l.Depth == len(lw.frames)-1 && // resolves to the method frame
				l.Slot < lw.frames[0].numParams {
				cands = append(cands, PassPair{Formal: l.Slot, ArgPos: i})
			}
		}
		lw.candidates[site] = cands
	}
	return &Send{Site: site, Args: args}
}

func (lw *lowerer) expr(e lang.Expr) (Node, error) {
	switch e := e.(type) {
	case *lang.IntLit:
		return &Const{Kind: KInt, Int: e.Val}, nil
	case *lang.StrLit:
		return &Const{Kind: KStr, Str: e.Val}, nil
	case *lang.BoolLit:
		return &Const{Kind: KBool, Bool: e.Val}, nil
	case *lang.NilLit:
		return &Const{Kind: KNil}, nil

	case *lang.Ident:
		if depth, slot, _, ok := lw.resolve(e.Name); ok {
			return &Local{Depth: depth, Slot: slot, Name: e.Name}, nil
		}
		if gi, ok := lw.prog.GlobalIdx[e.Name]; ok {
			return &Global{Slot: gi, Name: e.Name}, nil
		}
		return nil, fmt.Errorf("%s: undefined variable %q", e.Pos, e.Name)

	case *lang.Call:
		args, err := lw.exprs(e.Args)
		if err != nil {
			return nil, err
		}
		// A name bound to a variable is a closure call; otherwise a
		// generic-function send; otherwise a primitive.
		if depth, slot, _, ok := lw.resolve(e.Name); ok {
			return &CallClosure{Fn: &Local{Depth: depth, Slot: slot, Name: e.Name}, Args: args, Pos: e.Pos}, nil
		}
		if gi, ok := lw.prog.GlobalIdx[e.Name]; ok {
			return &CallClosure{Fn: &Global{Slot: gi, Name: e.Name}, Args: args, Pos: e.Pos}, nil
		}
		if g, ok := lw.prog.H.GF(e.Name, len(args)); ok {
			return lw.send(g, e.Pos, args), nil
		}
		if sig, ok := primSigs[e.Name]; ok {
			if sig.Arity != len(args) {
				return nil, fmt.Errorf("%s: primitive %s takes %d arguments, got %d", e.Pos, e.Name, sig.Arity, len(args))
			}
			return &PrimCall{Prim: sig.Prim, Args: args}, nil
		}
		return nil, fmt.Errorf("%s: unknown function %s/%d", e.Pos, e.Name, len(args))

	case *lang.SendSugar:
		recv, err := lw.expr(e.Recv)
		if err != nil {
			return nil, err
		}
		args, err := lw.exprs(e.Args)
		if err != nil {
			return nil, err
		}
		all := append([]Node{recv}, args...)
		g, ok := lw.prog.H.GF(e.Sel, len(all))
		if !ok {
			return nil, fmt.Errorf("%s: no method %s/%d (receiver syntax)", e.Pos, e.Sel, len(all))
		}
		return lw.send(g, e.Pos, all), nil

	case *lang.FieldAccess:
		obj, err := lw.expr(e.Recv)
		if err != nil {
			return nil, err
		}
		return &GetField{Obj: obj, Name: e.Name, Slot: -1}, nil

	case *lang.ApplyExpr:
		fn, err := lw.expr(e.Fn)
		if err != nil {
			return nil, err
		}
		args, err := lw.exprs(e.Args)
		if err != nil {
			return nil, err
		}
		return &CallClosure{Fn: fn, Args: args, Pos: e.Pos}, nil

	case *lang.NewExpr:
		c, ok := lw.prog.H.Class(e.Class)
		if !ok {
			return nil, fmt.Errorf("%s: unknown class %q in new", e.Pos, e.Class)
		}
		if len(e.Args) > len(c.Fields) {
			return nil, fmt.Errorf("%s: new %s: %d arguments for %d fields", e.Pos, e.Class, len(e.Args), len(c.Fields))
		}
		args, err := lw.exprs(e.Args)
		if err != nil {
			return nil, err
		}
		return &New{Class: c, Args: args}, nil

	case *lang.FnExpr:
		f := &frame{numParams: len(e.Params)}
		lw.frames = append(lw.frames, f)
		lw.pushScope()
		for _, pn := range e.Params {
			lw.scope.names[pn] = f.numSlots
			f.numSlots++
		}
		body, err := lw.block(e.Body)
		lw.popScope()
		lw.frames = lw.frames[:len(lw.frames)-1]
		if err != nil {
			return nil, err
		}
		return &MakeClosure{Fn: &ClosureCode{
			NumParams: len(e.Params),
			NumSlots:  f.numSlots,
			Body:      body,
			Owner:     lw.method,
		}}, nil

	case *lang.UnaryExpr:
		x, err := lw.expr(e.X)
		if err != nil {
			return nil, err
		}
		if e.Op == lang.NOT {
			return &Un{Op: OpNot, X: x}, nil
		}
		return &Un{Op: OpNeg, X: x}, nil

	case *lang.BinaryExpr:
		l, err := lw.expr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := lw.expr(e.R)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case lang.ANDAND:
			return &And{L: l, R: r}, nil
		case lang.OROR:
			return &Or{L: l, R: r}, nil
		case lang.PLUS:
			return &Bin{Op: OpAdd, L: l, R: r}, nil
		case lang.MINUS:
			return &Bin{Op: OpSub, L: l, R: r}, nil
		case lang.STAR:
			return &Bin{Op: OpMul, L: l, R: r}, nil
		case lang.SLASH:
			return &Bin{Op: OpDiv, L: l, R: r}, nil
		case lang.PERCENT:
			return &Bin{Op: OpMod, L: l, R: r}, nil
		case lang.EQ:
			return &Bin{Op: OpEQ, L: l, R: r}, nil
		case lang.NE:
			return &Bin{Op: OpNE, L: l, R: r}, nil
		case lang.LT:
			return &Bin{Op: OpLT, L: l, R: r}, nil
		case lang.LE:
			return &Bin{Op: OpLE, L: l, R: r}, nil
		case lang.GT:
			return &Bin{Op: OpGT, L: l, R: r}, nil
		case lang.GE:
			return &Bin{Op: OpGE, L: l, R: r}, nil
		}
		return nil, fmt.Errorf("%s: unknown binary operator", e.Pos)

	case *lang.BlockExpr:
		return lw.block(e.Block)
	}
	return nil, fmt.Errorf("ir: unknown expression %T", e)
}
