package ir

import "fmt"

// Walk calls f on n and every descendant node in evaluation order,
// including closure bodies. If f returns false for a node, its
// children are skipped.
func Walk(n Node, f func(Node) bool) {
	if n == nil {
		return
	}
	if !f(n) {
		return
	}
	switch n := n.(type) {
	case *Const, *Local, *Global:
	case *SetLocal:
		Walk(n.X, f)
	case *SetGlobal:
		Walk(n.X, f)
	case *GetField:
		Walk(n.Obj, f)
	case *SetField:
		Walk(n.Obj, f)
		Walk(n.X, f)
	case *Seq:
		for _, c := range n.Nodes {
			Walk(c, f)
		}
	case *If:
		Walk(n.Cond, f)
		Walk(n.Then, f)
		Walk(n.Else, f)
	case *While:
		Walk(n.Cond, f)
		Walk(n.Body, f)
	case *Return:
		Walk(n.X, f)
	case *New:
		for _, c := range n.Args {
			Walk(c, f)
		}
	case *MakeClosure:
		Walk(n.Fn.Body, f)
	case *CallClosure:
		Walk(n.Fn, f)
		for _, c := range n.Args {
			Walk(c, f)
		}
	case *Send:
		for _, c := range n.Args {
			Walk(c, f)
		}
	case *StaticCall:
		for _, c := range n.Args {
			Walk(c, f)
		}
	case *VersionSelect:
		for _, c := range n.Args {
			Walk(c, f)
		}
	case *Bin:
		Walk(n.L, f)
		Walk(n.R, f)
	case *Un:
		Walk(n.X, f)
	case *PrimCall:
		for _, c := range n.Args {
			Walk(c, f)
		}
	case *And:
		Walk(n.L, f)
		Walk(n.R, f)
	case *Or:
		Walk(n.L, f)
		Walk(n.R, f)
	default:
		panic(fmt.Sprintf("ir.Walk: unknown node %T", n))
	}
}

// Size returns the number of IR nodes in the tree (including closure
// bodies): the code-space metric used for the paper's Figure 6
// comparisons alongside version counts.
func Size(n Node) int {
	count := 0
	Walk(n, func(Node) bool { count++; return true })
	return count
}

// Clone deep-copies an IR tree. CallSites are shared (site identity is
// how profiles and arcs are keyed); ClosureCode is copied so each
// compiled version can optimize its closure bodies independently.
func Clone(n Node) Node {
	if n == nil {
		return nil
	}
	switch n := n.(type) {
	case *Const:
		c := *n
		return &c
	case *Local:
		c := *n
		return &c
	case *Global:
		c := *n
		return &c
	case *SetLocal:
		return &SetLocal{Depth: n.Depth, Slot: n.Slot, Name: n.Name, X: Clone(n.X)}
	case *SetGlobal:
		return &SetGlobal{Slot: n.Slot, Name: n.Name, X: Clone(n.X)}
	case *GetField:
		return &GetField{Obj: Clone(n.Obj), Name: n.Name, Slot: n.Slot}
	case *SetField:
		return &SetField{Obj: Clone(n.Obj), Name: n.Name, Slot: n.Slot, X: Clone(n.X)}
	case *Seq:
		return &Seq{Nodes: cloneSlice(n.Nodes)}
	case *If:
		return &If{Cond: Clone(n.Cond), Then: Clone(n.Then), Else: Clone(n.Else)}
	case *While:
		return &While{Cond: Clone(n.Cond), Body: Clone(n.Body)}
	case *Return:
		return &Return{X: Clone(n.X)}
	case *New:
		return &New{Class: n.Class, Args: cloneSlice(n.Args)}
	case *MakeClosure:
		return &MakeClosure{Fn: &ClosureCode{
			NumParams: n.Fn.NumParams,
			NumSlots:  n.Fn.NumSlots,
			Body:      Clone(n.Fn.Body),
			Owner:     n.Fn.Owner,
		}}
	case *CallClosure:
		return &CallClosure{Fn: Clone(n.Fn), Args: cloneSlice(n.Args), Pos: n.Pos}
	case *Send:
		return &Send{Site: n.Site, Args: cloneSlice(n.Args)}
	case *StaticCall:
		return &StaticCall{Target: n.Target, Site: n.Site, Args: cloneSlice(n.Args)}
	case *VersionSelect:
		return &VersionSelect{Method: n.Method, Site: n.Site, Args: cloneSlice(n.Args)}
	case *Bin:
		return &Bin{Op: n.Op, L: Clone(n.L), R: Clone(n.R)}
	case *Un:
		return &Un{Op: n.Op, X: Clone(n.X)}
	case *PrimCall:
		return &PrimCall{Prim: n.Prim, Args: cloneSlice(n.Args)}
	case *And:
		return &And{L: Clone(n.L), R: Clone(n.R)}
	case *Or:
		return &Or{L: Clone(n.L), R: Clone(n.R)}
	}
	panic(fmt.Sprintf("ir.Clone: unknown node %T", n))
}

func cloneSlice(ns []Node) []Node {
	out := make([]Node, len(ns))
	for i, n := range ns {
		out[i] = Clone(n)
	}
	return out
}

// SendSites returns the Send nodes in the tree, in evaluation order.
func SendSites(n Node) []*Send {
	var out []*Send
	Walk(n, func(n Node) bool {
		if s, ok := n.(*Send); ok {
			out = append(out, s)
		}
		return true
	})
	return out
}
