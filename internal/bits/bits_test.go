package bits

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(10)
	if s.Has(3) {
		t.Fatal("empty set has 3")
	}
	s.Add(3)
	s.Add(200) // beyond capacity hint: must grow
	if !s.Has(3) || !s.Has(200) {
		t.Fatalf("missing elements: %v", s)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Remove(3)
	if s.Has(3) {
		t.Fatal("removed element still present")
	}
	s.Remove(999) // absent, out of range: no-op
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(0).Add(-1)
}

func TestNilReceiverQueries(t *testing.T) {
	var s *Set
	if s.Has(0) || s.Len() != 0 || !s.Empty() {
		t.Fatal("nil set should behave as empty")
	}
	if got := s.Elems(); len(got) != 0 {
		t.Fatalf("nil Elems = %v", got)
	}
	if s.Min() != -1 {
		t.Fatal("nil Min should be -1")
	}
	if !s.SubsetOf(Of(1, 2)) {
		t.Fatal("nil should be subset of anything")
	}
	c := s.Clone()
	if c == nil || !c.Empty() {
		t.Fatal("Clone of nil should be empty non-nil")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Of(1, 2, 3, 64, 65)
	b := Of(2, 3, 4, 65, 130)

	if got := Union(a, b).Elems(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 64, 65, 130}) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, b).Elems(); !reflect.DeepEqual(got, []int{2, 3, 65}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Difference(a, b).Elems(); !reflect.DeepEqual(got, []int{1, 64}) {
		t.Errorf("Difference = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if Of(9).Intersects(Of(10)) {
		t.Error("{9} should not intersect {10}")
	}
	if !Of(2, 3).SubsetOf(a) {
		t.Error("{2,3} ⊆ a")
	}
	if a.SubsetOf(b) {
		t.Error("a ⊄ b")
	}
}

func TestEqualDifferentCapacities(t *testing.T) {
	a := New(1000)
	a.Add(5)
	b := Of(5)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("sets with different capacities but same elements must be Equal")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("equal sets must hash equally")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(1, 2)
	c := a.Clone()
	c.Add(7)
	if a.Has(7) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestClearAndEmpty(t *testing.T) {
	a := Of(3, 100)
	a.Clear()
	if !a.Empty() || a.Len() != 0 {
		t.Fatal("Clear did not empty the set")
	}
}

func TestMinForEach(t *testing.T) {
	a := Of(70, 3, 12)
	if a.Min() != 3 {
		t.Fatalf("Min = %d", a.Min())
	}
	var seen []int
	a.ForEach(func(i int) bool { seen = append(seen, i); return true })
	if !reflect.DeepEqual(seen, []int{3, 12, 70}) {
		t.Fatalf("ForEach order = %v", seen)
	}
	// Early stop.
	count := 0
	a.ForEach(func(int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("ForEach early stop visited %d", count)
	}
}

func TestString(t *testing.T) {
	if got := Of(1, 5).String(); got != "{1 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(0).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestAddAllReportsChange(t *testing.T) {
	a := Of(1)
	if !a.AddAll(Of(2)) {
		t.Fatal("AddAll should report change")
	}
	if a.AddAll(Of(1, 2)) {
		t.Fatal("AddAll of subset should report no change")
	}
}

// randomSet generates a set over [0, 192) for property tests, exercising
// multi-word behaviour.
func randomSet(r *rand.Rand) *Set {
	s := New(192)
	n := r.Intn(40)
	for i := 0; i < n; i++ {
		s.Add(r.Intn(192))
	}
	return s
}

type setPair struct{ A, B *Set }

func (setPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(setPair{randomSet(r), randomSet(r)})
}

type setTriple struct{ A, B, C *Set }

func (setTriple) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(setTriple{randomSet(r), randomSet(r), randomSet(r)})
}

func TestQuickUnionCommutes(t *testing.T) {
	f := func(p setPair) bool { return Union(p.A, p.B).Equal(Union(p.B, p.A)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutes(t *testing.T) {
	f := func(p setPair) bool { return Intersect(p.A, p.B).Equal(Intersect(p.B, p.A)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// A \ (B ∪ C) == (A \ B) ∩ (A \ C)
	f := func(p setTriple) bool {
		lhs := Difference(p.A, Union(p.B, p.C))
		rhs := Intersect(Difference(p.A, p.B), Difference(p.A, p.C))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionSubset(t *testing.T) {
	f := func(p setPair) bool {
		i := Intersect(p.A, p.B)
		return i.SubsetOf(p.A) && i.SubsetOf(p.B)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsConsistent(t *testing.T) {
	f := func(p setPair) bool {
		return p.A.Intersects(p.B) == !Intersect(p.A, p.B).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickElemsSortedUnique(t *testing.T) {
	f := func(p setPair) bool {
		e := p.A.Elems()
		if !sort.IntsAreSorted(e) {
			return false
		}
		for i := 1; i < len(e); i++ {
			if e[i] == e[i-1] {
				return false
			}
		}
		return len(e) == p.A.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetAntisymmetry(t *testing.T) {
	f := func(p setPair) bool {
		if p.A.SubsetOf(p.B) && p.B.SubsetOf(p.A) {
			return p.A.Equal(p.B)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHashEqualConsistent(t *testing.T) {
	f := func(p setPair) bool {
		if p.A.Equal(p.B) {
			return p.A.Hash() == p.B.Hash()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickInPlaceMatchesPure(t *testing.T) {
	f := func(p setPair) bool {
		u := p.A.Clone()
		u.AddAll(p.B)
		i := p.A.Clone()
		i.RetainAll(p.B)
		d := p.A.Clone()
		d.RemoveAll(p.B)
		return u.Equal(Union(p.A, p.B)) && i.Equal(Intersect(p.A, p.B)) && d.Equal(Difference(p.A, p.B))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
