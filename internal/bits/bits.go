// Package bits provides a dense bitset used throughout the compiler for
// sets of classes. Class IDs are small consecutive integers, so a packed
// []uint64 representation makes the set algebra at the heart of the
// selective specialization algorithm (tuple intersection, subset tests,
// cone computations) cheap and allocation-friendly.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a growable bitset. The zero value is an empty set ready to use.
// Methods that mutate the receiver have pointer receivers; pure queries
// accept value receivers so Sets can be used as map values if needed.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity hint n bits.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice builds a set containing exactly the given elements.
func FromSlice(elems []int) *Set {
	s := &Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Of builds a set from its arguments.
func Of(elems ...int) *Set { return FromSlice(elems) }

func (s *Set) ensure(i int) {
	w := i / wordBits
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
}

// Add inserts i into the set. i must be non-negative.
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bits: negative element %d", i))
	}
	s.ensure(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set; removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if s == nil || i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	if s == nil {
		return true
	}
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	if s == nil {
		return &Set{}
	}
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// AddAll inserts every element of t into s and reports whether s changed.
func (s *Set) AddAll(t *Set) bool {
	if t == nil {
		return false
	}
	changed := false
	if len(s.words) < len(t.words) {
		s.words = append(s.words, make([]uint64, len(t.words)-len(s.words))...)
	}
	for i, w := range t.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// RemoveAll deletes every element of t from s.
func (s *Set) RemoveAll(t *Set) {
	if t == nil {
		return
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// RetainAll intersects s with t in place.
func (s *Set) RetainAll(t *Set) {
	for i := range s.words {
		if t == nil || i >= len(t.words) {
			s.words[i] = 0
		} else {
			s.words[i] &= t.words[i]
		}
	}
}

// Union returns a new set holding s ∪ t.
func Union(s, t *Set) *Set {
	u := s.Clone()
	u.AddAll(t)
	return u
}

// Intersect returns a new set holding s ∩ t.
func Intersect(s, t *Set) *Set {
	u := s.Clone()
	u.RetainAll(t)
	return u
}

// Difference returns a new set holding s \ t.
func Difference(s, t *Set) *Set {
	u := s.Clone()
	u.RemoveAll(t)
	return u
}

// Intersects reports whether s ∩ t is non-empty without allocating.
func (s *Set) Intersects(t *Set) bool {
	if s == nil || t == nil {
		return false
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	if s == nil {
		return true
	}
	for i, w := range s.words {
		var tw uint64
		if t != nil && i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	return s.SubsetOf(t) && t.SubsetOf(s)
}

// Elems returns the elements of the set in ascending order.
func (s *Set) Elems() []int {
	if s == nil {
		return nil
	}
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls f on every element in ascending order. If f returns
// false, iteration stops early.
func (s *Set) ForEach(f func(int) bool) {
	if s == nil {
		return
	}
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	if s == nil {
		return -1
	}
	for wi, w := range s.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Hash returns a cheap content hash, usable for dedup tables.
func (s *Set) Hash() uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	if s == nil {
		return h
	}
	for _, w := range s.words {
		// Skip trailing zero words so logically-equal sets with
		// different capacities hash identically.
		h ^= w
		h *= 1099511628211
	}
	// Normalize: recompute skipping zero suffix.
	h = 1469598103934665603
	last := len(s.words) - 1
	for last >= 0 && s.words[last] == 0 {
		last--
	}
	for i := 0; i <= last; i++ {
		h ^= s.words[i]
		h *= 1099511628211
	}
	return h
}

// String renders the set as "{a b c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
