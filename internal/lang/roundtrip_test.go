package lang_test

// Round-trip property over the real benchmark corpus: every embedded
// Mini-Cecil program must parse, format, reparse, and reach a Format
// fixpoint. (External test package so we can use the corpus in
// internal/programs without an import cycle.)

import (
	"testing"

	"selspec/internal/driver"
	"selspec/internal/lang"
	"selspec/internal/programs"
)

// runSource executes a program under Base and returns value+output.
func runSource(src string) (string, error) {
	p, err := driver.Load(src)
	if err != nil {
		return "", err
	}
	res, err := p.RunConfig(driver.ConfigOptions{
		RunExtra: func(ro *driver.RunOptions) {
			ro.CaptureOutput = true
			ro.StepLimit = 100_000_000
		},
	})
	if err != nil {
		return "", err
	}
	return res.Value + "\n" + res.Output, nil
}

func TestFormatRoundTripOnBenchmarkCorpus(t *testing.T) {
	corpus := append(programs.All(), programs.Sets())
	for _, b := range corpus {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p1, err := lang.Parse(b.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			f1 := lang.Format(p1)
			p2, err := lang.Parse(f1)
			if err != nil {
				t.Fatalf("formatted source does not reparse: %v", err)
			}
			f2 := lang.Format(p2)
			if f1 != f2 {
				t.Fatal("Format is not a fixpoint on this benchmark")
			}
			// Shape preservation: same declaration counts.
			if len(p1.Classes) != len(p2.Classes) ||
				len(p1.Methods) != len(p2.Methods) ||
				len(p1.Globals) != len(p2.Globals) {
				t.Fatalf("declaration counts changed: %d/%d/%d vs %d/%d/%d",
					len(p1.Classes), len(p1.Methods), len(p1.Globals),
					len(p2.Classes), len(p2.Methods), len(p2.Globals))
			}
		})
	}
}

// TestFormattedBenchmarksStillRunIdentically pushes the round trip all
// the way through execution: the reformatted source must behave
// exactly like the original.
func TestFormattedBenchmarksStillRunIdentically(t *testing.T) {
	// Sets is the cheapest benchmark with closures and multi-methods.
	b := programs.Sets()
	p1, err := lang.Parse(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	formatted := lang.Format(p1)
	if formatted == b.Source {
		t.Skip("formatting is the identity here; nothing to compare")
	}
	run := func(src string) string {
		out, err := runSource(src)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if a, b := run(b.Source), run(formatted); a != b {
		t.Fatalf("reformatted program behaves differently:\n%q\nvs\n%q", a, b)
	}
}
