package lang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize(`class Set isa Any { field n := 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KWCLASS, IDENT, KWISA, IDENT, LBRACE, KWFIELD, IDENT, ASSIGN, INT, SEMI, RBRACE, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize(`+ - * / % == != < <= > >= && || ! := : . @ , ; ( ) { } [ ]`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{PLUS, MINUS, STAR, SLASH, PERCENT, EQ, NE, LT, LE, GT, GE,
		ANDAND, OROR, NOT, ASSIGN, COLON, DOT, AT, COMMA, SEMI,
		LPAREN, RPAREN, LBRACE, RBRACE, LBRACKET, RBRACKET, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("a -- dash comment\nb // slash comment\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Fatalf("comments not skipped: %v", toks)
	}
	if toks[1].Pos.Line != 2 || toks[2].Pos.Line != 3 {
		t.Errorf("line tracking wrong: %v %v", toks[1].Pos, toks[2].Pos)
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, err := Tokenize(`"hello\n\t\"x\"\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != STRING || toks[0].Text != "hello\n\t\"x\"\\" {
		t.Fatalf("string = %q", toks[0].Text)
	}
}

func TestTokenizeKeywordsVsIdents(t *testing.T) {
	toks, err := Tokenize("classy class newish new fnord fn")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, KWCLASS, IDENT, KWNEW, IDENT, KWFN, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`"unterminated`, "unterminated string"},
		{`"bad \q escape"`, "unknown escape"},
		{`a = b`, "unexpected '='"},
		{`a & b`, "did you mean '&&'"},
		{`a | b`, "did you mean '||'"},
		{`12abc`, "malformed number"},
		{"#", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Tokenize(c.src)
		if err == nil {
			t.Errorf("Tokenize(%q): no error, want %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Tokenize(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestTokenPositions(t *testing.T) {
	toks, err := Tokenize("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("ab at %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("cd at %v", toks[1].Pos)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := errf(Pos{3, 7}, "bad %s", "thing")
	if e.Error() != "3:7: bad thing" {
		t.Fatalf("Error() = %q", e.Error())
	}
}
