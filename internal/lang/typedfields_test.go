package lang

import (
	"strings"
	"testing"
)

func TestParseTypedFields(t *testing.T) {
	p, err := Parse(`
class T
class H {
  field plain := 1;
  field typed : T;
  field both : T := nil;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	fs := p.Classes[1].Fields
	if fs[0].Type != "" || fs[0].Init == nil {
		t.Errorf("plain field parsed wrong: %+v", fs[0])
	}
	if fs[1].Type != "T" || fs[1].Init != nil {
		t.Errorf("typed field parsed wrong: %+v", fs[1])
	}
	if fs[2].Type != "T" || fs[2].Init == nil {
		t.Errorf("typed+init field parsed wrong: %+v", fs[2])
	}
}

func TestParseTypedFieldErrors(t *testing.T) {
	cases := []struct{ src, sub string }{
		{`class H { field x : ; }`, "expected identifier"},
		{`class H { field x : 3; }`, "expected identifier"},
		{`class H { field x : T 1; }`, "expected ';'"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("Parse(%q) err = %v, want %q", c.src, err, c.sub)
		}
	}
}

func TestFormatTypedFieldsRoundTrip(t *testing.T) {
	src := `
class T
class H { field a : T := nil; field b := 2; field c : T; }
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f1 := Format(p1)
	if !strings.Contains(f1, "field a : T := nil;") || !strings.Contains(f1, "field c : T;") {
		t.Fatalf("Format lost field types:\n%s", f1)
	}
	p2, err := Parse(f1)
	if err != nil {
		t.Fatalf("formatted source does not reparse: %v\n%s", err, f1)
	}
	if f2 := Format(p2); f1 != f2 {
		t.Fatalf("Format not a fixpoint:\n%s\n---\n%s", f1, f2)
	}
}
