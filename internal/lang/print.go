package lang

import (
	"fmt"
	"strings"
)

// Format renders a program back to (normalized) Mini-Cecil source. The
// output reparses to an equivalent AST; tests rely on this round trip.
func Format(p *Program) string {
	var b strings.Builder
	pr := &printer{b: &b}
	for _, c := range p.Classes {
		pr.classDecl(c)
	}
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "var %s := ", g.Name)
		pr.expr(g.Init)
		b.WriteString(";\n")
	}
	for _, m := range p.Methods {
		pr.methodDecl(m)
	}
	return b.String()
}

// FormatExpr renders a single expression.
func FormatExpr(e Expr) string {
	var b strings.Builder
	(&printer{b: &b}).expr(e)
	return b.String()
}

type printer struct {
	b      *strings.Builder
	indent int
}

func (p *printer) nl() {
	p.b.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("  ")
	}
}

func (p *printer) classDecl(c *ClassDecl) {
	fmt.Fprintf(p.b, "class %s", c.Name)
	if len(c.Parents) > 0 {
		fmt.Fprintf(p.b, " isa %s", strings.Join(c.Parents, ", "))
	}
	if len(c.Fields) > 0 {
		p.b.WriteString(" {")
		p.indent++
		for _, f := range c.Fields {
			p.nl()
			fmt.Fprintf(p.b, "field %s", f.Name)
			if f.Type != "" {
				fmt.Fprintf(p.b, " : %s", f.Type)
			}
			if f.Init != nil {
				p.b.WriteString(" := ")
				p.expr(f.Init)
			}
			p.b.WriteByte(';')
		}
		p.indent--
		p.nl()
		p.b.WriteString("}")
	}
	p.b.WriteString("\n")
}

func (p *printer) methodDecl(m *MethodDecl) {
	fmt.Fprintf(p.b, "method %s(", m.Name)
	for i, prm := range m.Params {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.b.WriteString(prm.Name)
		if prm.Spec != "" {
			fmt.Fprintf(p.b, "@%s", prm.Spec)
		}
	}
	p.b.WriteString(") ")
	p.block(m.Body)
	p.b.WriteString("\n")
}

func (p *printer) block(b *Block) {
	p.b.WriteString("{")
	p.indent++
	for _, s := range b.Stmts {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.b.WriteString("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *VarStmt:
		fmt.Fprintf(p.b, "var %s := ", s.Name)
		p.expr(s.Init)
		p.b.WriteByte(';')
	case *ExprStmt:
		p.expr(s.X)
		p.b.WriteByte(';')
	case *AssignStmt:
		p.expr(s.LHS)
		p.b.WriteString(" := ")
		p.expr(s.RHS)
		p.b.WriteByte(';')
	case *ReturnStmt:
		p.b.WriteString("return")
		if s.X != nil {
			p.b.WriteByte(' ')
			p.expr(s.X)
		}
		p.b.WriteByte(';')
	case *WhileStmt:
		p.b.WriteString("while ")
		p.expr(s.Cond)
		p.b.WriteByte(' ')
		p.block(s.Body)
	case *IfStmt:
		p.b.WriteString("if ")
		p.expr(s.Cond)
		p.b.WriteByte(' ')
		p.block(s.Then)
		if s.Else != nil {
			p.b.WriteString(" else ")
			p.block(s.Else)
		}
	default:
		panic(fmt.Sprintf("lang: unknown statement %T", s))
	}
}

var opText = map[Kind]string{
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!",
}

func (p *printer) expr(e Expr) {
	switch e := e.(type) {
	case *IntLit:
		fmt.Fprintf(p.b, "%d", e.Val)
	case *StrLit:
		p.b.WriteString(quote(e.Val))
	case *BoolLit:
		fmt.Fprintf(p.b, "%t", e.Val)
	case *NilLit:
		p.b.WriteString("nil")
	case *Ident:
		p.b.WriteString(e.Name)
	case *Call:
		fmt.Fprintf(p.b, "%s(", e.Name)
		p.args(e.Args)
		p.b.WriteByte(')')
	case *SendSugar:
		p.expr(e.Recv)
		fmt.Fprintf(p.b, ".%s(", e.Sel)
		p.args(e.Args)
		p.b.WriteByte(')')
	case *FieldAccess:
		p.expr(e.Recv)
		fmt.Fprintf(p.b, ".%s", e.Name)
	case *ApplyExpr:
		p.b.WriteByte('(')
		p.expr(e.Fn)
		p.b.WriteString(")(")
		p.args(e.Args)
		p.b.WriteByte(')')
	case *NewExpr:
		fmt.Fprintf(p.b, "new %s(", e.Class)
		p.args(e.Args)
		p.b.WriteByte(')')
	case *FnExpr:
		fmt.Fprintf(p.b, "fn(%s) ", strings.Join(e.Params, ", "))
		p.block(e.Body)
	case *UnaryExpr:
		p.b.WriteString(opText[e.Op])
		p.b.WriteByte('(')
		p.expr(e.X)
		p.b.WriteByte(')')
	case *BinaryExpr:
		p.b.WriteByte('(')
		p.expr(e.L)
		fmt.Fprintf(p.b, " %s ", opText[e.Op])
		p.expr(e.R)
		p.b.WriteByte(')')
	case *BlockExpr:
		// Only if-expressions appear here; print the inner if inline.
		if len(e.Block.Stmts) == 1 {
			if ifs, ok := e.Block.Stmts[0].(*IfStmt); ok {
				p.stmt(ifs)
				return
			}
		}
		p.block(e.Block)
	default:
		panic(fmt.Sprintf("lang: unknown expression %T", e))
	}
}

func (p *printer) args(args []Expr) {
	for i, a := range args {
		if i > 0 {
			p.b.WriteString(", ")
		}
		p.expr(a)
	}
}

// quote renders a string literal using only the escapes the lexer
// understands (\n \t \\ \"); Go's %q would emit \r, \v, \xNN etc.,
// which do not reparse. Every other rune — control characters
// included — is legal verbatim inside a Mini-Cecil string.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
