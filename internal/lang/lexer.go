package lang

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer turns Mini-Cecil source text into a token stream. Comments run
// from "--" or "//" to end of line. Strings use double quotes with the
// escapes \n \t \\ \" .
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int // column of next rune, 1-based
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r
}

func (lx *Lexer) peek2() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	_, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	if lx.off+w >= len(lx.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.off+w:])
	return r
}

func (lx *Lexer) next() rune {
	if lx.off >= len(lx.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	lx.off += w
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentCont(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// skipSpace consumes whitespace and comments.
func (lx *Lexer) skipSpace() {
	for {
		r := lx.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			lx.next()
		case r == '-' && lx.peek2() == '-', r == '/' && lx.peek2() == '/':
			for lx.peek() != '\n' && lx.peek() != -1 {
				lx.next()
			}
		default:
			return
		}
	}
}

// Next returns the next token, or an error for malformed input.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpace()
	pos := lx.pos()
	r := lx.peek()
	if r == -1 {
		return Token{Kind: EOF, Pos: pos}, nil
	}

	switch {
	case isIdentStart(r):
		start := lx.off
		for isIdentCont(lx.peek()) {
			lx.next()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil

	case unicode.IsDigit(r):
		start := lx.off
		for unicode.IsDigit(lx.peek()) {
			lx.next()
		}
		if isIdentStart(lx.peek()) {
			return Token{}, errf(pos, "malformed number: letter follows digits")
		}
		return Token{Kind: INT, Text: lx.src[start:lx.off], Pos: pos}, nil

	case r == '"':
		lx.next()
		var b strings.Builder
		for {
			c := lx.next()
			switch c {
			case -1, '\n':
				return Token{}, errf(pos, "unterminated string literal")
			case '"':
				return Token{Kind: STRING, Text: b.String(), Pos: pos}, nil
			case '\\':
				e := lx.next()
				switch e {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					return Token{}, errf(pos, "unknown escape \\%c", e)
				}
			default:
				b.WriteRune(c)
			}
		}
	}

	lx.next()
	tok := func(k Kind) (Token, error) { return Token{Kind: k, Pos: pos}, nil }
	two := func(second rune, k2, k1 Kind) (Token, error) {
		if lx.peek() == second {
			lx.next()
			return tok(k2)
		}
		return tok(k1)
	}

	switch r {
	case '(':
		return tok(LPAREN)
	case ')':
		return tok(RPAREN)
	case '{':
		return tok(LBRACE)
	case '}':
		return tok(RBRACE)
	case '[':
		return tok(LBRACKET)
	case ']':
		return tok(RBRACKET)
	case ',':
		return tok(COMMA)
	case ';':
		return tok(SEMI)
	case '.':
		return tok(DOT)
	case '@':
		return tok(AT)
	case '+':
		return tok(PLUS)
	case '-':
		return tok(MINUS)
	case '*':
		return tok(STAR)
	case '/':
		return tok(SLASH)
	case '%':
		return tok(PERCENT)
	case ':':
		if lx.peek() == '=' {
			lx.next()
			return tok(ASSIGN)
		}
		return tok(COLON)
	case '=':
		if lx.peek() == '=' {
			lx.next()
			return tok(EQ)
		}
		return Token{}, errf(pos, "unexpected '=' (use ':=' for assignment, '==' for equality)")
	case '!':
		return two('=', NE, NOT)
	case '<':
		return two('=', LE, LT)
	case '>':
		return two('=', GE, GT)
	case '&':
		if lx.peek() == '&' {
			lx.next()
			return tok(ANDAND)
		}
		return Token{}, errf(pos, "unexpected '&' (did you mean '&&'?)")
	case '|':
		if lx.peek() == '|' {
			lx.next()
			return tok(OROR)
		}
		return Token{}, errf(pos, "unexpected '|' (did you mean '||'?)")
	}
	return Token{}, errf(pos, "unexpected character %q", r)
}

// Tokenize lexes the whole input, returning all tokens up to and
// including EOF, or the first error.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
