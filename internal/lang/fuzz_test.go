package lang_test

// Native fuzz targets for the front end. These exercise the RAW lexer
// and parser entry points — not the pipeline fault boundary — so any
// internal panic is a reportable crasher rather than a contained
// StageError. Regression inputs live under testdata/fuzz/ and run as
// part of the ordinary `go test ./...`.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selspec/internal/lang"
	"selspec/internal/programs"
)

// seedSources collects the embedded benchmark corpus, the example
// programs on disk, and a few small shapes that cover the syntax the
// generators rarely stumble into on their own.
func seedSources(f *testing.F) []string {
	f.Helper()
	srcs := []string{
		"",
		"method main() { 1; }",
		"class A\nclass B isa A\nmethod f(x@A) { resend; }\nmethod main() { f(new B()); }",
		"method main() { var s := \"a\\nb\"; println(s); }",
		"method main() { var f := fn(a, b) { a + b; }; f(1, 2); }",
		"method main() { if 1 < 2 { 1; } else { 2; } }",
		"method main() { while false { return 0; } }",
		"global g := 41;\nmethod main() { g := g + 1; g; }",
		"class P { x: int, y: int }\nmethod main() { (new P(1, 2)).x; }",
		"method main() { [1, 2, 3]; }",
		"method main() { 1 + }",     // parse error
		"method main() { \"open", // unterminated string
		"\x00\xff\xfe",
		strings.Repeat("(", 600), // beyond the nesting guard
	}
	for _, b := range append(programs.All(), programs.Sets(), programs.Collections()) {
		srcs = append(srcs, b.Source)
	}
	paths, _ := filepath.Glob(filepath.Join("..", "..", "examples", "*", "*.mc"))
	for _, p := range paths {
		if data, err := os.ReadFile(p); err == nil {
			srcs = append(srcs, string(data))
		}
	}
	return srcs
}

// FuzzLexer: the lexer must terminate and never panic on arbitrary
// bytes; it either tokenizes to EOF or reports a positioned error.
func FuzzLexer(f *testing.F) {
	for _, s := range seedSources(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lang.Tokenize(src)
		if err == nil && len(toks) == 0 {
			t.Fatal("no tokens and no error")
		}
	})
}

// FuzzParser: anything that parses must format, reparse, and reach a
// Format fixpoint — the round-trip property the corpus test checks,
// extended to generated programs.
func FuzzParser(f *testing.F) {
	for _, s := range seedSources(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := lang.Parse(src)
		if err != nil {
			return // rejecting is fine; only panics and broken round-trips count
		}
		f1 := lang.Format(p1)
		p2, err := lang.Parse(f1)
		if err != nil {
			t.Fatalf("formatted source does not reparse: %v\n--- formatted ---\n%s", err, f1)
		}
		if f2 := lang.Format(p2); f1 != f2 {
			t.Fatalf("Format not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", f1, f2)
		}
	})
}
