package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for Mini-Cecil.
type Parser struct {
	toks  []Token
	pos   int
	depth int // expression/statement nesting depth (see maxNestingDepth)
}

// maxNestingDepth bounds expression and statement nesting. The parser
// (and the tree interpreter behind it) recurse over the syntax, so
// pathologically nested input — "((((…" or "!!!!…" from a fuzzer —
// would otherwise overflow the Go stack, a fatal fault no error
// boundary can contain. Real programs nest a few dozen levels at most.
const maxNestingDepth = 500

// push charges one nesting level, failing with a positioned parse
// error at the guard. Callers pair it with a deferred pop.
func (p *Parser) push() error {
	p.depth++
	if p.depth > maxNestingDepth {
		return errf(p.cur().Pos, "nesting too deep (limit %d)", maxNestingDepth)
	}
	return nil
}

func (p *Parser) pop() { p.depth-- }

// Parse parses a whole program.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

// ParseExpr parses a single expression followed by EOF; handy in tests.
func ParseExpr(src string) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != EOF {
		return nil, errf(p.cur().Pos, "unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token { // token after cur
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.cur().Kind == k {
		return p.advance(), nil
	}
	return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
}

func (p *Parser) expectIdent() (Token, error) {
	return p.expect(IDENT)
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != EOF {
		switch p.cur().Kind {
		case KWCLASS:
			c, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			prog.Classes = append(prog.Classes, c)
		case KWMETHOD:
			m, err := p.parseMethod()
			if err != nil {
				return nil, err
			}
			prog.Methods = append(prog.Methods, m)
		case KWVAR:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		default:
			return nil, errf(p.cur().Pos, "expected 'class', 'method' or 'var' at top level, found %s", p.cur())
		}
	}
	return prog, nil
}

func (p *Parser) parseClass() (*ClassDecl, error) {
	kw, _ := p.expect(KWCLASS)
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	decl := &ClassDecl{Pos: kw.Pos, Name: name.Text}
	if p.accept(KWISA) {
		for {
			parent, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			decl.Parents = append(decl.Parents, parent.Text)
			if !p.accept(COMMA) {
				break
			}
		}
	}
	if p.accept(LBRACE) {
		for !p.accept(RBRACE) {
			f, err := p.parseField()
			if err != nil {
				return nil, err
			}
			decl.Fields = append(decl.Fields, f)
		}
	}
	p.accept(SEMI) // optional trailing semicolon
	return decl, nil
}

func (p *Parser) parseField() (*FieldDecl, error) {
	kw, err := p.expect(KWFIELD)
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f := &FieldDecl{Pos: kw.Pos, Name: name.Text}
	if p.accept(COLON) {
		ty, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.Type = ty.Text
	}
	if p.accept(ASSIGN) {
		f.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) parseMethod() (*MethodDecl, error) {
	kw, _ := p.expect(KWMETHOD)
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	m := &MethodDecl{Pos: kw.Pos, Name: name.Text}
	seen := map[string]bool{}
	for p.cur().Kind != RPAREN {
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if seen[pn.Text] {
			return nil, errf(pn.Pos, "duplicate parameter %q", pn.Text)
		}
		seen[pn.Text] = true
		param := Param{Pos: pn.Pos, Name: pn.Text}
		if p.accept(AT) {
			spec, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			param.Spec = spec.Text
		}
		m.Params = append(m.Params, param)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	m.Body, err = p.parseBlock()
	if err != nil {
		return nil, err
	}
	return m, nil
}

func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	kw, _ := p.expect(KWVAR)
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &GlobalDecl{Pos: kw.Pos, Name: name.Text, Init: init}, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	if err := p.push(); err != nil {
		return nil, err
	}
	defer p.pop()
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for p.cur().Kind != RBRACE {
		if p.cur().Kind == EOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case KWVAR:
		kw := p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ASSIGN); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &VarStmt{Pos: kw.Pos, Name: name.Text, Init: init}, nil

	case KWRETURN:
		kw := p.advance()
		ret := &ReturnStmt{Pos: kw.Pos}
		if p.cur().Kind != SEMI {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ret.X = x
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return ret, nil

	case KWWHILE:
		kw := p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: kw.Pos, Cond: cond, Body: body}, nil

	case KWIF:
		return p.parseIf()
	}

	// Expression or assignment statement.
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == ASSIGN {
		at := p.advance()
		switch x.(type) {
		case *Ident, *FieldAccess:
		default:
			return nil, errf(at.Pos, "left side of ':=' must be a variable or field")
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: at.Pos, LHS: x, RHS: rhs}, nil
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	kw, _ := p.expect(KWIF)
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Pos: kw.Pos, Cond: cond, Then: then}
	if p.accept(KWELSE) {
		if p.cur().Kind == KWIF {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = &Block{Pos: elif.(*IfStmt).Pos, Stmts: []Stmt{elif}}
		} else {
			s.Else, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Operator-precedence expression parsing.

func (p *Parser) parseExpr() (Expr, error) {
	if err := p.push(); err != nil {
		return nil, err
	}
	defer p.pop()
	return p.parseOr()
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == OROR {
		op := p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: OROR, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == ANDAND {
		op := p.advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: ANDAND, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case EQ, NE, LT, LE, GT, GE:
		op := p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == PLUS || p.cur().Kind == MINUS {
		op := p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == STAR || p.cur().Kind == SLASH || p.cur().Kind == PERCENT {
		op := p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case NOT, MINUS:
		// Unary chains ("!!!!…") recurse without re-entering parseExpr,
		// so they charge nesting depth here.
		if err := p.push(); err != nil {
			return nil, err
		}
		defer p.pop()
		op := p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -IntLit immediately so negative literals are literals.
		if op.Kind == MINUS {
			if il, ok := x.(*IntLit); ok {
				return &IntLit{Pos: op.Pos, Val: -il.Val}, nil
			}
		}
		return &UnaryExpr{Pos: op.Pos, Op: op.Kind, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case DOT:
			p.advance()
			sel, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.cur().Kind == LPAREN {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				x = &SendSugar{Pos: sel.Pos, Recv: x, Sel: sel.Text, Args: args}
			} else {
				x = &FieldAccess{Pos: sel.Pos, Recv: x, Name: sel.Text}
			}
		case LPAREN:
			// f(args) on a non-identifier expression: closure call.
			pos := p.cur().Pos
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			x = &ApplyExpr{Pos: pos, Fn: x, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	var args []Expr
	for p.cur().Kind != RPAREN {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if args == nil {
		args = []Expr{}
	}
	return args, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "integer out of range: %s", t.Text)
		}
		return &IntLit{Pos: t.Pos, Val: v}, nil
	case STRING:
		p.advance()
		return &StrLit{Pos: t.Pos, Val: t.Text}, nil
	case KWTRUE:
		p.advance()
		return &BoolLit{Pos: t.Pos, Val: true}, nil
	case KWFALSE:
		p.advance()
		return &BoolLit{Pos: t.Pos, Val: false}, nil
	case KWNIL:
		p.advance()
		return &NilLit{Pos: t.Pos}, nil
	case IDENT:
		if p.peek().Kind == LPAREN {
			p.advance()
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &Call{Pos: t.Pos, Name: t.Text, Args: args}, nil
		}
		p.advance()
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	case KWNEW:
		p.advance()
		cls, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &NewExpr{Pos: t.Pos, Class: cls.Text, Args: args}, nil
	case KWFN:
		p.advance()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		var params []string
		seen := map[string]bool{}
		for p.cur().Kind != RPAREN {
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if seen[pn.Text] {
				return nil, errf(pn.Pos, "duplicate parameter %q", pn.Text)
			}
			seen[pn.Text] = true
			params = append(params, pn.Text)
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &FnExpr{Pos: t.Pos, Params: params, Body: body}, nil
	case LPAREN:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	case KWIF:
		// if-expressions: permitted anywhere an expression is.
		s, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		ifs := s.(*IfStmt)
		return &BlockExpr{Pos: ifs.Pos, Block: &Block{Pos: ifs.Pos, Stmts: []Stmt{ifs}}}, nil
	}
	return nil, errf(t.Pos, "unexpected %s in expression", t)
}

// MustParse parses src and panics on error; for tests and embedded
// benchmark programs that are known-good.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustParse: %v", err))
	}
	return prog
}
