package lang

import (
	"strings"
	"testing"
)

func TestParseClassDecl(t *testing.T) {
	p, err := Parse(`
class Set
class ListSet isa Set {
  field elems := nil;
  field n := 0;
}
class Both isa ListSet, Set
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Classes) != 3 {
		t.Fatalf("got %d classes", len(p.Classes))
	}
	ls := p.Classes[1]
	if ls.Name != "ListSet" || len(ls.Parents) != 1 || ls.Parents[0] != "Set" {
		t.Errorf("ListSet parsed wrong: %+v", ls)
	}
	if len(ls.Fields) != 2 || ls.Fields[0].Name != "elems" || ls.Fields[1].Name != "n" {
		t.Errorf("fields parsed wrong: %+v", ls.Fields)
	}
	if len(p.Classes[2].Parents) != 2 {
		t.Errorf("multiple inheritance parsed wrong: %+v", p.Classes[2])
	}
}

func TestParseMethodDecl(t *testing.T) {
	p, err := Parse(`
method overlaps(s1@Set, s2@Set) {
  s1.do(fn(e) { if s2.includes(e) { return true; } });
  false;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Methods[0]
	if m.Name != "overlaps" || len(m.Params) != 2 {
		t.Fatalf("method parsed wrong: %+v", m)
	}
	if m.Params[0].Spec != "Set" || m.Params[1].Spec != "Set" {
		t.Errorf("specializers wrong: %+v", m.Params)
	}
	if len(m.Body.Stmts) != 2 {
		t.Fatalf("body has %d stmts", len(m.Body.Stmts))
	}
	send, ok := m.Body.Stmts[0].(*ExprStmt).X.(*SendSugar)
	if !ok || send.Sel != "do" {
		t.Fatalf("first stmt should be send of do: %T", m.Body.Stmts[0])
	}
	if _, ok := send.Args[0].(*FnExpr); !ok {
		t.Fatalf("closure argument not parsed: %T", send.Args[0])
	}
}

func TestParseUnspecializedParam(t *testing.T) {
	p, err := Parse(`method id(x) { x; }`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Methods[0].Params[0].Spec != "" {
		t.Error("unspecialized param should have empty Spec")
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 == 7 && !done || x < 4")
	if err != nil {
		t.Fatal(err)
	}
	got := FormatExpr(e)
	want := "((((1 + (2 * 3)) == 7) && !(done)) || (x < 4))"
	if got != want {
		t.Errorf("precedence:\n got %s\nwant %s", got, want)
	}
}

func TestParseNegativeLiteralFolded(t *testing.T) {
	e, err := ParseExpr("-5")
	if err != nil {
		t.Fatal(err)
	}
	il, ok := e.(*IntLit)
	if !ok || il.Val != -5 {
		t.Fatalf("-5 parsed as %T %v", e, FormatExpr(e))
	}
}

func TestParsePostfixChains(t *testing.T) {
	e, err := ParseExpr("a.b.c(1).d(x.f)(2)")
	if err != nil {
		t.Fatal(err)
	}
	// ((a.b).c(1)).d(x.f) applied to (2): outermost is ApplyExpr.
	app, ok := e.(*ApplyExpr)
	if !ok {
		t.Fatalf("outermost = %T", e)
	}
	send, ok := app.Fn.(*SendSugar)
	if !ok || send.Sel != "d" {
		t.Fatalf("fn = %v", FormatExpr(app.Fn))
	}
	if _, ok := send.Args[0].(*FieldAccess); !ok {
		t.Fatalf("arg should be field access: %T", send.Args[0])
	}
}

func TestParseNewAndFn(t *testing.T) {
	e, err := ParseExpr("new Point(1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	ne := e.(*NewExpr)
	if ne.Class != "Point" || len(ne.Args) != 2 {
		t.Fatalf("new parsed wrong: %+v", ne)
	}

	e, err = ParseExpr("fn(x, y) { x + y; }")
	if err != nil {
		t.Fatal(err)
	}
	fe := e.(*FnExpr)
	if len(fe.Params) != 2 {
		t.Fatalf("fn params: %v", fe.Params)
	}
}

func TestParseIfElseChain(t *testing.T) {
	p, err := Parse(`
method f(x) {
  if x == 1 { 10; } else if x == 2 { 20; } else { 30; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ifs, ok := p.Methods[0].Body.Stmts[0].(*IfStmt)
	if !ok {
		t.Fatalf("stmt = %T", p.Methods[0].Body.Stmts[0])
	}
	if ifs.Else == nil || len(ifs.Else.Stmts) != 1 {
		t.Fatal("else-if chain missing")
	}
	if _, ok := ifs.Else.Stmts[0].(*IfStmt); !ok {
		t.Fatalf("nested if missing: %T", ifs.Else.Stmts[0])
	}
}

func TestParseIfExpression(t *testing.T) {
	p, err := Parse(`method f(x) { var y := if x { 1; } else { 2; }; y; }`)
	if err != nil {
		t.Fatal(err)
	}
	vs := p.Methods[0].Body.Stmts[0].(*VarStmt)
	if _, ok := vs.Init.(*BlockExpr); !ok {
		t.Fatalf("if-expression parsed as %T", vs.Init)
	}
}

func TestParseWhileReturnAssign(t *testing.T) {
	p, err := Parse(`
method loop(n) {
  var i := 0;
  var sum := 0;
  while i < n {
    sum := sum + i;
    i := i + 1;
  }
  return sum;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	body := p.Methods[0].Body
	if _, ok := body.Stmts[2].(*WhileStmt); !ok {
		t.Fatalf("stmt 2 = %T", body.Stmts[2])
	}
	if _, ok := body.Stmts[3].(*ReturnStmt); !ok {
		t.Fatalf("stmt 3 = %T", body.Stmts[3])
	}
}

func TestParseFieldAssignment(t *testing.T) {
	p, err := Parse(`method bump(c@Counter) { c.n := c.n + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	as, ok := p.Methods[0].Body.Stmts[0].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt = %T", p.Methods[0].Body.Stmts[0])
	}
	if _, ok := as.LHS.(*FieldAccess); !ok {
		t.Fatalf("LHS = %T", as.LHS)
	}
}

func TestParseGlobals(t *testing.T) {
	p, err := Parse(`var g := 41 + 1;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Globals) != 1 || p.Globals[0].Name != "g" {
		t.Fatalf("globals: %+v", p.Globals)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`method f(x, x) { x; }`, "duplicate parameter"},
		{`fnord`, "expected 'class', 'method' or 'var'"},
		{`method f() { 1 + ; }`, "unexpected"},
		{`method f() { (1 + 2 := 3; }`, "expected ')'"},
		{`method f() { 1 + 2 := 3; }`, "left side of ':='"},
		{`method f() { var x 3; }`, "expected ':='"},
		{`method f() { while x }`, "expected '{'"},
		{`class`, "expected identifier"},
		{`method f() { return 1 }`, "expected ';'"},
		{`method f() { if x { 1; }`, "unterminated block"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): no error, want %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("oops")
}

// TestFormatRoundTrip checks that formatting then reparsing yields the
// same formatted output (a fixpoint), for a representative program.
func TestFormatRoundTrip(t *testing.T) {
	src := `
class Set
class ListSet isa Set { field elems := nil; field n := 0; }
var gCount := 0;
method includes(s@Set, e) {
  var found := false;
  s.do(fn(x) { if x == e { found := true; } });
  found;
}
method do(s@ListSet, body) {
  var i := 0;
  while i < s.n {
    body(aget(s.elems, i));
    i := i + 1;
  }
}
method main() {
  var s := new ListSet(newarray(4), 0);
  print("hi " + str(1 - 2));
  !(true && false) || s.includes(3);
}
`
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f1 := Format(p1)
	p2, err := Parse(f1)
	if err != nil {
		t.Fatalf("formatted output does not reparse: %v\n%s", err, f1)
	}
	f2 := Format(p2)
	if f1 != f2 {
		t.Errorf("Format not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", f1, f2)
	}
}
