package lang

// This file defines the abstract syntax tree produced by the parser.
// The AST is deliberately plain: lowering to IR, name resolution and
// all analysis live in later packages.

// Program is a parsed compilation unit.
type Program struct {
	Classes []*ClassDecl
	Methods []*MethodDecl
	Globals []*GlobalDecl
}

// ClassDecl declares a class, its parents and its fields.
type ClassDecl struct {
	Pos     Pos
	Name    string
	Parents []string // empty means "isa Any"
	Fields  []*FieldDecl
}

// FieldDecl declares one instance field with an optional declared type
// ("field x : T := e;") and an optional default initializer (evaluated
// at instantiation when no positional argument covers the field).
// Declared field types are enforced at run time and exploited by class
// hierarchy analysis, as in Cecil/Vortex.
type FieldDecl struct {
	Pos  Pos
	Name string
	Type string // declared type class name; "" = untyped
	Init Expr   // may be nil
}

// MethodDecl declares one multi-method. Params[i].Spec is the
// specializer class name, "" meaning Any (undispatched position).
type MethodDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Body   *Block
}

// Param is one formal parameter with optional specializer.
type Param struct {
	Pos  Pos
	Name string
	Spec string // "" = Any
}

// GlobalDecl declares a top-level variable ("var g := expr;").
type GlobalDecl struct {
	Pos  Pos
	Name string
	Init Expr
}

// Stmt is a statement inside a block.
type Stmt interface{ stmt() }

// Expr is an expression node.
type Expr interface {
	expr()
	Position() Pos
}

// Block is a sequence of statements; as an expression its value is the
// value of the final expression statement (nil otherwise).
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// VarStmt declares a block-local variable.
type VarStmt struct {
	Pos  Pos
	Name string
	Init Expr
}

// ExprStmt evaluates an expression for effect (and, if last in a block,
// for value).
type ExprStmt struct{ X Expr }

// AssignStmt assigns to a local/global variable or an object field.
type AssignStmt struct {
	Pos Pos
	LHS Expr // *Ident or *FieldAccess
	RHS Expr
}

// ReturnStmt returns from the lexically enclosing method (non-local
// when it occurs inside a closure).
type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil (returns nil)
}

// WhileStmt loops while the condition is true; its value is nil.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *Block
}

// IfStmt is a conditional; usable in both statement and trailing
// expression position (its value is the value of the taken branch).
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *Block
	Else *Block // may be nil; else-if chains parse as nested blocks
}

func (*VarStmt) stmt()    {}
func (*ExprStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*ReturnStmt) stmt() {}
func (*WhileStmt) stmt()  {}
func (*IfStmt) stmt()     {}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// StrLit is a string literal.
type StrLit struct {
	Pos Pos
	Val string
}

// BoolLit is true/false.
type BoolLit struct {
	Pos Pos
	Val bool
}

// NilLit is the nil literal.
type NilLit struct{ Pos Pos }

// Ident references a variable (local, formal, or global). The parser
// cannot distinguish these; lowering resolves the reference.
type Ident struct {
	Pos  Pos
	Name string
}

// Call is "callee(args...)" where the callee is a bare identifier. It
// becomes a message send, a primitive call, or a closure call depending
// on what the identifier resolves to at lowering time.
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// SendSugar is "recv.sel(args...)": message send with the receiver as
// first argument, i.e. sel(recv, args...).
type SendSugar struct {
	Pos  Pos
	Recv Expr
	Sel  string
	Args []Expr
}

// FieldAccess is "recv.name" without parentheses: a field read.
type FieldAccess struct {
	Pos  Pos
	Recv Expr
	Name string
}

// ApplyExpr is "f(args...)" where f is a non-identifier expression:
// always a closure invocation.
type ApplyExpr struct {
	Pos  Pos
	Fn   Expr
	Args []Expr
}

// NewExpr instantiates a class with positional field values covering
// the class's fields (inherited first, in declaration order); omitted
// trailing fields take their declared initializers (or nil).
type NewExpr struct {
	Pos   Pos
	Class string
	Args  []Expr
}

// FnExpr is a closure literal.
type FnExpr struct {
	Pos    Pos
	Params []string
	Body   *Block
}

// UnaryExpr applies ! or unary -.
type UnaryExpr struct {
	Pos Pos
	Op  Kind // NOT or MINUS
	X   Expr
}

// BinaryExpr applies a primitive binary operator. && and || are
// short-circuiting.
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

// BlockExpr wraps a parenthesized or branch block used in expression
// position (only produced for if-expressions' branches).
type BlockExpr struct {
	Pos   Pos
	Block *Block
}

func (*IntLit) expr()      {}
func (*StrLit) expr()      {}
func (*BoolLit) expr()     {}
func (*NilLit) expr()      {}
func (*Ident) expr()       {}
func (*Call) expr()        {}
func (*SendSugar) expr()   {}
func (*FieldAccess) expr() {}
func (*ApplyExpr) expr()   {}
func (*NewExpr) expr()     {}
func (*FnExpr) expr()      {}
func (*UnaryExpr) expr()   {}
func (*BinaryExpr) expr()  {}
func (*BlockExpr) expr()   {}

func (e *IntLit) Position() Pos      { return e.Pos }
func (e *StrLit) Position() Pos      { return e.Pos }
func (e *BoolLit) Position() Pos     { return e.Pos }
func (e *NilLit) Position() Pos      { return e.Pos }
func (e *Ident) Position() Pos       { return e.Pos }
func (e *Call) Position() Pos        { return e.Pos }
func (e *SendSugar) Position() Pos   { return e.Pos }
func (e *FieldAccess) Position() Pos { return e.Pos }
func (e *ApplyExpr) Position() Pos   { return e.Pos }
func (e *NewExpr) Position() Pos     { return e.Pos }
func (e *FnExpr) Position() Pos      { return e.Pos }
func (e *UnaryExpr) Position() Pos   { return e.Pos }
func (e *BinaryExpr) Position() Pos  { return e.Pos }
func (e *BlockExpr) Position() Pos   { return e.Pos }
