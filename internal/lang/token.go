// Package lang implements the front end of Mini-Cecil, the small
// multi-method object-oriented language used to reproduce the PLDI'95
// selective specialization paper. It provides the lexer, the abstract
// syntax tree, and a recursive-descent parser.
//
// Mini-Cecil is Cecil-flavoured: classes form a multiple-inheritance
// DAG, methods are multi-methods dispatched on any subset of their
// arguments ("method m(a@C, b@D) { ... }"), closures are first class
// ("fn(x) { ... }") and "return" performs a non-local return from the
// lexically enclosing method, as in the paper's Set example.
package lang

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT
	STRING

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	DOT      // .
	AT       // @
	COLON    // :
	ASSIGN   // :=
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	EQ       // ==
	NE       // !=
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	ANDAND   // &&
	OROR     // ||
	NOT      // !

	// Keywords.
	KWCLASS
	KWISA
	KWFIELD
	KWMETHOD
	KWVAR
	KWIF
	KWELSE
	KWWHILE
	KWRETURN
	KWNEW
	KWFN
	KWTRUE
	KWFALSE
	KWNIL
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer", STRING: "string",
	LPAREN: "'('", RPAREN: "')'", LBRACE: "'{'", RBRACE: "'}'",
	LBRACKET: "'['", RBRACKET: "']'",
	COMMA: "','", SEMI: "';'", DOT: "'.'", AT: "'@'", COLON: "':'",
	ASSIGN: "':='", PLUS: "'+'", MINUS: "'-'", STAR: "'*'", SLASH: "'/'",
	PERCENT: "'%'", EQ: "'=='", NE: "'!='", LT: "'<'", LE: "'<='",
	GT: "'>'", GE: "'>='", ANDAND: "'&&'", OROR: "'||'", NOT: "'!'",
	KWCLASS: "'class'", KWISA: "'isa'", KWFIELD: "'field'",
	KWMETHOD: "'method'", KWVAR: "'var'", KWIF: "'if'", KWELSE: "'else'",
	KWWHILE: "'while'", KWRETURN: "'return'", KWNEW: "'new'",
	KWFN: "'fn'", KWTRUE: "'true'", KWFALSE: "'false'", KWNIL: "'nil'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"class": KWCLASS, "isa": KWISA, "field": KWFIELD, "method": KWMETHOD,
	"var": KWVAR, "if": KWIF, "else": KWELSE, "while": KWWHILE,
	"return": KWRETURN, "new": KWNEW, "fn": KWFN,
	"true": KWTRUE, "false": KWFALSE, "nil": KWNIL,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // identifier name, integer literal text, or decoded string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return t.Text
	case STRING:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a front-end error (lexical or syntactic) with a position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Position returns the error's source position, letting stage
// boundaries surface file:line:col without knowing the concrete type.
func (e *Error) Position() Pos { return e.Pos }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
